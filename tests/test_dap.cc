// Unit tests for DAP (paper §IV, Algorithms 1-2): broadcasting order,
// μMAC storage, reservoir buffer selection, weak/strong authentication,
// security against forgery/replay, and the P = p^m property.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dap/dap.h"
#include "sim/adversary.h"

namespace dap::protocol {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

DapConfig test_config(std::size_t buffers = 4) {
  DapConfig config;
  config.chain_length = 32;
  config.buffers = buffers;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  return config;
}

sim::SimTime mid(std::uint32_t interval) {
  return (interval - 1) * sim::kSecond + sim::kSecond / 2;
}

DapReceiver make_receiver(const DapConfig& config, const DapSender& sender,
                          std::uint64_t seed = 1) {
  return DapReceiver(config, sender.chain().commitment(),
                     bytes_of("k-recv-local"), sim::LooseClock(0, 0),
                     Rng(seed));
}

// ------------------------------------------------------------ Algorithm 1

TEST(DapSender, AnnounceThenReveal) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  const auto announce = sender.announce(3, bytes_of("reading"));
  EXPECT_EQ(announce.interval, 3u);
  EXPECT_EQ(announce.mac.size(), config.mac_size);
  const auto reveal = sender.reveal(3);
  EXPECT_EQ(reveal.interval, 3u);
  EXPECT_EQ(reveal.message, bytes_of("reading"));
  EXPECT_EQ(reveal.key, sender.chain().key(3));
}

TEST(DapSender, RevealBeforeAnnounceThrows) {
  DapSender sender(test_config(), bytes_of("seed"));
  EXPECT_THROW(sender.reveal(1), std::logic_error);
}

TEST(DapSender, AnnounceBoundsChecked) {
  DapSender sender(test_config(), bytes_of("seed"));
  EXPECT_THROW(sender.announce(0, bytes_of("m")), std::out_of_range);
  EXPECT_THROW(sender.announce(33, bytes_of("m")), std::out_of_range);
}

TEST(DapSender, AnnouncementOmitsMessage) {
  // The whole point of DAP's step 3: only MAC + index on the wire.
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  const Bytes big_message(1000, 'x');
  const auto announce = sender.announce(1, big_message);
  const auto bits = wire::wire_bits(wire::Packet{announce});
  EXPECT_LT(bits, 8 * 100);  // nowhere near the 8000-bit message
}

// ------------------------------------------------------------ Algorithm 2

TEST(DapReceiver, HappyPathStrongAuth) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m1")), mid(1));
  EXPECT_EQ(receiver.buffered_records(1), 1u);
  const auto result = receiver.receive(sender.reveal(1), mid(2));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->message, bytes_of("m1"));
  EXPECT_EQ(receiver.stats().strong_auth_success, 1u);
}

TEST(DapReceiver, StreamOfIntervals) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  std::size_t authenticated = 0;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    receiver.receive(sender.announce(i, bytes_of("m")), mid(i));
    if (receiver.receive(sender.reveal(i), mid(i + 1))) ++authenticated;
  }
  EXPECT_EQ(authenticated, 20u);
  EXPECT_EQ(receiver.stats().strong_auth_failures, 0u);
}

TEST(DapReceiver, LateAnnounceDiscarded) {
  // Algorithm 2 line 2: i + d < x -> discard.
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(3));
  EXPECT_EQ(receiver.stats().announces_unsafe, 1u);
  EXPECT_EQ(receiver.buffered_records(1), 0u);
}

TEST(DapReceiver, WeakAuthRejectsForgedKey) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  auto reveal = sender.reveal(1);
  reveal.key = Bytes(config.key_size, 0x42);
  EXPECT_FALSE(receiver.receive(reveal, mid(2)).has_value());
  EXPECT_EQ(receiver.stats().weak_auth_failures, 1u);
}

TEST(DapReceiver, StrongAuthRejectsTamperedMessage) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("authentic")), mid(1));
  auto reveal = sender.reveal(1);
  reveal.message = bytes_of("tampered");
  EXPECT_FALSE(receiver.receive(reveal, mid(2)).has_value());
  EXPECT_EQ(receiver.stats().strong_auth_failures, 1u);
}

TEST(DapReceiver, RevealWithoutAnyRecordFails) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  (void)sender.announce(1, bytes_of("m"));  // never delivered
  EXPECT_FALSE(receiver.receive(sender.reveal(1), mid(2)).has_value());
  EXPECT_EQ(receiver.stats().strong_auth_failures, 1u);
}

TEST(DapReceiver, ReplayedRevealCannotDoubleAuthenticate) {
  // The buffer round is consumed by the first reveal; a replay finds no
  // records (and is harmless).
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  ASSERT_TRUE(receiver.receive(sender.reveal(1), mid(2)).has_value());
  EXPECT_FALSE(receiver.receive(sender.reveal(1), mid(2)).has_value());
}

TEST(DapReceiver, MemoryAccountingUsesMicroRecords) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  // 56 bits per record with the paper's sizes (24-bit μMAC + 32-bit idx).
  EXPECT_EQ(receiver.stored_record_bits(), 56u);
  // Versus the 280-bit message+MAC record of the paper's comparison:
  EXPECT_EQ(crypto::full_record_bits(), 5 * receiver.stored_record_bits());
}

TEST(DapReceiver, BufferCapacityEnforced) {
  const auto config = test_config(2);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  sim::FloodingForger forger(config.sender_id, config.mac_size, Rng(9));
  for (int i = 0; i < 50; ++i) receiver.receive(forger.forge(1), mid(1));
  EXPECT_EQ(receiver.buffered_records(1), 2u);
  EXPECT_EQ(receiver.stats().records_offered, 50u);
  EXPECT_LT(receiver.stats().records_stored, 50u);
}

TEST(DapReceiver, SetBuffersAffectsNewRounds) {
  const auto config = test_config(2);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  sim::FloodingForger forger(config.sender_id, config.mac_size, Rng(10));
  receiver.set_buffers(6);
  for (int i = 0; i < 50; ++i) receiver.receive(forger.forge(2), mid(2));
  EXPECT_EQ(receiver.buffered_records(2), 6u);
  EXPECT_THROW(receiver.set_buffers(0), std::invalid_argument);
}

// ------------------------------------------------- attack-success property

double measured_attack_success(double p, std::size_t m, int trials,
                               BufferPolicy policy, std::uint64_t seed) {
  const auto config = [&] {
    auto c = test_config(m);
    c.policy = policy;
    c.chain_length = 2;
    return c;
  }();
  Rng master(seed);
  int successes = 0;
  // The analytic P = p^m is the large-flood limit of the reservoir's
  // hypergeometric exclusion probability, so the sender redundancy is
  // chosen to keep the total flood much larger than m.
  const std::size_t authentic_copies = 40;
  const std::size_t forged =
      sim::FloodingForger::copies_for_fraction(authentic_copies, p);
  for (int t = 0; t < trials; ++t) {
    Rng trial = master.fork(static_cast<std::uint64_t>(t));
    DapSender sender(config, trial.bytes(16));
    DapReceiver receiver(config, sender.chain().commitment(),
                         trial.bytes(16), sim::LooseClock(0, 0),
                         trial.fork(1));
    sim::FloodingForger forger(config.sender_id, config.mac_size,
                               trial.fork(2));
    const auto authentic = sender.announce(1, bytes_of("m"));
    std::vector<wire::MacAnnounce> flood;
    flood.reserve(authentic_copies + forged);
    for (std::size_t k = 0; k < authentic_copies; ++k) {
      flood.push_back(authentic);
    }
    for (std::size_t k = 0; k < forged; ++k) flood.push_back(forger.forge(1));
    for (std::size_t k = flood.size(); k > 1; --k) {
      const auto j = static_cast<std::size_t>(trial.uniform(0, k - 1));
      std::swap(flood[k - 1], flood[j]);
    }
    for (const auto& packet : flood) receiver.receive(packet, mid(1));
    if (!receiver.receive(sender.reveal(1), mid(2)).has_value()) {
      ++successes;
    }
  }
  return static_cast<double>(successes) / trials;
}

class AttackSuccess
    : public ::testing::TestWithParam<std::pair<double, std::size_t>> {};

TEST_P(AttackSuccess, MatchesAnalyticPm) {
  const auto [p, m] = GetParam();
  const double measured = measured_attack_success(
      p, m, 2500, BufferPolicy::kReservoir, 7777);
  const double analytic = std::pow(p, static_cast<double>(m));
  EXPECT_NEAR(measured, analytic, 0.035)
      << "p=" << p << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttackSuccess,
    ::testing::Values(std::make_pair(0.5, std::size_t{1}),
                      std::make_pair(0.5, std::size_t{3}),
                      std::make_pair(0.8, std::size_t{2}),
                      std::make_pair(0.8, std::size_t{4}),
                      std::make_pair(0.9, std::size_t{4}),
                      std::make_pair(0.9, std::size_t{8})));

TEST(AttackSuccessPolicy, NaiveDropLosesToEarlyFlood) {
  // With naive-drop buffers, an attacker flooding before the authentic
  // copy wins deterministically once the flood covers all m slots.
  const auto config = [&] {
    auto c = test_config(4);
    c.policy = BufferPolicy::kNaiveDrop;
    c.chain_length = 2;
    return c;
  }();
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  sim::FloodingForger forger(config.sender_id, config.mac_size, Rng(11));
  for (int i = 0; i < 4; ++i) receiver.receive(forger.forge(1), mid(1));
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));  // too late
  EXPECT_FALSE(receiver.receive(sender.reveal(1), mid(2)).has_value());
}

TEST(AttackSuccessPolicy, ReservoirSurvivesEarlyFlood) {
  // Same early-burst attack against the reservoir policy: the authentic
  // copy (arriving last) still survives with probability m/k; over many
  // trials success is ~ m/(flood+1), never 0.
  int survived = 0;
  const int trials = 2000;
  Rng master(12);
  for (int t = 0; t < trials; ++t) {
    const auto config = [&] {
      auto c = test_config(4);
      c.chain_length = 2;
      return c;
    }();
    Rng trial = master.fork(static_cast<std::uint64_t>(t));
    DapSender sender(config, trial.bytes(16));
    DapReceiver receiver(config, sender.chain().commitment(),
                         trial.bytes(16), sim::LooseClock(0, 0),
                         trial.fork(1));
    sim::FloodingForger forger(config.sender_id, config.mac_size,
                               trial.fork(2));
    for (int i = 0; i < 16; ++i) receiver.receive(forger.forge(1), mid(1));
    receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
    if (receiver.receive(sender.reveal(1), mid(2)).has_value()) ++survived;
  }
  // Authentic is copy 17 of 17 into 4 slots: P(kept) = 4/17 ~ 0.235.
  EXPECT_NEAR(survived / static_cast<double>(trials), 4.0 / 17.0, 0.03);
}

TEST(DapReceiver, MoreBuffersMonotonicallyHelp) {
  double previous = 1.1;
  for (std::size_t m : {1u, 2u, 4u, 8u}) {
    const double success = measured_attack_success(
        0.85, m, 3000, BufferPolicy::kReservoir, 555);
    EXPECT_LT(success, previous) << "m=" << m;
    previous = success;
  }
}

TEST(DapReceiver, RejectsBadConstruction) {
  const auto config = test_config();
  DapSender sender(config, bytes_of("seed"));
  EXPECT_THROW(DapReceiver(config, Bytes{}, bytes_of("s"),
                           sim::LooseClock(0, 0), Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(DapReceiver(config, sender.chain().commitment(), Bytes{},
                           sim::LooseClock(0, 0), Rng(1)),
               std::invalid_argument);
  auto zero_buffers = config;
  zero_buffers.buffers = 0;
  EXPECT_THROW(DapReceiver(zero_buffers, sender.chain().commitment(),
                           bytes_of("s"), sim::LooseClock(0, 0), Rng(1)),
               std::invalid_argument);
}

TEST(DapReceiver, MicroMacCollisionRateBounded) {
  // A forged record matches the expected μMAC with probability 2^-24;
  // with 24-bit tags and a few thousand forged records per round the
  // false-accept probability stays negligible. Sanity-check that a flood
  // of forged records does not accidentally authenticate a never-sent
  // message over many trials.
  const auto config = test_config(8);
  int false_accepts = 0;
  Rng master(13);
  for (int t = 0; t < 300; ++t) {
    Rng trial = master.fork(static_cast<std::uint64_t>(t));
    DapSender sender(config, trial.bytes(16));
    DapReceiver receiver(config, sender.chain().commitment(),
                         trial.bytes(16), sim::LooseClock(0, 0),
                         trial.fork(1));
    sim::FloodingForger forger(config.sender_id, config.mac_size,
                               trial.fork(2));
    for (int i = 0; i < 8; ++i) receiver.receive(forger.forge(1), mid(1));
    // The reveal is authentic but its announce was never stored: only a
    // μMAC collision could authenticate it.
    (void)sender.announce(1, bytes_of("never-delivered"));
    if (receiver.receive(sender.reveal(1), mid(2)).has_value()) {
      ++false_accepts;
    }
  }
  EXPECT_EQ(false_accepts, 0);
}

}  // namespace
}  // namespace dap::protocol

// --------------------------------------------------- multi-message streams

namespace dap::protocol {
namespace {

TEST(DapMultiMessage, SeveralMessagesPerIntervalAuthenticate) {
  const auto config = test_config(8);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  // Fig. 1's P_{i,1..m}: three packets share interval 1's key.
  for (const char* text : {"reading-a", "reading-b", "reading-c"}) {
    receiver.receive(sender.announce(1, bytes_of(text)), mid(1));
  }
  EXPECT_EQ(sender.announced_count(1), 3u);
  EXPECT_EQ(receiver.buffered_records(1), 3u);
  std::size_t authenticated = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    if (receiver.receive(sender.reveal(1, k), mid(2))) ++authenticated;
  }
  EXPECT_EQ(authenticated, 3u);
}

TEST(DapMultiMessage, EachRevealConsumesOnlyItsRecord) {
  const auto config = test_config(8);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("a")), mid(1));
  receiver.receive(sender.announce(1, bytes_of("b")), mid(1));
  ASSERT_TRUE(receiver.receive(sender.reveal(1, 0), mid(2)).has_value());
  EXPECT_EQ(receiver.buffered_records(1), 1u);
  // Replay of the same reveal fails; the other message still works.
  EXPECT_FALSE(receiver.receive(sender.reveal(1, 0), mid(2)).has_value());
  EXPECT_TRUE(receiver.receive(sender.reveal(1, 1), mid(2)).has_value());
}

TEST(DapMultiMessage, FloodStealsSlotsFromTheWholeInterval) {
  // Multiple authentic messages share the m buffers with the flood: with
  // m = 2 and three authentic announcements plus a flood, not all three
  // can survive.
  const auto config = test_config(2);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  for (const char* text : {"a", "b", "c"}) {
    receiver.receive(sender.announce(1, bytes_of(text)), mid(1));
  }
  std::size_t authenticated = 0;
  for (std::size_t k = 0; k < 3; ++k) {
    if (receiver.receive(sender.reveal(1, k), mid(2))) ++authenticated;
  }
  EXPECT_LE(authenticated, 2u);
}

TEST(DapMultiMessage, RevealBoundsChecked) {
  DapSender sender(test_config(), bytes_of("seed"));
  (void)sender.announce(1, bytes_of("only-one"));
  EXPECT_NO_THROW((void)sender.reveal(1, 0));
  EXPECT_THROW((void)sender.reveal(1, 1), std::logic_error);
  EXPECT_EQ(sender.announced_count(2), 0u);
}

TEST(DapMultiMessage, StaleRoundsArePruned) {
  const auto config = test_config(4);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("old")), mid(1));
  EXPECT_EQ(receiver.buffered_records(1), 1u);
  // An announcement for interval 3 makes interval 1's records (key long
  // public, d = 1) unusable; they are dropped.
  receiver.receive(sender.announce(3, bytes_of("new")), mid(3));
  EXPECT_EQ(receiver.buffered_records(1), 0u);
  EXPECT_EQ(receiver.buffered_records(3), 1u);
}

// ------------------------------------------- batched reveal verification

TEST(DapBatchReveal, DrainMatchesSerialReceive) {
  const auto config = test_config(8);
  DapSender sender(config, bytes_of("seed"));
  auto serial = make_receiver(config, sender, /*seed=*/5);
  auto batched = make_receiver(config, sender, /*seed=*/5);
  for (const char* text : {"a", "b", "c", "d"}) {
    const auto announce = sender.announce(1, bytes_of(text));
    serial.receive(announce, mid(1));
    batched.receive(announce, mid(1));
  }
  std::vector<std::optional<tesla::AuthenticatedMessage>> serial_out;
  for (std::size_t k = 0; k < 4; ++k) {
    const auto reveal = sender.reveal(1, k);
    serial_out.push_back(serial.receive(reveal, mid(2)));
    batched.enqueue(reveal);
  }
  EXPECT_EQ(batched.pending_reveals(), 4u);
  const auto batch_out = batched.drain_pending_batch(mid(2));
  EXPECT_EQ(batched.pending_reveals(), 0u);
  ASSERT_EQ(batch_out.size(), serial_out.size());
  for (std::size_t k = 0; k < serial_out.size(); ++k) {
    ASSERT_EQ(batch_out[k].has_value(), serial_out[k].has_value()) << k;
    if (batch_out[k]) {
      EXPECT_EQ(batch_out[k]->message, serial_out[k]->message);
      EXPECT_EQ(batch_out[k]->interval, serial_out[k]->interval);
    }
  }
  EXPECT_EQ(batched.stats().strong_auth_success,
            serial.stats().strong_auth_success);
}

TEST(DapBatchReveal, SharedIntervalDerivesKeyOnce) {
  // 33 same-interval reveals: the serial path derives F'(K_1) once per
  // reveal; the batch drain derives it once per interval (>= 5x fewer at
  // batch sizes >= 32 — the batching KPI).
  const auto config = test_config(/*buffers=*/40);
  DapSender sender(config, bytes_of("seed"));
  auto serial = make_receiver(config, sender, /*seed=*/5);
  auto batched = make_receiver(config, sender, /*seed=*/5);
  for (std::size_t k = 0; k < 33; ++k) {
    const auto announce =
        sender.announce(1, bytes_of(std::string("m") + std::to_string(k)));
    serial.receive(announce, mid(1));
    batched.receive(announce, mid(1));
  }
  std::size_t serial_ok = 0;
  for (std::size_t k = 0; k < 33; ++k) {
    const auto reveal = sender.reveal(1, k);
    if (serial.receive(reveal, mid(2))) ++serial_ok;
    batched.enqueue(reveal);
  }
  auto& reg = obs::Registry::global();
  const auto midstate_hits = reg.counter("crypto.hmac_midstate_hits");
  const std::uint64_t hits_before = reg.value(midstate_hits);
  const auto batch_out = batched.drain_pending_batch(mid(2));
  // The drain's 33 MACs all reuse the interval key's precomputed
  // ipad/opad midstates instead of recomputing the pads per MAC.
  EXPECT_GE(reg.value(midstate_hits), hits_before + 33);
  std::size_t batch_ok = 0;
  for (const auto& r : batch_out) {
    if (r) ++batch_ok;
  }
  EXPECT_EQ(serial_ok, 33u);
  EXPECT_EQ(batch_ok, 33u);
  EXPECT_EQ(serial.stats().mac_key_derivations, 33u);
  EXPECT_EQ(batched.stats().mac_key_derivations, 1u);
  EXPECT_GE(serial.stats().mac_key_derivations,
            5 * batched.stats().mac_key_derivations);
}

TEST(DapBatchReveal, OutcomesAreNotCachedAcrossDuplicates) {
  // Two reveals of the same record in one batch: the first consumes the
  // record, the second must fail — a correct batch layer caches only the
  // derived key, never the accept/reject outcome.
  const auto config = test_config(8);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("once")), mid(1));
  const auto reveal = sender.reveal(1, 0);
  receiver.enqueue(reveal);
  receiver.enqueue(reveal);
  const auto out = receiver.drain_pending_batch(mid(2));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].has_value());
  EXPECT_FALSE(out[1].has_value());
  EXPECT_EQ(receiver.stats().mac_key_derivations, 1u);
}

TEST(DapBatchReveal, CrashRestartDropsPendingBacklog) {
  const auto config = test_config(8);
  DapSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  receiver.enqueue(sender.reveal(1, 0));
  EXPECT_EQ(receiver.pending_reveals(), 1u);
  receiver.crash_restart(mid(1));
  EXPECT_EQ(receiver.pending_reveals(), 0u);
  EXPECT_TRUE(receiver.drain_pending_batch(mid(2)).empty());
}

}  // namespace
}  // namespace dap::protocol
