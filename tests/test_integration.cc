// Cross-module integration tests: full protocol stacks driven through
// the event-driven broadcast medium with loss, latency, clock skew and
// live attackers — the closest thing to the paper's deployment scenario.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/adaptive_defender.h"
#include "dap/dap.h"
#include "dap/multi_sender.h"
#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/medium.h"
#include "tesla/mutesla.h"
#include "tesla/tesla.h"
#include "tesla/timesync.h"

namespace dap {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

// --------------------------------------------------- TESLA over a medium

TEST(Integration, TeslaOverLossyMediumWithSkewedClocks) {
  sim::EventQueue queue;
  Rng rng(1);
  sim::Medium medium(queue, rng);

  tesla::TeslaConfig config;
  config.chain_length = 64;
  config.disclosure_delay = 2;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  tesla::TeslaSender sender(config, bytes_of("campaign-seed"));

  // Bootstrap is verified out-of-band by every receiver.
  const auto bootstrap = sender.bootstrap();
  ASSERT_TRUE(tesla::verify_bootstrap(bootstrap,
                                      bootstrap.signer_public_key));

  constexpr int kReceivers = 5;
  std::vector<tesla::TeslaReceiver> receivers;
  std::vector<std::size_t> authenticated(kReceivers, 0);
  receivers.reserve(kReceivers);
  for (int r = 0; r < kReceivers; ++r) {
    const auto clock =
        sim::LooseClock::random(rng, 50 * sim::kMillisecond);
    receivers.emplace_back(config, bootstrap.commitment, clock);
  }
  for (int r = 0; r < kReceivers; ++r) {
    medium.attach(
        [&, r](const wire::Packet& packet, sim::SimTime now) {
          if (const auto* p = std::get_if<wire::TeslaPacket>(&packet)) {
            authenticated[static_cast<std::size_t>(r)] +=
                receivers[static_cast<std::size_t>(r)].receive(*p, now)
                    .size();
          }
        },
        std::make_unique<sim::BernoulliChannel>(0.2),
        5 * sim::kMillisecond);
  }

  for (std::uint32_t i = 1; i <= 40; ++i) {
    queue.schedule_at(config.schedule.interval_start(i) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.make_packet(i, bytes_of("r"))});
    });
  }
  queue.run();

  for (int r = 0; r < kReceivers; ++r) {
    // 20% loss: a receiver hears ~32 of 40 packets; nearly every heard
    // packet eventually authenticates thanks to chained disclosures.
    EXPECT_GT(authenticated[static_cast<std::size_t>(r)], 20u) << "r=" << r;
    EXPECT_EQ(receivers[static_cast<std::size_t>(r)].stats().macs_rejected,
              0u);
  }
}

// ------------------------------------------------- μTESLA under burst loss

TEST(Integration, MuTeslaSurvivesGilbertElliottBursts) {
  sim::EventQueue queue;
  Rng rng(2);
  sim::Medium medium(queue, rng);

  tesla::MuTeslaConfig config;
  config.chain_length = 64;
  config.disclosure_delay = 1;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  tesla::MuTeslaSender sender(config, bytes_of("seed"));

  const Bytes master = bytes_of("node-master-key");
  const auto bootstrap = sender.bootstrap_for(master);
  ASSERT_TRUE(tesla::verify_mutesla_bootstrap(bootstrap, master));

  tesla::MuTeslaReceiver receiver(config, bootstrap.commitment,
                                  sim::LooseClock(0, 0));
  std::size_t authenticated = 0;
  medium.attach(
      [&](const wire::Packet& packet, sim::SimTime now) {
        if (const auto* p = std::get_if<wire::TeslaPacket>(&packet)) {
          authenticated += receiver.receive(*p, now).size();
        } else if (const auto* d =
                       std::get_if<wire::KeyDisclosure>(&packet)) {
          authenticated += receiver.receive(*d, now).size();
        }
      },
      std::make_unique<sim::GilbertElliottChannel>(0.05, 0.3, 0.02, 0.9));

  for (std::uint32_t i = 1; i <= 50; ++i) {
    queue.schedule_at(config.schedule.interval_start(i) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.make_packet(i, bytes_of("m"))});
      if (const auto disclosure = sender.disclosure(i)) {
        medium.broadcast(wire::Packet{*disclosure});
      }
    });
  }
  queue.run();
  // Bursty loss wipes out stretches, but the one-way chain re-anchors;
  // a solid majority still authenticates and nothing forged slips in.
  EXPECT_GT(authenticated, 25u);
  EXPECT_EQ(receiver.stats().macs_rejected, 0u);
}

// --------------------------------------------- DAP under live flooding DoS

TEST(Integration, DapUnderFloodingAttackOverMedium) {
  sim::EventQueue queue;
  Rng rng(3);
  sim::Medium medium(queue, rng);

  protocol::DapConfig config;
  config.chain_length = 64;
  config.buffers = 6;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"), sim::LooseClock(0, 0),
                                 rng.fork(1));
  sim::FloodingForger forger(config.sender_id, config.mac_size, rng.fork(2));

  std::size_t authenticated = 0;
  medium.attach(
      [&](const wire::Packet& packet, sim::SimTime now) {
        if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
          receiver.receive(*a, now);
        } else if (const auto* m =
                       std::get_if<wire::MessageReveal>(&packet)) {
          if (receiver.receive(*m, now)) ++authenticated;
        }
      },
      std::make_unique<sim::PerfectChannel>());

  const std::uint32_t kIntervals = 30;
  // Attacker floods p = 0.75 (3 forged per authentic copy).
  for (std::uint32_t i = 1; i <= kIntervals; ++i) {
    queue.schedule_at(config.schedule.interval_start(i) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.announce(i, bytes_of("data"))});
      for (int f = 0; f < 3; ++f) {
        medium.broadcast(wire::Packet{forger.forge(i)});
      }
    });
    queue.schedule_at(config.schedule.interval_start(i + 1) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.reveal(i)});
    });
  }
  queue.run();
  // p^m = 0.75^6 ~ 0.18: expect the vast majority authenticated.
  EXPECT_GT(authenticated, kIntervals * 6 / 10);
  // Forged announcements occupied buffer slots but never authenticated.
  EXPECT_EQ(receiver.stats().strong_auth_success, authenticated);
  // Memory never exceeded m records per open round.
  EXPECT_LE(receiver.stored_record_bits(),
            config.buffers * 56 * 2);  // at most two open rounds
}

// ------------------------------------- adaptive stack end-to-end under DoS

TEST(Integration, AdaptiveDefenderEndToEndOverMedium) {
  sim::EventQueue queue;
  Rng rng(4);
  sim::Medium medium(queue, rng);

  core::AdaptiveConfig config;
  config.dap.chain_length = 128;
  config.dap.buffers = 1;
  config.dap.schedule = sim::IntervalSchedule(0, sim::kSecond);
  config.retune_period = 4;
  config.estimator_smoothing = 0.5;
  protocol::DapSender sender(config.dap, bytes_of("seed"));
  core::AdaptiveDefender defender(config, sender.chain().commitment(),
                                  bytes_of("local"), sim::LooseClock(0, 0),
                                  rng.fork(1));
  sim::FloodingForger forger(config.dap.sender_id, config.dap.mac_size,
                             rng.fork(2));

  std::map<std::uint32_t, std::size_t> announce_counts;
  medium.attach(
      [&](const wire::Packet& packet, sim::SimTime now) {
        if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
          defender.receive(*a, now);
          ++announce_counts[a->interval];
        } else if (const auto* m =
                       std::get_if<wire::MessageReveal>(&packet)) {
          (void)defender.receive(*m, now);
        }
      },
      std::make_unique<sim::PerfectChannel>());

  const std::uint32_t kIntervals = 40;
  for (std::uint32_t i = 1; i <= kIntervals; ++i) {
    queue.schedule_at(config.dap.schedule.interval_start(i) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.announce(i, bytes_of("m"))});
      for (int f = 0; f < 9; ++f) {  // p = 0.9
        medium.broadcast(wire::Packet{forger.forge(i)});
      }
    });
    queue.schedule_at(config.dap.schedule.interval_start(i + 1) + 100,
                      [&, i] {
                        medium.broadcast(wire::Packet{sender.reveal(i)});
                      });
    // Close the interval bookkeeping right after its reveal.
    queue.schedule_at(config.dap.schedule.interval_start(i + 1) + 200,
                      [&, i] {
                        defender.close_interval(announce_counts[i]);
                      });
  }
  queue.run();

  // The estimator locked on to p ~ 0.9 and the optimiser raised m.
  EXPECT_NEAR(defender.estimated_p(), 0.9, 0.03);
  EXPECT_GT(defender.current_buffers(), 20u);
  // After the ramp-up the defender defeats most attacks.
  EXPECT_GT(defender.stats().attacks_defeated,
            defender.stats().attacks_succeeded);
}

// --------------------------------------------- replay attack across stack

TEST(Integration, ReplayedAnnouncementsAreHarmless) {
  sim::EventQueue queue;
  Rng rng(5);
  sim::Medium medium(queue, rng);

  protocol::DapConfig config;
  config.chain_length = 32;
  config.buffers = 4;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"), sim::LooseClock(0, 0),
                                 rng.fork(1));
  sim::ReplayAttacker replayer;

  std::size_t authenticated = 0;
  medium.attach(
      [&](const wire::Packet& packet, sim::SimTime now) {
        if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
          receiver.receive(*a, now);
          replayer.observe(*a);
        } else if (const auto* m =
                       std::get_if<wire::MessageReveal>(&packet)) {
          if (receiver.receive(*m, now)) ++authenticated;
        }
      },
      std::make_unique<sim::PerfectChannel>());

  for (std::uint32_t i = 1; i <= 5; ++i) {
    queue.schedule_at(config.schedule.interval_start(i) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.announce(i, bytes_of("m"))});
    });
    queue.schedule_at(config.schedule.interval_start(i + 1) + 100, [&, i] {
      medium.broadcast(wire::Packet{sender.reveal(i)});
    });
  }
  // Interval 8: replay all recorded announcements (their keys are long
  // public). The safety check must discard every one.
  queue.schedule_at(config.schedule.interval_start(8), [&] {
    replayer.replay_all(medium);
  });
  queue.run();

  EXPECT_EQ(authenticated, 5u);
  EXPECT_EQ(receiver.stats().announces_unsafe, 5u);  // the replays
}

}  // namespace
}  // namespace dap

// ------------------------------------- time sync bootstrapping the stack

namespace dap {
namespace {

TEST(Integration, TimeSyncCalibrationDrivesTeslaSafetyCheck) {
  // A receiver with an unknown clock offset first syncs, then uses the
  // calibration's upper bound as its safety check for DAP rounds.
  tesla::TimeSyncClient client(bytes_of("pairwise"), 1);
  tesla::TimeSyncResponder responder(bytes_of("pairwise"));

  // Sender clock runs 250 ms ahead of the receiver; RTT 30 ms.
  const std::int64_t true_offset = 250 * sim::kMillisecond;
  const sim::SimTime t0 = 100 * sim::kMillisecond;
  const auto request = client.begin(t0);
  const auto response = responder.respond(
      request,
      t0 + 15 * sim::kMillisecond + static_cast<sim::SimTime>(true_offset));
  const auto calibration =
      client.complete(response, t0 + 30 * sim::kMillisecond);
  ASSERT_TRUE(calibration.has_value());

  protocol::DapConfig config;
  config.chain_length = 16;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"), sim::LooseClock(0, 0),
                                 common::Rng(1));

  // The sender announces in its interval 1; by receiver-local 600 ms the
  // calibration still proves the key undisclosed (bound ~895 ms < 1 s),
  // so the packet is accepted into the buffers.
  const auto announce = sender.announce(1, bytes_of("m"));
  const sim::SimTime receive_time = 600 * sim::kMillisecond;
  ASSERT_TRUE(calibration->packet_safe(1, config.disclosure_delay,
                                       receive_time, config.schedule));
  receiver.receive(announce, receive_time);
  EXPECT_TRUE(
      receiver.receive(sender.reveal(1), 2 * sim::kSecond).has_value());

  // A packet arriving at local 800 ms could already be forged (bound
  // 1095 ms >= 1000 ms): the calibration rejects it even though the
  // receiver's own naive clock would have accepted it.
  EXPECT_FALSE(calibration->packet_safe(1, config.disclosure_delay,
                                        800 * sim::kMillisecond,
                                        config.schedule));
  EXPECT_TRUE(sim::LooseClock(0, 0).packet_safe(
      1, config.disclosure_delay, 800 * sim::kMillisecond, config.schedule));
}

// --------------------------------------- multi-sender MCN over the medium

TEST(Integration, MultiSenderCrowdOverMedium) {
  sim::EventQueue queue;
  Rng rng(41);
  sim::Medium medium(queue, rng);

  // Three mobile senders; one receiver tracking all of them under a
  // shared 18-record budget; a flooding attacker targets sender 2 only.
  std::vector<protocol::DapSender> senders;
  protocol::DapConfig base;
  base.chain_length = 32;
  base.schedule = sim::IntervalSchedule(0, sim::kSecond);
  for (wire::NodeId id = 1; id <= 3; ++id) {
    auto config = base;
    config.sender_id = id;
    senders.emplace_back(config, rng.fork(id).bytes(16));
  }
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), rng.fork(99),
                                         18);
  for (wire::NodeId id = 1; id <= 3; ++id) {
    receiver.register_sender(id, senders[id - 1].config(),
                             senders[id - 1].chain().commitment());
  }
  std::map<wire::NodeId, std::size_t> authenticated;
  medium.attach(
      [&](const wire::Packet& packet, sim::SimTime now) {
        if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
          receiver.receive(*a, now);
        } else if (const auto* r = std::get_if<wire::MessageReveal>(&packet)) {
          if (const auto msg = receiver.receive(*r, now)) {
            ++authenticated[msg->sender];
          }
        }
      },
      std::make_unique<sim::BernoulliChannel>(0.05));

  sim::FloodingForger forger(2, 10, rng.fork(7));
  const std::uint32_t kIntervals = 25;
  for (std::uint32_t i = 1; i <= kIntervals; ++i) {
    queue.schedule_at(base.schedule.interval_start(i) + 500, [&, i] {
      for (auto& sender : senders) {
        medium.broadcast(wire::Packet{sender.announce(i, bytes_of("m"))});
      }
      forger.flood(medium, i, 6);  // p = 6/7 against sender 2 only
    });
    queue.schedule_at(base.schedule.interval_start(i + 1) + 500, [&, i] {
      for (auto& sender : senders) {
        medium.broadcast(wire::Packet{sender.reveal(i)});
      }
    });
  }
  queue.run();

  // Unflooded senders authenticate nearly everything (only channel loss
  // interferes); the flooded one still clears a majority with 6 buffers.
  EXPECT_GT(authenticated[1], kIntervals * 8 / 10);
  EXPECT_GT(authenticated[3], kIntervals * 8 / 10);
  EXPECT_GT(authenticated[2], kIntervals / 3);
  EXPECT_LT(authenticated[2], authenticated[1]);
  EXPECT_EQ(receiver.stats().unknown_sender_packets, 0u);
}

}  // namespace
}  // namespace dap
