// Tests for the bounded-resource relay ingress guard: fixed-capacity
// dedup with deterministic eviction, token-bucket budget shedding, and
// the crash-volatility semantics FleetSim's fault injection relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "fleet/guard.h"
#include "sim/time.h"

namespace dap {
namespace {

using fleet::GuardConfig;
using fleet::IngressGuard;
using Verdict = fleet::IngressGuard::Verdict;

TEST(IngressGuard, DedupDetectsRepeatsAndSkipsDistinctTags) {
  GuardConfig config;
  config.capacity = 64;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(0xabcdu, 100, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(0xabcdu, 100, 0), Verdict::kDuplicate);
  EXPECT_EQ(guard.admit(0xef01u, 100, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.stats().admitted, 2u);
  EXPECT_EQ(guard.stats().deduped, 1u);
  EXPECT_EQ(guard.occupancy(), 2u);
}

TEST(IngressGuard, OccupancyNeverExceedsCapacityUnderFlood) {
  GuardConfig config;
  config.capacity = 64;
  IngressGuard guard(config);
  for (std::uint64_t tag = 1; tag <= 10'000; ++tag) {
    (void)guard.admit(tag, 200, 0);
  }
  EXPECT_LE(guard.occupancy(), guard.capacity());
  EXPECT_LE(guard.peak_occupancy(), guard.capacity());
  // Conservation: every admitted tag either filled an empty slot (still
  // occupied) or overwrote a tenant (counted as evicted).
  EXPECT_EQ(guard.stats().admitted, guard.occupancy() + guard.stats().evicted);
  EXPECT_GE(guard.stats().evicted, 10'000u - guard.capacity());
}

TEST(IngressGuard, EvictionIsDeterministic) {
  GuardConfig config;
  config.capacity = 8;
  IngressGuard a(config);
  IngressGuard b(config);
  for (std::uint64_t tag = 1; tag <= 1'000; ++tag) {
    EXPECT_EQ(a.admit(tag * 0x9e37u, 64, 0), b.admit(tag * 0x9e37u, 64, 0));
  }
  EXPECT_EQ(a.stats().evicted, b.stats().evicted);
  EXPECT_EQ(a.occupancy(), b.occupancy());
}

TEST(IngressGuard, SingleSlotStoreWorks) {
  GuardConfig config;
  config.capacity = 1;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(7, 64, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(7, 64, 0), Verdict::kDuplicate);
  EXPECT_EQ(guard.admit(9, 64, 0), Verdict::kAdmit);  // evicts 7
  EXPECT_EQ(guard.admit(7, 64, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.stats().evicted, 2u);
  EXPECT_EQ(guard.peak_occupancy(), 1u);
}

TEST(IngressGuard, ZeroTagIsRemappedNotTreatedAsEmpty) {
  GuardConfig config;
  config.capacity = 16;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(0, 64, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(0, 64, 0), Verdict::kDuplicate);
  // Tag 0 and tag 1 share the remapped identity by design.
  EXPECT_EQ(guard.admit(1, 64, 0), Verdict::kDuplicate);
}

TEST(IngressGuard, BudgetShedsExcessThenRefills) {
  GuardConfig config;
  config.capacity = 64;
  config.budget_mbps = 1.0;    // 1e6 bits/s
  config.burst_bits = 1'000;   // ~1 ms of budget in the bucket
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(1, 800, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(2, 800, 0), Verdict::kShed);  // bucket exhausted
  EXPECT_EQ(guard.stats().shed, 1u);
  // 1 ms later the bucket holds another 1000 bits.
  EXPECT_EQ(guard.admit(2, 800, 1 * sim::kMillisecond), Verdict::kAdmit);
}

TEST(IngressGuard, ShedPacketsAreNotRemembered) {
  GuardConfig config;
  config.capacity = 64;
  config.budget_mbps = 1.0;
  config.burst_bits = 1'000;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(1, 900, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(2, 900, 0), Verdict::kShed);
  // The retransmission arrives within budget: it must be ADMITTED (not
  // treated as a duplicate of the shed copy).
  EXPECT_EQ(guard.admit(2, 900, 2 * sim::kMillisecond), Verdict::kAdmit);
}

TEST(IngressGuard, DuplicatesDoNotConsumeBudget) {
  GuardConfig config;
  config.capacity = 64;
  config.budget_mbps = 1.0;
  config.burst_bits = 1'000;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(1, 900, 0), Verdict::kAdmit);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(guard.admit(1, 900, 0), Verdict::kDuplicate);
  }
  // The bucket only paid for the single admitted copy.
  EXPECT_EQ(guard.admit(2, 900, 1 * sim::kMillisecond), Verdict::kAdmit);
}

TEST(IngressGuard, DedupDisabledStillEnforcesBudget) {
  GuardConfig config;
  config.capacity = 16;
  config.dedup = false;
  config.budget_mbps = 1.0;
  config.burst_bits = 1'000;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(1, 600, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(1, 600, 0), Verdict::kShed);  // no dedup, over budget
  EXPECT_EQ(guard.occupancy(), 0u);  // tag store bypassed entirely
}

TEST(IngressGuard, ResetClearsStoreAndRestartsBudgetFull) {
  GuardConfig config;
  config.capacity = 32;
  config.budget_mbps = 1.0;
  config.burst_bits = 1'000;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(1, 900, 0), Verdict::kAdmit);
  EXPECT_EQ(guard.admit(2, 900, 0), Verdict::kShed);
  guard.reset(100);
  EXPECT_EQ(guard.occupancy(), 0u);
  // Volatile state is gone: the old tag re-admits, and the bucket is
  // full again at the restart instant.
  EXPECT_EQ(guard.admit(1, 900, 100), Verdict::kAdmit);
  // Cumulative accounting survives the crash.
  EXPECT_EQ(guard.stats().shed, 1u);
  EXPECT_EQ(guard.stats().admitted, 2u);
  EXPECT_EQ(guard.peak_occupancy(), 1u);
}

TEST(IngressGuard, SetBudgetTightensMidRun) {
  GuardConfig config;
  config.capacity = 32;
  IngressGuard guard(config);
  EXPECT_EQ(guard.admit(1, 1'000'000, 0), Verdict::kAdmit);  // unlimited
  guard.set_budget(1.0, 1'000, 0);
  EXPECT_EQ(guard.admit(2, 2'000, 0), Verdict::kShed);
  EXPECT_EQ(guard.admit(3, 500, 0), Verdict::kAdmit);
}

TEST(IngressGuard, FalseDropsAreCallerClassified) {
  GuardConfig config;
  config.capacity = 8;
  IngressGuard guard(config);
  EXPECT_EQ(guard.stats().false_drops, 0u);
  guard.note_false_drop();
  guard.note_false_drop();
  EXPECT_EQ(guard.stats().false_drops, 2u);
}

}  // namespace
}  // namespace dap
