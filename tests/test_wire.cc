// Unit tests for src/wire: CRC-32, packet encode/decode round-trips,
// framing, corruption detection, and wire-size accounting.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "wire/crc32.h"
#include "wire/frame.h"
#include "wire/packet.h"

namespace dap::wire {
namespace {

using common::Bytes;
using common::bytes_of;

// ----------------------------------------------------------------- CRC32

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xe8b7be43u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data = bytes_of("some payload data");
  const std::uint32_t original = crc32(data);
  data[3] ^= 0x10;
  EXPECT_NE(crc32(data), original);
}

// --------------------------------------------------------------- packets

TeslaPacket sample_tesla() {
  TeslaPacket p;
  p.sender = 7;
  p.interval = 42;
  p.message = bytes_of("hello sensors");
  p.mac = Bytes(10, 0xab);
  p.disclosed_interval = 40;
  p.disclosed_key = Bytes(10, 0xcd);
  return p;
}

TEST(Packet, TeslaRoundTrip) {
  const Packet original{sample_tesla()};
  const auto decoded = decode(encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<TeslaPacket>(*decoded), sample_tesla());
}

TEST(Packet, MacAnnounceRoundTrip) {
  MacAnnounce p;
  p.sender = 3;
  p.interval = 9;
  p.mac = Bytes(10, 0x55);
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MacAnnounce>(*decoded), p);
}

TEST(Packet, MessageRevealRoundTrip) {
  MessageReveal p;
  p.sender = 3;
  p.interval = 9;
  p.message = bytes_of("reading=42");
  p.key = Bytes(10, 0x66);
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MessageReveal>(*decoded), p);
}

TEST(Packet, KeyDisclosureRoundTrip) {
  KeyDisclosure p;
  p.sender = 1;
  p.interval = 5;
  p.key = Bytes(10, 0x77);
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<KeyDisclosure>(*decoded), p);
}

TEST(Packet, CdmRoundTrip) {
  CdmPacket p;
  p.sender = 2;
  p.high_interval = 6;
  p.low_commitment = Bytes(10, 0x88);
  p.next_cdm_image = Bytes(32, 0x99);
  p.mac = Bytes(10, 0xaa);
  p.disclosed_high_key = Bytes(10, 0xbb);
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<CdmPacket>(*decoded), p);
}

TEST(Packet, BootstrapRoundTrip) {
  BootstrapPacket p;
  p.sender = 1;
  p.start_interval = 1;
  p.interval_duration_us = 1000000;
  p.commitment = Bytes(10, 0x11);
  p.signature = Bytes(80, 0x22);
  p.signer_public_key = Bytes(32, 0x33);
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<BootstrapPacket>(*decoded), p);
}

TEST(Packet, EmptyFieldsRoundTrip) {
  TeslaPacket p;
  p.sender = 1;
  p.interval = 1;
  // message, mac, disclosed_key all empty
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<TeslaPacket>(*decoded), p);
}

TEST(Packet, DecodeRejectsEmptyAndUnknownTag) {
  EXPECT_FALSE(decode({}).has_value());
  const Bytes unknown = {0xee, 1, 0, 0, 0};
  EXPECT_FALSE(decode(unknown).has_value());
}

TEST(Packet, DecodeRejectsTruncation) {
  const Bytes full = encode(Packet{sample_tesla()});
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    const common::ByteView prefix(full.data(), full.size() - cut);
    EXPECT_FALSE(decode(prefix).has_value()) << "cut " << cut;
  }
}

TEST(Packet, DecodeRejectsTrailingGarbage) {
  Bytes data = encode(Packet{sample_tesla()});
  data.push_back(0x00);
  EXPECT_FALSE(decode(data).has_value());
}

TEST(Packet, SenderOfAllKinds) {
  EXPECT_EQ(sender_of(Packet{sample_tesla()}), 7u);
  MacAnnounce a;
  a.sender = 9;
  EXPECT_EQ(sender_of(Packet{a}), 9u);
}

TEST(Packet, WireBitsAccounting) {
  // MacAnnounce: header (8+32) + interval 32 + mac blob (16 + 80) = 168.
  MacAnnounce a;
  a.mac = Bytes(10, 0);
  EXPECT_EQ(a.wire_bits(), 8u + 32 + 32 + 16 + 80);
  // A MAC-only announce must be much smaller than a full TESLA packet.
  EXPECT_LT(Packet{a}.index(), 6u);
  EXPECT_LT(wire_bits(Packet{a}), wire_bits(Packet{sample_tesla()}));
}

TEST(Packet, WireBitsMatchesEncodedSizeOrder) {
  // encode() length in bits should track wire_bits (same fields).
  const Packet p{sample_tesla()};
  EXPECT_EQ(encode(p).size() * 8, wire_bits(p));
}

// ----------------------------------------------------------------- frame

TEST(Frame, RoundTrip) {
  const Packet p{sample_tesla()};
  const auto decoded = deframe(frame(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<TeslaPacket>(*decoded), sample_tesla());
}

TEST(Frame, DetectsCorruptionAnywhere) {
  const Bytes framed = frame(Packet{sample_tesla()});
  common::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes copy = framed;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, copy.size() - 1));
    const auto bit = static_cast<int>(rng.uniform(0, 7));
    copy[pos] = static_cast<std::uint8_t>(copy[pos] ^ (1u << bit));
    EXPECT_FALSE(deframe(copy).has_value());
  }
}

TEST(Frame, RejectsTooShort) {
  EXPECT_FALSE(deframe(Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(deframe({}).has_value());
}

TEST(Frame, WotsSignatureTransportRoundTrip) {
  std::vector<Bytes> chains = {Bytes(32, 1), Bytes(32, 2), Bytes(32, 3)};
  const Bytes encoded = encode_wots_signature(chains);
  const auto decoded = decode_wots_signature(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, chains);
}

TEST(Frame, WotsSignatureRejectsTruncation) {
  std::vector<Bytes> chains = {Bytes(32, 1), Bytes(32, 2)};
  Bytes encoded = encode_wots_signature(chains);
  encoded.resize(encoded.size() - 5);
  EXPECT_FALSE(decode_wots_signature(encoded).has_value());
  encoded.clear();
  EXPECT_FALSE(decode_wots_signature(encoded).has_value());
}

TEST(Frame, WotsSignatureRejectsTrailingBytes) {
  Bytes encoded = encode_wots_signature({Bytes(4, 9)});
  encoded.push_back(0);
  EXPECT_FALSE(decode_wots_signature(encoded).has_value());
}

}  // namespace
}  // namespace dap::wire

// ------------------------------------------- malformed-input decode table
//
// One canonical instance per wire message kind, run through the same set
// of adversarial shapes: truncation at every byte, oversized input
// (trailing garbage), a length prefix claiming more bytes than remain
// ("bad index" into the payload), and single-bit flips at every position.
// Decode must never crash; where rejection is guaranteed it must return
// nullopt, and any accepted mutation must still be a canonical encoding.

namespace dap::wire {
namespace {

using common::Bytes;
using common::bytes_of;

struct MalformedCase {
  const char* name;
  Packet packet;
  // Offset of the first u16 blob length prefix in the encoding (after the
  // tag, sender, and any fixed-width integer fields).
  std::size_t first_blob_offset;
};

std::vector<MalformedCase> malformed_cases() {
  TeslaPacket tesla;
  tesla.sender = 7;
  tesla.interval = 42;
  tesla.message = bytes_of("hello sensors");
  tesla.mac = Bytes(10, 0xab);
  tesla.disclosed_interval = 40;
  tesla.disclosed_key = Bytes(10, 0xcd);

  MacAnnounce announce;
  announce.sender = 3;
  announce.interval = 9;
  announce.mac = Bytes(10, 0x55);

  MessageReveal reveal;
  reveal.sender = 3;
  reveal.interval = 9;
  reveal.message = bytes_of("reading=42");
  reveal.key = Bytes(10, 0x66);

  KeyDisclosure disclosure;
  disclosure.sender = 1;
  disclosure.interval = 5;
  disclosure.key = Bytes(10, 0x77);

  CdmPacket cdm;
  cdm.sender = 2;
  cdm.high_interval = 6;
  cdm.low_commitment = Bytes(10, 0x88);
  cdm.next_cdm_image = Bytes(32, 0x99);
  cdm.mac = Bytes(10, 0xaa);
  cdm.disclosed_high_key = Bytes(10, 0xbb);

  BootstrapPacket bootstrap;
  bootstrap.sender = 1;
  bootstrap.start_interval = 1;
  bootstrap.interval_duration_us = 1000000;
  bootstrap.commitment = Bytes(10, 0x11);
  bootstrap.signature = Bytes(80, 0x22);
  bootstrap.signer_public_key = Bytes(32, 0x33);

  // tag(1) + sender(4) + one u32(4) = 9 for every kind except Bootstrap,
  // which carries an extra u64 duration before its first blob.
  return {
      {"tesla", Packet{tesla}, 9},
      {"mac_announce", Packet{announce}, 9},
      {"message_reveal", Packet{reveal}, 9},
      {"key_disclosure", Packet{disclosure}, 9},
      {"cdm", Packet{cdm}, 9},
      {"bootstrap", Packet{bootstrap}, 17},
  };
}

TEST(PacketMalformed, TruncationRejectedForEveryKind) {
  for (const auto& c : malformed_cases()) {
    const Bytes full = encode(c.packet);
    for (std::size_t len = 0; len < full.size(); ++len) {
      const common::ByteView prefix(full.data(), len);
      EXPECT_FALSE(decode(prefix).has_value())
          << c.name << " accepted a " << len << "-byte prefix";
    }
  }
}

TEST(PacketMalformed, OversizedInputRejectedForEveryKind) {
  for (const auto& c : malformed_cases()) {
    Bytes data = encode(c.packet);
    data.push_back(0x00);
    EXPECT_FALSE(decode(data).has_value())
        << c.name << " accepted one trailing byte";
    data.insert(data.end(), 64, 0xff);
    EXPECT_FALSE(decode(data).has_value())
        << c.name << " accepted 65 trailing bytes";
  }
}

TEST(PacketMalformed, OversizedLengthPrefixRejectedForEveryKind) {
  for (const auto& c : malformed_cases()) {
    Bytes data = encode(c.packet);
    ASSERT_GT(data.size(), c.first_blob_offset + 1) << c.name;
    // Claim 0xffff bytes in the first blob: far more than remain.
    data[c.first_blob_offset] = 0xff;
    data[c.first_blob_offset + 1] = 0xff;
    EXPECT_FALSE(decode(data).has_value())
        << c.name << " accepted an oversized length prefix";
    // Off-by-one: claim exactly one byte more than the blob carries.
    Bytes one_more = encode(c.packet);
    one_more[c.first_blob_offset] =
        static_cast<std::uint8_t>(one_more[c.first_blob_offset] + 1);
    EXPECT_FALSE(decode(one_more).has_value())
        << c.name << " accepted a length prefix one past the payload";
  }
}

TEST(PacketMalformed, BitFlipsNeverCrashAndStayCanonical) {
  for (const auto& c : malformed_cases()) {
    const Bytes original = encode(c.packet);
    for (std::size_t pos = 0; pos < original.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes copy = original;
        copy[pos] = static_cast<std::uint8_t>(copy[pos] ^ (1u << bit));
        const auto decoded = decode(copy);
        if (decoded.has_value()) {
          // A flip inside a content field can still parse; it must then
          // re-encode to exactly the mutated bytes (canonical form) and
          // never silently equal the original packet.
          EXPECT_EQ(encode(*decoded), copy)
              << c.name << " byte " << pos << " bit " << bit;
          EXPECT_NE(encode(*decoded), original)
              << c.name << " byte " << pos << " bit " << bit;
        }
      }
    }
  }
}

TEST(PacketMalformed, FramedBitFlipsRejectedByCrc) {
  for (const auto& c : malformed_cases()) {
    const Bytes framed = frame(c.packet);
    common::Rng rng(11);
    for (int trial = 0; trial < 32; ++trial) {
      Bytes copy = framed;
      const auto pos =
          static_cast<std::size_t>(rng.uniform(0, copy.size() - 1));
      const auto bit = static_cast<int>(rng.uniform(0, 7));
      copy[pos] = static_cast<std::uint8_t>(copy[pos] ^ (1u << bit));
      EXPECT_FALSE(deframe(copy).has_value())
          << c.name << " framed flip at byte " << pos << " bit " << bit;
    }
  }
}

TEST(PacketMalformed, ExtremeIndexValuesDecodeCleanly) {
  // Interval/index fields are plain u32s: an attacker can put any value
  // there. The codec must accept them (semantic validation is the
  // receiver's job) without crashing and round-trip them exactly.
  TeslaPacket p;
  p.sender = 0xffffffffu;
  p.interval = 0xffffffffu;
  p.disclosed_interval = 0xffffffffu;
  p.mac = Bytes(10, 0x01);
  const auto decoded = decode(encode(Packet{p}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<TeslaPacket>(*decoded), p);
}

}  // namespace
}  // namespace dap::wire

// --------------------------------------------------- CDM MAC payload scope

namespace dap::wire {
namespace {

TEST(Packet, CdmMacPayloadCoversCommitmentAndImage) {
  CdmPacket p;
  p.sender = 1;
  p.high_interval = 7;
  p.low_commitment = Bytes(10, 0x01);
  p.next_cdm_image = Bytes(32, 0x02);
  p.mac = Bytes(10, 0x03);
  p.disclosed_high_key = Bytes(10, 0x04);
  const Bytes payload = p.mac_payload();
  // Changing any covered field changes the payload...
  CdmPacket q = p;
  q.low_commitment[0] ^= 1;
  EXPECT_NE(q.mac_payload(), payload);
  q = p;
  q.next_cdm_image[0] ^= 1;
  EXPECT_NE(q.mac_payload(), payload);
  q = p;
  q.high_interval = 8;
  EXPECT_NE(q.mac_payload(), payload);
  // ...while the MAC itself and the disclosed key are excluded (the key
  // authenticates via the chain; the MAC cannot cover itself).
  q = p;
  q.mac[0] ^= 1;
  q.disclosed_high_key[0] ^= 1;
  EXPECT_EQ(q.mac_payload(), payload);
}

TEST(Packet, WireBitsMatchesEncodedSizeForAllKinds) {
  common::Rng rng(77);
  MacAnnounce a;
  a.sender = 1;
  a.mac = rng.bytes(10);
  MessageReveal r;
  r.sender = 1;
  r.message = rng.bytes(25);
  r.key = rng.bytes(10);
  KeyDisclosure d;
  d.sender = 1;
  d.key = rng.bytes(10);
  CdmPacket c;
  c.sender = 1;
  c.low_commitment = rng.bytes(10);
  c.mac = rng.bytes(10);
  c.disclosed_high_key = rng.bytes(10);
  BootstrapPacket b;
  b.sender = 1;
  b.commitment = rng.bytes(10);
  b.signature = rng.bytes(100);
  b.signer_public_key = rng.bytes(32);
  for (const Packet& packet :
       {Packet{a}, Packet{r}, Packet{d}, Packet{c}, Packet{b}}) {
    EXPECT_EQ(encode(packet).size() * 8, wire_bits(packet));
  }
}

}  // namespace
}  // namespace dap::wire
