// Unit tests for the obs telemetry layer: registry handles, log-bucket
// histogram boundaries and percentile extraction, trace ring-buffer
// wraparound, JSONL/Chrome export round-trips, and the allocation-free
// hot-path guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "obs/tracer.h"

// ------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps
// it, which lets the regression tests below prove that registry and
// tracer updates are allocation-free after registration.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC can't see that the replacement operator delete below pairs with the
// malloc inside the replacement operator new, and warns on every new[].
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dap::obs {
namespace {

// ---------------------------------------------------------- Registry

TEST(Registry, RegistrationIsIdempotent) {
  Registry reg;
  const CounterHandle a = reg.counter("x");
  const CounterHandle b = reg.counter("x");
  EXPECT_EQ(a.index, b.index);
  reg.add(a, 2);
  reg.add(b, 3);
  EXPECT_EQ(reg.value(a), 5u);
  ASSERT_NE(reg.find_counter("x"), nullptr);
  EXPECT_EQ(*reg.find_counter("x"), 5u);
  EXPECT_EQ(reg.find_counter("y"), nullptr);
}

TEST(Registry, InstrumentTypesHaveSeparateNamespaces) {
  Registry reg;
  const CounterHandle c = reg.counter("same");
  const HistogramHandle h = reg.histogram("same");
  const GaugeHandle g = reg.gauge("same");
  const RateHandle r = reg.rate("same");
  reg.add(c, 7);
  reg.observe(h, 1.5);
  reg.set(g, 2.5);
  reg.mark(r, true);
  EXPECT_EQ(reg.value(c), 7u);
  EXPECT_EQ(reg.value(h).count(), 1u);
  EXPECT_DOUBLE_EQ(reg.value(g), 2.5);
  EXPECT_EQ(reg.value(r).trials(), 1u);
}

TEST(Registry, FindPointersSurviveLaterRegistrations) {
  Registry reg;
  const CounterHandle a = reg.counter("first");
  reg.add(a);
  const std::uint64_t* p = reg.find_counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("other." + std::to_string(i));
    reg.histogram("hist." + std::to_string(i));
  }
  EXPECT_EQ(p, reg.find_counter("first"));  // deque storage: stable
  EXPECT_EQ(*p, 1u);
}

TEST(Registry, ReportMatchesLegacyMetricsFormat) {
  Registry reg;
  reg.add(reg.counter("counter.a"), 3);
  reg.mark(reg.rate("rate.b"), true);
  reg.observe(reg.histogram("stat.c"), 1.0);
  const std::string report = reg.report();
  EXPECT_NE(report.find("counter.a = 3"), std::string::npos);
  EXPECT_NE(report.find("rate.b"), std::string::npos);
  EXPECT_NE(report.find("stat.c mean="), std::string::npos);
  // Counters come first, then rates, then observation moments.
  EXPECT_LT(report.find("counter.a"), report.find("rate.b"));
  EXPECT_LT(report.find("rate.b"), report.find("stat.c"));
}

TEST(Registry, UpdatesAreAllocationFreeAfterRegistration) {
  Registry reg;
  const CounterHandle c = reg.counter("dap.announces_received");
  const HistogramHandle h = reg.histogram("dap.rx_announce_us");
  const GaugeHandle g = reg.gauge("dap.buffers");
  const RateHandle r = reg.rate("dap.auth");
  // Warm up any lazy internals before measuring.
  reg.add(c);
  reg.observe(h, 1.0);
  reg.set(g, 1.0);
  reg.mark(r, true);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    reg.add(c);
    reg.observe(h, static_cast<double>(i));
    reg.set(g, static_cast<double>(i));
    reg.mark(r, (i & 1) != 0);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(before, after) << "registry hot-path updates allocated";
  EXPECT_EQ(reg.value(c), 10001u);
  EXPECT_EQ(reg.value(h).count(), 10001u);
}

TEST(Registry, NameLookupsAreAllocationFree) {
  Registry reg;
  reg.add(reg.counter("medium.broadcasts"), 4);
  const std::uint64_t before = g_allocations.load();
  const std::uint64_t* c = reg.find_counter("medium.broadcasts");
  const std::uint64_t after = g_allocations.load();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 4u);
  EXPECT_EQ(before, after) << "transparent lookup should not build strings";
}

// -------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, BucketBoundariesCoverOctavesLinearly) {
  // Bucket 0 is the underflow bucket for v <= 0 and denormal-small v.
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(-5.0), 0u);

  // 1.0 = 2^0: first sub-bucket of the exponent-0 octave.
  const std::size_t at_one = LatencyHistogram::bucket_index(1.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lower(at_one), 1.0);
  // The octave [1, 2) splits into 8 linear sub-buckets of width 0.125.
  EXPECT_EQ(LatencyHistogram::bucket_index(1.124), at_one);
  EXPECT_EQ(LatencyHistogram::bucket_index(1.125), at_one + 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(1.999), at_one + 7);
  EXPECT_EQ(LatencyHistogram::bucket_index(2.0), at_one + 8);

  // Every in-range bucket's edges bracket its members.
  for (const double v : {0.001, 0.5, 1.0, 3.7, 1024.0, 1e9}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_GE(v, LatencyHistogram::bucket_lower(i)) << v;
    EXPECT_LT(v, LatencyHistogram::bucket_upper(i)) << v;
  }

  // Bucket widths are at most 1/8 of the value's magnitude.
  for (const double v : {2.5, 77.0, 4096.0}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    const double width =
        LatencyHistogram::bucket_upper(i) - LatencyHistogram::bucket_lower(i);
    EXPECT_LE(width, v / 8.0 + 1e-12) << v;
  }
}

TEST(LatencyHistogram, PercentilesOfUniformDistribution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Log-bucket estimates carry <= 12.5% relative error by construction;
  // allow a slightly wider margin for the rank convention.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.14);
  EXPECT_NEAR(h.p90(), 900.0, 900.0 * 0.14);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.14);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(LatencyHistogram, PercentilesOfBimodalDistribution) {
  // 90% fast path at ~10us, 10% slow path at ~1000us: p50 must sit in
  // the fast mode and p99 in the slow mode — the shape that motivates
  // histograms over means for DoS work.
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.add(10.0);
  for (int i = 0; i < 100; ++i) h.add(1000.0);
  EXPECT_NEAR(h.p50(), 10.0, 10.0 * 0.14);
  EXPECT_NEAR(h.p99(), 1000.0, 1000.0 * 0.14);
  EXPECT_NEAR(h.moments().mean(), 109.0, 1e-9);
}

TEST(LatencyHistogram, MomentsMatchWelford) {
  LatencyHistogram h;
  common::RunningStats reference;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    h.add(v);
    reference.add(v);
  }
  EXPECT_DOUBLE_EQ(h.moments().mean(), reference.mean());
  EXPECT_DOUBLE_EQ(h.moments().stddev(), reference.stddev());
  EXPECT_DOUBLE_EQ(h.sum(), 40.0);
}

TEST(LatencyHistogram, EmptyHistogramIsSane) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

// ------------------------------------------------------- ScopedTimer

TEST(ScopedTimer, RecordsElapsedTime) {
  Registry reg;
  const HistogramHandle h = reg.histogram("timed");
  {
    const ScopedTimer timer(reg, h);
    // A few spins so the elapsed time is strictly positive on coarse
    // clocks too.
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  EXPECT_EQ(reg.value(h).count(), 1u);
  EXPECT_GE(reg.value(h).max(), 0.0);
}

TEST(ScopedTimer, DisabledTimingSkipsRecording) {
  Registry reg;
  const HistogramHandle h = reg.histogram("timed");
  set_timing_enabled(false);
  {
    const ScopedTimer timer(reg, h);
  }
  set_timing_enabled(true);
  EXPECT_EQ(reg.value(h).count(), 0u);
}

// ------------------------------------------------------------ Tracer

TEST(Tracer, RingBufferWrapsAround) {
  Tracer tracer(4);
  tracer.enable(true);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tracer.record(TraceKind::kAnnounce, i * 100, i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, holding the tail of the run: ids 6, 7, 8, 9.
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(events[k].id, 6 + k);
    EXPECT_EQ(events[k].t, (6 + k) * 100u);
  }
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  tracer.record(TraceKind::kAnnounce, 1);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 1);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, RecordingIsAllocationFree) {
  Tracer tracer(128);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 0);
  const std::uint64_t before = g_allocations.load();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    tracer.record(TraceKind::kAuthSuccess, i, i, 0.5, 0.5);
  }
  EXPECT_EQ(before, g_allocations.load());
}

// Minimal JSON value scanner for the round-trip tests.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  if (at == std::string::npos) return {};
  auto start = at + needle.size();
  auto end = line.find_first_of(",}", start);
  std::string value = line.substr(start, end - start);
  if (!value.empty() && value.front() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

TEST(Tracer, JsonlExportRoundTrips) {
  Tracer tracer(16);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 500000, 1);
  tracer.record(TraceKind::kAuthSuccess, 1500000, 1, 0.25, 0.75);
  tracer.record(TraceKind::kEssStep, 42, 42, 0.5, 0.125);

  std::ostringstream out;
  tracer.export_jsonl(out);
  std::istringstream in(out.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);

  const auto original = tracer.snapshot();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(json_field(lines[i], "kind"),
              trace_kind_name(original[i].kind));
    EXPECT_EQ(json_field(lines[i], "id"), std::to_string(original[i].id));
    EXPECT_EQ(json_field(lines[i], "t"), std::to_string(original[i].t));
    EXPECT_DOUBLE_EQ(std::stod(json_field(lines[i], "a")), original[i].a);
    EXPECT_DOUBLE_EQ(std::stod(json_field(lines[i], "b")), original[i].b);
  }
}

TEST(Tracer, ChromeTraceExportIsWellFormed) {
  Tracer tracer(16);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 500000, 1);
  tracer.record(TraceKind::kAuthFail, 1500000, 1);
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"announce\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"auth_fail\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ------------------------------------------------------------ Export

TEST(Export, MetricsJsonContainsEveryInstrument) {
  Registry reg;
  reg.add(reg.counter("dap.announces_received"), 12);
  reg.set(reg.gauge("dap.buffers"), 6.0);
  reg.mark(reg.rate("dap.auth"), true);
  auto h = reg.histogram("dap.rx_announce_us");
  for (int i = 1; i <= 100; ++i) reg.observe(h, static_cast<double>(i));

  const std::string json = metrics_json(reg, 1.5);
  EXPECT_NE(json.find("\"schema\": \"dap.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"dap.announces_received\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"dap.buffers\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"trials\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, EmptyRegistryStillValid) {
  const Registry reg;
  const std::string json = metrics_json(reg);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
}

}  // namespace
}  // namespace dap::obs
