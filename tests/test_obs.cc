// Unit tests for the obs telemetry layer: registry handles, log-bucket
// histogram boundaries and percentile extraction, trace ring-buffer
// wraparound, causal spans, snapshot time series, JSONL/Chrome export
// round-trips, and the allocation-free hot-path guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"

// ------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps
// it, which lets the regression tests below prove that registry and
// tracer updates are allocation-free after registration.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC can't see that the replacement operator delete below pairs with the
// malloc inside the replacement operator new, and warns on every new[].
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dap::obs {
namespace {

// ---------------------------------------------------------- Registry

TEST(Registry, RegistrationIsIdempotent) {
  Registry reg;
  const CounterHandle a = reg.counter("x");
  const CounterHandle b = reg.counter("x");
  EXPECT_EQ(a.index, b.index);
  reg.add(a, 2);
  reg.add(b, 3);
  EXPECT_EQ(reg.value(a), 5u);
  ASSERT_NE(reg.find_counter("x"), nullptr);
  EXPECT_EQ(*reg.find_counter("x"), 5u);
  EXPECT_EQ(reg.find_counter("y"), nullptr);
}

TEST(Registry, InstrumentTypesHaveSeparateNamespaces) {
  Registry reg;
  const CounterHandle c = reg.counter("same");
  const HistogramHandle h = reg.histogram("same");
  const GaugeHandle g = reg.gauge("same");
  const RateHandle r = reg.rate("same");
  reg.add(c, 7);
  reg.observe(h, 1.5);
  reg.set(g, 2.5);
  reg.mark(r, true);
  EXPECT_EQ(reg.value(c), 7u);
  EXPECT_EQ(reg.value(h).count(), 1u);
  EXPECT_DOUBLE_EQ(reg.value(g), 2.5);
  EXPECT_EQ(reg.value(r).trials(), 1u);
}

TEST(Registry, FindPointersSurviveLaterRegistrations) {
  Registry reg;
  const CounterHandle a = reg.counter("first");
  reg.add(a);
  const std::uint64_t* p = reg.find_counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("other." + std::to_string(i));
    reg.histogram("hist." + std::to_string(i));
  }
  EXPECT_EQ(p, reg.find_counter("first"));  // deque storage: stable
  EXPECT_EQ(*p, 1u);
}

TEST(Registry, ReportMatchesLegacyMetricsFormat) {
  Registry reg;
  reg.add(reg.counter("counter.a"), 3);
  reg.mark(reg.rate("rate.b"), true);
  reg.observe(reg.histogram("stat.c"), 1.0);
  const std::string report = reg.report();
  EXPECT_NE(report.find("counter.a = 3"), std::string::npos);
  EXPECT_NE(report.find("rate.b"), std::string::npos);
  EXPECT_NE(report.find("stat.c mean="), std::string::npos);
  // Counters come first, then rates, then observation moments.
  EXPECT_LT(report.find("counter.a"), report.find("rate.b"));
  EXPECT_LT(report.find("rate.b"), report.find("stat.c"));
}

TEST(Registry, UpdatesAreAllocationFreeAfterRegistration) {
  Registry reg;
  const CounterHandle c = reg.counter("dap.announces_received");
  const HistogramHandle h = reg.histogram("dap.rx_announce_us");
  const GaugeHandle g = reg.gauge("dap.buffers");
  const RateHandle r = reg.rate("dap.auth");
  // Warm up any lazy internals before measuring.
  reg.add(c);
  reg.observe(h, 1.0);
  reg.set(g, 1.0);
  reg.mark(r, true);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    reg.add(c);
    reg.observe(h, static_cast<double>(i));
    reg.set(g, static_cast<double>(i));
    reg.mark(r, (i & 1) != 0);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(before, after) << "registry hot-path updates allocated";
  EXPECT_EQ(reg.value(c), 10001u);
  EXPECT_EQ(reg.value(h).count(), 10001u);
}

TEST(Registry, NameLookupsAreAllocationFree) {
  Registry reg;
  reg.add(reg.counter("medium.broadcasts"), 4);
  const std::uint64_t before = g_allocations.load();
  const std::uint64_t* c = reg.find_counter("medium.broadcasts");
  const std::uint64_t after = g_allocations.load();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 4u);
  EXPECT_EQ(before, after) << "transparent lookup should not build strings";
}

// -------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, BucketBoundariesCoverOctavesLinearly) {
  // Bucket 0 is the underflow bucket for v <= 0 and denormal-small v.
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(-5.0), 0u);

  // 1.0 = 2^0: first sub-bucket of the exponent-0 octave.
  const std::size_t at_one = LatencyHistogram::bucket_index(1.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lower(at_one), 1.0);
  // The octave [1, 2) splits into 8 linear sub-buckets of width 0.125.
  EXPECT_EQ(LatencyHistogram::bucket_index(1.124), at_one);
  EXPECT_EQ(LatencyHistogram::bucket_index(1.125), at_one + 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(1.999), at_one + 7);
  EXPECT_EQ(LatencyHistogram::bucket_index(2.0), at_one + 8);

  // Every in-range bucket's edges bracket its members.
  for (const double v : {0.001, 0.5, 1.0, 3.7, 1024.0, 1e9}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_GE(v, LatencyHistogram::bucket_lower(i)) << v;
    EXPECT_LT(v, LatencyHistogram::bucket_upper(i)) << v;
  }

  // Bucket widths are at most 1/8 of the value's magnitude.
  for (const double v : {2.5, 77.0, 4096.0}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    const double width =
        LatencyHistogram::bucket_upper(i) - LatencyHistogram::bucket_lower(i);
    EXPECT_LE(width, v / 8.0 + 1e-12) << v;
  }
}

TEST(LatencyHistogram, PercentilesOfUniformDistribution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Log-bucket estimates carry <= 12.5% relative error by construction;
  // allow a slightly wider margin for the rank convention.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.14);
  EXPECT_NEAR(h.p90(), 900.0, 900.0 * 0.14);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.14);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(LatencyHistogram, PercentilesOfBimodalDistribution) {
  // 90% fast path at ~10us, 10% slow path at ~1000us: p50 must sit in
  // the fast mode and p99 in the slow mode — the shape that motivates
  // histograms over means for DoS work.
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.add(10.0);
  for (int i = 0; i < 100; ++i) h.add(1000.0);
  EXPECT_NEAR(h.p50(), 10.0, 10.0 * 0.14);
  EXPECT_NEAR(h.p99(), 1000.0, 1000.0 * 0.14);
  EXPECT_NEAR(h.moments().mean(), 109.0, 1e-9);
}

TEST(LatencyHistogram, MomentsMatchWelford) {
  LatencyHistogram h;
  common::RunningStats reference;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    h.add(v);
    reference.add(v);
  }
  EXPECT_DOUBLE_EQ(h.moments().mean(), reference.mean());
  EXPECT_DOUBLE_EQ(h.moments().stddev(), reference.stddev());
  EXPECT_DOUBLE_EQ(h.sum(), 40.0);
}

TEST(LatencyHistogram, EmptyHistogramIsSane) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

// ------------------------------------------------------- ScopedTimer

TEST(ScopedTimer, RecordsElapsedTime) {
  Registry reg;
  const HistogramHandle h = reg.histogram("timed");
  {
    const ScopedTimer timer(reg, h);
    // A few spins so the elapsed time is strictly positive on coarse
    // clocks too.
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  EXPECT_EQ(reg.value(h).count(), 1u);
  EXPECT_GE(reg.value(h).max(), 0.0);
}

TEST(ScopedTimer, DisabledTimingSkipsRecording) {
  Registry reg;
  const HistogramHandle h = reg.histogram("timed");
  set_timing_enabled(false);
  {
    const ScopedTimer timer(reg, h);
  }
  set_timing_enabled(true);
  EXPECT_EQ(reg.value(h).count(), 0u);
}

// ------------------------------------------------------------ Tracer

TEST(Tracer, RingBufferWrapsAround) {
  Tracer tracer(4);
  tracer.enable(true);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tracer.record(TraceKind::kAnnounce, i * 100, i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, holding the tail of the run: ids 6, 7, 8, 9.
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(events[k].id, 6 + k);
    EXPECT_EQ(events[k].t, (6 + k) * 100u);
  }
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  tracer.record(TraceKind::kAnnounce, 1);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 1);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, RecordingIsAllocationFree) {
  Tracer tracer(128);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 0);
  const std::uint64_t before = g_allocations.load();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    tracer.record(TraceKind::kAuthSuccess, i, i, 0.5, 0.5);
  }
  EXPECT_EQ(before, g_allocations.load());
}

// Minimal JSON value scanner for the round-trip tests.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  if (at == std::string::npos) return {};
  auto start = at + needle.size();
  auto end = line.find_first_of(",}", start);
  std::string value = line.substr(start, end - start);
  if (!value.empty() && value.front() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

TEST(Tracer, JsonlExportRoundTrips) {
  Tracer tracer(16);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 500000, 1);
  tracer.record(TraceKind::kAuthSuccess, 1500000, 1, 0.25, 0.75);
  tracer.record(TraceKind::kEssStep, 42, 42, 0.5, 0.125);

  std::ostringstream out;
  tracer.export_jsonl(out);
  std::istringstream in(out.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);

  const auto original = tracer.snapshot();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(json_field(lines[i], "kind"),
              trace_kind_name(original[i].kind));
    EXPECT_EQ(json_field(lines[i], "id"), std::to_string(original[i].id));
    EXPECT_EQ(json_field(lines[i], "t"), std::to_string(original[i].t));
    EXPECT_DOUBLE_EQ(std::stod(json_field(lines[i], "a")), original[i].a);
    EXPECT_DOUBLE_EQ(std::stod(json_field(lines[i], "b")), original[i].b);
  }
}

TEST(Tracer, ChromeTraceExportIsWellFormed) {
  Tracer tracer(16);
  tracer.enable(true);
  tracer.record(TraceKind::kAnnounce, 500000, 1);
  tracer.record(TraceKind::kAuthFail, 1500000, 1);
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"announce\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"auth_fail\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ------------------------------------------------------------- Spans

SpanEvent make_span(std::uint64_t uid, std::uint64_t parent, SpanKind kind,
                    std::uint64_t t_begin, std::uint64_t t_end,
                    std::uint32_t node, SpanTag tag = SpanTag::kNone) {
  SpanEvent s;
  s.uid = uid;
  s.trace = 77;
  s.parent = parent;
  s.t_begin = t_begin;
  s.t_end = t_end;
  s.node = node;
  s.id = 3;
  s.kind = kind;
  s.tag = tag;
  return s;
}

TEST(TracerSpans, RecordAndSnapshotOldestFirst) {
  Tracer tracer(8);
  tracer.enable(true);
  tracer.record_span(
      make_span(10, 0, SpanKind::kAnnounceSend, 100, 100, 0));
  tracer.record_span(make_span(11, 10, SpanKind::kRelayHop, 100, 400, 1));
  tracer.record_span(make_span(12, 11, SpanKind::kVerify, 400, 900, 2,
                               SpanTag::kAuthOk));
  EXPECT_EQ(tracer.span_size(), 3u);
  EXPECT_EQ(tracer.spans_total_recorded(), 3u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  const auto spans = tracer.span_snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].uid, 10u);
  EXPECT_EQ(spans[2].parent, 11u);
  EXPECT_EQ(spans[2].tag, SpanTag::kAuthOk);
}

TEST(TracerSpans, BeginEndClosesIntoRing) {
  Tracer tracer(8);
  tracer.enable(true);
  tracer.span_begin(make_span(5, 0, SpanKind::kRelayHop, 200, 0, 4));
  EXPECT_EQ(tracer.open_spans(), 1u);
  EXPECT_EQ(tracer.span_size(), 0u);
  tracer.span_end(5, 650, SpanTag::kAuthOk);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.span_size(), 1u);
  const auto spans = tracer.span_snapshot();
  EXPECT_EQ(spans[0].t_begin, 200u);
  EXPECT_EQ(spans[0].t_end, 650u);
  EXPECT_EQ(spans[0].tag, SpanTag::kAuthOk);
  // Unknown uid: ignored without effect.
  tracer.span_end(999, 700);
  EXPECT_EQ(tracer.span_size(), 1u);
}

TEST(TracerSpans, RingDropAccountingMatchesEventRing) {
  Tracer tracer(4);
  tracer.enable(true);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    tracer.record_span(
        make_span(i, 0, SpanKind::kRelayHop, i * 10, i * 10 + 5, 1));
  }
  EXPECT_EQ(tracer.span_size(), 4u);
  EXPECT_EQ(tracer.spans_total_recorded(), 10u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
  // Oldest-first tail of the run: uids 7..10.
  EXPECT_EQ(tracer.span_snapshot().front().uid, 7u);
}

TEST(TracerSpans, SetCapacityOnlyWhileEmpty) {
  Tracer tracer(4);
  tracer.enable(true);
  tracer.set_capacity(64);  // empty: fine
  EXPECT_EQ(tracer.capacity(), 64u);
  EXPECT_EQ(tracer.span_capacity(), 64u);
  tracer.record(TraceKind::kAnnounce, 1);
  EXPECT_THROW(tracer.set_capacity(128), std::logic_error);
  tracer.clear();
  tracer.set_capacity(128);  // cleared: fine again
  EXPECT_EQ(tracer.capacity(), 128u);
}

TEST(TracerSpans, AppendFromPreservesParentLinks) {
  Tracer shard(16);
  shard.enable(true);
  shard.record(TraceKind::kAnnounce, 100, 3);
  shard.record_span(make_span(20, 0, SpanKind::kAnnounceSend, 100, 100, 0));
  shard.record_span(make_span(21, 20, SpanKind::kVerify, 100, 300, 2,
                              SpanTag::kNoRecord));

  Tracer merged(16);
  merged.enable(true);
  merged.append_from(shard);
  EXPECT_EQ(merged.total_recorded(), 1u);
  ASSERT_EQ(merged.span_size(), 2u);
  const auto spans = merged.span_snapshot();
  EXPECT_EQ(spans[0].uid, 20u);
  EXPECT_EQ(spans[1].parent, 20u);  // caller-assigned uids survive merges
  EXPECT_EQ(spans[1].tag, SpanTag::kNoRecord);
}

TEST(TracerSpans, JsonlExportEmitsSpanLines) {
  Tracer tracer(8);
  tracer.enable(true);
  tracer.record_span(make_span(30, 0, SpanKind::kAnnounceSend, 10, 10, 0));
  tracer.record_span(make_span(31, 30, SpanKind::kVerify, 10, 90, 5,
                               SpanTag::kWeakAuthFail));
  std::ostringstream out;
  tracer.export_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"span\":\"announce_send\""), std::string::npos);
  EXPECT_NE(text.find("\"span\":\"verify\""), std::string::npos);
  EXPECT_NE(text.find("\"parent\":30"), std::string::npos);
  EXPECT_NE(text.find("\"tag\":\"weak_auth_fail\""), std::string::npos);
}

TEST(TracerSpans, ChromeTraceLinksSpansWithFlowArrows) {
  Tracer tracer(8);
  tracer.enable(true);
  tracer.record_span(make_span(40, 0, SpanKind::kAnnounceSend, 100, 100, 0));
  tracer.record_span(make_span(41, 40, SpanKind::kRelayHop, 100, 400, 7));
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  const std::string json = out.str();
  // Spans render as "X" complete events on per-node lanes...
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  // ...and the parent->child edge as a flow start/finish pair keyed by
  // the child's uid.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":41"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ------------------------------------------------------- Snapshotter

TEST(Snapshotter, SamplesOnSimTimeCadenceBoundaries) {
  Registry reg;
  const CounterHandle c = reg.counter("fleet.announces_sent");
  Snapshotter snap("topology:test", 1000);
  EXPECT_FALSE(snap.maybe_sample(reg, 999));   // before first boundary
  reg.add(c, 5);
  EXPECT_TRUE(snap.maybe_sample(reg, 1000));   // on the boundary
  EXPECT_FALSE(snap.maybe_sample(reg, 1500));  // same cadence window
  EXPECT_TRUE(snap.maybe_sample(reg, 3700));   // skipped boundaries: one sample
  EXPECT_FALSE(snap.maybe_sample(reg, 3900));  // next due at 4000
  EXPECT_EQ(snap.samples(), 2u);
}

TEST(Snapshotter, StreamCarriesHeaderAndOrderedSamples) {
  Registry reg;
  reg.add(reg.counter("fleet.announces_sent"), 2);
  reg.set(reg.gauge("fleet.members"), 64.0);
  reg.mark(reg.rate("fleet.auth"), true);
  Snapshotter snap("topology:test", 500);
  snap.sample(reg, 500);
  reg.add(reg.counter("fleet.announces_sent"), 3);
  snap.sample(reg, 1000);

  std::istringstream in(snap.stream());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + 2 samples
  EXPECT_NE(lines[0].find("\"schema\":\"dap.snapshots.v1\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"cadence_us\":500"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"t_us\":500"), std::string::npos);
  EXPECT_NE(lines[1].find("\"fleet.announces_sent\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"fleet.announces_sent\":5"), std::string::npos);
  EXPECT_NE(lines[2].find("\"fleet.auth\""), std::string::npos);
}

TEST(Snapshotter, HistogramFilterExcludesWallClockInstruments) {
  Registry reg;
  reg.observe(reg.histogram("fleet.hop_latency_us"), 250.0);
  reg.observe(reg.histogram("crypto.hmac_us"), 3.0);
  Snapshotter snap("topology:test", 100, [](std::string_view name) {
    return name.find("hop_latency") != std::string_view::npos;
  });
  snap.sample(reg, 100);
  const std::string stream = snap.stream();
  EXPECT_NE(stream.find("fleet.hop_latency_us"), std::string::npos);
  EXPECT_EQ(stream.find("crypto.hmac_us"), std::string::npos);
}

TEST(Snapshotter, IdenticalRegistriesYieldIdenticalStreams) {
  // The byte-identity contract across DAP_THREADS reduces to: equal
  // registry state sampled at equal sim times produces equal bytes.
  auto build = [] {
    Registry reg;
    reg.add(reg.counter("fleet.announces_sent"), 41);
    reg.observe(reg.histogram("fleet.hop_latency_us"), 125.0);
    Snapshotter snap("topology:test", 250);
    snap.maybe_sample(reg, 250);
    snap.maybe_sample(reg, 500);
    return snap.stream();
  };
  EXPECT_EQ(build(), build());
}

// ------------------------------------------------------------ Export

TEST(Export, MetricsJsonContainsEveryInstrument) {
  Registry reg;
  reg.add(reg.counter("dap.announces_received"), 12);
  reg.set(reg.gauge("dap.buffers"), 6.0);
  reg.mark(reg.rate("dap.auth"), true);
  auto h = reg.histogram("dap.rx_announce_us");
  for (int i = 1; i <= 100; ++i) reg.observe(h, static_cast<double>(i));

  const std::string json = metrics_json(reg, 1.5);
  EXPECT_NE(json.find("\"schema\": \"dap.metrics.v2\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"dap.announces_received\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"dap.buffers\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"trials\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, MetricsJsonBucketsRecoverTheDistribution) {
  Registry reg;
  const HistogramHandle h = reg.histogram("fleet.hop_latency_us");
  reg.observe(h, 10.0);
  reg.observe(h, 10.0);
  reg.observe(h, 1000.0);
  const std::string json = metrics_json(reg, -1.0);

  // The two observed values land in their exact bucket triples:
  // [lower, upper, count] with lower <= v < upper.
  const auto lo10 = LatencyHistogram::bucket_index(10.0);
  const auto lo1000 = LatencyHistogram::bucket_index(1000.0);
  std::ostringstream expect10;
  expect10 << "[" << detail::json_number(LatencyHistogram::bucket_lower(lo10))
           << ", " << detail::json_number(LatencyHistogram::bucket_upper(lo10))
           << ", 2]";
  std::ostringstream expect1000;
  expect1000 << "["
             << detail::json_number(LatencyHistogram::bucket_lower(lo1000))
             << ", "
             << detail::json_number(LatencyHistogram::bucket_upper(lo1000))
             << ", 1]";
  EXPECT_NE(json.find(expect10.str()), std::string::npos) << json;
  EXPECT_NE(json.find(expect1000.str()), std::string::npos) << json;
  // Only non-empty buckets export: exactly two triples.
  EXPECT_NE(json.find("\"buckets\": [" + expect10.str() + ", " +
                      expect1000.str() + "]"),
            std::string::npos)
      << json;
}

TEST(Export, EmptyRegistryStillValid) {
  const Registry reg;
  const std::string json = metrics_json(reg);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
}

}  // namespace
}  // namespace dap::obs
