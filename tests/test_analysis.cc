// Tests for the experiment drivers: each reproduced figure's series must
// have the paper's qualitative shape, and the Monte-Carlo / recovery
// experiments must match their analytic predictions.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/figures.h"
#include "analysis/montecarlo.h"
#include "analysis/recovery.h"

namespace dap::analysis {
namespace {

// ----------------------------------------------------------------- Fig. 5

TEST(Fig5, BufferCountsFromMemoryBudgets) {
  const auto b = fig5_buffers({});
  EXPECT_EQ(b.teslapp_large, 3u);
  EXPECT_EQ(b.teslapp_small, 1u);
  EXPECT_EQ(b.dap_large, 18u);
  EXPECT_EQ(b.dap_small, 9u);
}

TEST(Fig5, DapDominatesTeslaPp) {
  // For every attack-success target the attacker must spend strictly
  // more bandwidth against DAP than against TESLA++ (same budget), and
  // more against the larger budget than the smaller.
  for (const auto& row : fig5_series({})) {
    EXPECT_GT(row.xm_dap_large, row.xm_teslapp_large);
    EXPECT_GT(row.xm_dap_small, row.xm_teslapp_small);
    EXPECT_GT(row.xm_dap_large, row.xm_dap_small);
    EXPECT_GT(row.xm_teslapp_large, row.xm_teslapp_small);
  }
}

TEST(Fig5, SeriesMonotoneInTarget) {
  const auto rows = fig5_series({});
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].attack_success_target,
              rows[i - 1].attack_success_target);
    EXPECT_GT(rows[i].xm_dap_large, rows[i - 1].xm_dap_large);
    EXPECT_GT(rows[i].xm_teslapp_small, rows[i - 1].xm_teslapp_small);
  }
  // All fractions bounded by the non-data share 1 - x_d = 0.8.
  for (const auto& row : rows) {
    EXPECT_LE(row.xm_dap_large, 0.8);
    EXPECT_GT(row.xm_teslapp_small, 0.0);
  }
}

// ----------------------------------------------------------------- Fig. 6

TEST(Fig6, RegimeBoundariesMatchPaper) {
  const auto rows = fig6_regime_scan(0.8, 60);
  ASSERT_EQ(rows.size(), 60u);
  // Paper: (1,1) for 1..11, (1,Y') for ~12..17, interior ~18..54,
  // (X',1) for 55+. The closed form puts the second boundary at 16|17;
  // both are within one of the paper's report.
  EXPECT_EQ(rows[0].ess.kind, game::EssKind::kFullDefenseFullAttack);
  EXPECT_EQ(rows[10].ess.kind, game::EssKind::kFullDefenseFullAttack);
  EXPECT_EQ(rows[11].ess.kind, game::EssKind::kFullDefensePartialAttack);
  EXPECT_EQ(rows[15].ess.kind, game::EssKind::kFullDefensePartialAttack);
  EXPECT_EQ(rows[19].ess.kind, game::EssKind::kInterior);
  EXPECT_EQ(rows[53].ess.kind, game::EssKind::kInterior);
  EXPECT_EQ(rows[54].ess.kind, game::EssKind::kPartialDefenseFullAttack);
  EXPECT_EQ(rows[59].ess.kind, game::EssKind::kPartialDefenseFullAttack);
}

TEST(Fig6, EulerSimulationAgreesOutsideBoundaryBand) {
  // m = 17, 18 sit on the interior/boundary edge where the paper's own
  // Euler run sticks to X = 1 (see EXPERIMENTS.md); everywhere else the
  // simulated attractor matches the closed-form ESS.
  for (const auto& row : fig6_regime_scan(0.8, 60)) {
    if (row.m == 17 || row.m == 18) continue;
    EXPECT_TRUE(row.agrees) << "m=" << row.m;
  }
}

TEST(Fig6, TrajectoryPanelsConvergeCorrectly) {
  // One representative m per panel of Fig. 6.
  struct Panel {
    std::size_t m;
    game::EssKind kind;
  };
  for (const auto& panel :
       {Panel{6, game::EssKind::kFullDefenseFullAttack},
        Panel{15, game::EssKind::kFullDefensePartialAttack},
        Panel{30, game::EssKind::kInterior},
        Panel{70, game::EssKind::kPartialDefenseFullAttack}}) {
    const auto traj = fig6_trajectory(0.8, panel.m);
    const auto ess = game::solve_ess(game::GameParams::paper_defaults(
        0.8, panel.m));
    ASSERT_EQ(ess.kind, panel.kind);
    EXPECT_NEAR(traj.final.x, ess.point.x, 5e-3) << "m=" << panel.m;
    EXPECT_NEAR(traj.final.y, ess.point.y, 5e-3) << "m=" << panel.m;
    EXPECT_GE(traj.points.size(), 2u);
  }
}

TEST(Fig6, FastRegimesConvergeFasterThanSpiral) {
  // The paper: (1,1) converges in a handful of steps; the interior
  // spiral takes much longer.
  const auto fast = fig6_trajectory(0.8, 6, 0);
  const auto spiral = fig6_trajectory(0.8, 30, 0);
  EXPECT_LT(fast.steps, spiral.steps);
}

// ----------------------------------------------------------------- Fig. 7

TEST(Fig7, OptimalBuffersGrowThenSaturate) {
  const auto rows = fig7_series(default_p_sweep());
  ASSERT_FALSE(rows.empty());
  std::size_t previous = 0;
  bool saw_cap = false;
  for (const auto& row : rows) {
    EXPECT_GE(row.m_opt, previous);
    previous = row.m_opt;
    if (row.m_opt == game::kMaxBuffers) saw_cap = true;
  }
  EXPECT_TRUE(saw_cap);
  // Low attack -> small m; heavy attack -> the cap.
  EXPECT_LT(rows.front().m_opt, 15u);
  EXPECT_EQ(rows.back().m_opt, game::kMaxBuffers);
}

TEST(Fig7, RegimeFlipNearPaperThreshold) {
  // The paper reports the give-up flip at p ~ 0.94; our closed-form
  // reproduction puts it within a couple of points of that.
  const auto rows = fig7_series(default_p_sweep());
  double flip_p = 1.0;
  for (const auto& row : rows) {
    if (row.kind == game::EssKind::kPartialDefenseFullAttack) {
      flip_p = row.p;
      break;
    }
  }
  EXPECT_GT(flip_p, 0.90);
  EXPECT_LT(flip_p, 0.97);
}

// ----------------------------------------------------------------- Fig. 8

TEST(Fig8, GameCostNeverExceedsNaive) {
  for (const auto& row : fig8_series(default_p_sweep())) {
    EXPECT_LE(row.cost_game, row.cost_naive + 1e-9) << "p=" << row.p;
  }
}

TEST(Fig8, GapWidensPastRegimeFlip) {
  const auto rows = fig8_series(default_p_sweep());
  const auto gap_at = [&rows](double p) {
    double best = 0.0;
    double distance = 1.0;
    for (const auto& row : rows) {
      if (std::abs(row.p - p) < distance) {
        distance = std::abs(row.p - p);
        best = row.cost_naive - row.cost_game;
      }
    }
    return best;
  };
  EXPECT_GT(gap_at(0.99), gap_at(0.90));
  EXPECT_GT(gap_at(0.99), 50.0);
}

TEST(Fig8, NaiveCostRisesSharplyAtHighP) {
  const auto rows = fig8_series(default_p_sweep());
  EXPECT_NEAR(rows.front().cost_naive, 200.0, 1.0);  // k2*M dominates
  EXPECT_GT(rows.back().cost_naive, 250.0);          // p^M no longer tiny
}

// ---------------------------------------------------------------- memory

TEST(MemoryTable, DapSavesEightyPercent) {
  const auto rows = memory_table();
  ASSERT_EQ(rows.size(), 3u);
  const auto& dap_row = rows[2];
  EXPECT_EQ(dap_row.record_bits, 56u);
  EXPECT_NEAR(dap_row.saving_vs_full, 0.8, 1e-12);
  EXPECT_EQ(dap_row.buffers_at_1024, 18u);
  EXPECT_EQ(dap_row.buffers_at_512, 9u);
  // 5x the buffers of the 280-bit scheme, as §IV-D states.
  EXPECT_GE(dap_row.buffers_at_1024, 5 * rows[1].buffers_at_1024);
}

// ------------------------------------------------------------ Monte-Carlo

TEST(MonteCarlo, MeasuredMatchesAnalytic) {
  MonteCarloConfig config;
  config.p = 0.8;
  config.m = 3;
  config.trials = 4000;
  const auto result = measure_attack_success(config);
  EXPECT_NEAR(result.measured_attack_success, result.analytic, 0.03);
  EXPECT_EQ(result.trials, 4000u);
  EXPECT_LE(result.wilson_lo, result.measured_attack_success);
  EXPECT_GE(result.wilson_hi, result.measured_attack_success);
}

TEST(MonteCarlo, ReservoirInsensitiveToFloodTiming) {
  // The reservoir's whole point: burst position must not matter.
  MonteCarloConfig config;
  config.p = 0.85;
  config.m = 4;
  config.trials = 3000;
  config.timing = FloodTiming::kBeforeAuthentic;
  const double before = measure_attack_success(config).measured_attack_success;
  config.timing = FloodTiming::kAfterAuthentic;
  config.seed += 1;
  const double after = measure_attack_success(config).measured_attack_success;
  config.timing = FloodTiming::kInterleaved;
  config.seed += 1;
  const double mixed = measure_attack_success(config).measured_attack_success;
  EXPECT_NEAR(before, after, 0.04);
  EXPECT_NEAR(before, mixed, 0.04);
}

TEST(MonteCarlo, NaiveDropCollapsesUnderEarlyFlood) {
  MonteCarloConfig config;
  config.p = 0.85;
  config.m = 4;
  config.trials = 1500;
  config.policy = protocol::BufferPolicy::kNaiveDrop;
  config.timing = FloodTiming::kBeforeAuthentic;
  // The early burst fills all slots: the attack nearly always succeeds,
  // far above the analytic p^m.
  const auto result = measure_attack_success(config);
  EXPECT_GT(result.measured_attack_success, 0.95);
  EXPECT_GT(result.measured_attack_success, result.analytic + 0.3);
}

TEST(MonteCarlo, AlwaysReplaceCollapsesUnderLateFlood) {
  MonteCarloConfig config;
  config.p = 0.85;
  config.m = 4;
  config.trials = 1500;
  config.policy = protocol::BufferPolicy::kAlwaysReplace;
  config.timing = FloodTiming::kAfterAuthentic;
  const auto result = measure_attack_success(config);
  EXPECT_GT(result.measured_attack_success, result.analytic + 0.2);
}

TEST(MonteCarlo, SweepCoversGrid) {
  const auto sweep =
      attack_success_sweep({0.5, 0.8}, {1, 4}, 500, 42);
  ASSERT_EQ(sweep.size(), 4u);
  for (const auto& point : sweep) {
    EXPECT_NEAR(point.result.measured_attack_success, point.result.analytic,
                0.08);
  }
}

// --------------------------------------------------------------- recovery

TEST(Recovery, EftpRecoversOneIntervalSoonerThanOriginal) {
  RecoverySetup original;
  original.link = crypto::LevelLink::kOriginal;
  RecoverySetup eftp = original;
  eftp.link = crypto::LevelLink::kEftp;
  const auto report_original = run_recovery_experiment(original);
  const auto report_eftp = run_recovery_experiment(eftp);
  ASSERT_TRUE(report_original.recovered_via_high_key);
  ASSERT_TRUE(report_eftp.recovered_via_high_key);
  // §III-A: EFTP shortens recovery by exactly one high-level interval.
  EXPECT_EQ(report_original.data_recovered_at_interval,
            original.measured_interval + 2);
  EXPECT_EQ(report_eftp.data_recovered_at_interval,
            eftp.measured_interval + 1);
}

TEST(Recovery, EdrpAuthenticatesCdmsInstantly) {
  RecoverySetup classic;
  RecoverySetup edrp = classic;
  edrp.edrp = true;
  const auto report_classic = run_recovery_experiment(classic);
  const auto report_edrp = run_recovery_experiment(edrp);
  // Classic: every CDM waits one interval. EDRP: only the first does.
  EXPECT_NEAR(report_classic.mean_cdm_auth_latency, 1.0, 0.05);
  EXPECT_LT(report_edrp.mean_cdm_auth_latency, 0.3);
  EXPECT_GT(report_edrp.cdm_hash_path, 0u);
}

TEST(Recovery, EdrpDropsForgedCdmsOnArrival) {
  RecoverySetup setup;
  setup.edrp = true;
  setup.forged_cdms_per_interval = 5;
  const auto report = run_recovery_experiment(setup);
  EXPECT_GT(report.forged_cdms_dropped, 0u);
  // The flood must not stop authentic CDM authentication.
  EXPECT_GE(report.cdms_authenticated, setup.high_length - 1);
}

TEST(Recovery, FloodedClassicStillAuthenticatesWithBuffers) {
  RecoverySetup setup;
  setup.forged_cdms_per_interval = 4;  // p ~ 0.57 against 4 buffers
  const auto report = run_recovery_experiment(setup);
  // With reservoir buffers most intervals survive the flood.
  EXPECT_GE(report.cdms_authenticated, setup.high_length / 2);
  EXPECT_GT(report.forged_cdms_dropped, 0u);
}

TEST(Recovery, AllDataEventuallyAuthenticatesWithoutLoss) {
  RecoverySetup setup;
  setup.disclosure_loss_from = 99;  // no loss at all
  const auto report = run_recovery_experiment(setup);
  // Tail keys of each interval recover via the high-key link. Under the
  // original link the anchors of the last two intervals are disclosed by
  // CDMs beyond the horizon, so up to 2*d tail packets stay pending.
  EXPECT_GE(report.data_authenticated,
            report.data_sent - 2 * setup.low_disclosure_delay);
}

}  // namespace
}  // namespace dap::analysis

// -------------------------------------------------------- empirical Fig 8

#include "analysis/empirical.h"

namespace dap::analysis {
namespace {

TEST(EmpiricalCost, MatchesAnalyticAtModerateAttack) {
  EmpiricalCostConfig config;
  config.p = 0.8;
  config.nodes = 80;
  config.intervals = 30;
  config.seed = 99;
  const auto r = empirical_defense_cost(config);
  // Measured population cost tracks the closed-form E (loose tolerance:
  // 2400 node-intervals of Bernoulli + protocol noise).
  EXPECT_NEAR(r.empirical_E, r.analytic_E, 0.15 * r.analytic_E);
  EXPECT_NEAR(r.empirical_N, r.analytic_N, 0.15 * r.analytic_N);
  EXPECT_LT(r.empirical_E, r.empirical_N);
}

TEST(EmpiricalCost, GameArmBeatsNaiveAtHighAttack) {
  EmpiricalCostConfig config;
  config.p = 0.96;  // give-up regime: E saturates at Ra
  config.nodes = 40;
  config.intervals = 15;
  config.seed = 100;
  const auto r = empirical_defense_cost(config);
  EXPECT_EQ(r.ess.kind, game::EssKind::kPartialDefenseFullAttack);
  EXPECT_LT(r.empirical_E, r.empirical_N);
  EXPECT_NEAR(r.analytic_E, 200.0, 1e-9);
}

TEST(EmpiricalCost, DefendedLossesMatchPm) {
  EmpiricalCostConfig config;
  config.p = 0.8;
  config.nodes = 120;
  config.intervals = 40;
  config.seed = 101;
  const auto r = empirical_defense_cost(config);
  // Defended rounds are lost at ~ Y * p^m.
  const double loss_rate =
      static_cast<double>(r.rounds_lost_defended) /
      static_cast<double>(r.rounds_defended);
  const double expected =
      r.ess.point.y *
      std::pow(config.p, static_cast<double>(r.m_opt));
  EXPECT_NEAR(loss_rate, expected, 0.05);
}

}  // namespace
}  // namespace dap::analysis

// --------------------------------------------------- extreme conditions

#include "analysis/extreme.h"

namespace dap::analysis {
namespace {

TEST(ExtremeConditions, GridDegradesGracefullyAlongBothAxes) {
  ExtremeGridConfig config;
  config.losses = {0.0, 0.3};
  config.ps = {0.5, 0.9};
  config.trials = 500;
  const auto grid = extreme_conditions_grid(config);
  ASSERT_EQ(grid.size(), 4u);
  // (0,0): clean channel, moderate attack, 18 buffers -> near certainty.
  EXPECT_GT(grid[0].measured_success, 0.95);
  // More attack hurts; more loss hurts.
  EXPECT_GE(grid[0].measured_success + 0.02, grid[1].measured_success);
  EXPECT_GE(grid[0].measured_success + 0.02, grid[2].measured_success);
}

TEST(ExtremeConditions, WorksInTheExtremeCell) {
  // The abstract's claim: severe DoS AND a terrible channel.
  ExtremeGridConfig config;
  config.losses = {0.5};
  config.ps = {0.95};
  config.trials = 800;
  const auto grid = extreme_conditions_grid(config);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_GT(grid[0].measured_success, 0.25);
  EXPECT_GE(grid[0].measured_success, grid[0].analytic - 0.08);
}

TEST(ExtremeConditions, NoLossMatchesFloodOnlyModel) {
  ExtremeGridConfig config;
  config.losses = {0.0};
  config.ps = {0.9};
  config.m = 6;
  config.trials = 1500;
  const auto grid = extreme_conditions_grid(config);
  // With a lossless channel the analytic reference reduces to 1 - p^m;
  // small delivered floods make the measured value at least that.
  EXPECT_GE(grid[0].measured_success, grid[0].analytic - 0.05);
}

TEST(ExtremeConditions, TotalLossMeansNoAuthentication) {
  ExtremeGridConfig config;
  config.losses = {1.0};
  config.ps = {0.5};
  config.trials = 100;
  const auto grid = extreme_conditions_grid(config);
  EXPECT_DOUBLE_EQ(grid[0].measured_success, 0.0);
}

}  // namespace
}  // namespace dap::analysis
