// Unit tests for src/crypto: SHA-256 against FIPS 180-4 vectors,
// HMAC-SHA-256 against RFC 4231, PRF domain separation, one-way key
// chains, MAC truncation, and WOTS one-time signatures.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/mac.h"
#include "crypto/merkle.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"

namespace dap::crypto {
namespace {

using common::Bytes;
using common::ByteView;
using common::bytes_of;
using common::from_hex;
using common::to_hex;

std::string hex_digest(const Digest& d) {
  return to_hex(ByteView(d.data(), d.size()));
}

// --------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest(sha256(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  const Bytes block(64, 'x');
  const Digest once = sha256(block);
  Sha256 streamed;
  streamed.update(ByteView(block).first(31));
  streamed.update(ByteView(block).subspan(31));
  EXPECT_EQ(once, streamed.finalize());
}

TEST(Sha256, FiftyFiveAndFiftySixBytePadding) {
  // 55 bytes fits length in the same block; 56 forces an extra block.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const Bytes data(n, 'q');
    Sha256 a;
    a.update(data);
    Sha256 b;
    for (std::size_t i = 0; i < n; ++i) b.update(ByteView(&data[i], 1));
    EXPECT_EQ(a.finalize(), b.finalize()) << "length " << n;
  }
}

TEST(Sha256, ResetRestoresInitialState) {
  Sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(hex_digest(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, BytesHelperMatchesDigest) {
  const Digest d = sha256(bytes_of("abc"));
  EXPECT_EQ(sha256_bytes(bytes_of("abc")), Bytes(d.begin(), d.end()));
}

// ------------------------------------------------------------------ HMAC

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest tag = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(hex_digest(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Digest tag = hmac_sha256(bytes_of("Jefe"),
                                 bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(hex_digest(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_digest(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6OversizedKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hex_digest(hmac_sha256(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key "
                        "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyAcceptsCorrectTag) {
  const Bytes key = bytes_of("k");
  const Bytes msg = bytes_of("m");
  const Digest tag = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, ByteView(tag.data(), tag.size())));
}

TEST(Hmac, VerifyRejectsTamperedTagAndMessage) {
  const Bytes key = bytes_of("k");
  const Bytes msg = bytes_of("m");
  Digest tag = hmac_sha256(key, msg);
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, ByteView(tag.data(), tag.size())));
  tag[0] ^= 1;
  EXPECT_FALSE(
      hmac_verify(key, bytes_of("m2"), ByteView(tag.data(), tag.size())));
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = bytes_of("same message");
  EXPECT_NE(hmac_sha256(bytes_of("key1"), msg),
            hmac_sha256(bytes_of("key2"), msg));
}

// ------------------------------------------------------------------- PRF

TEST(Prf, DomainsAreIndependent) {
  const Bytes input = bytes_of("key-material");
  std::set<std::string> images;
  for (auto domain :
       {PrfDomain::kChainStep, PrfDomain::kHighChainStep,
        PrfDomain::kLowChainStep, PrfDomain::kLevelConnect,
        PrfDomain::kMacKey, PrfDomain::kCdmImage,
        PrfDomain::kReceiverLocal}) {
    images.insert(hex_digest(prf(domain, input)));
  }
  EXPECT_EQ(images.size(), 7u);  // all distinct
}

TEST(Prf, Deterministic) {
  const Bytes input = bytes_of("x");
  EXPECT_EQ(prf(PrfDomain::kChainStep, input),
            prf(PrfDomain::kChainStep, input));
}

TEST(Prf, TruncationIsPrefix) {
  const Bytes input = bytes_of("x");
  const Bytes full = prf_bytes(PrfDomain::kChainStep, input, 32);
  const Bytes ten = prf_bytes(PrfDomain::kChainStep, input, 10);
  EXPECT_EQ(ten, Bytes(full.begin(), full.begin() + 10));
}

TEST(Prf, RejectsBadOutputLength) {
  EXPECT_THROW(prf_bytes(PrfDomain::kChainStep, bytes_of("x"), 0),
               std::invalid_argument);
  EXPECT_THROW(prf_bytes(PrfDomain::kChainStep, bytes_of("x"), 33),
               std::invalid_argument);
}

TEST(Prf, DomainLabelsUnique) {
  std::set<std::string_view> labels;
  for (auto domain :
       {PrfDomain::kChainStep, PrfDomain::kHighChainStep,
        PrfDomain::kLowChainStep, PrfDomain::kLevelConnect,
        PrfDomain::kMacKey, PrfDomain::kCdmImage,
        PrfDomain::kReceiverLocal}) {
    labels.insert(domain_label(domain));
  }
  EXPECT_EQ(labels.size(), 7u);
}

// -------------------------------------------------------------- KeyChain

TEST(KeyChain, ChainRelationHolds) {
  const KeyChain chain(bytes_of("seed"), 16);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(chain.step(chain.key(i + 1)), chain.key(i)) << "index " << i;
  }
}

TEST(KeyChain, KeysAreDistinct) {
  const KeyChain chain(bytes_of("seed"), 32);
  std::set<std::string> seen;
  for (std::size_t i = 0; i <= 32; ++i) {
    seen.insert(to_hex(chain.key(i)));
  }
  EXPECT_EQ(seen.size(), 33u);
}

TEST(KeyChain, KeySizeRespected) {
  const KeyChain chain(bytes_of("seed"), 4, PrfDomain::kChainStep, 10);
  EXPECT_EQ(chain.key(0).size(), 10u);
  EXPECT_EQ(chain.key_size(), 10u);
}

TEST(KeyChain, VerifyKeyAcceptsAuthenticRejectsForged) {
  const KeyChain chain(bytes_of("seed"), 16);
  EXPECT_TRUE(chain.verify_key(10, chain.key(10), 0, chain.commitment()));
  EXPECT_TRUE(chain.verify_key(10, chain.key(10), 7, chain.key(7)));
  Bytes forged = chain.key(10);
  forged[0] ^= 1;
  EXPECT_FALSE(chain.verify_key(10, forged, 0, chain.commitment()));
  // Anchor not older than claimed index.
  EXPECT_FALSE(chain.verify_key(5, chain.key(5), 5, chain.key(5)));
}

TEST(KeyChain, MacKeyDiffersFromChainKey) {
  const KeyChain chain(bytes_of("seed"), 4);
  EXPECT_NE(chain.mac_key(2), chain.key(2));
}

TEST(KeyChain, RejectsBadConstruction) {
  EXPECT_THROW(KeyChain(bytes_of("s"), 0), std::invalid_argument);
  EXPECT_THROW(KeyChain({}, 4), std::invalid_argument);
  EXPECT_THROW(KeyChain(bytes_of("s"), 4, PrfDomain::kChainStep, 0),
               std::invalid_argument);
  EXPECT_THROW(KeyChain(bytes_of("s"), 4, PrfDomain::kChainStep, 64),
               std::invalid_argument);
}

TEST(KeyChain, OutOfRangeIndexThrows) {
  const KeyChain chain(bytes_of("seed"), 4);
  EXPECT_THROW((void)chain.key(6), std::out_of_range);
}

TEST(KeyChain, ChainWalkMatchesChain) {
  const KeyChain chain(bytes_of("seed"), 12);
  const Bytes walked = chain_walk(PrfDomain::kChainStep, chain.key(12), 12,
                                  chain.key_size());
  EXPECT_EQ(walked, chain.commitment());
}

TEST(KeyChain, DifferentSeedsDifferentChains) {
  const KeyChain a(bytes_of("seed-a"), 4);
  const KeyChain b(bytes_of("seed-b"), 4);
  EXPECT_NE(a.commitment(), b.commitment());
}

// ------------------------------------------------------ TwoLevelKeyChain

class TwoLevelTest : public ::testing::TestWithParam<LevelLink> {};

TEST_P(TwoLevelTest, HighChainRelationHolds) {
  const TwoLevelKeyChain chain(bytes_of("seed"), 6, 4, GetParam());
  for (std::size_t i = 1; i <= chain.high_length(); ++i) {
    EXPECT_EQ(chain_walk(PrfDomain::kHighChainStep, chain.high_key(i), 1,
                         chain.key_size()),
              chain.high_key(i - 1));
  }
}

TEST_P(TwoLevelTest, LowChainRelationHolds) {
  const TwoLevelKeyChain chain(bytes_of("seed"), 4, 5, GetParam());
  for (std::size_t i = 1; i <= 4; ++i) {
    for (std::size_t j = 1; j <= 5; ++j) {
      EXPECT_EQ(chain_walk(PrfDomain::kLowChainStep, chain.low_key(i, j), 1,
                           chain.key_size()),
                chain.low_key(i, j - 1));
    }
  }
}

TEST_P(TwoLevelTest, DeriveLowKeyRecoversChain) {
  const TwoLevelKeyChain chain(bytes_of("seed"), 5, 6, GetParam());
  for (std::size_t i = 1; i <= 5; ++i) {
    for (std::size_t j = 0; j <= 6; ++j) {
      EXPECT_EQ(derive_low_key(chain.low_anchor(i), i, j, 6,
                               chain.key_size()),
                chain.low_key(i, j))
          << "interval " << i << " index " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Links, TwoLevelTest,
                         ::testing::Values(LevelLink::kOriginal,
                                           LevelLink::kEftp));

TEST(TwoLevelKeyChain, AnchorSelectionByLinkMode) {
  const TwoLevelKeyChain original(bytes_of("s"), 4, 3, LevelLink::kOriginal);
  const TwoLevelKeyChain eftp(bytes_of("s"), 4, 3, LevelLink::kEftp);
  EXPECT_EQ(original.low_anchor(2), original.high_key(3));
  EXPECT_EQ(eftp.low_anchor(2), eftp.high_key(2));
}

TEST(TwoLevelKeyChain, EftpIntervalsHaveDistinctChains) {
  // Under kEftp two consecutive intervals must not share a chain even
  // though their anchors are consecutive keys of the same high chain.
  const TwoLevelKeyChain chain(bytes_of("s"), 4, 3, LevelLink::kEftp);
  EXPECT_NE(chain.low_key(1, 0), chain.low_key(2, 0));
}

TEST(TwoLevelKeyChain, RejectsZeroLengths) {
  EXPECT_THROW(TwoLevelKeyChain(bytes_of("s"), 0, 3, LevelLink::kOriginal),
               std::invalid_argument);
  EXPECT_THROW(TwoLevelKeyChain(bytes_of("s"), 3, 0, LevelLink::kOriginal),
               std::invalid_argument);
}

// -------------------------------------------------------------- MAC/μMAC

TEST(Mac, SizesMatchPaper) {
  EXPECT_EQ(kMacSize, 10u);        // 80 bits
  EXPECT_EQ(kMicroMacSize, 3u);    // 24 bits
  EXPECT_EQ(dap_record_bits(), 56u);
  EXPECT_EQ(full_record_bits(), 280u);
}

TEST(Mac, ComputeAndVerify) {
  const Bytes key = bytes_of("key");
  const Bytes msg = bytes_of("message");
  const Bytes tag = compute_mac(key, msg);
  EXPECT_EQ(tag.size(), kMacSize);
  EXPECT_TRUE(verify_mac(key, msg, tag));
  EXPECT_FALSE(verify_mac(key, bytes_of("other"), tag));
  EXPECT_FALSE(verify_mac(bytes_of("wrong"), msg, tag));
}

TEST(Mac, VerifyRejectsEmptyAndOversizedTags) {
  EXPECT_FALSE(verify_mac(bytes_of("k"), bytes_of("m"), Bytes{}));
  EXPECT_FALSE(verify_mac(bytes_of("k"), bytes_of("m"), Bytes(40, 0)));
}

TEST(Mac, MicroMacIsDeterministicPerReceiver) {
  const Bytes mac = compute_mac(bytes_of("k"), bytes_of("m"));
  const Bytes recv_a = bytes_of("receiver-a");
  const Bytes recv_b = bytes_of("receiver-b");
  EXPECT_EQ(micro_mac(recv_a, mac), micro_mac(recv_a, mac));
  EXPECT_NE(micro_mac(recv_a, mac), micro_mac(recv_b, mac));
  EXPECT_EQ(micro_mac(recv_a, mac).size(), kMicroMacSize);
}

TEST(Mac, TruncationBoundsEnforced) {
  EXPECT_THROW(compute_mac(bytes_of("k"), bytes_of("m"), 0),
               std::invalid_argument);
  EXPECT_THROW(compute_mac(bytes_of("k"), bytes_of("m"), 33),
               std::invalid_argument);
}

// ------------------------------------------------------------------ WOTS

class WotsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WotsTest, SignVerifyRoundTrip) {
  WotsKeyPair kp(bytes_of("wots-seed"), GetParam());
  const Bytes msg = bytes_of("broadcast commitment");
  const WotsSignature sig = kp.sign(msg);
  EXPECT_TRUE(wots_verify(kp.public_key(), msg, sig, GetParam()));
}

TEST_P(WotsTest, RejectsWrongMessage) {
  WotsKeyPair kp(bytes_of("wots-seed"), GetParam());
  const WotsSignature sig = kp.sign(bytes_of("m1"));
  EXPECT_FALSE(wots_verify(kp.public_key(), bytes_of("m2"), sig, GetParam()));
}

TEST_P(WotsTest, RejectsTamperedSignature) {
  WotsKeyPair kp(bytes_of("wots-seed"), GetParam());
  WotsSignature sig = kp.sign(bytes_of("m"));
  sig.chains[0][0] ^= 1;
  EXPECT_FALSE(wots_verify(kp.public_key(), bytes_of("m"), sig, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Widths, WotsTest, ::testing::Values(1u, 2u, 4u, 8u));

TEST(Wots, RejectsWrongPublicKey) {
  WotsKeyPair a(bytes_of("seed-a"));
  WotsKeyPair b(bytes_of("seed-b"));
  const WotsSignature sig = a.sign(bytes_of("m"));
  EXPECT_FALSE(wots_verify(b.public_key(), bytes_of("m"), sig));
}

TEST(Wots, OneTimePropertyEnforced) {
  WotsKeyPair kp(bytes_of("seed"));
  (void)kp.sign(bytes_of("first"));
  EXPECT_NO_THROW(kp.sign(bytes_of("first")));  // same message ok
  EXPECT_THROW(kp.sign(bytes_of("second")), std::logic_error);
}

TEST(Wots, ChainAdvanceAttackFails) {
  // An attacker may advance any signature chain (apply the public hash),
  // but the checksum chains make the result verify false.
  WotsKeyPair kp(bytes_of("seed"));
  WotsSignature sig = kp.sign(bytes_of("m"));
  // Advance chain 0 by one hash step, as a forger could.
  sig.chains[0] = sha256_bytes(sig.chains[0]);
  EXPECT_FALSE(wots_verify(kp.public_key(), bytes_of("m"), sig));
}

TEST(Wots, MalformedSignatureShapesVerifyFalse) {
  WotsKeyPair kp(bytes_of("seed"));
  WotsSignature sig = kp.sign(bytes_of("m"));
  WotsSignature short_sig = sig;
  short_sig.chains.pop_back();
  EXPECT_FALSE(wots_verify(kp.public_key(), bytes_of("m"), short_sig));
  WotsSignature bad_width = sig;
  bad_width.chains[0].resize(16);
  EXPECT_FALSE(wots_verify(kp.public_key(), bytes_of("m"), bad_width));
  EXPECT_FALSE(wots_verify(kp.public_key(), bytes_of("m"), sig, 3));
}

TEST(Wots, ChainCountMatchesParameter) {
  // 4-bit Winternitz: 64 message digits + 3 checksum digits.
  EXPECT_EQ(wots_chain_count(4), 67u);
  // 8-bit: 32 message digits + 2 checksum digits.
  EXPECT_EQ(wots_chain_count(8), 34u);
  EXPECT_THROW(wots_chain_count(3), std::invalid_argument);
}

TEST(Wots, RejectsBadConstruction) {
  EXPECT_THROW(WotsKeyPair({}, 4), std::invalid_argument);
  EXPECT_THROW(WotsKeyPair(bytes_of("s"), 5), std::invalid_argument);
}

}  // namespace
}  // namespace dap::crypto

// ---------------------------------------------------------------- Merkle

namespace dap::crypto {
namespace {

TEST(Merkle, SignVerifyManyMessages) {
  MerkleSigner signer(common::bytes_of("tree-seed"), 3);  // 8 leaves
  EXPECT_EQ(signer.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    const common::Bytes msg =
        common::bytes_of("anchor #" + std::to_string(i));
    const MerkleSignature sig = signer.sign(msg);
    EXPECT_EQ(sig.leaf_index, static_cast<std::uint32_t>(i));
    EXPECT_TRUE(merkle_verify(signer.root(), msg, sig, 3)) << "leaf " << i;
  }
  EXPECT_EQ(signer.signatures_used(), 8u);
}

TEST(Merkle, ExhaustionThrows) {
  MerkleSigner signer(common::bytes_of("seed"), 1);  // 2 leaves
  (void)signer.sign(common::bytes_of("a"));
  (void)signer.sign(common::bytes_of("b"));
  EXPECT_THROW(signer.sign(common::bytes_of("c")), std::runtime_error);
}

TEST(Merkle, RejectsWrongMessageOrRoot) {
  MerkleSigner signer(common::bytes_of("seed"), 2);
  const auto sig = signer.sign(common::bytes_of("real"));
  EXPECT_FALSE(merkle_verify(signer.root(), common::bytes_of("fake"), sig, 2));
  MerkleSigner other(common::bytes_of("other"), 2);
  EXPECT_FALSE(merkle_verify(other.root(), common::bytes_of("real"), sig, 2));
}

TEST(Merkle, RejectsTamperedPathAndIndex) {
  MerkleSigner signer(common::bytes_of("seed"), 3);
  auto sig = signer.sign(common::bytes_of("m"));
  auto bad_path = sig;
  bad_path.auth_path[1][0] ^= 1;
  EXPECT_FALSE(merkle_verify(signer.root(), common::bytes_of("m"), bad_path, 3));
  auto bad_index = sig;
  bad_index.leaf_index = 5;  // wrong position: path no longer matches
  EXPECT_FALSE(
      merkle_verify(signer.root(), common::bytes_of("m"), bad_index, 3));
  auto short_path = sig;
  short_path.auth_path.pop_back();
  EXPECT_FALSE(
      merkle_verify(signer.root(), common::bytes_of("m"), short_path, 3));
  EXPECT_FALSE(merkle_verify(signer.root(), common::bytes_of("m"), sig, 4));
}

TEST(Merkle, LeafIndexOutOfRangeRejected) {
  MerkleSigner signer(common::bytes_of("seed"), 2);
  auto sig = signer.sign(common::bytes_of("m"));
  sig.leaf_index = 4;  // beyond 2^2 leaves
  EXPECT_FALSE(merkle_verify(signer.root(), common::bytes_of("m"), sig, 2));
}

TEST(Merkle, RejectsBadConstruction) {
  EXPECT_THROW(MerkleSigner(common::bytes_of("s"), 0), std::invalid_argument);
  EXPECT_THROW(MerkleSigner(common::bytes_of("s"), 17), std::invalid_argument);
  EXPECT_THROW(MerkleSigner({}, 3), std::invalid_argument);
}

TEST(Merkle, WotsRecoverMatchesPublicKey) {
  WotsKeyPair kp(common::bytes_of("seed"));
  const auto sig = kp.sign(common::bytes_of("m"));
  EXPECT_EQ(wots_recover_public_key(common::bytes_of("m"), sig),
            kp.public_key());
  EXPECT_NE(wots_recover_public_key(common::bytes_of("x"), sig),
            kp.public_key());
  EXPECT_TRUE(wots_recover_public_key(common::bytes_of("m"), sig, 7).empty());
}

TEST(Merkle, DistinctLeavesDistinctKeys) {
  MerkleSigner signer(common::bytes_of("seed"), 2);
  const auto a = signer.sign(common::bytes_of("same message"));
  const auto b = signer.sign(common::bytes_of("same message"));
  EXPECT_NE(a.leaf_index, b.leaf_index);
  EXPECT_NE(a.wots.chains[0], b.wots.chains[0]);
  // Both verify against the same root.
  EXPECT_TRUE(
      merkle_verify(signer.root(), common::bytes_of("same message"), a, 2));
  EXPECT_TRUE(
      merkle_verify(signer.root(), common::bytes_of("same message"), b, 2));
}

}  // namespace
}  // namespace dap::crypto
