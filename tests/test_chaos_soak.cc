// Chaos soak and receiver-resilience tests: scripted fault schedules
// (jitter, duplication, blackout, clock drift/step, crash/restart)
// through concurrent DAP and TESLA++ sessions, plus focused tests for
// the desync -> resync -> recover path and the graceful-degradation
// policy. The soak invariants: no forged message EVER authenticates,
// and every receiver reconverges within the bounded tail.
//
// DAP_CHAOS_SOAK_ITERS=<n> (env) widens the default quick soak to the
// full horizon with n seeds per mix — the CI sanitizer stage sets it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/chaos.h"
#include "common/rng.h"
#include "dap/dap.h"
#include "obs/registry.h"
#include "sim/clock_model.h"
#include "sim/faults.h"
#include "tesla/teslapp.h"
#include "tesla/timesync.h"

namespace dap {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

analysis::ChaosConfig quick_config(std::uint64_t seed,
                                   const analysis::ChaosFaultMix& mix) {
  analysis::ChaosConfig config;
  config.seed = seed;
  config.mix = mix;
  config.receivers = 2;
  config.fault_from = 6;
  config.fault_until = 14;
  config.reconverge_within = 8;
  return config;
}

// ------------------------------------------------------------- the soak

TEST(ChaosSoak, EveryFaultMixHoldsBothInvariants) {
  // Default: one quick seeded pass per mix. DAP_CHAOS_SOAK_ITERS widens
  // to the full horizon with that many seeds per mix.
  int iters = 0;
  if (const char* env = std::getenv("DAP_CHAOS_SOAK_ITERS")) {
    iters = std::atoi(env);
  }
  for (const auto& [name, mix] : analysis::standard_fault_mixes()) {
    if (iters > 0) {
      for (int s = 0; s < iters; ++s) {
        analysis::ChaosConfig config;
        config.seed = 100 + static_cast<std::uint64_t>(s);
        config.mix = mix;
        const auto report = analysis::run_chaos_soak(config);
        EXPECT_EQ(report.forged_accepted_total, 0u)
            << "forged authentication in mix " << name << " seed "
            << config.seed;
        EXPECT_TRUE(report.all_reconverged)
            << "receiver stuck after faults cleared in mix " << name
            << " seed " << config.seed;
      }
    } else {
      const auto report = analysis::run_chaos_soak(quick_config(7, mix));
      EXPECT_EQ(report.forged_accepted_total, 0u)
          << "forged authentication in mix " << name;
      EXPECT_TRUE(report.all_reconverged)
          << "receiver stuck after faults cleared in mix " << name;
    }
  }
}

TEST(ChaosSoak, DriftDeclaresEpisodesAndReconverges) {
  // Full horizon: the fast oscillators need the whole window to run the
  // safety check out of slack.
  analysis::ChaosConfig config;
  config.seed = 7;
  config.mix.clock_drift = true;
  const auto report = analysis::run_chaos_soak(config);
  ASSERT_EQ(report.dap.size(), config.receivers);
  std::uint64_t episodes = 0;
  std::uint64_t successes = 0;
  for (const auto& r : report.dap) {
    episodes += r.resync_episodes;
    successes += r.resync_successes;
  }
  EXPECT_GT(episodes, 0u);
  EXPECT_GT(successes, 0u);
  EXPECT_EQ(report.forged_accepted_total, 0u);
  EXPECT_TRUE(report.all_reconverged);
  for (const auto& r : report.dap) {
    EXPECT_LE(r.reconverge_intervals, config.reconverge_within);
  }
}

TEST(ChaosSoak, StepWithResyncOutageExhaustsRetryBudget) {
  analysis::ChaosConfig config;
  config.seed = 11;
  config.mix.clock_step = true;
  config.mix.resync_outage = true;
  const auto report = analysis::run_chaos_soak(config);
  std::uint64_t exhausted = 0;
  for (const auto& r : report.dap) exhausted += r.budget_exhausted;
  for (const auto& r : report.teslapp) exhausted += r.budget_exhausted;
  // Attempts against the unreachable responder burn whole budgets, yet
  // the post-window episode still recovers every receiver.
  EXPECT_GT(exhausted, 0u);
  EXPECT_EQ(report.forged_accepted_total, 0u);
  EXPECT_TRUE(report.all_reconverged);
}

TEST(ChaosSoak, CrashRestartsAreCountedAndSurvived) {
  analysis::ChaosConfig config;
  config.seed = 23;
  config.mix.crash_restart = true;
  const auto report = analysis::run_chaos_soak(config);
  for (const auto& r : report.dap) EXPECT_EQ(r.crash_restarts, 2u);
  for (const auto& r : report.teslapp) EXPECT_EQ(r.crash_restarts, 2u);
  EXPECT_EQ(report.forged_accepted_total, 0u);
  EXPECT_TRUE(report.all_reconverged);
}

TEST(ChaosSoak, ResyncTelemetryVisibleInRegistryExport) {
  // The drift soak above may or may not have run first; run one here so
  // the process-global registry provably carries the instruments.
  analysis::ChaosConfig config;
  config.seed = 42;
  config.mix.clock_drift = true;
  (void)analysis::run_chaos_soak(config);

  auto& reg = obs::Registry::global();
  for (const std::string prefix : {"dap", "teslapp"}) {
    const auto* episodes = reg.find_counter(prefix + ".desync_episodes");
    ASSERT_NE(episodes, nullptr) << prefix;
    const auto* attempts = reg.find_counter(prefix + ".resync_attempts");
    ASSERT_NE(attempts, nullptr) << prefix;
    const auto* successes = reg.find_counter(prefix + ".resync_successes");
    ASSERT_NE(successes, nullptr) << prefix;
    EXPECT_GE(*attempts, *successes) << prefix;
  }
  // Fast-drift receivers desynced and recovered, so the latency
  // histogram has samples and sane percentiles.
  const auto* latency = reg.find_histogram("dap.resync_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count(), 0u);
  EXPECT_GE(latency->p99(), latency->p50());
}

// ------------------------------------------------- fleet-level chaos

TEST(FleetChaos, EveryStandardCaseHoldsAllThreeInvariants) {
  // Relay crash/reboot-skew, healing partitions, degraded budgets, and
  // guard saturation across multi-hop topologies: zero forged auths,
  // relay memory bounded by the guard capacity, and every depth back to
  // full sentinel authentication within the case's documented bound.
  const auto cases = analysis::standard_fleet_chaos_cases(/*smoke=*/true);
  ASSERT_GE(cases.size(), 5u);
  const auto results = analysis::run_fleet_chaos_cases(cases);
  ASSERT_EQ(results.size(), cases.size());
  for (const auto& result : results) {
    EXPECT_TRUE(result.zero_forged)
        << result.label << ": forged message authenticated";
    EXPECT_TRUE(result.memory_bounded)
        << result.label << ": guard peak " << result.report.guard_peak_entries
        << " exceeds capacity " << result.report.guard_capacity;
    EXPECT_TRUE(result.reconverged) << result.label << ": a depth missed its "
                                    << "reconvergence bound";
  }
}

TEST(FleetChaos, CasesExerciseEveryFaultKindAndStressTheGuard) {
  // The standard family must actually inject what it claims: at least
  // one crash cycle, one healed partition, budget shedding, and tag
  // evictions somewhere across the cases.
  const auto cases = analysis::standard_fleet_chaos_cases(/*smoke=*/true);
  const auto results = analysis::run_fleet_chaos_cases(cases);
  std::uint64_t restarts = 0;
  std::uint64_t shed = 0;
  std::uint64_t evicted = 0;
  std::uint64_t dropped_down = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    restarts += result.report.relay_restarts;
    shed += result.report.guard_shed;
    evicted += result.report.guard_evicted;
    dropped_down += result.report.dropped_while_down;
    // Crashes and partitions clear at a positive interval; a plan made
    // only of degraded budgets never clears (horizon stays 0).
    const auto& faults = cases[i].spec.faults;
    if (!faults.relay_crashes.empty() || !faults.partitions.empty()) {
      EXPECT_GT(result.report.fault_clear_interval, 0u) << result.label;
    }
    EXPECT_FALSE(result.report.reconverge_intervals.empty()) << result.label;
  }
  EXPECT_GT(restarts, 0u);
  EXPECT_GT(dropped_down, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_GT(evicted, 0u);
}

// --------------------------------------- desync -> resync -> recover

TEST(DapResilience, DriftingClockDesyncsThenResyncsThenAccepts) {
  // A fast oscillator (20% skew, frozen after 500 ms) pushes authentic
  // announces across the believed safety bound: the receiver must flag
  // the desync, re-run the timesync handshake, and accept again.
  protocol::DapConfig config;
  config.chain_length = 16;
  config.schedule = sim::IntervalSchedule(0, 100 * sim::kMillisecond);
  config.resync.enabled = true;
  config.resync.desync_threshold = 3;
  config.resync.retry_budget = 4;
  config.resync.backoff_initial = sim::kMillisecond;
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"),
                                 sim::LooseClock(0, 2 * sim::kMillisecond),
                                 Rng(5));

  sim::FaultyClock oscillator(sim::LooseClock(0, 2 * sim::kMillisecond));
  oscillator.add(sim::ClockDriftFault{200000.0, 0, 500 * sim::kMillisecond});

  sim::SimTime true_now = 0;

  // Announces mid-interval; the growing offset makes i = 3..5 unsafe.
  for (std::uint32_t i = 1; i <= 5; ++i) {
    true_now = config.schedule.interval_start(i) + 50 * sim::kMillisecond;
    receiver.receive(sender.announce(i, bytes_of("m" + std::to_string(i))),
                     oscillator.local_time(true_now));
  }
  EXPECT_EQ(receiver.stats().announces_unsafe, 3u);
  EXPECT_TRUE(receiver.desynced());

  // Wire the handshake transport only now, so the declared desync is
  // observable above (the receive path retries eagerly once wired).
  tesla::TimeSyncClient sync(bytes_of("pairwise"), 99);
  tesla::TimeSyncResponder responder(bytes_of("pairwise"));
  receiver.set_resync_handler(
      [&](sim::SimTime local_now) -> std::optional<tesla::SyncCalibration> {
        const auto request = sync.begin(local_now);
        const auto response = responder.respond(request, true_now);
        return sync.complete(response, local_now + 1);
      });

  // Past the drift window the offset is frozen; an idle tick re-runs the
  // handshake and installs a fresh calibration.
  true_now = 520 * sim::kMillisecond;
  receiver.tick(oscillator.local_time(true_now));
  EXPECT_FALSE(receiver.desynced());
  EXPECT_EQ(receiver.resync_stats().successes, 1u);

  // Accepted again: announce for interval 6, reveal in interval 7.
  true_now = config.schedule.interval_start(6) + 50 * sim::kMillisecond;
  receiver.receive(sender.announce(6, bytes_of("recovered")),
                   oscillator.local_time(true_now));
  EXPECT_EQ(receiver.stats().announces_unsafe, 3u);  // no new rejection
  true_now = config.schedule.interval_start(7) + 5 * sim::kMillisecond;
  const auto message =
      receiver.receive(sender.reveal(6), oscillator.local_time(true_now));
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->message, bytes_of("recovered"));
}

TEST(TeslaPpResilience, DriftingClockDesyncsThenResyncsThenAccepts) {
  tesla::TeslaPpConfig config;
  config.chain_length = 16;
  config.schedule = sim::IntervalSchedule(0, 100 * sim::kMillisecond);
  config.resync.enabled = true;
  config.resync.desync_threshold = 3;
  config.resync.backoff_initial = sim::kMillisecond;
  tesla::TeslaPpSender sender(config, bytes_of("seed"));
  tesla::TeslaPpReceiver receiver(config, sender.chain().commitment(),
                                  bytes_of("local"),
                                  sim::LooseClock(0, 2 * sim::kMillisecond));

  sim::FaultyClock oscillator(sim::LooseClock(0, 2 * sim::kMillisecond));
  oscillator.add(sim::ClockDriftFault{200000.0, 0, 500 * sim::kMillisecond});

  sim::SimTime true_now = 0;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    true_now = config.schedule.interval_start(i) + 50 * sim::kMillisecond;
    receiver.receive(sender.announce(i, bytes_of("m" + std::to_string(i))),
                     oscillator.local_time(true_now));
  }
  EXPECT_EQ(receiver.stats().announces_unsafe, 3u);
  EXPECT_TRUE(receiver.desynced());

  tesla::TimeSyncClient sync(bytes_of("pairwise"), 99);
  tesla::TimeSyncResponder responder(bytes_of("pairwise"));
  receiver.set_resync_handler(
      [&](sim::SimTime local_now) -> std::optional<tesla::SyncCalibration> {
        const auto request = sync.begin(local_now);
        const auto response = responder.respond(request, true_now);
        return sync.complete(response, local_now + 1);
      });

  true_now = 520 * sim::kMillisecond;
  receiver.tick(oscillator.local_time(true_now));
  EXPECT_FALSE(receiver.desynced());
  EXPECT_EQ(receiver.resync_stats().successes, 1u);

  true_now = config.schedule.interval_start(6) + 50 * sim::kMillisecond;
  receiver.receive(sender.announce(6, bytes_of("recovered")),
                   oscillator.local_time(true_now));
  true_now = config.schedule.interval_start(7) + 5 * sim::kMillisecond;
  const auto messages =
      receiver.receive(sender.reveal(6), oscillator.local_time(true_now));
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].message, bytes_of("recovered"));
}

TEST(DapResilience, ResyncBudgetExhaustionClosesEpisodeAndRearms) {
  protocol::DapConfig config;
  config.chain_length = 16;
  config.schedule = sim::IntervalSchedule(0, 100 * sim::kMillisecond);
  config.resync.enabled = true;
  config.resync.desync_threshold = 2;
  config.resync.retry_budget = 2;
  config.resync.backoff_initial = sim::kMillisecond;
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"), sim::LooseClock(0, 0),
                                 Rng(5));
  receiver.set_resync_handler(
      [](sim::SimTime) -> std::optional<tesla::SyncCalibration> {
        return std::nullopt;  // responder unreachable
      });

  // Two stale announces (key long public) declare the episode.
  const auto stale = sender.announce(1, bytes_of("stale"));
  const sim::SimTime late = config.schedule.interval_start(9);
  receiver.receive(stale, late);
  receiver.receive(stale, late + 1);
  EXPECT_TRUE(receiver.desynced());

  // Two failed attempts exhaust the budget and close the episode.
  receiver.tick(late + 2);
  receiver.tick(late + 2 + sim::kMillisecond);
  EXPECT_FALSE(receiver.desynced());
  EXPECT_EQ(receiver.resync_stats().budget_exhausted, 1u);
  EXPECT_EQ(receiver.resync_stats().failures, 2u);

  // Fresh suspicion re-arms a new episode from scratch.
  receiver.receive(stale, late + 3 * sim::kMillisecond);
  receiver.receive(stale, late + 4 * sim::kMillisecond);
  EXPECT_TRUE(receiver.desynced());
  EXPECT_EQ(receiver.resync_stats().desync_episodes, 2u);
}

// ------------------------------------------------ graceful degradation

TEST(DapDegradation, PoolSaturationShedsAndShrinksThenRestores) {
  protocol::DapConfig config;
  config.chain_length = 16;
  config.buffers = 8;
  config.record_pool_limit = 8;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"), sim::LooseClock(0, 0),
                                 Rng(5));

  // Fill the pool to the cap with one round's records.
  const sim::SimTime t = 10 * sim::kMillisecond;
  for (int k = 0; k < 8; ++k) {
    receiver.receive(sender.announce(1, bytes_of("m" + std::to_string(k))),
                     t);
  }
  EXPECT_EQ(receiver.stored_records(), 8u);
  EXPECT_EQ(receiver.effective_buffers(), 8u);

  // Saturated: the next admission is shed and the reservoir halves.
  receiver.receive(sender.announce(2, bytes_of("over")), t);
  EXPECT_EQ(receiver.stats().admissions_shed, 1u);
  EXPECT_EQ(receiver.effective_buffers(), 4u);
  EXPECT_EQ(receiver.stored_records(), 8u);

  // Announcing interval 3 prunes the long-public round 1, draining the
  // pool below half the cap: capacity is restored and the record admitted.
  receiver.receive(sender.announce(3, bytes_of("fresh")), t);
  EXPECT_EQ(receiver.stats().admissions_shed, 1u);
  EXPECT_EQ(receiver.effective_buffers(), 8u);
  EXPECT_EQ(receiver.stored_records(), 1u);
}

TEST(TeslaPpDegradation, PoolSaturationShedsOutright) {
  tesla::TeslaPpConfig config;
  config.chain_length = 16;
  config.record_pool_limit = 4;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  tesla::TeslaPpSender sender(config, bytes_of("seed"));
  tesla::TeslaPpReceiver receiver(config, sender.chain().commitment(),
                                  bytes_of("local"), sim::LooseClock(0, 0));

  const sim::SimTime t = 10 * sim::kMillisecond;
  for (int k = 0; k < 4; ++k) {
    receiver.receive(sender.announce(1, bytes_of("m" + std::to_string(k))),
                     t);
  }
  EXPECT_EQ(receiver.stored_records(), 4u);
  receiver.receive(sender.announce(1, bytes_of("over")), t);
  EXPECT_EQ(receiver.stats().admissions_shed, 1u);
  EXPECT_EQ(receiver.stored_records(), 4u);
}

// ------------------------------------------------------ crash/restart

TEST(DapResilience, CrashRestartKeepsChainAnchorAndReauthenticates) {
  protocol::DapConfig config;
  config.chain_length = 16;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender sender(config, bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 bytes_of("local"), sim::LooseClock(0, 0),
                                 Rng(5));

  // Authenticate interval 1 normally (advances the chain anchor to K_1).
  receiver.receive(sender.announce(1, bytes_of("before")),
                   10 * sim::kMillisecond);
  ASSERT_TRUE(receiver
                  .receive(sender.reveal(1),
                           config.schedule.interval_start(2) + 10)
                  .has_value());

  // Buffer a round, then crash: volatile state gone, anchor kept.
  receiver.receive(sender.announce(2, bytes_of("lost-in-crash")),
                   config.schedule.interval_start(2) + 20);
  receiver.crash_restart(config.schedule.interval_start(2) + 30);
  EXPECT_EQ(receiver.stats().crash_restarts, 1u);
  EXPECT_EQ(receiver.stored_records(), 0u);
  EXPECT_FALSE(receiver.desynced());

  // The buffered round died with the crash...
  EXPECT_FALSE(receiver
                   .receive(sender.reveal(2),
                            config.schedule.interval_start(3) + 10)
                   .has_value());
  // ...but fresh rounds authenticate forward from the surviving anchor.
  receiver.receive(sender.announce(3, bytes_of("after")),
                   config.schedule.interval_start(3) + 20);
  const auto message = receiver.receive(
      sender.reveal(3), config.schedule.interval_start(4) + 10);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->message, bytes_of("after"));
  EXPECT_EQ(receiver.stats().weak_auth_failures, 0u);
}

}  // namespace
}  // namespace dap
