// Exact-equality tests for the batched multi-lane SHA-256 backend:
// every (backend, lane-count, message-length, partial-tail batch)
// combination must be bitwise identical to the scalar oracle, HmacKey
// must reproduce hmac_sha256 (RFC 4231 vectors included), prf_walk_many
// must reproduce chain_walk step by step, and
// ChainAuthenticator::accept_many must reproduce sequential accept()
// outcomes exactly — counters, checkpoints, and anchors included.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/mac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/sha256_batch.h"
#include "obs/registry.h"
#include "tesla/chain_auth.h"

namespace dap::crypto {
namespace {

using common::Bytes;
using common::ByteView;
using common::bytes_of;
using common::from_hex;
using common::to_hex;

std::string hex_digest(const Digest& d) {
  return to_hex(ByteView(d.data(), d.size()));
}

// Restores auto-detection when a test forces a backend.
struct BackendGuard {
  ~BackendGuard() { clear_sha256_backend_override(); }
};

std::vector<Sha256Backend> supported_backends() {
  std::vector<Sha256Backend> out{Sha256Backend::kScalar};
  const auto best = best_supported_sha256_backend();
  if (best >= Sha256Backend::kSse2) out.push_back(Sha256Backend::kSse2);
  if (best >= Sha256Backend::kAvx2) out.push_back(Sha256Backend::kAvx2);
  return out;
}

// ------------------------------------------------------ midstate plumbing

TEST(Sha256Midstate, CaptureRestoreRoundTrip) {
  const Bytes prefix(64, 'p');
  const Bytes suffix = bytes_of("suffix data");

  Sha256 a;
  a.update(prefix);
  const Sha256Midstate ms = a.midstate();
  EXPECT_EQ(ms.bytes, 64u);

  Sha256 b;
  b.restore(ms);
  b.update(suffix);

  Sha256 whole;
  whole.update(prefix);
  whole.update(suffix);
  EXPECT_EQ(b.finalize(), whole.finalize());
}

TEST(Sha256Midstate, InitialMidstateIsEmptyHashState) {
  Sha256 h;
  h.restore(sha256_initial_midstate());
  EXPECT_EQ(hex_digest(h.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

// ------------------------------------------------------- backend plumbing

TEST(Sha256Batch, BackendNamesAndLanes) {
  EXPECT_EQ(backend_name(Sha256Backend::kScalar), "scalar");
  EXPECT_EQ(backend_name(Sha256Backend::kSse2), "sse2");
  EXPECT_EQ(backend_name(Sha256Backend::kAvx2), "avx2");
  EXPECT_EQ(backend_lanes(Sha256Backend::kScalar), 1u);
  EXPECT_EQ(backend_lanes(Sha256Backend::kSse2), 4u);
  EXPECT_EQ(backend_lanes(Sha256Backend::kAvx2), 8u);
}

TEST(Sha256Batch, ForceClampsToSupported) {
  const BackendGuard guard;
  force_sha256_backend(Sha256Backend::kAvx2);
  EXPECT_LE(static_cast<int>(active_sha256_backend()),
            static_cast<int>(best_supported_sha256_backend()));
  force_sha256_backend(Sha256Backend::kScalar);
  EXPECT_EQ(active_sha256_backend(), Sha256Backend::kScalar);
}

// -------------------------------------------------- sha256_many equality

TEST(Sha256Batch, EveryLengthMatchesScalarOnEveryBackend) {
  const BackendGuard guard;
  common::Rng rng(0xB47C);
  // Lengths 0..130 cover: empty, sub-block, the 55/56 padding split, the
  // exact block boundary, and two-block messages with every tail shape.
  std::vector<Bytes> msgs;
  for (std::size_t len = 0; len <= 130; ++len) msgs.push_back(rng.bytes(len));
  std::vector<ByteView> views(msgs.begin(), msgs.end());
  std::vector<Digest> expect(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) expect[i] = sha256(views[i]);

  for (const Sha256Backend backend : supported_backends()) {
    force_sha256_backend(backend);
    std::vector<Digest> got(msgs.size());
    sha256_many(views, got);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(got[i], expect[i])
          << backend_name(backend) << " length " << i;
    }
  }
}

TEST(Sha256Batch, PartialTailBatchesMatchScalar) {
  const BackendGuard guard;
  common::Rng rng(0x5EED);
  // Batch sizes 1..17 exercise every partial-lane tail for 4- and 8-lane
  // kernels (1..3 and 1..7 occupied lanes plus full chunks).
  for (const Sha256Backend backend : supported_backends()) {
    force_sha256_backend(backend);
    for (std::size_t n = 1; n <= 17; ++n) {
      std::vector<Bytes> msgs;
      for (std::size_t i = 0; i < n; ++i) {
        msgs.push_back(rng.bytes(rng.uniform(0, 200)));
      }
      std::vector<ByteView> views(msgs.begin(), msgs.end());
      std::vector<Digest> got(n);
      sha256_many(views, got);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], sha256(views[i]))
            << backend_name(backend) << " batch " << n << " msg " << i;
      }
    }
  }
}

TEST(Sha256Batch, MixedBlockCountsInOneBatch) {
  const BackendGuard guard;
  common::Rng rng(0x31);
  std::vector<Bytes> msgs;
  // Deliberately interleave short and long messages so the grouping by
  // block count must reorder and un-reorder without mixing up outputs.
  for (const std::size_t len : {300u, 0u, 64u, 1000u, 3u, 129u, 55u, 56u}) {
    msgs.push_back(rng.bytes(len));
  }
  std::vector<ByteView> views(msgs.begin(), msgs.end());
  for (const Sha256Backend backend : supported_backends()) {
    force_sha256_backend(backend);
    std::vector<Digest> got(msgs.size());
    sha256_many(views, got);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(got[i], sha256(views[i]))
          << backend_name(backend) << " msg " << i;
    }
  }
}

// ------------------------------------------------------- HmacKey midstate

TEST(HmacKey, MatchesHmacSha256) {
  common::Rng rng(0xAB);
  for (const std::size_t key_len : {0u, 1u, 10u, 32u, 64u, 65u, 131u}) {
    const Bytes key = rng.bytes(key_len);
    const HmacKey cached{ByteView(key)};
    for (const std::size_t msg_len : {0u, 1u, 55u, 56u, 64u, 100u, 1000u}) {
      const Bytes msg = rng.bytes(msg_len);
      EXPECT_EQ(cached.mac(msg), hmac_sha256(key, msg))
          << "key " << key_len << " msg " << msg_len;
    }
  }
}

TEST(HmacKey, Rfc4231Vectors) {
  // Case 1: 20-byte 0x0b key.
  const HmacKey k1{ByteView(Bytes(20, 0x0b))};
  EXPECT_EQ(hex_digest(k1.mac(bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Case 2: short ASCII key.
  const Bytes jefe = bytes_of("Jefe");
  const HmacKey k2{ByteView(jefe)};
  EXPECT_EQ(
      hex_digest(k2.mac(bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Case 6: 131-byte key exercises the hash-then-pad path.
  const HmacKey k6{ByteView(Bytes(131, 0xaa))};
  EXPECT_EQ(hex_digest(k6.mac(bytes_of(
                "Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacKey, VerifiesAndCountsMidstateHits) {
  obs::Registry& reg = obs::Registry::global();
  const auto hits = reg.counter("crypto.hmac_midstate_hits");
  const std::uint64_t before = reg.value(hits);

  const Bytes key = bytes_of("k");
  const Bytes msg = bytes_of("m");
  const HmacKey cached{ByteView(key)};
  const Digest tag = cached.mac(msg);
  EXPECT_TRUE(cached.verify(msg, ByteView(tag.data(), tag.size())));
  EXPECT_FALSE(cached.verify(bytes_of("not m"),
                             ByteView(tag.data(), tag.size())));
  EXPECT_GT(reg.value(hits), before);
}

TEST(HmacKey, MacHelpersMatchByteViewOverloads) {
  const Bytes key = bytes_of("interval-key");
  const Bytes msg = bytes_of("announce");
  const HmacKey cached{ByteView(key)};
  EXPECT_EQ(compute_mac(cached, msg), compute_mac(key, msg));
  EXPECT_EQ(micro_mac(cached, msg), micro_mac(key, msg));
  EXPECT_TRUE(verify_mac(cached, msg, compute_mac(key, msg)));
  EXPECT_FALSE(verify_mac(cached, msg, compute_mac(key, bytes_of("x"))));
}

TEST(PrfKey, CachedDomainKeysMatchPrf) {
  common::Rng rng(0xD0);
  const Bytes input = rng.bytes(10);
  for (std::uint8_t d = 0; d < 7; ++d) {
    const auto domain = static_cast<PrfDomain>(d);
    EXPECT_EQ(prf_key(domain).mac(input), prf(domain, input))
        << domain_label(domain);
  }
}

// ------------------------------------------------------------- hmac_many

TEST(Sha256Batch, HmacManyMatchesScalarEveryBackend) {
  const BackendGuard guard;
  common::Rng rng(0x77);
  const Bytes key = rng.bytes(16);
  const HmacKey cached{ByteView(key)};
  std::vector<Bytes> msgs;
  for (std::size_t i = 0; i < 13; ++i) {
    msgs.push_back(rng.bytes(rng.uniform(0, 120)));
  }
  std::vector<ByteView> views(msgs.begin(), msgs.end());
  for (const Sha256Backend backend : supported_backends()) {
    force_sha256_backend(backend);
    std::vector<Digest> got(msgs.size());
    hmac_many(cached, views, got);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(got[i], hmac_sha256(key, views[i]))
          << backend_name(backend) << " msg " << i;
    }
  }
}

TEST(Sha256Batch, HmacManyPerKeyMatchesScalar) {
  const BackendGuard guard;
  common::Rng rng(0x88);
  std::vector<Bytes> raw_keys;
  std::vector<HmacKey> keys;
  std::vector<Bytes> msgs;
  for (std::size_t i = 0; i < 11; ++i) {
    raw_keys.push_back(rng.bytes(10 + i));
    keys.emplace_back(ByteView(raw_keys.back()));
    msgs.push_back(rng.bytes(rng.uniform(0, 80)));
  }
  std::vector<const HmacKey*> key_ptrs;
  for (const HmacKey& k : keys) key_ptrs.push_back(&k);
  std::vector<ByteView> views(msgs.begin(), msgs.end());
  for (const Sha256Backend backend : supported_backends()) {
    force_sha256_backend(backend);
    std::vector<Digest> got(msgs.size());
    hmac_many(key_ptrs, views, got);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(got[i], hmac_sha256(raw_keys[i], views[i]))
          << backend_name(backend) << " msg " << i;
    }
  }
}

// --------------------------------------------------------- prf_walk_many

TEST(Sha256Batch, PrfWalkManyMatchesChainWalk) {
  const BackendGuard guard;
  common::Rng rng(0x99);
  constexpr std::size_t kKeySize = 10;
  std::vector<Bytes> starts;
  std::vector<std::uint32_t> steps;
  for (const std::uint32_t s : {1u, 7u, 0u, 64u, 3u, 31u, 2u, 100u, 5u}) {
    starts.push_back(rng.bytes(kKeySize));
    steps.push_back(s);
  }
  for (const Sha256Backend backend : supported_backends()) {
    force_sha256_backend(backend);
    std::vector<std::vector<Bytes>> traj;
    prf_walk_many(PrfDomain::kChainStep, starts, steps, kKeySize, traj);
    ASSERT_EQ(traj.size(), starts.size());
    for (std::size_t i = 0; i < starts.size(); ++i) {
      ASSERT_EQ(traj[i].size(), steps[i]) << backend_name(backend);
      Bytes current = starts[i];
      for (std::uint32_t s = 0; s < steps[i]; ++s) {
        current = prf_bytes(PrfDomain::kChainStep, current, kKeySize);
        EXPECT_EQ(traj[i][s], current)
            << backend_name(backend) << " walk " << i << " step " << s;
      }
    }
  }
}

}  // namespace
}  // namespace dap::crypto

// ------------------------------------------------ batched chain accepts

namespace dap::tesla {
namespace {

using common::Bytes;
using common::ByteView;

struct BackendGuard {
  ~BackendGuard() { crypto::clear_sha256_backend_override(); }
};

std::vector<crypto::Sha256Backend> supported_backends() {
  std::vector<crypto::Sha256Backend> out{crypto::Sha256Backend::kScalar};
  const auto best = crypto::best_supported_sha256_backend();
  if (best >= crypto::Sha256Backend::kSse2) {
    out.push_back(crypto::Sha256Backend::kSse2);
  }
  if (best >= crypto::Sha256Backend::kAvx2) {
    out.push_back(crypto::Sha256Backend::kAvx2);
  }
  return out;
}

// Drives a scalar (sequential accept) and a batched (accept_many)
// authenticator with the same reveal queue and requires identical
// externally observable state afterwards.
void expect_batch_equals_sequential(
    const crypto::KeyChain& chain,
    const std::vector<std::pair<std::uint32_t, Bytes>>& queue,
    std::uint32_t stride) {
  ChainAuthenticator seq(chain.step_domain(), chain.key_size(),
                         chain.commitment(), 0, stride);
  ChainAuthenticator batch(chain.step_domain(), chain.key_size(),
                           chain.commitment(), 0, stride);

  std::vector<bool> expect;
  expect.reserve(queue.size());
  for (const auto& [interval, key] : queue) {
    expect.push_back(seq.accept(interval, key));
  }

  std::vector<KeyReveal> reveals;
  reveals.reserve(queue.size());
  for (const auto& [interval, key] : queue) {
    reveals.push_back(KeyReveal{interval, ByteView(key)});
  }
  const std::vector<bool> got = batch.accept_many(reveals);

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]) << "reveal " << i;
  }
  EXPECT_EQ(batch.anchor_index(), seq.anchor_index());
  EXPECT_EQ(batch.anchor_key(), seq.anchor_key());
  EXPECT_EQ(batch.accepted(), seq.accepted());
  EXPECT_EQ(batch.rejected(), seq.rejected());
  EXPECT_EQ(batch.cached_keys(), seq.cached_keys());
  for (std::uint32_t i = 0; i <= seq.anchor_index(); ++i) {
    EXPECT_EQ(batch.key(i), seq.key(i)) << "key " << i;
    EXPECT_EQ(batch.mac_key(i), seq.mac_key(i)) << "mac_key " << i;
  }
}

TEST(ChainAuthenticatorBatch, MatchesSequentialAcceptEveryBackend) {
  const BackendGuard guard;
  common::Rng rng(0xC4A);
  const crypto::KeyChain chain(rng.bytes(16), 96);

  std::vector<std::pair<std::uint32_t, Bytes>> queue;
  // In-order reveals, gaps, duplicates, a below-anchor reveal, an
  // out-of-order (stale) reveal, forged keys, and an empty key.
  queue.emplace_back(3, chain.key(3));
  queue.emplace_back(3, chain.key(3));            // duplicate (anchor hit)
  queue.emplace_back(17, chain.key(17));          // gap walk
  queue.emplace_back(9, chain.key(9));            // below-anchor re-derive
  queue.emplace_back(9, chain.key(10));           // below-anchor mismatch
  queue.emplace_back(40, chain.key(41));          // forged above-anchor
  queue.emplace_back(40, chain.key(40));
  queue.emplace_back(64, Bytes{});                // empty (uncounted)
  queue.emplace_back(90, chain.key(90));          // large gap
  queue.emplace_back(2, chain.key(2));            // pruned-era reveal

  for (const auto backend : supported_backends()) {
    crypto::force_sha256_backend(backend);
    for (const std::uint32_t stride : {1u, 4u, 16u}) {
      expect_batch_equals_sequential(chain, queue, stride);
    }
  }
}

TEST(ChainAuthenticatorBatch, AllForgedBatchRejectsEverything) {
  common::Rng rng(0xF0);
  const crypto::KeyChain chain(rng.bytes(16), 32);
  ChainAuthenticator auth(chain.step_domain(), chain.key_size(),
                          chain.commitment());
  std::vector<Bytes> forged;
  std::vector<KeyReveal> reveals;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    forged.push_back(rng.bytes(chain.key_size()));
    reveals.push_back(KeyReveal{i, ByteView(forged.back())});
  }
  const std::vector<bool> got = auth.accept_many(reveals);
  for (const bool ok : got) EXPECT_FALSE(ok);
  EXPECT_EQ(auth.rejected(), 10u);
  EXPECT_EQ(auth.anchor_index(), 0u);
}

TEST(ChainAuthenticatorBatch, OddKeySizeFallsBackToScalarAccept) {
  common::Rng rng(0xF1);
  const crypto::KeyChain chain(rng.bytes(16), 16);
  ChainAuthenticator auth(chain.step_domain(), chain.key_size(),
                          chain.commitment());
  // A candidate whose size differs from the chain key size cannot ride
  // the lockstep lanes; it must still get the exact scalar verdict.
  const Bytes wrong_size = rng.bytes(chain.key_size() + 3);
  std::vector<KeyReveal> reveals{
      KeyReveal{4, ByteView(wrong_size)},
      KeyReveal{4, ByteView(chain.key(4))},
  };
  const std::vector<bool> got = auth.accept_many(reveals);
  EXPECT_FALSE(got[0]);
  EXPECT_TRUE(got[1]);
  EXPECT_EQ(auth.anchor_index(), 4u);
}

}  // namespace
}  // namespace dap::tesla
