// Unit tests for the base TESLA protocol, the shared ChainAuthenticator,
// and the multi-buffer stores.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "crypto/mac.h"
#include "tesla/buffer.h"
#include "tesla/chain_auth.h"
#include "tesla/tesla.h"

namespace dap::tesla {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

TeslaConfig test_config() {
  TeslaConfig config;
  config.sender_id = 1;
  config.chain_length = 32;
  config.disclosure_delay = 2;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  return config;
}

sim::SimTime mid(std::uint32_t interval) {
  return (interval - 1) * sim::kSecond + sim::kSecond / 2;
}

// ----------------------------------------------------- ChainAuthenticator

TEST(ChainAuthenticator, AcceptsChainedKeysInOrder) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  for (std::uint32_t i = 1; i <= 8; ++i) {
    EXPECT_TRUE(auth.accept(i, chain.key(i))) << "key " << i;
    EXPECT_EQ(auth.anchor_index(), i);
  }
  EXPECT_EQ(auth.accepted(), 8u);
  EXPECT_EQ(auth.rejected(), 0u);
}

TEST(ChainAuthenticator, AcceptsSkippedKeysAndFillsGaps) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  EXPECT_TRUE(auth.accept(5, chain.key(5)));
  // Intermediate keys were derived and cached.
  for (std::uint32_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(auth.key(i).has_value());
    EXPECT_EQ(*auth.key(i), chain.key(i));
  }
  EXPECT_FALSE(auth.key(6).has_value());
}

TEST(ChainAuthenticator, RejectsForgedKey) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  Bytes forged = chain.key(3);
  forged[0] ^= 0xff;
  EXPECT_FALSE(auth.accept(3, forged));
  EXPECT_EQ(auth.rejected(), 1u);
  EXPECT_EQ(auth.anchor_index(), 0u);
}

TEST(ChainAuthenticator, OldKeyConsistencyCheck) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(4, chain.key(4)));
  EXPECT_TRUE(auth.accept(2, chain.key(2)));  // matches cache
  Bytes wrong = chain.key(2);
  wrong[1] ^= 1;
  EXPECT_FALSE(auth.accept(2, wrong));  // mismatch with cache
  // Proven-forged below-anchor reveals count as rejections, exactly
  // like above-anchor walk mismatches.
  EXPECT_EQ(auth.rejected(), 1u);
}

TEST(ChainAuthenticator, RejectionCounterCoversAllMismatchPaths) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(6, chain.key(6)));
  Bytes wrong_anchor = chain.key(6);
  wrong_anchor[0] ^= 1;
  EXPECT_FALSE(auth.accept(6, wrong_anchor));  // anchor compare
  Bytes wrong_below = chain.key(3);
  wrong_below[0] ^= 1;
  EXPECT_FALSE(auth.accept(3, wrong_below));  // below-anchor derivation
  Bytes wrong_above = chain.key(8);
  wrong_above[0] ^= 1;
  EXPECT_FALSE(auth.accept(8, wrong_above));  // above-anchor walk
  EXPECT_EQ(auth.rejected(), 3u);
  // Unverifiable reveals are not rejections: empty keys are malformed,
  // pruned indices are a cache miss.
  auth.prune_below(5);
  EXPECT_FALSE(auth.accept(3, chain.key(3)));
  EXPECT_FALSE(auth.accept(7, Bytes{}));
  EXPECT_EQ(auth.rejected(), 3u);
}

TEST(ChainAuthenticator, RejectsEmptyKeyAndWrongDomain) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kHighChainStep, chain.key_size(),
                          chain.commitment());
  EXPECT_FALSE(auth.accept(1, Bytes{}));
  // chain was built with kChainStep; the high-step domain cannot verify it.
  EXPECT_FALSE(auth.accept(1, chain.key(1)));
}

TEST(ChainAuthenticator, MacKeyOnlyForKnownKeys) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  EXPECT_FALSE(auth.mac_key(3).has_value());
  ASSERT_TRUE(auth.accept(3, chain.key(3)));
  ASSERT_TRUE(auth.mac_key(3).has_value());
  EXPECT_EQ(*auth.mac_key(3), chain.mac_key(3));
}

TEST(ChainAuthenticator, PruneKeepsAnchor) {
  const crypto::KeyChain chain(bytes_of("seed"), 8);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(6, chain.key(6)));
  auth.prune_below(5);
  EXPECT_FALSE(auth.key(2).has_value());
  EXPECT_TRUE(auth.key(5).has_value());
  EXPECT_TRUE(auth.key(6).has_value());
  // Still able to verify later keys against the anchor.
  EXPECT_TRUE(auth.accept(8, chain.key(8)));
}

TEST(ChainAuthenticator, RejectsBadConstruction) {
  EXPECT_THROW(ChainAuthenticator(crypto::PrfDomain::kChainStep, 10, Bytes{}),
               std::invalid_argument);
  EXPECT_THROW(ChainAuthenticator(crypto::PrfDomain::kChainStep, 0, Bytes{1}),
               std::invalid_argument);
}

// ------------------------------------------------ checkpointed chain cache

TEST(ChainAuthenticator, GapRevealWalksOncePerStep) {
  const crypto::KeyChain chain(bytes_of("seed"), 64);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(64, chain.key(64)));
  // Single downward pass: exactly gap hashes, not 2x gap.
  EXPECT_EQ(auth.walk_steps(), 64u);
}

TEST(ChainAuthenticator, CheckpointMemoryIsSparse) {
  const crypto::KeyChain chain(bytes_of("seed"), 64);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(64, chain.key(64)));
  // Anchor(0) + stride-16 checkpoints {16, 32, 48} + accepted top 64:
  // O(gap / stride) entries, not one per interval.
  EXPECT_EQ(auth.checkpoint_stride(),
            ChainAuthenticator::kDefaultCheckpointStride);
  EXPECT_LE(auth.cached_keys(), 64u / auth.checkpoint_stride() + 2);
}

TEST(ChainAuthenticator, BelowAnchorKeysDeriveFromNearestCheckpoint) {
  const crypto::KeyChain chain(bytes_of("seed"), 64);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(64, chain.key(64)));
  // Every interval in [1, 64] is still derivable despite the sparse
  // cache, and re-derivation costs at most `stride` extra hashes.
  for (const std::uint32_t i : {1u, 15u, 16u, 17u, 31u, 47u, 63u}) {
    const std::uint64_t before = auth.walk_steps();
    ASSERT_TRUE(auth.key(i).has_value()) << "key " << i;
    EXPECT_EQ(*auth.key(i), chain.key(i));
    // Two key() calls above; each walks <= stride - 1 steps.
    EXPECT_LE(auth.walk_steps() - before,
              2 * (auth.checkpoint_stride() - 1ull));
    EXPECT_TRUE(auth.accept(i, chain.key(i)));
  }
}

TEST(ChainAuthenticator, StrideOneCachesEveryKey) {
  const crypto::KeyChain chain(bytes_of("seed"), 16);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment(), 0, /*checkpoint_stride=*/1);
  ASSERT_TRUE(auth.accept(16, chain.key(16)));
  EXPECT_EQ(auth.cached_keys(), 17u);  // anchor + all 16 intermediates
  const std::uint64_t walked = auth.walk_steps();
  for (std::uint32_t i = 1; i <= 16; ++i) {
    ASSERT_TRUE(auth.key(i).has_value());
    EXPECT_EQ(*auth.key(i), chain.key(i));
  }
  EXPECT_EQ(auth.walk_steps(), walked);  // all exact cache hits
}

TEST(ChainAuthenticator, RebaseDropsHistoryKeepsAnchor) {
  const crypto::KeyChain chain(bytes_of("seed"), 64);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(40, chain.key(40)));
  auth.rebase_to_newest();
  EXPECT_EQ(auth.cached_keys(), 1u);
  EXPECT_FALSE(auth.key(39).has_value());
  EXPECT_FALSE(auth.accept(12, chain.key(12)));  // history gone
  EXPECT_TRUE(auth.accept(40, chain.key(40)));   // anchor still verifies
  EXPECT_TRUE(auth.accept(55, chain.key(55)));   // forward walk intact
}

TEST(ChainAuthenticator, PruneRaisesDerivabilityFloor) {
  const crypto::KeyChain chain(bytes_of("seed"), 64);
  ChainAuthenticator auth(crypto::PrfDomain::kChainStep, chain.key_size(),
                          chain.commitment());
  ASSERT_TRUE(auth.accept(48, chain.key(48)));
  auth.prune_below(33);
  EXPECT_FALSE(auth.key(32).has_value());
  EXPECT_FALSE(auth.accept(20, chain.key(20)));
  // In-range keys survive even where their checkpoint was pruned.
  for (const std::uint32_t i : {33u, 40u, 47u}) {
    ASSERT_TRUE(auth.key(i).has_value()) << "key " << i;
    EXPECT_EQ(*auth.key(i), chain.key(i));
  }
  EXPECT_TRUE(auth.accept(60, chain.key(60)));
}

// ----------------------------------------------------------- TESLA sender

TEST(TeslaSender, PacketCarriesMacAndDisclosure) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  const auto p = sender.make_packet(5, bytes_of("msg"));
  EXPECT_EQ(p.interval, 5u);
  EXPECT_EQ(p.mac.size(), 10u);
  EXPECT_EQ(p.disclosed_interval, 3u);  // d = 2
  EXPECT_EQ(p.disclosed_key, sender.chain().key(3));
}

TEST(TeslaSender, EarlyIntervalsHaveNoDisclosure) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  const auto p = sender.make_packet(2, bytes_of("msg"));
  EXPECT_EQ(p.disclosed_interval, 0u);
  EXPECT_TRUE(p.disclosed_key.empty());
}

TEST(TeslaSender, RejectsOutOfRangeInterval) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  EXPECT_THROW(sender.make_packet(0, bytes_of("m")), std::out_of_range);
  EXPECT_THROW(sender.make_packet(33, bytes_of("m")), std::out_of_range);
}

TEST(TeslaSender, RejectsZeroDisclosureDelay) {
  TeslaConfig config = test_config();
  config.disclosure_delay = 0;
  EXPECT_THROW(TeslaSender(config, bytes_of("seed")), std::invalid_argument);
}

// -------------------------------------------------------------- bootstrap

TEST(TeslaBootstrap, SignatureVerifies) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  const auto bootstrap = sender.bootstrap();
  EXPECT_TRUE(verify_bootstrap(bootstrap, bootstrap.signer_public_key));
}

TEST(TeslaBootstrap, TamperedCommitmentRejected) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  auto bootstrap = sender.bootstrap();
  bootstrap.commitment[0] ^= 1;
  EXPECT_FALSE(verify_bootstrap(bootstrap, bootstrap.signer_public_key));
}

TEST(TeslaBootstrap, WrongPublicKeyRejected) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  TeslaSender other(test_config(), bytes_of("other-seed"));
  const auto bootstrap = sender.bootstrap();
  EXPECT_FALSE(
      verify_bootstrap(bootstrap, other.bootstrap().signer_public_key));
}

TEST(TeslaBootstrap, GarbageSignatureRejected) {
  TeslaSender sender(test_config(), bytes_of("seed"));
  auto bootstrap = sender.bootstrap();
  bootstrap.signature = bytes_of("not a signature");
  EXPECT_FALSE(verify_bootstrap(bootstrap, bootstrap.signer_public_key));
}

// ------------------------------------------------------------- end-to-end

TEST(TeslaReceiver, AuthenticatesAfterDisclosure) {
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));

  // Packet in interval 1, key disclosed by the packet of interval 3.
  auto released =
      receiver.receive(sender.make_packet(1, bytes_of("m1")), mid(1));
  EXPECT_TRUE(released.empty());

  released = receiver.receive(sender.make_packet(3, bytes_of("m3")), mid(3));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].interval, 1u);
  EXPECT_EQ(released[0].message, bytes_of("m1"));
  EXPECT_EQ(receiver.stats().macs_verified, 1u);
}

TEST(TeslaReceiver, StreamOfPacketsAllAuthenticate) {
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));
  std::size_t authenticated = 0;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    const auto released =
        receiver.receive(sender.make_packet(i, bytes_of("data")), mid(i));
    authenticated += released.size();
  }
  // Keys for intervals 1..18 disclosed by packets 3..20.
  EXPECT_EQ(authenticated, 18u);
  EXPECT_EQ(receiver.stats().macs_rejected, 0u);
}

TEST(TeslaReceiver, ToleratesPacketLoss) {
  // Losing packets only delays key disclosure; the one-way chain recovers
  // skipped keys (TESLA's loss-tolerance property).
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));
  (void)receiver.receive(sender.make_packet(1, bytes_of("m1")), mid(1));
  // Packets of intervals 2..5 all lost; packet 6 discloses key 4, which
  // chains down to key 1.
  const auto released =
      receiver.receive(sender.make_packet(6, bytes_of("m6")), mid(6));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].interval, 1u);
}

TEST(TeslaReceiver, RejectsTamperedMessage) {
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));
  auto packet = sender.make_packet(1, bytes_of("authentic"));
  packet.message = bytes_of("tampered!");
  (void)receiver.receive(packet, mid(1));
  const auto released =
      receiver.receive(sender.make_packet(3, bytes_of("m3")), mid(3));
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(receiver.stats().macs_rejected, 1u);
}

TEST(TeslaReceiver, SafetyCheckDropsLatePackets) {
  // A packet for interval 1 arriving during interval 4 is unsafe: its key
  // was disclosed in interval 3 and anyone could have forged the MAC.
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));
  (void)receiver.receive(sender.make_packet(1, bytes_of("late")), mid(4));
  EXPECT_EQ(receiver.stats().packets_unsafe, 1u);
  EXPECT_EQ(receiver.stats().packets_buffered, 0u);
}

TEST(TeslaReceiver, ReplayedPacketCannotForge) {
  // An attacker who waits for the key disclosure and then forges a
  // packet for the disclosed interval is stopped by the safety check.
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));
  // The attacker heard packet 3 (which disclosed key 1) and now crafts a
  // forged interval-1 packet with a valid MAC under the public key 1.
  const Bytes key1 = sender.chain().key(1);
  const Bytes mac_key = crypto::prf_bytes(crypto::PrfDomain::kMacKey, key1);
  wire::TeslaPacket forged;
  forged.sender = config.sender_id;
  forged.interval = 1;
  forged.message = bytes_of("forged data");
  forged.mac = crypto::compute_mac(mac_key, forged.message, config.mac_size);
  const auto released = receiver.receive(forged, mid(3));
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(receiver.stats().packets_unsafe, 1u);
}

TEST(TeslaReceiver, ClockSkewTightensSafetyCheck) {
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  // 600ms max offset: a packet received 1.2s before disclosure is unsafe.
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 600 * sim::kMillisecond));
  // Interval 1 key disclosed at t=3s (start of interval 3, d=2). At local
  // 1.9s the sender's clock may be at 3.1s -> unsafe.
  (void)receiver.receive(sender.make_packet(1, bytes_of("m")),
                         1900 * sim::kMillisecond);
  EXPECT_EQ(receiver.stats().packets_unsafe, 1u);
}

TEST(TeslaReceiver, ForgedDisclosureDoesNotAdvanceAnchor) {
  TeslaConfig config = test_config();
  TeslaSender sender(config, bytes_of("seed"));
  TeslaReceiver receiver(config, sender.chain().commitment(),
                         sim::LooseClock(0, 0));
  auto packet = sender.make_packet(4, bytes_of("m"));
  packet.disclosed_key = Bytes(10, 0x13);  // junk key
  (void)receiver.receive(packet, mid(4));
  EXPECT_EQ(receiver.latest_key_index(), 0u);
  EXPECT_EQ(receiver.stats().keys_rejected, 1u);
}

// ------------------------------------------------------- ReservoirBuffer

TEST(ReservoirBuffer, FillsThenSamples) {
  ReservoirBuffer<int> buffer(3);
  Rng rng(1);
  EXPECT_TRUE(buffer.offer(1, rng));
  EXPECT_TRUE(buffer.offer(2, rng));
  EXPECT_TRUE(buffer.offer(3, rng));
  EXPECT_EQ(buffer.contents().size(), 3u);
  buffer.reset();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.offers(), 0u);
}

TEST(ReservoirBuffer, UniformInclusionProbability) {
  // Property: after n offers into m slots, each item survives with
  // probability m/n — the paper's DoS-mitigation core.
  const std::size_t m = 4;
  const std::size_t n = 20;
  const int trials = 20000;
  std::map<int, int> survival;
  Rng rng(99);
  for (int t = 0; t < trials; ++t) {
    ReservoirBuffer<int> buffer(m);
    for (std::size_t k = 0; k < n; ++k) {
      buffer.offer(static_cast<int>(k), rng);
    }
    for (int kept : buffer.contents()) ++survival[kept];
  }
  const double expected = static_cast<double>(m) / static_cast<double>(n);
  for (const auto& [item, count] : survival) {
    EXPECT_NEAR(static_cast<double>(count) / trials, expected, 0.02)
        << "item " << item;
  }
  EXPECT_EQ(survival.size(), n);  // every position survived sometimes
}

TEST(ReservoirBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(ReservoirBuffer<int>(0), std::invalid_argument);
  EXPECT_THROW(NaiveDropBuffer<int>(0), std::invalid_argument);
  EXPECT_THROW(AlwaysReplaceBuffer<int>(0), std::invalid_argument);
}

TEST(NaiveDropBuffer, KeepsFirstArrivals) {
  NaiveDropBuffer<int> buffer(2);
  Rng rng(2);
  EXPECT_TRUE(buffer.offer(1, rng));
  EXPECT_TRUE(buffer.offer(2, rng));
  EXPECT_FALSE(buffer.offer(3, rng));
  EXPECT_EQ(buffer.contents(), (std::vector<int>{1, 2}));
  EXPECT_EQ(buffer.offers(), 3u);
}

TEST(AlwaysReplaceBuffer, LateArrivalsAlwaysStored) {
  AlwaysReplaceBuffer<int> buffer(2);
  Rng rng(3);
  buffer.offer(1, rng);
  buffer.offer(2, rng);
  EXPECT_TRUE(buffer.offer(3, rng));
  // 3 must be present (it replaced something).
  const auto& c = buffer.contents();
  EXPECT_NE(std::find(c.begin(), c.end(), 3), c.end());
}

}  // namespace
}  // namespace dap::tesla
