// Unit tests for src/common: byte utilities, wire codec, deterministic
// RNG, statistics, CSV output, chart/table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/ascii_chart.h"
#include "common/bytes.h"
#include "common/codec.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace dap::common {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
}

TEST(Bytes, HexAcceptsUppercase) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, BytesOfCopiesText) {
  const Bytes b = bytes_of("hi");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'h');
  EXPECT_EQ(b[1], 'i');
}

TEST(Bytes, ConcatJoinsAllParts) {
  const Bytes a = {1, 2};
  const Bytes b = {};
  const Bytes c = {3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, EqualComparesContent) {
  EXPECT_TRUE(equal(Bytes{1, 2}, Bytes{1, 2}));
  EXPECT_FALSE(equal(Bytes{1, 2}, Bytes{1, 3}));
  EXPECT_FALSE(equal(Bytes{1, 2}, Bytes{1, 2, 3}));
}

TEST(Bytes, ConstantTimeEqualMatchesEqual) {
  const Bytes a = {9, 9, 9};
  EXPECT_TRUE(constant_time_equal(a, Bytes{9, 9, 9}));
  EXPECT_FALSE(constant_time_equal(a, Bytes{9, 9, 8}));
  EXPECT_FALSE(constant_time_equal(a, Bytes{9, 9}));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Bytes, TakePrefix) {
  const Bytes a = {1, 2, 3, 4};
  EXPECT_EQ(take_prefix(a, 2), (Bytes{1, 2}));
  EXPECT_EQ(take_prefix(a, 0), Bytes{});
  EXPECT_EQ(take_prefix(a, 4), a);
  EXPECT_THROW(take_prefix(a, 5), std::invalid_argument);
}

// ---------------------------------------------------------------- codec

TEST(Codec, IntegerRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Codec, BlobRoundTrip) {
  Writer w;
  w.blob(Bytes{5, 6, 7});
  w.blob(Bytes{});
  Reader r(w.data());
  EXPECT_EQ(r.blob(), (Bytes{5, 6, 7}));
  EXPECT_EQ(r.blob(), Bytes{});
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, RawRoundTrip) {
  Writer w;
  w.raw(Bytes{1, 2, 3});
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{1, 2, 3}));
}

TEST(Codec, TruncatedReadsReturnNullopt) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  EXPECT_EQ(r.u32(), std::nullopt);  // only 2 bytes available
  EXPECT_EQ(r.u16(), 7);             // the failed read consumed nothing
  EXPECT_EQ(r.u8(), std::nullopt);
}

TEST(Codec, TruncatedBlobReturnsNullopt) {
  Writer w;
  w.u16(10);  // claims 10 payload bytes
  w.u8(1);    // provides only 1
  Reader r(w.data());
  EXPECT_EQ(r.blob(), std::nullopt);
}

TEST(Codec, BlobRejectsOversizedPayload) {
  Writer w;
  const Bytes big(70000, 0xaa);
  EXPECT_THROW(w.blob(big), std::invalid_argument);
}

TEST(Codec, RemainingTracksPosition) {
  Writer w;
  w.u32(1);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u8();
  EXPECT_EQ(r.remaining(), 3u);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal_count = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal_count;
  }
  EXPECT_LT(equal_count, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformWithinBoundsInclusive) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, UniformSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(42, 42), 42u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(9, 5), std::invalid_argument);
}

TEST(Rng, UniformUnbiasedOverSmallRange) {
  Rng rng(17);
  std::array<int, 3> counts{};
  const int n = 90000;
  for (int i = 0; i < n; ++i) {
    counts[rng.uniform(0, 2)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.01);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(23), b(23);
  const Bytes ba = a.bytes(33);
  EXPECT_EQ(ba.size(), 33u);
  EXPECT_EQ(ba, b.bytes(33));
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal_count = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal_count;
  }
  EXPECT_LT(equal_count, 2);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RateEstimator, RateAndInterval) {
  RateEstimator est;
  for (int i = 0; i < 70; ++i) est.add(true);
  for (int i = 0; i < 30; ++i) est.add(false);
  EXPECT_DOUBLE_EQ(est.rate(), 0.7);
  const auto [lo, hi] = est.wilson95();
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, 0.7);
  EXPECT_GT(lo, 0.5);
  EXPECT_LT(hi, 0.85);
}

TEST(RateEstimator, EmptyHasFullInterval) {
  RateEstimator est;
  EXPECT_DOUBLE_EQ(est.rate(), 0.0);
  const auto [lo, hi] = est.wilson95();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(RateEstimator, ExtremesStayInUnitInterval) {
  RateEstimator all, none;
  for (int i = 0; i < 50; ++i) {
    all.add(true);
    none.add(false);
  }
  EXPECT_LE(all.wilson95().second, 1.0);
  EXPECT_GE(none.wilson95().first, 0.0);
  EXPECT_LT(all.wilson95().first, 1.0);  // uncertainty remains
  EXPECT_GT(none.wilson95().second, 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 1.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[5], 0.5, 1e-12);
}

TEST(Linspace, DegenerateCounts) {
  EXPECT_TRUE(linspace(0, 1, 0).empty());
  const auto one = linspace(3.0, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 3.0);
}

// ------------------------------------------------------------------ csv

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "dap_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.5, 2.0});
    csv.row_text({"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = testing::TempDir() + "dap_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, FormatNumberHandlesSpecials) {
  EXPECT_EQ(format_number(std::nan("")), "nan");
  EXPECT_EQ(format_number(INFINITY), "inf");
  EXPECT_EQ(format_number(-INFINITY), "-inf");
  EXPECT_EQ(format_number(0.25), "0.25");
}

// ---------------------------------------------------------------- chart

TEST(AsciiChart, RendersSeriesAndLegend) {
  Series s1{"alpha", {0, 1, 2}, {0, 1, 4}};
  Series s2{"beta", {0, 1, 2}, {4, 1, 0}};
  const std::string out = render_chart({s1, s2}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(AsciiChart, RejectsEmptyAndMismatched) {
  EXPECT_THROW(render_chart({}, {}), std::invalid_argument);
  Series bad{"bad", {0, 1}, {0}};
  EXPECT_THROW(render_chart({bad}, {}), std::invalid_argument);
  Series empty{"empty", {}, {}};
  EXPECT_THROW(render_chart({empty}, {}), std::invalid_argument);
}

TEST(AsciiChart, FlatSeriesDoesNotDivideByZero) {
  Series flat{"flat", {0, 1, 2}, {5, 5, 5}};
  EXPECT_NO_THROW(render_chart({flat}, {}));
}

// ---------------------------------------------------------------- table

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"v"});
  t.add_row_numeric({0.125});
  EXPECT_NE(t.render().find("0.125"), std::string::npos);
}

TEST(TextTable, RejectsBadArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

}  // namespace
}  // namespace dap::common
