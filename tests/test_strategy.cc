// Tests for src/strategy: the adaptive replicator adversary, Sybil
// cohorts, cooperative verification, and the MABS batch-signature
// baseline — the pieces that close the evolutionary-game loop online.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fleet/scenario.h"
#include "strategy/mabs.h"
#include "strategy/runner.h"

namespace dap {
namespace {

// Mirrors bench/game_loop's ESS sweep base: small reservoir (m = 2) and
// a heavy flood so the oracle share sits in the interior.
fleet::ScenarioSpec adaptive_base() {
  fleet::ScenarioSpec spec;
  spec.name = "strategy-test";
  spec.seed = 42;
  spec.buffers = 2;
  spec.members_per_cohort = 12;
  spec.intervals = 32;
  spec.interval_us = 200 * sim::kMillisecond;
  spec.forged_fraction = 0.75;
  spec.strategy.adaptive.enabled = true;
  return spec;
}

fleet::ScenarioSpec tree_spec() {
  auto spec = adaptive_base();
  spec.kind = fleet::TopologyKind::kTree;
  spec.depth = 2;
  spec.fanout = 1;
  return spec;
}

fleet::ScenarioSpec gossip_spec() {
  auto spec = adaptive_base();
  spec.kind = fleet::TopologyKind::kGossip;
  spec.relays = 4;
  spec.fanin = 2;
  return spec;
}

fleet::ScenarioSpec flood_spec() {
  auto spec = adaptive_base();
  spec.kind = fleet::TopologyKind::kFlood;
  spec.receivers = 3;
  return spec;
}

fleet::ScenarioSpec sybil_spec() {
  fleet::ScenarioSpec spec;
  spec.name = "strategy-test";
  spec.seed = 7;
  spec.kind = fleet::TopologyKind::kGossip;
  spec.relays = 3;
  spec.fanin = 2;
  spec.members_per_cohort = 6;
  spec.intervals = 16;
  spec.interval_us = 200 * sim::kMillisecond;
  spec.strategy.sybil.enabled = true;
  spec.strategy.sybil.cohort = 4;
  return spec;
}

fleet::ScenarioSpec coop_spec(bool enabled, bool poisoned) {
  fleet::ScenarioSpec spec;
  spec.name = "strategy-test";
  spec.seed = 11;
  spec.kind = fleet::TopologyKind::kTree;
  spec.depth = 2;
  spec.fanout = 2;
  spec.members_per_cohort = 8;
  spec.intervals = 16;
  spec.interval_us = 200 * sim::kMillisecond;
  spec.forged_fraction = 0.5;
  spec.strategy.coop.enabled = enabled;
  spec.strategy.coop.audit_fraction = 0.5;
  spec.strategy.coop.poisoned = poisoned;
  return spec;
}

// ---------------------------------------------------- adaptive adversary

// Acceptance criterion of the PR: the online learner's empirical attack
// share lands within tolerance of the offline ESS oracle on at least
// three distinct scenario kinds. Tolerance matches bench/game_loop's
// gate (the sentinel feedback bias is documented there).
TEST(Strategy, AdaptiveAttackerTracksOracleAcrossTopologies) {
  const fleet::ScenarioSpec specs[] = {tree_spec(), gossip_spec(),
                                       flood_spec()};
  for (const auto& spec : specs) {
    const auto outcome = strategy::run_scenario(spec);
    EXPECT_GT(outcome.attacks_launched, 0u) << spec.id();
    EXPECT_EQ(outcome.report.forged_accepted, 0u) << spec.id();
    EXPECT_GT(outcome.oracle_share, 0.0) << spec.id();
    EXPECT_DOUBLE_EQ(outcome.oracle_share,
                     strategy::oracle_attack_share(spec))
        << spec.id();
    EXPECT_LE(outcome.ess_gap, 0.2)
        << spec.id() << " measured=" << outcome.attacker_share
        << " oracle=" << outcome.oracle_share;
  }
}

TEST(Strategy, OracleAttackShareRequiresAdaptiveSpec) {
  fleet::ScenarioSpec plain;
  EXPECT_THROW((void)strategy::oracle_attack_share(plain),
               std::invalid_argument);
}

TEST(Strategy, AdaptiveRunIsDeterministicInTheSeed) {
  const auto spec = tree_spec();
  const auto a = strategy::run_scenario(spec);
  const auto b = strategy::run_scenario(spec);
  EXPECT_DOUBLE_EQ(a.attacker_share, b.attacker_share);
  EXPECT_EQ(a.attacks_launched, b.attacks_launched);
  EXPECT_EQ(a.report.member_auths, b.report.member_auths);
}

// ------------------------------------------------------------ sybil

// The coordinated cohort floods announces and staggered reveals built on
// a forged chain; the ingress guards and chain-anchor checks must hold
// the line — zero forged authentications while the cohort is active.
TEST(Strategy, SybilCohortNeverAuthenticates) {
  const auto outcome = strategy::run_scenario(sybil_spec());
  EXPECT_GT(outcome.sybil_announces, 0u);
  EXPECT_GT(outcome.sybil_reveals, 0u);
  EXPECT_EQ(outcome.report.forged_accepted, 0u);
  // Authentic traffic still flows under the Sybil flood.
  EXPECT_GT(outcome.report.member_auths, 0u);
}

// ----------------------------------------------------- cooperative

TEST(Strategy, CoopSharingSkipsWalksWithoutChangingOutcomes) {
  const auto baseline = strategy::run_scenario(coop_spec(false, false));
  const auto coop = strategy::run_scenario(coop_spec(true, false));
  // Honest verdict sharing is an optimization, not a behavior change.
  EXPECT_EQ(coop.report.member_auths, baseline.report.member_auths);
  EXPECT_EQ(coop.report.sentinel_auths, baseline.report.sentinel_auths);
  EXPECT_EQ(coop.report.forged_accepted, 0u);
  EXPECT_GT(coop.coop_verdicts_shared, 0u);
  EXPECT_GT(coop.coop_walks_skipped, 0u);
  EXPECT_EQ(baseline.coop_verdicts_shared, 0u);
}

TEST(Strategy, PoisonedVerdictsAreAuditedAndNeverAdmitForgeries) {
  const auto outcome = strategy::run_scenario(coop_spec(true, true));
  // The audits catch the liar; invalid-verdicts-only trust means the
  // worst case is lost work, never a forged acceptance.
  EXPECT_GT(outcome.coop_poisoned_rejected, 0u);
  EXPECT_GT(outcome.coop_hint_audits, 0u);
  EXPECT_EQ(outcome.report.forged_accepted, 0u);
}

// ------------------------------------------------------------- MABS

TEST(Strategy, MabsAuthenticatesImmediatelyWithZeroStoredState) {
  strategy::MabsConfig config;
  config.seed = 42;
  config.intervals = 12;
  config.packets_per_interval = 8;
  config.forged_per_interval = 16;
  config.signer_height = 6;
  const auto report = strategy::run_mabs(config);
  EXPECT_TRUE(report.zero_forged());
  EXPECT_EQ(report.forged_sent, 12u * 16u);
  EXPECT_EQ(report.authenticated, report.packets_sent);
  EXPECT_DOUBLE_EQ(report.auth_rate, 1.0);
  // The headline structural property: no buffering window at all.
  EXPECT_EQ(report.stored_records, 0u);
  // Root signatures verify once per batch, not once per packet.
  EXPECT_EQ(report.signature_verifications, 12u);
  EXPECT_GE(report.path_verifications, report.packets_sent);
  EXPECT_GT(report.bits_sent, 0u);
}

TEST(Strategy, MabsRejectsInvalidConfigs) {
  strategy::MabsConfig zero_batch;
  zero_batch.packets_per_interval = 0;
  EXPECT_THROW((void)strategy::run_mabs(zero_batch), std::invalid_argument);

  strategy::MabsConfig exhausted;
  exhausted.intervals = 64;
  exhausted.signer_height = 3;  // 2^3 = 8 roots < 64 intervals
  EXPECT_THROW((void)strategy::run_mabs(exhausted), std::invalid_argument);
}

// ---------------------------------------------------- scenario plumbing

TEST(Strategy, StrategyBlockRoundTripsThroughJson) {
  auto spec = tree_spec();
  spec.strategy.adaptive.learning_rate = 0.4;
  spec.strategy.sybil.enabled = true;
  spec.strategy.sybil.cohort = 5;
  spec.strategy.coop.enabled = true;
  spec.strategy.coop.audit_fraction = 0.75;
  spec.strategy.coop.poisoned = true;
  const auto parsed = fleet::ScenarioSpec::parse(spec.to_json());
  EXPECT_EQ(parsed.to_json(), spec.to_json());
  EXPECT_TRUE(parsed.strategy.adaptive.enabled);
  EXPECT_DOUBLE_EQ(parsed.strategy.adaptive.learning_rate, 0.4);
  EXPECT_EQ(parsed.strategy.sybil.cohort, 5u);
  EXPECT_TRUE(parsed.strategy.coop.poisoned);
}

TEST(Strategy, DisengagedStrategyBlockIsOmittedFromJson) {
  fleet::ScenarioSpec plain;
  EXPECT_EQ(plain.to_json().find("strategy"), std::string::npos);
}

// Satellite of this PR: strict-parse errors must name the full JSON key
// path so a typo deep in the strategy block is diagnosable.
TEST(Strategy, ParseErrorsNameTheFullStrategyKeyPath) {
  auto spec = tree_spec();
  auto json = spec.to_json();
  const std::string needle = "\"learning_rate\": 0.25";
  const auto at = json.find(needle);
  ASSERT_NE(at, std::string::npos) << json;
  json.replace(at, needle.size(), "\"learning_rate\": \"fast\"");
  try {
    (void)fleet::ScenarioSpec::parse(json);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("strategy.adaptive.learning_rate"),
              std::string::npos)
        << e.what();
  }
}

TEST(Strategy, UnknownStrategyKeysAreRejectedWithTheirPath) {
  auto spec = coop_spec(true, false);
  spec.forged_fraction = 0.0;
  auto json = spec.to_json();
  const std::string needle = "\"audit_fraction\"";
  const auto at = json.find(needle);
  ASSERT_NE(at, std::string::npos) << json;
  json.replace(at, needle.size(), "\"audit_fractino\"");
  try {
    (void)fleet::ScenarioSpec::parse(json);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("strategy.coop"), std::string::npos) << what;
    EXPECT_NE(what.find("audit_fractino"), std::string::npos) << what;
  }
}

TEST(Strategy, ValidateRejectsAdaptiveWithoutFlood) {
  auto spec = tree_spec();
  spec.forged_fraction = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace dap
