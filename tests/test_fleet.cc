// Tests for the fleet subsystem: relay topologies, scenario JSON,
// receiver cohorts (statistical members + sentinel), and the end-to-end
// FleetSim — including the headline guarantees that a fleet run is
// bitwise identical at any thread count and that forged messages never
// authenticate. The multi-hop fault-composition cases (duplicates
// multiply across hops, blackouts compose with clean hops) live here
// too. The TSan CI job runs this binary via `ctest -L test_fleet`.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dap/dap.h"
#include "fleet/cohort.h"
#include "fleet/fleet.h"
#include "fleet/scenario.h"
#include "fleet/topology.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"
#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/faults.h"
#include "sim/time.h"
#include "tesla/verdict.h"

namespace dap {
namespace {

// Pins the process default thread count for one test body, restoring
// the unpinned default afterwards.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) { common::set_default_threads(n); }
  ~ThreadGuard() { common::set_default_threads(0); }
};

// ------------------------------------------------------------- topologies

TEST(Topology, TreeShape) {
  const fleet::Topology topo = fleet::tree_topology(3, 2);
  EXPECT_EQ(topo.node_count, 15u);  // 1 + 2 + 4 + 8
  EXPECT_EQ(topo.depth(), 3u);
  EXPECT_EQ(topo.leaves().size(), 8u);
  EXPECT_NO_THROW(topo.validate());
  for (const auto& [from, to] : topo.edges) {
    EXPECT_LT(from, to);
  }
  const auto depths = topo.depths();
  EXPECT_EQ(depths[0], 0u);
  EXPECT_EQ(depths[1], 1u);
  EXPECT_EQ(depths[14], 3u);
}

TEST(Topology, ChainIsDegenerateTree) {
  const fleet::Topology topo = fleet::tree_topology(2, 1);
  EXPECT_EQ(topo.node_count, 3u);
  ASSERT_EQ(topo.edges.size(), 2u);
  EXPECT_EQ(topo.edges[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(topo.edges[1], (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
}

TEST(Topology, GridShape) {
  const fleet::Topology topo = fleet::grid_topology(3, 4);
  EXPECT_EQ(topo.node_count, 12u);
  EXPECT_EQ(topo.depth(), 5u);  // Manhattan distance to the far corner
  EXPECT_NO_THROW(topo.validate());
  // Exactly one pure sink: the bottom-right corner.
  const auto leaves = topo.leaves();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], 11u);
}

TEST(Topology, GossipIsSeedDeterministic) {
  const fleet::Topology a = fleet::gossip_topology(32, 2, 7);
  const fleet::Topology b = fleet::gossip_topology(32, 2, 7);
  const fleet::Topology c = fleet::gossip_topology(32, 2, 8);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
  EXPECT_NO_THROW(a.validate());
  // Node i has min(fanin, i) parents.
  std::vector<std::size_t> parents(a.node_count, 0);
  for (const auto& [from, to] : a.edges) {
    (void)from;
    ++parents[to];
  }
  EXPECT_EQ(parents[1], 1u);
  for (std::uint32_t v = 2; v < a.node_count; ++v) {
    EXPECT_EQ(parents[v], 2u) << "node " << v;
  }
}

TEST(Topology, FloodShape) {
  const fleet::Topology topo = fleet::flood_topology(9);
  EXPECT_EQ(topo.node_count, 10u);
  EXPECT_EQ(topo.depth(), 1u);
  EXPECT_EQ(topo.leaves().size(), 9u);
  EXPECT_NO_THROW(topo.validate());
}

TEST(Topology, ValidateRejectsMalformedGraphs) {
  fleet::Topology backward;
  backward.node_count = 3;
  backward.edges = {{0, 1}, {2, 1}};  // violates from < to
  EXPECT_THROW(backward.validate(), std::invalid_argument);

  fleet::Topology out_of_range;
  out_of_range.node_count = 2;
  out_of_range.edges = {{0, 1}, {1, 5}};
  EXPECT_THROW(out_of_range.validate(), std::invalid_argument);

  fleet::Topology duplicate;
  duplicate.node_count = 2;
  duplicate.edges = {{0, 1}, {0, 1}};
  EXPECT_THROW(duplicate.validate(), std::invalid_argument);

  fleet::Topology unreachable;
  unreachable.node_count = 3;
  unreachable.edges = {{0, 1}};  // node 2 never receives anything
  EXPECT_THROW(unreachable.validate(), std::invalid_argument);
}

TEST(Topology, KindNamesRoundTrip) {
  for (const fleet::TopologyKind kind :
       {fleet::TopologyKind::kTree, fleet::TopologyKind::kGrid,
        fleet::TopologyKind::kGossip, fleet::TopologyKind::kFlood}) {
    EXPECT_EQ(fleet::topology_kind_from_name(fleet::topology_kind_name(kind)),
              kind);
  }
  EXPECT_THROW((void)fleet::topology_kind_from_name("mesh"),
               std::invalid_argument);
}

// ------------------------------------------------------------- scenarios

fleet::ScenarioSpec sample_spec() {
  fleet::ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.seed = 99;
  spec.kind = fleet::TopologyKind::kTree;
  spec.depth = 2;
  spec.fanout = 3;
  spec.members_per_cohort = 25;
  spec.buffers = 6;
  spec.intervals = 5;
  spec.interval_us = 100 * sim::kMillisecond;
  spec.forged_fraction = 0.5;
  spec.attackers = {0, 1};
  spec.relay_dedup = false;
  spec.hop.loss = 0.125;
  spec.hop.duplicate_probability = 0.25;
  spec.hop.latency_us = 2 * sim::kMillisecond;
  spec.hop.jitter_us = 500;
  return spec;
}

TEST(Scenario, JsonRoundTrips) {
  const fleet::ScenarioSpec spec = sample_spec();
  const fleet::ScenarioSpec parsed = fleet::ScenarioSpec::parse(spec.to_json());
  // Serialization is canonical, so round-trip equality of the JSON form
  // implies field equality.
  EXPECT_EQ(parsed.to_json(), spec.to_json());
  EXPECT_EQ(parsed.name, "roundtrip");
  EXPECT_EQ(parsed.kind, fleet::TopologyKind::kTree);
  EXPECT_EQ(parsed.depth, 2u);
  EXPECT_EQ(parsed.fanout, 3u);
  EXPECT_EQ(parsed.members_per_cohort, 25u);
  EXPECT_EQ(parsed.attackers, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(parsed.relay_dedup);
  EXPECT_DOUBLE_EQ(parsed.hop.duplicate_probability, 0.25);
}

TEST(Scenario, ParseRejectsBadInput) {
  // Malformed documents.
  EXPECT_THROW(fleet::ScenarioSpec::parse("{"), std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse("not json"), std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}} trailing"),
               std::invalid_argument);
  // Unknown keys never silently run the default scenario.
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, \"typo\": 1}"),
               std::invalid_argument);
  // Shape keys from the wrong kind are unknown too.
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\", \"depth\": 2}}"),
               std::invalid_argument);
  // Missing topology, bad kinds, bad values.
  EXPECT_THROW(fleet::ScenarioSpec::parse("{\"seed\": 1}"),
               std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"mesh\"}}"),
               std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, "
                   "\"members_per_cohort\": 0}"),
               std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, "
                   "\"forged_fraction\": 1.5}"),
               std::invalid_argument);
}

TEST(Scenario, ValidateRejectsSinkAttacker) {
  fleet::ScenarioSpec spec;
  spec.kind = fleet::TopologyKind::kFlood;
  spec.receivers = 4;
  spec.attackers = {3};  // a leaf: no egress medium to inject into
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.attackers = {0};
  EXPECT_NO_THROW(spec.validate());
}

TEST(Scenario, IdAndTotals) {
  const fleet::ScenarioSpec spec = sample_spec();
  EXPECT_EQ(spec.id(), "tree_d2f3_m25_p0.5");
  // Tree with depth 2, fanout 3: 13 nodes, 12 cohorts by default.
  EXPECT_EQ(spec.total_members(), 12u * 25u);
  fleet::ScenarioSpec leaves_only = spec;
  leaves_only.cohorts_at_leaves_only = true;
  EXPECT_EQ(leaves_only.total_members(), 9u * 25u);
}

TEST(Scenario, GuardAndFaultsRoundTripWithChaosId) {
  fleet::ScenarioSpec spec = sample_spec();
  spec.guard.capacity = 256;
  spec.guard.budget_mbps = 2.5;
  spec.guard.burst_bits = 4096.0;
  spec.faults.relay_crashes.push_back({1, 2, 1, 50 * sim::kMillisecond});
  spec.faults.partitions.push_back({0, 1, 2, 3});
  spec.faults.degraded.push_back({2, 0.5});
  const fleet::ScenarioSpec parsed =
      fleet::ScenarioSpec::parse(spec.to_json());
  EXPECT_EQ(parsed.to_json(), spec.to_json());
  EXPECT_EQ(parsed.guard.capacity, 256u);
  EXPECT_DOUBLE_EQ(parsed.guard.budget_mbps, 2.5);
  ASSERT_EQ(parsed.faults.relay_crashes.size(), 1u);
  EXPECT_EQ(parsed.faults.relay_crashes[0].node, 1u);
  EXPECT_EQ(parsed.faults.relay_crashes[0].reboot_skew_us,
            50 * sim::kMillisecond);
  ASSERT_EQ(parsed.faults.partitions.size(), 1u);
  EXPECT_EQ(parsed.faults.partitions[0].until_interval, 3u);
  ASSERT_EQ(parsed.faults.degraded.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.faults.degraded[0].budget_mbps, 0.5);
  // Fault plans mark the scenario id so baselines never mix chaos and
  // clean runs under one key.
  EXPECT_EQ(spec.id(), "tree_d2f3_m25_p0.5_chaos");
  // A faultless spec emits no faults block at all (canonical form).
  EXPECT_EQ(sample_spec().to_json().find("\"faults\""), std::string::npos);
  // Crashes rejoin at 3, partition heals at 3 -> horizon is interval 3.
  EXPECT_EQ(spec.faults.last_clear_interval(), 3u);
}

TEST(Scenario, ValidateRejectsBadGuardAndFaults) {
  const auto with = [](auto mutate) {
    fleet::ScenarioSpec spec;
    spec.kind = fleet::TopologyKind::kTree;
    spec.depth = 2;
    spec.fanout = 2;
    mutate(spec);
    return spec;
  };
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 s.guard.capacity = 48;  // not a power of two
               }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 s.guard.budget_mbps = -1.0;
               }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 s.faults.relay_crashes.push_back({0, 1, 1, 0});  // root
               }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 s.faults.relay_crashes.push_back({1, 0, 1, 0});  // at 0
               }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 // (1, 2) is not an edge of the depth-2 fanout-2 tree.
                 s.faults.partitions.push_back({1, 2, 1, 2});
               }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 // until must exceed from.
                 s.faults.partitions.push_back({0, 1, 2, 2});
               }).validate(),
               std::invalid_argument);
  EXPECT_THROW(with([](fleet::ScenarioSpec& s) {
                 s.faults.degraded.push_back({1, 0.0});
               }).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(with([](fleet::ScenarioSpec& s) {
                    s.faults.relay_crashes.push_back({1, 1, 1, 0});
                    s.faults.partitions.push_back({0, 1, 1, 2});
                    s.faults.degraded.push_back({1, 0.5});
                  }).validate());
}

TEST(Scenario, ParseEnforcesResourceCeilings) {
  // An untrusted spec must not be able to command an absurd allocation:
  // validate() rejects it from the estimated node count alone, before
  // any topology is built.
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"tree\", \"depth\": 60, "
                   "\"fanout\": 2}}"),
               std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\", "
                   "\"receivers\": 100000000}}"),
               std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, "
                   "\"members_per_cohort\": 999999999999}"),
               std::invalid_argument);
  // Integers beyond 2^53 are not exactly representable in the JSON
  // number model: rejected instead of silently rounded (or worse, UB on
  // the double -> uint64 cast).
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, "
                   "\"seed\": 99999999999999999999}"),
               std::invalid_argument);
  // Unknown keys inside the nested blocks are rejected too.
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, "
                   "\"guard\": {\"capacity\": 64, \"typo\": 1}}"),
               std::invalid_argument);
  EXPECT_THROW(fleet::ScenarioSpec::parse(
                   "{\"topology\": {\"kind\": \"flood\"}, "
                   "\"faults\": {\"relay_crashes\": [{\"node\": 1, "
                   "\"typo\": 2}]}}"),
               std::invalid_argument);
}

// --------------------------------------------------------------- cohorts

protocol::DapConfig cohort_dap_config() {
  protocol::DapConfig config;
  config.sender_id = 1;
  config.chain_length = 16;
  config.disclosure_delay = 1;
  config.buffers = 4;
  config.schedule = sim::IntervalSchedule(0, 200 * sim::kMillisecond);
  return config;
}

fleet::CohortConfig cohort_config(std::size_t members, std::uint64_t seed) {
  fleet::CohortConfig config;
  config.members = members;
  config.dap = cohort_dap_config();
  config.seed = seed;
  config.clock = sim::LooseClock(0, sim::kMillisecond);
  return config;
}

sim::SimTime announce_time(const protocol::DapConfig& config,
                           std::uint32_t i) {
  return config.schedule.interval_start(i) + config.schedule.duration() / 2;
}

sim::SimTime drain_time(const protocol::DapConfig& config, std::uint32_t i) {
  return config.schedule.interval_start(i + 1) +
         config.schedule.duration() * 3 / 4;
}

TEST(Cohort, EveryMemberAuthenticatesOnCleanDelivery) {
  const fleet::CohortConfig config = cohort_config(33, 5);
  protocol::DapSender sender(config.dap, common::Rng(1).bytes(16));
  fleet::ReceiverCohort cohort(config, sender.chain().commitment());

  for (std::uint32_t i = 1; i <= 3; ++i) {
    cohort.receive_announce(sender.announce(i, common::bytes_of("m")),
                            announce_time(config.dap, i));
    cohort.enqueue_reveal(sender.reveal(i));
    const auto outcomes = cohort.drain(drain_time(config.dap, i));
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].interval, i);
    EXPECT_EQ(outcomes[0].members_authenticated, 32u);
    EXPECT_TRUE(outcomes[0].sentinel_authenticated);
  }
  EXPECT_EQ(cohort.stats().member_auths, 3u * 32u);
  EXPECT_EQ(cohort.stats().sentinel_auths, 3u);
  EXPECT_EQ(cohort.stats().member_auth_misses, 0u);
  EXPECT_EQ(cohort.stats().weak_auth_failures, 0u);
}

TEST(Cohort, StaleAnnounceFailsSafetyCheck) {
  const fleet::CohortConfig config = cohort_config(8, 5);
  protocol::DapSender sender(config.dap, common::Rng(1).bytes(16));
  fleet::ReceiverCohort cohort(config, sender.chain().commitment());

  // Interval 1's announce arriving during interval 4: i + d < x, the key
  // is long public, so nothing may be stored (replay defense).
  cohort.receive_announce(sender.announce(1, common::bytes_of("m")),
                          announce_time(config.dap, 4));
  EXPECT_EQ(cohort.stats().announces_unsafe, 1u);
  EXPECT_EQ(cohort.stored_for_interval(1), 0u);
}

TEST(Cohort, MacKeyDerivedOncePerIntervalPerDrain) {
  const fleet::CohortConfig config = cohort_config(16, 5);
  protocol::DapSender sender(config.dap, common::Rng(1).bytes(16));
  fleet::ReceiverCohort cohort(config, sender.chain().commitment());

  // Three messages announced in interval 1 and revealed together: the
  // batched drain derives F'(K_1) once, for the core and the sentinel.
  const sim::SimTime t = announce_time(config.dap, 1);
  for (const char* msg : {"a", "b", "c"}) {
    cohort.receive_announce(sender.announce(1, common::bytes_of(msg)), t);
  }
  for (std::size_t k = 0; k < 3; ++k) {
    cohort.enqueue_reveal(sender.reveal(1, k));
  }
  const auto outcomes = cohort.drain(drain_time(config.dap, 1));
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.members_authenticated, 15u);
    EXPECT_TRUE(outcome.sentinel_authenticated);
  }
  EXPECT_EQ(cohort.stats().mac_key_derivations, 1u);
  EXPECT_EQ(cohort.sentinel().stats().mac_key_derivations, 1u);
}

TEST(Cohort, FloodFillsReservoirsButForgesNeverAuthenticate) {
  const fleet::CohortConfig config = cohort_config(64, 5);
  protocol::DapSender sender(config.dap, common::Rng(1).bytes(16));
  fleet::ReceiverCohort cohort(config, sender.chain().commitment());
  sim::FloodingForger forger(config.dap.sender_id, config.dap.mac_size,
                             common::Rng(77));
  sim::KeyGuessForger key_forger(config.dap.sender_id, config.dap.key_size,
                                 common::Rng(78));

  const sim::SimTime t = announce_time(config.dap, 1);
  cohort.receive_announce(sender.announce(1, common::bytes_of("m")), t);
  for (int n = 0; n < 36; ++n) {  // forged fraction ~0.97 per cohort
    cohort.receive_announce(forger.forge(1), t);
  }
  cohort.enqueue_reveal(sender.reveal(1));
  cohort.enqueue_reveal(key_forger.forge_reveal(1, common::bytes_of("F")));
  const auto outcomes = cohort.drain(drain_time(config.dap, 1));
  ASSERT_EQ(outcomes.size(), 2u);

  // Authentic reveal: some members lost the record to the flood, none
  // gained a forged acceptance. 37 offers into 4 slots keeps the
  // authentic MAC with probability ~4/37 per member.
  EXPECT_GT(outcomes[0].members_authenticated, 0u);
  EXPECT_LT(outcomes[0].members_authenticated, 63u);
  EXPECT_EQ(outcomes[0].members_authenticated +
                cohort.stats().member_auth_misses,
            63u);
  // Forged reveal: the guessed key fails weak authentication outright.
  EXPECT_EQ(outcomes[1].members_authenticated, 0u);
  EXPECT_FALSE(outcomes[1].sentinel_authenticated);
  EXPECT_EQ(cohort.stats().weak_auth_failures, 1u);
  // Reservoirs are full of garbage — exactly the memory-DoS picture.
  EXPECT_GE(cohort.stats().stored_records_peak, 63u * 3u);
}

TEST(Cohort, DrainIsBitwiseIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    const fleet::CohortConfig config = cohort_config(128, 9);
    protocol::DapSender sender(config.dap, common::Rng(1).bytes(16));
    fleet::ReceiverCohort cohort(config, sender.chain().commitment());
    sim::FloodingForger forger(config.dap.sender_id, config.dap.mac_size,
                               common::Rng(77));
    std::vector<std::uint64_t> trace;
    for (std::uint32_t i = 1; i <= 4; ++i) {
      const sim::SimTime t = announce_time(config.dap, i);
      cohort.receive_announce(sender.announce(i, common::bytes_of("m")), t);
      for (int n = 0; n < 11; ++n) cohort.receive_announce(forger.forge(i), t);
      cohort.enqueue_reveal(sender.reveal(i));
      for (const auto& outcome : cohort.drain(drain_time(config.dap, i))) {
        trace.push_back(outcome.members_authenticated);
        trace.push_back(outcome.sentinel_authenticated ? 1 : 0);
      }
      trace.push_back(cohort.stats().stored_records);
    }
    trace.push_back(cohort.stats().member_auths);
    trace.push_back(cohort.stats().member_auth_misses);
    trace.push_back(cohort.stats().stored_records_peak);
    return trace;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(7), serial);
}

TEST(Cohort, DrainOutcomesCarryRevealVerdicts) {
  const fleet::CohortConfig config = cohort_config(8, 5);
  protocol::DapSender sender(config.dap, common::Rng(1).bytes(16));
  fleet::ReceiverCohort cohort(config, sender.chain().commitment());
  sim::KeyGuessForger key_forger(config.dap.sender_id, config.dap.key_size,
                                 common::Rng(78));

  const sim::SimTime t = announce_time(config.dap, 1);
  cohort.receive_announce(sender.announce(1, common::bytes_of("m")), t);
  cohort.enqueue_reveal(sender.reveal(1));
  cohort.enqueue_reveal(key_forger.forge_reveal(1, common::bytes_of("F")));
  const auto outcomes = cohort.drain(drain_time(config.dap, 1));
  ASSERT_EQ(outcomes.size(), 2u);
  // The authentic reveal authenticates; the guessed key is rejected at
  // weak authentication — and the verdict names the reject reason so
  // verify spans can carry it.
  EXPECT_EQ(outcomes[0].verdict, tesla::RevealVerdict::kAccepted);
  EXPECT_EQ(outcomes[1].verdict, tesla::RevealVerdict::kWeakAuthFail);
  EXPECT_FALSE(outcomes[1].sentinel_authenticated);
}

TEST(Cohort, RejectsZeroMembers) {
  const fleet::CohortConfig config = cohort_config(0, 5);
  protocol::DapSender sender(cohort_dap_config(), common::Rng(1).bytes(16));
  EXPECT_THROW(fleet::ReceiverCohort(config, sender.chain().commitment()),
               std::invalid_argument);
}

// -------------------------------------------------------------- fleet sim

fleet::ScenarioSpec small_tree_spec() {
  fleet::ScenarioSpec spec;
  spec.name = "unit";
  spec.seed = 21;
  spec.kind = fleet::TopologyKind::kTree;
  spec.depth = 2;
  spec.fanout = 2;
  spec.members_per_cohort = 5;
  spec.intervals = 3;
  spec.interval_us = 200 * sim::kMillisecond;
  return spec;
}

TEST(FleetSim, CleanTreeAuthenticatesEveryMemberEveryInterval) {
  fleet::FleetSim sim(small_tree_spec());
  const fleet::FleetReport report = sim.run();
  EXPECT_EQ(report.cohort_count, 6u);
  EXPECT_EQ(report.total_members, 30u);
  EXPECT_EQ(report.announces_sent, 3u);
  EXPECT_EQ(report.member_auths, 3u * 6u * 4u);
  EXPECT_EQ(report.sentinel_auths, 3u * 6u);
  EXPECT_DOUBLE_EQ(report.auth_rate, 1.0);
  EXPECT_TRUE(report.zero_forged());
  EXPECT_EQ(report.announces_unsafe, 0u);
}

TEST(FleetSim, ReportIsIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    fleet::ScenarioSpec spec = small_tree_spec();
    spec.members_per_cohort = 50;
    spec.forged_fraction = 0.8;
    fleet::FleetSim sim(spec);
    return sim.run();
  };
  const fleet::FleetReport a = run(1);
  const fleet::FleetReport b = run(4);
  EXPECT_EQ(a.member_auths, b.member_auths);
  EXPECT_EQ(a.sentinel_auths, b.sentinel_auths);
  EXPECT_EQ(a.forged_accepted, b.forged_accepted);
  EXPECT_EQ(a.forged_announces_sent, b.forged_announces_sent);
  EXPECT_EQ(a.weak_auth_failures, b.weak_auth_failures);
  EXPECT_EQ(a.stored_records_peak, b.stored_records_peak);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.auth_rate, b.auth_rate);
  EXPECT_EQ(a.forged_accepted, 0u);
}

TEST(FleetSim, FloodedFleetNeverAcceptsForgeries) {
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.members_per_cohort = 20;
  spec.forged_fraction = 0.9;
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();
  EXPECT_GT(report.forged_announces_sent, 0u);
  EXPECT_GT(report.forged_reveals_sent, 0u);
  EXPECT_TRUE(report.zero_forged());
  EXPECT_GT(report.weak_auth_failures, 0u);
  // The flood degrades availability, never integrity.
  EXPECT_LT(report.auth_rate, 1.0);
  EXPECT_GT(report.auth_rate, 0.0);
}

TEST(FleetSim, CohortPlacementFollowsSpec) {
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.cohorts_at_leaves_only = true;
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();
  EXPECT_EQ(report.cohort_count, 4u);  // the 4 leaves of the depth-2 tree
  EXPECT_EQ(sim.cohort_at(0), nullptr);
  EXPECT_EQ(sim.cohort_at(1), nullptr);  // interior relay
  EXPECT_NE(sim.cohort_at(3), nullptr);
  EXPECT_DOUBLE_EQ(report.auth_rate, 1.0);
}

TEST(FleetSim, FactoriesLockAfterRun) {
  // run() itself is single-shot by DAP_REQUIRE contract (abort, not an
  // exception — not exercisable in-process); the factory setters still
  // throw so misuse in test harnesses stays catchable.
  fleet::FleetSim sim(small_tree_spec());
  (void)sim.run();
  EXPECT_THROW(sim.set_channel_factory([](std::uint32_t, std::uint32_t) {
    return std::make_unique<sim::PerfectChannel>();
  }),
               std::logic_error);
  EXPECT_THROW(sim.set_latency_factory([](std::uint32_t, std::uint32_t) {
    return std::make_unique<sim::FixedLatency>(100);
  }),
               std::logic_error);
}

TEST(FleetSim, RollupFeedsPerDepthRegistryCounters) {
  auto& reg = obs::Registry::global();
  const auto counter_value = [&reg](const char* name) {
    const std::uint64_t* v = reg.find_counter(name);
    return v == nullptr ? 0 : *v;
  };
  const std::uint64_t d1_before = counter_value("fleet.d1.announces_in");
  const std::uint64_t d2_before = counter_value("fleet.d2.announces_in");
  const std::uint64_t members_before = counter_value("fleet.members");

  fleet::ScenarioSpec spec = small_tree_spec();
  spec.kind = fleet::TopologyKind::kTree;
  spec.depth = 2;
  spec.fanout = 1;  // chain 0 -> 1 -> 2: one node per depth
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();

  EXPECT_EQ(counter_value("fleet.d1.announces_in") - d1_before, 3u);
  EXPECT_EQ(counter_value("fleet.d2.announces_in") - d2_before, 3u);
  EXPECT_EQ(counter_value("fleet.members") - members_before,
            report.total_members);
  const obs::LatencyHistogram* hops =
      reg.find_histogram("fleet.d2.hop_latency_us");
  ASSERT_NE(hops, nullptr);
  // Two 1 ms hops to depth 2.
  EXPECT_GE(hops->max(), 2000.0);
}

// ------------------------------------------------- causal tracing & snapshots

// Installs a private registry + tracer as the calling thread's globals
// for one test body (the same isolation benches use), so span and
// snapshot assertions see only this sim's telemetry.
class ObsOverrideGuard {
 public:
  explicit ObsOverrideGuard(std::size_t trace_capacity)
      : tracer_(trace_capacity),
        prev_registry_(obs::Registry::set_thread_override(&registry_)),
        prev_tracer_(obs::Tracer::set_thread_override(&tracer_)) {
    tracer_.enable(true);
  }
  ~ObsOverrideGuard() {
    obs::Registry::set_thread_override(prev_registry_);
    obs::Tracer::set_thread_override(prev_tracer_);
  }
  obs::Registry& registry() { return registry_; }
  obs::Tracer& tracer() { return tracer_; }

 private:
  obs::Registry registry_;
  obs::Tracer tracer_;
  obs::Registry* prev_registry_;
  obs::Tracer* prev_tracer_;
};

TEST(FleetSim, VerifySpansLinkBackToAnnounceAcrossTwoHops) {
  const ThreadGuard threads(1);
  ObsOverrideGuard obs_guard(1 << 12);
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;  // chain 0 -> 1 -> 2: verify at node 2 is two hops out
  fleet::FleetSim sim(spec);
  (void)sim.run();

  const auto spans = obs_guard.tracer().span_snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(obs_guard.tracer().spans_dropped(), 0u);
  std::map<std::uint64_t, const obs::SpanEvent*> by_uid;
  for (const auto& span : spans) by_uid[span.uid] = &span;

  // Every authentic verify span's parent walk must reach the root
  // announce_send; the one at node 2 passes two relay hops on the way.
  bool found_two_hop_chain = false;
  for (const auto& span : spans) {
    if (span.kind != obs::SpanKind::kVerify ||
        span.tag != obs::SpanTag::kAuthOk) {
      continue;
    }
    std::size_t relay_hops = 0;
    const obs::SpanEvent* at = &span;
    while (at->parent != 0) {
      const auto it = by_uid.find(at->parent);
      ASSERT_NE(it, by_uid.end()) << "dangling parent uid " << at->parent;
      at = it->second;
      EXPECT_EQ(at->trace, span.trace) << "parent walk left the trace";
      EXPECT_LE(at->t_begin, span.t_begin);
      if (at->kind == obs::SpanKind::kRelayHop) ++relay_hops;
    }
    EXPECT_EQ(at->kind, obs::SpanKind::kAnnounceSend);
    if (span.node == 2 && relay_hops >= 2) found_two_hop_chain = true;
  }
  EXPECT_TRUE(found_two_hop_chain)
      << "no verify span at node 2 walked back through both relay hops";

  // One trace id per interval, shared across the whole causal chain.
  std::set<std::uint64_t> traces;
  for (const auto& span : spans) traces.insert(span.trace);
  EXPECT_EQ(traces.size(), static_cast<std::size_t>(spec.intervals));
}

TEST(FleetSim, ForgedRevealsTagVerifySpansWithRejectReason) {
  const ThreadGuard threads(1);
  ObsOverrideGuard obs_guard(1 << 14);
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.members_per_cohort = 10;
  spec.forged_fraction = 0.9;
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();
  ASSERT_GT(report.forged_reveals_sent, 0u);

  // Reject tags cover two populations: forged reveals (no authentic
  // causal predecessor, so root-parented) and authentic reveals whose
  // records the flood evicted (still linked to their announce chain).
  std::size_t rejects = 0;
  std::size_t forged_rejects = 0;
  for (const auto& span : obs_guard.tracer().span_snapshot()) {
    if (span.kind != obs::SpanKind::kVerify) continue;
    if (span.tag == obs::SpanTag::kWeakAuthFail ||
        span.tag == obs::SpanTag::kNoRecord) {
      ++rejects;
      if (span.parent == 0) ++forged_rejects;
    } else if (span.tag == obs::SpanTag::kAuthOk) {
      // An accepted verify always has an authentic predecessor to link.
      EXPECT_NE(span.parent, 0u);
    }
  }
  EXPECT_GT(rejects, 0u) << "no verify span carries a reject reason";
  EXPECT_GT(forged_rejects, 0u)
      << "no root-parented (forged) verify span was rejected";
}

TEST(FleetSim, SnapshotterSamplesEveryIntervalPlusFinal) {
  const ThreadGuard threads(1);
  ObsOverrideGuard obs_guard(1 << 10);
  fleet::ScenarioSpec spec = small_tree_spec();
  fleet::FleetSim sim(spec);
  obs::Snapshotter snap(spec.id(), spec.interval_us);
  sim.set_snapshotter(&snap);
  (void)sim.run();

  // One sample per interval boundary the drain sweep crosses, plus the
  // unconditional end-of-run sample from rollup.
  EXPECT_GE(snap.samples(), static_cast<std::size_t>(spec.intervals));
  const std::string stream = snap.stream();
  EXPECT_NE(stream.find("\"schema\":\"dap.snapshots.v1\""),
            std::string::npos);
  EXPECT_NE(stream.find("\"fleet.announces_sent\":3"), std::string::npos);
  EXPECT_NE(stream.find("\"fleet.auths\""), std::string::npos);

  // The live-flush deltas must sum to the same totals the old end-only
  // rollup produced: the final sample's counter equals the report's.
  const auto* sent =
      obs_guard.registry().find_counter("fleet.announces_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(*sent, 3u);
}

// ------------------------------------------- multi-hop fault composition

TEST(FleetSim, DuplicatesMultiplyAcrossHopsWithoutDedup) {
  // Chain 0 -> 1 -> 2 with every hop duplicating every frame: copies
  // multiply hop over hop (2x then 4x) rather than resetting per hop.
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.relay_dedup = false;
  fleet::FleetSim sim(spec);
  sim.set_channel_factory([](std::uint32_t, std::uint32_t) {
    return std::make_unique<sim::DuplicateChannel>(
        std::make_unique<sim::PerfectChannel>(), 1.0);
  });
  const fleet::FleetReport report = sim.run();
  // 3 announces + 3 reveals leave the root.
  EXPECT_EQ(sim.node_traffic(1).packets_in, 12u);   // 6 x 2
  EXPECT_EQ(sim.node_traffic(1).forwarded, 12u);
  EXPECT_EQ(sim.node_traffic(2).packets_in, 24u);   // 6 x 2 x 2
  EXPECT_EQ(report.dedup_dropped, 0u);
  EXPECT_TRUE(report.zero_forged());
}

TEST(FleetSim, RelayDedupStopsDuplicateAmplification) {
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.relay_dedup = true;
  fleet::FleetSim sim(spec);
  sim.set_channel_factory([](std::uint32_t, std::uint32_t) {
    return std::make_unique<sim::DuplicateChannel>(
        std::make_unique<sim::PerfectChannel>(), 1.0);
  });
  const fleet::FleetReport report = sim.run();
  // Each relay forwards each distinct packet once, so amplification is
  // capped at the per-hop factor instead of compounding.
  EXPECT_EQ(sim.node_traffic(1).packets_in, 12u);
  EXPECT_EQ(sim.node_traffic(1).deduped, 6u);
  EXPECT_EQ(sim.node_traffic(1).forwarded, 6u);
  EXPECT_EQ(sim.node_traffic(2).packets_in, 12u);
  EXPECT_EQ(sim.node_traffic(2).deduped, 6u);
  EXPECT_EQ(report.dedup_dropped, 12u);
  // With duplicates suppressed at relays, every member still
  // authenticates every interval exactly once.
  EXPECT_DOUBLE_EQ(report.auth_rate, 1.0);
}

TEST(FleetSim, BlackoutOnOneHopComposesWithCleanHops) {
  // Chain 0 -> 1 -> 2; hop (0,1) blacks out around interval 2's
  // announce. Both cohorts lose exactly that interval (node 2 sits
  // behind the faulted hop), and every other interval authenticates.
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.members_per_cohort = 5;
  fleet::FleetSim sim(spec);
  auto schedule = std::make_shared<sim::FaultSchedule>();
  // Interval 2 spans [200ms, 400ms); its announce leaves at 300ms.
  schedule->add_window(290 * sim::kMillisecond, 310 * sim::kMillisecond);
  sim.set_channel_factory(
      [&sim, schedule](std::uint32_t from, std::uint32_t) {
        std::unique_ptr<sim::Channel> channel =
            std::make_unique<sim::PerfectChannel>();
        if (from == 0) {
          channel = std::make_unique<sim::BlackoutChannel>(
              std::move(channel), schedule, sim.queue());
        }
        return channel;
      });
  const fleet::FleetReport report = sim.run();
  // One of six root broadcasts (3 announces + 3 reveals) was dropped on
  // the first hop; the second hop relays everything that survived.
  EXPECT_EQ(sim.node_traffic(1).packets_in, 5u);
  EXPECT_EQ(sim.node_traffic(2).packets_in, 5u);
  // 2 cohorts x 2 surviving intervals x 4 statistical members.
  EXPECT_EQ(report.member_auths, 2u * 2u * 4u);
  EXPECT_EQ(report.sentinel_auths, 2u * 2u);
  EXPECT_NEAR(report.auth_rate, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(report.zero_forged());
}

// --------------------------------- bounded guards & relay fault injection

TEST(FleetSim, GuardBoundsRelayMemoryUnderFlood) {
  // A hard flood used to grow every relay's dedup set without bound;
  // with the guard, peak per-relay state is capped at the configured
  // capacity and the overflow surfaces as eviction counts instead.
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.intervals = 5;
  spec.members_per_cohort = 10;
  spec.forged_fraction = 0.9;  // 9 forged copies per authentic announce
  spec.guard.capacity = 16;
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();
  EXPECT_EQ(report.guard_capacity, 16u);
  EXPECT_LE(report.guard_peak_entries, 16u);
  EXPECT_GT(report.guard_evicted, 0u);
  EXPECT_TRUE(report.zero_forged());
  EXPECT_GT(report.auth_rate, 0.0);
}

TEST(FleetSim, DegradedRelayBudgetShedsFloodNotForgedAcceptance) {
  // Chain 0 -> 1 -> 2 with a tight bandwidth budget on relay 1: the
  // flood is shed at that hop instead of being forwarded downstream,
  // and integrity is untouched.
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.intervals = 5;
  spec.forged_fraction = 0.9;
  spec.guard.burst_bits = 512.0;  // a couple of frames of headroom
  spec.faults.degraded.push_back({1, 0.001});  // 1 kbit/s
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();
  EXPECT_GT(sim.node_traffic(1).shed, 0u);
  EXPECT_EQ(sim.node_traffic(2).shed, 0u);  // only node 1 is degraded
  EXPECT_GT(report.guard_shed, 0u);
  // Downstream sees at most what the budget let through.
  EXPECT_LT(sim.node_traffic(2).packets_in, sim.node_traffic(1).packets_in);
  EXPECT_TRUE(report.zero_forged());
}

TEST(FleetSim, RelayCrashMidChainDesyncsAndReconverges) {
  // Chain 0 -> 1 -> 2. Node 1 crashes just before interval 2's
  // announce, stays deaf for two intervals, and reboots with its
  // oscillator 150 ms ahead. Downstream (node 2) recovers as soon as
  // traffic flows again; node 1's own cohort must first detect the
  // desync (streak of unsafe announces), run the resync handshake, and
  // only then resume authenticating — on the SAME chain anchor it held
  // before the crash.
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.intervals = 10;
  spec.members_per_cohort = 5;
  spec.faults.relay_crashes.push_back({1, 2, 2, 150 * sim::kMillisecond});
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();

  EXPECT_EQ(report.relay_restarts, 1u);
  EXPECT_GT(report.dropped_while_down, 0u);
  EXPECT_TRUE(report.zero_forged());

  const fleet::ReceiverCohort* crashed = sim.cohort_at(1);
  ASSERT_NE(crashed, nullptr);
  EXPECT_EQ(crashed->stats().crash_restarts, 1u);
  // The skewed reboot shows up as a streak of unsafe announces. The
  // sentinel counts all three suspects; the cohort's shared check only
  // sees two, because the episode-opening third announce resolves the
  // handshake inside the sentinel before the cohort evaluates it.
  EXPECT_GE(crashed->stats().announces_unsafe, 2u);
  EXPECT_GE(crashed->sentinel().resync_stats().suspect_events, 3u);
  // The streak opens a desync episode and resolves via the handshake.
  EXPECT_GE(crashed->sentinel().resync_stats().desync_episodes, 1u);
  EXPECT_GE(crashed->sentinel().resync_stats().successes, 1u);
  // Chain anchor survived the crash: the sentinel authenticates again
  // after recovery (weak auth still walks back to its stored key).
  EXPECT_GE(crashed->stats().sentinel_auths, 2u);

  // Reconvergence bounds, measured from the fault horizon (interval 4).
  EXPECT_EQ(report.fault_clear_interval, 4u);
  ASSERT_EQ(report.reconverge_intervals.size(), 3u);
  // Depth 2 only had to wait for traffic: immediate reconvergence.
  EXPECT_LE(report.reconverge_intervals[2], 1u);
  // Depth 1 needed the full detect -> handshake -> recalibrate cycle.
  EXPECT_NE(report.reconverge_intervals[1], fleet::kNeverReconverged);
  EXPECT_LE(report.reconverge_intervals[1], 4u);
}

TEST(FleetSim, LinkPartitionHealsAndFleetRecovers) {
  // Chain 0 -> 1 -> 2; the (0,1) edge is partitioned for interval 2 and
  // heals at interval 3. Both cohorts lose the blocked traffic and
  // reconverge immediately once the edge is back.
  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.intervals = 5;
  spec.members_per_cohort = 5;
  spec.faults.partitions.push_back({0, 1, 2, 3});
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();
  // Interval 1's reveal (start(2) + interval/8) and interval 2's
  // announce fall inside the window: 10 root broadcasts, 2 blocked.
  EXPECT_EQ(sim.node_traffic(1).packets_in, 8u);
  EXPECT_EQ(report.relay_restarts, 0u);
  EXPECT_EQ(report.fault_clear_interval, 3u);
  ASSERT_EQ(report.reconverge_intervals.size(), 3u);
  EXPECT_EQ(report.reconverge_intervals[1], 0u);
  EXPECT_EQ(report.reconverge_intervals[2], 0u);
  // Intervals 3..5 authenticate fully at both cohorts.
  EXPECT_GE(report.sentinel_auths, 2u * 3u);
  EXPECT_TRUE(report.zero_forged());
}

TEST(FleetSim, ChaosReportIsIdenticalAcrossThreadCounts) {
  // The full fault mix — crash + reboot skew, healing partition,
  // degraded budget, flood — must stay bitwise deterministic at any
  // DAP_THREADS, like the clean fleet.
  const auto run = [](std::size_t threads) {
    ThreadGuard guard(threads);
    fleet::ScenarioSpec spec = small_tree_spec();
    spec.depth = 2;
    spec.fanout = 2;
    spec.intervals = 8;
    spec.members_per_cohort = 25;
    spec.forged_fraction = 0.6;
    spec.guard.capacity = 64;
    spec.guard.burst_bits = 8192.0;
    spec.faults.relay_crashes.push_back({1, 2, 1, 150 * sim::kMillisecond});
    spec.faults.partitions.push_back({0, 2, 3, 4});
    spec.faults.degraded.push_back({2, 0.05});
    fleet::FleetSim sim(spec);
    return sim.run();
  };
  const fleet::FleetReport a = run(1);
  const fleet::FleetReport b = run(4);
  EXPECT_EQ(a.member_auths, b.member_auths);
  EXPECT_EQ(a.sentinel_auths, b.sentinel_auths);
  EXPECT_EQ(a.forged_accepted, b.forged_accepted);
  EXPECT_EQ(a.guard_evicted, b.guard_evicted);
  EXPECT_EQ(a.guard_shed, b.guard_shed);
  EXPECT_EQ(a.guard_false_drops, b.guard_false_drops);
  EXPECT_EQ(a.guard_peak_entries, b.guard_peak_entries);
  EXPECT_EQ(a.relay_restarts, b.relay_restarts);
  EXPECT_EQ(a.dropped_while_down, b.dropped_while_down);
  EXPECT_EQ(a.reconverge_intervals, b.reconverge_intervals);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.forged_accepted, 0u);
}

TEST(FleetSim, GuardCountersReachRegistry) {
  auto& reg = obs::Registry::global();
  const auto counter_value = [&reg](const char* name) {
    const std::uint64_t* v = reg.find_counter(name);
    return v == nullptr ? 0 : *v;
  };
  const std::uint64_t evicted_before = counter_value("fleet.guard.evicted");
  const std::uint64_t shed_before = counter_value("fleet.guard.shed");
  const std::uint64_t restarts_before = counter_value("fleet.relay_restarts");
  const std::uint64_t d1_shed_before = counter_value("fleet.d1.guard_shed");

  fleet::ScenarioSpec spec = small_tree_spec();
  spec.depth = 2;
  spec.fanout = 1;
  spec.intervals = 5;
  spec.forged_fraction = 0.9;
  spec.guard.capacity = 8;
  spec.guard.burst_bits = 4096.0;
  spec.faults.relay_crashes.push_back({2, 2, 1, 0});
  spec.faults.degraded.push_back({1, 0.01});
  fleet::FleetSim sim(spec);
  const fleet::FleetReport report = sim.run();

  EXPECT_EQ(counter_value("fleet.guard.evicted") - evicted_before,
            report.guard_evicted);
  EXPECT_EQ(counter_value("fleet.guard.shed") - shed_before,
            report.guard_shed);
  EXPECT_EQ(counter_value("fleet.relay_restarts") - restarts_before,
            report.relay_restarts);
  // Per-depth split: the only budgeted relay sits at depth 1, so the
  // whole shed count lands in its bucket.
  EXPECT_EQ(counter_value("fleet.d1.guard_shed") - d1_shed_before,
            report.guard_shed);
  const double* peak = reg.find_gauge("fleet.guard.peak_entries");
  ASSERT_NE(peak, nullptr);
  EXPECT_LE(*peak, static_cast<double>(report.guard_capacity));
}

}  // namespace
}  // namespace dap
