// Unit tests for the adaptive layer: attack estimation, game-driven
// buffer re-tuning, and the agent-based population dynamics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive_defender.h"
#include "core/attack_estimator.h"
#include "core/population.h"
#include "sim/adversary.h"

namespace dap::core {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

// -------------------------------------------------------- AttackEstimator

TEST(AttackEstimator, NoTrafficMeansNoAttack) {
  AttackEstimator est(2);
  est.observe_interval(2);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
  est.observe_interval(1);  // fewer than expected (loss) still not attack
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
}

TEST(AttackEstimator, RawEstimateMatchesForgedFraction) {
  AttackEstimator est(2, 1.0);  // no smoothing
  est.observe_interval(10);     // 8 forged of 10
  EXPECT_NEAR(est.estimate(), 0.8, 1e-12);
  EXPECT_NEAR(est.last_raw(), 0.8, 1e-12);
}

TEST(AttackEstimator, EwmaSmoothsTowardNewValue) {
  AttackEstimator est(1, 0.5);
  est.observe_interval(5);  // raw 0.8; first observation adopts raw
  EXPECT_NEAR(est.estimate(), 0.8, 1e-12);
  est.observe_interval(1);  // raw 0
  EXPECT_NEAR(est.estimate(), 0.4, 1e-12);
  EXPECT_EQ(est.intervals_observed(), 2u);
}

TEST(AttackEstimator, EstimateStaysBelowOne) {
  AttackEstimator est(1, 1.0);
  est.observe_interval(100000);
  EXPECT_LT(est.estimate(), 1.0);
}

TEST(AttackEstimator, RejectsBadConstruction) {
  EXPECT_THROW(AttackEstimator(0), std::invalid_argument);
  EXPECT_THROW(AttackEstimator(1, 0.0), std::invalid_argument);
  EXPECT_THROW(AttackEstimator(1, 1.5), std::invalid_argument);
}

// ------------------------------------------------------- AdaptiveDefender

AdaptiveConfig adaptive_config() {
  AdaptiveConfig config;
  config.dap.chain_length = 200;
  config.dap.buffers = 1;
  config.dap.schedule = sim::IntervalSchedule(0, sim::kSecond);
  config.expected_copies = 1;
  config.retune_period = 4;
  config.estimator_smoothing = 1.0;  // react immediately (test clarity)
  return config;
}

sim::SimTime mid(std::uint32_t interval) {
  return (interval - 1) * sim::kSecond + sim::kSecond / 2;
}

TEST(AdaptiveDefender, RetunesBuffersUnderAttack) {
  const auto config = adaptive_config();
  protocol::DapSender sender(config.dap, bytes_of("seed"));
  AdaptiveDefender defender(config, sender.chain().commitment(),
                            bytes_of("local"), sim::LooseClock(0, 0), Rng(1));
  sim::FloodingForger forger(config.dap.sender_id, config.dap.mac_size,
                             Rng(2));
  EXPECT_EQ(defender.current_buffers(), 1u);
  // 8 intervals of p = 0.8 flooding (1 authentic + 4 forged copies).
  for (std::uint32_t i = 1; i <= 8; ++i) {
    defender.receive(sender.announce(i, bytes_of("m")), mid(i));
    for (int f = 0; f < 4; ++f) defender.receive(forger.forge(i), mid(i));
    (void)defender.receive(sender.reveal(i), mid(i + 1));
    defender.close_interval(5);
  }
  // p̂ = 0.8 -> the paper-mode optimiser picks the first interior m (17).
  EXPECT_NEAR(defender.estimated_p(), 0.8, 0.01);
  EXPECT_EQ(defender.current_buffers(), 17u);
  EXPECT_EQ(defender.stats().retunes, 2u);
  EXPECT_GT(defender.stats().defense_share_x, 0.9);
}

TEST(AdaptiveDefender, RelaxesWhenAttackStops) {
  const auto config = adaptive_config();
  protocol::DapSender sender(config.dap, bytes_of("seed"));
  AdaptiveDefender defender(config, sender.chain().commitment(),
                            bytes_of("local"), sim::LooseClock(0, 0), Rng(3));
  sim::FloodingForger forger(config.dap.sender_id, config.dap.mac_size,
                             Rng(4));
  for (std::uint32_t i = 1; i <= 4; ++i) {
    defender.receive(sender.announce(i, bytes_of("m")), mid(i));
    for (int f = 0; f < 9; ++f) defender.receive(forger.forge(i), mid(i));
    (void)defender.receive(sender.reveal(i), mid(i + 1));
    defender.close_interval(10);
  }
  EXPECT_GT(defender.current_buffers(), 10u);
  // Attack stops; estimator (smoothing 1.0) sees clean intervals.
  for (std::uint32_t i = 5; i <= 8; ++i) {
    defender.receive(sender.announce(i, bytes_of("m")), mid(i));
    (void)defender.receive(sender.reveal(i), mid(i + 1));
    defender.close_interval(1);
  }
  EXPECT_EQ(defender.current_buffers(), 1u);
  EXPECT_DOUBLE_EQ(defender.stats().defense_share_x, 0.0);
}

TEST(AdaptiveDefender, CostLedgerChargesDefenseAndLosses) {
  auto config = adaptive_config();
  config.retune_period = 1000;  // no retuning; fixed m = 1
  protocol::DapSender sender(config.dap, bytes_of("seed"));
  AdaptiveDefender defender(config, sender.chain().commitment(),
                            bytes_of("local"), sim::LooseClock(0, 0), Rng(5));
  // Interval 1: clean success. Interval 2: reveal for a never-announced
  // interval (attack succeeded).
  defender.receive(sender.announce(1, bytes_of("m")), mid(1));
  (void)defender.receive(sender.reveal(1), mid(2));
  defender.close_interval(1);
  (void)sender.announce(2, bytes_of("m"));
  (void)defender.receive(sender.reveal(2), mid(3));
  defender.close_interval(1);
  EXPECT_EQ(defender.stats().attacks_defeated, 1u);
  EXPECT_EQ(defender.stats().attacks_succeeded, 1u);
  // Cost: 2 intervals * k2 * m(=1) + 1 loss * Ra.
  EXPECT_NEAR(defender.stats().realized_cost, 2 * 4.0 + 200.0, 1e-9);
  EXPECT_NEAR(defender.average_cost(), (8.0 + 200.0) / 2, 1e-9);
}

TEST(AdaptiveDefender, AdaptiveBeatsFixedSmallBufferUnderHeavyAttack) {
  // End-to-end comparison: adaptive m vs a fixed m=1 defender under a
  // p = 0.9 flood; the adaptive one should defeat far more attacks.
  auto config = adaptive_config();
  config.retune_period = 2;
  protocol::DapSender sender_a(config.dap, bytes_of("seed-a"));
  protocol::DapSender sender_b(config.dap, bytes_of("seed-a"));
  AdaptiveDefender adaptive(config, sender_a.chain().commitment(),
                            bytes_of("local"), sim::LooseClock(0, 0), Rng(6));
  protocol::DapReceiver fixed(config.dap, sender_b.chain().commitment(),
                              bytes_of("local"), sim::LooseClock(0, 0),
                              Rng(7));
  sim::FloodingForger forger(config.dap.sender_id, config.dap.mac_size,
                             Rng(8));
  std::size_t adaptive_ok = 0, fixed_ok = 0;
  for (std::uint32_t i = 1; i <= 60; ++i) {
    const auto announce_a = sender_a.announce(i, bytes_of("m"));
    const auto announce_b = sender_b.announce(i, bytes_of("m"));
    adaptive.receive(announce_a, mid(i));
    fixed.receive(announce_b, mid(i));
    for (int f = 0; f < 9; ++f) {
      const auto forged = forger.forge(i);
      adaptive.receive(forged, mid(i));
      fixed.receive(forged, mid(i));
    }
    if (adaptive.receive(sender_a.reveal(i), mid(i + 1))) ++adaptive_ok;
    if (fixed.receive(sender_b.reveal(i), mid(i + 1))) ++fixed_ok;
    adaptive.close_interval(10);
  }
  EXPECT_GT(adaptive_ok, 2 * fixed_ok);
}

// ----------------------------------------------------------- PopulationSim

TEST(PopulationSim, InitialSharesRespected) {
  PopulationConfig config;
  config.initial_x = 0.3;
  config.initial_y = 0.7;
  PopulationSim sim(config, game::GameParams::paper_defaults(0.8, 20),
                    Rng(9));
  EXPECT_NEAR(sim.defender_share(), 0.3, 1e-3);
  EXPECT_NEAR(sim.attacker_share(), 0.7, 1e-3);
}

TEST(PopulationSim, SharesStayInUnitInterval) {
  PopulationConfig config;
  PopulationSim sim(config, game::GameParams::paper_defaults(0.8, 4),
                    Rng(10));
  for (const auto& s : sim.run(2000)) {
    EXPECT_GE(s.x, 0.0);
    EXPECT_LE(s.x, 1.0);
    EXPECT_GE(s.y, 0.0);
    EXPECT_LE(s.y, 1.0);
  }
}

TEST(PopulationSim, ConvergesToOdeAttractorFullDefense) {
  // m = 6, p = 0.8 -> ESS (1,1); the finite population should end near it.
  PopulationConfig config;
  config.defenders = 4000;
  config.attackers = 4000;
  const auto g = game::GameParams::paper_defaults(0.8, 6);
  PopulationSim sim(config, g, Rng(11));
  (void)sim.run(4000);
  EXPECT_GT(sim.defender_share(), 0.97);
  EXPECT_GT(sim.attacker_share(), 0.97);
}

TEST(PopulationSim, ConvergesNearInteriorEss) {
  // m = 30, p = 0.8 -> interior ESS; agent dynamics orbit near it.
  PopulationConfig config;
  config.defenders = 8000;
  config.attackers = 8000;
  const auto g = game::GameParams::paper_defaults(0.8, 30);
  const auto ess = game::solve_ess(g);
  PopulationSim sim(config, g, Rng(12));
  (void)sim.run(20000);
  // Average over a window to smooth the stochastic orbit.
  game::State mean{0, 0};
  const int window = 2000;
  for (int i = 0; i < window; ++i) {
    sim.step();
    mean.x += sim.defender_share();
    mean.y += sim.attacker_share();
  }
  mean.x /= window;
  mean.y /= window;
  EXPECT_NEAR(mean.x, ess.point.x, 0.08);
  EXPECT_NEAR(mean.y, ess.point.y, 0.08);
}

TEST(PopulationSim, RejectsBadConfig) {
  PopulationConfig config;
  config.defenders = 0;
  EXPECT_THROW(
      PopulationSim(config, game::GameParams::paper_defaults(0.8, 4), Rng(13)),
      std::invalid_argument);
  config.defenders = 10;
  config.initial_x = 1.5;
  EXPECT_THROW(
      PopulationSim(config, game::GameParams::paper_defaults(0.8, 4), Rng(13)),
      std::invalid_argument);
  config.initial_x = 0.5;
  config.imitation_rate = 0.0;
  EXPECT_THROW(
      PopulationSim(config, game::GameParams::paper_defaults(0.8, 4), Rng(13)),
      std::invalid_argument);
}

}  // namespace
}  // namespace dap::core

// ----------------------------------------------------------- CoevolutionSim

#include "core/coevolution.h"

namespace dap::core {
namespace {

TEST(CoevolutionSim, FindsFullConflictEssFromSampledPayoffs) {
  // m = 6, p = 0.8: ESS (1,1). No agent knows the game; imitation on
  // realized payoffs must still drive both populations to the corner.
  const auto g = game::GameParams::paper_defaults(0.8, 6);
  CoevolutionConfig config;
  CoevolutionSim sim(config, g, Rng(501));
  const auto w = sim.run_and_average(12000, 4000);
  EXPECT_GT(w.mean.x, 0.98);
  EXPECT_GT(w.mean.y, 0.97);
}

TEST(CoevolutionSim, FindsInteriorEssFromSampledPayoffs) {
  const auto g = game::GameParams::paper_defaults(0.8, 30);
  const auto ess = game::solve_ess(g);
  CoevolutionConfig config;
  CoevolutionSim sim(config, g, Rng(502));
  const auto w = sim.run_and_average(16000, 6000);
  EXPECT_NEAR(w.mean.x, ess.point.x, 0.05);
  // The attacker mix is hypersensitive to the defender mix near X = 1
  // (dY/dX ~ -Ra(1-P)/(k1 xa) ~ -12), so Y carries a visible
  // mutation-induced offset; the regime is still unmistakable.
  EXPECT_NEAR(w.mean.y, ess.point.y, 0.12);
}

TEST(CoevolutionSim, FindsGiveUpRegimeFromSampledPayoffs) {
  const auto g = game::GameParams::paper_defaults(0.8, 70);
  const auto ess = game::solve_ess(g);
  ASSERT_EQ(ess.kind, game::EssKind::kPartialDefenseFullAttack);
  CoevolutionConfig config;
  CoevolutionSim sim(config, g, Rng(503));
  const auto w = sim.run_and_average(12000, 4000);
  EXPECT_NEAR(w.mean.x, ess.point.x, 0.05);
  EXPECT_GT(w.mean.y, 0.95);
}

TEST(CoevolutionSim, CustomOutcomeModelShiftsEquilibrium) {
  // If attacks against buffers *always* fail (P = 0 instead of p^m), the
  // attacker population should attack much less than under p^m.
  const auto g = game::GameParams::paper_defaults(0.8, 4);  // p^m = 0.41
  CoevolutionConfig config;
  CoevolutionSim baseline(config, g, Rng(504));
  const auto with_pm = baseline.run_and_average(8000, 3000);
  CoevolutionSim hardened(config, g, Rng(504));
  hardened.set_attack_outcome([](common::Rng&) { return false; });
  const auto with_zero = hardened.run_and_average(8000, 3000);
  EXPECT_GT(with_pm.mean.y, with_zero.mean.y + 0.1);
}

TEST(CoevolutionSim, SharesStayInUnitInterval) {
  const auto g = game::GameParams::paper_defaults(0.8, 20);
  CoevolutionConfig config;
  config.defenders = 300;
  config.attackers = 300;
  CoevolutionSim sim(config, g, Rng(505));
  for (const auto& s : sim.run(2000)) {
    EXPECT_GE(s.x, 0.0);
    EXPECT_LE(s.x, 1.0);
    EXPECT_GE(s.y, 0.0);
    EXPECT_LE(s.y, 1.0);
  }
}

TEST(CoevolutionSim, RejectsBadConfig) {
  const auto g = game::GameParams::paper_defaults(0.8, 10);
  CoevolutionConfig config;
  config.defenders = 0;
  EXPECT_THROW(CoevolutionSim(config, g, Rng(1)), std::invalid_argument);
  config.defenders = 10;
  config.observation_rounds = 0;
  EXPECT_THROW(CoevolutionSim(config, g, Rng(1)), std::invalid_argument);
  config.observation_rounds = 4;
  config.imitation_rate = 0.0;
  EXPECT_THROW(CoevolutionSim(config, g, Rng(1)), std::invalid_argument);
  config.imitation_rate = 0.001;
  CoevolutionSim ok(config, g, Rng(1));
  EXPECT_THROW(ok.set_attack_outcome(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace dap::core
