// Unit tests for src/sim: event queue ordering, interval schedules,
// channel models, loose clocks, broadcast medium, adversaries, metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/clock_model.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/medium.h"
#include "sim/metrics.h"
#include "sim/time.h"

namespace dap::sim {
namespace {

using common::Bytes;
using common::Rng;

// ----------------------------------------------------------- EventQueue

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule_at(5, [&] {
    times.push_back(q.now());
    q.schedule_in(10, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 15}));
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15u);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilHorizonIsInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(15, [&] { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15u);
}

TEST(EventQueue, RunUntilFiresWorkScheduledAtTheHorizonDuringTheRun) {
  // An event inside the run schedules new work at exactly `until`; the
  // documented contract is that it fires in the same call — including a
  // chain of same-time events scheduled by each other at the horizon.
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule_at(10, [&] {
    times.push_back(q.now());
    q.schedule_at(15, [&] {
      times.push_back(q.now());
      q.schedule_at(15, [&] { times.push_back(q.now()); });
    });
    q.schedule_at(16, [&] { times.push_back(q.now()); });  // beyond: queued
  });
  q.run_until(15);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15, 15}));
  EXPECT_EQ(q.now(), 15u);
  EXPECT_EQ(q.pending(), 1u);  // the t=16 event survives the horizon
  q.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15, 15, 16}));
}

TEST(EventQueue, RunUntilAdvancesNowPastAQuietQueue) {
  EventQueue q;
  q.schedule_at(3, [] {});
  q.run_until(50);
  EXPECT_EQ(q.now(), 50u);  // horizon reached even though events ended at 3
  q.run_until(40);          // never moves now() backwards
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RejectsPastAndEmptyActions) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(20, {}), std::invalid_argument);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

// ----------------------------------------------------- IntervalSchedule

TEST(IntervalSchedule, MapsTimesToIntervals) {
  const IntervalSchedule sched(1000, 100);
  EXPECT_EQ(sched.interval_at(999), 0u);   // before start
  EXPECT_EQ(sched.interval_at(1000), 1u);
  EXPECT_EQ(sched.interval_at(1099), 1u);
  EXPECT_EQ(sched.interval_at(1100), 2u);
  EXPECT_EQ(sched.interval_start(1), 1000u);
  EXPECT_EQ(sched.interval_end(1), 1100u);
  EXPECT_EQ(sched.interval_start(3), 1200u);
}

TEST(IntervalSchedule, ZeroDurationClampsToOne) {
  const IntervalSchedule sched(0, 0);
  EXPECT_EQ(sched.duration(), 1u);
}

// --------------------------------------------------------------- Channel

TEST(Channel, PerfectDeliversAlways) {
  PerfectChannel ch;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ch.deliver(rng));
}

TEST(Channel, BernoulliLossRateMatches) {
  BernoulliChannel ch(0.3);
  Rng rng(2);
  int delivered = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (ch.deliver(rng)) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.01);
}

TEST(Channel, BernoulliExtremes) {
  Rng rng(3);
  BernoulliChannel never(1.0);
  BernoulliChannel always(0.0);
  EXPECT_FALSE(never.deliver(rng));
  EXPECT_TRUE(always.deliver(rng));
  EXPECT_THROW(BernoulliChannel(1.5), std::invalid_argument);
  EXPECT_THROW(BernoulliChannel(-0.1), std::invalid_argument);
}

TEST(Channel, GilbertElliottStationaryLoss) {
  // p_gb = 0.1, p_bg = 0.3 -> pi_bad = 0.25; loss = 0.25*0.8 + 0.75*0.01.
  GilbertElliottChannel ch(0.1, 0.3, 0.01, 0.8);
  EXPECT_NEAR(ch.stationary_loss(), 0.25 * 0.8 + 0.75 * 0.01, 1e-12);
  Rng rng(4);
  int lost = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (!ch.deliver(rng)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, ch.stationary_loss(), 0.01);
}

TEST(Channel, GilbertElliottProducesBursts) {
  // With sticky states, consecutive losses should be far more likely
  // than under independent loss at the same average rate.
  GilbertElliottChannel ch(0.02, 0.1, 0.0, 1.0);
  Rng rng(5);
  int transitions = 0;  // loss->delivery or delivery->loss
  int losses = 0;
  bool last = true;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const bool ok = ch.deliver(rng);
    if (!ok) ++losses;
    if (ok != last) ++transitions;
    last = ok;
  }
  const double loss_rate = static_cast<double>(losses) / n;
  const double expected_transitions_if_independent =
      2.0 * loss_rate * (1.0 - loss_rate) * n;
  EXPECT_LT(transitions, expected_transitions_if_independent / 2);
}

TEST(Channel, GilbertElliottValidation) {
  EXPECT_THROW(GilbertElliottChannel(0.0, 0.0, 0.1, 0.9),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliottChannel(1.2, 0.1, 0.1, 0.9),
               std::invalid_argument);
}

TEST(Channel, CloneResetsState) {
  GilbertElliottChannel ch(1.0, 0.0, 0.0, 1.0);  // jumps to BAD immediately
  Rng rng(6);
  (void)ch.deliver(rng);
  EXPECT_TRUE(ch.in_bad_state());
  auto fresh = ch.clone();
  auto* ge = dynamic_cast<GilbertElliottChannel*>(fresh.get());
  ASSERT_NE(ge, nullptr);
  EXPECT_FALSE(ge->in_bad_state());
}

TEST(Channel, BitErrorFlipsBits) {
  BitErrorChannel ch(std::make_unique<PerfectChannel>(), 0.5);
  Rng rng(7);
  Bytes frame(100, 0x00);
  ch.corrupt(frame, rng);
  int flipped = 0;
  for (auto b : frame) {
    for (int bit = 0; bit < 8; ++bit) {
      if (b & (1u << bit)) ++flipped;
    }
  }
  EXPECT_NEAR(flipped / 800.0, 0.5, 0.06);
}

TEST(Channel, BitErrorZeroRateLeavesFrameIntact) {
  BitErrorChannel ch(std::make_unique<PerfectChannel>(), 0.0);
  Rng rng(8);
  Bytes frame(32, 0xa5);
  const Bytes original = frame;
  ch.corrupt(frame, rng);
  EXPECT_EQ(frame, original);
}

// ------------------------------------------------------------ LooseClock

TEST(LooseClock, OffsetApplied) {
  const LooseClock ahead(500, 1000);
  const LooseClock behind(-500, 1000);
  EXPECT_EQ(ahead.local_time(10000), 10500u);
  EXPECT_EQ(behind.local_time(10000), 9500u);
  EXPECT_EQ(behind.local_time(100), 0u);  // clamped at zero
}

TEST(LooseClock, RejectsExcessiveOffset) {
  EXPECT_THROW(LooseClock(2000, 1000), std::invalid_argument);
  EXPECT_THROW(LooseClock(-2000, 1000), std::invalid_argument);
}

TEST(LooseClock, RandomWithinBound) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const LooseClock clock = LooseClock::random(rng, 250);
    EXPECT_LE(clock.offset(), 250);
    EXPECT_GE(clock.offset(), -250);
  }
}

TEST(LooseClock, PacketSafetyCheck) {
  const IntervalSchedule sched(0, 1000);
  const LooseClock clock(0, 100);
  // Interval 5's key is disclosed at interval 5 + 2 = start 6000.
  // At local 5000 with 200us total slack -> 5200 < 6000: safe.
  EXPECT_TRUE(clock.packet_safe(5, 2, 5000, sched));
  // At local 5900 -> 6100 >= 6000: unsafe.
  EXPECT_FALSE(clock.packet_safe(5, 2, 5900, sched));
}

TEST(LooseClock, PerfectSyncBoundary) {
  const IntervalSchedule sched(0, 1000);
  const LooseClock clock(0, 0);
  EXPECT_TRUE(clock.packet_safe(1, 1, 999, sched));
  EXPECT_FALSE(clock.packet_safe(1, 1, 1000, sched));
}

// ---------------------------------------------------------------- Medium

wire::MacAnnounce make_announce(wire::NodeId sender, std::uint32_t interval) {
  wire::MacAnnounce p;
  p.sender = sender;
  p.interval = interval;
  p.mac = Bytes(10, 0x42);
  return p;
}

TEST(Medium, DeliversToAllLinks) {
  EventQueue q;
  Rng rng(10);
  Medium medium(q, rng);
  int received_a = 0, received_b = 0;
  medium.attach([&](const wire::Packet&, SimTime) { ++received_a; },
                std::make_unique<PerfectChannel>());
  medium.attach([&](const wire::Packet&, SimTime) { ++received_b; },
                std::make_unique<PerfectChannel>());
  medium.broadcast(wire::Packet{make_announce(1, 1)});
  q.run();
  EXPECT_EQ(received_a, 1);
  EXPECT_EQ(received_b, 1);
}

TEST(Medium, RespectsLatency) {
  EventQueue q;
  Rng rng(11);
  Medium medium(q, rng);
  SimTime arrival = 0;
  medium.attach([&](const wire::Packet&, SimTime t) { arrival = t; },
                std::make_unique<PerfectChannel>(), 2500);
  medium.broadcast(wire::Packet{make_announce(1, 1)});
  q.run();
  EXPECT_EQ(arrival, 2500u);
}

TEST(Medium, LossyLinkDropsFrames) {
  EventQueue q;
  Rng rng(12);
  Medium medium(q, rng);
  int received = 0;
  medium.attach([&](const wire::Packet&, SimTime) { ++received; },
                std::make_unique<BernoulliChannel>(0.5));
  for (int i = 0; i < 1000; ++i) {
    medium.broadcast(wire::Packet{make_announce(1, 1)});
  }
  q.run();
  EXPECT_GT(received, 350);
  EXPECT_LT(received, 650);
  EXPECT_EQ(medium.metrics().count("medium.frames_lost"),
            1000u - static_cast<unsigned>(received));
}

TEST(Medium, CorruptedFramesCountedNotDelivered) {
  EventQueue q;
  Rng rng(13);
  Medium medium(q, rng);
  int received = 0;
  medium.attach(
      [&](const wire::Packet&, SimTime) { ++received; },
      std::make_unique<BitErrorChannel>(std::make_unique<PerfectChannel>(),
                                        0.05));
  for (int i = 0; i < 200; ++i) {
    medium.broadcast(wire::Packet{make_announce(1, 1)});
  }
  q.run();
  EXPECT_EQ(static_cast<std::uint64_t>(received) +
                medium.metrics().count("medium.frames_corrupted"),
            200u);
  EXPECT_GT(medium.metrics().count("medium.frames_corrupted"), 0u);
}

TEST(Medium, TracksBandwidthBySender) {
  EventQueue q;
  Rng rng(14);
  Medium medium(q, rng);
  medium.attach([](const wire::Packet&, SimTime) {},
                std::make_unique<PerfectChannel>());
  const wire::Packet p1{make_announce(1, 1)};
  const wire::Packet p2{make_announce(2, 1)};
  medium.broadcast(p1);
  medium.broadcast(p1);
  medium.broadcast(p2);
  q.run();
  EXPECT_EQ(medium.bits_sent_by(1), 2 * wire::wire_bits(p1));
  EXPECT_EQ(medium.bits_sent_by(2), wire::wire_bits(p2));
  EXPECT_EQ(medium.bits_sent_by(99), 0u);
  EXPECT_EQ(medium.total_bits(),
            2 * wire::wire_bits(p1) + wire::wire_bits(p2));
}

TEST(Medium, RejectsNullAttachArguments) {
  EventQueue q;
  Rng rng(15);
  Medium medium(q, rng);
  EXPECT_THROW(medium.attach(nullptr, std::make_unique<PerfectChannel>()),
               std::invalid_argument);
  EXPECT_THROW(
      medium.attach([](const wire::Packet&, SimTime) {}, nullptr),
      std::invalid_argument);
}

// ------------------------------------------------------------- Adversary

TEST(Adversary, FloodingForgerImpersonatesVictim) {
  sim::FloodingForger forger(7, 10, Rng(16));
  const auto packet = forger.forge(3);
  EXPECT_EQ(packet.sender, 7u);
  EXPECT_EQ(packet.interval, 3u);
  EXPECT_EQ(packet.mac.size(), 10u);
}

TEST(Adversary, ForgedMacsAreDistinct) {
  sim::FloodingForger forger(7, 10, Rng(17));
  const auto a = forger.forge(1);
  const auto b = forger.forge(1);
  EXPECT_NE(a.mac, b.mac);
  EXPECT_EQ(forger.packets_forged(), 2u);
}

TEST(Adversary, FloodInjectsIntoMedium) {
  EventQueue q;
  Rng rng(18);
  Medium medium(q, rng);
  int received = 0;
  medium.attach([&](const wire::Packet&, SimTime) { ++received; },
                std::make_unique<PerfectChannel>());
  sim::FloodingForger forger(1, 10, rng.fork(1));
  forger.flood(medium, 2, 25);
  q.run();
  EXPECT_EQ(received, 25);
}

TEST(Adversary, CopiesForFraction) {
  using FF = sim::FloodingForger;
  EXPECT_EQ(FF::copies_for_fraction(1, 0.0), 0u);
  EXPECT_EQ(FF::copies_for_fraction(1, 0.5), 1u);
  EXPECT_EQ(FF::copies_for_fraction(1, 0.8), 4u);
  EXPECT_EQ(FF::copies_for_fraction(2, 0.8), 8u);
  EXPECT_EQ(FF::copies_for_fraction(1, 0.9), 9u);
  EXPECT_THROW((void)FF::copies_for_fraction(1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)FF::copies_for_fraction(1, -0.1), std::invalid_argument);
}

TEST(Adversary, CopiesForFractionHitsTarget) {
  for (double p : {0.3, 0.5, 0.8, 0.95}) {
    const std::size_t legit = 4;
    const std::size_t forged =
        sim::FloodingForger::copies_for_fraction(legit, p);
    const double realized =
        static_cast<double>(forged) / static_cast<double>(forged + legit);
    EXPECT_NEAR(realized, p, 0.05) << "p " << p;
  }
}

TEST(Adversary, ReplayAttackerReplaysVerbatim) {
  EventQueue q;
  Rng rng(19);
  Medium medium(q, rng);
  std::vector<wire::MacAnnounce> seen;
  medium.attach(
      [&](const wire::Packet& p, SimTime) {
        seen.push_back(std::get<wire::MacAnnounce>(p));
      },
      std::make_unique<PerfectChannel>());
  sim::ReplayAttacker replayer;
  const auto original = make_announce(1, 4);
  replayer.observe(original);
  EXPECT_EQ(replayer.recorded(), 1u);
  replayer.replay_all(medium);
  q.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], original);
}

TEST(Adversary, KeyGuessForgerProducesWrongKeys) {
  sim::KeyGuessForger forger(1, 10, Rng(20));
  const auto a = forger.forge_reveal(1, common::bytes_of("evil"));
  const auto b = forger.forge_reveal(1, common::bytes_of("evil"));
  EXPECT_EQ(a.message, common::bytes_of("evil"));
  EXPECT_EQ(a.key.size(), 10u);
  EXPECT_NE(a.key, b.key);
}

// --------------------------------------------------------------- Metrics

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.incr("x");
  m.incr("x", 4);
  EXPECT_EQ(m.count("x"), 5u);
  EXPECT_EQ(m.count("missing"), 0u);
}

TEST(Metrics, RatesAndStats) {
  Metrics m;
  m.mark("auth", true);
  m.mark("auth", false);
  ASSERT_NE(m.rate("auth"), nullptr);
  EXPECT_DOUBLE_EQ(m.rate("auth")->rate(), 0.5);
  m.observe("latency", 2.0);
  m.observe("latency", 4.0);
  ASSERT_NE(m.stats("latency"), nullptr);
  EXPECT_DOUBLE_EQ(m.stats("latency")->mean(), 3.0);
  EXPECT_EQ(m.rate("nope"), nullptr);
  EXPECT_EQ(m.stats("nope"), nullptr);
}

TEST(Metrics, ReportMentionsAllEntries) {
  Metrics m;
  m.incr("counter.a", 3);
  m.mark("rate.b", true);
  m.observe("stat.c", 1.0);
  const std::string report = m.report();
  EXPECT_NE(report.find("counter.a"), std::string::npos);
  EXPECT_NE(report.find("rate.b"), std::string::npos);
  EXPECT_NE(report.find("stat.c"), std::string::npos);
}

}  // namespace
}  // namespace dap::sim

// ----------------------------------------------------------- TokenBucket

namespace dap::sim {
namespace {

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket bucket(1000.0, 500.0);
  EXPECT_TRUE(bucket.try_consume(500, 0));
  EXPECT_FALSE(bucket.try_consume(1, 0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(1000.0, 500.0);  // 1000 bits/s
  ASSERT_TRUE(bucket.try_consume(500, 0));
  // After 100 ms: 100 bits accrued.
  EXPECT_FALSE(bucket.try_consume(101, 100 * kMillisecond));
  EXPECT_TRUE(bucket.try_consume(100, 100 * kMillisecond));
  // After a long time: capped at burst.
  EXPECT_NEAR(bucket.available(100 * kSecond), 500.0, 1e-6);
}

TEST(TokenBucket, FailedConsumeKeepsTokens) {
  TokenBucket bucket(1000.0, 100.0);
  EXPECT_FALSE(bucket.try_consume(200, 0));
  EXPECT_TRUE(bucket.try_consume(100, 0));
}

TEST(TokenBucket, RejectsBadArgumentsAndBackwardTime) {
  EXPECT_THROW(TokenBucket(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(100.0, 0.5), std::invalid_argument);
  TokenBucket bucket(100.0, 100.0);
  ASSERT_TRUE(bucket.try_consume(10, kSecond));
  EXPECT_THROW(bucket.try_consume(10, 0), std::invalid_argument);
}

TEST(TokenBucket, LongRunThroughputMatchesRate) {
  TokenBucket bucket(10000.0, 1000.0);  // 10 kbit/s
  std::uint64_t sent_bits = 0;
  for (SimTime t = 0; t < 10 * kSecond; t += 10 * kMillisecond) {
    if (bucket.try_consume(200, t)) sent_bits += 200;
  }
  // 10 seconds at 10 kbit/s plus the initial burst.
  EXPECT_NEAR(static_cast<double>(sent_bits), 10 * 10000.0 + 1000.0, 600.0);
}

TEST(Medium, RateLimitDropsExcessFrames) {
  EventQueue queue;
  common::Rng rng(21);
  Medium medium(queue, rng);
  int received = 0;
  medium.attach([&](const wire::Packet&, SimTime) { ++received; },
                std::make_unique<PerfectChannel>());
  wire::MacAnnounce p;
  p.sender = 5;
  p.interval = 1;
  p.mac = common::Bytes(10, 1);
  const auto bits = static_cast<double>(wire::wire_bits(wire::Packet{p}));
  // Allow exactly 3 frames of burst, negligible refill.
  medium.set_rate_limit(5, 1.0, bits * 3);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (medium.broadcast(wire::Packet{p})) ++accepted;
  }
  queue.run();
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(received, 3);
  EXPECT_EQ(medium.rate_limited_drops(5), 7u);
  EXPECT_EQ(medium.metrics().count("medium.rate_limited"), 7u);
}

TEST(Medium, RateLimitEnforcesBandwidthFraction) {
  // Attacker capped at 4x the sender's rate -> forged fraction on the
  // medium converges to ~0.8 no matter how hard it floods.
  EventQueue queue;
  common::Rng rng(22);
  Medium medium(queue, rng);
  medium.attach([](const wire::Packet&, SimTime) {},
                std::make_unique<PerfectChannel>());
  wire::MacAnnounce legit;
  legit.sender = 1;
  legit.interval = 1;
  legit.mac = common::Bytes(10, 1);
  wire::MacAnnounce forged = legit;
  forged.sender = 2;
  const double bits = static_cast<double>(wire::wire_bits(wire::Packet{legit}));
  // 4 forged frames/second of rate with a 4-frame burst: the whole
  // second's allowance can be spent at the start of each interval.
  medium.set_rate_limit(2, 4.0 * bits, 4.0 * bits);

  std::uint64_t legit_sent = 0, forged_sent = 0;
  for (SimTime t = 0; t < 200 * kSecond; t += kSecond) {
    queue.run_until(t);
    legit.interval = static_cast<std::uint32_t>(t / kSecond) + 1;
    forged.interval = legit.interval;
    if (medium.broadcast(wire::Packet{legit})) ++legit_sent;
    // The attacker tries 20 frames per interval but only ~4 pass.
    for (int i = 0; i < 20; ++i) {
      if (medium.broadcast(wire::Packet{forged})) ++forged_sent;
    }
  }
  queue.run();
  const double p = static_cast<double>(forged_sent) /
                   static_cast<double>(forged_sent + legit_sent);
  EXPECT_NEAR(p, 0.8, 0.02);
}

// ------------------------------------------------------ Fault injection

TEST(FaultSchedule, WindowsAreHalfOpen) {
  FaultSchedule sched;
  sched.add_window(10, 20);
  sched.add_window(40, 50);
  EXPECT_FALSE(sched.active(9));
  EXPECT_TRUE(sched.active(10));
  EXPECT_TRUE(sched.active(19));
  EXPECT_FALSE(sched.active(20));
  EXPECT_TRUE(sched.active(45));
  EXPECT_FALSE(sched.active(50));
  EXPECT_EQ(sched.windows(), 2u);
  EXPECT_EQ(sched.last_clear(), 50u);
}

TEST(FaultSchedule, EmptyScheduleNeverActive) {
  FaultSchedule sched;
  EXPECT_FALSE(sched.active(0));
  EXPECT_FALSE(sched.active(UINT64_MAX));
  EXPECT_EQ(sched.last_clear(), 0u);
  EXPECT_THROW(sched.add_window(5, 5), std::invalid_argument);
  EXPECT_THROW(sched.add_window(7, 3), std::invalid_argument);
}

TEST(FaultyClock, DriftAccumulatesThenFreezes) {
  FaultyClock clock(LooseClock(0, kMillisecond));
  // +100000 ppm = +100 us per ms of true time, active for 10 ms.
  clock.add(ClockDriftFault{100000.0, 0, 10 * kMillisecond});
  EXPECT_EQ(clock.offset_at(0), 0);
  EXPECT_EQ(clock.offset_at(5 * kMillisecond), 500);
  EXPECT_EQ(clock.offset_at(10 * kMillisecond), 1000);
  // Frozen after the window: the clock stays wrong, it does not recover.
  EXPECT_EQ(clock.offset_at(20 * kMillisecond), 1000);
  EXPECT_EQ(clock.local_time(20 * kMillisecond), 20 * kMillisecond + 1000);
  // The believed bound is still the pre-fault LooseClock.
  EXPECT_EQ(clock.believed().offset(), 0);
}

TEST(FaultyClock, StepJumpsAtInstant) {
  FaultyClock clock(LooseClock(-200, kMillisecond));
  clock.add(ClockStepFault{5000, 10 * kMillisecond});
  EXPECT_EQ(clock.offset_at(10 * kMillisecond - 1), -200);
  EXPECT_EQ(clock.offset_at(10 * kMillisecond), 4800);
  EXPECT_EQ(clock.local_time(10 * kMillisecond),
            10 * kMillisecond + 4800);
}

TEST(JitterLink, SamplesWithinRangeAndGatesOnSchedule) {
  EventQueue queue;
  Rng rng(31);
  auto sched = std::make_shared<FaultSchedule>();
  sched->add_window(100, 200);
  JitterLink link(kMillisecond, 5 * kMillisecond, sched, &queue);
  // Outside the window: exactly the base latency.
  SimTime latency = link.sample(rng);
  EXPECT_EQ(latency, kMillisecond);
  // Inside the window: base plus uniform extra in [0, max_extra].
  queue.schedule_at(150, [&] {
    bool saw_extra = false;
    for (int i = 0; i < 64; ++i) {
      latency = link.sample(rng);
      EXPECT_GE(latency, kMillisecond);
      EXPECT_LE(latency, 6 * kMillisecond);
      saw_extra = saw_extra || latency != kMillisecond;
    }
    EXPECT_TRUE(saw_extra);
  });
  queue.run();
}

TEST(DuplicateChannel, CertainDuplicationDoublesDeliveries) {
  Rng rng(32);
  DuplicateChannel channel(std::make_unique<PerfectChannel>(), 1.0);
  EXPECT_EQ(channel.deliveries(rng), 2u);
  // A lossless channel with p=0 never duplicates.
  DuplicateChannel quiet(std::make_unique<PerfectChannel>(), 0.0);
  EXPECT_EQ(quiet.deliveries(rng), 1u);
}

TEST(DuplicateChannel, ScheduleGatesDuplication) {
  EventQueue queue;
  Rng rng(33);
  auto sched = std::make_shared<FaultSchedule>();
  sched->add_window(10, 20);
  DuplicateChannel channel(std::make_unique<PerfectChannel>(), 1.0, sched,
                           &queue);
  std::vector<std::size_t> copies;
  queue.schedule_at(5, [&] { copies.push_back(channel.deliveries(rng)); });
  queue.schedule_at(15, [&] { copies.push_back(channel.deliveries(rng)); });
  queue.schedule_at(25, [&] { copies.push_back(channel.deliveries(rng)); });
  queue.run();
  EXPECT_EQ(copies, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(BlackoutChannel, DropsEverythingInsideWindowOnly) {
  EventQueue queue;
  Rng rng(34);
  auto sched = std::make_shared<FaultSchedule>();
  sched->add_window(10, 20);
  BlackoutChannel channel(std::make_unique<PerfectChannel>(), sched, queue);
  std::vector<std::size_t> copies;
  queue.schedule_at(15, [&] { copies.push_back(channel.deliveries(rng)); });
  queue.schedule_at(25, [&] { copies.push_back(channel.deliveries(rng)); });
  queue.run();
  EXPECT_EQ(copies, (std::vector<std::size_t>{0, 1}));
}

TEST(Medium, DuplicatedFramesCountAsExtraAirtime) {
  EventQueue q;
  Rng rng(35);
  Medium medium(q, rng);
  int received = 0;
  medium.attach([&](const wire::Packet&, SimTime) { ++received; },
                std::make_unique<DuplicateChannel>(
                    std::make_unique<PerfectChannel>(), 1.0));
  const wire::Packet p{make_announce(1, 1)};
  medium.broadcast(p);
  q.run();
  // The receiver sees both copies, and the duplicate consumed airtime
  // attributed to the original sender exactly like the first copy.
  EXPECT_EQ(received, 2);
  EXPECT_EQ(medium.duplicated_frames(), 1u);
  EXPECT_EQ(medium.bits_sent_by(1), 2 * wire::wire_bits(p));
  EXPECT_EQ(medium.total_bits(), 2 * wire::wire_bits(p));
  EXPECT_EQ(medium.metrics().count("medium.frames_duplicated"), 1u);
}

TEST(Medium, JitterReordersBackToBackFrames) {
  EventQueue q;
  Rng rng(36);
  Medium medium(q, rng);
  std::vector<std::uint32_t> arrivals;
  medium.attach(
      [&](const wire::Packet& packet, SimTime) {
        arrivals.push_back(std::get<wire::MacAnnounce>(packet).interval);
      },
      std::make_unique<PerfectChannel>(),
      std::make_unique<JitterLink>(kMillisecond, 20 * kMillisecond));
  for (std::uint32_t i = 1; i <= 32; ++i) {
    q.run_until(q.now() + 10);
    medium.broadcast(wire::Packet{make_announce(1, i)});
  }
  q.run();
  ASSERT_EQ(arrivals.size(), 32u);
  // Jitter much wider than the 10 us inter-frame gap must reorder.
  EXPECT_FALSE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

}  // namespace
}  // namespace dap::sim
