// Unit tests for μTESLA: symmetric bootstrap, per-interval key
// disclosure, loss tolerance, and forgery resistance.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tesla/mutesla.h"

namespace dap::tesla {
namespace {

using common::Bytes;
using common::bytes_of;

MuTeslaConfig test_config() {
  MuTeslaConfig config;
  config.chain_length = 32;
  config.disclosure_delay = 2;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  return config;
}

sim::SimTime mid(std::uint32_t interval) {
  return (interval - 1) * sim::kSecond + sim::kSecond / 2;
}

TEST(MuTeslaBootstrap, SymmetricMacVerifies) {
  MuTeslaSender sender(test_config(), bytes_of("seed"));
  const Bytes master = bytes_of("pairwise-master-key");
  const auto bootstrap = sender.bootstrap_for(master);
  EXPECT_TRUE(verify_mutesla_bootstrap(bootstrap, master));
  EXPECT_FALSE(verify_mutesla_bootstrap(bootstrap, bytes_of("wrong-key")));
}

TEST(MuTeslaBootstrap, TamperRejected) {
  MuTeslaSender sender(test_config(), bytes_of("seed"));
  const Bytes master = bytes_of("pairwise-master-key");
  auto bootstrap = sender.bootstrap_for(master);
  bootstrap.commitment[0] ^= 1;
  EXPECT_FALSE(verify_mutesla_bootstrap(bootstrap, master));
}

TEST(MuTeslaSender, DataPacketHasNoPiggybackedKey) {
  MuTeslaSender sender(test_config(), bytes_of("seed"));
  const auto p = sender.make_packet(5, bytes_of("m"));
  EXPECT_TRUE(p.disclosed_key.empty());
  EXPECT_EQ(p.disclosed_interval, 0u);
}

TEST(MuTeslaSender, DisclosureScheduleRespectsDelay) {
  MuTeslaSender sender(test_config(), bytes_of("seed"));
  EXPECT_FALSE(sender.disclosure(1).has_value());
  EXPECT_FALSE(sender.disclosure(2).has_value());
  const auto d = sender.disclosure(3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->interval, 1u);
  EXPECT_EQ(d->key, sender.chain().key(1));
}

TEST(MuTeslaReceiver, AuthenticatesViaSeparateDisclosure) {
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  MuTeslaReceiver receiver(config, sender.chain().commitment(),
                           sim::LooseClock(0, 0));
  EXPECT_TRUE(
      receiver.receive(sender.make_packet(1, bytes_of("m1")), mid(1)).empty());
  const auto released = receiver.receive(*sender.disclosure(3), mid(3));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].interval, 1u);
  EXPECT_EQ(released[0].message, bytes_of("m1"));
}

TEST(MuTeslaReceiver, LostDisclosureRecoveredByLaterOne) {
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  MuTeslaReceiver receiver(config, sender.chain().commitment(),
                           sim::LooseClock(0, 0));
  (void)receiver.receive(sender.make_packet(1, bytes_of("m1")), mid(1));
  (void)receiver.receive(sender.make_packet(2, bytes_of("m2")), mid(2));
  // Disclosure of interval 3 (key 1) lost; disclosure at interval 4
  // carries key 2, which also proves key 1 via the chain.
  const auto released = receiver.receive(*sender.disclosure(4), mid(4));
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(receiver.latest_key_index(), 2u);
}

TEST(MuTeslaReceiver, MultiplePacketsPerInterval) {
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  MuTeslaReceiver receiver(config, sender.chain().commitment(),
                           sim::LooseClock(0, 0));
  (void)receiver.receive(sender.make_packet(1, bytes_of("a")), mid(1));
  (void)receiver.receive(sender.make_packet(1, bytes_of("b")), mid(1));
  (void)receiver.receive(sender.make_packet(1, bytes_of("c")), mid(1));
  const auto released = receiver.receive(*sender.disclosure(3), mid(3));
  EXPECT_EQ(released.size(), 3u);
}

TEST(MuTeslaReceiver, ForgedPacketRejectedAtDisclosure) {
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  MuTeslaReceiver receiver(config, sender.chain().commitment(),
                           sim::LooseClock(0, 0));
  wire::TeslaPacket forged;
  forged.sender = config.sender_id;
  forged.interval = 1;
  forged.message = bytes_of("evil");
  forged.mac = Bytes(10, 0x11);
  (void)receiver.receive(forged, mid(1));
  const auto released = receiver.receive(*sender.disclosure(3), mid(3));
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(receiver.stats().macs_rejected, 1u);
}

TEST(MuTeslaReceiver, UnsafePacketNotBuffered) {
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  MuTeslaReceiver receiver(config, sender.chain().commitment(),
                           sim::LooseClock(0, 0));
  (void)receiver.receive(sender.make_packet(1, bytes_of("late")), mid(5));
  EXPECT_EQ(receiver.stats().packets_unsafe, 1u);
  EXPECT_EQ(receiver.stats().buffered_now, 0u);
}

TEST(MuTeslaReceiver, ForgedDisclosureRejected) {
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  MuTeslaReceiver receiver(config, sender.chain().commitment(),
                           sim::LooseClock(0, 0));
  wire::KeyDisclosure forged;
  forged.sender = config.sender_id;
  forged.interval = 1;
  forged.key = Bytes(10, 0x22);
  (void)receiver.receive(forged, mid(3));
  EXPECT_EQ(receiver.stats().keys_rejected, 1u);
  EXPECT_EQ(receiver.latest_key_index(), 0u);
}

TEST(MuTeslaReceiver, DisclosureBandwidthLowerThanTesla) {
  // μTESLA's motivation: one disclosure per interval instead of a key in
  // every packet. With 5 packets per interval the per-interval overhead
  // must be strictly smaller.
  const auto config = test_config();
  MuTeslaSender sender(config, bytes_of("seed"));
  const std::size_t packets_per_interval = 5;
  const std::size_t mutesla_bits =
      packets_per_interval *
          wire::wire_bits(
              wire::Packet{sender.make_packet(5, bytes_of("m"))}) +
      wire::wire_bits(wire::Packet{*sender.disclosure(5)});

  TeslaConfig tesla_config;
  tesla_config.chain_length = 32;
  tesla_config.disclosure_delay = 2;
  TeslaSender tesla_sender(tesla_config, bytes_of("seed"));
  const std::size_t tesla_bits =
      packets_per_interval *
      wire::wire_bits(
          wire::Packet{tesla_sender.make_packet(5, bytes_of("m"))});
  EXPECT_LT(mutesla_bits, tesla_bits);
}

}  // namespace
}  // namespace dap::tesla
