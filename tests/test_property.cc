// Property-based tests: randomized round-trips, no-crash fuzzing of the
// wire decoders, and invariants sampled across parameter grids.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/codec.h"
#include "common/rng.h"
#include "crypto/keychain.h"
#include "game/ess.h"
#include "game/optimizer.h"
#include "sim/shaper.h"
#include "tesla/buffer.h"
#include "wire/frame.h"
#include "wire/packet.h"

namespace dap {
namespace {

using common::Bytes;
using common::Rng;

Bytes random_blob(Rng& rng, std::size_t max_len) {
  return rng.bytes(rng.uniform(0, max_len));
}

wire::Packet random_packet(Rng& rng) {
  switch (rng.uniform(0, 5)) {
    case 0: {
      wire::TeslaPacket p;
      p.sender = static_cast<wire::NodeId>(rng.next_u64());
      p.interval = static_cast<std::uint32_t>(rng.next_u64());
      p.message = random_blob(rng, 300);
      p.mac = random_blob(rng, 32);
      p.disclosed_interval = static_cast<std::uint32_t>(rng.next_u64());
      p.disclosed_key = random_blob(rng, 32);
      return p;
    }
    case 1: {
      wire::MacAnnounce p;
      p.sender = static_cast<wire::NodeId>(rng.next_u64());
      p.interval = static_cast<std::uint32_t>(rng.next_u64());
      p.mac = random_blob(rng, 32);
      return p;
    }
    case 2: {
      wire::MessageReveal p;
      p.sender = static_cast<wire::NodeId>(rng.next_u64());
      p.interval = static_cast<std::uint32_t>(rng.next_u64());
      p.message = random_blob(rng, 300);
      p.key = random_blob(rng, 32);
      return p;
    }
    case 3: {
      wire::KeyDisclosure p;
      p.sender = static_cast<wire::NodeId>(rng.next_u64());
      p.interval = static_cast<std::uint32_t>(rng.next_u64());
      p.key = random_blob(rng, 32);
      return p;
    }
    case 4: {
      wire::CdmPacket p;
      p.sender = static_cast<wire::NodeId>(rng.next_u64());
      p.high_interval = static_cast<std::uint32_t>(rng.next_u64());
      p.low_commitment = random_blob(rng, 32);
      p.next_cdm_image = random_blob(rng, 32);
      p.mac = random_blob(rng, 32);
      p.disclosed_high_key = random_blob(rng, 32);
      return p;
    }
    default: {
      wire::BootstrapPacket p;
      p.sender = static_cast<wire::NodeId>(rng.next_u64());
      p.start_interval = static_cast<std::uint32_t>(rng.next_u64());
      p.interval_duration_us = rng.next_u64();
      p.commitment = random_blob(rng, 32);
      p.signature = random_blob(rng, 400);
      p.signer_public_key = random_blob(rng, 64);
      return p;
    }
  }
}

// ----------------------------------------------------------- wire fuzzing

TEST(Property, RandomPacketsRoundTrip) {
  Rng rng(1001);
  for (int i = 0; i < 1000; ++i) {
    const wire::Packet original = random_packet(rng);
    const auto decoded = wire::decode(wire::encode(original));
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(decoded->index(), original.index());
    EXPECT_TRUE(wire::encode(*decoded) == wire::encode(original))
        << "iteration " << i;
  }
}

TEST(Property, RandomPacketsFrameRoundTrip) {
  Rng rng(1002);
  for (int i = 0; i < 500; ++i) {
    const wire::Packet original = random_packet(rng);
    const auto decoded = wire::deframe(wire::frame(original));
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_TRUE(wire::encode(*decoded) == wire::encode(original));
  }
}

TEST(Property, DecodeNeverCrashesOnGarbage) {
  Rng rng(1003);
  int decoded_count = 0;
  for (int i = 0; i < 5000; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(0, 200));
    const auto packet = wire::decode(junk);
    if (packet) ++decoded_count;
    const auto framed = wire::deframe(junk);
    // CRC makes random garbage essentially never deframe.
    EXPECT_FALSE(framed.has_value());
  }
  // Random bytes occasionally parse as a packet shape (no CRC inside
  // decode), but it must stay rare.
  EXPECT_LT(decoded_count, 100);
}

TEST(Property, TruncatedEncodingsNeverDecode) {
  Rng rng(1004);
  for (int i = 0; i < 200; ++i) {
    const Bytes encoded = wire::encode(random_packet(rng));
    const auto cut = rng.uniform(1, encoded.size() - 1);
    EXPECT_FALSE(
        wire::decode(common::ByteView(encoded.data(), cut)).has_value());
  }
}

TEST(Property, BitflippedFramesNeverDeframe) {
  Rng rng(1005);
  for (int i = 0; i < 300; ++i) {
    Bytes framed = wire::frame(random_packet(rng));
    const auto byte = rng.uniform(0, framed.size() - 1);
    const auto bit = rng.uniform(0, 7);
    framed[byte] = static_cast<std::uint8_t>(framed[byte] ^ (1u << bit));
    EXPECT_FALSE(wire::deframe(framed).has_value()) << "iteration " << i;
  }
}

// ------------------------------------------------------------- key chains

TEST(Property, RandomChainsVerifyEverywhere) {
  Rng rng(1006);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t length = rng.uniform(1, 64);
    const std::size_t key_size = rng.uniform(4, 32);
    const crypto::KeyChain chain(rng.bytes(16), length,
                                 crypto::PrfDomain::kChainStep, key_size);
    const std::size_t i = rng.uniform(1, length);
    const std::size_t anchor = rng.uniform(0, i - 1);
    EXPECT_TRUE(chain.verify_key(i, chain.key(i), anchor, chain.key(anchor)));
    Bytes forged = chain.key(i);
    forged[rng.uniform(0, forged.size() - 1)] ^= 0x01;
    EXPECT_FALSE(
        chain.verify_key(i, forged, anchor, chain.key(anchor)));
  }
}

TEST(Property, TwoLevelDerivationConsistentAcrossShapes) {
  Rng rng(1007);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t high = rng.uniform(2, 8);
    const std::size_t low = rng.uniform(1, 10);
    const auto link = rng.bernoulli(0.5) ? crypto::LevelLink::kOriginal
                                         : crypto::LevelLink::kEftp;
    const crypto::TwoLevelKeyChain chain(rng.bytes(16), high, low, link);
    const auto i = rng.uniform(1, high);
    const auto j = rng.uniform(0, low);
    EXPECT_EQ(crypto::derive_low_key(chain.low_anchor(i), i, j, low,
                                     chain.key_size()),
              chain.low_key(i, j));
  }
}

// -------------------------------------------------------------- reservoir

TEST(Property, ReservoirUniformAcrossRandomShapes) {
  Rng rng(1008);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t m = rng.uniform(1, 6);
    const std::size_t n = m + rng.uniform(1, 20);
    const int rounds = 4000;
    std::map<std::size_t, int> survival;
    for (int r = 0; r < rounds; ++r) {
      tesla::ReservoirBuffer<std::size_t> buffer(m);
      for (std::size_t k = 0; k < n; ++k) buffer.offer(k, rng);
      for (std::size_t kept : buffer.contents()) ++survival[kept];
    }
    const double expected =
        static_cast<double>(m) / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(static_cast<double>(survival[k]) / rounds, expected, 0.05)
          << "m=" << m << " n=" << n << " item " << k;
    }
  }
}

// ------------------------------------------------------------------- game

TEST(Property, EssIsAlwaysFixedPointAndInSimplex) {
  Rng rng(1009);
  for (int trial = 0; trial < 200; ++trial) {
    const double p = 0.05 + 0.94 * rng.next_double();
    const std::size_t m = rng.uniform(1, 100);
    const auto g = game::GameParams::paper_defaults(p, m);
    const auto ess = game::solve_ess(g);
    EXPECT_GE(ess.point.x, 0.0);
    EXPECT_LE(ess.point.x, 1.0);
    EXPECT_GE(ess.point.y, 0.0);
    EXPECT_LE(ess.point.y, 1.0);
    const auto d = game::replicator_field(g, ess.point.x, ess.point.y);
    EXPECT_NEAR(d.dx, 0.0, 1e-7) << "p=" << p << " m=" << m;
    EXPECT_NEAR(d.dy, 0.0, 1e-7) << "p=" << p << " m=" << m;
  }
}

TEST(Property, RandomStartsConvergeToClassifiedEss) {
  // Sampled global-attractor check with RK4 from random interior starts.
  Rng rng(1010);
  for (int trial = 0; trial < 12; ++trial) {
    const double p = 0.3 + 0.65 * rng.next_double();
    const std::size_t m = rng.uniform(1, 80);
    const auto g = game::GameParams::paper_defaults(p, m);
    const auto ess = game::solve_ess(g);
    game::IntegrationOptions options;
    options.method = game::Integrator::kRk4;
    // Track the true ODE: the paper-faithful clamp makes the simplex
    // edges absorbing under discrete overshoot (documented artifact).
    options.boundary = game::Boundary::kInteriorPreserving;
    options.dt = 0.01;
    options.max_steps = 3000000;
    options.convergence_eps = 1e-13;
    options.record_every = 0;
    const game::State start{0.05 + 0.9 * rng.next_double(),
                            0.05 + 0.9 * rng.next_double()};
    const auto traj = game::integrate(g, start, options);
    // Near regime boundaries convergence is slow; accept loose landing.
    EXPECT_NEAR(traj.final.x, ess.point.x, 2e-2)
        << "p=" << p << " m=" << m << " start=(" << start.x << ","
        << start.y << ")";
    EXPECT_NEAR(traj.final.y, ess.point.y, 2e-2)
        << "p=" << p << " m=" << m;
  }
}

TEST(Property, RandomPayoffMatricesConvergeToClosedFormEss) {
  // Satellite of the game-loop PR: the closed-form ESS must be the
  // attractor not just at the paper's constants but across randomized
  // payoff matrices (Ra, k1, k2, xa, m) under BOTH success models —
  // the paper's P = p^m and the reservoir P = max(0, 1 - m(1-p)) the
  // online oracle uses.
  Rng rng(1011);
  for (int trial = 0; trial < 10; ++trial) {
    game::GameParams g;
    g.Ra = 50.0 + 350.0 * rng.next_double();
    g.k1 = 5.0 + (0.8 * g.Ra - 5.0) * rng.next_double();  // keeps Ra > k1
    g.k2 = 0.5 + 19.5 * rng.next_double();
    g.xa = 0.1 + 0.85 * rng.next_double();
    g.m = rng.uniform(1, 40);
    g.success_model = trial % 2 == 0 ? game::SuccessModel::kPaperPower
                                     : game::SuccessModel::kReservoir;
    game::GameParams::validate(g);
    const auto ess = game::solve_ess(g);
    game::IntegrationOptions options;
    options.method = game::Integrator::kRk4;
    options.boundary = game::Boundary::kInteriorPreserving;
    options.dt = 0.01;
    options.max_steps = 3000000;
    options.convergence_eps = 1e-13;
    options.record_every = 0;
    const game::State start{0.05 + 0.9 * rng.next_double(),
                            0.05 + 0.9 * rng.next_double()};
    const auto traj = game::integrate(g, start, options);
    EXPECT_NEAR(traj.final.x, ess.point.x, 2e-2)
        << "Ra=" << g.Ra << " k1=" << g.k1 << " k2=" << g.k2
        << " xa=" << g.xa << " m=" << g.m << " model="
        << (g.success_model == game::SuccessModel::kReservoir ? "reservoir"
                                                              : "power")
        << " start=(" << start.x << "," << start.y << ")";
    EXPECT_NEAR(traj.final.y, ess.point.y, 2e-2)
        << "Ra=" << g.Ra << " k1=" << g.k1 << " k2=" << g.k2
        << " xa=" << g.xa << " m=" << g.m;
  }
}

TEST(Property, CostsAreFiniteAndBoundedAcrossGrid) {
  for (double p = 0.05; p < 1.0; p += 0.05) {
    for (std::size_t m = 1; m <= 100; m += 9) {
      const auto g = game::GameParams::paper_defaults(p, m);
      const double cost = game::defense_cost(g);
      EXPECT_TRUE(std::isfinite(cost));
      EXPECT_GE(cost, 0.0);
      EXPECT_LE(cost, g.k2 * static_cast<double>(m) + g.Ra + 1e-9);
    }
  }
}

// ----------------------------------------------------------- token bucket

TEST(Property, TokenBucketNeverExceedsRatePlusBurst) {
  Rng rng(1011);
  for (int trial = 0; trial < 10; ++trial) {
    const double rate = 100.0 + rng.next_double() * 10000.0;
    const double burst = 64.0 + rng.next_double() * 1000.0;
    sim::TokenBucket bucket(rate, burst);
    double sent = 0;
    sim::SimTime now = 0;
    const sim::SimTime horizon = 5 * sim::kSecond;
    while (now < horizon) {
      const auto bits = rng.uniform(1, 256);
      if (bucket.try_consume(bits, now)) sent += static_cast<double>(bits);
      now += rng.uniform(0, 20 * sim::kMillisecond);
    }
    const double seconds =
        static_cast<double>(now) / static_cast<double>(sim::kSecond);
    EXPECT_LE(sent, rate * seconds + burst + 256.0)
        << "rate=" << rate << " burst=" << burst;
  }
}

}  // namespace
}  // namespace dap

// ---------------------------------------------------------- determinism

#include "analysis/figures.h"
#include "analysis/montecarlo.h"
#include "core/coevolution.h"

namespace dap {
namespace {

TEST(Property, MonteCarloRunsAreBitReproducible) {
  analysis::MonteCarloConfig config;
  config.p = 0.8;
  config.m = 4;
  config.trials = 400;
  config.seed = 4242;
  const auto a = analysis::measure_attack_success(config);
  const auto b = analysis::measure_attack_success(config);
  EXPECT_EQ(a.measured_attack_success, b.measured_attack_success);
  EXPECT_EQ(a.wilson_lo, b.wilson_lo);
}

TEST(Property, CoevolutionRunsAreBitReproducible) {
  const auto g = game::GameParams::paper_defaults(0.8, 20);
  core::CoevolutionConfig config;
  config.defenders = 200;
  config.attackers = 200;
  core::CoevolutionSim a(config, g, common::Rng(7));
  core::CoevolutionSim b(config, g, common::Rng(7));
  const auto ta = a.run(500);
  const auto tb = b.run(500);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].x, tb[i].x);
    EXPECT_EQ(ta[i].y, tb[i].y);
  }
}

TEST(Property, FigureSeriesAreDeterministic) {
  const auto a = analysis::fig6_regime_scan(0.8, 20);
  const auto b = analysis::fig6_regime_scan(0.8, 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].simulated.x, b[i].simulated.x);
    EXPECT_EQ(a[i].simulated.y, b[i].simulated.y);
    EXPECT_EQ(a[i].steps, b[i].steps);
  }
}

}  // namespace
}  // namespace dap
