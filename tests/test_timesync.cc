// Tests for the loose time-synchronization handshake and its integration
// with the TESLA safety check.

#include <gtest/gtest.h>

#include "tesla/timesync.h"

namespace dap::tesla {
namespace {

using common::bytes_of;
using sim::kMillisecond;
using sim::kSecond;

TEST(TimeSync, HandshakeProducesValidCalibration) {
  TimeSyncClient client(bytes_of("pairwise"), 1);
  TimeSyncResponder responder(bytes_of("pairwise"));

  // Receiver clock is 300 ms behind the sender; RTT 40 ms.
  const auto request = client.begin(/*local_now=*/1000 * kMillisecond);
  const auto response =
      responder.respond(request, /*sender_now=*/1320 * kMillisecond);
  const auto calibration =
      client.complete(response, /*local_now=*/1040 * kMillisecond);
  ASSERT_TRUE(calibration.has_value());
  EXPECT_EQ(calibration->uncertainty(), 40 * kMillisecond);

  // Upper bound is never below the true sender clock.
  // True sender clock at local 2000ms is 2300ms; bound must be >= that.
  const auto bound =
      calibration->upper_bound_sender_time(2000 * kMillisecond);
  EXPECT_GE(bound, 2300 * kMillisecond);
  // And tight: within the RTT of the truth.
  EXPECT_LE(bound, 2300 * kMillisecond + 40 * kMillisecond);
}

TEST(TimeSync, BoundGrowsWithLocalTime) {
  TimeSyncClient client(bytes_of("k"), 2);
  TimeSyncResponder responder(bytes_of("k"));
  const auto request = client.begin(0);
  const auto calibration =
      client.complete(responder.respond(request, 5 * kSecond), kSecond);
  ASSERT_TRUE(calibration.has_value());
  const auto at_2s = calibration->upper_bound_sender_time(2 * kSecond);
  const auto at_3s = calibration->upper_bound_sender_time(3 * kSecond);
  EXPECT_EQ(at_3s - at_2s, kSecond);
  // Queries before the response arrival clamp to arrival.
  EXPECT_EQ(calibration->upper_bound_sender_time(0),
            calibration->upper_bound_sender_time(kSecond));
}

TEST(TimeSync, PacketSafetyUsesBound) {
  TimeSyncClient client(bytes_of("k"), 3);
  TimeSyncResponder responder(bytes_of("k"));
  const sim::IntervalSchedule sched(0, kSecond);
  // Sender and receiver perfectly aligned, 10 ms RTT.
  const auto request = client.begin(500 * kMillisecond);
  const auto calibration = client.complete(
      responder.respond(request, 505 * kMillisecond), 510 * kMillisecond);
  ASSERT_TRUE(calibration.has_value());
  // Interval 1, d = 1: key disclosed at sender time 1000 ms. At local
  // 900 ms the bound is ~905 ms < 1000 ms: safe.
  EXPECT_TRUE(calibration->packet_safe(1, 1, 900 * kMillisecond, sched));
  // At local 996 ms the bound exceeds 1000 ms: unsafe.
  EXPECT_FALSE(calibration->packet_safe(1, 1, 996 * kMillisecond, sched));
}

TEST(TimeSync, RejectsForgedResponse) {
  TimeSyncClient client(bytes_of("k"), 4);
  TimeSyncResponder responder(bytes_of("k"));
  const auto request = client.begin(0);
  auto response = responder.respond(request, kSecond);
  // An attacker rewinds the claimed sender time to widen the window.
  response.sender_time = 0;
  EXPECT_FALSE(client.complete(response, kMillisecond).has_value());
  EXPECT_TRUE(client.pending());  // the handshake stays open
}

TEST(TimeSync, RejectsWrongKeyResponder) {
  TimeSyncClient client(bytes_of("key-a"), 5);
  TimeSyncResponder wrong(bytes_of("key-b"));
  const auto request = client.begin(0);
  EXPECT_FALSE(
      client.complete(wrong.respond(request, kSecond), kMillisecond)
          .has_value());
}

TEST(TimeSync, RejectsWrongNonceAndReplay) {
  TimeSyncClient client(bytes_of("k"), 6);
  TimeSyncResponder responder(bytes_of("k"));
  const auto first = client.begin(0);
  const auto first_response = responder.respond(first, kSecond);
  ASSERT_TRUE(client.complete(first_response, kMillisecond).has_value());
  // Replay after completion: no pending handshake.
  EXPECT_FALSE(client.complete(first_response, 2 * kSecond).has_value());
  // New handshake: the old response's nonce no longer matches.
  (void)client.begin(3 * kSecond);
  EXPECT_FALSE(
      client.complete(first_response, 3 * kSecond + kMillisecond)
          .has_value());
}

TEST(TimeSync, RejectsResponseBeforeRequest) {
  TimeSyncClient client(bytes_of("k"), 7);
  TimeSyncResponder responder(bytes_of("k"));
  const auto request = client.begin(5 * kSecond);
  EXPECT_FALSE(client.complete(responder.respond(request, kSecond), kSecond)
                   .has_value());
}

TEST(TimeSync, RejectsEmptyKeys) {
  EXPECT_THROW(TimeSyncClient({}, 1), std::invalid_argument);
  EXPECT_THROW(TimeSyncResponder({}), std::invalid_argument);
}

TEST(TimeSync, NoncesVaryAcrossHandshakes) {
  TimeSyncClient client(bytes_of("k"), 8);
  const auto a = client.begin(0);
  const auto b = client.begin(kSecond);
  EXPECT_NE(a.nonce, b.nonce);
}

TEST(TimeSync, CalibrationNeverUnderestimatesSenderClock) {
  // Property: for any true offset and RTT split, the bound covers the
  // real sender clock.
  common::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const auto offset = rng.uniform(0, 2 * kSecond);  // sender ahead
    const auto out_delay = rng.uniform(0, 100 * kMillisecond);
    const auto back_delay = rng.uniform(0, 100 * kMillisecond);
    TimeSyncClient client(bytes_of("k"),
                          static_cast<std::uint64_t>(10 + trial));
    TimeSyncResponder responder(bytes_of("k"));
    const sim::SimTime t0 = kSecond;
    const auto request = client.begin(t0);
    const sim::SimTime sender_at_reply = t0 + out_delay + offset;
    const auto calibration = client.complete(
        responder.respond(request, sender_at_reply),
        t0 + out_delay + back_delay);
    ASSERT_TRUE(calibration.has_value());
    const sim::SimTime query = 10 * kSecond;
    const sim::SimTime true_sender_clock = query + offset;
    EXPECT_GE(calibration->upper_bound_sender_time(query),
              true_sender_clock);
    EXPECT_LE(calibration->upper_bound_sender_time(query),
              true_sender_clock + calibration->uncertainty());
  }
}

}  // namespace
}  // namespace dap::tesla
