// Tests for the deterministic parallel execution engine: SplitMix
// sub-seed derivation, telemetry shard merging, work distribution, and
// the headline guarantee — experiment outputs bitwise identical at any
// thread count. These are the tests the TSan CI job runs under
// `ctest -L test_parallel`.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/chaos.h"
#include "analysis/montecarlo.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "game/ess.h"
#include "game/optimizer.h"
#include "game/params.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"

namespace dap {
namespace {

// Pins the process default thread count for one test body, restoring
// the unpinned default afterwards.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) { common::set_default_threads(n); }
  ~ThreadGuard() { common::set_default_threads(0); }
};

// ------------------------------------------------------------- sub-seeds

TEST(Subseed, DeterministicAndFixedForAllTime) {
  EXPECT_EQ(common::subseed(42, 0), common::subseed(42, 0));
  EXPECT_EQ(common::subseed(42, 7), common::subseed(42, 7));
  // The mapping is part of the reproducibility contract: pin one value
  // so accidental algorithm changes fail loudly.
  const std::uint64_t pinned = common::subseed(42, 0);
  EXPECT_EQ(common::subseed(42, 0), pinned);
  EXPECT_NE(pinned, 0u);
}

TEST(Subseed, DistinctAcrossIndicesAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull, ~0ull}) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.insert(common::subseed(base, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);  // no collisions in a small window
}

// ------------------------------------------------------- basic execution

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 5u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    common::parallel_for(
        hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); },
        {.threads = threads});
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroAndOneItemEdgeCases) {
  int calls = 0;
  common::parallel_for(0, [&calls](std::size_t) { ++calls; }, {.threads = 8});
  EXPECT_EQ(calls, 0);
  common::parallel_for(1, [&calls](std::size_t) { ++calls; }, {.threads = 8});
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, SlotsMatchIndices) {
  const auto out = common::parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; }, {.threads = 4});
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ParallelFor, NestedCallsRunInline) {
  std::atomic<int> inner_total{0};
  common::parallel_for(
      4,
      [&inner_total](std::size_t) {
        EXPECT_TRUE(common::in_parallel_region());
        common::parallel_for(
            8, [&inner_total](std::size_t) { inner_total.fetch_add(1); },
            {.threads = 8});
      },
      {.threads = 2});
  EXPECT_FALSE(common::in_parallel_region());
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ParallelFor, RapidSmallJobsJoinSafely) {
  // Regression for the join race: with tiny bodies the caller often
  // drains every chunk before the pool workers wake, and a late-waking
  // worker must not be able to claim (and then touch) a job whose
  // parallel_for already returned and destroyed its stack frame. Each
  // iteration writes through the job-local vector so a stale claim
  // shows up as a TSan race / crash rather than passing silently.
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::atomic<int>> hits(4);
    common::parallel_for(
        hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); },
        {.threads = 4, .grain = 1});
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, FirstExceptionPropagates) {
  EXPECT_THROW(common::parallel_for(
                   64,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   },
                   {.threads = 4}),
               std::runtime_error);
}

TEST(DefaultThreads, OverrideWinsAndClears) {
  common::set_default_threads(3);
  EXPECT_EQ(common::default_threads(), 3u);
  common::set_default_threads(0);
  EXPECT_GE(common::default_threads(), 1u);
}

// ------------------------------------------------------- telemetry merge

TEST(RegistryMerge, CountersGaugesRatesHistograms) {
  obs::Registry a;
  obs::Registry b;
  a.add(a.counter("c"), 3);
  b.add(b.counter("c"), 4);
  b.add(b.counter("only_b"), 7);
  a.set(a.gauge("g"), 1.0);
  b.set(b.gauge("g"), 2.5);
  a.mark(a.rate("r"), true);
  b.mark(b.rate("r"), false);
  b.mark(b.rate("r"), true);
  a.observe(a.histogram("h"), 10.0);
  b.observe(b.histogram("h"), 20.0);
  b.observe(b.histogram("h"), 30.0);

  a.merge_from(b);
  EXPECT_EQ(a.value(a.counter("c")), 7u);
  EXPECT_EQ(a.value(a.counter("only_b")), 7u);
  EXPECT_EQ(a.value(a.gauge("g")), 2.5);  // last writer wins
  EXPECT_EQ(a.value(a.rate("r")).trials(), 3u);
  EXPECT_EQ(a.value(a.rate("r")).successes(), 2u);
  const auto& h = a.value(a.histogram("h"));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(RegistryMerge, UnwrittenGaugeDoesNotClobber) {
  obs::Registry global_like;
  obs::Registry shard;
  global_like.set(global_like.gauge("g"), 4.0);
  // The shard registered the gauge (as make_telemetry-style resolution
  // does) but never set it: the merge must keep the destination value.
  shard.gauge("g");
  shard.add(shard.counter("c"), 1);
  global_like.merge_from(shard);
  EXPECT_EQ(global_like.value(global_like.gauge("g")), 4.0);
  // A written 0 is still a real write and does override.
  shard.set(shard.gauge("g"), 0.0);
  global_like.merge_from(shard);
  EXPECT_EQ(global_like.value(global_like.gauge("g")), 0.0);
}

TEST(RegistryMerge, HistogramBucketCountsAreExact) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  for (int i = 1; i <= 100; ++i) a.add(i);
  for (int i = 101; i <= 200; ++i) b.add(i);
  obs::LatencyHistogram whole;
  for (int i = 1; i <= 200; ++i) whole.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(a.p50(), whole.p50());
  EXPECT_DOUBLE_EQ(a.p99(), whole.p99());
}

TEST(RegistryMerge, ThreadOverrideRedirectsGlobal) {
  obs::Registry shard;
  obs::Registry* prev = obs::Registry::set_thread_override(&shard);
  obs::Registry::global().add(
      obs::Registry::global().counter("override_probe"));
  obs::Registry::set_thread_override(prev);
  EXPECT_EQ(shard.value(shard.counter("override_probe")), 1u);
  // The real global never saw the increment.
  auto& global = obs::Registry::global();
  EXPECT_EQ(global.value(global.counter("override_probe")), 0u);
}

TEST(ParallelFor, ShardCountersSumIntoGlobal) {
  auto& global = obs::Registry::global();
  const auto handle = global.counter("parallel_test.shard_sum");
  const std::uint64_t before = global.value(handle);
  common::parallel_for(
      100,
      [](std::size_t) {
        auto& reg = obs::Registry::global();  // the shard, inside the pool
        reg.add(reg.counter("parallel_test.shard_sum"));
      },
      {.threads = 4});
  EXPECT_EQ(global.value(handle), before + 100);
}

// ---------------------------------------------- end-to-end determinism
//
// The container running CI may expose a single core; oversubscribed
// worker threads still exercise cross-thread handoff and the shard
// merge, so these determinism checks are valid at any core count.

TEST(Determinism, MonteCarloIdenticalAcrossThreadCounts) {
  analysis::MonteCarloConfig config;
  config.trials = 400;
  config.seed = 99;
  std::vector<analysis::MonteCarloResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ThreadGuard guard(threads);
    results.push_back(analysis::measure_attack_success(config));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    // Bitwise equality, not tolerance: same trials, same outcomes.
    EXPECT_EQ(results[i].measured_attack_success,
              results[0].measured_attack_success);
    EXPECT_EQ(results[i].wilson_lo, results[0].wilson_lo);
    EXPECT_EQ(results[i].wilson_hi, results[0].wilson_hi);
    EXPECT_EQ(results[i].trials, results[0].trials);
  }
}

TEST(Determinism, CostCurveIdenticalAcrossThreadCounts) {
  const auto base = game::GameParams::paper_defaults(0.9, 1);
  std::vector<std::vector<game::CostAtEss>> curves;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ThreadGuard guard(threads);
    curves.push_back(game::cost_curve(base, 24));
  }
  for (std::size_t i = 1; i < curves.size(); ++i) {
    ASSERT_EQ(curves[i].size(), curves[0].size());
    for (std::size_t m = 0; m < curves[0].size(); ++m) {
      EXPECT_EQ(curves[i][m].cost, curves[0][m].cost) << "m=" << m + 1;
      EXPECT_EQ(curves[i][m].ess.kind, curves[0][m].ess.kind);
      EXPECT_EQ(curves[i][m].ess.point.x, curves[0][m].ess.point.x);
      EXPECT_EQ(curves[i][m].ess.point.y, curves[0][m].ess.point.y);
    }
  }
}

TEST(Determinism, ChaosSoaksIdenticalAcrossThreadCounts) {
  std::vector<analysis::ChaosConfig> configs(3);
  configs[0].seed = 7;
  configs[1].seed = 11;
  configs[1].mix.jitter = true;
  configs[2].seed = 23;
  configs[2].mix.clock_drift = true;
  for (auto& c : configs) {
    c.receivers = 2;
    c.chain_length = 24;
    c.fault_from = 6;
    c.fault_until = 10;
    c.reconverge_within = 10;
  }
  std::vector<std::vector<analysis::ChaosReport>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ThreadGuard guard(threads);
    runs.push_back(analysis::run_chaos_soaks(configs));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].size(), runs[0].size());
    for (std::size_t s = 0; s < runs[0].size(); ++s) {
      EXPECT_EQ(runs[i][s].forged_accepted_total,
                runs[0][s].forged_accepted_total);
      EXPECT_EQ(runs[i][s].all_reconverged, runs[0][s].all_reconverged);
      EXPECT_EQ(runs[i][s].total_intervals, runs[0][s].total_intervals);
      ASSERT_EQ(runs[i][s].dap.size(), runs[0][s].dap.size());
      for (std::size_t r = 0; r < runs[0][s].dap.size(); ++r) {
        EXPECT_EQ(runs[i][s].dap[r].authenticated,
                  runs[0][s].dap[r].authenticated);
        EXPECT_EQ(runs[i][s].teslapp[r].authenticated,
                  runs[0][s].teslapp[r].authenticated);
      }
    }
  }
}

TEST(Determinism, TelemetryExportBytesIdenticalAcrossThreadCounts) {
  // The full serialized telemetry surface — metrics JSON (counters,
  // gauges, rates, histogram buckets), the snapshot stream, and the
  // trace JSONL — must be byte-identical at any thread count, not just
  // numerically close. Registry updates run against a private registry
  // via a thread override (shards merge into the override because the
  // merge runs on the calling thread). The tracer must be the *process*
  // global, sized and enabled before the fan-out, because worker
  // threads copy its enabled state when they create their shards —
  // exactly the bench setup.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_capacity(512);
  tracer.enable(true);
  auto run = [&tracer](std::size_t threads) {
    tracer.clear();
    obs::Registry local;
    obs::Registry* prev_reg = obs::Registry::set_thread_override(&local);
    common::parallel_for(
        96,
        [](std::size_t i) {
          auto& reg = obs::Registry::global();
          reg.add(reg.counter("ptest.items"));
          reg.mark(reg.rate("ptest.auth"), i % 3 != 0);
          reg.observe(reg.histogram("ptest.latency_us"),
                      static_cast<double>(i % 7) * 10.0 + 1.0);
          obs::SpanEvent span;
          span.uid = static_cast<std::uint64_t>(i) + 1;
          span.trace = common::subseed(99, i);
          span.t_begin = i * 100;
          span.t_end = i * 100 + 40;
          span.node = static_cast<std::uint32_t>(i % 5);
          span.kind = obs::SpanKind::kVerify;
          span.tag = obs::SpanTag::kAuthOk;
          obs::Tracer::global().record_span(span);
        },
        {.threads = threads});
    obs::Registry::set_thread_override(prev_reg);

    obs::Snapshotter snap("ptest", 1000);
    snap.sample(local, 1000);
    std::ostringstream trace_out;
    tracer.export_jsonl(trace_out);
    return obs::metrics_json(local, -1.0) + snap.stream() + trace_out.str();
  };
  const std::string serial = run(1);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_NE(serial.find("\"ptest.items\": 96"), std::string::npos);
  EXPECT_NE(serial.find("\"span\":\"verify\""), std::string::npos);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
  tracer.clear();
  tracer.enable(false);
}

TEST(Determinism, MergedCountersIdenticalAcrossThreadCounts) {
  // The analytic outputs being identical is necessary but not
  // sufficient: the merged telemetry stream must agree too.
  analysis::MonteCarloConfig config;
  config.trials = 200;
  config.seed = 5;
  std::vector<std::uint64_t> prf_calls;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const ThreadGuard guard(threads);
    auto& global = obs::Registry::global();
    const auto handle = global.counter("crypto.prf_calls");
    const std::uint64_t before = global.value(handle);
    (void)analysis::measure_attack_success(config);
    prf_calls.push_back(global.value(handle) - before);
  }
  EXPECT_GT(prf_calls[0], 0u);
  EXPECT_EQ(prf_calls[1], prf_calls[0]);
  EXPECT_EQ(prf_calls[2], prf_calls[0]);
}

}  // namespace
}  // namespace dap
