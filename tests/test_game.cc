// Unit tests for the evolutionary game module: payoff matrix (Table II),
// replicator field (§V-D), ESS candidates and classification (§V-E),
// integrators, buffer optimisation (§V-F / Algorithm 3), and the
// bandwidth/memory models of §VI-A.

#include <gtest/gtest.h>

#include <cmath>

#include "game/bandwidth.h"
#include "game/ess.h"
#include "game/optimizer.h"
#include "game/params.h"
#include "game/replicator.h"

namespace dap::game {
namespace {

// ----------------------------------------------------------------- params

TEST(GameParams, PaperDefaults) {
  const auto g = GameParams::paper_defaults(0.8, 10);
  EXPECT_DOUBLE_EQ(g.Ra, 200.0);
  EXPECT_DOUBLE_EQ(g.k1, 20.0);
  EXPECT_DOUBLE_EQ(g.k2, 4.0);
  EXPECT_DOUBLE_EQ(g.p(), 0.8);
  EXPECT_NEAR(g.attack_success(), std::pow(0.8, 10), 1e-12);
}

TEST(GameParams, ValidationRejectsBadValues) {
  EXPECT_THROW((void)GameParams::paper_defaults(0.0, 4), std::invalid_argument);
  EXPECT_THROW((void)GameParams::paper_defaults(1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)GameParams::paper_defaults(0.5, 0), std::invalid_argument);
  GameParams g = GameParams::paper_defaults(0.5, 4);
  g.Ra = 10.0;  // violates Ra > k1
  EXPECT_THROW(GameParams::validate(g), std::invalid_argument);
  g = GameParams::paper_defaults(0.5, 4);
  g.k2 = -1.0;
  EXPECT_THROW(GameParams::validate(g), std::invalid_argument);
}

TEST(PayoffMatrix, MatchesTableII) {
  const auto g = GameParams::paper_defaults(0.8, 4);
  const double X = 0.5, Y = 0.25;
  const auto pm = payoff_matrix(g, X, Y);
  const double P = std::pow(0.8, 4);
  const double Cd = 4.0 * 4 * X;
  const double Ca = 20.0 * 0.8 * Y;
  EXPECT_DOUBLE_EQ(pm.defend_attack_d, -Cd - P * 200.0);
  EXPECT_DOUBLE_EQ(pm.defend_attack_a, P * 200.0 - Ca);
  EXPECT_DOUBLE_EQ(pm.defend_noattack_d, -Cd);
  EXPECT_DOUBLE_EQ(pm.defend_noattack_a, 0.0);
  EXPECT_DOUBLE_EQ(pm.nodefend_attack_d, -200.0);
  EXPECT_DOUBLE_EQ(pm.nodefend_attack_a, 200.0 - Ca);
  EXPECT_DOUBLE_EQ(pm.nodefend_noattack_d, 0.0);
  EXPECT_DOUBLE_EQ(pm.nodefend_noattack_a, 0.0);
}

// ------------------------------------------------------------- replicator

TEST(Replicator, FieldMatchesPaperExpressions) {
  const auto g = GameParams::paper_defaults(0.8, 10);
  const double X = 0.3, Y = 0.7;
  const double P = g.attack_success();
  const auto d = replicator_field(g, X, Y);
  EXPECT_NEAR(d.dx, X * (1 - X) * (200.0 * Y * (1 - P) - 4.0 * 10 * X),
              1e-12);
  EXPECT_NEAR(d.dy,
              Y * (1 - Y) * ((P - 1) * X * 200.0 + 200.0 - 20.0 * 0.8 * Y),
              1e-12);
}

TEST(Replicator, BoundariesAreInvariant) {
  const auto g = GameParams::paper_defaults(0.8, 10);
  for (double v : {0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(replicator_field(g, 0.0, v).dx, 0.0);
    EXPECT_DOUBLE_EQ(replicator_field(g, 1.0, v).dx, 0.0);
    EXPECT_DOUBLE_EQ(replicator_field(g, v, 0.0).dy, 0.0);
    EXPECT_DOUBLE_EQ(replicator_field(g, v, 1.0).dy, 0.0);
  }
}

TEST(Replicator, FixedPointHasZeroField) {
  const auto g = GameParams::paper_defaults(0.8, 30);
  const auto c = ess_candidates(g);
  const auto d = replicator_field(g, c.x_interior, c.y_interior);
  EXPECT_NEAR(d.dx, 0.0, 1e-9);
  EXPECT_NEAR(d.dy, 0.0, 1e-9);
}

TEST(Replicator, TrajectoryStaysInSimplex) {
  const auto g = GameParams::paper_defaults(0.8, 30);
  IntegrationOptions options;
  options.record_every = 1;
  options.max_steps = 50000;
  const auto traj = integrate(g, {0.5, 0.5}, options);
  for (const auto& s : traj.points) {
    EXPECT_GE(s.x, 0.0);
    EXPECT_LE(s.x, 1.0);
    EXPECT_GE(s.y, 0.0);
    EXPECT_LE(s.y, 1.0);
  }
}

TEST(Replicator, EulerAndRk4AgreeOnAttractor) {
  for (std::size_t m : {4u, 25u, 40u, 70u}) {
    const auto g = GameParams::paper_defaults(0.8, m);
    IntegrationOptions euler;
    euler.max_steps = 2000000;
    euler.convergence_eps = 1e-12;
    euler.record_every = 0;
    IntegrationOptions rk4 = euler;
    rk4.method = Integrator::kRk4;
    const auto a = integrate(g, {0.5, 0.5}, euler);
    const auto b = integrate(g, {0.5, 0.5}, rk4);
    EXPECT_NEAR(a.final.x, b.final.x, 5e-3) << "m=" << m;
    EXPECT_NEAR(a.final.y, b.final.y, 5e-3) << "m=" << m;
  }
}

TEST(Replicator, ConvergenceFlagSet) {
  const auto g = GameParams::paper_defaults(0.8, 4);
  IntegrationOptions options;
  options.max_steps = 1000000;
  options.record_every = 0;
  const auto traj = integrate(g, {0.5, 0.5}, options);
  EXPECT_TRUE(traj.converged);
  EXPECT_GT(traj.steps, 0u);
}

TEST(Replicator, InvalidInputsRejected) {
  const auto g = GameParams::paper_defaults(0.8, 4);
  IntegrationOptions options;
  EXPECT_THROW(integrate(g, {-0.1, 0.5}, options), std::invalid_argument);
  EXPECT_THROW(integrate(g, {0.5, 1.5}, options), std::invalid_argument);
  options.dt = 0.0;
  EXPECT_THROW(integrate(g, {0.5, 0.5}, options), std::invalid_argument);
}

TEST(Replicator, JacobianStableAtInteriorEss) {
  const auto g = GameParams::paper_defaults(0.8, 30);
  const auto ess = solve_ess(g);
  ASSERT_EQ(ess.kind, EssKind::kInterior);
  const auto j = jacobian_at(g, ess.point.x, ess.point.y);
  EXPECT_TRUE(j.stable());
  // Fig. 6(c) shows spiral convergence: complex eigenvalues.
  EXPECT_LT(j.discriminant(), 0.0);
}

TEST(Replicator, RecordEverySubsamples) {
  const auto g = GameParams::paper_defaults(0.8, 4);
  IntegrationOptions fine;
  fine.record_every = 1;
  fine.max_steps = 1000;
  fine.convergence_eps = 0.0;  // never converge; use all steps
  IntegrationOptions coarse = fine;
  coarse.record_every = 100;
  const auto a = integrate(g, {0.5, 0.5}, fine);
  const auto b = integrate(g, {0.5, 0.5}, coarse);
  EXPECT_GT(a.points.size(), 5 * b.points.size());
  EXPECT_NEAR(a.final.x, b.final.x, 1e-12);
}

// ------------------------------------------------------------------- ESS

TEST(Ess, CandidatesMatchClosedForms) {
  const auto g = GameParams::paper_defaults(0.8, 20);
  const auto c = ess_candidates(g);
  const double P = g.attack_success();
  const double denom = 20.0 * 4.0 * 20 * 0.8 + (1 - P) * (1 - P) * 40000.0;
  EXPECT_NEAR(c.y_at_x1, P * 200.0 / 16.0, 1e-12);
  EXPECT_NEAR(c.x_at_y1, (1 - P) * 200.0 / 80.0, 1e-12);
  EXPECT_NEAR(c.x_interior, (1 - P) * 40000.0 / denom, 1e-12);
  EXPECT_NEAR(c.y_interior, 4.0 * 20 * 200.0 / denom, 1e-12);
}

struct RegimeCase {
  std::size_t m;
  EssKind kind;
};

class EssRegimes : public ::testing::TestWithParam<RegimeCase> {};

TEST_P(EssRegimes, ClassifierMatchesPaperRegimesAtP08) {
  // Fig. 6: p = 0.8 regimes (1,1) for small m, (1,Y') next, interior,
  // then (X',1) for m >= 55.
  const auto g = GameParams::paper_defaults(0.8, GetParam().m);
  EXPECT_EQ(solve_ess(g).kind, GetParam().kind) << "m=" << GetParam().m;
}

INSTANTIATE_TEST_SUITE_P(
    P08, EssRegimes,
    ::testing::Values(RegimeCase{1, EssKind::kFullDefenseFullAttack},
                      RegimeCase{6, EssKind::kFullDefenseFullAttack},
                      RegimeCase{11, EssKind::kFullDefenseFullAttack},
                      RegimeCase{12, EssKind::kFullDefensePartialAttack},
                      RegimeCase{15, EssKind::kFullDefensePartialAttack},
                      RegimeCase{20, EssKind::kInterior},
                      RegimeCase{30, EssKind::kInterior},
                      RegimeCase{54, EssKind::kInterior},
                      RegimeCase{55, EssKind::kPartialDefenseFullAttack},
                      RegimeCase{100, EssKind::kPartialDefenseFullAttack}));

TEST(Ess, PointsLieInSimplex) {
  for (double p : {0.5, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    for (std::size_t m = 1; m <= 100; m += 7) {
      const auto ess = solve_ess(GameParams::paper_defaults(p, m));
      EXPECT_GE(ess.point.x, 0.0);
      EXPECT_LE(ess.point.x, 1.0);
      EXPECT_GE(ess.point.y, 0.0);
      EXPECT_LE(ess.point.y, 1.0);
    }
  }
}

TEST(Ess, FixedPointPropertyHolds) {
  // Whatever the classification, the returned point must be a fixed
  // point of the replicator dynamics.
  for (double p : {0.6, 0.8, 0.95}) {
    for (std::size_t m : {2u, 14u, 30u, 60u}) {
      const auto g = GameParams::paper_defaults(p, m);
      const auto ess = solve_ess(g);
      const auto d = replicator_field(g, ess.point.x, ess.point.y);
      EXPECT_NEAR(d.dx, 0.0, 1e-8) << "p=" << p << " m=" << m;
      EXPECT_NEAR(d.dy, 0.0, 1e-8) << "p=" << p << " m=" << m;
    }
  }
}

TEST(Ess, SimulationConvergesToClassifiedPoint) {
  // RK4 from (0.5, 0.5) must land on the classified ESS across regimes.
  // (m = 17..18 at p = 0.8 are excluded: there forward Euler — and the
  // paper's own simulation — sticks to the X=1 boundary; RK4 agrees with
  // the closed form, see EXPERIMENTS.md.)
  for (std::size_t m : {3u, 13u, 25u, 45u, 60u}) {
    const auto g = GameParams::paper_defaults(0.8, m);
    const auto ess = solve_ess(g);
    EXPECT_TRUE(verify_ess(g, ess)) << "m=" << m;
  }
}

TEST(Ess, HighAttackGivesUpRegime) {
  // p = 0.98, m = 50: defending fully is not worth it; the classifier
  // must pick (X', 1), where the defender cost saturates at Ra.
  const auto g = GameParams::paper_defaults(0.98, 50);
  const auto ess = solve_ess(g);
  EXPECT_EQ(ess.kind, EssKind::kPartialDefenseFullAttack);
  EXPECT_LT(ess.point.x, 1.0);
  EXPECT_DOUBLE_EQ(ess.point.y, 1.0);
  EXPECT_NEAR(defense_cost(g), g.Ra, 1e-9);
}

TEST(Ess, KindNamesAreDistinct) {
  EXPECT_STREQ(ess_kind_name(EssKind::kFullDefenseFullAttack), "(1,1)");
  EXPECT_STREQ(ess_kind_name(EssKind::kFullDefensePartialAttack), "(1,Y')");
  EXPECT_STREQ(ess_kind_name(EssKind::kInterior), "(X*,Y*)");
  EXPECT_STREQ(ess_kind_name(EssKind::kPartialDefenseFullAttack), "(X',1)");
  EXPECT_STREQ(ess_kind_name(EssKind::kNoDefenseFullAttack), "(0,1)");
}

// -------------------------------------------------------------- optimiser

TEST(Optimizer, CostFormulaAtKnownEss) {
  // At (1,1): E = k2*m + p^m * Ra.
  const auto g = GameParams::paper_defaults(0.8, 6);
  ASSERT_EQ(solve_ess(g).kind, EssKind::kFullDefenseFullAttack);
  EXPECT_NEAR(defense_cost(g), 4.0 * 6 + std::pow(0.8, 6) * 200.0, 1e-9);
}

TEST(Optimizer, NaiveCostFormula) {
  // N = k2*M + p^M * Ra * Y'(M), Y' clamped.
  const auto g = GameParams::paper_defaults(0.8, 1);
  const double pM = std::pow(0.8, 50);
  const double y_prime = std::min(1.0, pM * 200.0 / 16.0);
  EXPECT_NEAR(naive_cost(g, 50), 200.0 + pM * 200.0 * y_prime, 1e-9);
  EXPECT_THROW((void)naive_cost(g, 0), std::invalid_argument);
}

TEST(Optimizer, PaperInteriorPicksSmallestInteriorM) {
  const auto g = GameParams::paper_defaults(0.8, 1);
  const auto result = optimize_m(g, OptimizeMode::kPaperInterior);
  EXPECT_EQ(result.ess.kind, EssKind::kInterior);
  EXPECT_EQ(result.m, 17u);  // first interior m at p = 0.8
  // No smaller m is interior.
  for (std::size_t m = 1; m < result.m; ++m) {
    EXPECT_NE(solve_ess(GameParams::paper_defaults(0.8, m)).kind,
              EssKind::kInterior);
  }
}

TEST(Optimizer, OptimalMIncreasesWithAttackLevel) {
  std::size_t previous = 0;
  for (double p : {0.6, 0.7, 0.8, 0.85, 0.9, 0.93}) {
    const auto result = optimize_m(GameParams::paper_defaults(p, 1),
                                   OptimizeMode::kPaperInterior);
    EXPECT_GE(result.m, previous) << "p=" << p;
    previous = result.m;
  }
}

TEST(Optimizer, GiveUpRegimeBeyondCriticalP) {
  // Fig. 7: beyond p ~ 0.94 no m <= 50 reaches an interior ESS; the
  // mechanism maxes out the buffers and the ESS becomes (X', 1).
  const auto low = optimize_m(GameParams::paper_defaults(0.93, 1),
                              OptimizeMode::kPaperInterior);
  EXPECT_EQ(low.ess.kind, EssKind::kInterior);
  EXPECT_LT(low.m, 50u);
  const auto high = optimize_m(GameParams::paper_defaults(0.96, 1),
                               OptimizeMode::kPaperInterior);
  EXPECT_EQ(high.m, 50u);
  EXPECT_EQ(high.ess.kind, EssKind::kPartialDefenseFullAttack);
  EXPECT_NEAR(high.cost, 200.0, 1e-9);
}

TEST(Optimizer, MinimizeCostNeverWorseThanPaperMode) {
  for (double p : {0.6, 0.8, 0.9, 0.95, 0.98}) {
    const auto g = GameParams::paper_defaults(p, 1);
    const auto paper = optimize_m(g, OptimizeMode::kPaperInterior);
    const auto argmin = optimize_m(g, OptimizeMode::kMinimizeCost);
    EXPECT_LE(argmin.cost, paper.cost + 1e-9) << "p=" << p;
  }
}

TEST(Optimizer, GameBeatsNaiveEverywhere) {
  // Fig. 8's headline claim: E <= N across the whole sweep, with a large
  // gap at high p.
  for (double p = 0.5; p < 0.995; p += 0.01) {
    const auto g = GameParams::paper_defaults(p, 1);
    const auto result = optimize_m(g, OptimizeMode::kPaperInterior);
    EXPECT_LE(result.cost, naive_cost(g) + 1e-9) << "p=" << p;
  }
  // Large gap past the regime flip.
  const auto g = GameParams::paper_defaults(0.98, 1);
  EXPECT_GT(naive_cost(g) - optimize_m(g, OptimizeMode::kPaperInterior).cost,
            50.0);
}

TEST(Optimizer, FaithfulAlg3TracksLocalImprovements) {
  // The printed Algorithm 3 records the last m whose cost improved on
  // its predecessor. For a U-shaped curve that is the arg-min.
  const auto g = GameParams::paper_defaults(0.8, 1);
  const auto faithful = optimize_m(g, OptimizeMode::kFaithfulAlg3);
  const auto argmin = optimize_m(g, OptimizeMode::kMinimizeCost);
  EXPECT_EQ(faithful.m, argmin.m);
}

TEST(Optimizer, CostCurveHasExpectedShape) {
  const auto curve = cost_curve(GameParams::paper_defaults(0.8, 1), 50);
  ASSERT_EQ(curve.size(), 50u);
  // Costs are positive and bounded by roughly k2*M + Ra.
  for (const auto& point : curve) {
    EXPECT_GT(point.cost, 0.0);
    EXPECT_LT(point.cost, 4.0 * 50 + 200.0 + 1.0);
  }
}

TEST(Optimizer, RejectsZeroMaxM) {
  const auto g = GameParams::paper_defaults(0.8, 1);
  EXPECT_THROW((void)optimize_m(g, OptimizeMode::kMinimizeCost, 0),
               std::invalid_argument);
}

// -------------------------------------------------------------- bandwidth

TEST(Bandwidth, BuffersForMemoryMatchesPaperCounts) {
  // §VI-A: Mem 1024/512 against 280-bit and 56-bit records.
  EXPECT_EQ(buffers_for_memory(1024, 280), 3u);
  EXPECT_EQ(buffers_for_memory(512, 280), 1u);
  EXPECT_EQ(buffers_for_memory(1024, 56), 18u);
  EXPECT_EQ(buffers_for_memory(512, 56), 9u);
  EXPECT_THROW(buffers_for_memory(1024, 0), std::invalid_argument);
}

TEST(Bandwidth, AttackerRequirementFormula) {
  // x_m = P^(1/m) (1 - x_d).
  EXPECT_NEAR(attacker_bandwidth_required(0.5, 1, 0.2), 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(attacker_bandwidth_required(0.5, 3, 0.2),
              std::pow(0.5, 1.0 / 3) * 0.8, 1e-12);
  EXPECT_THROW(attacker_bandwidth_required(0.0, 3, 0.2),
               std::invalid_argument);
  EXPECT_THROW(attacker_bandwidth_required(0.5, 0, 0.2),
               std::invalid_argument);
  EXPECT_THROW(attacker_bandwidth_required(0.5, 3, 1.0),
               std::invalid_argument);
}

TEST(Bandwidth, MoreBuffersForceMoreAttackerBandwidth) {
  // DAP's claim in Fig. 5: with 5x the buffers, the attacker must spend
  // strictly more bandwidth for the same success target.
  for (double P : {0.1, 0.5, 0.9}) {
    EXPECT_GT(attacker_bandwidth_required(P, 18, 0.2),
              attacker_bandwidth_required(P, 3, 0.2));
    EXPECT_GT(attacker_bandwidth_required(P, 9, 0.2),
              attacker_bandwidth_required(P, 1, 0.2));
  }
}

TEST(Bandwidth, SenderRequirementShrinksWithBuffers) {
  // The complementary reading (ablation E11): more buffers mean the
  // sender needs far less MAC-rebroadcast bandwidth for the same
  // defence guarantee.
  const double xa = 0.4;
  EXPECT_GT(sender_mac_bandwidth_required(0.99, 3, xa),
            sender_mac_bandwidth_required(0.99, 18, xa));
  EXPECT_DOUBLE_EQ(sender_mac_bandwidth_required(0.0, 3, xa), 0.0);
  EXPECT_TRUE(std::isinf(sender_mac_bandwidth_required(1.0, 3, xa)));
}

TEST(Bandwidth, DefenseSuccessComplement) {
  EXPECT_NEAR(defense_success(0.8, 4), 1.0 - std::pow(0.8, 4), 1e-12);
  EXPECT_DOUBLE_EQ(defense_success(0.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(defense_success(1.0, 4), 0.0);
  EXPECT_THROW(defense_success(-0.1, 4), std::invalid_argument);
}

}  // namespace
}  // namespace dap::game

// ------------------------------------------------------------- sensitivity

#include "game/sensitivity.h"

namespace dap::game {
namespace {

TEST(Sensitivity, PaperConstantsSpansMatchFig6) {
  GameParams base = GameParams::paper_defaults(0.8, 1);
  const auto spans = regime_spans(base, 0.8, 100);
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].kind, EssKind::kFullDefenseFullAttack);
  EXPECT_EQ(spans[0].m_last, 11u);
  EXPECT_EQ(spans[1].kind, EssKind::kFullDefensePartialAttack);
  EXPECT_EQ(spans[2].kind, EssKind::kInterior);
  EXPECT_EQ(spans[2].m_last, 54u);
  EXPECT_EQ(spans[3].kind, EssKind::kPartialDefenseFullAttack);
  EXPECT_EQ(spans[3].m_last, 100u);
  EXPECT_TRUE(canonical_regime_order(spans));
}

TEST(Sensitivity, CriticalLevelNearPaperThreshold) {
  GameParams base = GameParams::paper_defaults(0.8, 1);
  const auto p_crit = critical_attack_level(base);
  ASSERT_TRUE(p_crit.has_value());
  EXPECT_GT(*p_crit, 0.92);
  EXPECT_LT(*p_crit, 0.96);
}

TEST(Sensitivity, OrderingInvariantAcrossConstants) {
  for (double k1 : {10.0, 20.0, 40.0}) {
    for (double k2 : {2.0, 4.0, 8.0}) {
      GameParams base;
      base.Ra = 200.0;
      base.k1 = k1;
      base.k2 = k2;
      base.xa = 0.8;
      base.m = 1;
      EXPECT_TRUE(canonical_regime_order(regime_spans(base, 0.8, 100)))
          << "k1=" << k1 << " k2=" << k2;
    }
  }
}

TEST(Sensitivity, CostlierDefenseLowersGiveUpThreshold) {
  GameParams cheap = GameParams::paper_defaults(0.8, 1);
  cheap.k2 = 2.0;
  GameParams costly = GameParams::paper_defaults(0.8, 1);
  costly.k2 = 8.0;
  const auto p_cheap = critical_attack_level(cheap);
  const auto p_costly = critical_attack_level(costly);
  ASSERT_TRUE(p_cheap.has_value());
  ASSERT_TRUE(p_costly.has_value());
  EXPECT_GT(*p_cheap, *p_costly);
}

TEST(Sensitivity, CheaperAttacksLowerGiveUpThreshold) {
  GameParams cheap_attack = GameParams::paper_defaults(0.8, 1);
  cheap_attack.k1 = 10.0;
  GameParams costly_attack = GameParams::paper_defaults(0.8, 1);
  costly_attack.k1 = 40.0;
  const auto p_cheap = critical_attack_level(cheap_attack);
  const auto p_costly = critical_attack_level(costly_attack);
  ASSERT_TRUE(p_cheap.has_value());
  // With very costly attacks the interior may persist to the sweep edge.
  if (p_costly.has_value()) {
    EXPECT_LT(*p_cheap, *p_costly);
  } else {
    EXPECT_LT(*p_cheap, 0.999);
  }
}

}  // namespace
}  // namespace dap::game

// ----------------------------------------------- Jacobian across regimes

namespace dap::game {
namespace {

TEST(Jacobian, StableAtEveryClassifiedEss) {
  // Local stability of the classified point for a grid spanning all four
  // regimes. Boundary points are probed from just inside the simplex.
  for (double p : {0.6, 0.8, 0.95}) {
    for (std::size_t m : {2u, 13u, 30u, 70u}) {
      const auto g = GameParams::paper_defaults(p, m);
      const auto ess = solve_ess(g);
      const double x = std::clamp(ess.point.x, 1e-4, 1.0 - 1e-4);
      const double y = std::clamp(ess.point.y, 1e-4, 1.0 - 1e-4);
      const auto j = jacobian_at(g, x, y);
      // At a stable point the trace is non-positive (damping); strictly
      // negative away from degenerate cases.
      EXPECT_LT(j.trace(), 1.0) << "p=" << p << " m=" << m;
    }
  }
}

TEST(Jacobian, SpiralOnlyInInteriorRegime) {
  // Complex eigenvalues (negative discriminant) characterise the
  // interior spiral of Fig. 6(c); corner ESSs converge monotonically.
  const auto interior = GameParams::paper_defaults(0.8, 30);
  const auto ess = solve_ess(interior);
  ASSERT_EQ(ess.kind, EssKind::kInterior);
  EXPECT_LT(jacobian_at(interior, ess.point.x, ess.point.y).discriminant(),
            0.0);
}

TEST(CostModel, GiveUpRegimeCostIsExactlyRa) {
  // Algebraic identity: at ESS (X', 1) with X' = (1-P)Ra/(k2 m),
  // E = k2 m X'^2 + (1 - (1-P)X') Ra = Ra identically.
  for (double p : {0.8, 0.9, 0.98}) {
    for (std::size_t m : {60u, 80u, 100u}) {
      const auto g = GameParams::paper_defaults(p, m);
      const auto ess = solve_ess(g);
      if (ess.kind != EssKind::kPartialDefenseFullAttack) continue;
      EXPECT_NEAR(defense_cost(g), g.Ra, 1e-9) << "p=" << p << " m=" << m;
    }
  }
}

}  // namespace
}  // namespace dap::game
