// Tests for multi-sender DAP (MCN setting: any node can broadcast) and
// TESLA++ signed anchors (mid-stream bootstrap via Merkle signatures).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dap/multi_sender.h"
#include "sim/adversary.h"
#include "tesla/teslapp.h"

namespace dap {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

protocol::DapConfig sender_config() {
  protocol::DapConfig config;
  config.chain_length = 32;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  return config;
}

sim::SimTime mid(std::uint32_t interval) {
  return (interval - 1) * sim::kSecond + sim::kSecond / 2;
}

// ---------------------------------------------------------- multi-sender

TEST(MultiSender, RoutesBySenderId) {
  const auto config = sender_config();
  protocol::DapSender alice({.sender_id = 10,
                             .chain_length = 32,
                             .schedule = config.schedule},
                            bytes_of("alice"));
  protocol::DapSender bob({.sender_id = 20,
                           .chain_length = 32,
                           .schedule = config.schedule},
                          bytes_of("bob"));

  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(1), 16);
  receiver.register_sender(10, alice.config(), alice.chain().commitment());
  receiver.register_sender(20, bob.config(), bob.chain().commitment());
  EXPECT_EQ(receiver.senders(), 2u);
  EXPECT_EQ(receiver.buffers_per_sender(), 8u);

  receiver.receive(alice.announce(1, bytes_of("from-alice")), mid(1));
  receiver.receive(bob.announce(1, bytes_of("from-bob")), mid(1));

  const auto a = receiver.receive(alice.reveal(1), mid(2));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->sender, 10u);
  EXPECT_EQ(a->message.message, bytes_of("from-alice"));

  const auto b = receiver.receive(bob.reveal(1), mid(2));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->sender, 20u);
  EXPECT_EQ(b->message.message, bytes_of("from-bob"));
}

TEST(MultiSender, UnknownSenderDropped) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(2), 8);
  wire::MacAnnounce stray;
  stray.sender = 99;
  stray.interval = 1;
  stray.mac = Bytes(10, 0x42);
  receiver.receive(stray, mid(1));
  wire::MessageReveal stray_reveal;
  stray_reveal.sender = 99;
  stray_reveal.interval = 1;
  EXPECT_FALSE(receiver.receive(stray_reveal, mid(2)).has_value());
  EXPECT_EQ(receiver.stats().unknown_sender_packets, 2u);
}

TEST(MultiSender, BudgetRebalancesOnRegistration) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(3), 12);
  const auto config = sender_config();
  protocol::DapSender s1({.sender_id = 1, .chain_length = 8}, bytes_of("a"));
  receiver.register_sender(1, s1.config(), s1.chain().commitment());
  EXPECT_EQ(receiver.buffers_per_sender(), 12u);
  protocol::DapSender s2({.sender_id = 2, .chain_length = 8}, bytes_of("b"));
  receiver.register_sender(2, s2.config(), s2.chain().commitment());
  EXPECT_EQ(receiver.buffers_per_sender(), 6u);
  protocol::DapSender s3({.sender_id = 3, .chain_length = 8}, bytes_of("c"));
  protocol::DapSender s4({.sender_id = 4, .chain_length = 8}, bytes_of("d"));
  protocol::DapSender s5({.sender_id = 5, .chain_length = 8}, bytes_of("e"));
  receiver.register_sender(3, s3.config(), s3.chain().commitment());
  receiver.register_sender(4, s4.config(), s4.chain().commitment());
  receiver.register_sender(5, s5.config(), s5.chain().commitment());
  EXPECT_EQ(receiver.buffers_per_sender(), 2u);
  (void)config;
}

TEST(MultiSender, BudgetNeverBelowOneBuffer) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(4), 2);
  for (wire::NodeId id = 1; id <= 5; ++id) {
    protocol::DapSender s({.sender_id = id, .chain_length = 4},
                          Rng(id).bytes(8));
    receiver.register_sender(id, s.config(), s.chain().commitment());
  }
  EXPECT_EQ(receiver.buffers_per_sender(), 1u);
  // Budget 2 over 5 senders: the 2 real buffers land on the lowest ids,
  // the rest hold the 1-buffer floor.
  EXPECT_EQ(receiver.buffers_for(1), 1u);
  EXPECT_EQ(receiver.buffers_for(5), 1u);
}

TEST(MultiSender, BudgetRemainderIsNotStranded) {
  // Budget 10 over 3 senders must hand out 4+3+3, not floor to 3+3+3
  // and strand a buffer the node agreed to spend.
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(11), 10);
  for (wire::NodeId id = 1; id <= 3; ++id) {
    protocol::DapSender s({.sender_id = id, .chain_length = 4},
                          Rng(id).bytes(8));
    receiver.register_sender(id, s.config(), s.chain().commitment());
  }
  EXPECT_EQ(receiver.buffers_per_sender(), 3u);  // the guaranteed floor
  EXPECT_EQ(receiver.buffers_for(1), 4u);        // remainder goes low-id first
  EXPECT_EQ(receiver.buffers_for(2), 3u);
  EXPECT_EQ(receiver.buffers_for(3), 3u);
  EXPECT_EQ(receiver.buffers_for(1) + receiver.buffers_for(2) +
                receiver.buffers_for(3),
            10u);
  EXPECT_EQ(receiver.buffers_for(99), 0u);  // unknown sender
}

TEST(MultiSender, BudgetRemainderFollowsRegistrationChanges) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(12), 7);
  protocol::DapSender s1({.sender_id = 1, .chain_length = 4}, bytes_of("a"));
  protocol::DapSender s2({.sender_id = 2, .chain_length = 4}, bytes_of("b"));
  receiver.register_sender(2, s2.config(), s2.chain().commitment());
  EXPECT_EQ(receiver.buffers_for(2), 7u);  // sole sender takes the lot
  receiver.register_sender(1, s1.config(), s1.chain().commitment());
  // 7 over 2: the lower id gets the odd buffer, and that holds no matter
  // which sender registered first.
  EXPECT_EQ(receiver.buffers_for(1), 4u);
  EXPECT_EQ(receiver.buffers_for(2), 3u);
}

TEST(MultiSender, RemainderBufferImprovesFloodSurvival) {
  // The extra buffer is real capacity: a sender holding share+1 keeps
  // more records under identical load than it would at the bare floor.
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(13), 7);
  protocol::DapSender alice({.sender_id = 10, .chain_length = 8},
                            bytes_of("alice"));
  protocol::DapSender bob({.sender_id = 20, .chain_length = 8},
                          bytes_of("bob"));
  receiver.register_sender(10, alice.config(), alice.chain().commitment());
  receiver.register_sender(20, bob.config(), bob.chain().commitment());
  ASSERT_EQ(receiver.buffers_for(10), 4u);
  // Four distinct messages announced in one interval: all four fit in
  // Alice's 4 slots, which a floor-share of 3 could never hold.
  for (const char* msg : {"w", "x", "y", "z"}) {
    receiver.receive(alice.announce(1, bytes_of(msg)), mid(1));
  }
  const auto* stats = receiver.sender_stats(10);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->records_stored, 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(receiver.receive(alice.reveal(1, k), mid(2)).has_value())
        << "message " << k;
  }
}

TEST(MultiSender, FloodAgainstOneSenderDoesNotAffectAnother) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(5), 8);
  protocol::DapSender alice({.sender_id = 10, .chain_length = 8},
                            bytes_of("alice"));
  protocol::DapSender bob({.sender_id = 20, .chain_length = 8},
                          bytes_of("bob"));
  receiver.register_sender(10, alice.config(), alice.chain().commitment());
  receiver.register_sender(20, bob.config(), bob.chain().commitment());

  // Flood targets Alice's id only.
  sim::FloodingForger forger(10, 10, Rng(6));
  receiver.receive(alice.announce(1, bytes_of("a")), mid(1));
  receiver.receive(bob.announce(1, bytes_of("b")), mid(1));
  for (int i = 0; i < 50; ++i) receiver.receive(forger.forge(1), mid(1));

  // Bob's round is untouched: authentic record guaranteed to survive.
  ASSERT_TRUE(receiver.receive(bob.reveal(1), mid(2)).has_value());
  const auto* bob_stats = receiver.sender_stats(20);
  ASSERT_NE(bob_stats, nullptr);
  EXPECT_EQ(bob_stats->records_offered, 1u);
}

TEST(MultiSender, ReRegistrationReplacesState) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(7), 8);
  protocol::DapSender old_sender({.sender_id = 1, .chain_length = 8},
                                 bytes_of("old"));
  receiver.register_sender(1, old_sender.config(),
                           old_sender.chain().commitment());
  protocol::DapSender new_sender({.sender_id = 1, .chain_length = 8},
                                 bytes_of("new"));
  receiver.register_sender(1, new_sender.config(),
                           new_sender.chain().commitment());
  EXPECT_EQ(receiver.senders(), 1u);
  receiver.receive(new_sender.announce(1, bytes_of("m")), mid(1));
  EXPECT_TRUE(receiver.receive(new_sender.reveal(1), mid(2)).has_value());
}

TEST(MultiSender, RejectsBadConstruction) {
  EXPECT_THROW(protocol::MultiSenderReceiver(Bytes{}, sim::LooseClock(0, 0),
                                             Rng(8), 8),
               std::invalid_argument);
  EXPECT_THROW(protocol::MultiSenderReceiver(bytes_of("x"),
                                             sim::LooseClock(0, 0), Rng(8), 0),
               std::invalid_argument);
}

TEST(MultiSender, MemoryAccountingSumsSenders) {
  protocol::MultiSenderReceiver receiver(bytes_of("local"),
                                         sim::LooseClock(0, 0), Rng(9), 8);
  protocol::DapSender alice({.sender_id = 10, .chain_length = 8},
                            bytes_of("alice"));
  protocol::DapSender bob({.sender_id = 20, .chain_length = 8},
                          bytes_of("bob"));
  receiver.register_sender(10, alice.config(), alice.chain().commitment());
  receiver.register_sender(20, bob.config(), bob.chain().commitment());
  receiver.receive(alice.announce(1, bytes_of("a")), mid(1));
  receiver.receive(bob.announce(1, bytes_of("b")), mid(1));
  EXPECT_EQ(receiver.stored_record_bits(), 2 * 56u);
}

// --------------------------------------------------------- signed anchors

TEST(SignedAnchor, VerifiesAgainstRoot) {
  tesla::TeslaPpConfig config;
  config.chain_length = 32;
  tesla::TeslaPpSender sender(config, bytes_of("seed"));
  const auto anchor = sender.make_anchor(10);
  EXPECT_TRUE(tesla::verify_anchor(anchor, sender.signature_root()));
  EXPECT_EQ(anchor.key, sender.chain().key(10));
}

TEST(SignedAnchor, TamperRejected) {
  tesla::TeslaPpConfig config;
  config.chain_length = 32;
  tesla::TeslaPpSender sender(config, bytes_of("seed"));
  auto anchor = sender.make_anchor(10);
  anchor.key[0] ^= 1;
  EXPECT_FALSE(tesla::verify_anchor(anchor, sender.signature_root()));
  anchor.key[0] ^= 1;
  anchor.interval = 11;
  EXPECT_FALSE(tesla::verify_anchor(anchor, sender.signature_root()));
}

TEST(SignedAnchor, MidStreamBootstrapAuthenticates) {
  tesla::TeslaPpConfig config;
  config.chain_length = 32;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  tesla::TeslaPpSender sender(config, bytes_of("seed"));

  // A node joins during interval 11, long after K_0 was useful. It gets
  // the signed anchor for interval 10 and verifies it against the root.
  const auto anchor = sender.make_anchor(10);
  ASSERT_TRUE(tesla::verify_anchor(anchor, sender.signature_root()));
  auto late_joiner = tesla::TeslaPpReceiver::from_anchor(
      config, anchor, bytes_of("late-local"), sim::LooseClock(0, 0));

  late_joiner.receive(sender.announce(11, bytes_of("fresh data")), mid(11));
  const auto released = late_joiner.receive(sender.reveal(11), mid(12));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].message, bytes_of("fresh data"));
}

TEST(SignedAnchor, AnchorsAreFiniteResource) {
  tesla::TeslaPpConfig config;
  config.chain_length = 64;
  tesla::TeslaPpSender sender(config, bytes_of("seed"));
  const auto initial = sender.anchors_remaining();
  EXPECT_EQ(initial, 16u);  // Merkle height 4
  for (std::uint32_t i = 1; i <= initial; ++i) {
    (void)sender.make_anchor(i);
  }
  EXPECT_EQ(sender.anchors_remaining(), 0u);
  EXPECT_THROW(sender.make_anchor(20), std::runtime_error);
}

TEST(SignedAnchor, CrossSenderAnchorRejected) {
  tesla::TeslaPpConfig config;
  config.chain_length = 16;
  tesla::TeslaPpSender alice(config, bytes_of("alice"));
  tesla::TeslaPpSender bob(config, bytes_of("bob"));
  const auto anchor = alice.make_anchor(5);
  EXPECT_FALSE(tesla::verify_anchor(anchor, bob.signature_root()));
}

}  // namespace
}  // namespace dap
