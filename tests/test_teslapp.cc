// Unit tests for TESLA++: MAC-before-message broadcasting, self re-MAC
// records, and the memory/DoS trade-offs the paper compares against.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/adversary.h"
#include "tesla/teslapp.h"

namespace dap::tesla {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

TeslaPpConfig test_config() {
  TeslaPpConfig config;
  config.chain_length = 32;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  return config;
}

sim::SimTime mid(std::uint32_t interval) {
  return (interval - 1) * sim::kSecond + sim::kSecond / 2;
}

TeslaPpReceiver make_receiver(const TeslaPpConfig& config,
                              const TeslaPpSender& sender) {
  return TeslaPpReceiver(config, sender.chain().commitment(),
                         bytes_of("receiver-local-secret"),
                         sim::LooseClock(0, 0));
}

TEST(TeslaPp, HappyPathAuthenticates) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);

  receiver.receive(sender.announce(1, bytes_of("warning: pothole")), mid(1));
  const auto released = receiver.receive(sender.reveal(1), mid(2));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].message, bytes_of("warning: pothole"));
  EXPECT_EQ(receiver.stats().authenticated, 1u);
}

TEST(TeslaPp, MultipleIntervalsPipeline) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  std::size_t authenticated = 0;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    receiver.receive(sender.announce(i, bytes_of("m")), mid(i));
    if (i > 1) {
      authenticated += receiver.receive(sender.reveal(i - 1), mid(i)).size();
    }
  }
  EXPECT_EQ(authenticated, 9u);
}

TEST(TeslaPp, RevealWithoutAnnounceFailsToMatch) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  (void)sender.announce(1, bytes_of("m"));  // receiver never hears it
  const auto released = receiver.receive(sender.reveal(1), mid(2));
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(receiver.stats().unmatched, 1u);
}

TEST(TeslaPp, SenderRevealRequiresAnnounce) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  EXPECT_THROW(sender.reveal(5), std::logic_error);
}

TEST(TeslaPp, ForgedAnnouncementCannotAuthenticate) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  sim::FloodingForger forger(config.sender_id, config.mac_size, Rng(1));
  // The receiver hears only a forged announcement; the authentic one is
  // lost. The later reveal must not match the forged record.
  (void)sender.announce(1, bytes_of("m"));
  receiver.receive(forger.forge(1), mid(1));
  const auto released = receiver.receive(sender.reveal(1), mid(2));
  EXPECT_TRUE(released.empty());  // forged record does not match
}

TEST(TeslaPp, FloodedAnnouncementsDoNotDisplaceAuthentic) {
  // Without a record cap TESLA++ stores all records; the authentic one
  // survives no matter the flood size (its weakness is memory, not loss).
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  sim::FloodingForger forger(config.sender_id, config.mac_size, Rng(2));
  for (int i = 0; i < 100; ++i) receiver.receive(forger.forge(1), mid(1));
  receiver.receive(sender.announce(1, bytes_of("real")), mid(1));
  const auto released = receiver.receive(sender.reveal(1), mid(2));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(receiver.stats().records_stored, 101u);
}

TEST(TeslaPp, RecordCapMakesEarlyFloodWin) {
  // With a cap and first-come-first-kept semantics, an attacker that
  // floods *before* the authentic announcement wins — the weakness DAP's
  // reservoir selection addresses.
  auto config = test_config();
  config.max_records_per_interval = 8;
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  sim::FloodingForger forger(config.sender_id, config.mac_size, Rng(3));
  for (int i = 0; i < 8; ++i) receiver.receive(forger.forge(1), mid(1));
  receiver.receive(sender.announce(1, bytes_of("real")), mid(1));
  EXPECT_EQ(receiver.stats().records_dropped, 1u);
  const auto released = receiver.receive(sender.reveal(1), mid(2));
  EXPECT_TRUE(released.empty());
}

TEST(TeslaPp, LateAnnouncementUnsafe) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(3));
  EXPECT_EQ(receiver.stats().announces_unsafe, 1u);
}

TEST(TeslaPp, ForgedKeyInRevealRejected) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  auto reveal = sender.reveal(1);
  reveal.key = Bytes(10, 0x5a);
  const auto released = receiver.receive(reveal, mid(2));
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(receiver.stats().keys_rejected, 1u);
}

TEST(TeslaPp, TamperedRevealMessageRejected) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("authentic")), mid(1));
  auto reveal = sender.reveal(1);
  reveal.message = bytes_of("tampered");
  const auto released = receiver.receive(reveal, mid(2));
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(receiver.stats().unmatched, 1u);
}

TEST(TeslaPp, StoredRecordBitsTracksRecords) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  EXPECT_EQ(receiver.stored_record_bits(), 0u);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  // One record: self_mac_size*8 + 32 index bits.
  EXPECT_EQ(receiver.stored_record_bits(), config.self_mac_size * 8 + 32);
  (void)receiver.receive(sender.reveal(1), mid(2));
  EXPECT_EQ(receiver.stored_record_bits(), 0u);  // bucket consumed
}

TEST(TeslaPp, DistinctReceiversStoreDistinctRecords) {
  // The self re-MAC depends on the receiver's local secret, so a
  // colluding node cannot precompute another node's records.
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  TeslaPpReceiver a(config, sender.chain().commitment(), bytes_of("secret-a"),
                    sim::LooseClock(0, 0));
  TeslaPpReceiver b(config, sender.chain().commitment(), bytes_of("secret-b"),
                    sim::LooseClock(0, 0));
  const auto announce = sender.announce(1, bytes_of("m"));
  a.receive(announce, mid(1));
  b.receive(announce, mid(1));
  // Both still authenticate correctly.
  EXPECT_EQ(a.receive(sender.reveal(1), mid(2)).size(), 1u);
  EXPECT_EQ(b.receive(sender.reveal(1), mid(2)).size(), 1u);
}

TEST(TeslaPp, RejectsEmptyLocalSecret) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  EXPECT_THROW(TeslaPpReceiver(config, sender.chain().commitment(), Bytes{},
                               sim::LooseClock(0, 0)),
               std::invalid_argument);
}

// ------------------------------------------- batched reveal verification

TEST(TeslaPpBatchReveal, DrainMatchesSerialReceive) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto serial = make_receiver(config, sender);
  auto batched = make_receiver(config, sender);
  std::vector<wire::MessageReveal> reveals;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const auto announce = sender.announce(i, bytes_of("m"));
    serial.receive(announce, mid(i));
    batched.receive(announce, mid(i));
    reveals.push_back(sender.reveal(i));
  }
  std::size_t serial_ok = 0;
  for (const auto& reveal : reveals) {
    serial_ok += serial.receive(reveal, mid(7)).size();
    batched.enqueue(reveal);
  }
  EXPECT_EQ(batched.pending_reveals(), 6u);
  const auto batch_out = batched.drain_pending_batch(mid(7));
  std::size_t batch_ok = 0;
  for (const auto& released : batch_out) batch_ok += released.size();
  EXPECT_EQ(batch_out.size(), 6u);
  EXPECT_EQ(batch_ok, serial_ok);
  EXPECT_EQ(batched.stats().authenticated, serial.stats().authenticated);
  EXPECT_EQ(batched.stats().keys_rejected, serial.stats().keys_rejected);
}

TEST(TeslaPpBatchReveal, SameIntervalKeyDerivedOncePerDrain) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  const auto reveal = sender.reveal(1);
  // Duplicate reveals of one interval in a single drain share the
  // derived key; the duplicate finds no record left (outcome not
  // cached), but costs no second derivation.
  receiver.enqueue(reveal);
  receiver.enqueue(reveal);
  receiver.enqueue(reveal);
  const auto out = receiver.drain_pending_batch(mid(2));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].size(), 1u);
  EXPECT_TRUE(out[1].empty());
  EXPECT_TRUE(out[2].empty());
  EXPECT_EQ(receiver.stats().mac_key_derivations, 1u);
}

TEST(TeslaPpBatchReveal, CrashRestartDropsPendingBacklog) {
  const auto config = test_config();
  TeslaPpSender sender(config, bytes_of("seed"));
  auto receiver = make_receiver(config, sender);
  receiver.receive(sender.announce(1, bytes_of("m")), mid(1));
  receiver.enqueue(sender.reveal(1));
  EXPECT_EQ(receiver.pending_reveals(), 1u);
  receiver.crash_restart(mid(1));
  EXPECT_EQ(receiver.pending_reveals(), 0u);
  EXPECT_TRUE(receiver.drain_pending_batch(mid(2)).empty());
}

}  // namespace
}  // namespace dap::tesla
