// Unit tests for multi-level μTESLA with EFTP and EDRP options: CDM
// distribution, multi-buffer DoS resistance, low-chain recovery via the
// high-level key link, and the EDRP hash chain.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "sim/channel.h"
#include "tesla/multilevel.h"

namespace dap::tesla {
namespace {

using common::Bytes;
using common::bytes_of;
using common::Rng;

MultiLevelConfig test_config(crypto::LevelLink link, bool edrp) {
  MultiLevelConfig config;
  config.high_length = 8;
  config.low_length = 6;
  config.low_disclosure_delay = 2;
  config.cdm_buffers = 3;
  config.link = link;
  config.edrp = edrp;
  config.high_schedule = sim::IntervalSchedule(0, 6 * sim::kSecond);
  return config;
}

sim::SimTime cdm_time(const MultiLevelConfig& config, std::uint32_t i) {
  return config.high_schedule.interval_start(i) + sim::kSecond / 2;
}

sim::SimTime data_time(const MultiLevelConfig& config, std::uint32_t i,
                       std::uint32_t j) {
  return config.high_schedule.interval_start(i) +
         (j - 1) * config.low_schedule().duration() +
         config.low_schedule().duration() / 2;
}

// ---------------------------------------------------------------- config

TEST(MultiLevelConfig, IndexMapping) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  EXPECT_EQ(config.global_index(1, 1), 1u);
  EXPECT_EQ(config.global_index(1, 6), 6u);
  EXPECT_EQ(config.global_index(2, 1), 7u);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    for (std::uint32_t j = 1; j <= 6; ++j) {
      const auto [hi, lo] = config.split_index(config.global_index(i, j));
      EXPECT_EQ(hi, i);
      EXPECT_EQ(lo, j);
    }
  }
}

TEST(MultiLevelConfig, LowScheduleDerived) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  EXPECT_EQ(config.low_schedule().duration(), sim::kSecond);
}

// ---------------------------------------------------------------- sender

TEST(MultiLevelSender, CdmStructure) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  const auto& cdm3 = sender.cdm(3);
  EXPECT_EQ(cdm3.high_interval, 3u);
  EXPECT_EQ(cdm3.low_commitment, sender.chain().low_key(5, 0));
  EXPECT_EQ(cdm3.disclosed_high_key, sender.chain().high_key(2));
  EXPECT_TRUE(cdm3.next_cdm_image.empty());  // no EDRP
  // Last two intervals have no i+2 chain to announce.
  EXPECT_TRUE(sender.cdm(7).low_commitment.empty());
  EXPECT_TRUE(sender.cdm(8).low_commitment.empty());
}

TEST(MultiLevelSender, EdrpCdmChainsBackward) {
  const auto config = test_config(crypto::LevelLink::kOriginal, true);
  MultiLevelSender sender(config, bytes_of("seed"));
  for (std::uint32_t i = 1; i < 8; ++i) {
    EXPECT_EQ(sender.cdm(i).next_cdm_image,
              crypto::sha256_bytes(cdm_image_payload(sender.cdm(i + 1))))
        << "interval " << i;
  }
  EXPECT_TRUE(sender.cdm(8).next_cdm_image.empty());
}

TEST(MultiLevelSender, DataPacketUsesLowChain) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  const auto p = sender.make_data_packet(2, 4, bytes_of("m"));
  EXPECT_EQ(p.interval, config.global_index(2, 4));
  EXPECT_EQ(p.disclosed_interval, config.global_index(2, 2));
  EXPECT_EQ(p.disclosed_key, sender.chain().low_key(2, 2));
  const auto early = sender.make_data_packet(2, 2, bytes_of("m"));
  EXPECT_TRUE(early.disclosed_key.empty());
}

TEST(MultiLevelSender, RejectsOutOfRange) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  EXPECT_THROW((void)sender.cdm(0), std::out_of_range);
  EXPECT_THROW((void)sender.cdm(9), std::out_of_range);
  EXPECT_THROW(sender.make_data_packet(0, 1, bytes_of("m")),
               std::out_of_range);
  EXPECT_THROW(sender.make_data_packet(1, 7, bytes_of("m")),
               std::out_of_range);
}

// ------------------------------------------------------------- receiver

class MultiLevelModes
    : public ::testing::TestWithParam<std::pair<crypto::LevelLink, bool>> {};

TEST_P(MultiLevelModes, HappyPathAuthenticatesCdmsAndData) {
  const auto [link, edrp] = GetParam();
  const auto config = test_config(link, edrp);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(1));
  std::size_t messages = 0;
  for (std::uint32_t i = 1; i <= config.high_length; ++i) {
    auto events = receiver.receive(sender.cdm(i), cdm_time(config, i));
    messages += events.messages.size();
    for (std::uint32_t j = 1; j <= config.low_length; ++j) {
      auto data_events = receiver.receive(
          sender.make_data_packet(i, j, bytes_of("r")), data_time(config, i, j));
      messages += data_events.messages.size();
    }
  }
  // Every interval's data except the last d packets of the final
  // intervals authenticate; CDMs 1..high_length-1 authenticate (the last
  // one's key is never disclosed).
  EXPECT_GE(receiver.stats().cdm_authenticated, config.high_length - 1);
  EXPECT_GT(messages, (config.high_length - 1) * (config.low_length - 2));
  EXPECT_EQ(receiver.stats().data_rejected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MultiLevelModes,
    ::testing::Values(std::make_pair(crypto::LevelLink::kOriginal, false),
                      std::make_pair(crypto::LevelLink::kOriginal, true),
                      std::make_pair(crypto::LevelLink::kEftp, false),
                      std::make_pair(crypto::LevelLink::kEftp, true)));

TEST(MultiLevelReceiver, CdmAuthenticatedOneIntervalLater) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(2));
  auto events = receiver.receive(sender.cdm(1), cdm_time(config, 1));
  EXPECT_TRUE(events.cdms.empty());
  EXPECT_FALSE(receiver.cdm_authentic(1));
  events = receiver.receive(sender.cdm(2), cdm_time(config, 2));
  ASSERT_EQ(events.cdms.size(), 1u);
  EXPECT_EQ(events.cdms[0].high_interval, 1u);
  EXPECT_EQ(events.cdms[0].path, CdmAuthPath::kMacAfterKeyDisclosure);
  EXPECT_TRUE(receiver.cdm_authentic(1));
}

TEST(MultiLevelReceiver, EdrpAuthenticatesInstantlyAfterFirst) {
  const auto config = test_config(crypto::LevelLink::kOriginal, true);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(3));
  (void)receiver.receive(sender.cdm(1), cdm_time(config, 1));
  // CDM_2's own receive both authenticates CDM_1 (key path) and itself
  // (hash path, because CDM_1 carried H(CDM_2)).
  const auto events = receiver.receive(sender.cdm(2), cdm_time(config, 2));
  ASSERT_EQ(events.cdms.size(), 2u);
  EXPECT_EQ(events.cdms[0].high_interval, 1u);
  EXPECT_EQ(events.cdms[1].high_interval, 2u);
  EXPECT_EQ(events.cdms[1].path, CdmAuthPath::kHashChain);
}

TEST(MultiLevelReceiver, EdrpFiltersForgedCdmInstantly) {
  const auto config = test_config(crypto::LevelLink::kOriginal, true);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(4));
  (void)receiver.receive(sender.cdm(1), cdm_time(config, 1));
  (void)receiver.receive(sender.cdm(2), cdm_time(config, 2));
  // Forged CDM_3 (random MAC/commitment, replayed disclosed key).
  wire::CdmPacket forged = sender.cdm(3);
  Rng rng(5);
  forged.low_commitment = rng.bytes(10);
  forged.mac = rng.bytes(10);
  const auto events = receiver.receive(forged, cdm_time(config, 3));
  EXPECT_TRUE(events.cdms.empty());
  EXPECT_EQ(receiver.stats().cdm_forged_dropped, 1u);
  // The authentic copy still authenticates instantly afterwards.
  const auto ok = receiver.receive(sender.cdm(3), cdm_time(config, 3));
  ASSERT_EQ(ok.cdms.size(), 1u);
  EXPECT_EQ(ok.cdms[0].path, CdmAuthPath::kHashChain);
}

TEST(MultiLevelReceiver, FloodedCdmsFilteredAtKeyDisclosure) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(6));
  // Interval 1: one authentic CDM copy among forged ones.
  Rng rng(7);
  (void)receiver.receive(sender.cdm(1), cdm_time(config, 1));
  for (int f = 0; f < 2; ++f) {
    wire::CdmPacket forged = sender.cdm(1);
    forged.mac = rng.bytes(10);
    forged.low_commitment = rng.bytes(10);
    (void)receiver.receive(forged, cdm_time(config, 1));
  }
  const auto events = receiver.receive(sender.cdm(2), cdm_time(config, 2));
  ASSERT_EQ(events.cdms.size(), 1u);  // the authentic one won
  EXPECT_EQ(receiver.stats().cdm_forged_dropped, 2u);
  EXPECT_TRUE(receiver.low_chain_known(3));
}

TEST(MultiLevelReceiver, LateCdmCopyIsUnsafe) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(8));
  // CDM_1 arriving during interval 2 is unsafe (K_1 may be public).
  (void)receiver.receive(sender.cdm(1), cdm_time(config, 2));
  EXPECT_EQ(receiver.stats().cdm_unsafe, 1u);
}

TEST(MultiLevelReceiver, OriginalRecoversLowChainViaNextHighKey) {
  // Drop every disclosure in interval 2 from j=1 (no keys at all): data
  // of interval 2 recovers when K_3 becomes known (CDM_4 arrival... but
  // K_3 is disclosed by CDM_4; under the original link low chain 2 is
  // anchored to K_3).
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(9));
  (void)receiver.receive(sender.cdm(1), cdm_time(config, 1));
  (void)receiver.receive(sender.cdm(2), cdm_time(config, 2));
  // Data packet (2, 3) with its disclosure stripped.
  auto data = sender.make_data_packet(2, 3, bytes_of("lost-keys"));
  data.disclosed_interval = 0;
  data.disclosed_key.clear();
  auto events = receiver.receive(data, data_time(config, 2, 3));
  EXPECT_TRUE(events.messages.empty());

  // CDM_3 discloses K_2: not enough under the original link.
  events = receiver.receive(sender.cdm(3), cdm_time(config, 3));
  EXPECT_TRUE(events.messages.empty());

  // CDM_4 discloses K_3 -> low chain of interval 2 derivable -> data out.
  events = receiver.receive(sender.cdm(4), cdm_time(config, 4));
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_EQ(events.messages[0].message, bytes_of("lost-keys"));
  ASSERT_FALSE(events.recoveries.empty());
  EXPECT_GE(receiver.stats().low_chains_recovered_via_high, 1u);
}

TEST(MultiLevelReceiver, EftpRecoversOneIntervalSooner) {
  // Same scenario as above but with the EFTP link: K_2 (disclosed by
  // CDM_3) already anchors low chain 2.
  const auto config = test_config(crypto::LevelLink::kEftp, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(10));
  (void)receiver.receive(sender.cdm(1), cdm_time(config, 1));
  (void)receiver.receive(sender.cdm(2), cdm_time(config, 2));
  auto data = sender.make_data_packet(2, 3, bytes_of("lost-keys"));
  data.disclosed_interval = 0;
  data.disclosed_key.clear();
  (void)receiver.receive(data, data_time(config, 2, 3));

  const auto events = receiver.receive(sender.cdm(3), cdm_time(config, 3));
  ASSERT_EQ(events.messages.size(), 1u);  // one interval earlier than original
  EXPECT_EQ(events.messages[0].message, bytes_of("lost-keys"));
}

TEST(MultiLevelReceiver, ForgedDataRejected) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(11));
  wire::TeslaPacket forged = sender.make_data_packet(1, 3, bytes_of("real"));
  forged.message = bytes_of("evil");
  (void)receiver.receive(forged, data_time(config, 1, 3));
  // Deliver the disclosure for (1,3) via packet (1,5).
  const auto events = receiver.receive(
      sender.make_data_packet(1, 5, bytes_of("x")), data_time(config, 1, 5));
  EXPECT_TRUE(events.messages.empty());
  EXPECT_EQ(receiver.stats().data_rejected, 1u);
}

TEST(MultiLevelReceiver, LostCdmBlocksFutureIntervalUntilRecovery) {
  // CDM_1 (carrying low commitment of interval 3) is lost entirely. Data
  // of interval 3 cannot authenticate from its own disclosures because
  // the receiver has no commitment; the high-key recovery path fixes it.
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(12));
  // Interval 1: CDM lost. Interval 2: CDM received.
  (void)receiver.receive(sender.cdm(2), cdm_time(config, 2));
  EXPECT_FALSE(receiver.low_chain_known(3));
  // Interval 3 data buffered (commitment unknown).
  auto events = receiver.receive(sender.make_data_packet(3, 3, bytes_of("m")),
                                 data_time(config, 3, 3));
  EXPECT_TRUE(events.messages.empty());
  // Under the original link, chain 3 is anchored to K_4, which CDM_5
  // discloses; CDM_3/CDM_4 are not enough.
  (void)receiver.receive(sender.cdm(3), cdm_time(config, 3));
  events = receiver.receive(sender.cdm(4), cdm_time(config, 4));
  EXPECT_FALSE(receiver.low_chain_known(3));
  EXPECT_TRUE(events.messages.empty());
  events = receiver.receive(sender.cdm(5), cdm_time(config, 5));
  EXPECT_TRUE(receiver.low_chain_known(3));
  ASSERT_EQ(events.messages.size(), 1u);
}

TEST(MultiLevelReceiver, GilbertElliottBurstRecoversViaHighChain) {
  // A bursty Gilbert–Elliott link (lossless good state, total loss in the
  // bad state) eats a run of consecutive CDMs — the correlated-loss case
  // multi-level μTESLA's high-key link exists for. Seed 1 realizes the
  // delivery pattern D D D L L D L D over CDMs 1..8: the burst swallows
  // CDM_4 (carrying chain 6's commitment), so interval-6 data must be
  // buffered until CDM_8 discloses K_7 and the high link re-anchors the
  // low chain.
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(14));
  sim::GilbertElliottChannel channel(0.5, 0.5, 0.0, 1.0);
  Rng channel_rng(1);

  std::string realized;
  MultiLevelEvents events;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    const bool delivered = channel.deliver(channel_rng);
    realized += delivered ? 'D' : 'L';
    if (delivered) {
      events = receiver.receive(sender.cdm(i), cdm_time(config, i));
    }
    if (i == 5) {
      // Mid-burst: chain 6's commitment went down with CDM_4, so data of
      // interval 6 parks in the buffer instead of authenticating.
      EXPECT_FALSE(receiver.low_chain_known(6));
      const auto buffered = receiver.receive(
          sender.make_data_packet(6, 1, bytes_of("m")), data_time(config, 6, 1));
      EXPECT_TRUE(buffered.messages.empty());
    }
  }
  ASSERT_EQ(realized, "DDDLLDLD");
  // CDM_8 disclosed K_7, the anchor of low chain 6: the receiver
  // recovered the chain through the high level and released the message.
  EXPECT_TRUE(receiver.low_chain_known(6));
  EXPECT_GE(receiver.stats().low_chains_recovered_via_high, 1u);
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_EQ(events.messages[0].message, bytes_of("m"));
}

TEST(MultiLevelReceiver, IgnoresOutOfRangeIntervals) {
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), Rng(13));
  wire::CdmPacket bogus;
  bogus.sender = 1;
  bogus.high_interval = 99;
  EXPECT_NO_THROW(receiver.receive(bogus, cdm_time(config, 1)));
  wire::TeslaPacket data;
  data.sender = 1;
  data.interval = 9999;
  EXPECT_NO_THROW(receiver.receive(data, cdm_time(config, 1)));
}

}  // namespace
}  // namespace dap::tesla

// ----------------------------------------------- bounded data buffering

namespace dap::tesla {
namespace {

TEST(MultiLevelReceiver, DataFloodCannotExhaustMemory) {
  auto config = test_config(crypto::LevelLink::kOriginal, false);
  config.data_buffers = 4;
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), common::Rng(31));
  // 100 forged data packets for (1, 3) — all buffered copies must fit in
  // the per-interval reservoir.
  common::Rng rng(32);
  for (int f = 0; f < 100; ++f) {
    wire::TeslaPacket forged;
    forged.sender = config.sender_id;
    forged.interval = config.global_index(1, 3);
    forged.message = rng.bytes(32);
    forged.mac = rng.bytes(10);
    (void)receiver.receive(forged, data_time(config, 1, 3));
  }
  // The authentic packet also arrives; with 4 slots over 101 copies it
  // survives with probability ~4%, so usually the flood wins this round —
  // but memory stayed bounded and nothing forged authenticates. Packet
  // (1, 5) discloses the key of (1, 3) and drains the buffer.
  (void)receiver.receive(sender.make_data_packet(1, 3, bytes_of("real")),
                         data_time(config, 1, 3));
  (void)receiver.receive(sender.make_data_packet(1, 5, bytes_of("carrier")),
                         data_time(config, 1, 5));
  EXPECT_LE(receiver.stats().data_authenticated, 2u);
  EXPECT_GE(receiver.stats().data_rejected, config.data_buffers - 1);
}

TEST(MultiLevelReceiver, MultipleAuthenticCopiesStillAuthenticate) {
  // Benign duplicates (retransmissions) are deduplicated only by the
  // reservoir; every surviving copy verifies.
  const auto config = test_config(crypto::LevelLink::kOriginal, false);
  MultiLevelSender sender(config, bytes_of("seed"));
  MultiLevelReceiver receiver(config, sender.bootstrap(),
                              sim::LooseClock(0, 0), common::Rng(33));
  const auto packet = sender.make_data_packet(1, 3, bytes_of("dup"));
  (void)receiver.receive(packet, data_time(config, 1, 3));
  (void)receiver.receive(packet, data_time(config, 1, 3));
  // Key for (1,3) disclosed by packet (1,5).
  const auto events = receiver.receive(
      sender.make_data_packet(1, 5, bytes_of("x")), data_time(config, 1, 5));
  EXPECT_GE(events.messages.size(), 2u);  // both copies released
}

}  // namespace
}  // namespace dap::tesla
