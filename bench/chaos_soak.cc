// Chaos soak — seeded fault schedules (jitter/duplication/blackout/clock
// faults/crash) through concurrent DAP and TESLA++ sessions while a
// flooding + late-key-forging adversary stays active. Two invariants
// must hold for every mix and seed: zero forged authentications, and
// every receiver reconverging within the bounded tail. Exits non-zero on
// any violation, so the --smoke run doubles as a ctest.

#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/chaos.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dap;
  const std::size_t threads = bench::configure_threads(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::banner(
      std::string("chaos soak — fault injection vs receiver recovery") +
          (smoke ? " (smoke)" : ""),
      "Sec. VII robustness: authentication must survive adverse channels",
      "0 forged authentications ever; every receiver reconverges within "
      "the bounded tail after faults clear");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";

  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{7}
            : std::vector<std::uint64_t>{7, 11, 23, 42};

  common::TextTable table({"mix", "seed", "dap auth", "tpp auth", "episodes",
                           "resyncs", "exhausted", "crashes", "forged",
                           "reconverged"});
  common::CsvWriter csv(
      bench::csv_path("chaos_soak"),
      {"mix_index", "seed", "dap_authenticated", "teslapp_authenticated",
       "resync_episodes", "resync_successes", "budget_exhausted",
       "forged_accepted", "all_reconverged"});

  // Build the full (mix, seed) plan, then fan every soak out across the
  // parallel engine; reports come back in plan order with telemetry
  // merged deterministically.
  const auto mixes = analysis::standard_fault_mixes();
  std::vector<analysis::ChaosConfig> configs;
  std::vector<std::pair<std::string, std::uint64_t>> labels;
  for (const auto& [name, mix] : mixes) {
    for (const std::uint64_t seed : seeds) {
      analysis::ChaosConfig config;
      config.seed = seed;
      config.mix = mix;
      if (smoke) {
        config.receivers = 2;
        config.fault_from = 6;
        config.fault_until = 14;
        config.reconverge_within = 8;
      }
      configs.push_back(config);
      labels.emplace_back(name, seed);
    }
  }
  const auto reports = [&] {
    const bench::PhaseTimer phase("soaks");
    return analysis::run_chaos_soaks(configs);
  }();

  bool ok = true;
  for (std::size_t run = 0; run < reports.size(); ++run) {
    const auto& report = reports[run];
    const auto& name = labels[run].first;
    const std::uint64_t seed = labels[run].second;
    const std::size_t mix_index = run / seeds.size();
    {
      std::uint64_t dap_auth = 0, tpp_auth = 0, episodes = 0, resyncs = 0,
                    exhausted = 0, crashes = 0;
      for (const auto& r : report.dap) {
        dap_auth += r.authenticated;
        episodes += r.resync_episodes;
        resyncs += r.resync_successes;
        exhausted += r.budget_exhausted;
        crashes += r.crash_restarts;
      }
      for (const auto& r : report.teslapp) {
        tpp_auth += r.authenticated;
        episodes += r.resync_episodes;
        resyncs += r.resync_successes;
        exhausted += r.budget_exhausted;
        crashes += r.crash_restarts;
      }
      table.add_row({name, std::to_string(seed), std::to_string(dap_auth),
                     std::to_string(tpp_auth), std::to_string(episodes),
                     std::to_string(resyncs), std::to_string(exhausted),
                     std::to_string(crashes),
                     std::to_string(report.forged_accepted_total),
                     report.all_reconverged ? "yes" : "NO"});
      csv.row({static_cast<double>(mix_index), static_cast<double>(seed),
               static_cast<double>(dap_auth), static_cast<double>(tpp_auth),
               static_cast<double>(episodes), static_cast<double>(resyncs),
               static_cast<double>(exhausted),
               static_cast<double>(report.forged_accepted_total),
               report.all_reconverged ? 1.0 : 0.0});
      if (report.forged_accepted_total != 0) {
        std::cerr << "INVARIANT VIOLATION: forged message authenticated "
                  << "(mix=" << name << " seed=" << seed << ")\n";
        ok = false;
      }
      if (!report.all_reconverged) {
        std::cerr << "INVARIANT VIOLATION: receiver failed to reconverge "
                  << "(mix=" << name << " seed=" << seed << ")\n";
        ok = false;
      }
    }
  }
  std::cout << table.render();
  std::cout << "\nepisodes/resyncs: desync episodes declared and handshakes "
               "completed across all\nreceivers and both stacks; 'exhausted' "
               "counts retry budgets spent against an\nunreachable timesync "
               "responder (step mix).\n";
  bench::set_run_scenario(smoke ? "chaos_soak:smoke" : "chaos_soak:full");
  bench::footer("chaos_soak");
  return ok ? 0 : 1;
}
