// E16 — ablation of the evaluation constants: the paper fixes
// Ra=200, k1=20, k2=4 with only qualitative justification. This sweep
// shows that the structure behind Figs. 6-8 — the canonical regime
// ordering in m and the existence of a give-up threshold p_crit — is a
// property of the model, not of those numbers; only positions move.

#include <iostream>

#include "bench_util.h"
#include "game/sensitivity.h"

int main() {
  using namespace dap;
  bench::banner(
      "E16 — ablation: payoff constants (Ra, k1, k2)",
      "the Sec. VI-B.1 settings ('reference values to reflect relative "
      "relationships')",
      "regime order (1,1)->(1,Y')->(X*,Y*)->(X',1) invariant; p_crit and "
      "boundaries shift with the constants");

  struct Variant {
    const char* label;
    double Ra, k1, k2;
  };
  const Variant variants[] = {
      {"paper (200, 20, 4)", 200, 20, 4},
      {"cheap attacks (200, 10, 4)", 200, 10, 4},
      {"costly attacks (200, 40, 4)", 200, 40, 4},
      {"cheap defence (200, 20, 2)", 200, 20, 2},
      {"costly defence (200, 20, 8)", 200, 20, 8},
      {"low stakes (100, 20, 4)", 100, 20, 4},
      {"high stakes (400, 20, 4)", 400, 20, 4},
  };

  common::TextTable table({"constants", "regimes at p=0.8 (m ranges)",
                           "canonical order", "p_crit (give-up)"});
  common::CsvWriter csv(bench::csv_path("ablate_constants"),
                        {"Ra", "k1", "k2", "p_crit"});
  for (const auto& v : variants) {
    game::GameParams base;
    base.Ra = v.Ra;
    base.k1 = v.k1;
    base.k2 = v.k2;
    base.xa = 0.8;
    base.m = 1;
    const auto spans = game::regime_spans(base, 0.8, 100);
    std::string description;
    for (const auto& span : spans) {
      if (!description.empty()) description += " ";
      description += std::string(game::ess_kind_name(span.kind)) + ":" +
                     std::to_string(span.m_first) + "-" +
                     std::to_string(span.m_last);
    }
    const auto p_crit = game::critical_attack_level(base);
    table.add_row({v.label, description,
                   game::canonical_regime_order(spans) ? "yes" : "NO",
                   p_crit ? common::format_number(*p_crit) : "none<0.999"});
    csv.row({v.Ra, v.k1, v.k2, p_crit ? *p_crit : -1.0});
  }
  std::cout << table.render();
  std::cout << "\nreading: every variant keeps the canonical ordering; "
               "cheaper attacks or costlier\ndefence pull the give-up "
               "threshold down (the defender quits earlier), and vice\n"
               "versa — the paper's story survives its arbitrary "
               "constants.\n";
  bench::footer("ablate_constants");
  return 0;
}
