// E14 / Fig. 8 (empirical) — the defence-cost comparison re-measured on
// real DAP receivers: populations of nodes playing the ESS mixed
// strategy against genuine floods, with attack outcomes coming from the
// protocol (reservoir buffers + μMAC auth), not from the p^m formula.

#include <iostream>

#include "analysis/empirical.h"
#include "bench_util.h"

int main() {
  using namespace dap;
  bench::banner(
      "Fig. 8 (empirical) — measured population cost, game vs naive",
      "ICDCS'16 DAP paper, Fig. 8, with protocol-level attack outcomes",
      "measured E and N track the analytic curves; E <= N throughout");

  common::TextTable table({"p", "m*", "ESS", "E analytic", "E measured",
                           "N analytic", "N measured",
                           "defended-round losses"});
  common::CsvWriter csv(bench::csv_path("fig8_empirical"),
                        {"p", "m", "E_analytic", "E_measured", "N_analytic",
                         "N_measured"});
  for (double p : {0.6, 0.8, 0.9, 0.95}) {
    analysis::EmpiricalCostConfig config;
    config.p = p;
    config.nodes = 60;
    config.intervals = 25;
    config.seed = 5150 + static_cast<std::uint64_t>(p * 1000);
    const auto r = analysis::empirical_defense_cost(config);
    table.add_row(
        {common::format_number(p), std::to_string(r.m_opt),
         game::ess_kind_name(r.ess.kind),
         common::format_number(r.analytic_E),
         common::format_number(r.empirical_E),
         common::format_number(r.analytic_N),
         common::format_number(r.empirical_N),
         std::to_string(r.rounds_lost_defended) + "/" +
             std::to_string(r.rounds_defended)});
    csv.row({p, static_cast<double>(r.m_opt), r.analytic_E, r.empirical_E,
             r.analytic_N, r.empirical_N});
  }
  std::cout << table.render();
  std::cout << "\nreading: the analytic model's only protocol assumption is "
               "P = p^m; with real\nreceivers the measured costs land on "
               "the analytic curves, and the measured\nE stays below the "
               "measured N at every attack level.\n";
  bench::footer("fig8_empirical");
  return 0;
}
