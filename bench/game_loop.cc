// Game-loop bench: closes the evolutionary-game loop online.
//
// Part 1 — ESS convergence: the adaptive flooding adversary re-tunes its
// attack share along discretized replicator dynamics from observed
// per-interval authentication outcomes, across relay topologies (tree,
// gossip, flood) and learning rates. The offline solver's Y'(X=1) rest
// point under the reservoir success model is the oracle; the bench
// reports |empirical - oracle| per scenario (strategy.ess_gap.<id>
// gauges, gated by bench_trend gate 7). A small systematic gap is
// expected: the learner also observes the sentinel, which authenticates
// every authentic reveal, so its success estimate is biased low by
// ~1/members — shrinking with cohort size, covered by the tolerance.
//
// Part 2 — protocol curves: DAP vs TESLA++ vs MABS under the same flood
// intensity sweep. DAP and TESLA++ share the announce-then-reveal wire
// format (equal bandwidth); the separation is receiver memory — TESLA++
// buffers every announce record, DAP's reservoir caps at m, and MABS
// (per-batch Merkle signatures) buffers nothing at a per-packet
// bandwidth cost of one auth path plus the amortized root signature.
//
// The whole CSV is bitwise identical at any DAP_THREADS (scenarios are
// deterministic from their specs; rows are emitted in slot order after
// the join). Exits non-zero when a forged message authenticates
// anywhere, an ESS gap exceeds tolerance, or a protocol invariant
// (full authentic auth, MABS zero storage, DAP memory cap) breaks.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dap/dap.h"
#include "fleet/scenario.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/adversary.h"
#include "sim/faults.h"
#include "sim/time.h"
#include "strategy/mabs.h"
#include "strategy/runner.h"
#include "tesla/teslapp.h"

namespace {

using namespace dap;

/// Restores the calling thread's registry/tracer overrides on scope
/// exit (same idiom as fleet_scale: each scenario runs against a local
/// pair so the parallel fan-out stays deterministic).
struct ScopedObsOverride {
  ScopedObsOverride(obs::Registry* registry, obs::Tracer* tracer)
      : prev_registry(obs::Registry::set_thread_override(registry)),
        prev_tracer(obs::Tracer::set_thread_override(tracer)) {}
  ~ScopedObsOverride() {
    obs::Registry::set_thread_override(prev_registry);
    obs::Tracer::set_thread_override(prev_tracer);
  }
  obs::Registry* prev_registry;
  obs::Tracer* prev_tracer;
};

struct EssScenario {
  std::string label;
  double eta = 0.25;
  fleet::ScenarioSpec spec;
};

/// m = 2 buffers against F = 3 forged copies puts the reservoir success
/// at P = 0.5, so the oracle rest point is interior (~0.74) — the
/// learner genuinely has to climb to it.
fleet::ScenarioSpec ess_base(bool smoke) {
  fleet::ScenarioSpec spec;
  spec.name = "game";
  spec.seed = 42;
  spec.buffers = 2;
  spec.forged_fraction = 0.75;
  spec.members_per_cohort = smoke ? 12 : 24;
  spec.intervals = smoke ? 32 : 64;
  spec.interval_us = 200 * sim::kMillisecond;
  spec.hop.latency_us = sim::kMillisecond;
  spec.strategy.adaptive.enabled = true;
  return spec;
}

std::vector<EssScenario> ess_scenarios(bool smoke) {
  std::vector<EssScenario> scenarios;
  const std::vector<double> etas =
      smoke ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.4, 0.6};
  for (const double eta : etas) {
    {
      EssScenario s;
      s.eta = eta;
      s.spec = ess_base(smoke);
      s.spec.kind = fleet::TopologyKind::kTree;
      s.spec.depth = 2;
      s.spec.fanout = 1;
      s.spec.strategy.adaptive.learning_rate = eta;
      s.label = "tree_eta" + common::format_number(eta);
      scenarios.push_back(s);
    }
    {
      EssScenario s;
      s.eta = eta;
      s.spec = ess_base(smoke);
      s.spec.kind = fleet::TopologyKind::kGossip;
      s.spec.relays = 4;
      s.spec.fanin = 2;
      s.spec.strategy.adaptive.learning_rate = eta;
      s.label = "gossip_eta" + common::format_number(eta);
      scenarios.push_back(s);
    }
    {
      EssScenario s;
      s.eta = eta;
      s.spec = ess_base(smoke);
      s.spec.kind = fleet::TopologyKind::kFlood;
      s.spec.receivers = 3;
      s.spec.strategy.adaptive.learning_rate = eta;
      s.label = "flood_eta" + common::format_number(eta);
      scenarios.push_back(s);
    }
  }
  return scenarios;
}

// ---- Part 2: protocol comparison ----------------------------------------

struct ProtoPoint {
  std::uint64_t packets = 0;
  std::uint64_t authenticated = 0;
  std::uint64_t forged_sent = 0;
  std::uint64_t forged_accepted = 0;
  std::uint64_t stored_peak = 0;
  double bits_per_auth = 0.0;
};

constexpr std::uint32_t kProtoIntervals = 24;

/// One DAP receiver and one TESLA++ receiver behind the same announce /
/// flood / reveal script (no medium: direct delivery, perfect link).
/// Forged announces carry random MACs whose reveals never arrive, so
/// they cost memory, not authenticity — the exact DoS surface the
/// reservoir caps.
std::pair<ProtoPoint, ProtoPoint> run_dap_tpp(double forged_fraction) {
  const std::uint32_t total = kProtoIntervals;
  const sim::SimTime interval = 200 * sim::kMillisecond;
  const sim::IntervalSchedule sched(0, interval);
  const std::size_t forged_per_interval =
      forged_fraction > 0.0
          ? sim::FloodingForger::copies_for_fraction(1, forged_fraction)
          : 0;
  common::Rng rng(common::subseed(42, 0x6a3e));

  protocol::DapConfig dap_config;
  dap_config.sender_id = 1;
  dap_config.chain_length = total + 8;
  dap_config.buffers = 4;
  dap_config.schedule = sched;
  tesla::TeslaPpConfig tpp_config;
  tpp_config.sender_id = 2;
  tpp_config.chain_length = total + 8;
  tpp_config.schedule = sched;

  protocol::DapSender dap_sender(dap_config, rng.bytes(16));
  tesla::TeslaPpSender tpp_sender(tpp_config, rng.bytes(16));
  sim::FloodingForger dap_forger(1, dap_config.mac_size, rng.fork(1));
  sim::FloodingForger tpp_forger(2, tpp_config.mac_size, rng.fork(2));

  const sim::FaultyClock clock{sim::LooseClock(0, 2 * sim::kMillisecond)};
  const auto secret = common::bytes_of("proto-curve-secret");
  protocol::DapReceiver dap_rx(dap_config, dap_sender.chain().commitment(),
                               secret, clock.believed(), rng.fork(3));
  tesla::TeslaPpReceiver tpp_rx(tpp_config, tpp_sender.chain().commitment(),
                                secret, clock.believed());

  ProtoPoint dap_point;
  ProtoPoint tpp_point;
  double dap_bits = 0.0;
  double tpp_bits = 0.0;
  for (std::uint32_t i = 1; i <= total; ++i) {
    const sim::SimTime t_mid = sched.interval_start(i) + interval / 2;
    const common::Bytes message =
        common::bytes_of("pkt-" + std::to_string(i));

    ++dap_point.packets;
    ++tpp_point.packets;
    dap_rx.receive(dap_sender.announce(i, message), t_mid);
    tpp_rx.receive(tpp_sender.announce(i, message), t_mid);
    dap_bits += static_cast<double>(dap_config.mac_size) * 8.0;
    tpp_bits += static_cast<double>(tpp_config.mac_size) * 8.0;
    for (std::size_t f = 0; f < forged_per_interval; ++f) {
      ++dap_point.forged_sent;
      ++tpp_point.forged_sent;
      dap_rx.receive(dap_forger.forge(i), t_mid + 1 + static_cast<long>(f));
      tpp_rx.receive(tpp_forger.forge(i), t_mid + 1 + static_cast<long>(f));
    }
    dap_point.stored_peak = std::max<std::uint64_t>(dap_point.stored_peak,
                                                    dap_rx.stored_records());
    tpp_point.stored_peak = std::max<std::uint64_t>(tpp_point.stored_peak,
                                                    tpp_rx.stored_records());

    const sim::SimTime t_reveal =
        sched.interval_start(i + 1) + 5 * sim::kMillisecond;
    dap_bits += static_cast<double>(dap_config.key_size + message.size()) * 8.0;
    tpp_bits += static_cast<double>(tpp_config.key_size + message.size()) * 8.0;
    if (const auto msg = dap_rx.receive(dap_sender.reveal(i), t_reveal)) {
      ++dap_point.authenticated;
    }
    tpp_point.authenticated += tpp_rx.receive(tpp_sender.reveal(i), t_reveal)
                                   .size();
  }
  // Forged reveals never arrive (the flood's MACs are random), so any
  // forged authentication must show up as an authentic-count overshoot.
  dap_point.forged_accepted =
      dap_point.authenticated > dap_point.packets
          ? dap_point.authenticated - dap_point.packets
          : 0;
  tpp_point.forged_accepted =
      tpp_point.authenticated > tpp_point.packets
          ? tpp_point.authenticated - tpp_point.packets
          : 0;
  dap_point.bits_per_auth =
      dap_point.authenticated > 0
          ? dap_bits / static_cast<double>(dap_point.authenticated)
          : 0.0;
  tpp_point.bits_per_auth =
      tpp_point.authenticated > 0
          ? tpp_bits / static_cast<double>(tpp_point.authenticated)
          : 0.0;
  return {dap_point, tpp_point};
}

ProtoPoint run_mabs_point(double forged_fraction) {
  strategy::MabsConfig config;
  config.seed = 42;
  config.intervals = kProtoIntervals;
  config.packets_per_interval = 8;
  config.signer_height = 6;
  config.forged_per_interval =
      forged_fraction > 0.0
          ? sim::FloodingForger::copies_for_fraction(1, forged_fraction) *
                config.packets_per_interval
          : 0;
  const strategy::MabsReport report = strategy::run_mabs(config);
  ProtoPoint point;
  point.packets = report.packets_sent;
  point.authenticated = report.authenticated;
  point.forged_sent = report.forged_sent;
  point.forged_accepted = report.forged_sent - report.forged_rejected;
  point.stored_peak = report.stored_records;
  point.bits_per_auth =
      report.authenticated > 0
          ? static_cast<double>(report.bits_sent) /
                static_cast<double>(report.authenticated)
          : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bench::configure_threads(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::banner(
      std::string("game loop — adaptive adversary vs offline ESS, and the "
                  "protocol family curves") +
          (smoke ? " (smoke)" : ""),
      "evolutionary game (paper section V): replicator-driven attacker "
      "converging to the ESS, DAP vs TESLA++ vs MABS trade-off curves",
      "empirical attack share within tolerance of the oracle at every "
      "learning rate and topology; zero forged auths; TESLA++ memory grows "
      "with flood intensity while DAP stays capped and MABS stores nothing");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";

  const double gap_tolerance = 0.2;
  const auto scenarios = ess_scenarios(smoke);

  // Each scenario runs against a private registry/tracer pair. The
  // locals are NOT merged back: several scenarios would race on the
  // canonical strategy.* gauges (gauge merges are last-writer-wins), so
  // the bench instead republishes the aggregate telemetry below, in
  // slot order — deterministic at any thread count.
  const auto outcomes = [&] {
    const bench::PhaseTimer phase("ess_sweep");
    return common::parallel_map<strategy::StrategyOutcome>(
        scenarios.size(), [&scenarios](std::size_t i) {
          obs::Registry local;
          obs::Tracer local_tracer(std::size_t{1} << 12);
          const ScopedObsOverride scope(&local, &local_tracer);
          return strategy::run_scenario(scenarios[i].spec);
        });
  }();

  auto& reg = obs::Registry::global();
  common::TextTable ess_table({"scenario", "eta", "oracle p", "measured p",
                               "gap", "attacks", "forged ok"});
  common::CsvWriter csv(
      bench::csv_path("game_loop"),
      {"section", "row", "p", "oracle_p", "measured_p", "ess_gap",
       "attacks_launched", "packets", "authenticated", "auth_rate",
       "forged_sent", "forged_accepted", "stored_peak", "bits_per_auth"});

  bool ok = true;
  std::size_t worst = 0;
  std::uint64_t attacks_total = 0;
  std::uint64_t forged_total = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const strategy::StrategyOutcome& out = outcomes[i];
    const EssScenario& scenario = scenarios[i];
    if (out.ess_gap > outcomes[worst].ess_gap) worst = i;
    attacks_total += out.attacks_launched;
    forged_total += out.report.forged_accepted;
    reg.set(reg.gauge("strategy.ess_gap." + scenario.label), out.ess_gap);
    ess_table.add_row({scenario.label, common::format_number(scenario.eta),
                       common::format_number(out.oracle_share),
                       common::format_number(out.attacker_share),
                       common::format_number(out.ess_gap),
                       std::to_string(out.attacks_launched),
                       std::to_string(out.report.forged_accepted)});
    csv.row_text({"ess", scenario.label,
                  common::format_number(scenario.spec.forged_fraction),
                  common::format_number(out.oracle_share),
                  common::format_number(out.attacker_share),
                  common::format_number(out.ess_gap),
                  std::to_string(out.attacks_launched),
                  std::to_string(out.report.member_auths),
                  std::to_string(out.report.member_auths), "",
                  std::to_string(out.report.forged_announces_sent),
                  std::to_string(out.report.forged_accepted),
                  std::to_string(out.report.stored_records_peak), ""});
    if (out.ess_gap > gap_tolerance) {
      std::cerr << "INVARIANT VIOLATION: ess_gap " << out.ess_gap << " > "
                << gap_tolerance << " (" << scenario.label << ")\n";
      ok = false;
    }
    if (out.report.forged_accepted != 0) {
      std::cerr << "INVARIANT VIOLATION: forged message authenticated under "
                   "the adaptive adversary (" << scenario.label << ")\n";
      ok = false;
    }
    if (out.attacks_launched == 0) {
      std::cerr << "INVARIANT VIOLATION: the adaptive adversary never "
                   "attacked (" << scenario.label << ")\n";
      ok = false;
    }
  }
  // Canonical gauges (gate 7 reads these and the per-scenario ones):
  // published from the worst-gap scenario so the gate sees the bound.
  reg.set(reg.gauge("strategy.attacker.p"), outcomes[worst].attacker_share);
  reg.set(reg.gauge("strategy.oracle.p"), outcomes[worst].oracle_share);
  reg.set(reg.gauge("strategy.ess_gap"), outcomes[worst].ess_gap);
  reg.add(reg.counter("strategy.attacks_launched"), attacks_total);
  reg.add(reg.counter("strategy.forged_accepted"), forged_total);

  std::cout << ess_table.render() << '\n';

  // ---- Protocol family curves -------------------------------------------
  common::TextTable proto_table({"protocol", "p", "auth rate", "forged ok",
                                 "stored peak", "bits/auth"});
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.0, 0.9}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75, 0.9};
  {
    const bench::PhaseTimer phase("protocol_curves");
    for (const double p : fractions) {
      const std::size_t copies =
          p > 0.0 ? sim::FloodingForger::copies_for_fraction(1, p) : 0;
      const auto [dap_point, tpp_point] = run_dap_tpp(p);
      const ProtoPoint mabs_point = run_mabs_point(p);
      const struct {
        const char* name;
        const ProtoPoint& point;
      } rows[] = {{"dap", dap_point},
                  {"teslapp", tpp_point},
                  {"mabs", mabs_point}};
      for (const auto& row : rows) {
        const double auth_rate =
            row.point.packets > 0
                ? static_cast<double>(row.point.authenticated) /
                      static_cast<double>(row.point.packets)
                : 0.0;
        proto_table.add_row({row.name, common::format_number(p),
                             common::format_number(auth_rate),
                             std::to_string(row.point.forged_accepted),
                             std::to_string(row.point.stored_peak),
                             common::format_number(row.point.bits_per_auth)});
        csv.row_text({"protocol", row.name, common::format_number(p), "", "",
                      "", "", std::to_string(row.point.packets),
                      std::to_string(row.point.authenticated),
                      common::format_number(auth_rate),
                      std::to_string(row.point.forged_sent),
                      std::to_string(row.point.forged_accepted),
                      std::to_string(row.point.stored_peak),
                      common::format_number(row.point.bits_per_auth)});
        if (row.point.forged_accepted != 0) {
          std::cerr << "INVARIANT VIOLATION: forged accepted by " << row.name
                    << " at p=" << p << "\n";
          ok = false;
        }
        // TESLA++ and MABS authenticate every authentic packet at any
        // flood intensity (they buffer or verify immediately). DAP only
        // once the offer load fits its reservoir; above that the auth
        // rate decays toward m/(F+1) — the paper's attack-success curve,
        // bounded away from zero but below one.
        const bool full_auth_expected =
            std::strcmp(row.name, "dap") != 0 || copies + 1 <= 4;
        if (full_auth_expected &&
            row.point.authenticated != row.point.packets) {
          std::cerr << "INVARIANT VIOLATION: " << row.name
                    << " authenticated " << row.point.authenticated << "/"
                    << row.point.packets << " authentic packets at p=" << p
                    << "\n";
          ok = false;
        }
        if (!full_auth_expected &&
            (row.point.authenticated == 0 ||
             row.point.authenticated >= row.point.packets)) {
          std::cerr << "INVARIANT VIOLATION: DAP auth count "
                    << row.point.authenticated << "/" << row.point.packets
                    << " outside the reservoir-decay regime at p=" << p
                    << "\n";
          ok = false;
        }
      }
      // The separation the family exists for: TESLA++ buffers the whole
      // flood, DAP's reservoir stays O(m) — the current interval's cap
      // plus at most one undisclosed interval's carry — and MABS stores
      // nothing. The TESLA++ > DAP ordering only bites once the flood
      // actually exceeds DAP's bound (copies + 1 > 2m); below that the
      // two coincide by construction.
      if (dap_point.stored_peak > 2 * 4 /* 2 * buffers */) {
        std::cerr << "INVARIANT VIOLATION: DAP stored " <<
            dap_point.stored_peak << " records > 2m bound at p=" << p
                  << "\n";
        ok = false;
      }
      if (mabs_point.stored_peak != 0) {
        std::cerr << "INVARIANT VIOLATION: MABS stored "
                  << mabs_point.stored_peak << " records (must be 0)\n";
        ok = false;
      }
      if (copies + 1 > 2 * 4 &&
          tpp_point.stored_peak <= dap_point.stored_peak) {
        std::cerr << "INVARIANT VIOLATION: TESLA++ stored peak "
                  << tpp_point.stored_peak
                  << " not above DAP's cap under flood (p=" << p << ")\n";
        ok = false;
      }
    }
  }

  std::cout << proto_table.render();
  std::cout << "\nThe attacker's learned share tracks the offline ESS "
               "prediction at every\nlearning rate (gap gated at "
            << gap_tolerance << "), while no forged message ever\n"
               "authenticates. TESLA++ memory grows with flood intensity; "
               "DAP stays at its\nreservoir cap; MABS trades bandwidth for "
               "zero buffering.\n";
  bench::set_run_scenario(smoke ? "game_loop:smoke" : "game_loop:full");
  bench::footer("game_loop");
  return ok ? 0 : 1;
}
