// E4 / Fig. 8 — average defence cost vs attack level: evolutionary-game
// guided defence E against the naive always-defend-with-M-buffers cost N.

#include <iostream>

#include "analysis/figures.h"
#include "bench_util.h"

int main() {
  using namespace dap;
  bench::banner(
      "Fig. 8 — average defence cost at different DoS levels",
      "ICDCS'16 DAP paper, Fig. 8",
      "E <= N everywhere; E saturates at Ra = 200 past the regime flip "
      "while N keeps climbing (biggest gap at p ~ 1)");

  const auto rows = analysis::fig8_series(analysis::default_p_sweep());
  common::TextTable table({"p", "m*", "E (game)", "N (naive)", "saving"});
  common::CsvWriter csv(bench::csv_path("fig8_defense_cost"),
                        {"p", "m_opt", "E_game", "N_naive"});
  common::Series se{"E (game-guided)", {}, {}};
  common::Series sn{"N (naive, m=50)", {}, {}};
  for (const auto& row : rows) {
    table.add_row({common::format_number(row.p), std::to_string(row.m_opt),
                   common::format_number(row.cost_game),
                   common::format_number(row.cost_naive),
                   common::format_number(row.cost_naive - row.cost_game)});
    csv.row({row.p, static_cast<double>(row.m_opt), row.cost_game,
             row.cost_naive});
    se.xs.push_back(row.p);
    se.ys.push_back(row.cost_game);
    sn.xs.push_back(row.p);
    sn.ys.push_back(row.cost_naive);
  }
  std::cout << table.render() << '\n';
  common::ChartOptions options;
  options.title = "defender cost vs attack level p";
  options.x_label = "p";
  options.y_label = "cost";
  std::cout << common::render_chart({se, sn}, options);
  bench::footer("fig8_defense_cost");
  return 0;
}
