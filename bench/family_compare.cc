// E13 — live protocol-family comparison at the same memory budget: the
// Fig. 5 message re-derived by simulation instead of formula. For one
// 1024-bit record budget, a TESLA++-style node affords 3 buffers (280-bit
// records) while DAP affords 18 (56-bit records); measured attack success
// under identical floods shows how far that separates the two, and a
// rate-limited medium run shows the enforced bandwidth fraction.

#include <cmath>
#include <iostream>

#include "analysis/figures.h"
#include "analysis/montecarlo.h"
#include "bench_util.h"
#include "dap/dap.h"
#include "sim/adversary.h"
#include "sim/event_queue.h"
#include "sim/medium.h"

int main() {
  using namespace dap;
  bench::banner(
      "E13 — protocol family under the same memory budget (live)",
      "the Fig. 5 / Sec. VI-A comparison, re-derived by simulation",
      "DAP's 5x buffer advantage turns the same flood from near-certain "
      "success into near-certain failure");

  const auto buffers = analysis::fig5_buffers({});
  common::TextTable table({"p", "TESLA++-style m=3 (1024b)",
                           "DAP m=18 (1024b)", "TESLA++-style m=1 (512b)",
                           "DAP m=9 (512b)"});
  common::CsvWriter csv(bench::csv_path("family_compare"),
                        {"p", "teslapp_1024", "dap_1024", "teslapp_512",
                         "dap_512"});
  for (double p : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const auto run = [&](std::size_t m, std::uint64_t salt) {
      analysis::MonteCarloConfig config;
      config.p = p;
      config.m = m;
      config.trials = 1200;
      config.seed = 7000 + salt;
      return analysis::measure_attack_success(config)
          .measured_attack_success;
    };
    const double t_large = run(buffers.teslapp_large, 1);
    const double d_large = run(buffers.dap_large, 2);
    const double t_small = run(buffers.teslapp_small, 3);
    const double d_small = run(buffers.dap_small, 4);
    table.add_row_numeric({p, t_large, d_large, t_small, d_small});
    csv.row({p, t_large, d_large, t_small, d_small});
  }
  std::cout << table.render();
  std::cout << "\n(entries are measured attack-success rates; lower is "
               "better for the defender)\n\n";

  // --- Enforced bandwidth fraction: the attacker is physically capped.
  std::cout << "rate-limited medium run (attacker capped at 80% of the MAC "
               "channel, m=6):\n";
  sim::EventQueue queue;
  common::Rng rng(31);
  sim::Medium medium(queue, rng);
  protocol::DapConfig config;
  config.chain_length = 64;
  config.buffers = 6;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender sender(config, common::bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 common::bytes_of("local"),
                                 sim::LooseClock(0, 0), rng.fork(1));
  std::size_t authenticated = 0;
  medium.attach(
      [&](const wire::Packet& packet, sim::SimTime now) {
        if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
          receiver.receive(*a, now);
        } else if (const auto* r = std::get_if<wire::MessageReveal>(&packet)) {
          if (receiver.receive(*r, now)) ++authenticated;
        }
      },
      std::make_unique<sim::PerfectChannel>());

  // Attacker id 99 forges with the victim's sender id inside the packet,
  // but its own transmitter is the rate-limited entity. Here we cap the
  // *victim id* bucket for forged frames by using a distinct forger node
  // that the medium meters: approximate by capping the whole id and
  // sending the authentic frame first each interval.
  wire::MacAnnounce probe;
  probe.sender = config.sender_id;
  probe.mac = common::Bytes(10, 0);
  const double frame_bits =
      static_cast<double>(wire::wire_bits(wire::Packet{probe}));
  medium.set_rate_limit(config.sender_id, 5.0 * frame_bits,
                        5.0 * frame_bits);
  sim::FloodingForger forger(config.sender_id, config.mac_size, rng.fork(2));

  const std::uint32_t intervals = 40;
  std::uint64_t forged_attempted = 0;
  for (std::uint32_t i = 1; i <= intervals; ++i) {
    queue.run_until(config.schedule.interval_start(i) + 1000);
    (void)medium.broadcast(wire::Packet{sender.announce(
        i, common::bytes_of("report"))});
    for (int f = 0; f < 30; ++f) {  // tries 30, bucket admits ~4 more
      ++forged_attempted;
      (void)medium.broadcast(wire::Packet{forger.forge(i)});
    }
    queue.run_until(config.schedule.interval_start(i + 1) + 1000);
    (void)medium.broadcast(wire::Packet{sender.reveal(i)});
  }
  queue.run();
  const std::uint64_t dropped =
      medium.rate_limited_drops(config.sender_id);
  std::cout << "  forged attempted: " << forged_attempted
            << ", dropped by the channel cap: " << dropped
            << " -> on-air forged fraction ~ "
            << common::format_number(
                   static_cast<double>(forged_attempted - dropped) /
                   static_cast<double>(forged_attempted - dropped +
                                       intervals))
            << "\n  authenticated " << authenticated << "/" << intervals
            << " (analytic at the capped p: 1 - p^6 ~ "
            << common::format_number(
                   1 - std::pow(0.8, 6))
            << ")\n";
  bench::footer("family_compare");
  return 0;
}
