// E6 / Sec. VI-A memory accounting — record sizes and buffers-per-budget
// for TESLA-style full records, TESLA++ accounting, and DAP's μMAC
// records, cross-checked against live receiver objects.

#include <iostream>

#include "analysis/figures.h"
#include "bench_util.h"
#include "dap/dap.h"
#include "tesla/teslapp.h"

int main() {
  using namespace dap;
  bench::banner(
      "Sec. VI-A — memory cost per buffered record and buffers per budget",
      "ICDCS'16 DAP paper, evaluation settings of Sec. VI-A / Sec. IV-D",
      "DAP records are 56 bits (80% saving vs 280), so ~5x the buffers "
      "from the same memory");

  const auto rows = analysis::memory_table();
  common::TextTable table({"scheme", "record bits", "buffers@1024",
                           "buffers@512", "memory saving"});
  common::CsvWriter csv(bench::csv_path("memory_cost"),
                        {"record_bits", "buffers_1024", "buffers_512",
                         "saving"});
  for (const auto& row : rows) {
    table.add_row({row.scheme, std::to_string(row.record_bits),
                   std::to_string(row.buffers_at_1024),
                   std::to_string(row.buffers_at_512),
                   common::format_number(row.saving_vs_full * 100) + "%"});
    csv.row({static_cast<double>(row.record_bits),
             static_cast<double>(row.buffers_at_1024),
             static_cast<double>(row.buffers_at_512), row.saving_vs_full});
  }
  std::cout << table.render() << '\n';

  // Live cross-check: actual storage used by receiver objects.
  protocol::DapConfig dap_config;
  protocol::DapSender dap_sender(dap_config, common::bytes_of("seed"));
  protocol::DapReceiver dap_receiver(
      dap_config, dap_sender.chain().commitment(), common::bytes_of("local"),
      sim::LooseClock(0, 0), common::Rng(1));
  dap_receiver.receive(dap_sender.announce(1, common::bytes_of("msg")),
                       sim::kSecond / 2);

  tesla::TeslaPpConfig pp_config;
  tesla::TeslaPpSender pp_sender(pp_config, common::bytes_of("seed"));
  tesla::TeslaPpReceiver pp_receiver(pp_config,
                                     pp_sender.chain().commitment(),
                                     common::bytes_of("local"),
                                     sim::LooseClock(0, 0));
  pp_receiver.receive(pp_sender.announce(1, common::bytes_of("msg")),
                      sim::kSecond / 2);

  std::cout << "live cross-check (one buffered record each):\n"
            << "  DAP receiver stored bits     = "
            << dap_receiver.stored_record_bits() << " (expect 56)\n"
            << "  TESLA++ receiver stored bits = "
            << pp_receiver.stored_record_bits()
            << " (self-MAC record; the paper's 280-bit accounting charges "
               "message+MAC)\n";
  bench::footer("memory_cost");
  return 0;
}
