// Micro-benchmarks (google-benchmark): the primitive costs that bound a
// node's per-packet work — SHA-256, HMAC, key-chain generation and
// verification walks, μMAC re-MACing, DAP receiver hot paths.
//
// Alongside google-benchmark's own console/JSON output, the run leaves
// bench_out/micro_crypto.metrics.json behind: the obs-layer scope
// timers inside hmac/prf/keychain and the DAP receive path populate the
// same log-bucketed histograms the figure benches report through, so
// per-primitive p50/p99 latencies ride in the shared perf baseline.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/mac.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "dap/dap.h"
#include "sim/clock_model.h"

namespace {

using namespace dap;

void BM_Sha256(benchmark::State& state) {
  common::Rng rng(1);
  const common::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  common::Rng rng(2);
  const common::Bytes key = rng.bytes(16);
  const common::Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(25)->Arg(256)->Arg(1024);

void BM_KeyChainGeneration(benchmark::State& state) {
  common::Rng rng(3);
  const common::Bytes seed = rng.bytes(16);
  const auto length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    crypto::KeyChain chain(seed, length);
    benchmark::DoNotOptimize(chain.commitment());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KeyChainGeneration)->Arg(64)->Arg(1024)->Arg(8192);

void BM_ChainWalkVerification(benchmark::State& state) {
  common::Rng rng(4);
  const crypto::KeyChain chain(rng.bytes(16), 1024);
  const auto steps = static_cast<std::size_t>(state.range(0));
  const auto& key = chain.key(steps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::chain_walk(
        crypto::PrfDomain::kChainStep, key, steps, chain.key_size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChainWalkVerification)->Arg(1)->Arg(16)->Arg(256);

void BM_MicroMac(benchmark::State& state) {
  common::Rng rng(5);
  const common::Bytes recv_key = rng.bytes(16);
  const common::Bytes mac = rng.bytes(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::micro_mac(recv_key, mac));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MicroMac);

void BM_WotsSign(benchmark::State& state) {
  common::Rng rng(6);
  const common::Bytes seed = rng.bytes(16);
  const common::Bytes message = rng.bytes(64);
  for (auto _ : state) {
    crypto::WotsKeyPair kp(seed, 4);
    benchmark::DoNotOptimize(kp.sign(message));
  }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  common::Rng rng(7);
  crypto::WotsKeyPair kp(rng.bytes(16), 4);
  const common::Bytes message = rng.bytes(64);
  const auto sig = kp.sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::wots_verify(kp.public_key(), message, sig));
  }
}
BENCHMARK(BM_WotsVerify);

void BM_DapReceiverAnnounce(benchmark::State& state) {
  protocol::DapConfig config;
  config.buffers = static_cast<std::size_t>(state.range(0));
  config.chain_length = 2;
  protocol::DapSender sender(config, common::bytes_of("seed"));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 common::bytes_of("local"),
                                 sim::LooseClock(0, 0), common::Rng(8));
  const auto announce = sender.announce(1, common::bytes_of("message"));
  for (auto _ : state) {
    receiver.receive(announce, sim::kSecond / 2);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DapReceiverAnnounce)->Arg(4)->Arg(16)->Arg(50);

void BM_DapFullRound(benchmark::State& state) {
  protocol::DapConfig config;
  config.buffers = 8;
  config.chain_length = 2;
  common::Rng rng(9);
  for (auto _ : state) {
    protocol::DapSender sender(config, common::bytes_of("seed"));
    protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                   common::bytes_of("local"),
                                   sim::LooseClock(0, 0), rng.fork(1));
    receiver.receive(sender.announce(1, common::bytes_of("m")),
                     sim::kSecond / 2);
    benchmark::DoNotOptimize(
        receiver.receive(sender.reveal(1), sim::kSecond * 3 / 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DapFullRound);

}  // namespace

// Custom main (instead of benchmark_main) so the run also exports the
// obs registry populated by the instrumented primitives.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  dap::bench::write_run_summary("micro_crypto");
  std::cout << "[run summary written to "
            << dap::bench::metrics_path("micro_crypto") << "]\n";
  return 0;
}
