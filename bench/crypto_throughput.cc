// Crypto hot-path throughput: batched multi-lane SHA-256 vs the scalar
// oracle, HMAC midstate caching vs per-call pad recomputation, and the
// batched TESLA chain walk vs the sequential one.
//
// Three tables, one per operation, each row a backend with hashes/sec
// and its speedup over the scalar reference measured in-process. The CSV
// intentionally carries NO timing data — only message/step counts and a
// digest checksum per (op, backend) row, which must be identical across
// backends, lane counts, and thread counts (the determinism contract
// bench_baseline.py diffs). Rates and speedups go to the metrics footer
// as gauges (bench.crypto.*_per_sec / *_speedup), which is what
// bench_trend.py gates.
//
// Exits non-zero if any batched digest diverges from the scalar oracle,
// so the --smoke run doubles as the ctest `crypto_throughput_smoke`.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/csv.h"
#include "common/table.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/sha256_batch.h"

namespace {

using dap::common::Bytes;
using dap::common::ByteView;
namespace crypto = dap::crypto;

template <typename Fn>
double wall_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct Interleaved {
  double base_per_sec = 0;
  std::vector<double> cand_per_sec;
  std::vector<double> cand_speedup;
};

/// Times the baseline and every candidate adjacently within each round,
/// then reports each candidate's speedup as the MEDIAN of the per-round
/// baseline/candidate wall ratios. A CPU-steal or frequency event that
/// lands on one round slows both sides of that round's ratios and is
/// voted out by the other rounds — separate best-of windows have no such
/// protection, and the speedup gauges are regression-gated by
/// bench_trend.py, so they must hold steady on busy shared cores.
/// Rates (ungated, reporting only) come from the best window per side.
Interleaved measure_interleaved(const std::function<void()>& base,
                                const std::vector<std::function<void()>>& cands,
                                int rounds, double work) {
  std::vector<double> base_walls;
  std::vector<std::vector<double>> cand_walls(cands.size());
  for (int r = 0; r < rounds; ++r) {
    base_walls.push_back(wall_seconds(base));
    for (std::size_t c = 0; c < cands.size(); ++c) {
      cand_walls[c].push_back(wall_seconds(cands[c]));
    }
  }
  Interleaved out;
  out.base_per_sec =
      work / *std::min_element(base_walls.begin(), base_walls.end());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    out.cand_per_sec.push_back(
        work /
        *std::min_element(cand_walls[c].begin(), cand_walls[c].end()));
    std::vector<double> ratios;
    for (int r = 0; r < rounds; ++r) {
      ratios.push_back(base_walls[static_cast<std::size_t>(r)] /
                       cand_walls[c][static_cast<std::size_t>(r)]);
    }
    out.cand_speedup.push_back(median_of(std::move(ratios)));
  }
  return out;
}

/// FNV-style fold of a digest list into a 64-bit hex checksum: the fold
/// order is the (fixed) message order, so the value is identical across
/// backends, lane counts, and thread counts — the CSV's determinism
/// witness.
std::string digest_checksum(const std::vector<crypto::Digest>& digests) {
  std::uint64_t acc = 1469598103934665603ULL;
  for (const crypto::Digest& d : digests) {
    for (const std::uint8_t b : d) {
      acc = (acc ^ b) * 1099511628211ULL;
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(acc));
  return buf;
}

std::string checksum_of_keys(const std::vector<Bytes>& keys) {
  std::uint64_t acc = 1469598103934665603ULL;
  for (const Bytes& k : keys) {
    for (const std::uint8_t b : k) {
      acc = (acc ^ b) * 1099511628211ULL;
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(acc));
  return buf;
}

std::vector<crypto::Sha256Backend> supported_backends() {
  std::vector<crypto::Sha256Backend> out{crypto::Sha256Backend::kScalar};
  for (const auto b :
       {crypto::Sha256Backend::kSse2, crypto::Sha256Backend::kAvx2}) {
    crypto::force_sha256_backend(b);
    if (crypto::active_sha256_backend() == b) out.push_back(b);
  }
  crypto::clear_sha256_backend_override();
  return out;
}

struct Row {
  std::string op;
  std::string backend;
  std::size_t messages = 0;
  double per_sec = 0;
  double speedup = 1.0;
  std::string checksum;
};

void set_gauges(const Row& row) {
  auto& reg = dap::obs::Registry::global();
  const std::string base = "bench.crypto." + row.op + "_" + row.backend;
  reg.set(reg.gauge(base + "_per_sec"), row.per_sec);
  reg.set(reg.gauge(base + "_speedup"), row.speedup);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::size_t threads = dap::bench::configure_threads(argc, argv);
  dap::bench::banner(
      std::string("crypto throughput — multi-lane SHA-256 + HMAC midstates") +
          (smoke ? " (smoke)" : ""),
      "the SHA-256/HMAC/chain-walk substrate under every DAP cost model "
      "(Section IV's verification arms race)",
      ">= 2.5x batched-vs-scalar hashing on AVX2 hosts, >= 1.3x from "
      "HMAC midstate caching alone; identical digests everywhere");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";
  // Distinct scenario ids per mode: the smoke and full workloads have
  // structurally different speedup trajectories, and bench_trend.py
  // matches baseline entries by scenario id.
  dap::bench::set_run_scenario(smoke ? "crypto-throughput:smoke"
                                     : "crypto-throughput:full");

  const std::size_t n_msgs = smoke ? 2048 : 16384;
  const std::size_t msg_len = 48;  // single-block messages (DAP announce size)
  // Smoke still needs enough work per timed window (reps) and enough
  // interleaved rounds (the median-of-ratios filter in
  // measure_interleaved) that the speedup gauges hold steady within
  // bench_trend.py's band on a busy shared core; the digests, not the
  // clocks, are the pass/fail signal.
  const int reps = smoke ? 16 : 8;
  const int rounds = smoke ? 7 : 5;

  std::vector<Bytes> messages(n_msgs);
  for (std::size_t i = 0; i < n_msgs; ++i) {
    messages[i].resize(msg_len);
    for (std::size_t b = 0; b < msg_len; ++b) {
      messages[i][b] = static_cast<std::uint8_t>((i * 131 + b * 7) & 0xFF);
    }
  }
  std::vector<ByteView> views(messages.begin(), messages.end());

  std::vector<Row> rows;
  bool digests_ok = true;
  const std::vector<crypto::Sha256Backend> backends = supported_backends();

  // ---------------------------------------------------------- sha256_many
  std::vector<crypto::Digest> oracle(n_msgs);
  {
    const dap::bench::PhaseTimer phase("sha256");
    for (std::size_t i = 0; i < n_msgs; ++i) {
      crypto::Sha256 h;
      h.update(views[i]);
      oracle[i] = h.finalize();
    }
    // Untimed correctness pass per backend (also warms caches), then the
    // interleaved timing rounds over the same buffers.
    std::vector<crypto::Digest> out(n_msgs);
    std::vector<std::string> checksums;
    std::vector<std::function<void()>> cands;
    for (const crypto::Sha256Backend b : backends) {
      crypto::force_sha256_backend(b);
      crypto::sha256_many(views, out);
      for (std::size_t i = 0; i < n_msgs; ++i) {
        digests_ok = digests_ok && std::equal(out[i].begin(), out[i].end(),
                                              oracle[i].begin());
      }
      checksums.push_back(digest_checksum(out));
      cands.push_back([&views, &out, b, reps] {
        crypto::force_sha256_backend(b);
        for (int r = 0; r < reps; ++r) crypto::sha256_many(views, out);
      });
    }
    const Interleaved m = measure_interleaved(
        [&] {
          for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < n_msgs; ++i) {
              crypto::Sha256 h;
              h.update(views[i]);
              oracle[i] = h.finalize();
            }
          }
        },
        cands, rounds, static_cast<double>(n_msgs) * reps);
    crypto::clear_sha256_backend_override();
    rows.push_back({"sha256", "scalar_oneshot", n_msgs, m.base_per_sec, 1.0,
                    digest_checksum(oracle)});
    for (std::size_t c = 0; c < backends.size(); ++c) {
      rows.push_back({"sha256", std::string(crypto::backend_name(backends[c])),
                      n_msgs, m.cand_per_sec[c], m.cand_speedup[c],
                      checksums[c]});
    }
  }

  // ----------------------------------------------- hmac: midstate caching
  {
    const dap::bench::PhaseTimer phase("hmac");
    const Bytes key(32, 0x42);
    std::vector<crypto::Digest> macs(n_msgs);
    for (std::size_t i = 0; i < n_msgs; ++i) {
      macs[i] = crypto::hmac_sha256(key, views[i]);
    }
    const std::vector<crypto::Digest> mac_oracle = macs;
    const crypto::HmacKey hkey{ByteView(key)};

    std::vector<std::string> names;
    std::vector<std::string> checksums;
    std::vector<std::function<void()>> cands;
    const auto add_candidate = [&](const std::string& name,
                                   std::function<void()> once,
                                   std::function<void()> timed) {
      once();
      for (std::size_t i = 0; i < n_msgs; ++i) {
        digests_ok = digests_ok && std::equal(macs[i].begin(), macs[i].end(),
                                              mac_oracle[i].begin());
      }
      names.push_back(name);
      checksums.push_back(digest_checksum(macs));
      cands.push_back(std::move(timed));
    };
    add_candidate(
        "midstate",
        [&] {
          for (std::size_t i = 0; i < n_msgs; ++i) macs[i] = hkey.mac(views[i]);
        },
        [&hkey, &views, &macs, n_msgs, reps] {
          for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < n_msgs; ++i) {
              macs[i] = hkey.mac(views[i]);
            }
          }
        });
    for (const crypto::Sha256Backend b : backends) {
      add_candidate(
          std::string("many_") + std::string(crypto::backend_name(b)),
          [&, b] {
            crypto::force_sha256_backend(b);
            crypto::hmac_many(hkey, views, macs);
          },
          [&hkey, &views, &macs, b, reps] {
            crypto::force_sha256_backend(b);
            for (int r = 0; r < reps; ++r) crypto::hmac_many(hkey, views, macs);
          });
    }
    const Interleaved m = measure_interleaved(
        [&] {
          for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < n_msgs; ++i) {
              macs[i] = crypto::hmac_sha256(key, views[i]);
            }
          }
        },
        cands, rounds, static_cast<double>(n_msgs) * reps);
    crypto::clear_sha256_backend_override();
    rows.push_back({"hmac", "oneshot_pads", n_msgs, m.base_per_sec, 1.0,
                    digest_checksum(mac_oracle)});
    for (std::size_t c = 0; c < names.size(); ++c) {
      rows.push_back({"hmac", names[c], n_msgs, m.cand_per_sec[c],
                      m.cand_speedup[c], checksums[c]});
    }
  }

  // -------------------------------------------------- TESLA chain walking
  {
    const dap::bench::PhaseTimer phase("chain_walk");
    const std::size_t n_chains = smoke ? 128 : 256;
    const std::uint32_t walk_steps = smoke ? 96 : 128;
    // The batched walk finishes a smoke pass in ~2 ms; repeat it so each
    // timed window is long enough for the per-round ratios to be stable.
    const int walk_reps = smoke ? 4 : 2;
    const std::size_t key_size = 16;
    std::vector<Bytes> starts(n_chains);
    for (std::size_t c = 0; c < n_chains; ++c) {
      starts[c].resize(key_size);
      for (std::size_t b = 0; b < key_size; ++b) {
        starts[c][b] = static_cast<std::uint8_t>((c * 31 + b) & 0xFF);
      }
    }
    std::vector<Bytes> walked(n_chains);
    for (std::size_t c = 0; c < n_chains; ++c) {
      walked[c] = crypto::chain_walk(crypto::PrfDomain::kChainStep, starts[c],
                                     walk_steps, key_size);
    }

    const std::vector<std::uint32_t> steps(n_chains, walk_steps);
    std::vector<std::string> checksums;
    std::vector<std::function<void()>> cands;
    std::vector<std::vector<Bytes>> traj;
    for (const crypto::Sha256Backend b : backends) {
      crypto::force_sha256_backend(b);
      traj.clear();
      crypto::prf_walk_many(crypto::PrfDomain::kChainStep, starts, steps,
                            key_size, traj);
      std::vector<Bytes> ends(n_chains);
      for (std::size_t c = 0; c < n_chains; ++c) {
        ends[c] = traj[c].back();
        digests_ok = digests_ok && dap::common::equal(ends[c], walked[c]);
      }
      checksums.push_back(checksum_of_keys(ends));
      cands.push_back([&starts, &steps, &traj, b, walk_reps, key_size] {
        crypto::force_sha256_backend(b);
        for (int r = 0; r < walk_reps; ++r) {
          traj.clear();
          crypto::prf_walk_many(crypto::PrfDomain::kChainStep, starts, steps,
                                key_size, traj);
        }
      });
    }
    const Interleaved m = measure_interleaved(
        [&] {
          for (int r = 0; r < walk_reps; ++r) {
            for (std::size_t c = 0; c < n_chains; ++c) {
              walked[c] = crypto::chain_walk(crypto::PrfDomain::kChainStep,
                                             starts[c], walk_steps, key_size);
            }
          }
        },
        cands, rounds,
        static_cast<double>(n_chains) * walk_steps * walk_reps);
    crypto::clear_sha256_backend_override();
    rows.push_back({"chain_walk", "sequential", n_chains * walk_steps,
                    m.base_per_sec, 1.0, checksum_of_keys(walked)});
    for (std::size_t c = 0; c < backends.size(); ++c) {
      rows.push_back({"chain_walk",
                      std::string(crypto::backend_name(backends[c])),
                      n_chains * walk_steps, m.cand_per_sec[c],
                      m.cand_speedup[c], checksums[c]});
    }
  }

  // --------------------------------------------------------------- output
  dap::common::TextTable table(
      {"op", "backend", "messages", "hashes/sec", "speedup", "checksum"});
  dap::common::CsvWriter csv(
      dap::bench::csv_path("crypto_throughput"),
      {"op", "backend", "messages", "checksum"});
  for (const Row& row : rows) {
    char rate_buf[32], speed_buf[32];
    std::snprintf(rate_buf, sizeof rate_buf, "%.3e", row.per_sec);
    std::snprintf(speed_buf, sizeof speed_buf, "%.2fx", row.speedup);
    table.add_row({row.op, row.backend, std::to_string(row.messages),
                   rate_buf, speed_buf, row.checksum});
    // Deterministic CSV: no rates, no wall times — the checksum column is
    // the cross-backend/thread-count identity contract.
    csv.row_text(
        {row.op, row.backend, std::to_string(row.messages), row.checksum});
    set_gauges(row);
  }
  csv.flush();
  std::cout << table.render();

  crypto::publish_lane_occupancy();
  auto& reg = dap::obs::Registry::global();
  std::cout << "[active backend: "
            << crypto::backend_name(crypto::active_sha256_backend())
            << ", lane occupancy: "
            << reg.value(reg.gauge("crypto.batch.lane_occupancy_pct"))
            << "%]\n";
  if (!digests_ok) {
    std::cerr << "FAIL: a batched digest diverged from the scalar oracle\n";
  }
  dap::bench::footer("crypto_throughput");
  return digests_ok ? 0 : 1;
}
