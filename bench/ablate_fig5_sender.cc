// E11 — complementary Fig. 5 reading: the *sender's* MAC-rebroadcast
// bandwidth needed to hold a defence-success target against a fixed-rate
// flooder, for the same four (protocol, memory) combinations.

#include <iostream>

#include "analysis/figures.h"
#include "bench_util.h"
#include "common/stats.h"
#include "game/bandwidth.h"

int main() {
  using namespace dap;
  bench::banner(
      "E11 — sender MAC bandwidth for a defence target (Fig. 5 dual)",
      "the bandwidth discussion of Sec. VI-A, sender-side reading "
      "(see DESIGN.md interpretation note)",
      "DAP needs substantially LESS sender bandwidth than TESLA++ for "
      "the same defence guarantee");

  const analysis::Fig5Settings settings;
  const auto buffers = analysis::fig5_buffers(settings);
  const double attacker_rate = 0.4;  // flooder occupies 40% of the channel

  common::TextTable table({"P_def target", "TESLA++ 1024", "TESLA++ 512",
                           "DAP 1024", "DAP 512"});
  common::CsvWriter csv(bench::csv_path("ablate_fig5_sender"),
                        {"P_def", "xm_teslapp_1024", "xm_teslapp_512",
                         "xm_dap_1024", "xm_dap_512"});
  common::Series s1{"TESLA++ 1024", {}, {}};
  common::Series s3{"DAP 1024", {}, {}};
  for (double target : common::linspace(0.5, 0.99, 15)) {
    const double t1 = game::sender_mac_bandwidth_required(
        target, buffers.teslapp_large, attacker_rate);
    const double t2 = game::sender_mac_bandwidth_required(
        target, buffers.teslapp_small, attacker_rate);
    const double d1 = game::sender_mac_bandwidth_required(
        target, buffers.dap_large, attacker_rate);
    const double d2 = game::sender_mac_bandwidth_required(
        target, buffers.dap_small, attacker_rate);
    table.add_row_numeric({target, t1, t2, d1, d2});
    csv.row({target, t1, t2, d1, d2});
    s1.xs.push_back(target);
    s1.ys.push_back(t1);
    s3.xs.push_back(target);
    s3.ys.push_back(d1);
  }
  std::cout << table.render() << '\n';
  common::ChartOptions options;
  options.title =
      "sender MAC bandwidth vs defence target (flooder at 0.4)";
  options.x_label = "P_def";
  options.y_label = "x_m (sender)";
  std::cout << common::render_chart({s1, s3}, options);
  bench::footer("ablate_fig5_sender");
  return 0;
}
