// E2 / Fig. 6 — evolution of (X, Y) under the replicator dynamics at
// p = 0.8 from (0.5, 0.5) with the paper's Euler step dt = 0.01:
// four panels (one per ESS regime) plus the full m = 1..100 regime scan.

#include <iostream>

#include "analysis/figures.h"
#include "bench_util.h"
#include "game/ess.h"

int main() {
  using namespace dap;
  bench::banner(
      "Fig. 6 — evolution process of the evolutionary game (p = 0.8)",
      "ICDCS'16 DAP paper, Fig. 6(a)-(d) and the regime list of Sec. VI-B.2",
      "(1,1) for m<=11; (1,Y') next (paper: m<=17); interior spiral up to "
      "m=54; (X',1) from m=55");

  // --- Panels: one representative m per regime.
  struct Panel {
    std::size_t m;
    const char* label;
  };
  const Panel panels[] = {{6, "(a) m=6  -> ESS (1,1)"},
                          {15, "(b) m=15 -> ESS (1,Y')"},
                          {30, "(c) m=30 -> ESS (X*,Y*) spiral"},
                          {70, "(d) m=70 -> ESS (X',1)"}};
  common::CsvWriter traj_csv(bench::csv_path("fig6_trajectories"),
                             {"m", "step", "X", "Y"});
  for (const auto& panel : panels) {
    const auto panel_timer = bench::scoped_timer("fig6_panel");
    const auto traj = analysis::fig6_trajectory(0.8, panel.m);
    common::Series sx{"X (defenders buffering)", {}, {}};
    common::Series sy{"Y (attackers attacking)", {}, {}};
    for (std::size_t i = 0; i < traj.points.size(); ++i) {
      const double step = static_cast<double>(i * 10);  // record_every=10
      sx.xs.push_back(step);
      sx.ys.push_back(traj.points[i].x);
      sy.xs.push_back(step);
      sy.ys.push_back(traj.points[i].y);
      traj_csv.row({static_cast<double>(panel.m), step, traj.points[i].x,
                    traj.points[i].y});
    }
    common::ChartOptions options;
    options.title = panel.label;
    options.x_label = "Euler steps (dt=0.01)";
    options.height = 14;
    std::cout << common::render_chart({sx, sy}, options);
    std::cout << "  converged to (" << common::format_number(traj.final.x)
              << ", " << common::format_number(traj.final.y) << ") in "
              << traj.steps << " steps\n\n";
  }

  // --- Regime scan m = 1..100.
  const auto rows = [&] {
    const auto scan_timer = bench::scoped_timer("fig6_regime_scan");
    return analysis::fig6_regime_scan(0.8, 100);
  }();
  common::TextTable table(
      {"m", "ESS (closed form)", "X", "Y", "Euler X", "Euler Y", "agree"});
  common::CsvWriter csv(bench::csv_path("fig6_regimes"),
                        {"m", "kind", "X", "Y", "euler_X", "euler_Y"});
  const char* last_kind = "";
  for (const auto& row : rows) {
    const char* kind = game::ess_kind_name(row.ess.kind);
    csv.row_text({std::to_string(row.m), kind,
                  common::format_number(row.ess.point.x),
                  common::format_number(row.ess.point.y),
                  common::format_number(row.simulated.x),
                  common::format_number(row.simulated.y)});
    // Print regime boundaries plus a sparse sample, not all 100 rows.
    const bool boundary = std::string(kind) != last_kind;
    if (boundary || row.m % 10 == 0) {
      table.add_row({std::to_string(row.m), kind,
                     common::format_number(row.ess.point.x),
                     common::format_number(row.ess.point.y),
                     common::format_number(row.simulated.x),
                     common::format_number(row.simulated.y),
                     row.agrees ? "yes" : "boundary-artifact"});
    }
    last_kind = kind;
  }
  std::cout << table.render();
  std::cout << "\nnote: at m=17..18 the paper-faithful Euler run sticks to "
               "the X=1 boundary\n(the paper's own regime list shows the "
               "same artifact: it reports (1,Y') up to m=17).\n";
  bench::footer("fig6_regimes");
  return 0;
}
