// Extension — agent-based validation of the replicator model: finite
// populations of imitating agents vs the ODE attractor, across regimes.

#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "core/coevolution.h"
#include "core/population.h"
#include "game/ess.h"

int main() {
  using namespace dap;
  bench::banner(
      "Extension — finite-population imitation dynamics vs replicator ODE",
      "the bounded-rationality justification of Sec. V-A (nodes imitate "
      "successful peers)",
      "agent populations settle near the ODE's ESS in every regime");

  common::TextTable table({"m", "ESS (ODE)", "population mean (X, Y)",
                           "abs error"});
  common::CsvWriter csv(bench::csv_path("population_dynamics"),
                        {"m", "ess_x", "ess_y", "pop_x", "pop_y"});
  for (std::size_t m : {6u, 15u, 30u, 70u}) {
    const auto g = game::GameParams::paper_defaults(0.8, m);
    const auto ess = game::solve_ess(g);
    core::PopulationConfig config;
    config.defenders = 8000;
    config.attackers = 8000;
    core::PopulationSim sim(config, g, common::Rng(42 + m));
    (void)sim.run(30000);
    game::State mean{0, 0};
    const int window = 5000;
    for (int i = 0; i < window; ++i) {
      sim.step();
      mean.x += sim.defender_share();
      mean.y += sim.attacker_share();
    }
    mean.x /= window;
    mean.y /= window;
    const double err = std::max(std::abs(mean.x - ess.point.x),
                                std::abs(mean.y - ess.point.y));
    table.add_row({std::to_string(m), game::ess_kind_name(ess.kind),
                   "(" + common::format_number(mean.x) + ", " +
                       common::format_number(mean.y) + ")",
                   common::format_number(err)});
    csv.row({static_cast<double>(m), ess.point.x, ess.point.y, mean.x,
             mean.y});
  }
  std::cout << table.render();

  // --- Co-evolution on *sampled* payoffs: no agent knows p, m, Ra or
  //     the opponent mix; attack outcomes are Bernoulli(p^m) draws.
  std::cout << "\nco-evolution (pairwise imitation on realized payoffs "
               "only):\n";
  common::TextTable coevo_table({"m", "ESS (ODE)", "co-evolved mean (X, Y)",
                                 "abs error"});
  common::CsvWriter coevo_csv(bench::csv_path("coevolution"),
                              {"m", "ess_x", "ess_y", "coevo_x", "coevo_y"});
  for (std::size_t m : {6u, 15u, 30u, 70u}) {
    const auto g = game::GameParams::paper_defaults(0.8, m);
    const auto ess = game::solve_ess(g);
    core::CoevolutionConfig config;
    core::CoevolutionSim sim(config, g, common::Rng(99 + m));
    const auto w = sim.run_and_average(15000, 5000);
    const double err = std::max(std::abs(w.mean.x - ess.point.x),
                                std::abs(w.mean.y - ess.point.y));
    coevo_table.add_row({std::to_string(m), game::ess_kind_name(ess.kind),
                         "(" + common::format_number(w.mean.x) + ", " +
                             common::format_number(w.mean.y) + ")",
                         common::format_number(err)});
    coevo_csv.row({static_cast<double>(m), ess.point.x, ess.point.y,
                   w.mean.x, w.mean.y});
  }
  std::cout << coevo_table.render();
  std::cout << "\nnote: near X = 1 the attacker equilibrium shifts by "
               "~ -Ra(1-p^m)/(k1 xa) ~ -12 per unit of defender-mix "
               "perturbation,\nso the exploration-induced X offset shows up "
               "amplified in Y — the regimes remain unmistakable.\n";
  bench::footer("population_dynamics");
  return 0;
}
