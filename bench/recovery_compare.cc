// E12 — the Sec. III claims measured: multi-level μTESLA vs EFTP vs EDRP
// on CDM authentication latency, loss recovery, and DoS filtering.

#include <iostream>

#include "analysis/recovery.h"
#include "bench_util.h"

int main() {
  using namespace dap;
  bench::banner(
      "E12 — EFTP / EDRP recovery comparison",
      "ICDCS'16 DAP paper Sec. III (claims of the authors' prior work)",
      "EFTP recovers lost low-level keys one high-level interval sooner; "
      "EDRP authenticates CDMs instantly via the hash chain");

  struct Variant {
    const char* name;
    crypto::LevelLink link;
    bool edrp;
  };
  const Variant variants[] = {
      {"multi-level uTESLA (original)", crypto::LevelLink::kOriginal, false},
      {"EFTP (re-anchored F01)", crypto::LevelLink::kEftp, false},
      {"EDRP (CDM hash chain)", crypto::LevelLink::kOriginal, true},
      {"EFTP+EDRP", crypto::LevelLink::kEftp, true},
  };

  common::TextTable table({"variant", "data recovered at (high interval)",
                           "recovery delta", "mean CDM auth latency",
                           "hash-path CDMs", "data auth'd / sent"});
  common::CsvWriter csv(bench::csv_path("recovery_compare"),
                        {"variant", "recovered_at", "cdm_latency",
                         "hash_path", "data_auth", "data_sent"});
  for (const auto& variant : variants) {
    analysis::RecoverySetup setup;
    setup.link = variant.link;
    setup.edrp = variant.edrp;
    const auto report = analysis::run_recovery_experiment(setup);
    const auto delta =
        report.data_recovered_at_interval - setup.measured_interval;
    table.add_row({variant.name,
                   std::to_string(report.data_recovered_at_interval),
                   "+" + std::to_string(delta) + " intervals",
                   common::format_number(report.mean_cdm_auth_latency),
                   std::to_string(report.cdm_hash_path),
                   std::to_string(report.data_authenticated) + "/" +
                       std::to_string(report.data_sent)});
    csv.row_text({variant.name,
                  std::to_string(report.data_recovered_at_interval),
                  common::format_number(report.mean_cdm_auth_latency),
                  std::to_string(report.cdm_hash_path),
                  std::to_string(report.data_authenticated),
                  std::to_string(report.data_sent)});
  }
  std::cout << table.render() << '\n';

  // Under CDM flooding, EDRP's instant filter vs classic buffering.
  std::cout << "CDM flooding (5 forged copies per interval):\n";
  common::TextTable flood_table(
      {"variant", "CDMs authenticated", "forged dropped"});
  for (const auto& variant : variants) {
    analysis::RecoverySetup setup;
    setup.link = variant.link;
    setup.edrp = variant.edrp;
    setup.forged_cdms_per_interval = 5;
    const auto report = analysis::run_recovery_experiment(setup);
    flood_table.add_row({variant.name,
                         std::to_string(report.cdms_authenticated),
                         std::to_string(report.forged_cdms_dropped)});
  }
  std::cout << flood_table.render();
  bench::footer("recovery_compare");
  return 0;
}
