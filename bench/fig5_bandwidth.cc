// E1 / Fig. 5 — attacker bandwidth fraction x_m = P^(1/m)·(1-x_d)
// required to reach attack-success target P, for TESLA++ (280-bit
// records) vs DAP (56-bit records) at two memory budgets.

#include <iostream>

#include "analysis/figures.h"
#include "bench_util.h"

int main() {
  using namespace dap;
  bench::banner(
      "Fig. 5 — required attacker bandwidth fraction vs attack level",
      "ICDCS'16 DAP paper, Fig. 5 (evaluation settings of Sec. VI-A)",
      "DAP curves strictly above TESLA++ (attacker must spend more); "
      "larger memory budget above smaller");

  const analysis::Fig5Settings settings;
  const auto buffers = analysis::fig5_buffers(settings);
  std::cout << "buffers: TESLA++/1024=" << buffers.teslapp_large
            << " TESLA++/512=" << buffers.teslapp_small
            << " DAP/1024=" << buffers.dap_large
            << " DAP/512=" << buffers.dap_small << "\n\n";

  const auto rows = analysis::fig5_series(settings);
  common::TextTable table({"P(target)", "TESLA++ 1024", "TESLA++ 512",
                           "DAP 1024", "DAP 512"});
  common::CsvWriter csv(bench::csv_path("fig5_bandwidth"),
                        {"P", "xm_teslapp_1024", "xm_teslapp_512",
                         "xm_dap_1024", "xm_dap_512"});
  common::Series s1{"TESLA++ 1024", {}, {}};
  common::Series s2{"TESLA++ 512", {}, {}};
  common::Series s3{"DAP 1024", {}, {}};
  common::Series s4{"DAP 512", {}, {}};
  for (const auto& row : rows) {
    table.add_row_numeric({row.attack_success_target, row.xm_teslapp_large,
                           row.xm_teslapp_small, row.xm_dap_large,
                           row.xm_dap_small});
    csv.row({row.attack_success_target, row.xm_teslapp_large,
             row.xm_teslapp_small, row.xm_dap_large, row.xm_dap_small});
    s1.xs.push_back(row.attack_success_target);
    s1.ys.push_back(row.xm_teslapp_large);
    s2.xs.push_back(row.attack_success_target);
    s2.ys.push_back(row.xm_teslapp_small);
    s3.xs.push_back(row.attack_success_target);
    s3.ys.push_back(row.xm_dap_large);
    s4.xs.push_back(row.attack_success_target);
    s4.ys.push_back(row.xm_dap_small);
  }
  std::cout << table.render() << '\n';
  common::ChartOptions options;
  options.title = "attacker bandwidth fraction x_m vs attack success target P";
  options.x_label = "P";
  options.y_label = "x_m";
  std::cout << common::render_chart({s1, s2, s3, s4}, options);
  bench::footer("fig5_bandwidth");
  return 0;
}
