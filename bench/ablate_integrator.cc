// E10 — ablation of the replicator integrator: the paper's forward Euler
// (dt = 0.01) vs RK4, across the four ESS regimes at p = 0.8.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "game/ess.h"
#include "game/replicator.h"

int main() {
  using namespace dap;
  bench::banner(
      "E10 — ablation: Euler (paper, dt=0.01) vs RK4 integration",
      "the numerical scheme of Sec. VI-B.2",
      "same attractor everywhere except the interior/boundary band "
      "m=17..18, where Euler sticks to X=1 (as in the paper's own runs)");

  common::TextTable table({"m", "closed-form ESS", "Euler final",
                           "RK4 final", "Euler steps", "RK4 steps",
                           "max |Euler - RK4|"});
  common::CsvWriter csv(bench::csv_path("ablate_integrator"),
                        {"m", "euler_x", "euler_y", "rk4_x", "rk4_y",
                         "euler_steps", "rk4_steps"});
  for (std::size_t m : {4u, 12u, 17u, 18u, 25u, 40u, 55u, 80u}) {
    const auto g = game::GameParams::paper_defaults(0.8, m);
    game::IntegrationOptions euler;
    euler.max_steps = 2000000;
    euler.convergence_eps = 1e-12;
    euler.record_every = 0;
    game::IntegrationOptions rk4 = euler;
    rk4.method = game::Integrator::kRk4;
    const auto a = game::integrate(g, {0.5, 0.5}, euler);
    const auto b = game::integrate(g, {0.5, 0.5}, rk4);
    const auto ess = game::solve_ess(g);
    const double diff = std::max(std::abs(a.final.x - b.final.x),
                                 std::abs(a.final.y - b.final.y));
    table.add_row(
        {std::to_string(m), game::ess_kind_name(ess.kind),
         "(" + common::format_number(a.final.x) + ", " +
             common::format_number(a.final.y) + ")",
         "(" + common::format_number(b.final.x) + ", " +
             common::format_number(b.final.y) + ")",
         std::to_string(a.steps), std::to_string(b.steps),
         common::format_number(diff)});
    csv.row({static_cast<double>(m), a.final.x, a.final.y, b.final.x,
             b.final.y, static_cast<double>(a.steps),
             static_cast<double>(b.steps)});
  }
  std::cout << table.render();
  bench::footer("ablate_integrator");
  return 0;
}
