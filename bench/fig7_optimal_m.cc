// E3 / Fig. 7 — optimal buffer count m* vs attack level p (Algorithm 3,
// cap M = 50), in the paper's interior-seeking mode plus the pure
// cost-arg-min variant for comparison.

#include <iostream>
#include <utility>

#include "analysis/figures.h"
#include "bench_util.h"
#include "game/ess.h"

int main(int argc, char** argv) {
  using namespace dap;
  const std::size_t threads = bench::configure_threads(argc, argv);
  bench::banner(
      "Fig. 7 — optimised number of buffers m at different DoS levels",
      "ICDCS'16 DAP paper, Fig. 7",
      "m* grows with p, then jumps to the cap (50) past p ~ 0.94 where "
      "no interior ESS exists (the mechanism 'gives up')");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";

  const auto sweep = analysis::default_p_sweep();
  const auto [paper_rows, argmin_rows] = [&] {
    const bench::PhaseTimer phase("solve");
    auto paper = analysis::fig7_series(sweep, game::OptimizeMode::kPaperInterior);
    auto argmin = analysis::fig7_series(sweep, game::OptimizeMode::kMinimizeCost);
    return std::make_pair(std::move(paper), std::move(argmin));
  }();

  common::TextTable table({"p", "m* (paper mode)", "ESS", "E(m*)",
                           "m* (arg-min E)", "E(arg-min)"});
  common::CsvWriter csv(bench::csv_path("fig7_optimal_m"),
                        {"p", "m_paper", "cost_paper", "m_argmin",
                         "cost_argmin"});
  common::Series s_paper{"m* paper mode", {}, {}};
  common::Series s_argmin{"m* arg-min", {}, {}};
  for (std::size_t i = 0; i < paper_rows.size(); ++i) {
    const auto& row = paper_rows[i];
    const auto& alt = argmin_rows[i];
    table.add_row({common::format_number(row.p), std::to_string(row.m_opt),
                   game::ess_kind_name(row.kind),
                   common::format_number(row.cost), std::to_string(alt.m_opt),
                   common::format_number(alt.cost)});
    csv.row({row.p, static_cast<double>(row.m_opt), row.cost,
             static_cast<double>(alt.m_opt), alt.cost});
    s_paper.xs.push_back(row.p);
    s_paper.ys.push_back(static_cast<double>(row.m_opt));
    s_argmin.xs.push_back(alt.p);
    s_argmin.ys.push_back(static_cast<double>(alt.m_opt));
  }
  std::cout << table.render() << '\n';
  common::ChartOptions options;
  options.title = "optimal buffer count m* vs attack level p";
  options.x_label = "p";
  options.y_label = "m*";
  std::cout << common::render_chart({s_paper, s_argmin}, options);
  bench::footer("fig7_optimal_m");
  return 0;
}
