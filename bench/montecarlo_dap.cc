// E7 — Monte-Carlo validation of the game model's core input: the
// simulated DAP receiver's attack-success rate against the analytic
// P = p^m across a (p, m) grid.

#include <cmath>
#include <iostream>

#include "analysis/montecarlo.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dap;
  const std::size_t threads = bench::configure_threads(argc, argv);
  bench::banner(
      "E7 — simulator-measured attack success vs analytic P = p^m",
      "the P = p^m model assumption of Sec. IV-A / V-C (from Liu & Ning)",
      "measured ~ p^m within confidence bounds for floods >> m; small "
      "floods deviate in the defender's favour (hypergeometric)");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";

  const std::vector<double> ps = {0.5, 0.7, 0.8, 0.9, 0.95};
  const std::vector<std::size_t> ms = {1, 2, 4, 8, 16};
  const auto sweep = [&] {
    const bench::PhaseTimer phase("trials");
    const auto sweep_timer = bench::scoped_timer("montecarlo_sweep");
    return analysis::attack_success_sweep(ps, ms, 1500, 2024);
  }();

  common::TextTable table(
      {"p", "m", "measured", "95% CI", "analytic p^m", "abs diff"});
  common::CsvWriter csv(bench::csv_path("montecarlo_dap"),
                        {"p", "m", "measured", "lo", "hi", "analytic"});
  double worst = 0.0;
  for (const auto& point : sweep) {
    const auto& r = point.result;
    const double diff = std::abs(r.measured_attack_success - r.analytic);
    worst = std::max(worst, diff);
    table.add_row({common::format_number(point.p), std::to_string(point.m),
                   common::format_number(r.measured_attack_success),
                   "[" + common::format_number(r.wilson_lo) + ", " +
                       common::format_number(r.wilson_hi) + "]",
                   common::format_number(r.analytic),
                   common::format_number(diff)});
    csv.row({point.p, static_cast<double>(point.m),
             r.measured_attack_success, r.wilson_lo, r.wilson_hi,
             r.analytic});
  }
  std::cout << table.render();
  std::cout << "\nworst |measured - analytic| over the grid: "
            << common::format_number(worst) << '\n';

  // The small-flood deviation, measured explicitly.
  analysis::MonteCarloConfig small_flood;
  small_flood.p = 0.9;
  small_flood.m = 8;
  small_flood.authentic_copies = 1;  // flood of 10 against 8 buffers
  small_flood.trials = 3000;
  const auto r = [&] {
    const bench::PhaseTimer phase("small_flood");
    return analysis::measure_attack_success(small_flood);
  }();
  std::cout << "small-flood check (1 authentic + 9 forged, m=8): measured "
            << common::format_number(r.measured_attack_success)
            << " vs p^m = " << common::format_number(r.analytic)
            << " vs hypergeometric 1 - m/n = "
            << common::format_number(1.0 - 8.0 / 10.0)
            << "  (defender does better than p^m on small floods)\n";
  bench::footer("montecarlo_dap");
  return 0;
}
