// E5 / Table II — the attack-defence pay-off matrix instantiated at the
// paper's evaluation constants for a small (p, m, X, Y) grid.

#include <iostream>

#include "bench_util.h"
#include "game/params.h"

int main() {
  using namespace dap;
  bench::banner(
      "Table II — pay-off matrix between attackers and defenders",
      "ICDCS'16 DAP paper, Table II with Ra=200, k1=20, k2=4 (Sec. VI-B)",
      "defender: -Cd-P*Ld / -Cd / -Ld / 0; attacker: P*Ra-Ca / 0 / Ra-Ca / 0");

  common::CsvWriter csv(
      bench::csv_path("table2_payoff"),
      {"p", "m", "X", "Y", "dd_d", "dd_a", "dn_d", "dn_a", "nd_d", "nd_a"});
  for (double p : {0.5, 0.8, 0.95}) {
    for (std::size_t m : {std::size_t{4}, std::size_t{17}, std::size_t{50}}) {
      const auto g = game::GameParams::paper_defaults(p, m);
      // Evaluate at the mixed state the paper's evolution starts from.
      const double X = 0.5, Y = 0.5;
      const auto pm = game::payoff_matrix(g, X, Y);
      std::cout << "p=" << p << "  m=" << m << "  P=p^m="
                << common::format_number(g.attack_success())
                << "  at (X,Y)=(0.5,0.5)\n";
      common::TextTable table({"Defender \\ Attacker", "DoS attacks",
                               "No DoS attacks"});
      table.add_row({"Buffer selection",
                     common::format_number(pm.defend_attack_d) + ", " +
                         common::format_number(pm.defend_attack_a),
                     common::format_number(pm.defend_noattack_d) + ", " +
                         common::format_number(pm.defend_noattack_a)});
      table.add_row({"No buffers",
                     common::format_number(pm.nodefend_attack_d) + ", " +
                         common::format_number(pm.nodefend_attack_a),
                     common::format_number(pm.nodefend_noattack_d) + ", " +
                         common::format_number(pm.nodefend_noattack_a)});
      std::cout << table.render() << '\n';
      csv.row({p, static_cast<double>(m), X, Y, pm.defend_attack_d,
               pm.defend_attack_a, pm.defend_noattack_d, pm.defend_noattack_a,
               pm.nodefend_attack_d, pm.nodefend_attack_a});
    }
  }
  bench::footer("table2_payoff");
  return 0;
}
