// E15 — the abstract's claim: DAP under low-QoS channels AND severe DoS
// attacks simultaneously. Prints the measured authentication-success
// grid next to the analytic reference.

#include <iostream>

#include "analysis/extreme.h"
#include "bench_util.h"

int main() {
  using namespace dap;
  bench::banner(
      "E15 — extreme conditions: channel loss x DoS intensity (m=18)",
      "the abstract / Sec. I claim: 'works even in the extreme case'",
      "success degrades gracefully along both axes and stays well above "
      "zero at loss=0.5, p=0.95");

  analysis::ExtremeGridConfig config;
  const auto grid = analysis::extreme_conditions_grid(config);

  common::TextTable table(
      {"loss \\ p", "0.5", "0.8", "0.9", "0.95"});
  common::CsvWriter csv(bench::csv_path("extreme_conditions"),
                        {"loss", "p", "measured", "analytic"});
  std::size_t index = 0;
  for (double loss : config.losses) {
    std::vector<std::string> row{common::format_number(loss)};
    for (std::size_t pi = 0; pi < config.ps.size(); ++pi) {
      const auto& cell = grid[index++];
      row.push_back(common::format_number(cell.measured_success) + " (" +
                    common::format_number(cell.analytic) + ")");
      csv.row({cell.loss, cell.p, cell.measured_success, cell.analytic});
    }
    table.add_row(row);
  }
  std::cout << table.render();
  std::cout << "\ncells: measured success (analytic reference "
               "(1-loss^3)(1-p^m)(1-loss^2));\nmeasured >= analytic at low "
               "p because small delivered floods are hypergeometric-\n"
               "favourable to the reservoir (see E7).\n";
  bench::footer("extreme_conditions");
  return 0;
}
