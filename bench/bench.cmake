# Experiment binaries: one per reproduced table/figure plus ablations.
# Defined from the top level (not add_subdirectory) so the build-tree
# bench/ directory contains ONLY the executables and
# `for b in build/bench/*; do $b; done` runs them all cleanly.

set(DAP_BENCH_PLAIN
  fig5_bandwidth
  fig6_evolution
  fig7_optimal_m
  fig8_defense_cost
  fig8_empirical
  table2_payoff
  memory_cost
  montecarlo_dap
  family_compare
  extreme_conditions
  recovery_compare
  ablate_umac
  ablate_buffer_policy
  ablate_integrator
  ablate_constants
  ablate_fig5_sender
  population_dynamics
  chaos_soak
  fleet_scale
  crypto_throughput
  game_loop
)

foreach(name ${DAP_BENCH_PLAIN})
  add_executable(bench_${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(bench_${name}
    PRIVATE dap_common dap_obs dap_crypto dap_wire dap_sim dap_tesla dap_dap
            dap_game dap_core dap_analysis dap_fleet dap_warnings)
  set_target_properties(bench_${name} PROPERTIES
    OUTPUT_NAME ${name}
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

# micro_crypto supplies its own main: google-benchmark runner plus the
# obs-registry run summary export.
add_executable(bench_micro_crypto ${CMAKE_SOURCE_DIR}/bench/micro_crypto.cc)
target_link_libraries(bench_micro_crypto
  PRIVATE dap_common dap_obs dap_crypto dap_wire dap_sim dap_tesla dap_dap
          benchmark::benchmark dap_warnings)
set_target_properties(bench_micro_crypto PROPERTIES
  OUTPUT_NAME micro_crypto
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Short fixed-seed chaos soak in the default ctest suite (the bench exits
# non-zero on an invariant violation). The full seeded soak runs in
# tests/test_chaos_soak.cc under DAP_CHAOS_SOAK_ITERS.
add_test(NAME chaos_soak_smoke COMMAND bench_chaos_soak --smoke)

# Short fleet sweep with the same contract: exits non-zero when a forged
# message authenticates or the flagship fleets fall below scale.
add_test(NAME fleet_scale_smoke COMMAND bench_fleet_scale --smoke)

# Batched-crypto equivalence smoke: exits non-zero when any multi-lane
# digest diverges from the scalar oracle.
add_test(NAME crypto_throughput_smoke COMMAND bench_crypto_throughput --smoke)

# Relay-hardening soak: the standard fleet chaos cases (crash/restart,
# healing partitions, degraded budgets, guard saturation) exit non-zero
# on a forged auth, unbounded relay memory, or a missed reconvergence
# bound.
add_test(NAME fleet_chaos_smoke COMMAND bench_fleet_scale --chaos --smoke)

# Game-loop smoke: the adaptive adversary must converge to the offline
# ESS within tolerance with zero forged auths, and the DAP / TESLA++ /
# MABS memory-vs-bandwidth separation must hold.
add_test(NAME game_loop_smoke COMMAND bench_game_loop --smoke)
