// E8 — ablation of the μMAC truncation length: memory per record vs the
// chance a flooding attacker gets a forged record accepted by collision.
// The paper fixes 24 bits; this sweep shows where that sits.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "crypto/mac.h"

int main() {
  using namespace dap;
  bench::banner(
      "E8 — ablation: uMAC truncation length",
      "design choice of Sec. IV-B (24-bit uMAC, 56-bit records)",
      "collision probability halves per bit; record size grows linearly; "
      "24 bits keeps collisions ~1e-7 per forged record");

  common::TextTable table({"uMAC bits", "record bits", "buffers@1024",
                           "P(collision)/record", "expected collisions in "
                           "10^6 forged records"});
  common::CsvWriter csv(bench::csv_path("ablate_umac"),
                        {"umac_bits", "record_bits", "buffers_1024",
                         "collision_prob"});
  for (std::size_t bits : {8u, 16u, 24u, 32u, 48u, 64u}) {
    const std::size_t record = bits + crypto::kIndexBits;
    const double collision = std::pow(2.0, -static_cast<double>(bits));
    table.add_row({std::to_string(bits), std::to_string(record),
                   std::to_string(1024 / record),
                   common::format_number(collision),
                   common::format_number(collision * 1e6)});
    csv.row({static_cast<double>(bits), static_cast<double>(record),
             static_cast<double>(1024 / record), collision});
  }
  std::cout << table.render() << '\n';

  // Empirical collision check at 8 bits (small enough to observe):
  // count how often a random "forged" MAC re-MACs to the same truncated
  // tag as the authentic MAC.
  common::Rng rng(7);
  const common::Bytes recv_key = rng.bytes(16);
  const common::Bytes authentic_mac = rng.bytes(10);
  const common::Bytes expected = crypto::micro_mac(recv_key, authentic_mac, 1);
  int collisions = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (common::equal(crypto::micro_mac(recv_key, rng.bytes(10), 1),
                      expected)) {
      ++collisions;
    }
  }
  std::cout << "empirical 8-bit collision rate: "
            << common::format_number(static_cast<double>(collisions) / trials)
            << " (theory 1/256 = " << common::format_number(1.0 / 256)
            << ")\n";
  bench::footer("ablate_umac");
  return 0;
}
