// Fleet-scale curves: auth success and defense cost vs fleet size,
// topology depth, and forged fraction p, across relay topologies (tree,
// gossip, grid, flood). Every receiver is simulated — >= 100,000 of them
// in the full run via receiver cohorts — and the whole sweep is bitwise
// identical at any thread count (the CSV is the determinism contract
// bench_baseline.py verifies). Exits non-zero when a forged message ever
// authenticates or the flagship scenarios shrink below fleet scale, so
// the --smoke run doubles as a ctest.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/chaos.h"
#include "bench_util.h"
#include "common/parallel.h"
#include "fleet/fleet.h"
#include "fleet/scenario.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"

namespace {

dap::fleet::ScenarioSpec base_spec(bool smoke) {
  dap::fleet::ScenarioSpec spec;
  spec.seed = 42;
  spec.buffers = 4;
  spec.intervals = smoke ? 4 : 8;
  spec.interval_us = 200 * dap::sim::kMillisecond;
  spec.hop.latency_us = dap::sim::kMillisecond;
  return spec;
}

/// Restores the calling thread's registry/tracer overrides on scope
/// exit (each scenario runs against its own local pair so snapshot
/// streams are isolated per spec regardless of chunking/thread count).
struct ScopedObsOverride {
  ScopedObsOverride(dap::obs::Registry* registry, dap::obs::Tracer* tracer)
      : prev_registry(dap::obs::Registry::set_thread_override(registry)),
        prev_tracer(dap::obs::Tracer::set_thread_override(tracer)) {}
  ~ScopedObsOverride() {
    dap::obs::Registry::set_thread_override(prev_registry);
    dap::obs::Tracer::set_thread_override(prev_tracer);
  }
  dap::obs::Registry* prev_registry;
  dap::obs::Tracer* prev_tracer;
};

/// True when some auth-ok verify span chains through >= 2 relay hops
/// back to an announce-send root — the cross-hop causality contract.
bool has_cross_hop_chain(const std::vector<dap::obs::SpanEvent>& spans) {
  std::unordered_map<std::uint64_t, const dap::obs::SpanEvent*> by_uid;
  by_uid.reserve(spans.size());
  for (const auto& s : spans) by_uid.emplace(s.uid, &s);
  for (const auto& s : spans) {
    if (s.kind != dap::obs::SpanKind::kVerify ||
        s.tag != dap::obs::SpanTag::kAuthOk) {
      continue;
    }
    int hops = 0;
    const dap::obs::SpanEvent* cur = &s;
    while (cur->parent != 0) {
      const auto it = by_uid.find(cur->parent);
      if (it == by_uid.end()) break;
      cur = it->second;
      if (cur->kind == dap::obs::SpanKind::kRelayHop) ++hops;
    }
    if (hops >= 2 && cur->kind == dap::obs::SpanKind::kAnnounceSend) {
      return true;
    }
  }
  return false;
}

/// Worst per-depth reconvergence clock (0 when the spec had no faults).
std::uint32_t worst_reconverge(const dap::fleet::FleetReport& report) {
  std::uint32_t worst = 0;
  for (std::size_t d = 1; d < report.reconverge_intervals.size(); ++d) {
    worst = std::max(worst, report.reconverge_intervals[d]);
  }
  return worst;
}

/// The relay-hardening soak: the standard fleet chaos cases (crash +
/// reboot skew, healing partitions, degraded budgets, guard saturation,
/// combined) with the three invariants as the exit code — zero forged
/// auths, relay memory <= guard capacity, every depth reconverged
/// within its documented bound.
int run_chaos(bool smoke, std::size_t threads) {
  using namespace dap;
  bench::banner(
      std::string("fleet chaos — relay faults x bounded ingress guards") +
          (smoke ? " (smoke)" : ""),
      "relay crash/restart, healing partitions, degraded budgets, tag store "
      "saturation under flood, and the strategy adversaries (adaptive "
      "replicator, Sybil cohorts, poisoned gossip), across multi-hop "
      "topologies",
      "zero forged auths, relay memory <= guard capacity, every depth "
      "reconverges within its documented bound");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";

  obs::Tracer::global().set_capacity(std::size_t{1} << 17);
  obs::Tracer::global().enable(true);

  auto cases = analysis::standard_fleet_chaos_cases(smoke);
  {
    // The strategy adversaries join the same soak under the same safety
    // bar: no fault plans, so their reconvergence term is trivially met,
    // but every forged packet they coordinate must still bounce.
    const auto strategy_cases = analysis::strategy_fleet_chaos_cases(smoke);
    cases.insert(cases.end(), strategy_cases.begin(), strategy_cases.end());
  }

  const obs::Snapshotter::HistogramFilter sim_time_only =
      [](std::string_view name) {
        return name.find("hop_latency") != std::string_view::npos;
      };
  std::vector<obs::Snapshotter> snapshotters;
  snapshotters.reserve(cases.size());
  for (const analysis::FleetChaosCase& c : cases) {
    snapshotters.emplace_back(c.spec.id(), c.spec.interval_us, sim_time_only);
  }

  const auto results = [&] {
    const bench::PhaseTimer phase("chaos");
    return common::parallel_map<analysis::FleetChaosResult>(
        cases.size(), [&cases, &snapshotters](std::size_t i) {
          // Same per-scenario obs isolation as the clean sweep: private
          // registry/tracer per case, merged in slot order.
          obs::Registry local;
          obs::Tracer local_tracer(std::size_t{1} << 16);
          local_tracer.enable(obs::Tracer::global().enabled());
          analysis::FleetChaosResult result;
          {
            const ScopedObsOverride scope(&local, &local_tracer);
            result = analysis::run_fleet_chaos_case(cases[i],
                                                    &snapshotters[i]);
          }
          obs::Registry::global().merge_from(local);
          obs::Tracer::global().append_from(local_tracer);
          return result;
        });
  }();

  for (const obs::Snapshotter& snap : snapshotters) {
    bench::append_snapshots(snap);
  }

  common::TextTable table({"case", "scenario", "auth rate", "forged ok",
                           "evicted", "shed", "false drop", "peak/cap",
                           "restarts", "reconv", "ok"});
  common::CsvWriter csv(
      bench::csv_path("fleet_chaos"),
      {"case", "scenario", "kind", "max_depth", "cohorts", "members_total",
       "forged_fraction", "auth_rate", "member_auths", "sentinel_auths",
       "forged_accepted", "announces_unsafe", "guard_evicted", "guard_shed",
       "guard_false_drops", "guard_peak_entries", "guard_capacity",
       "relay_restarts", "dropped_while_down", "fault_clear_interval",
       "reconverge_worst", "ok"});

  bool ok = true;
  std::uint64_t restarts = 0;
  std::uint64_t shed = 0;
  std::uint64_t evicted = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const analysis::FleetChaosResult& result = results[i];
    const fleet::FleetReport& report = result.report;
    const fleet::ScenarioSpec& spec = cases[i].spec;
    restarts += report.relay_restarts;
    shed += report.guard_shed;
    evicted += report.guard_evicted;
    table.add_row(
        {result.label, spec.id(), common::format_number(report.auth_rate),
         std::to_string(report.forged_accepted),
         std::to_string(report.guard_evicted),
         std::to_string(report.guard_shed),
         std::to_string(report.guard_false_drops),
         std::to_string(report.guard_peak_entries) + "/" +
             std::to_string(report.guard_capacity),
         std::to_string(report.relay_restarts),
         std::to_string(worst_reconverge(report)),
         result.ok() ? "yes" : "NO"});
    csv.row_text(
        {result.label, spec.id(), fleet::topology_kind_name(spec.kind),
         std::to_string(report.max_depth), std::to_string(report.cohort_count),
         std::to_string(report.total_members),
         common::format_number(spec.forged_fraction),
         common::format_number(report.auth_rate),
         std::to_string(report.member_auths),
         std::to_string(report.sentinel_auths),
         std::to_string(report.forged_accepted),
         std::to_string(report.announces_unsafe),
         std::to_string(report.guard_evicted),
         std::to_string(report.guard_shed),
         std::to_string(report.guard_false_drops),
         std::to_string(report.guard_peak_entries),
         std::to_string(report.guard_capacity),
         std::to_string(report.relay_restarts),
         std::to_string(report.dropped_while_down),
         std::to_string(report.fault_clear_interval),
         std::to_string(worst_reconverge(report)),
         result.ok() ? "1" : "0"});
    if (!result.zero_forged) {
      std::cerr << "INVARIANT VIOLATION: forged message authenticated ("
                << result.label << ")\n";
      ok = false;
    }
    if (!result.memory_bounded) {
      std::cerr << "INVARIANT VIOLATION: relay memory " <<
          report.guard_peak_entries << " entries exceeds guard capacity "
                << report.guard_capacity << " (" << result.label << ")\n";
      ok = false;
    }
    if (!result.reconverged) {
      std::cerr << "INVARIANT VIOLATION: a depth missed its reconvergence "
                   "bound of " << cases[i].reconverge_within << " ("
                << result.label << ")\n";
      ok = false;
    }
  }
  // The soak must actually bite: crash cycles executed, budget shed
  // traffic, and the tag store overflowed somewhere across the family.
  if (restarts == 0 || shed == 0 || evicted == 0) {
    std::cerr << "INVARIANT VIOLATION: chaos did not engage (restarts "
              << restarts << ", shed " << shed << ", evicted " << evicted
              << ")\n";
    ok = false;
  }

  std::cout << table.render();
  std::cout << "\nRelay state is bounded by construction: the ingress guard "
               "caps the tag\nstore at its configured capacity and the token "
               "bucket sheds excess load,\nso a flood changes counters, not "
               "memory. 'forged ok' must stay 0.\n";
  bench::set_run_scenario(smoke ? "fleet_scale:chaos-smoke"
                                : "fleet_scale:chaos-full");
  bench::footer("fleet_chaos");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dap;
  const std::size_t threads = bench::configure_threads(argc, argv);
  bool smoke = false;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }
  if (chaos) return run_chaos(smoke, threads);
  bench::banner(
      std::string("fleet scale — multi-hop relay topologies x receiver "
                  "cohorts") +
          (smoke ? " (smoke)" : ""),
      "crowdsensing setting at fleet scale: every node relays, 10^5 "
      "receivers verify",
      "auth rate 1.0 without attack, graceful decay vs forged fraction p, "
      "zero forged authentications everywhere");
  std::cout << "[parallel engine: " << threads << " thread(s)]\n";

  // Flight recorder on for the whole sweep, sized so smoke AND full
  // runs retain every event/span (the footer's drop counters prove it).
  obs::Tracer::global().set_capacity(std::size_t{1} << 17);
  obs::Tracer::global().enable(true);

  std::vector<fleet::ScenarioSpec> specs;

  // Fleet-size flagships: >= 100k receivers behind a distribution tree
  // and a 2-regular gossip mesh.
  {
    fleet::ScenarioSpec tree = base_spec(smoke);
    tree.name = "tree_flagship";
    tree.kind = fleet::TopologyKind::kTree;
    tree.depth = smoke ? 2 : 3;
    tree.fanout = smoke ? 2 : 4;  // full: 84 cohorts
    tree.members_per_cohort = smoke ? 40 : 1200;  // full: 100,800 receivers
    specs.push_back(tree);

    fleet::ScenarioSpec gossip = base_spec(smoke);
    gossip.name = "gossip_flagship";
    gossip.kind = fleet::TopologyKind::kGossip;
    gossip.relays = smoke ? 8 : 128;
    gossip.fanin = 2;
    gossip.members_per_cohort = smoke ? 40 : 800;  // full: 102,400 receivers
    specs.push_back(gossip);
  }

  // Fleet-size curve: same tree, growing cohorts.
  for (const std::size_t members :
       smoke ? std::vector<std::size_t>{10, 20}
             : std::vector<std::size_t>{50, 200, 600}) {
    fleet::ScenarioSpec spec = base_spec(smoke);
    spec.name = "size";
    spec.kind = fleet::TopologyKind::kTree;
    spec.depth = 2;
    spec.fanout = 3;
    spec.members_per_cohort = members;
    specs.push_back(spec);
  }

  // Depth curve: binary tree deepening at fixed per-cohort size.
  for (const std::uint32_t depth :
       smoke ? std::vector<std::uint32_t>{1, 2}
             : std::vector<std::uint32_t>{1, 2, 3, 4}) {
    fleet::ScenarioSpec spec = base_spec(smoke);
    spec.name = "depth";
    spec.kind = fleet::TopologyKind::kTree;
    spec.depth = depth;
    spec.fanout = 2;
    spec.members_per_cohort = smoke ? 20 : 400;
    specs.push_back(spec);
  }

  // Forged-fraction curve: per-hop flooding adversary at the root of a
  // small tree; reservoir buffers are the only defense.
  for (const double p : smoke ? std::vector<double>{0.0, 0.5}
                              : std::vector<double>{0.0, 0.5, 0.8, 0.9}) {
    fleet::ScenarioSpec spec = base_spec(smoke);
    spec.name = "forged";
    spec.kind = fleet::TopologyKind::kTree;
    spec.depth = 2;
    spec.fanout = 3;
    spec.members_per_cohort = smoke ? 20 : 500;
    spec.forged_fraction = p;
    specs.push_back(spec);
  }

  // Topology shape spot checks: mesh and single-hop star.
  {
    fleet::ScenarioSpec grid = base_spec(smoke);
    grid.name = "grid";
    grid.kind = fleet::TopologyKind::kGrid;
    grid.rows = smoke ? 2 : 6;
    grid.cols = smoke ? 3 : 6;
    grid.members_per_cohort = smoke ? 20 : 300;
    specs.push_back(grid);

    fleet::ScenarioSpec flood = base_spec(smoke);
    flood.name = "flood";
    flood.kind = fleet::TopologyKind::kFlood;
    flood.receivers = smoke ? 8 : 64;
    flood.members_per_cohort = smoke ? 20 : 500;
    specs.push_back(flood);
  }

  // One snapshotter per scenario, sampling at interval cadence; built
  // before the fan-out so pointers stay stable across the run.
  // Only sim-time histograms enter the stream: wall-clock timer
  // quantiles (crypto.*_us etc.) vary run to run and would break the
  // snapshots.jsonl byte-identity contract.
  const obs::Snapshotter::HistogramFilter sim_time_only =
      [](std::string_view name) {
        return name.find("hop_latency") != std::string_view::npos;
      };
  std::vector<obs::Snapshotter> snapshotters;
  snapshotters.reserve(specs.size());
  for (const fleet::ScenarioSpec& spec : specs) {
    snapshotters.emplace_back(spec.id(), spec.interval_us, sim_time_only);
  }

  const auto reports = [&] {
    const bench::PhaseTimer phase("fleet");
    return common::parallel_map<fleet::FleetReport>(
        specs.size(), [&specs, &snapshotters](std::size_t i) {
          // Each scenario records into a private registry/tracer pair,
          // merged into the ambient shard afterwards: snapshots then
          // see exactly one scenario's counters, independent of how
          // specs share shards — the 1-vs-N-thread byte-identity
          // contract for snapshots.jsonl and trace.json.
          obs::Registry local;
          obs::Tracer local_tracer(std::size_t{1} << 16);
          local_tracer.enable(obs::Tracer::global().enabled());
          fleet::FleetReport report;
          {
            const ScopedObsOverride scope(&local, &local_tracer);
            fleet::FleetSim sim(specs[i]);
            sim.set_snapshotter(&snapshotters[i]);
            report = sim.run();
          }
          obs::Registry::global().merge_from(local);
          obs::Tracer::global().append_from(local_tracer);
          return report;
        });
  }();

  // Snapshot streams concatenate in spec order (deterministic at any
  // thread count) for the run registry's snapshots.jsonl.
  for (const obs::Snapshotter& snap : snapshotters) {
    bench::append_snapshots(snap);
  }

  common::TextTable table({"scenario", "members", "depth", "p", "auth rate",
                           "member auth", "forged sent", "forged ok",
                           "unsafe", "peak records"});
  common::CsvWriter csv(
      bench::csv_path("fleet_scale"),
      {"scenario", "kind", "nodes", "max_depth", "cohorts", "members_total",
       "forged_fraction", "announces_sent", "forged_announces_sent",
       "forged_reveals_sent", "member_auths", "sentinel_auths",
       "forged_accepted", "announces_unsafe", "weak_auth_failures",
       "dedup_dropped", "stored_records_peak", "defense_bits_peak",
       "auth_rate"});

  bool ok = true;
  std::uint64_t largest_tree = 0;
  std::uint64_t largest_gossip = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const fleet::ScenarioSpec& spec = specs[i];
    const fleet::FleetReport& report = reports[i];
    table.add_row({spec.id(), std::to_string(report.total_members),
                   std::to_string(report.max_depth),
                   common::format_number(spec.forged_fraction),
                   common::format_number(report.auth_rate),
                   std::to_string(report.member_auths),
                   std::to_string(report.forged_announces_sent),
                   std::to_string(report.forged_accepted),
                   std::to_string(report.announces_unsafe),
                   std::to_string(report.stored_records_peak)});
    csv.row_text(
        {spec.id(), fleet::topology_kind_name(spec.kind),
         std::to_string(spec.build_topology().node_count),
         std::to_string(report.max_depth),
         std::to_string(report.cohort_count),
         std::to_string(report.total_members),
         common::format_number(spec.forged_fraction),
         std::to_string(report.announces_sent),
         std::to_string(report.forged_announces_sent),
         std::to_string(report.forged_reveals_sent),
         std::to_string(report.member_auths),
         std::to_string(report.sentinel_auths),
         std::to_string(report.forged_accepted),
         std::to_string(report.announces_unsafe),
         std::to_string(report.weak_auth_failures),
         std::to_string(report.dedup_dropped),
         std::to_string(report.stored_records_peak),
         std::to_string(report.stored_records_peak * 56),
         common::format_number(report.auth_rate)});
    if (!report.zero_forged()) {
      std::cerr << "INVARIANT VIOLATION: forged message authenticated ("
                << spec.id() << ")\n";
      ok = false;
    }
    if (spec.forged_fraction == 0.0 && report.auth_rate < 0.999) {
      std::cerr << "INVARIANT VIOLATION: clean-channel auth rate "
                << report.auth_rate << " < 1 (" << spec.id() << ")\n";
      ok = false;
    }
    if (spec.kind == fleet::TopologyKind::kTree) {
      largest_tree = std::max(largest_tree, report.total_members);
    }
    if (spec.kind == fleet::TopologyKind::kGossip) {
      largest_gossip = std::max(largest_gossip, report.total_members);
    }
  }
  const std::uint64_t floor = smoke ? 100 : 100000;
  if (largest_tree < floor || largest_gossip < floor) {
    std::cerr << "INVARIANT VIOLATION: flagship fleets below " << floor
              << " receivers (tree " << largest_tree << ", gossip "
              << largest_gossip << ")\n";
    ok = false;
  }

  // Observability invariants (smoke doubles as the ctest for them):
  // the flight recorder must have lost nothing, every scenario must
  // yield a genuine time series, and at least one announce's spans must
  // chain across >= 2 relay hops into an auth-ok verify span.
  if (smoke) {
    const obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.dropped() != 0 || tracer.spans_dropped() != 0) {
      std::cerr << "INVARIANT VIOLATION: tracer dropped "
                << tracer.dropped() << " events / " << tracer.spans_dropped()
                << " spans (ring too small)\n";
      ok = false;
    }
    for (std::size_t i = 0; i < snapshotters.size(); ++i) {
      if (snapshotters[i].samples() < 3) {
        std::cerr << "INVARIANT VIOLATION: only " << snapshotters[i].samples()
                  << " registry snapshots for " << specs[i].id()
                  << " (need >= 3)\n";
        ok = false;
      }
    }
    if (!has_cross_hop_chain(tracer.span_snapshot())) {
      std::cerr << "INVARIANT VIOLATION: no verify span chains across >= 2 "
                   "relay hops to an announce send\n";
      ok = false;
    }
  }

  std::cout << table.render();
  std::cout << "\nEvery receiver is simulated: cohorts replay per-member "
               "reservoir decisions\nwith stateless per-(member, interval, "
               "offer) draws, so the sweep is bitwise\nidentical at any "
               "thread count. 'forged ok' must stay 0.\n";
  bench::set_run_scenario(smoke ? "fleet_scale:smoke" : "fleet_scale:full");
  bench::footer("fleet_scale");
  return ok ? 0 : 1;
}
