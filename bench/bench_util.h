#pragma once
// Shared output helpers for the experiment binaries: every bench prints
// a banner, an aligned table, an ASCII rendering of the figure's shape,
// writes the raw series to bench_out/<name>.csv for re-plotting, and
// leaves a machine-readable run summary (counters + histogram
// percentiles + wall time from the obs registry) in
// bench_out/<name>.metrics.json — the perf-trajectory baseline future
// PRs diff against.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/ascii_chart.h"
#include "common/csv.h"
#include "common/table.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"

namespace dap::bench {

namespace detail {
/// Pinned on first use; banner() touches it so wall time covers the run.
inline std::chrono::steady_clock::time_point run_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}
}  // namespace detail

inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

inline std::string metrics_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".metrics.json";
}

/// Times a named phase of a bench into the global registry (histogram
/// `bench.<phase>_us`), so figure benches and micro benches report
/// through the same log-bucketed histogram type.
[[nodiscard]] inline obs::ScopedTimer scoped_timer(const std::string& phase) {
  return obs::ScopedTimer(
      obs::Registry::global().histogram("bench." + phase + "_us"));
}

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  detail::run_start();
  std::cout << "================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_ref << '\n'
            << "Expected shape: " << expectation << '\n'
            << "================================================================\n";
}

/// Writes the global-registry snapshot (plus wall time since banner) to
/// bench_out/<name>.metrics.json.
inline void write_run_summary(const std::string& name) {
  auto& reg = obs::Registry::global();
  reg.add(reg.counter("bench.completed"));
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    detail::run_start())
          .count();
  reg.observe(reg.histogram("bench.wall_us"), wall_seconds * 1e6);
  obs::write_metrics_json(reg, metrics_path(name), wall_seconds);
}

inline void footer(const std::string& name) {
  write_run_summary(name);
  std::cout << "[series written to " << csv_path(name) << "]\n"
            << "[run summary written to " << metrics_path(name) << "]\n\n";
}

}  // namespace dap::bench
