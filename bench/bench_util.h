#pragma once
// Shared output helpers for the experiment binaries: every bench prints
// a banner, an aligned table, an ASCII rendering of the figure's shape,
// writes the raw series to bench_out/<name>.csv for re-plotting, and
// leaves a machine-readable run summary (counters + histogram
// percentiles + wall time from the obs registry) in
// bench_out/<name>.metrics.json — the perf-trajectory baseline future
// PRs diff against. The summary footer also records the parallel-engine
// thread count, the host's core count, peak RSS, per-phase wall times,
// the scenario id, and the tracer's event/span drop accounting so
// speedup runs are self-describing across hosts.
//
// Every footer() additionally materialises the run registry: a
// bench_out/runs/<run_id>/ directory holding manifest.json (schema
// dap.run_manifest.v1: bench, scenario, command line, threads, cores,
// git rev, wall time), the metrics footer, the CSV series, any
// registered snapshot streams (snapshots.jsonl) and — when tracing is
// enabled — the trace as JSONL and Chrome trace_event JSON. The run id
// comes from $DAP_RUN_ID when set (CI pins it to locate artifacts),
// else <name>-<utc-stamp>-<pid>.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/ascii_chart.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "common/table.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dap::bench {

namespace detail {
/// Pinned on first use; banner() touches it so wall time covers the run.
inline std::chrono::steady_clock::time_point run_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// Wall seconds per completed named phase, in completion order; rendered
/// into the metrics footer as the "phases" object.
inline std::map<std::string, double>& phase_walls() {
  static std::map<std::string, double> walls;
  return walls;
}

/// Topology/scenario identifier for the footer (empty until a bench
/// calls set_run_scenario).
inline std::string& run_scenario() {
  static std::string id;
  return id;
}

/// Command line captured by configure_threads, for the run manifest.
inline std::vector<std::string>& run_args() {
  static std::vector<std::string> args;
  return args;
}

/// Snapshot streams registered for the run registry, in registration
/// order (one Snapshotter per scenario; streams concatenate as JSONL).
inline std::string& snapshot_stream() {
  static std::string stream;
  return stream;
}
}  // namespace detail

/// Records a compact scenario/topology identifier in the metrics footer
/// ("scenario" field), so a BENCH_*.json captured on one host says what
/// was actually simulated — not just how fast.
inline void set_run_scenario(const std::string& id) {
  detail::run_scenario() = id;
}

inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

inline std::string metrics_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".metrics.json";
}

/// Parses `--threads N` (or `--threads=N`) from argv and pins the
/// parallel engine's default worker count; without the flag the default
/// stands (DAP_THREADS env override, else hardware concurrency). Returns
/// the thread count now in effect. Unrelated arguments are ignored so
/// benches can mix this with their own flags (e.g. --smoke).
inline std::size_t configure_threads(int argc, char** argv) {
  detail::run_args().assign(argv, argv + argc);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      continue;
    }
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      common::set_default_threads(static_cast<std::size_t>(parsed));
    } else {
      std::cerr << "[bench] ignoring invalid --threads value '" << value
                << "'\n";
    }
    break;
  }
  return common::default_threads();
}

/// Peak resident set size in KiB, or 0 where unavailable.
inline std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB already
#endif
  }
#endif
  return 0;
}

/// Times a named phase of a bench into the global registry (histogram
/// `bench.<phase>_us`), so figure benches and micro benches report
/// through the same log-bucketed histogram type.
[[nodiscard]] inline obs::ScopedTimer scoped_timer(const std::string& phase) {
  return obs::ScopedTimer(
      obs::Registry::global().histogram("bench." + phase + "_us"));
}

/// RAII phase clock: on destruction records the phase's wall seconds
/// into the footer's "phases" map AND the `bench.<phase>_us` histogram.
/// Re-entering a phase name accumulates.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase)
      : phase_(std::move(phase)),
        timer_(scoped_timer(phase_)),
        start_(std::chrono::steady_clock::now()) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    detail::phase_walls()[phase_] += seconds;
  }

 private:
  std::string phase_;
  obs::ScopedTimer timer_;
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  detail::run_start();
  std::cout << "================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_ref << '\n'
            << "Expected shape: " << expectation << '\n'
            << "================================================================\n";
}

/// Appends one scenario's snapshot stream to the run registry's
/// snapshots.jsonl (written by footer() when non-empty). Call in a
/// deterministic order — typically spec order after a parallel fan-out.
inline void append_snapshots(const obs::Snapshotter& snapshotter) {
  detail::snapshot_stream() += snapshotter.stream();
}

namespace detail {
/// Renders the run-environment footer fields ("threads", "cpu_cores",
/// "peak_rss_kb", "scenario", "phases", trace drop accounting) as a
/// JSON fragment for metrics_json's extra_fields slot. cpu_cores
/// disambiguates speedup numbers across hosts (a ~1.0 speedup on a
/// 1-core machine is expected, not a regression); scenario says what
/// the run simulated; the trace totals make silent ring-buffer event
/// loss visible (smoke suites assert the dropped fields are zero).
inline std::string footer_extra_fields() {
  std::string out = "\"threads\": " + std::to_string(common::default_threads());
  out += ", \"cpu_cores\": " + std::to_string(common::hardware_threads());
  out += ", \"peak_rss_kb\": " + std::to_string(peak_rss_kb());
  out += ", \"scenario\": \"" + run_scenario() + "\"";
  const obs::Tracer& tracer = obs::Tracer::global();
  out += ", \"trace_events_total\": " + std::to_string(tracer.total_recorded());
  out += ", \"trace_events_dropped\": " + std::to_string(tracer.dropped());
  out += ", \"trace_spans_total\": " +
         std::to_string(tracer.spans_total_recorded());
  out += ", \"trace_spans_dropped\": " + std::to_string(tracer.spans_dropped());
  out += ", \"phases\": {";
  bool first = true;
  for (const auto& [phase, seconds] : phase_walls()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", seconds);
    out += std::string(first ? "" : ", ") + "\"" + phase + "\": " + buf;
    first = false;
  }
  out += "}";
  return out;
}

/// Run id for the run registry: $DAP_RUN_ID (CI pins it) or
/// <name>-<utc-stamp>-<pid>.
inline std::string run_id(const std::string& name) {
  if (const char* pinned = std::getenv("DAP_RUN_ID");
      pinned != nullptr && *pinned != '\0') {
    return pinned;
  }
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y%m%dT%H%M%SZ", &utc);
  long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
  pid = static_cast<long>(getpid());
#endif
  return name + "-" + stamp + "-" + std::to_string(pid);
}

/// Commit the binary was built from: $DAP_GIT_REV, else $GITHUB_SHA,
/// else the .git/HEAD walk from the working directory; "unknown" when
/// none resolves.
inline std::string git_rev() {
  for (const char* var : {"DAP_GIT_REV", "GITHUB_SHA"}) {
    if (const char* rev = std::getenv(var); rev != nullptr && *rev != '\0') {
      return rev;
    }
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::path dir = fs::current_path(ec); !ec && !dir.empty();
       dir = dir.parent_path()) {
    const fs::path head = dir / ".git" / "HEAD";
    if (fs::exists(head, ec)) {
      std::ifstream in(head);
      std::string line;
      if (std::getline(in, line)) {
        if (line.rfind("ref: ", 0) == 0) {
          std::ifstream ref(dir / ".git" / line.substr(5));
          std::string sha;
          if (std::getline(ref, sha) && !sha.empty()) return sha;
          return line.substr(5);  // unborn branch: name is the best we have
        }
        if (!line.empty()) return line;  // detached HEAD holds the sha
      }
      break;
    }
    if (dir == dir.root_path()) break;
  }
  return "unknown";
}

/// Renders and writes manifest.json (schema dap.run_manifest.v1).
inline void write_manifest(const std::string& dir, const std::string& id,
                           const std::string& name, double wall_seconds) {
  std::string out = "{\n  \"schema\": \"dap.run_manifest.v1\"";
  out += ",\n  \"run_id\": " + obs::detail::json_string(id);
  out += ",\n  \"bench\": " + obs::detail::json_string(name);
  out += ",\n  \"scenario\": " + obs::detail::json_string(run_scenario());
  out += ",\n  \"args\": [";
  bool first = true;
  for (const std::string& arg : run_args()) {
    out += std::string(first ? "" : ", ") + obs::detail::json_string(arg);
    first = false;
  }
  out += "]";
  out += ",\n  \"threads\": " + std::to_string(common::default_threads());
  out += ",\n  \"cpu_cores\": " + std::to_string(common::hardware_threads());
  out += ",\n  \"peak_rss_kb\": " + std::to_string(peak_rss_kb());
  out += ",\n  \"wall_seconds\": " + obs::detail::json_number(wall_seconds);
  out += ",\n  \"git_rev\": " + obs::detail::json_string(git_rev());
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  out += ",\n  \"created_utc\": " + obs::detail::json_string(stamp);
  out += "\n}\n";
  std::ofstream(dir + "/manifest.json") << out;
}
}  // namespace detail

/// Writes the global-registry snapshot (plus wall time since banner and
/// the thread/RSS/phase footer fields) to bench_out/<name>.metrics.json.
inline void write_run_summary(const std::string& name) {
  auto& reg = obs::Registry::global();
  reg.add(reg.counter("bench.completed"));
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    detail::run_start())
          .count();
  reg.observe(reg.histogram("bench.wall_us"), wall_seconds * 1e6);
  obs::write_metrics_json(reg, metrics_path(name), wall_seconds,
                          detail::footer_extra_fields());
}

/// Materialises bench_out/runs/<run_id>/: manifest, metrics footer, the
/// CSV series (copied from the legacy flat path), any registered
/// snapshot streams, and the trace exports when tracing is enabled.
/// Returns the run directory path.
inline std::string write_run_registry(const std::string& name,
                                      double wall_seconds) {
  const std::string id = detail::run_id(name);
  const std::string dir = "bench_out/runs/" + id;
  std::filesystem::create_directories(dir);
  detail::write_manifest(dir, id, name, wall_seconds);
  obs::write_metrics_json(obs::Registry::global(), dir + "/metrics.json",
                          wall_seconds, detail::footer_extra_fields());
  std::error_code ec;
  const std::string flat_csv = csv_path(name);
  if (std::filesystem::exists(flat_csv, ec)) {
    std::filesystem::copy_file(
        flat_csv, dir + "/" + name + ".csv",
        std::filesystem::copy_options::overwrite_existing, ec);
  }
  if (!detail::snapshot_stream().empty()) {
    std::ofstream(dir + "/snapshots.jsonl") << detail::snapshot_stream();
  }
  const obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled() &&
      (tracer.total_recorded() > 0 || tracer.spans_total_recorded() > 0)) {
    obs::write_trace_jsonl(tracer, dir + "/trace.jsonl");
    obs::write_chrome_trace(tracer, dir + "/trace.json");
  }
  return dir;
}

inline void footer(const std::string& name) {
  write_run_summary(name);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    detail::run_start())
          .count();
  const std::string run_dir = write_run_registry(name, wall_seconds);
  std::cout << "[series written to " << csv_path(name) << "]\n"
            << "[run summary written to " << metrics_path(name) << "]\n"
            << "[run registry written to " << run_dir << "]\n\n";
}

}  // namespace dap::bench
