#pragma once
// Shared output helpers for the experiment binaries: every bench prints
// a banner, an aligned table, an ASCII rendering of the figure's shape,
// writes the raw series to bench_out/<name>.csv for re-plotting, and
// leaves a machine-readable run summary (counters + histogram
// percentiles + wall time from the obs registry) in
// bench_out/<name>.metrics.json — the perf-trajectory baseline future
// PRs diff against. The summary footer also records the parallel-engine
// thread count, the host's core count, peak RSS, per-phase wall times,
// and the scenario id so speedup runs are self-describing across hosts.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

#include "common/ascii_chart.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "common/table.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dap::bench {

namespace detail {
/// Pinned on first use; banner() touches it so wall time covers the run.
inline std::chrono::steady_clock::time_point run_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// Wall seconds per completed named phase, in completion order; rendered
/// into the metrics footer as the "phases" object.
inline std::map<std::string, double>& phase_walls() {
  static std::map<std::string, double> walls;
  return walls;
}

/// Topology/scenario identifier for the footer (empty until a bench
/// calls set_run_scenario).
inline std::string& run_scenario() {
  static std::string id;
  return id;
}
}  // namespace detail

/// Records a compact scenario/topology identifier in the metrics footer
/// ("scenario" field), so a BENCH_*.json captured on one host says what
/// was actually simulated — not just how fast.
inline void set_run_scenario(const std::string& id) {
  detail::run_scenario() = id;
}

inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

inline std::string metrics_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".metrics.json";
}

/// Parses `--threads N` (or `--threads=N`) from argv and pins the
/// parallel engine's default worker count; without the flag the default
/// stands (DAP_THREADS env override, else hardware concurrency). Returns
/// the thread count now in effect. Unrelated arguments are ignored so
/// benches can mix this with their own flags (e.g. --smoke).
inline std::size_t configure_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      continue;
    }
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      common::set_default_threads(static_cast<std::size_t>(parsed));
    } else {
      std::cerr << "[bench] ignoring invalid --threads value '" << value
                << "'\n";
    }
    break;
  }
  return common::default_threads();
}

/// Peak resident set size in KiB, or 0 where unavailable.
inline std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB already
#endif
  }
#endif
  return 0;
}

/// Times a named phase of a bench into the global registry (histogram
/// `bench.<phase>_us`), so figure benches and micro benches report
/// through the same log-bucketed histogram type.
[[nodiscard]] inline obs::ScopedTimer scoped_timer(const std::string& phase) {
  return obs::ScopedTimer(
      obs::Registry::global().histogram("bench." + phase + "_us"));
}

/// RAII phase clock: on destruction records the phase's wall seconds
/// into the footer's "phases" map AND the `bench.<phase>_us` histogram.
/// Re-entering a phase name accumulates.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase)
      : phase_(std::move(phase)),
        timer_(scoped_timer(phase_)),
        start_(std::chrono::steady_clock::now()) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    detail::phase_walls()[phase_] += seconds;
  }

 private:
  std::string phase_;
  obs::ScopedTimer timer_;
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  detail::run_start();
  std::cout << "================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_ref << '\n'
            << "Expected shape: " << expectation << '\n'
            << "================================================================\n";
}

namespace detail {
/// Renders the run-environment footer fields ("threads", "cpu_cores",
/// "peak_rss_kb", "scenario", "phases") as a JSON fragment for
/// metrics_json's extra_fields slot. cpu_cores disambiguates speedup
/// numbers across hosts (a ~1.0 speedup on a 1-core machine is expected,
/// not a regression); scenario says what the run simulated.
inline std::string footer_extra_fields() {
  std::string out = "\"threads\": " + std::to_string(common::default_threads());
  out += ", \"cpu_cores\": " + std::to_string(common::hardware_threads());
  out += ", \"peak_rss_kb\": " + std::to_string(peak_rss_kb());
  out += ", \"scenario\": \"" + run_scenario() + "\"";
  out += ", \"phases\": {";
  bool first = true;
  for (const auto& [phase, seconds] : phase_walls()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", seconds);
    out += std::string(first ? "" : ", ") + "\"" + phase + "\": " + buf;
    first = false;
  }
  out += "}";
  return out;
}
}  // namespace detail

/// Writes the global-registry snapshot (plus wall time since banner and
/// the thread/RSS/phase footer fields) to bench_out/<name>.metrics.json.
inline void write_run_summary(const std::string& name) {
  auto& reg = obs::Registry::global();
  reg.add(reg.counter("bench.completed"));
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    detail::run_start())
          .count();
  reg.observe(reg.histogram("bench.wall_us"), wall_seconds * 1e6);
  obs::write_metrics_json(reg, metrics_path(name), wall_seconds,
                          detail::footer_extra_fields());
}

inline void footer(const std::string& name) {
  write_run_summary(name);
  std::cout << "[series written to " << csv_path(name) << "]\n"
            << "[run summary written to " << metrics_path(name) << "]\n\n";
}

}  // namespace dap::bench
