#pragma once
// Shared output helpers for the experiment binaries: every bench prints
// a banner, an aligned table, an ASCII rendering of the figure's shape,
// and writes the raw series to bench_out/<name>.csv for re-plotting.

#include <filesystem>
#include <iostream>
#include <string>

#include "common/ascii_chart.h"
#include "common/csv.h"
#include "common/table.h"

namespace dap::bench {

inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "================================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_ref << '\n'
            << "Expected shape: " << expectation << '\n'
            << "================================================================\n";
}

inline void footer(const std::string& name) {
  std::cout << "[series written to " << csv_path(name) << "]\n\n";
}

}  // namespace dap::bench
