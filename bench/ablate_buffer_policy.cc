// E9 — ablation of the buffer selection policy: the paper's reservoir
// (keep k-th copy w.p. m/k) vs naive-drop and always-replace, under
// early, late, and interleaved flood bursts.

#include <iostream>

#include "analysis/montecarlo.h"
#include "bench_util.h"

int main() {
  using namespace dap;
  bench::banner(
      "E9 — ablation: buffer policy x flood timing (p=0.85, m=4)",
      "the multiple-buffer random-selection design of Sec. IV-A",
      "reservoir ~ p^m regardless of timing; naive-drop collapses under "
      "early bursts; always-replace collapses under late bursts");

  const struct {
    const char* name;
    protocol::BufferPolicy policy;
  } policies[] = {
      {"reservoir (paper)", protocol::BufferPolicy::kReservoir},
      {"naive-drop", protocol::BufferPolicy::kNaiveDrop},
      {"always-replace", protocol::BufferPolicy::kAlwaysReplace},
  };
  const struct {
    const char* name;
    analysis::FloodTiming timing;
  } timings[] = {
      {"burst-early", analysis::FloodTiming::kBeforeAuthentic},
      {"burst-late", analysis::FloodTiming::kAfterAuthentic},
      {"interleaved", analysis::FloodTiming::kInterleaved},
  };

  common::TextTable table({"policy", "flood timing",
                           "attack success (measured)", "analytic p^m"});
  common::CsvWriter csv(bench::csv_path("ablate_buffer_policy"),
                        {"policy", "timing", "measured", "analytic"});
  for (const auto& policy : policies) {
    for (const auto& timing : timings) {
      analysis::MonteCarloConfig config;
      config.p = 0.85;
      config.m = 4;
      config.trials = 2000;
      config.policy = policy.policy;
      config.timing = timing.timing;
      config.seed = 99;
      const auto result = analysis::measure_attack_success(config);
      table.add_row({policy.name, timing.name,
                     common::format_number(result.measured_attack_success),
                     common::format_number(result.analytic)});
      csv.row_text({policy.name, timing.name,
                    common::format_number(result.measured_attack_success),
                    common::format_number(result.analytic)});
    }
  }
  std::cout << table.render();
  std::cout << "\nreading: only the reservoir policy is timing-oblivious — "
               "exactly why the paper floods lose their leverage.\n";
  bench::footer("ablate_buffer_policy");
  return 0;
}
