// Fuzz harness for the DAP receiver state machine (Algorithm 2).
//
// The input byte stream drives an adversarial interleaving of
// announce/reveal traffic against one DapReceiver: authentic packets from
// a real DapSender, bit-flipped MACs, forged keys, replayed reveals,
// wrong-interval claims, and time skips — the traffic mix a flooding
// attacker controls. After every input the harness checks the receiver's
// accounting invariants; contract checks (DAP_CONTRACTS) and sanitizers
// do the rest.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "dap/dap.h"
#include "fuzz_util.h"
#include "sim/time.h"
#include "wire/packet.h"

namespace {

using dap::fuzz::ByteStream;

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_dap_receiver: %s\n", what);
  std::abort();
}

constexpr std::uint32_t kChainLength = 16;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteStream stream(data, size);

  dap::protocol::DapConfig config;
  config.chain_length = kChainLength;
  config.disclosure_delay = 1 + stream.u8() % 2;  // d in {1, 2}
  config.buffers = 1 + stream.u8() % 4;           // m in {1..4}
  config.policy = static_cast<dap::protocol::BufferPolicy>(stream.u8() % 3);
  // Half the corpus runs with a tight record-pool cap so the graceful
  // degradation path (shed + shrink) is exercised under fuzz too.
  config.record_pool_limit = stream.u8() % 2 ? 6 : 0;

  const dap::common::Bytes seed = dap::common::bytes_of("fuzz-dap-seed");
  const dap::common::Bytes secret = dap::common::bytes_of("fuzz-recv-secret");
  dap::protocol::DapSender sender(config, seed);
  dap::protocol::DapReceiver receiver(
      config, sender.chain().commitment(), secret,
      dap::sim::LooseClock(0, 10 * dap::sim::kMillisecond),
      dap::common::Rng(stream.u32()));

  dap::sim::SimTime now = config.schedule.interval_start(1);
  std::vector<dap::wire::MacAnnounce> deferred;

  while (!stream.empty()) {
    const std::uint8_t op = stream.u8();
    const std::uint32_t interval = 1 + stream.u8() % kChainLength;
    switch (op % 8) {
      case 0: {  // authentic announce
        const auto message = stream.bytes(stream.u8() % 16);
        receiver.receive(sender.announce(interval, message), now);
        break;
      }
      case 1: {  // forged announce: attacker-chosen MAC bytes
        dap::wire::MacAnnounce forged;
        forged.sender = config.sender_id;
        forged.interval = interval;
        forged.mac = stream.bytes(config.mac_size);
        receiver.receive(forged, now);
        break;
      }
      case 2: {  // authentic reveal for a previously announced message
        const std::size_t count = sender.announced_count(interval);
        if (count > 0) {
          receiver.receive(sender.reveal(interval, stream.u8() % count), now);
        }
        break;
      }
      case 3: {  // forged reveal: wrong key and/or mutated message
        dap::wire::MessageReveal forged;
        forged.sender = config.sender_id;
        forged.interval = interval;
        forged.message = stream.bytes(stream.u8() % 16);
        forged.key = stream.bytes(config.key_size);
        receiver.receive(forged, now);
        break;
      }
      case 4: {  // replay an authentic reveal with a bit-flipped message
        if (sender.announced_count(interval) > 0) {
          auto reveal = sender.reveal(interval, 0);
          if (!reveal.message.empty()) {
            const std::size_t pos = stream.u8() % reveal.message.size();
            reveal.message[pos] ^= static_cast<std::uint8_t>(
                1u << (stream.u8() % 8));
          }
          receiver.receive(reveal, now);
        }
        break;
      }
      case 5: {  // advance local time by up to ~2 intervals
        now += (static_cast<dap::sim::SimTime>(stream.u8()) *
                config.schedule.duration()) /
               128;
        break;
      }
      case 6: {  // defer an authentic announce (reordering fault)
        const auto message = stream.bytes(stream.u8() % 16);
        deferred.push_back(sender.announce(interval, message));
        break;
      }
      case 7: {  // deliver the newest deferred announce late AND twice
        if (!deferred.empty()) {
          const auto announce = deferred.back();
          deferred.pop_back();
          receiver.receive(announce, now);
          receiver.receive(announce, now);  // duplication fault
        }
        break;
      }
    }
  }

  // Accounting invariants of Algorithm 2 that no interleaving may break.
  const dap::protocol::DapStats& stats = receiver.stats();
  if (stats.records_stored > stats.records_offered) {
    fail("stored more records than were offered");
  }
  if (stats.records_offered + stats.announces_unsafe +
          stats.admissions_shed !=
      stats.announces_received) {
    fail("announce accounting leak: offered + unsafe + shed != received");
  }
  if (stats.strong_auth_success + stats.strong_auth_failures +
          stats.weak_auth_failures !=
      stats.reveals_received) {
    fail("reveal accounting leak: outcomes != reveals received");
  }
  const std::size_t record_bits = config.micro_mac_size * 8 + 32;
  if (receiver.stored_record_bits() % record_bits != 0) {
    fail("stored_record_bits is not a whole number of records");
  }
  if (receiver.stored_record_bits() / record_bits >
      static_cast<std::size_t>(kChainLength) * receiver.buffers()) {
    fail("buffered records exceed the global m-per-round bound");
  }
  return 0;
}
