// Fuzz harness for the ScenarioSpec JSON parser — the one fleet surface
// that consumes operator-controlled text (scenario files).
//
// Properties checked on every input:
//   1. parse() never crashes: it either throws std::invalid_argument or
//      returns a spec (resource ceilings mean no allocation blowups).
//   2. An accepted spec satisfies its own validate() — parse cannot
//      admit a spec the validator would reject.
//   3. to_json() of an accepted spec is a canonical fixed point: it
//      re-parses, re-serializes to the same bytes, and keeps the same
//      scenario id (so baselines keyed by id never drift).

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "fleet/scenario.h"
#include "fuzz_util.h"

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_fleet_scenario: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string json(reinterpret_cast<const char*>(data), size);

  dap::fleet::ScenarioSpec spec;
  try {
    spec = dap::fleet::ScenarioSpec::parse(json);
  } catch (const std::invalid_argument&) {
    return 0;  // rejection is the contract for malformed input
  }

  try {
    spec.validate();
  } catch (const std::invalid_argument&) {
    fail("parse accepted a spec its own validator rejects");
  }
  if (spec.id().empty()) {
    fail("accepted spec has an empty scenario id");
  }

  const std::string canonical = spec.to_json();
  try {
    const dap::fleet::ScenarioSpec reparsed =
        dap::fleet::ScenarioSpec::parse(canonical);
    if (reparsed.to_json() != canonical) {
      fail("canonical JSON is not a serialization fixed point");
    }
    if (reparsed.id() != spec.id()) {
      fail("scenario id drifts across the canonical round-trip");
    }
  } catch (const std::invalid_argument&) {
    fail("canonical JSON rejected by its own parser");
  }

  return 0;
}
