// Fuzz harness for the TESLA++ receiver — same adversarial-interleaving
// scheme as fuzz_dap_receiver, for the protocol DAP is compared against.
//
// The byte stream interleaves authentic announces/reveals with forged
// MACs, forged keys, bit-flipped replays, signed-anchor verification on
// attacker-mutated anchors, and time skips, then checks the receiver's
// accounting invariants.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fuzz_util.h"
#include "sim/time.h"
#include "tesla/teslapp.h"
#include "wire/packet.h"

namespace {

using dap::fuzz::ByteStream;

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_teslapp_receiver: %s\n", what);
  std::abort();
}

constexpr std::uint32_t kChainLength = 16;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteStream stream(data, size);

  dap::tesla::TeslaPpConfig config;
  config.chain_length = kChainLength;
  config.max_records_per_interval = stream.u8() % 4;  // 0 = unlimited
  // Half the corpus runs with a tight pool cap so saturation shedding
  // (graceful degradation) is exercised under fuzz too.
  config.record_pool_limit = stream.u8() % 2 ? 8 : 0;

  const dap::common::Bytes seed = dap::common::bytes_of("fuzz-tpp-seed");
  const dap::common::Bytes secret = dap::common::bytes_of("fuzz-tpp-secret");
  dap::tesla::TeslaPpSender sender(config, seed);
  dap::tesla::TeslaPpReceiver receiver(
      config, sender.chain().commitment(), secret,
      dap::sim::LooseClock(0, 10 * dap::sim::kMillisecond));

  dap::sim::SimTime now = config.schedule.interval_start(1);
  std::vector<dap::wire::MacAnnounce> deferred;

  while (!stream.empty()) {
    const std::uint8_t op = stream.u8();
    const std::uint32_t interval = 1 + stream.u8() % kChainLength;
    switch (op % 8) {
      case 0: {  // authentic announce (overwrites the interval's message)
        const auto message = stream.bytes(stream.u8() % 16);
        receiver.receive(sender.announce(interval, message), now);
        break;
      }
      case 1: {  // forged announce
        dap::wire::MacAnnounce forged;
        forged.sender = config.sender_id;
        forged.interval = interval;
        forged.mac = stream.bytes(config.mac_size);
        receiver.receive(forged, now);
        break;
      }
      case 2: {  // authentic reveal (requires a prior announce)
        bool announced = false;
        try {
          auto reveal = sender.reveal(interval);
          announced = true;
          receiver.receive(reveal, now);
        } catch (const std::logic_error&) {
          if (announced) throw;  // reveal itself must not fail post-announce
        }
        break;
      }
      case 3: {  // forged reveal
        dap::wire::MessageReveal forged;
        forged.sender = config.sender_id;
        forged.interval = interval;
        forged.message = stream.bytes(stream.u8() % 16);
        forged.key = stream.bytes(config.key_size);
        receiver.receive(forged, now);
        break;
      }
      case 4: {  // verify an attacker-mutated signed anchor
        if (sender.anchors_remaining() > 0) {
          auto anchor = sender.make_anchor(interval);
          if (stream.u8() % 2 == 0 && !anchor.key.empty()) {
            anchor.key[stream.u8() % anchor.key.size()] ^=
                static_cast<std::uint8_t>(1u << (stream.u8() % 8));
            if (dap::tesla::verify_anchor(anchor, sender.signature_root())) {
              fail("mutated anchor passed signature verification");
            }
          } else if (!dap::tesla::verify_anchor(anchor,
                                                sender.signature_root())) {
            fail("authentic anchor failed signature verification");
          }
        }
        break;
      }
      case 5: {  // advance local time
        now += (static_cast<dap::sim::SimTime>(stream.u8()) *
                config.schedule.duration()) /
               128;
        break;
      }
      case 6: {  // defer an authentic announce (reordering fault)
        const auto message = stream.bytes(stream.u8() % 16);
        deferred.push_back(sender.announce(interval, message));
        break;
      }
      case 7: {  // deliver the newest deferred announce late AND twice
        if (!deferred.empty()) {
          const auto announce = deferred.back();
          deferred.pop_back();
          receiver.receive(announce, now);
          receiver.receive(announce, now);  // duplication fault
        }
        break;
      }
    }
  }

  const dap::tesla::TeslaPpStats& stats = receiver.stats();
  if (stats.records_stored + stats.records_dropped + stats.admissions_shed >
      stats.announces_received) {
    fail("stored + dropped + shed records exceed announces received");
  }
  if (stats.authenticated + stats.unmatched + stats.keys_rejected !=
      stats.reveals_received) {
    fail("reveal accounting leak: outcomes != reveals received");
  }
  const std::size_t record_bits = config.self_mac_size * 8 + 32;
  if (receiver.stored_record_bits() % record_bits != 0) {
    fail("stored_record_bits is not a whole number of records");
  }
  return 0;
}
