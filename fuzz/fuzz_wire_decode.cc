// Fuzz harness for the wire codec — the first code that touches
// attacker-controlled bytes.
//
// Properties checked on every input:
//   1. decode() never crashes, whatever the bytes.
//   2. Any accepted packet re-encodes to *exactly* the input bytes
//      (decode is the inverse of encode, so there is a single canonical
//      wire form and no parser differential).
//   3. wire_bits() accounting agrees with the encoded size.
//   4. deframe() and decode_wots_signature() are equally total; deframe
//      only ever accepts CRC-consistent frames.

#include <cstdio>
#include <cstdlib>

#include "common/bytes.h"
#include "fuzz_util.h"
#include "wire/crc32.h"
#include "wire/frame.h"
#include "wire/packet.h"

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_wire_decode: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const dap::common::ByteView view(data, size);

  if (const auto packet = dap::wire::decode(view)) {
    const dap::common::Bytes reencoded = dap::wire::encode(*packet);
    if (reencoded.size() != size ||
        !dap::common::equal(reencoded, view)) {
      fail("decode/encode round-trip is not the identity");
    }
    if (reencoded.size() * 8 != dap::wire::wire_bits(*packet)) {
      fail("wire_bits disagrees with encoded size");
    }
    (void)dap::wire::sender_of(*packet);
  }

  if (const auto framed = dap::wire::deframe(view)) {
    // An accepted frame implies a valid CRC trailer over the payload.
    const dap::common::ByteView payload = view.first(view.size() - 4);
    dap::common::Bytes reencoded = dap::wire::encode(*framed);
    if (!dap::common::equal(reencoded, payload)) {
      fail("deframe accepted a payload that does not re-encode identically");
    }
  }

  if (const auto chains = dap::wire::decode_wots_signature(view)) {
    const dap::common::Bytes reencoded =
        dap::wire::encode_wots_signature(*chains);
    if (!dap::common::equal(reencoded, view)) {
      fail("wots signature transport round-trip is not the identity");
    }
  }

  return 0;
}
