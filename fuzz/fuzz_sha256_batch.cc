// Fuzz harness for the batched multi-lane SHA-256 backend — the one
// component where a silent wrong answer would be worse than a crash.
//
// The input is interpreted as a batch description (message count, per
// message length and bytes, an HMAC key, chain-walk parameters). For
// every compiled-in backend the harness checks, bit for bit:
//   1. sha256_many() equals the scalar Sha256 oracle on every message.
//   2. hmac_many() equals the one-shot hmac_sha256() on every message.
//   3. prf_walk_many() trajectories equal sequential prf_bytes() walks.
// Any mismatch aborts, so libFuzzer (or the ctest corpus replay) treats
// it as a finding.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "crypto/sha256_batch.h"
#include "fuzz_util.h"

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_sha256_batch: %s\n", what);
  std::abort();
}

bool digest_equal(const dap::crypto::Digest& a,
                  const dap::crypto::Digest& b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace crypto = dap::crypto;
  dap::fuzz::ByteStream stream(data, size);

  // Batch shape: 0..16 messages of 0..255 bytes. Lengths hold even when
  // the input is exhausted (ByteStream returns short reads; pad).
  const std::size_t count = stream.u8() % 17;
  std::vector<dap::common::Bytes> messages(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = stream.u8();
    messages[i] = stream.bytes(len);
    messages[i].resize(len, 0xA5);
  }
  const std::size_t key_len = stream.u8() % 97;  // crosses the 64B pad edge
  dap::common::Bytes key = stream.bytes(key_len);
  key.resize(key_len, 0x3C);

  std::vector<dap::common::ByteView> views(messages.begin(), messages.end());

  // Scalar oracle digests, computed once.
  std::vector<crypto::Digest> expected(count);
  for (std::size_t i = 0; i < count; ++i) {
    crypto::Sha256 h;
    h.update(views[i]);
    expected[i] = h.finalize();
  }
  const crypto::HmacKey hmac_key{dap::common::ByteView(key)};
  std::vector<crypto::Digest> expected_macs(count);
  for (std::size_t i = 0; i < count; ++i) {
    expected_macs[i] = crypto::hmac_sha256(key, views[i]);
  }

  constexpr crypto::Sha256Backend kBackends[] = {
      crypto::Sha256Backend::kScalar, crypto::Sha256Backend::kSse2,
      crypto::Sha256Backend::kAvx2};
  for (const crypto::Sha256Backend backend : kBackends) {
    // force clamps to what the build/host supports, so every iteration
    // is a valid (possibly repeated) backend.
    crypto::force_sha256_backend(backend);
    std::vector<crypto::Digest> out(count);
    crypto::sha256_many(views, out);
    for (std::size_t i = 0; i < count; ++i) {
      if (!digest_equal(out[i], expected[i])) {
        fail("sha256_many diverged from the scalar oracle");
      }
    }
    std::vector<crypto::Digest> macs(count);
    crypto::hmac_many(hmac_key, views, macs);
    for (std::size_t i = 0; i < count; ++i) {
      if (!digest_equal(macs[i], expected_macs[i])) {
        fail("hmac_many diverged from hmac_sha256");
      }
    }
  }

  // Chain-walk equivalence: bounded step counts keep the harness fast.
  if (!messages.empty()) {
    const std::size_t key_size = 1 + stream.u8() % crypto::kSha256DigestSize;
    std::vector<dap::common::Bytes> starts(messages.size());
    std::vector<std::uint32_t> steps(messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
      starts[i] = messages[i];
      starts[i].resize(key_size, 0x5A);
      steps[i] = stream.u8() % 9;
    }
    std::vector<std::vector<dap::common::Bytes>> traj;
    crypto::prf_walk_many(crypto::PrfDomain::kChainStep, starts, steps,
                          key_size, traj);
    if (traj.size() != starts.size()) {
      fail("prf_walk_many returned the wrong trajectory count");
    }
    for (std::size_t i = 0; i < starts.size(); ++i) {
      if (traj[i].size() != steps[i]) {
        fail("prf_walk_many trajectory has the wrong length");
      }
      dap::common::Bytes current = starts[i];
      for (std::uint32_t s = 0; s < steps[i]; ++s) {
        current = crypto::prf_bytes(crypto::PrfDomain::kChainStep, current,
                                    key_size);
        if (!dap::common::equal(traj[i][s], current)) {
          fail("prf_walk_many diverged from sequential prf_bytes");
        }
      }
    }
  }

  crypto::clear_sha256_backend_override();
  return 0;
}
