#pragma once
// Shared scaffolding for the fuzz harnesses.
//
// Every harness defines the libFuzzer entry point
// `LLVMFuzzerTestOneInput`. When the toolchain supports
// `-fsanitize=fuzzer` (clang), CMake builds the harness as a real fuzzer
// and libFuzzer supplies main(). Otherwise (gcc, or DAP_HAVE_LIBFUZZER
// unset) this header supplies a corpus-replay main() so the exact same
// harness runs under ctest forever: each argument is a corpus file or a
// directory of corpus files, each replayed once through the harness.
// Harnesses signal a finding by aborting (contract violation, sanitizer
// report, or an explicit check in the harness), so a clean exit means the
// whole corpus passed.

#include <cstddef>
#include <cstdint>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace dap::fuzz {

/// Minimal FuzzedDataProvider: consumes the input front-to-back, returning
/// zeros once exhausted so harness control flow is total on any input.
class ByteStream {
 public:
  ByteStream(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }

  std::uint8_t u8() noexcept { return empty() ? 0 : data_[pos_++]; }

  std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
  }

  /// Up to `n` bytes (fewer near the end of the input).
  std::vector<std::uint8_t> bytes(std::size_t n) {
    const std::size_t take = n < remaining() ? n : remaining();
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + take);
    pos_ += take;
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace dap::fuzz

#if !defined(DAP_HAVE_LIBFUZZER)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace dap::fuzz {

inline std::vector<std::uint8_t> read_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

inline int replay_one(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace dap::fuzz

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-dir>...\n"
                 "(corpus-replay driver; build with clang -fsanitize=fuzzer "
                 "for real fuzzing)\n",
                 argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      // Sorted for reproducible replay order.
      std::vector<fs::path> entries;
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) entries.push_back(entry.path());
      }
      std::sort(entries.begin(), entries.end());
      for (const auto& path : entries) {
        replayed += dap::fuzz::replay_one(path);
      }
    } else if (fs::is_regular_file(arg)) {
      replayed += dap::fuzz::replay_one(arg);
    } else {
      std::fprintf(stderr, "corpus path not found: %s\n", argv[i]);
      return 2;
    }
  }
  std::printf("replayed %d corpus input(s), no findings\n", replayed);
  return 0;
}

#endif  // !DAP_HAVE_LIBFUZZER
