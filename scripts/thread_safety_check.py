#!/usr/bin/env python3
"""Thread-safety gate driver — two tiers, one verdict.

Tier 1 (portable, always runs): the dap_lint `guarded-fields` rule — a
structural check that every class owning a dap::common::Mutex annotates
each mutable field with DAP_GUARDED_BY(...) or justifies the exception.
This keeps the gate meaningful on toolchains without clang (the
annotation macros compile to nothing under GCC, so GCC alone would
happily build un-annotated code).

Tier 2 (precise, runs when a clang++ is on PATH): clang's thread-safety
analysis over every translation unit that includes common/sync.h, with
`-Werror=thread-safety` so any unguarded access to an annotated field,
or any lock-discipline violation, fails the gate. CI installs clang and
additionally builds the whole tree with -DDAP_THREAD_SAFETY=ON.

Usage:
  scripts/thread_safety_check.py [--root DIR] [--require-clang]

  --root DIR       check DIR/src instead of the repo's src/ (used by the
                   negative self-test on a doctored scratch copy)
  --require-clang  fail (instead of skipping tier 2) when clang++ is
                   missing — set in CI where clang is guaranteed

Exit 0 iff every tier that ran is clean.
"""

import argparse
import pathlib
import shutil
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from dap_lint.engine import ROOT, format_finding, run_lint  # noqa: E402

CLANG_CANDIDATES = ["clang++", "clang++-20", "clang++-19", "clang++-18",
                    "clang++-17", "clang++-16", "clang++-15", "clang++-14"]


def find_clang():
    for name in CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def guarded_fields_gate(src_root: pathlib.Path,
                        tree_root: pathlib.Path) -> int:
    findings = [f for f in run_lint([src_root], root=tree_root)
                if f.rule == "guarded-fields"]
    for finding in findings:
        print(format_finding(finding))
    if findings:
        print(f"thread-safety: guarded-fields gate FAILED "
              f"({len(findings)} finding(s))")
        return 1
    print("thread-safety: guarded-fields gate clean")
    return 0


def clang_gate(src_root: pathlib.Path, require_clang: bool) -> int:
    clang = find_clang()
    if clang is None:
        if require_clang:
            print("thread-safety: clang++ required but not found")
            return 1
        print("thread-safety: clang++ not found — skipping the "
              "-Werror=thread-safety analysis tier (CI runs it)")
        return 0

    tus = [p for p in sorted(src_root.rglob("*.cc"))
           if '#include "common/sync.h"' in
           p.read_text(encoding="utf-8", errors="replace")]
    if not tus:
        print("thread-safety: no translation units include common/sync.h")
        return 0

    failed = 0
    for tu in tus:
        cmd = [clang, "-fsyntax-only", "-std=c++20", "-Wthread-safety",
               "-Werror=thread-safety", "-I", str(src_root), str(tu)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            print(f"thread-safety: analysis FAILED for {tu}")
            failed += 1
    if failed:
        return 1
    print(f"thread-safety: clang analysis clean "
          f"({len(tus)} translation unit(s))")
    return 0


def main(argv) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", type=pathlib.Path, default=ROOT)
    parser.add_argument("--require-clang", action="store_true")
    args = parser.parse_args(argv)

    tree_root = args.root.resolve()
    src_root = tree_root / "src"
    if not src_root.is_dir():
        print(f"thread-safety: no src/ under {tree_root}")
        return 1

    status = guarded_fields_gate(src_root, tree_root)
    status |= clang_gate(src_root, args.require_clang)
    if status == 0:
        print("thread-safety: PASS")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
