#!/usr/bin/env python3
"""Repo-specific lint rules for the DAP codebase.

Rules (each finding prints `path:line: [rule] message`):

  constant-time   Protocol code (src/crypto, src/tesla, src/dap, src/wire)
                  must never compare MAC/key/tag material with a
                  short-circuiting comparison: `memcmp`, `std::equal`, and
                  `common::equal` are banned there — use
                  `common::constant_time_equal`. Suppress a deliberate
                  variable-time compare of public data with a trailing
                  `// dap-lint: allow(variable-time)` comment.

  determinism     Simulation and protocol code must be reproducible
                  bit-for-bit from an explicit seed: `rand()`, `srand()`,
                  `std::random_device`, `drand48`, `gettimeofday`, and the
                  wall/system clocks are banned in src/ outside src/obs
                  (the telemetry layer measures real latencies and may use
                  steady_clock). Use common::Rng and sim::SimTime.
                  Suppress with `// dap-lint: allow(nondeterminism)`.

  include-hygiene No `../` relative includes; no deprecated C headers
                  (<assert.h> & co — use the <c...> forms); a module
                  .cc file's first project include must be its own header;
                  bare `assert(` is banned in src/ (use DAP_REQUIRE /
                  DAP_ENSURE / DAP_INVARIANT from common/contracts.h).

  global-state    Mutable `static` variables (function-local or namespace
                  scope) are shared state that breaks thread-safety under
                  the parallel engine: banned in src/ outside src/obs
                  (the telemetry layer owns the process-global registry /
                  tracer singletons and merges per-thread shards into
                  them). `static const` / `constexpr` and `thread_local`
                  declarations are fine. Suppress a deliberate global
                  (e.g. a Meyers singleton guarded by its own mutex) with
                  `// dap-lint: allow(global-state)`.

  metric-name     Instrument names registered on the obs registry
                  (`.counter("...")`, `.gauge(`, `.histogram(`, `.rate(`)
                  must be dot-namespaced lowercase identifiers
                  (`subsystem.metric`, e.g. "fleet.hop_latency_us"):
                  flat or mixed-case names break the snapshot/trend
                  tooling's subsystem grouping and sort unstably across
                  exporters. Names built from a runtime prefix
                  (`reg.counter(prefix + ".x")`) are out of scope. Suppress
                  with `// dap-lint: allow(metric-name)`.

Usage:
  scripts/lint.py              # lint src/ (exit 1 on any finding)
  scripts/lint.py PATH...      # lint specific files/directories
  scripts/lint.py --self-test  # verify the linter catches seeded
                               # violations and passes clean code
"""

import pathlib
import re
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = {".cc", ".h"}

CONSTANT_TIME_DIRS = ("src/crypto", "src/tesla", "src/dap", "src/wire",
                      "src/fleet")
DETERMINISM_EXEMPT_DIRS = ("src/obs",)
GLOBAL_STATE_EXEMPT_DIRS = ("src/obs",)

CONSTANT_TIME_BANNED = [
    (re.compile(r"\bmemcmp\s*\("), "memcmp"),
    (re.compile(r"\bstd::equal\s*\("), "std::equal"),
    (re.compile(r"\bcommon::equal\s*\("), "common::equal"),
]

DETERMINISM_BANNED = [
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bdrand48\b"), "drand48"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
]

DEPRECATED_C_HEADERS = {
    "assert.h": "cassert",
    "ctype.h": "cctype",
    "errno.h": "cerrno",
    "inttypes.h": "cinttypes",
    "limits.h": "climits",
    "math.h": "cmath",
    "signal.h": "csignal",
    "stdarg.h": "cstdarg",
    "stddef.h": "cstddef",
    "stdint.h": "cstdint",
    "stdio.h": "cstdio",
    "stdlib.h": "cstdlib",
    "string.h": "cstring",
    "time.h": "ctime",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"]([^">]+)[">]')
PROJECT_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
BARE_ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")

# A `static` declarator that is not const/constexpr/thread_local. Whether
# it declares a *variable* (flagged) or a function (fine) is decided by
# looking at what comes first after the type: an initializer or
# statement end (variable) vs an argument list (function).
STATIC_DECL_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?!const\b|constexpr\b|thread_local\b)(.*)$")

# A registry instrument registration whose first argument is a string
# literal; group 2 is the name the rule validates.
METRIC_CALL_RE = re.compile(r'\.(counter|gauge|histogram|rate)\(\s*"([^"]*)"')
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

ALLOW_VARIABLE_TIME = "dap-lint: allow(variable-time)"
ALLOW_NONDETERMINISM = "dap-lint: allow(nondeterminism)"
ALLOW_GLOBAL_STATE = "dap-lint: allow(global-state)"
ALLOW_METRIC_NAME = "dap-lint: allow(metric-name)"


def is_mutable_static_variable(code):
    """True when `code` (comment-stripped) declares a mutable static
    variable: the declaration reaches an initializer (`=` / brace) or a
    plain `;` before any parameter list opens."""
    match = STATIC_DECL_RE.match(code)
    if not match:
        return False
    rest = match.group(1)
    for ch in rest:
        if ch in "={;":
            return True   # initializer or bare declaration: a variable
        if ch == "(":
            return False  # parameter list: a function
    return False  # declaration continues on the next line: give benefit


def is_under(rel, prefixes):
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


def strip_line_comment(line):
    """Removes // comments so commented-out code is not flagged (the
    suppression markers are read from the raw line before stripping)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_file(path, rel, findings):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        findings.append((rel, 0, "io", f"unreadable file: {err}"))
        return
    lines = text.splitlines()

    check_ct = is_under(rel, CONSTANT_TIME_DIRS)
    check_det = rel.startswith("src/") and not is_under(
        rel, DETERMINISM_EXEMPT_DIRS)
    check_gs = rel.startswith("src/") and not is_under(
        rel, GLOBAL_STATE_EXEMPT_DIRS)
    in_src = rel.startswith("src/")

    first_project_include = None
    for lineno, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)

        if check_ct and ALLOW_VARIABLE_TIME not in raw:
            for pattern, name in CONSTANT_TIME_BANNED:
                if pattern.search(code):
                    findings.append((
                        rel, lineno, "constant-time",
                        f"{name} on potential MAC/key material — use "
                        "common::constant_time_equal (or annotate "
                        f"'// {ALLOW_VARIABLE_TIME}')"))

        if check_det and ALLOW_NONDETERMINISM not in raw:
            for pattern, name in DETERMINISM_BANNED:
                if pattern.search(code):
                    findings.append((
                        rel, lineno, "determinism",
                        f"{name} breaks seeded reproducibility — use "
                        "common::Rng / sim::SimTime (or annotate "
                        f"'// {ALLOW_NONDETERMINISM}')"))

        if check_gs and ALLOW_GLOBAL_STATE not in raw \
                and is_mutable_static_variable(code):
            findings.append((
                rel, lineno, "global-state",
                "mutable static variable is shared state under the "
                "parallel engine — use a thread_local, pass state "
                "explicitly, or annotate a deliberate singleton "
                f"'// {ALLOW_GLOBAL_STATE}'"))

        if in_src and ALLOW_METRIC_NAME not in raw:
            for call in METRIC_CALL_RE.finditer(code):
                name = call.group(2)
                if not METRIC_NAME_RE.match(name):
                    findings.append((
                        rel, lineno, "metric-name",
                        f'instrument name "{name}" must be dot-namespaced '
                        'lowercase ("subsystem.metric", [a-z0-9_.]) so the '
                        "snapshot/trend tooling can group it (or annotate "
                        f"'// {ALLOW_METRIC_NAME}')"))

        include = INCLUDE_RE.match(raw)
        if include:
            header = include.group(1)
            if header.startswith("../") or "/../" in header:
                findings.append((rel, lineno, "include-hygiene",
                                 "relative '../' include"))
            base = header.rsplit("/", 1)[-1]
            if header in DEPRECATED_C_HEADERS:
                findings.append((
                    rel, lineno, "include-hygiene",
                    f"deprecated C header <{header}> — use "
                    f"<{DEPRECATED_C_HEADERS[base]}>"))

        project = PROJECT_INCLUDE_RE.match(raw)
        if project and first_project_include is None:
            first_project_include = (lineno, project.group(1))

        if in_src and BARE_ASSERT_RE.search(code) \
                and "static_assert" not in code:
            findings.append((
                rel, lineno, "include-hygiene",
                "bare assert() — use DAP_REQUIRE / DAP_ENSURE / "
                "DAP_INVARIANT from common/contracts.h"))

    # A module .cc must include its own header first (catches headers that
    # silently depend on their .cc's earlier includes).
    if in_src and rel.endswith(".cc"):
        own_header = re.sub(r"^src/", "", rel[:-3]) + ".h"
        if (ROOT / "src" / own_header).exists():
            if first_project_include is None:
                findings.append((rel, 1, "include-hygiene",
                                 f'missing include of own header "{own_header}"'))
            elif first_project_include[1] != own_header:
                findings.append((
                    rel, first_project_include[0], "include-hygiene",
                    f'first project include must be own header "{own_header}" '
                    f'(found "{first_project_include[1]}")'))


def collect_files(paths):
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix in SOURCE_SUFFIXES and child.is_file():
                    yield child
        elif path.suffix in SOURCE_SUFFIXES:
            yield path


def run_lint(paths, root=None):
    root = root or ROOT
    findings = []
    for path in collect_files(paths):
        try:
            rel = str(path.resolve().relative_to(root)).replace("\\", "/")
        except ValueError:
            rel = str(path)
        lint_file(path, rel, findings)
    return findings


def self_test():
    """Seeds one violation per rule into a scratch tree and checks the
    linter reports exactly the expected findings — and stays silent on a
    clean file. Exit 0 iff the linter behaves."""
    cases = [
        ("src/crypto/bad_ct.cc",
         '#include "crypto/bad_ct.h"\n'
         "bool f(dap::common::ByteView a, dap::common::ByteView b) {\n"
         "  return common::equal(a, b);\n"
         "}\n",
         {"constant-time"}),
        ("src/sim/bad_rng.cc",
         '#include "sim/bad_rng.h"\n'
         "int f() { return rand(); }\n",
         {"determinism"}),
        ("src/dap/bad_clock.cc",
         '#include "dap/bad_clock.h"\n'
         "#include <chrono>\n"
         "auto f() { return std::chrono::system_clock::now(); }\n",
         {"determinism"}),
        ("src/wire/bad_include.cc",
         '#include "wire/bad_include.h"\n'
         "#include <assert.h>\n"
         "void f(int x) { assert(x > 0); }\n",
         {"include-hygiene"}),
        ("src/tesla/suppressed.cc",
         '#include "tesla/suppressed.h"\n'
         "bool f(dap::common::ByteView a, dap::common::ByteView b) {\n"
         "  return common::equal(a, b);"
         "  // dap-lint: allow(variable-time)\n"
         "}\n",
         set()),
        ("src/game/bad_static.cc",
         '#include "game/bad_static.h"\n'
         "int f() {\n"
         "  static int call_count = 0;\n"
         "  return ++call_count;\n"
         "}\n",
         {"global-state"}),
        ("src/sim/ok_static.cc",
         '#include "sim/ok_static.h"\n'
         "int helper(int);\n"
         "int f() {\n"
         "  static const int k = 7;\n"
         "  static thread_local int scratch = 0;\n"
         "  static int instance;  // dap-lint: allow(global-state)\n"
         "  return helper(k + scratch + instance);\n"
         "}\n",
         set()),
        ("src/game/clean.cc",
         '#include "game/clean.h"\n'
         "int f() { return 1; }\n",
         set()),
        ("src/fleet/bad_metric.cc",
         '#include "fleet/bad_metric.h"\n'
         '#include "obs/registry.h"\n'
         "auto f(dap::obs::Registry& reg) {\n"
         '  return reg.counter("announcesSent");\n'
         "}\n",
         {"metric-name"}),
        ("src/fleet/ok_metric.cc",
         '#include "fleet/ok_metric.h"\n'
         '#include "obs/registry.h"\n'
         "auto f(dap::obs::Registry& reg, const std::string& prefix) {\n"
         '  auto a = reg.counter("fleet.announces_sent");\n'
         '  auto b = reg.histogram("fleet.hop_latency_us");\n'
         '  auto c = reg.counter(prefix + ".resync_attempts");\n'
         '  auto d = reg.gauge("Legacy");  // dap-lint: allow(metric-name)\n'
         "  return a.slot + b.slot + c.slot + d.slot;\n"
         "}\n",
         set()),
    ]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        tmp_root = pathlib.Path(tmp)
        for rel, content, _ in cases:
            target = tmp_root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)
            # The own-header-first rule only fires when the header exists.
            header = tmp_root / (rel[:-3] + ".h")
            header.write_text("#pragma once\n")
        for rel, _, expected_rules in cases:
            findings = run_lint([tmp_root / rel], root=tmp_root)
            got_rules = {rule for (_, _, rule, _) in findings}
            if got_rules != expected_rules:
                print(f"self-test FAIL {rel}: expected rules "
                      f"{sorted(expected_rules)}, got {sorted(got_rules)}")
                for finding in findings:
                    print("   ", format_finding(finding))
                failures += 1
    if failures:
        print(f"self-test: {failures} case(s) failed")
        return 1
    print(f"self-test: all {len(cases)} cases passed "
          "(seeded violations flagged, clean code passed)")
    return 0


def format_finding(finding):
    rel, lineno, rule, message = finding
    return f"{rel}:{lineno}: [{rule}] {message}"


def main(argv):
    if "--self-test" in argv:
        return self_test()
    paths = [pathlib.Path(a) for a in argv if not a.startswith("-")]
    if not paths:
        paths = [ROOT / "src"]
    findings = run_lint(paths)
    for finding in findings:
        print(format_finding(finding))
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
