#!/usr/bin/env python3
"""Repo-specific lint for the DAP codebase — thin launcher.

The implementation lives in scripts/dap_lint/ (token-aware C++ lexer,
scope tracking, rule set, self-test); this file only keeps the
historical entry point stable for CI, ctest, and muscle memory.

Rules (each finding prints `path:line: [rule] message`):

  constant-time       memcmp / std::equal / common::equal banned in
                      protocol code — use common::constant_time_equal.
  determinism         rand()/random_device/wall clocks banned outside
                      src/obs; range-for over unordered_* containers
                      flagged in src/{sim,fleet,dap,tesla}.
  include-hygiene     no ../ includes, no deprecated C headers, own
                      header first in .cc files, no bare assert().
  global-state        mutable static variables banned outside src/obs.
  metric-name         obs instrument names must be dot-namespaced
                      lowercase ("subsystem.metric").
  secret-taint        ==/!= on key/MAC-derived values in protocol code.
  layering            project includes must follow the module DAG in
                      scripts/dap_lint/layering.py (drawn in DESIGN.md).
  contracts-coverage  receive*/decode* definitions in protocol modules
                      must assert a DAP_REQUIRE precondition.
  guarded-fields      classes owning a dap::common::Mutex must annotate
                      every mutable field with DAP_GUARDED_BY.

Suppress a deliberate exception on (or directly above) the flagged line:

    // lint: allow(<rule>): <reason>

(legacy `// dap-lint: allow(...)` markers, including the old
variable-time / nondeterminism aliases, still work).
"""

import sys

from dap_lint import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
