#!/usr/bin/env python3
"""Serial-vs-parallel bench baseline: runs the experiment binaries at 1
thread and at N threads, proves the outputs are bitwise identical, and
records the timing in a JSON report.

Each bench runs twice in its own scratch working directory:

  DAP_THREADS=1 <bench> ...      # the bit-exact serial reference
  DAP_THREADS=N <bench> ...      # the parallel engine

and the two bench_out/<name>.csv files are compared byte for byte — the
determinism contract of common::parallel_for made observable. The same
identity check covers the run registry's time-series artifacts when the
bench produces them: snapshots.jsonl and trace.json from
bench_out/runs/<run_id>/ must also match across thread counts ($DAP_RUN_ID
is pinned per run so the directory is findable). Timing uses wall clocks
around the whole process, so treat the speedup as indicative; the
artifact identity checks are the hard pass/fail signal.

Each entry additionally records a "trajectory" object — the serial
reference run's counters, rates and histogram p99s — which
scripts/bench_trend.py diffs future runs against (auth-rate drops,
forged authentications, p99 regressions).

Two suites share the harness:

  --suite parallel   (default) the original engine baseline ->
                     BENCH_parallel.json, schema dap.bench_parallel.v2
  --suite fleet      the fleet-scale sweep (full run: >= 100k receivers
                     per flagship topology, cohort drains sharded across
                     the pool, plus the --smoke pass CI gates on) ->
                     BENCH_fleet.json, schema dap.bench_fleet.v2
  --suite crypto     the batched-crypto throughput bench (digest-checksum
                     CSV as the identity contract, speedup gauges as the
                     gated trajectory) -> BENCH_crypto.json, schema
                     dap.bench_crypto.v1
  --suite game       the evolutionary-game loop bench (adaptive-attacker
                     ESS sweep + DAP/TESLA++/MABS protocol curves; the
                     strategy.ess_gap gauges and strategy.forged_accepted
                     counter are the gated trajectory) -> BENCH_game.json,
                     schema dap.bench_game.v1

Stdlib only. Usage:

  scripts/bench_baseline.py [--suite parallel|fleet] [--build BUILD_DIR]
                            [--threads N] [--out FILE]

Defaults: --build build, --threads os.cpu_count(), --out
BENCH_<suite>.json in the repo root. Exits 1 when a bench fails or a CSV
differs between thread counts.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

# suite -> (schema, default report file, [(bench name, binary relative to
# the build dir, extra argv[, CSV/metrics series name when it differs
# from the binary name])])
SUITES = {
    "parallel": (
        "dap.bench_parallel.v2",
        "BENCH_parallel.json",
        [
            ("montecarlo_dap", "bench/montecarlo_dap", []),
            ("fig7_optimal_m", "bench/fig7_optimal_m", []),
            ("chaos_soak", "bench/chaos_soak", ["--smoke"]),
        ],
    ),
    "crypto": (
        "dap.bench_crypto.v1",
        "BENCH_crypto.json",
        [
            # Full run: the speedup gauges (bench.crypto.*_speedup) are
            # the host-stable throughput trajectory bench_trend.py gates;
            # the CSV carries only counts + digest checksums, so the
            # 1-vs-N-thread identity check covers the batched backend's
            # bit-exactness contract.
            ("crypto_throughput", "bench/crypto_throughput", []),
            # The smoke pass is what CI runs and gates.
            ("crypto_throughput_smoke", "bench/crypto_throughput",
             ["--smoke"], "crypto_throughput"),
        ],
    ),
    "game": (
        "dap.bench_game.v1",
        "BENCH_game.json",
        [
            # Full sweep: three topologies x three learning rates, plus
            # the three-protocol bandwidth/defense-cost curves. The
            # parallel ESS scenarios republish their gauges in slot
            # order, so the 1-vs-N identity check covers them too.
            ("game_loop", "bench/game_loop", []),
            # The smoke pass is what CI runs and gates.
            ("game_loop_smoke", "bench/game_loop", ["--smoke"],
             "game_loop"),
        ],
    ),
    "fleet": (
        "dap.bench_fleet.v2",
        "BENCH_fleet.json",
        [
            # Full sweep (not --smoke): the >= 100k-receiver flagships are
            # part of what the identity check must cover.
            ("fleet_scale", "bench/fleet_scale", []),
            # The smoke pass is what CI runs and gates with bench_trend.py,
            # so its trajectory must be a first-class baseline entry.
            ("fleet_scale_smoke", "bench/fleet_scale", ["--smoke"]),
            # Relay-hardening chaos soak: same binary, --chaos mode, its
            # own CSV/metrics series (bench_out/fleet_chaos.*). Both the
            # full soak and the CI smoke pass are gated trajectories.
            ("fleet_chaos", "bench/fleet_scale", ["--chaos"],
             "fleet_chaos"),
            ("fleet_chaos_smoke", "bench/fleet_scale", ["--chaos", "--smoke"],
             "fleet_chaos"),
        ],
    ),
}

# Run-registry artifacts that must be bitwise identical across thread
# counts when the bench produces them (sim-time snapshot streams and the
# causal trace are part of the determinism contract).
RUN_DIR_ARTIFACTS = ("snapshots.jsonl", "trace.json")


def trajectory_of(metrics):
    """Extracts the bench_trend.py gating trajectory from a metrics
    footer: counters verbatim, rate estimates, and histogram p99s."""
    return {
        "counters": metrics.get("counters", {}),
        "rates": {
            name: rate.get("rate")
            for name, rate in metrics.get("rates", {}).items()
        },
        "histogram_p99": {
            name: hist.get("p99")
            for name, hist in metrics.get("histograms", {}).items()
            if hist.get("count", 0) > 0
        },
        # Gauges carry the crypto-throughput speedup ratios (host-stable,
        # unlike absolute hashes/sec) that bench_trend.py gates.
        "gauges": metrics.get("gauges", {}),
    }


def run_once(binary, extra_args, threads, scratch, series=None):
    """Runs one bench in `scratch` with DAP_THREADS pinned and
    $DAP_RUN_ID fixed to "baseline"; returns (wall_seconds, csv_bytes,
    metrics_dict_or_None, run_artifacts, returncode). run_artifacts maps
    each RUN_DIR_ARTIFACTS name the bench produced to its bytes.
    `series` overrides the bench_out/<name>.{csv,metrics.json} stem when
    a mode writes a different series than the binary name (e.g.
    fleet_scale --chaos -> fleet_chaos)."""
    env = dict(os.environ)
    env["DAP_THREADS"] = str(threads)
    env["DAP_RUN_ID"] = "baseline"
    start = time.perf_counter()
    proc = subprocess.run(
        [str(binary)] + extra_args,
        cwd=scratch,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    wall = time.perf_counter() - start
    name = series or pathlib.Path(binary).name
    csv_path = pathlib.Path(scratch) / "bench_out" / (name + ".csv")
    csv_bytes = csv_path.read_bytes() if csv_path.exists() else None
    metrics = None
    metrics_path = pathlib.Path(scratch) / "bench_out" / (name + ".metrics.json")
    if metrics_path.exists():
        try:
            metrics = json.loads(metrics_path.read_text())
        except json.JSONDecodeError:
            pass
    run_artifacts = {}
    run_dir = pathlib.Path(scratch) / "bench_out" / "runs" / "baseline"
    for artifact in RUN_DIR_ARTIFACTS:
        path = run_dir / artifact
        if path.exists():
            run_artifacts[artifact] = path.read_bytes()
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
    return wall, csv_bytes, metrics, run_artifacts, proc.returncode


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="parallel", choices=sorted(SUITES),
                        help="which bench suite to baseline")
    parser.add_argument("--build", default="build",
                        help="CMake build directory holding the benches")
    parser.add_argument("--threads", type=int, default=os.cpu_count() or 1,
                        help="parallel thread count to compare against 1")
    parser.add_argument("--out", default=None,
                        help="where to write the JSON report "
                             "(default: BENCH_<suite>.json in the repo root)")
    args = parser.parse_args(argv)

    schema, default_out, benches = SUITES[args.suite]
    out = args.out if args.out is not None else str(ROOT / default_out)
    build = pathlib.Path(args.build)
    if not build.is_absolute():
        build = ROOT / build
    threads = max(1, args.threads)

    report = {
        "schema": schema,
        "threads_serial": 1,
        "threads_parallel": threads,
        "cpu_count": os.cpu_count() or 1,
        "benches": [],
    }
    failed = False
    for bench in benches:
        name, rel, extra = bench[:3]
        series = bench[3] if len(bench) > 3 else None
        binary = build / rel
        if not binary.exists():
            print(f"[{name}] SKIP: {binary} not built")
            report["benches"].append({"name": name, "status": "missing"})
            continue
        with tempfile.TemporaryDirectory() as serial_dir, \
                tempfile.TemporaryDirectory() as parallel_dir:
            s_wall, s_csv, s_metrics, s_artifacts, s_rc = run_once(
                binary, extra, 1, serial_dir, series)
            p_wall, p_csv, p_metrics, p_artifacts, p_rc = run_once(
                binary, extra, threads, parallel_dir, series)
        # Every artifact either side produced must exist AND match on the
        # other side — a bench that only snapshots at one thread count is
        # itself a determinism bug.
        artifact_mismatches = sorted(
            a for a in set(s_artifacts) | set(p_artifacts)
            if s_artifacts.get(a) != p_artifacts.get(a))
        entry = {
            "name": name,
            "args": extra,
            "serial_wall_seconds": round(s_wall, 4),
            "parallel_wall_seconds": round(p_wall, 4),
            "speedup": round(s_wall / p_wall, 3) if p_wall > 0 else None,
            "csv_identical": s_csv is not None and s_csv == p_csv,
            "run_artifacts_checked": sorted(set(s_artifacts) | set(p_artifacts)),
            "run_artifacts_identical": not artifact_mismatches,
        }
        for metrics, key in ((s_metrics, "serial"), (p_metrics, "parallel")):
            if metrics is not None:
                entry[key + "_reported_threads"] = metrics.get("threads")
                entry[key + "_peak_rss_kb"] = metrics.get("peak_rss_kb")
                if metrics.get("scenario"):
                    entry["scenario"] = metrics["scenario"]
        if s_metrics is not None:
            # The serial run is the bit-exact reference, so its counters,
            # rates and p99s become the bench_trend.py gating trajectory.
            entry["trajectory"] = trajectory_of(s_metrics)
        if s_rc != 0 or p_rc != 0:
            entry["status"] = "bench_failed"
            failed = True
        elif s_csv is None:
            entry["status"] = "no_csv"
            failed = True
        elif not entry["csv_identical"]:
            entry["status"] = "csv_mismatch"
            failed = True
        elif artifact_mismatches:
            entry["status"] = ("artifact_mismatch: "
                               + ", ".join(artifact_mismatches))
            failed = True
        else:
            entry["status"] = "ok"
        report["benches"].append(entry)
        print(f"[{name}] {entry['status']}: serial {s_wall:.2f}s, "
              f"{threads}-thread {p_wall:.2f}s "
              f"(speedup {entry['speedup']}), csv identical: "
              f"{entry['csv_identical']}, run artifacts identical: "
              f"{entry['run_artifacts_identical']} "
              f"({len(entry['run_artifacts_checked'])} checked)")

    pathlib.Path(out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {out}")
    if failed:
        print("FAIL: at least one bench failed or diverged across "
              "thread counts")
        return 1
    print("OK: all benches bitwise identical across thread counts")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
