#!/usr/bin/env python3
"""Regression gate for bench runs: diffs a run-registry directory against
the checked-in BENCH_*.json trajectory and exits nonzero when the run got
*worse* in a way the paper's claims care about.

A "run" is the bench_out/runs/<run_id>/ directory every bench binary
writes (manifest.json, schema dap.run_manifest.v1, next to metrics.json,
schema dap.metrics.v2). The baseline is a report from
scripts/bench_baseline.py whose entries carry a "trajectory" object — the
serial reference run's counters, rates and histogram p99s.

Seven gates, in order of severity:

  1. forged authentication: any counter whose name contains
     "forged_accepted" must be exactly 0. A forged announce surviving
     verification is a correctness hole, not a perf regression — no
     tolerance, no baseline needed.
  2. auth-rate drop: derived success ratios (see RATIOS) may not fall
     more than --auth-tol (absolute, default 0.01) below the baseline
     trajectory's ratio.
  3. p99 latency regression: per-histogram p99 may not exceed the
     baseline p99 beyond a tolerance band. Sim-time histograms (name
     contains "hop_latency") are deterministic, so the band is tight
     (--sim-p99-rel, default 0.05); wall-clock timer histograms vary
     with host load, so the band is loose (--wall-p99-rel, default 4.0,
     i.e. fail only on a 5x blowup).
  4. bounded relay memory: whenever the run exports the fleet guard
     gauges, fleet.guard.peak_entries must not exceed
     fleet.guard.capacity — the O(capacity) relay data plane is a hard
     invariant, gated without a baseline like gate 1.
  5. guard ceilings: counters that measure collateral damage from the
     ingress guard (fleet.guard.false_drop — authentic packets shed by
     a bandwidth budget) may not exceed the baseline trajectory's value
     by more than --guard-tol (relative, default 0.25).
  6. crypto throughput: the batched-backend speedup gauges
     (bench.crypto.*_speedup) may not fall more than --throughput-tol
     (relative, default 0.25) below the baseline trajectory's value.
     Speedups are ratios of two in-process measurements on the same
     host, so unlike absolute hashes/sec they are stable across CI
     hosts; a >10% drop means the multi-lane kernels or the HMAC
     midstate caching regressed.
  7. ESS convergence: any gauge whose name contains "ess_gap" (the
     adaptive attacker's |empirical - oracle| attack-share gap from
     bench/game_loop and the strategy chaos cases) must stay at or
     below --ess-gap-max (default 0.2). Like gate 1 it needs no
     baseline: the offline replicator solution is the reference. The
     companion strategy.forged_accepted counter rides gate 1 — a
     forged authentication under an adaptive/Sybil adversary fails
     hard regardless of the gap.

Baseline entries are matched to runs by scenario id first (the
manifest's "scenario" field, e.g. "fleet_scale:smoke"), falling back to
(bench name, args). A run with no matching baseline entry fails — a
silently ungated bench is itself a regression in coverage.

Stdlib only. Usage:

  scripts/bench_trend.py --baseline BENCH_fleet.json \
      --run bench_out/runs/<run_id> [--run ...] [--auth-tol X]
      [--sim-p99-rel X] [--wall-p99-rel X]
  scripts/bench_trend.py --self-test

Exits 0 when every run passes every gate; 1 otherwise (or on malformed
inputs). --self-test exercises the gates against synthetic runs doctored
to regress in each dimension and must itself exit 0.
"""

import argparse
import json
import pathlib
import sys
import tempfile

# Derived success ratios gated against the baseline trajectory. Each
# value is (numerator counter, denominator counter); the ratio exists in
# a metrics document when the denominator is present and positive.
RATIOS = {
    "dap.auth_rate": ("dap.strong_auth_success", "dap.reveals_received"),
    "teslapp.auth_rate": ("teslapp.authenticated", "teslapp.reveals_received"),
    "fleet.auth_rate": ("fleet.auths", "fleet.auth_opportunities"),
}

# Histograms recording *simulated* time are bitwise deterministic and get
# the tight p99 band; everything else is a wall-clock timer.
SIM_TIME_MARKER = "hop_latency"

# Counters gated against a baseline *ceiling* (gate 5): going UP is the
# regression. fleet.guard.false_drop counts authentic packets shed by a
# relay's bandwidth budget — collateral the relay-hardening tier must
# keep bounded.
GUARD_CEILINGS = ["fleet.guard.false_drop"]

# Wall-clock p99s below this many microseconds are pure scheduler noise;
# skip the relative check for them.
WALL_P99_FLOOR_US = 50.0

# Gauges gated as host-stable speedup ratios (gate 6): every
# bench.crypto.*_speedup gauge present in the baseline trajectory must
# hold up in the run.
SPEEDUP_PREFIX = "bench.crypto."
SPEEDUP_SUFFIX = "_speedup"


def load_json(path):
    try:
        return json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_trend: cannot read {path}: {err}")


def load_run(run_dir):
    """Returns (manifest, metrics) for one run-registry directory."""
    run_dir = pathlib.Path(run_dir)
    manifest = load_json(run_dir / "manifest.json")
    metrics = load_json(run_dir / "metrics.json")
    return manifest, metrics


def ratios_of(counters):
    """Derived ratios computable from a counter map (RATIOS table)."""
    out = {}
    for name, (num, den) in sorted(RATIOS.items()):
        denominator = counters.get(den, 0)
        if denominator > 0:
            out[name] = counters.get(num, 0) / denominator
    return out


def match_entry(baseline, manifest):
    """Finds the baseline entry for a run. The scenario id is the
    authoritative identity when the manifest carries one — a scenario
    the baseline has never seen must NOT silently borrow another
    entry's band. Only scenario-less manifests fall back to matching
    (bench name, args)."""
    scenario = manifest.get("scenario", "")
    entries = baseline.get("benches", [])
    if scenario:
        for entry in entries:
            if entry.get("scenario") == scenario:
                return entry
        return None
    for entry in entries:
        if (entry.get("name") == manifest.get("bench")
                and entry.get("args", []) == manifest.get("args", [])[1:]):
            return entry
    return None


def gate_forged(label, counters):
    return [
        f"{label}: FORGED AUTH: counter {name} = {value} (must be 0)"
        for name, value in sorted(counters.items())
        if "forged_accepted" in name and value != 0
    ]


def gate_guard_memory(label, gauges):
    """Gate 4: relay memory bounded by construction, no baseline needed."""
    capacity = gauges.get("fleet.guard.capacity", 0)
    peak = gauges.get("fleet.guard.peak_entries", 0)
    if capacity > 0 and peak > capacity:
        return [
            f"{label}: RELAY MEMORY: fleet.guard.peak_entries {peak:g} "
            f"exceeds fleet.guard.capacity {capacity:g} — the bounded "
            f"ingress guard leaked"
        ]
    return []


def gate_ess_gap(label, gauges, gap_max):
    """Gate 7: adaptive-attacker ESS convergence, no baseline needed —
    the offline replicator solution is the reference."""
    return [
        f"{label}: ESS GAP: gauge {name} = {value:g} exceeds "
        f"--ess-gap-max {gap_max:g} — the adaptive attacker stopped "
        f"tracking the replicator equilibrium"
        for name, value in sorted(gauges.items())
        if "ess_gap" in name and isinstance(value, (int, float))
        and value > gap_max
    ]


def gate_guard_ceilings(label, base_counters, run_counters, rel):
    """Gate 5: guard collateral counters may not grow past the baseline."""
    failures = []
    for name in GUARD_CEILINGS:
        run_value = run_counters.get(name, 0)
        ceiling = base_counters.get(name, 0) * (1.0 + rel)
        if run_value > ceiling:
            failures.append(
                f"{label}: GUARD CEILING: {name} = {run_value} exceeds "
                f"baseline ceiling {ceiling:.1f} (band +{rel * 100:.0f}%)")
    return failures


def gate_throughput(label, base_gauges, run_gauges, rel):
    """Gate 6: batched-crypto speedup ratios may not sag below baseline."""
    failures = []
    for name, base in sorted(base_gauges.items()):
        if not (name.startswith(SPEEDUP_PREFIX)
                and name.endswith(SPEEDUP_SUFFIX)):
            continue
        if not isinstance(base, (int, float)) or base <= 0:
            continue
        run_value = run_gauges.get(name)
        if run_value is None:
            failures.append(
                f"{label}: THROUGHPUT: {name} missing from run "
                f"(baseline {base:.2f}x) — speedup gauge gone")
            continue
        if run_value < base * (1.0 - rel):
            failures.append(
                f"{label}: THROUGHPUT: {name} dropped {base:.2f}x -> "
                f"{run_value:.2f}x (band -{rel * 100:.0f}%)")
    return failures


def gate_auth_rates(label, base_counters, run_counters, tol):
    failures = []
    base_rates = ratios_of(base_counters)
    run_rates = ratios_of(run_counters)
    for name, base_rate in sorted(base_rates.items()):
        run_rate = run_rates.get(name)
        if run_rate is None:
            failures.append(
                f"{label}: AUTH RATE: {name} missing from run "
                f"(baseline {base_rate:.4f}) — denominator counter gone")
            continue
        if run_rate < base_rate - tol:
            failures.append(
                f"{label}: AUTH RATE: {name} dropped {base_rate:.4f} -> "
                f"{run_rate:.4f} (tolerance {tol})")
    return failures


def gate_p99(label, base_p99s, run_hists, sim_rel, wall_rel):
    failures = []
    for name, base_p99 in sorted(base_p99s.items()):
        if base_p99 is None or base_p99 <= 0:
            continue
        run_hist = run_hists.get(name)
        if run_hist is None or run_hist.get("count", 0) == 0:
            continue  # instrument retired or unused this run: not a latency regression
        run_p99 = run_hist.get("p99")
        if run_p99 is None:
            continue
        sim_time = SIM_TIME_MARKER in name
        rel = sim_rel if sim_time else wall_rel
        if not sim_time and max(base_p99, run_p99) < WALL_P99_FLOOR_US:
            continue
        if run_p99 > base_p99 * (1.0 + rel):
            kind = "sim-time" if sim_time else "wall-clock"
            failures.append(
                f"{label}: P99 REGRESSION ({kind}): {name} "
                f"{base_p99:.6g} -> {run_p99:.6g} us "
                f"(band +{rel * 100:.0f}%)")
    return failures


def check_run(baseline, run_dir, args):
    """Returns a list of failure strings for one run directory."""
    manifest, metrics = load_run(run_dir)
    label = manifest.get("scenario") or manifest.get("bench") or str(run_dir)
    counters = metrics.get("counters", {})

    failures = gate_forged(label, counters)
    failures += gate_guard_memory(label, metrics.get("gauges", {}))
    failures += gate_ess_gap(label, metrics.get("gauges", {}),
                             args.ess_gap_max)

    entry = match_entry(baseline, manifest)
    if entry is None:
        failures.append(
            f"{label}: NO BASELINE: no entry in {args.baseline} matches "
            f"scenario '{manifest.get('scenario', '')}' or bench "
            f"'{manifest.get('bench', '')}' — regenerate the baseline with "
            f"scripts/bench_baseline.py")
        return failures

    trajectory = entry.get("trajectory")
    if trajectory is None:
        failures.append(
            f"{label}: NO TRAJECTORY: baseline entry predates trajectory "
            f"recording (schema too old) — regenerate with "
            f"scripts/bench_baseline.py")
        return failures

    failures += gate_auth_rates(label, trajectory.get("counters", {}),
                                counters, args.auth_tol)
    failures += gate_guard_ceilings(label, trajectory.get("counters", {}),
                                    counters, args.guard_tol)
    failures += gate_p99(label, trajectory.get("histogram_p99", {}),
                         metrics.get("histograms", {}),
                         args.sim_p99_rel, args.wall_p99_rel)
    failures += gate_throughput(label, trajectory.get("gauges", {}),
                                metrics.get("gauges", {}),
                                args.throughput_tol)
    return failures


# --------------------------------------------------------------------------
# Self-test: synthetic baseline + doctored runs, no binaries needed.

SELF_TEST_COUNTERS = {
    "dap.strong_auth_success": 950,
    "dap.reveals_received": 1000,
    "fleet.auths": 4700,
    "fleet.auth_opportunities": 5000,
    "fleet.forged_accepted": 0,
    "fleet.guard.false_drop": 4,
}

SELF_TEST_HISTS = {
    "fleet.hop_latency_us": {"count": 5000, "p99": 2400.0},
    "crypto.hmac_us": {"count": 9000, "p99": 12.0},
}

SELF_TEST_GAUGES = {
    "fleet.guard.peak_entries": 61.0,
    "fleet.guard.capacity": 64.0,
    "bench.crypto.sha256_avx2_speedup": 3.0,
    "bench.crypto.sha256_avx2_per_sec": 9.0e6,  # informational, not gated
    "strategy.ess_gap": 0.05,  # converged adaptive attacker
}


def _write_run(root, name, scenario, counters, hists, gauges=None):
    run_dir = pathlib.Path(root) / name
    run_dir.mkdir(parents=True)
    (run_dir / "manifest.json").write_text(json.dumps({
        "schema": "dap.run_manifest.v1",
        "run_id": name,
        "bench": "fleet_scale",
        "scenario": scenario,
        "args": ["bench/fleet_scale", "--smoke"],
        "threads": 1,
    }))
    (run_dir / "metrics.json").write_text(json.dumps({
        "schema": "dap.metrics.v2",
        "counters": counters,
        "gauges": SELF_TEST_GAUGES if gauges is None else gauges,
        "histograms": hists,
    }))
    return run_dir


def self_test():
    failures = []

    def expect(case, run_dir, baseline_path, want_pass, want_marker=None):
        args = argparse.Namespace(baseline=str(baseline_path), auth_tol=0.01,
                                  sim_p99_rel=0.05, wall_p99_rel=4.0,
                                  guard_tol=0.25, throughput_tol=0.25,
                                  ess_gap_max=0.2)
        got = check_run(load_json(baseline_path), run_dir, args)
        if want_pass and got:
            failures.append(f"{case}: expected pass, got: {got}")
        elif not want_pass and not got:
            failures.append(f"{case}: expected failure, gates all passed")
        elif want_marker and not any(want_marker in f for f in got):
            failures.append(
                f"{case}: expected a '{want_marker}' failure, got: {got}")
        else:
            verdict = "passes" if want_pass else f"fails ({want_marker})"
            print(f"  [self-test] {case}: OK ({verdict})")

    with tempfile.TemporaryDirectory() as tmp:
        baseline_path = pathlib.Path(tmp) / "BENCH_test.json"
        baseline_path.write_text(json.dumps({
            "schema": "dap.bench_fleet.v2",
            "benches": [{
                "name": "fleet_scale",
                "args": ["--smoke"],
                "scenario": "fleet_scale:smoke",
                "status": "ok",
                "trajectory": {
                    "counters": SELF_TEST_COUNTERS,
                    "histogram_p99": {
                        n: h["p99"] for n, h in SELF_TEST_HISTS.items()
                    },
                    "gauges": SELF_TEST_GAUGES,
                },
            }],
        }))

        expect("identical run",
               _write_run(tmp, "r_ok", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, SELF_TEST_HISTS),
               baseline_path, want_pass=True)

        dropped = dict(SELF_TEST_COUNTERS, **{"fleet.auths": 4000})
        expect("auth-rate drop",
               _write_run(tmp, "r_auth", "fleet_scale:smoke",
                          dropped, SELF_TEST_HISTS),
               baseline_path, want_pass=False, want_marker="AUTH RATE")

        forged = dict(SELF_TEST_COUNTERS, **{"fleet.forged_accepted": 3})
        expect("forged authentication",
               _write_run(tmp, "r_forged", "fleet_scale:smoke",
                          forged, SELF_TEST_HISTS),
               baseline_path, want_pass=False, want_marker="FORGED AUTH")

        blowup = dict(SELF_TEST_HISTS)
        blowup["fleet.hop_latency_us"] = {"count": 5000, "p99": 2600.0}
        expect("sim-time p99 blowup",
               _write_run(tmp, "r_p99", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, blowup),
               baseline_path, want_pass=False, want_marker="P99 REGRESSION")

        wall_slow = dict(SELF_TEST_HISTS)
        wall_slow["crypto.hmac_us"] = {"count": 9000, "p99": 30.0}
        expect("wall-clock jitter within loose band",
               _write_run(tmp, "r_wall", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, wall_slow),
               baseline_path, want_pass=True)

        leaked = dict(SELF_TEST_GAUGES,
                      **{"fleet.guard.peak_entries": 90.0})
        expect("relay memory above guard capacity",
               _write_run(tmp, "r_mem", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, SELF_TEST_HISTS, leaked),
               baseline_path, want_pass=False, want_marker="RELAY MEMORY")

        collateral = dict(SELF_TEST_COUNTERS,
                          **{"fleet.guard.false_drop": 100})
        expect("guard false-drop ceiling",
               _write_run(tmp, "r_drop", "fleet_scale:smoke",
                          collateral, SELF_TEST_HISTS),
               baseline_path, want_pass=False, want_marker="GUARD CEILING")

        slow_crypto = dict(SELF_TEST_GAUGES,
                           **{"bench.crypto.sha256_avx2_speedup": 2.0})
        expect("crypto speedup regression",
               _write_run(tmp, "r_slow", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, SELF_TEST_HISTS, slow_crypto),
               baseline_path, want_pass=False, want_marker="THROUGHPUT")

        fast_crypto = dict(SELF_TEST_GAUGES,
                           **{"bench.crypto.sha256_avx2_speedup": 2.85,
                              "bench.crypto.sha256_avx2_per_sec": 1.0})
        expect("crypto speedup jitter within band, per_sec ungated",
               _write_run(tmp, "r_fastish", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, SELF_TEST_HISTS, fast_crypto),
               baseline_path, want_pass=True)

        diverged = dict(SELF_TEST_GAUGES,
                        **{"strategy.ess_gap": 0.05,
                           "strategy.ess_gap.tree_eta0.25": 0.41})
        expect("adaptive attacker off the equilibrium",
               _write_run(tmp, "r_ess", "fleet_scale:smoke",
                          SELF_TEST_COUNTERS, SELF_TEST_HISTS, diverged),
               baseline_path, want_pass=False, want_marker="ESS GAP")

        strategy_forged = dict(SELF_TEST_COUNTERS,
                               **{"strategy.forged_accepted": 2})
        expect("forged auth under a strategy adversary",
               _write_run(tmp, "r_strat_forged", "fleet_scale:smoke",
                          strategy_forged, SELF_TEST_HISTS),
               baseline_path, want_pass=False, want_marker="FORGED AUTH")

        expect("unknown scenario",
               _write_run(tmp, "r_unknown", "fleet_scale:mystery",
                          SELF_TEST_COUNTERS, SELF_TEST_HISTS),
               baseline_path, want_pass=False, want_marker="NO BASELINE")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test OK: all gates fire on doctored runs and pass clean ones")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="BENCH_*.json trajectory to gate "
                        "against (from scripts/bench_baseline.py)")
    parser.add_argument("--run", action="append", default=[],
                        help="run-registry directory bench_out/runs/<id> "
                             "(repeatable)")
    parser.add_argument("--auth-tol", type=float, default=0.01,
                        help="max absolute auth-rate drop (default 0.01)")
    parser.add_argument("--sim-p99-rel", type=float, default=0.05,
                        help="relative p99 band for sim-time histograms "
                             "(default 0.05)")
    parser.add_argument("--wall-p99-rel", type=float, default=4.0,
                        help="relative p99 band for wall-clock histograms "
                             "(default 4.0)")
    parser.add_argument("--guard-tol", type=float, default=0.25,
                        help="relative ceiling band for guard collateral "
                             "counters (default 0.25)")
    # 0.25: a real regression (losing midstates or a SIMD tier) halves
    # the ratio or worse; run-to-run and cross-microarch jitter stays
    # well inside a quarter once the bench's best-of windows are long
    # enough.
    parser.add_argument("--throughput-tol", type=float, default=0.25,
                        help="max relative drop in bench.crypto.*_speedup "
                             "gauges (default 0.25)")
    parser.add_argument("--ess-gap-max", type=float, default=0.2,
                        help="max adaptive-attacker ESS convergence gap for "
                             "*ess_gap* gauges (default 0.2)")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the gates on synthetic doctored runs")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.run:
        parser.error("--baseline and at least one --run are required "
                     "(or use --self-test)")

    baseline = load_json(args.baseline)
    all_failures = []
    for run_dir in args.run:
        got = check_run(baseline, run_dir, args)
        label = pathlib.Path(run_dir).name
        if got:
            all_failures += got
            print(f"[{label}] FAIL ({len(got)} gate(s))")
        else:
            print(f"[{label}] ok")

    if all_failures:
        print("\nbench_trend: REGRESSION GATE FAILED:", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_trend: all runs within the trajectory band")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
