#!/usr/bin/env bash
# CI pipeline (also runnable locally). Stages:
#   1. warnings-as-errors build (-DDAP_WERROR=ON) + full ctest suite,
#      which includes the lint_self_test / lint_tree entries and the
#      fuzz corpus-replay drivers.
#   2. scripts/lint.py over src/ (repo-specific rules), run directly so a
#      missing python3-in-ctest configuration cannot hide it.
#   3. Thread-safety gate: guarded-fields structural check always, plus
#      clang -Werror=thread-safety analysis when clang++ is installed;
#      the negative self-test proves the gate fails on a stripped
#      annotation.
#   4. clang-tidy over the exported compilation database when installed
#      (run-clang-tidy preferred; skipped gracefully otherwise — the
#      container ships gcc only).
#   5. Full ctest suite under ASan+UBSan with contracts at FATAL.
set -euo pipefail
cd "$(dirname "$0")/.."

GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

echo "== [1/5] build (DAP_WERROR=ON) + ctest =="
cmake -B build-ci -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDAP_WERROR=ON
cmake --build build-ci
ctest --test-dir build-ci --output-on-failure

echo "== [2/5] scripts/lint.py =="
python3 scripts/lint.py --self-test
python3 scripts/lint.py src

echo "== [3/5] thread-safety gate =="
python3 scripts/thread_safety_check.py
python3 scripts/thread_safety_selftest.py

echo "== [4/5] clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by every configure (top-level
  # CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS).
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p build-ci '(src|fuzz)/.*\.cc$'
  else
    mapfile -t tidy_sources < <(find src fuzz -name '*.cc' | sort)
    clang-tidy -p build-ci --quiet "${tidy_sources[@]}"
  fi
else
  echo "clang-tidy not installed — skipping (config: .clang-tidy)"
fi

echo "== [5/5] ASan+UBSan full suite, contracts fatal =="
cmake -B build-ci-asan -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDAP_SANITIZE=address,undefined \
  -DDAP_CONTRACTS=FATAL \
  -DDAP_BUILD_BENCHES=OFF -DDAP_BUILD_EXAMPLES=OFF
cmake --build build-ci-asan
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-ci-asan --output-on-failure

echo "== ci passed =="
