"""Command-line front end (scripts/lint.py delegates here).

Usage:
  scripts/lint.py              # lint src/ (exit 1 on any finding)
  scripts/lint.py PATH...      # lint specific files/directories
  scripts/lint.py --self-test  # verify the linter catches seeded
                               # violations and passes clean code
"""

import pathlib

from .engine import ROOT, format_finding, run_lint


def main(argv) -> int:
    if "--self-test" in argv:
        from .selftest import self_test
        return self_test()
    paths = [pathlib.Path(a) for a in argv if not a.startswith("-")]
    if not paths:
        paths = [ROOT / "src"]
    findings = run_lint(paths)
    for finding in findings:
        print(format_finding(finding))
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0
