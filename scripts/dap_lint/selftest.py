"""dap_lint self-test: seeded violations, suppressions, lexer edges.

Each case seeds a scratch file and asserts the exact rule set the
linter reports. Coverage contract:

  * every rule has at least one violating case and one case where a
    `// lint: allow(<rule>): <reason>` suppression silences it;
  * legacy `// dap-lint: allow(...)` markers (and their old rule
    aliases) still suppress;
  * tokenizer edges: banned calls inside raw strings and inside
    line-spliced comments are NOT flagged; macro bodies ARE scanned;
    a suppression marker inside a string literal does NOT suppress;
  * the layering fixture includes a doctored back edge (wire -> dap)
    and the layering table itself is checked to be acyclic.
"""

import pathlib
import tempfile

from . import layering
from .engine import format_finding, run_lint

CASES = [
    # ---------------------------------------------------- legacy rules
    ("src/crypto/bad_ct.cc",
     '#include "crypto/bad_ct.h"\n'
     "bool f(dap::common::ByteView a, dap::common::ByteView b) {\n"
     "  return common::equal(a, b);\n"
     "}\n",
     {"constant-time"}),
    ("src/sim/bad_rng.cc",
     '#include "sim/bad_rng.h"\n'
     "int f() { return rand(); }\n",
     {"determinism"}),
    ("src/dap/bad_clock.cc",
     '#include "dap/bad_clock.h"\n'
     "#include <chrono>\n"
     "auto f() { return std::chrono::system_clock::now(); }\n",
     {"determinism"}),
    ("src/wire/bad_include.cc",
     '#include "wire/bad_include.h"\n'
     "#include <assert.h>\n"
     "void f(int x) { assert(x > 0); }\n",
     {"include-hygiene"}),
    ("src/tesla/suppressed.cc",  # legacy marker + legacy rule alias
     '#include "tesla/suppressed.h"\n'
     "bool f(dap::common::ByteView a, dap::common::ByteView b) {\n"
     "  return common::equal(a, b);"
     "  // dap-lint: allow(variable-time)\n"
     "}\n",
     set()),
    ("src/game/bad_static.cc",
     '#include "game/bad_static.h"\n'
     "int f() {\n"
     "  static int call_count = 0;\n"
     "  return ++call_count;\n"
     "}\n",
     {"global-state"}),
    ("src/sim/ok_static.cc",
     '#include "sim/ok_static.h"\n'
     "int helper(int);\n"
     "int f() {\n"
     "  static const int k = 7;\n"
     "  static thread_local int scratch = 0;\n"
     "  static int instance;  // dap-lint: allow(global-state)\n"
     "  return helper(k + scratch + instance);\n"
     "}\n",
     set()),
    ("src/game/clean.cc",
     '#include "game/clean.h"\n'
     "int f() { return 1; }\n",
     set()),
    ("src/fleet/bad_metric.cc",
     '#include "fleet/bad_metric.h"\n'
     '#include "obs/registry.h"\n'
     "auto f(dap::obs::Registry& reg) {\n"
     '  return reg.counter("announcesSent");\n'
     "}\n",
     {"metric-name"}),
    ("src/fleet/ok_metric.cc",
     '#include "fleet/ok_metric.h"\n'
     '#include "obs/registry.h"\n'
     "auto f(dap::obs::Registry& reg, const std::string& prefix) {\n"
     '  auto a = reg.counter("fleet.announces_sent");\n'
     '  auto b = reg.histogram("fleet.hop_latency_us");\n'
     '  auto c = reg.counter(prefix + ".resync_attempts");\n'
     '  auto d = reg.gauge("Legacy");  // lint: allow(metric-name): legacy\n'
     "  return a.slot + b.slot + c.slot + d.slot;\n"
     "}\n",
     set()),
    # ----------------------------------------------------- secret-taint
    ("src/dap/bad_secret.cc",
     '#include "dap/bad_secret.h"\n'
     "bool f(const wire::MacAnnounce& p, dap::common::ByteView expected) {\n"
     "  return p.mac == expected;\n"
     "}\n",
     {"secret-taint"}),
    ("src/crypto/bad_taint.cc",  # taint flows through an assignment
     '#include "crypto/bad_taint.h"\n'
     "bool g(const Chain& c, dap::common::ByteView other) {\n"
     "  const auto derived = c.mac_key(3);\n"
     "  return derived == other;\n"
     "}\n",
     {"secret-taint"}),
    ("src/crypto/ok_taint.cc",
     '#include "crypto/ok_taint.h"\n'
     "bool g(const Chain& c, dap::common::ByteView other) {\n"
     "  const auto derived = c.mac_key(3);\n"
     "  // lint: allow(secret-taint): known-answer test vector is public\n"
     "  return derived == other;\n"
     "}\n",
     set()),
    ("src/dap/ok_sentinel.cc",  # iterator/null checks are not content
     '#include "dap/ok_sentinel.h"\n'
     "bool h(const std::map<int, Key>& keys_by_interval) {\n"
     "  auto it = keys_by_interval.find(3);\n"
     "  return it != keys_by_interval.end();\n"
     "}\n",
     set()),
    # ------------------------------------- determinism: unordered iter
    ("src/sim/bad_unordered.cc",
     '#include "sim/bad_unordered.h"\n'
     "#include <unordered_map>\n"
     "int f(const std::unordered_map<int, int>& totals) {\n"
     "  int sum = 0;\n"
     "  for (const auto& [k, v] : totals) sum += v;\n"
     "  return sum;\n"
     "}\n",
     {"determinism"}),
    ("src/sim/ok_unordered.cc",
     '#include "sim/ok_unordered.h"\n'
     "#include <unordered_set>\n"
     "int f(const std::unordered_set<int>& seen) {\n"
     "  int n = 0;\n"
     "  // lint: allow(determinism): order-insensitive count\n"
     "  for (int v : seen) n += v ? 1 : 0;\n"
     "  return n;\n"
     "}\n",
     set()),
    # --------------------------------------------------------- layering
    ("src/wire/bad_layer.cc",  # doctored back edge: wire -> dap
     '#include "wire/bad_layer.h"\n'
     '#include "dap/dap.h"\n'
     "int f() { return 1; }\n",
     {"layering"}),
    ("src/wire/ok_layer.cc",
     '#include "wire/ok_layer.h"\n'
     '#include "dap/dap.h"  // lint: allow(layering): doc example only\n'
     "int f() { return 1; }\n",
     set()),
    # ----------------------------------------------- contracts-coverage
    ("src/dap/bad_contract.cc",
     '#include "dap/bad_contract.h"\n'
     "namespace dap {\n"
     "int receive_frame(int x) {\n"
     "  return x + 1;\n"
     "}\n"
     "}  // namespace dap\n",
     {"contracts-coverage"}),
    ("src/dap/ok_contract.cc",
     '#include "dap/ok_contract.h"\n'
     '#include "common/contracts.h"\n'
     "namespace dap {\n"
     "int receive_frame(int x) {\n"
     '  DAP_REQUIRE(x >= 0, "receive_frame: negative budget");\n'
     "  return x + 1;\n"
     "}\n"
     "int decode_status() { return 0; }  "
     "// lint: allow(contracts-coverage): pure accessor, no input\n"
     "}  // namespace dap\n",
     set()),
    # --------------------------------------------------- guarded-fields
    ("src/common/bad_guard.cc",
     '#include "common/bad_guard.h"\n'
     '#include "common/sync.h"\n'
     "namespace dap::common {\n"
     "class Counter {\n"
     " public:\n"
     "  void bump();\n"
     " private:\n"
     "  Mutex mu_;\n"
     "  long count_ = 0;\n"
     "};\n"
     "}  // namespace dap::common\n",
     {"guarded-fields"}),
    ("src/common/ok_guard.cc",
     '#include "common/ok_guard.h"\n'
     '#include "common/sync.h"\n'
     "#include <atomic>\n"
     "namespace dap::common {\n"
     "class Counter {\n"
     " public:\n"
     "  void bump();\n"
     " private:\n"
     "  Mutex mu_;\n"
     "  long count_ DAP_GUARDED_BY(mu_) = 0;\n"
     "  std::atomic<long> peeks_{0};\n"
     "  static constexpr long kStep = 1;\n"
     "  long scratch_ = 0;  // lint: allow(guarded-fields): ctor-only\n"
     "};\n"
     "}  // namespace dap::common\n",
     set()),
    # ------------------------------------------------- tokenizer edges
    ("src/sim/ok_rawstring.cc",  # banned names inside a raw string
     '#include "sim/ok_rawstring.h"\n'
     "const char* f() {\n"
     '  return R"(rand() seeds system_clock -- prose, not code)";\n'
     "}\n",
     set()),
    ("src/crypto/ok_splice.cc",  # line-spliced comment swallows "code"
     '#include "crypto/ok_splice.h"\n'
     "// the next physical line is still this comment \\\n"
     "memcmp(a, b, n);\n"
     "int f() { return 1; }\n",
     set()),
    ("src/crypto/bad_macro.cc",  # macro bodies are scanned
     '#include "crypto/bad_macro.h"\n'
     "#define DAP_BAD_EQ(a, b, n) memcmp((a), (b), (n))\n"
     "int f() { return 1; }\n",
     {"constant-time"}),
    ("src/wire/bad_strmarker.cc",  # marker inside a string: no effect
     '#include "wire/bad_strmarker.h"\n'
     "const char* kDoc =\n"
     '    "// lint: allow(constant-time): inside a string literal";\n'
     "bool f(const int& x, const int& y) { return memcmp(&x, &y, 1); }\n",
     {"constant-time"}),
]


def self_test() -> int:
    failures = 0

    cyclic = layering.verify_acyclic()
    if cyclic:
        print(f"self-test FAIL: layering table has a cycle through "
              f"{cyclic}")
        failures += 1

    with tempfile.TemporaryDirectory() as tmp:
        tmp_root = pathlib.Path(tmp)
        for rel, content, _ in CASES:
            target = tmp_root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)
            # The own-header-first rule only fires when the header exists.
            header = tmp_root / (rel[:-3] + ".h")
            header.write_text("#pragma once\n")
        for rel, _, expected_rules in CASES:
            findings = run_lint([tmp_root / rel], root=tmp_root)
            got_rules = {f.rule for f in findings}
            if got_rules != expected_rules:
                print(f"self-test FAIL {rel}: expected rules "
                      f"{sorted(expected_rules)}, got {sorted(got_rules)}")
                for finding in findings:
                    print("   ", format_finding(finding))
                failures += 1

    if failures:
        print(f"self-test: {failures} case(s) failed")
        return 1
    print(f"self-test: all {len(CASES)} cases passed "
          "(seeded violations flagged, suppressions honoured, "
          "lexer edges clean, layering table acyclic)")
    return 0
