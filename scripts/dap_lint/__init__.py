"""dap_lint — token-aware repo-specific lint engine for the DAP codebase.

Replaces the regex core of scripts/lint.py with a real C++ lexer
(comment/string/raw-string/line-splice correct), lightweight scope
tracking, and per-rule `// lint: allow(<rule>): <reason>` suppressions
(the legacy `// dap-lint: allow(...)` markers keep working).

Modules:
  tokenizer   C++ lexer: tokens, comments, preprocessor directives
  engine      file model, suppression handling, finding plumbing
  layering    the module-dependency DAG the layering rule enforces
  rules       all lint rules (legacy ports + the new rule set)
  selftest    seeded-violation / suppression self-test per rule
  cli         command-line entry point (scripts/lint.py delegates here)
"""

from .engine import Finding, run_lint  # noqa: F401
from .cli import main  # noqa: F401
