"""All dap_lint rules.

Each rule is a callable `rule(src: SourceFile, root) -> Iterable[Finding]`;
the engine filters findings through the suppression table afterwards, so
rules report unconditionally. Legacy rules (constant-time, determinism,
include-hygiene, global-state, metric-name) keep their names, scoped
directories, and message shapes; the token stream just makes them immune
to comments/strings. New rules: secret-taint, layering,
contracts-coverage, guarded-fields, and the unordered-iteration arm of
determinism.
"""

import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from . import layering
from .engine import Finding, SourceFile, is_under
from .tokenizer import Token

CONSTANT_TIME_DIRS = ("src/crypto", "src/tesla", "src/dap", "src/wire",
                      "src/fleet")
DETERMINISM_EXEMPT_DIRS = ("src/obs",)
GLOBAL_STATE_EXEMPT_DIRS = ("src/obs",)
UNORDERED_ITER_DIRS = ("src/sim", "src/fleet", "src/dap", "src/tesla")
CONTRACTS_DIRS = ("src/wire", "src/tesla", "src/dap", "src/fleet")

DEPRECATED_C_HEADERS = {
    "assert.h": "cassert",
    "ctype.h": "cctype",
    "errno.h": "cerrno",
    "inttypes.h": "cinttypes",
    "limits.h": "climits",
    "math.h": "cmath",
    "signal.h": "csignal",
    "stdarg.h": "cstdarg",
    "stddef.h": "cstddef",
    "stdint.h": "cstdint",
    "stdio.h": "cstdio",
    "stdlib.h": "cstdlib",
    "string.h": "cstring",
    "time.h": "ctime",
}

METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
METRIC_METHODS = {"counter", "gauge", "histogram", "rate"}

DETERMINISM_BANNED_IDENTS = {
    "random_device": "std::random_device",
    "drand48": "drand48",
    "gettimeofday": "gettimeofday",
    "system_clock": "system_clock",
    "high_resolution_clock": "high_resolution_clock",
    "steady_clock": "steady_clock",
}

UNORDERED_CONTAINERS = {"unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset"}


def _next(tokens: Sequence[Token], i: int) -> str:
    return tokens[i + 1].text if i + 1 < len(tokens) else ""


def _prev(tokens: Sequence[Token], i: int) -> str:
    return tokens[i - 1].text if i > 0 else ""


# ---------------------------------------------------------------- rules


def rule_constant_time(src: SourceFile, root) -> Iterable[Finding]:
    if not is_under(src.rel, CONSTANT_TIME_DIRS):
        return
    streams = [src.tokens]
    streams.extend(d.body for d in src.directives if d.body)
    for tokens in streams:
        for i, tok in enumerate(tokens):
            if tok.kind != "ident" or _next(tokens, i) != "(":
                continue
            name = None
            if tok.text == "memcmp":
                name = "memcmp"
            elif tok.text == "equal" and _prev(tokens, i) == "::" and i >= 2:
                qualifier = tokens[i - 2].text
                if qualifier in ("std", "common"):
                    name = f"{qualifier}::equal"
            if name:
                yield Finding(
                    src.rel, tok.line, "constant-time",
                    f"{name} on potential MAC/key material — use "
                    "common::constant_time_equal (or annotate "
                    "'// lint: allow(constant-time): <reason>')")


def rule_determinism(src: SourceFile, root) -> Iterable[Finding]:
    if not src.rel.startswith("src/") \
            or is_under(src.rel, DETERMINISM_EXEMPT_DIRS):
        return
    streams = [src.tokens]
    streams.extend(d.body for d in src.directives if d.body)
    for tokens in streams:
        for i, tok in enumerate(tokens):
            if tok.kind != "ident":
                continue
            name = None
            if tok.text in DETERMINISM_BANNED_IDENTS:
                name = DETERMINISM_BANNED_IDENTS[tok.text]
            elif tok.text == "rand" and _next(tokens, i) == "(" \
                    and _prev(tokens, i) not in (".", "->"):
                name = "rand()"
            elif tok.text == "srand" and _next(tokens, i) == "(":
                name = "srand()"
            if name:
                yield Finding(
                    src.rel, tok.line, "determinism",
                    f"{name} breaks seeded reproducibility — use "
                    "common::Rng / sim::SimTime (or annotate "
                    "'// lint: allow(determinism): <reason>')")
    yield from _unordered_iteration(src)


def _unordered_declared_names(tokens: Sequence[Token]) -> Set[str]:
    """Names declared in this file with an unordered_* container type.
    Header-declared members are invisible to other files — the rule is
    per-translation-unit by design (cheap, no false cross-file taint)."""
    names: Set[str] = set()
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].kind == "ident" and tokens[i].text in UNORDERED_CONTAINERS:
            j = i + 1
            if j < n and tokens[j].text == "<":
                angle = 0
                while j < n:
                    if tokens[j].text == "<":
                        angle += 1
                    elif tokens[j].text == ">":
                        angle -= 1
                        if angle == 0:
                            j += 1
                            break
                    elif tokens[j].text == ">>":
                        angle -= 2
                        if angle <= 0:
                            j += 1
                            break
                    elif tokens[j].text == ";":
                        break  # malformed / not a template use
                    j += 1
            # Nested inside an outer template argument list
            # (vector<unordered_set<...>> x): the outer container is the
            # one being declared, not this one — skip.
            if j < n and tokens[j].text in (">", ">>", ","):
                i = j
                continue
            while j < n and tokens[j].text in ("&", "&&", "*", "const"):
                j += 1  # reference/pointer declarators
            if j < n and tokens[j].kind == "ident":
                names.add(tokens[j].text)
            i = j
            continue
        i += 1
    return names


def _unordered_iteration(src: SourceFile) -> Iterable[Finding]:
    if not is_under(src.rel, UNORDERED_ITER_DIRS):
        return
    unordered = _unordered_declared_names(src.tokens)
    if not unordered:
        return
    tokens = src.tokens
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.text != "for" or _next(tokens, i) != "(":
            continue
        # Range-for: find a ':' at paren depth 1 before the matching ')'.
        depth = 0
        colon = close = -1
        for j in range(i + 1, n):
            text = tokens[j].text
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
                if depth == 0:
                    close = j
                    break
            elif text == ":" and depth == 1 and colon < 0:
                colon = j
        if colon < 0 or close < 0:
            continue
        range_expr = tokens[colon + 1:close]
        if not range_expr or range_expr[-1].kind != "ident":
            continue  # a call or a complex expression: out of scope
        name = range_expr[-1].text
        if name in unordered:
            yield Finding(
                src.rel, range_expr[-1].line, "determinism",
                f"range-for over unordered container '{name}' — iteration "
                "order is hash-seeded and must never feed simulation "
                "output or telemetry; use a sorted vector / std::map, or "
                "annotate membership-only traversal "
                "'// lint: allow(determinism): <reason>'")


def rule_include_hygiene(src: SourceFile, root) -> Iterable[Finding]:
    in_src = src.rel.startswith("src/")
    first_project_include: Optional[Tuple[int, str]] = None
    for d in src.directives:
        if d.kind != "include" or d.include_path is None:
            continue
        header = d.include_path
        if header.startswith("../") or "/../" in header:
            yield Finding(src.rel, d.line, "include-hygiene",
                          "relative '../' include")
        if header in DEPRECATED_C_HEADERS:
            yield Finding(
                src.rel, d.line, "include-hygiene",
                f"deprecated C header <{header}> — use "
                f"<{DEPRECATED_C_HEADERS[header]}>")
        if not d.include_angled and first_project_include is None:
            first_project_include = (d.line, header)

    if in_src:
        streams = [src.tokens]
        streams.extend(d.body for d in src.directives if d.body)
        for tokens in streams:
            for i, tok in enumerate(tokens):
                if tok.kind == "ident" and tok.text == "assert" \
                        and _next(tokens, i) == "(" \
                        and _prev(tokens, i) not in (".", "->"):
                    yield Finding(
                        src.rel, tok.line, "include-hygiene",
                        "bare assert() — use DAP_REQUIRE / DAP_ENSURE / "
                        "DAP_INVARIANT from common/contracts.h")

    # A module .cc must include its own header first (catches headers
    # that silently depend on their .cc's earlier includes).
    if in_src and src.rel.endswith(".cc"):
        own_header = src.rel[len("src/"):-3] + ".h"
        if (root / "src" / own_header).exists():
            if first_project_include is None:
                yield Finding(
                    src.rel, 1, "include-hygiene",
                    f'missing include of own header "{own_header}"')
            elif first_project_include[1] != own_header:
                yield Finding(
                    src.rel, first_project_include[0], "include-hygiene",
                    f'first project include must be own header '
                    f'"{own_header}" (found "{first_project_include[1]}")')


_STATIC_EXEMPT = {"const", "constexpr", "thread_local", "consteval",
                  "constinit"}


def rule_global_state(src: SourceFile, root) -> Iterable[Finding]:
    if not src.rel.startswith("src/") \
            or is_under(src.rel, GLOBAL_STATE_EXEMPT_DIRS):
        return
    tokens = src.tokens
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "ident" or tok.text != "static":
            continue
        if _next(tokens, i) in _STATIC_EXEMPT:
            continue
        # Variable vs function: what comes first after the declarator —
        # an initializer / statement end (variable) or a parameter list
        # (function)? Template argument lists are skipped so types like
        # static std::map<K, std::function<void(int)>> decide correctly.
        angle = 0
        verdict = None
        for j in range(i + 1, n):
            text = tokens[j].text
            if angle > 0:
                if text == "<":
                    angle += 1
                elif text == ">":
                    angle -= 1
                elif text == ">>":
                    angle -= 2
                elif text in (";", "{", "}"):
                    angle = 0  # lost sync: treat as closed
                continue
            if text == "<" and j > 0 and (tokens[j - 1].kind == "ident"
                                          or tokens[j - 1].text == ">"):
                angle = 1
                continue
            if text in ("=", "{", ";"):
                verdict = "variable"
                break
            if text == "(":
                verdict = "function"
                break
        if verdict == "variable":
            yield Finding(
                src.rel, tok.line, "global-state",
                "mutable static variable is shared state under the "
                "parallel engine — use a thread_local, pass state "
                "explicitly, or annotate a deliberate singleton "
                "'// lint: allow(global-state): <reason>'")


def rule_metric_name(src: SourceFile, root) -> Iterable[Finding]:
    if not src.rel.startswith("src/"):
        return
    tokens = src.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "ident" or tok.text not in METRIC_METHODS:
            continue
        if _prev(tokens, i) != "." or _next(tokens, i) != "(":
            continue
        if i + 2 >= len(tokens) or tokens[i + 2].kind != "string":
            continue  # runtime-built name (prefix + ".x"): out of scope
        literal = tokens[i + 2].text
        name = literal[literal.find('"') + 1:literal.rfind('"')]
        if not METRIC_NAME_RE.match(name):
            yield Finding(
                src.rel, tokens[i + 2].line, "metric-name",
                f'instrument name "{name}" must be dot-namespaced '
                'lowercase ("subsystem.metric", [a-z0-9_.]) so the '
                "snapshot/trend tooling can group it (or annotate "
                "'// lint: allow(metric-name): <reason>')")


# Secret-taint: identifier segments that mark key/MAC material, and
# segments that mark derived *metadata* about it (lengths, counters,
# verification verdicts) which is public by construction.
_SECRET_SEGMENTS = {"key", "keys", "mac", "macs", "hmac", "secret",
                    "secrets", "prf", "digest"}
_PUBLIC_SEGMENTS = {"size", "sizes", "len", "length", "count", "counts",
                    "bits", "bytes", "index", "idx", "offset", "id",
                    "ids", "interval", "intervals", "delay", "rate",
                    "limit", "budget", "name", "kind", "domain",
                    "schedule", "empty", "pruned", "accepted",
                    "rejected", "verified", "verify", "check", "valid",
                    "ok", "misses", "hits", "calls", "derivations",
                    "depth", "slot", "public", "image", "commitment"}

_CAMEL_RE = re.compile(r"[A-Z]?[a-z0-9]+|[A-Z]+(?![a-z])")


def _segments(name: str) -> List[str]:
    segs: List[str] = []
    for part in name.strip("_").split("_"):
        segs.extend(m.group(0).lower() for m in _CAMEL_RE.finditer(part))
    return segs


def _secretish(name: str) -> bool:
    segs = _segments(name)
    return bool(_SECRET_SEGMENTS.intersection(segs)) \
        and not _PUBLIC_SEGMENTS.intersection(segs)


def _comparison_operand(tokens: Sequence[Token], i: int,
                        direction: int) -> Optional[Token]:
    """Resolves the identifier naming the operand next to tokens[i]
    (`==`/`!=`), walking left (direction=-1) or right (+1). For member
    chains the *last* component names the value (`packet.mac` -> mac);
    for calls the callee names it (`mac.size()` -> size)."""
    n = len(tokens)
    j = i + direction
    if direction < 0:
        if j >= 0 and tokens[j].text == ")":
            depth = 0
            while j >= 0:
                if tokens[j].text == ")":
                    depth += 1
                elif tokens[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        j -= 1
                        break
                j -= 1
        if j >= 0 and tokens[j].kind == "ident":
            return tokens[j]
        return None
    while j < n and tokens[j].text in ("(", "!", "*", "&", "-", "+"):
        j += 1
    if j >= n or tokens[j].kind != "ident":
        return None
    while j + 2 < n and tokens[j + 1].text in (".", "->", "::") \
            and tokens[j + 2].kind == "ident":
        j += 2
    return tokens[j]


def rule_secret_taint(src: SourceFile, root) -> Iterable[Finding]:
    if not is_under(src.rel, CONSTANT_TIME_DIRS):
        return
    tokens = src.tokens
    n = len(tokens)

    # Taint pass: `x = <expr containing secretish identifier>` marks x.
    tainted: Set[str] = set()
    for i, tok in enumerate(tokens):
        if tok.text != "=" or tok.kind != "punct":
            continue
        if i == 0 or tokens[i - 1].kind != "ident":
            continue
        target = tokens[i - 1].text
        for j in range(i + 1, n):
            text = tokens[j].text
            if text in (";", "{"):
                break
            if tokens[j].kind == "ident" and _secretish(text):
                tainted.add(target)
                break

    for i, tok in enumerate(tokens):
        if tok.text not in ("==", "!="):
            continue
        left = _comparison_operand(tokens, i, -1)
        right = _comparison_operand(tokens, i, +1)
        # Pointer null checks are identity comparisons, not content, and
        # iterator sentinel checks (`it != map.end()`) compare positions.
        sentinels = {"nullptr", "end", "begin", "cend", "cbegin"}
        if (left and left.text in sentinels) \
                or (right and right.text in sentinels):
            continue
        for operand in (left, right):
            if operand is None:
                continue
            if _secretish(operand.text) or operand.text in tainted:
                yield Finding(
                    src.rel, tok.line, "secret-taint",
                    f"variable-time comparison touches secret-derived "
                    f"value '{operand.text}' — MAC/key material must go "
                    "through common::constant_time_equal (or annotate "
                    "'// lint: allow(secret-taint): <reason>')")
                break


def rule_layering(src: SourceFile, root) -> Iterable[Finding]:
    mod = layering.module_of(src.rel)
    if not mod:
        return
    allowed = ", ".join(layering.ALLOWED[mod]) or "(nothing)"
    for d in src.directives:
        if d.kind != "include" or d.include_path is None:
            continue
        target = layering.include_target_module(d.include_path)
        if target and not layering.check_edge(mod, target):
            yield Finding(
                src.rel, d.line, "layering",
                f'include of "{d.include_path}" breaks the module-layering '
                f"DAG: '{mod}' may depend only on [{allowed}] — see the "
                "layer diagram in DESIGN.md (or annotate a deliberate "
                "exception '// lint: allow(layering): <reason>')")


def rule_contracts_coverage(src: SourceFile, root) -> Iterable[Finding]:
    if not src.rel.endswith(".cc") or not is_under(src.rel, CONTRACTS_DIRS):
        return
    tokens = src.tokens
    for scope in src.scopes:
        if scope.kind != "function":
            continue
        if not (scope.name.startswith("receive")
                or scope.name.startswith("decode")):
            continue
        # Definitions only — skip lambdas/local helpers nested in other
        # functions.
        chain = src.scope_chain(scope.open_i)[1:]
        if any(s.kind == "function" for s in chain):
            continue
        body = tokens[scope.open_i + 1:scope.close_i]
        if any(t.kind == "ident" and t.text == "DAP_REQUIRE" for t in body):
            continue
        # Anchor the finding on the function name, not the brace.
        line = tokens[scope.open_i].line
        for j in range(scope.open_i - 1, -1, -1):
            if tokens[j].kind == "ident" and tokens[j].text == scope.name:
                line = tokens[j].line
                break
            if tokens[j].text in (";", "}", "{"):
                break
        yield Finding(
            src.rel, line, "contracts-coverage",
            f"public entrypoint '{scope.name}' handles adversarial input "
            "but declares no DAP_REQUIRE contract — assert caller/config "
            "preconditions at entry (common/contracts.h; adversarial "
            "bytes themselves must stay rejection-handled, never "
            "asserted). Annotate thin forwarding shims "
            "'// lint: allow(contracts-coverage): <reason>'")


_MEMBER_SKIP_KEYWORDS = {"using", "typedef", "friend", "static",
                         "template", "operator"}
_TYPE_KEYWORDS = {"class", "struct", "union", "enum"}
_CAPABILITY_TYPES = {"Mutex", "CondVar"}


def _class_member_statements(src: SourceFile, scope) -> List[List[Token]]:
    """Data-member candidate statements directly inside a class scope:
    methods, nested types, and access specifiers are dropped; brace
    initializers stay attached to their member."""
    tokens = src.tokens
    out: List[List[Token]] = []
    stmt: List[Token] = []
    depth = 0
    i = scope.open_i + 1
    while i < scope.close_i:
        tok = tokens[i]
        text = tok.text
        if text == "{":
            depth += 1
            if depth == 1:
                stmt.append(tok)
        elif text == "}":
            depth -= 1
            if depth == 0:
                if any(t.text in _TYPE_KEYWORDS for t in stmt):
                    stmt = []  # nested type definition
                elif _has_toplevel_paren(stmt):
                    stmt = []  # method / constructor body
                # else: brace initializer — keep until ';'
        elif depth == 0:
            if text == ";":
                if stmt:
                    out.append(stmt)
                stmt = []
            elif text == ":" and len(stmt) == 1 \
                    and stmt[0].text in ("public", "private", "protected"):
                stmt = []  # access specifier
            else:
                stmt.append(tok)
        i += 1
    return out


def _has_toplevel_paren(stmt: Sequence[Token]) -> bool:
    """True when the statement has a '(' outside template angles — a
    function declarator. Parens nested in template args (e.g.
    std::function<void(int)> cb) describe the member's type instead."""
    angle = 0
    for i, tok in enumerate(stmt):
        text = tok.text
        if angle > 0:
            if text == "<":
                angle += 1
            elif text == ">":
                angle -= 1
            elif text == ">>":
                angle -= 2
            continue
        if text == "<" and i > 0 and (stmt[i - 1].kind == "ident"
                                      or stmt[i - 1].text == ">"):
            angle = 1
        elif text == "(":
            return True
    return False


def rule_guarded_fields(src: SourceFile, root) -> Iterable[Finding]:
    if not any(d.kind == "include" and d.include_path == "common/sync.h"
               for d in src.directives):
        return
    for scope in src.class_scopes():
        members = [s for s in _class_member_statements(src, scope)
                   if not _MEMBER_SKIP_KEYWORDS.intersection(
                       t.text for t in s)
                   and not _has_toplevel_paren(s)]
        owns_mutex = any(
            any(t.kind == "ident" and t.text == "Mutex" for t in s)
            for s in members)
        if not owns_mutex:
            continue
        cls = scope.name
        for stmt in members:
            texts = [t.text for t in stmt]
            if _CAPABILITY_TYPES.intersection(texts):
                continue  # the capability members themselves
            if "atomic" in texts:
                continue  # lock-free by design
            if "const" in texts[:2] or "constexpr" in texts:
                continue  # immutable
            if "DAP_GUARDED_BY" in texts or "DAP_PT_GUARDED_BY" in texts:
                continue
            # Member name: last identifier before any initializer.
            name_tok = None
            for tok in stmt:
                if tok.text in ("=", "{"):
                    break
                if tok.kind == "ident":
                    name_tok = tok
            if name_tok is None:
                continue
            yield Finding(
                src.rel, name_tok.line, "guarded-fields",
                f"field '{name_tok.text}' in mutex-owning class '{cls}' "
                "has no DAP_GUARDED_BY(...) annotation — every mutable "
                "field of a class that declares a dap::common::Mutex "
                "must name its guard (common/sync.h), or justify the "
                "exception '// lint: allow(guarded-fields): <reason>'")


RULES = (
    rule_constant_time,
    rule_determinism,
    rule_include_hygiene,
    rule_global_state,
    rule_metric_name,
    rule_secret_taint,
    rule_layering,
    rule_contracts_coverage,
    rule_guarded_fields,
)
