"""dap_lint engine: file model, scope tracking, suppressions, plumbing.

A `SourceFile` bundles everything a rule needs: the token stream,
comments, preprocessor directives, a lightweight scope tree (namespace /
class / function / block nesting derived from brace structure), and the
per-line suppression table.

Suppressions come only from real comments — a marker inside a string
literal does not count. Two syntaxes are accepted:

    // lint: allow(<rule>): <reason>     (preferred: reason required by
                                          convention, not by the parser)
    // dap-lint: allow(<rule>)           (legacy)

plus the legacy rule aliases `variable-time` -> constant-time and
`nondeterminism` -> determinism. A suppression covers every line the
comment touches and the line immediately after it, so both trailing
markers and standalone marker lines above the flagged statement work.
"""

import pathlib
import re
from typing import Dict, List, NamedTuple, Optional, Sequence, Set

from .tokenizer import LexResult, Token, tokenize

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

SOURCE_SUFFIXES = {".cc", ".h"}

_ALLOW_RE = re.compile(r"(?:dap-)?lint:\s*allow\(([A-Za-z0-9_-]+)\)")

_RULE_ALIASES = {
    "variable-time": "constant-time",
    "nondeterminism": "determinism",
}


class Finding(NamedTuple):
    rel: str
    line: int
    rule: str
    message: str


def format_finding(finding: Finding) -> str:
    return f"{finding.rel}:{finding.line}: [{finding.rule}] " \
           f"{finding.message}"


class Scope(NamedTuple):
    kind: str   # 'file' | 'namespace' | 'class' | 'enum' | 'function'
                # | 'block' | 'init'
    name: str
    open_i: int   # token index of '{' (-1 for the file scope)
    close_i: int  # token index of matching '}' (len(tokens) if missing)
    parent: int   # index into the scope list (-1 for the file scope)


_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
_BLOCK_STARTERS = {"else", "do", "try"}


def _classify_brace(stmt: List[Token]) -> (str, str):
    """Classifies the scope a `{` opens from the statement tokens that
    precede it (everything since the last top-level `;` / `{` / `}`)."""
    texts = [t.text for t in stmt]
    if not texts:
        return "block", ""
    if texts[0] in _BLOCK_STARTERS or texts[0] in _CONTROL_KEYWORDS:
        return "block", ""
    if "namespace" in texts:
        name = texts[-1] if stmt[-1].kind == "ident" else "<anon>"
        return "namespace", name
    if "enum" in texts:
        return "enum", _name_after(stmt, {"enum", "class", "struct"})
    if "class" in texts or "struct" in texts or "union" in texts:
        return "class", _name_after(stmt, {"class", "struct", "union"})
    last = texts[-1]
    if last in {"=", ",", "(", "return"}:
        return "init", ""  # `= {...}`, `f({...})`, `return {...}`
    if ")" in texts:
        # A parameter list precedes the brace: a function body (possibly
        # with trailing const/noexcept/override/-> Type) — unless the
        # parens belong to a control statement.
        before = _token_before_matching_paren(stmt)
        if before in _CONTROL_KEYWORDS:
            return "block", ""
        return "function", before or "<lambda>"
    if last == "]":
        return "function", "<lambda>"  # capture-only lambda `[&] {`
    if stmt[-1].kind in {"ident", "number", "string"}:
        return "init", ""  # aggregate init `Foo x{...}`
    return "block", ""


def _name_after(stmt: List[Token], keywords: Set[str]) -> str:
    seen_keyword = False
    for tok in stmt:
        if seen_keyword and tok.kind == "ident" and tok.text not in keywords:
            return tok.text
        if tok.text in keywords:
            seen_keyword = True
    return "<anon>"


def _token_before_matching_paren(stmt: List[Token]) -> str:
    """Finds the last top-level `)` in `stmt`, matches it back to its
    `(`, and returns the text of the token before that `(`."""
    depth = 0
    for i in range(len(stmt) - 1, -1, -1):
        text = stmt[i].text
        if text == ")":
            depth += 1
        elif text == "(":
            depth -= 1
            if depth == 0:
                return stmt[i - 1].text if i > 0 else ""
    return ""


def build_scopes(tokens: Sequence[Token]) -> (List[Scope], List[int]):
    """Returns (scopes, scope_of) where scope_of[i] is the index of the
    innermost scope containing token i. scopes[0] is the file scope."""
    scopes: List[Scope] = [Scope("file", "", -1, len(tokens), -1)]
    scope_of: List[int] = [0] * len(tokens)
    stack: List[int] = [0]
    stmt: List[Token] = []
    paren_depth = 0
    # Scopes are append-only; close_i is patched on pop.
    mutable_close: Dict[int, int] = {}

    for i, tok in enumerate(tokens):
        scope_of[i] = stack[-1]
        text = tok.text
        if tok.kind != "punct":
            stmt.append(tok)
            continue
        if text == "(":
            paren_depth += 1
            stmt.append(tok)
        elif text == ")":
            paren_depth = max(0, paren_depth - 1)
            stmt.append(tok)
        elif text == ";" and paren_depth == 0:
            stmt = []
        elif text == "{" and paren_depth == 0:
            kind, name = _classify_brace(stmt)
            scopes.append(Scope(kind, name, i, len(tokens), stack[-1]))
            stack.append(len(scopes) - 1)
            scope_of[i] = stack[-1]
            stmt = []
        elif text == "{":
            # Brace inside parens (lambda argument, compound literal):
            # still a scope, classified from a best-effort tail slice.
            kind, name = _classify_brace(stmt[-8:])
            scopes.append(Scope(kind, name, i, len(tokens), stack[-1]))
            stack.append(len(scopes) - 1)
            scope_of[i] = stack[-1]
            stmt = []
        elif text == "}":
            if len(stack) > 1:
                mutable_close[stack[-1]] = i
                stack.pop()
            stmt = []
        else:
            stmt.append(tok)

    if mutable_close:
        scopes = [s._replace(close_i=mutable_close.get(idx, s.close_i))
                  for idx, s in enumerate(scopes)]
    return scopes, scope_of


class SourceFile:
    """Everything the rules need about one translation unit."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.text = text
        lex: LexResult = tokenize(text)
        self.tokens = lex.tokens
        self.comments = lex.comments
        self.directives = lex.directives
        self.scopes, self.scope_of = build_scopes(self.tokens)
        self.suppressions: Dict[int, Set[str]] = {}
        for comment in lex.comments:
            for match in _ALLOW_RE.finditer(comment.text):
                rule = _RULE_ALIASES.get(match.group(1), match.group(1))
                # Cover the comment's own lines plus the next line, so a
                # standalone marker line shields the statement below it.
                for line in range(comment.line, comment.end_line + 2):
                    self.suppressions.setdefault(line, set()).add(rule)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, ())

    def scope_chain(self, token_index: int) -> List[Scope]:
        """Innermost-first chain of scopes enclosing a token."""
        chain = []
        idx = self.scope_of[token_index]
        while idx >= 0:
            chain.append(self.scopes[idx])
            idx = self.scopes[idx].parent
        return chain

    def enclosing_kind(self, token_index: int, kinds: Set[str]) -> bool:
        return any(s.kind in kinds for s in self.scope_chain(token_index))

    def class_scopes(self) -> List[Scope]:
        return [s for s in self.scopes if s.kind == "class"]


def is_under(rel: str, prefixes) -> bool:
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


def collect_files(paths):
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix in SOURCE_SUFFIXES and child.is_file():
                    yield child
        elif path.suffix in SOURCE_SUFFIXES:
            yield path


def run_lint(paths, root=None) -> List[Finding]:
    """Lints files/directories; returns findings sorted by location.
    `root` anchors relative paths (defaults to the repo root)."""
    from .rules import RULES  # late import: rules import engine helpers

    root = root or ROOT
    findings: List[Finding] = []
    for path in collect_files(paths):
        try:
            rel = str(path.resolve().relative_to(root)).replace("\\", "/")
        except ValueError:
            rel = str(path)
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            findings.append(Finding(rel, 0, "io", f"unreadable file: {err}"))
            continue
        src = SourceFile(rel, text)
        for rule in RULES:
            for finding in rule(src, root):
                if not src.suppressed(finding.line, finding.rule):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return findings
