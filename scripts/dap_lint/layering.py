"""The module-layering DAG the `layering` rule enforces.

Modules are the direct children of src/ (src/<module>/...). An edge
A -> B means "A may include headers from B". The graph below is the
*intended* architecture (also drawn in DESIGN.md); the rule fails on
any project include that is not a forward edge of this DAG, which is
exactly what makes an accidental upward include (e.g. wire/ reaching
into dap/) a lint failure instead of a slow-motion architecture drift.

Layer order (low to high):

    common                      foundation: bytes, rng, codec, parallel
    obs, wire                   telemetry; packet formats  (common only)
    crypto, game                primitives + instrumentation; game theory
    crypto_batch                multi-lane SHA-256 kernels (above crypto:
                                src/crypto/sha256_batch*, a virtual node
                                so the scalar primitives can never grow a
                                dependency on the batch backend)
    sim                         clocks, channels, event queue
    tesla                       TESLA baselines (uses crypto, sim, wire)
    dap                         the paper's protocol (extends tesla)
    core, fleet                 top-level drivers; fleet sim
    strategy                    adaptive adversaries, cooperative
                                verification, MABS baseline (may use
                                game + fleet + tesla; game can never
                                depend back on strategy)
    analysis                    experiments (may also drive fleet and
                                strategy scenarios)
"""

from typing import Dict, List, Tuple

# module -> modules it may include (itself is always allowed).
ALLOWED: Dict[str, Tuple[str, ...]] = {
    "common": (),
    "obs": ("common",),
    "wire": ("common",),
    "crypto": ("common", "obs"),
    "crypto_batch": ("common", "obs", "crypto"),
    "game": ("common", "obs"),
    "sim": ("common", "obs", "wire"),
    "tesla": ("common", "obs", "wire", "crypto", "crypto_batch", "sim"),
    "dap": ("common", "obs", "wire", "crypto", "crypto_batch", "sim",
            "tesla"),
    "core": ("common", "obs", "sim", "game", "dap"),
    "fleet": ("common", "obs", "wire", "crypto", "crypto_batch", "sim",
              "tesla", "dap"),
    "strategy": ("common", "obs", "wire", "crypto", "crypto_batch", "sim",
                 "game", "tesla", "dap", "fleet"),
    "analysis": ("common", "obs", "crypto", "crypto_batch", "sim", "game",
                 "tesla", "dap", "fleet", "strategy"),
}

MODULES = frozenset(ALLOWED)


def module_of(rel: str) -> str:
    """Module name for a path like src/<module>/file.h, else ''. The
    sha256_batch translation units under src/crypto/ belong to the
    virtual crypto_batch node."""
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in MODULES:
        if parts[1] == "crypto" and parts[-1].startswith("sha256_batch"):
            return "crypto_batch"
        return parts[1]
    return ""


def include_target_module(path: str) -> str:
    """Module a project include points into ('' when not a module
    header — system headers and test helpers are out of scope)."""
    if path.startswith("crypto/sha256_batch"):
        return "crypto_batch"
    head = path.split("/", 1)[0]
    return head if head in MODULES and "/" in path else ""


def check_edge(from_module: str, to_module: str) -> bool:
    """True when from_module may include to_module."""
    if from_module == to_module:
        return True
    return to_module in ALLOWED.get(from_module, ())


def verify_acyclic() -> List[str]:
    """Sanity check on the table itself: returns the modules on a cycle
    (empty = the graph is a DAG). Run by the self-test."""
    state: Dict[str, int] = {}  # 0 visiting, 1 done
    cyclic: List[str] = []

    def visit(mod: str) -> bool:
        if state.get(mod) == 1:
            return True
        if state.get(mod) == 0:
            return False
        state[mod] = 0
        for dep in ALLOWED.get(mod, ()):
            if not visit(dep):
                cyclic.append(mod)
        state[mod] = 1
        return True

    for mod in sorted(ALLOWED):
        visit(mod)
    return sorted(set(cyclic))
