"""Token-aware C++ lexer for dap_lint.

The legacy linter matched regexes against raw lines, which meant banned
identifiers inside comments, string literals, and raw strings produced
false positives (and suppression markers inside string literals counted
as real suppressions). This lexer does the phases that matter for
linting:

  * line splicing (backslash-newline) with per-character line tracking,
    so a `//` comment continued across a splice swallows the next
    physical line exactly like the compiler does;
  * comment recognition (`//` and `/* */`), with comment text kept
    aside for suppression scanning;
  * string / character literals, including encoding prefixes
    (L, u, U, u8) and raw strings `R"delim(...)delim"`;
  * preprocessor directives, captured as logical lines and parsed
    (#include targets; #define bodies are re-lexed so macro bodies are
    still visible to banned-call rules);
  * identifiers, numbers (with digit separators and exponents), and
    multi-character punctuators (`::`, `->`, `==`, ...).

Known simplification: line splices inside raw-string literals are
treated as spliced (the standard "reverts" them). None of the tree's
raw strings span physical lines via splices, and the self-test pins the
behaviours that matter.
"""

from typing import List, NamedTuple, Optional, Tuple


class Token(NamedTuple):
    kind: str  # 'ident' | 'number' | 'string' | 'char' | 'punct'
    text: str
    line: int  # 1-based physical line of the token's first character


class Comment(NamedTuple):
    text: str
    line: int      # first physical line the comment touches
    end_line: int  # last physical line (== line for `//` comments)


class Directive(NamedTuple):
    kind: str            # 'include' | 'define' | 'pragma' | 'if' | ...
    text: str            # full logical line, '#' included, comment stripped
    line: int
    include_path: Optional[str]   # for #include: the header path
    include_angled: Optional[bool]
    body: Tuple[Token, ...]       # for #define: the macro body, lexed


class LexResult(NamedTuple):
    tokens: List[Token]
    comments: List[Comment]
    directives: List[Directive]


# Longest-match punctuator table (3-char, then 2-char, then single).
_PUNCT3 = ("...", "->*", "<=>", "<<=", ">>=")
_PUNCT2 = ("::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##", "++",
           "--")

_RAW_PREFIXES = {"R", "uR", "UR", "LR", "u8R"}
_STR_PREFIXES = {"L", "u", "U", "u8"}

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def _splice(text: str) -> Tuple[str, List[int]]:
    """Removes backslash-newline splices. Returns the spliced text and a
    per-character map back to 1-based physical line numbers."""
    out: List[str] = []
    line_of: List[int] = []
    line = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n and text[i + 1] == "\n":
            i += 2
            line += 1
            continue
        if ch == "\\" and i + 2 < n and text[i + 1] == "\r" \
                and text[i + 2] == "\n":
            i += 3
            line += 1
            continue
        out.append(ch)
        line_of.append(line)
        if ch == "\n":
            line += 1
        i += 1
    line_of.append(line)  # sentinel for end-of-text lookups
    return "".join(out), line_of


def _scan_string(s: str, i: int, quote: str) -> int:
    """Returns the index one past the closing quote (handles escapes;
    an unterminated literal stops at the newline)."""
    n = len(s)
    i += 1  # opening quote
    while i < n:
        ch = s[i]
        if ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == quote:
            return i + 1
        if ch == "\n":
            return i  # unterminated: resynchronise at the newline
        i += 1
    return n


def _scan_raw_string(s: str, i: int) -> int:
    """`i` points at the opening `"` after the R prefix. Returns the
    index one past the closing quote."""
    n = len(s)
    j = i + 1
    while j < n and s[j] not in "(\n" and (j - i) <= 17:
        j += 1
    if j >= n or s[j] != "(":
        return _scan_string(s, i, '"')  # malformed: degrade gracefully
    delim = s[i + 1:j]
    closer = ")" + delim + '"'
    end = s.find(closer, j + 1)
    if end < 0:
        return n
    return end + len(closer)


def _scan_number(s: str, i: int) -> int:
    """pp-number: digits, letters, dots, digit separators, exponent
    signs. Over-broad on purpose — lint rules never inspect numbers."""
    n = len(s)
    i += 1
    while i < n:
        ch = s[i]
        if ch in _IDENT_CONT or ch == ".":
            i += 1
        elif ch == "'" and i + 1 < n and s[i + 1] in _IDENT_CONT:
            i += 2  # digit separator
        elif ch in "+-" and s[i - 1] in "eEpP":
            i += 1
        else:
            break
    return i


def _lex_core(s: str, line_of: Optional[List[int]], base_line: int,
              allow_directives: bool) -> LexResult:
    tokens: List[Token] = []
    comments: List[Comment] = []
    directives: List[Directive] = []
    i = 0
    n = len(s)
    at_line_start = True

    def line_at(pos: int) -> int:
        if line_of is not None:
            return line_of[min(pos, len(line_of) - 1)]
        return base_line

    while i < n:
        ch = s[i]

        if ch == "\n":
            at_line_start = True
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if ch == "/" and i + 1 < n and s[i + 1] == "/":
            end = s.find("\n", i)
            if end < 0:
                end = n
            comments.append(Comment(s[i:end], line_at(i), line_at(end - 1)))
            i = end
            continue
        if ch == "/" and i + 1 < n and s[i + 1] == "*":
            end = s.find("*/", i + 2)
            if end < 0:
                end = n
            else:
                end += 2
            comments.append(Comment(s[i:end], line_at(i), line_at(end - 1)))
            i = end
            at_line_start = False
            continue

        # Preprocessor directive: '#' first on its (logical) line.
        if ch == "#" and at_line_start and allow_directives:
            end = s.find("\n", i)
            if end < 0:
                end = n
            raw = s[i:end]
            # Strip a trailing // comment but keep it for suppressions.
            cut = _find_comment_in_directive(raw)
            if cut >= 0:
                comments.append(Comment(raw[cut:], line_at(i + cut),
                                        line_at(i + cut)))
                raw = raw[:cut]
            directives.append(_parse_directive(raw.rstrip(), line_at(i)))
            i = end
            continue

        at_line_start = False

        # Identifier (and literal prefixes).
        if ch in _IDENT_START:
            j = i + 1
            while j < n and s[j] in _IDENT_CONT:
                j += 1
            word = s[i:j]
            if j < n and s[j] == '"' and word in _RAW_PREFIXES:
                end = _scan_raw_string(s, j)
                tokens.append(Token("string", s[i:end], line_at(i)))
                i = end
                continue
            if j < n and s[j] == '"' and word in _STR_PREFIXES:
                end = _scan_string(s, j, '"')
                tokens.append(Token("string", s[i:end], line_at(i)))
                i = end
                continue
            if j < n and s[j] == "'" and word in _STR_PREFIXES:
                end = _scan_string(s, j, "'")
                tokens.append(Token("char", s[i:end], line_at(i)))
                i = end
                continue
            tokens.append(Token("ident", word, line_at(i)))
            i = j
            continue

        # Literals.
        if ch == '"':
            end = _scan_string(s, i, '"')
            tokens.append(Token("string", s[i:end], line_at(i)))
            i = end
            continue
        if ch == "'":
            end = _scan_string(s, i, "'")
            tokens.append(Token("char", s[i:end], line_at(i)))
            i = end
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and s[i + 1] in _DIGITS):
            end = _scan_number(s, i)
            tokens.append(Token("number", s[i:end], line_at(i)))
            i = end
            continue

        # Punctuators, longest match first.
        if s[i:i + 3] in _PUNCT3:
            tokens.append(Token("punct", s[i:i + 3], line_at(i)))
            i += 3
            continue
        if s[i:i + 2] in _PUNCT2:
            tokens.append(Token("punct", s[i:i + 2], line_at(i)))
            i += 2
            continue
        tokens.append(Token("punct", ch, line_at(i)))
        i += 1

    return LexResult(tokens, comments, directives)


def _find_comment_in_directive(raw: str) -> int:
    """Index of a // comment inside a directive line, respecting string
    and char literals (so `#define X "//"` is not cut). -1 if none."""
    i = 0
    n = len(raw)
    while i < n - 1:
        ch = raw[i]
        if ch in "\"'":
            i = _scan_string(raw, i, ch)
            continue
        if ch == "/" and raw[i + 1] == "/":
            return i
        if ch == "/" and raw[i + 1] == "*":
            end = raw.find("*/", i + 2)
            i = n if end < 0 else end + 2
            continue
        i += 1
    return -1


def _parse_directive(raw: str, line: int) -> Directive:
    body = raw.lstrip()[1:].lstrip()  # drop '#'
    word = ""
    for ch in body:
        if ch in _IDENT_CONT:
            word += ch
        else:
            break
    rest = body[len(word):].lstrip()

    include_path = None
    include_angled = None
    define_body: Tuple[Token, ...] = ()

    if word == "include" and rest:
        if rest[0] == '"':
            end = rest.find('"', 1)
            if end > 0:
                include_path = rest[1:end]
                include_angled = False
        elif rest[0] == "<":
            end = rest.find(">", 1)
            if end > 0:
                include_path = rest[1:end]
                include_angled = True
    elif word == "define" and rest:
        # Skip the macro name, and a parameter list only when it opens
        # immediately (function-like macro); the remainder is the body.
        k = 0
        while k < len(rest) and rest[k] in _IDENT_CONT:
            k += 1
        if k < len(rest) and rest[k] == "(":
            depth = 0
            while k < len(rest):
                if rest[k] == "(":
                    depth += 1
                elif rest[k] == ")":
                    depth -= 1
                    if depth == 0:
                        k += 1
                        break
                k += 1
        macro_body = rest[k:].strip()
        if macro_body:
            define_body = tuple(
                _lex_core(macro_body, None, line, False).tokens)

    return Directive(word, raw, line, include_path, include_angled,
                     define_body)


def tokenize(text: str) -> LexResult:
    """Lexes a C++ translation unit. Comments and preprocessor
    directives are returned out-of-band; `tokens` is the pure token
    stream rules scan."""
    spliced, line_of = _splice(text)
    return _lex_core(spliced, line_of, 1, True)
