#!/usr/bin/env python3
"""Negative self-check for the thread-safety gate.

Copies src/common into a scratch tree, asserts the gate passes on the
pristine copy, then strips a single DAP_GUARDED_BY annotation from a
mutex-owning class and asserts the gate now FAILS. This proves the gate
has teeth in every environment: without clang, removing an annotation
must trip the structural guarded-fields rule; with clang, the same
doctored tree also silently loses analysis coverage for that field,
which is exactly the regression the structural tier exists to catch.
"""

import pathlib
import shutil
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
DRIVER = ROOT / "scripts" / "thread_safety_check.py"

# The seeded mutation: the work-queue field of the parallel engine's
# Queue class loses its guard annotation.
TARGET = "src/common/parallel.cc"
ANNOTATION = "DAP_GUARDED_BY(mu)"


def run_driver(root: pathlib.Path) -> int:
    proc = subprocess.run(
        [sys.executable, str(DRIVER), "--root", str(root)],
        capture_output=True, text=True)
    return proc.returncode


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        scratch = pathlib.Path(tmp)
        shutil.copytree(ROOT / "src" / "common", scratch / "src" / "common")

        if run_driver(scratch) != 0:
            print("thread-safety self-test FAIL: pristine copy of "
                  "src/common did not pass the gate")
            return 1

        doctored = scratch / TARGET
        text = doctored.read_text()
        if ANNOTATION not in text:
            print(f"thread-safety self-test FAIL: {TARGET} no longer "
                  f"contains '{ANNOTATION}' — update this self-test's "
                  "seeded mutation")
            return 1
        doctored.write_text(text.replace(ANNOTATION, "", 1))

        if run_driver(scratch) == 0:
            print("thread-safety self-test FAIL: stripping one "
                  f"{ANNOTATION} did not fail the gate")
            return 1

    print("thread-safety self-test: pristine copy passes, stripping one "
          "annotation fails the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
