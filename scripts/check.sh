#!/usr/bin/env bash
# Full local check: tier-1 build + test suite, then the obs telemetry
# tests again under AddressSanitizer + UBSan.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 only, skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build
ctest --test-dir build --output-on-failure

if [[ "$FAST" == 1 ]]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build of the test suite =="
cmake -B build-asan -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDAP_SANITIZE=address,undefined \
  -DDAP_BUILD_BENCHES=OFF -DDAP_BUILD_EXAMPLES=OFF
cmake --build build-asan --target test_obs test_dap test_game
for t in test_obs test_dap test_game; do
  echo "-- $t (asan+ubsan)"
  ./build-asan/tests/"$t"
done

echo "== all checks passed =="
