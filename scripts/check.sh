#!/usr/bin/env bash
# Full local check: tier-1 build + test suite (including the lint and
# fuzz-corpus-replay ctest entries), an explicit static-analysis stage
# (repo lint, thread-safety gate, run-clang-tidy when installed), then
# the ENTIRE ctest suite again under AddressSanitizer + UBSan with
# contracts at the fatal level.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 only, skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build
ctest --test-dir build --output-on-failure

echo "== bench trend: pinned fleet-chaos smoke vs checked-in baseline =="
# Same gate CI runs: the relay-hardening soak with a pinned run id,
# trend-checked against BENCH_fleet.json (forged auths, relay memory
# bound, guard collateral ceilings, auth rates, p99 bands).
(cd build && DAP_RUN_ID=check-fleet-chaos-smoke \
  bench/fleet_scale --chaos --smoke >/dev/null)
python3 scripts/bench_trend.py --baseline BENCH_fleet.json \
  --run build/bench_out/runs/check-fleet-chaos-smoke
# Batched-crypto throughput gate: digest equivalence is the bench's own
# exit code; the speedup gauges are trend-checked against BENCH_crypto.json.
(cd build && DAP_RUN_ID=check-crypto-smoke \
  bench/crypto_throughput --smoke >/dev/null)
python3 scripts/bench_trend.py --baseline BENCH_crypto.json \
  --run build/bench_out/runs/check-crypto-smoke
# Game-loop gate: ESS convergence (gate 7, strategy.ess_gap vs the
# offline replicator oracle) plus zero forged auths under the adaptive
# adversary, trend-checked against BENCH_game.json.
(cd build && DAP_RUN_ID=check-game-smoke \
  bench/game_loop --smoke >/dev/null)
python3 scripts/bench_trend.py --baseline BENCH_game.json \
  --run build/bench_out/runs/check-game-smoke

echo "== static analysis: repo lint + thread-safety gate =="
python3 scripts/lint.py src
python3 scripts/thread_safety_check.py
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p build '(src|fuzz)/.*\.cc$'
else
  echo "run-clang-tidy not installed — clang-tidy tier runs in CI"
fi

if [[ "$FAST" == 1 ]]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build, full ctest suite, contracts fatal =="
cmake -B build-asan -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDAP_SANITIZE=address,undefined \
  -DDAP_CONTRACTS=FATAL \
  -DDAP_BUILD_BENCHES=OFF -DDAP_BUILD_EXAMPLES=OFF
cmake --build build-asan
# DAP_CHAOS_SOAK_ITERS widens the chaos-soak gtest from the smoke config
# to the full seeded fault-mix soak — the whole thing under ASan+UBSan
# with fatal contracts.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  DAP_CHAOS_SOAK_ITERS=4 \
  ctest --test-dir build-asan --output-on-failure

echo "== tsan: ThreadSanitizer build, parallel-engine suite =="
cmake -B build-tsan -S . "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDAP_SANITIZE=thread \
  -DDAP_CONTRACTS=FATAL \
  -DDAP_BUILD_BENCHES=OFF -DDAP_BUILD_EXAMPLES=OFF -DDAP_BUILD_FUZZERS=OFF
cmake --build build-tsan
# DAP_THREADS=4 forces real worker threads through the pool even on
# single-core machines, so TSan sees genuine cross-thread handoff.
# test_fleet rides along: cohort drains fan reservoir replay across the
# same pool. test_strategy joins for the same reason: strategy-driven
# fleet runs share the pool with cooperative-verification drains.
TSAN_OPTIONS=halt_on_error=1 DAP_THREADS=4 \
  ctest --test-dir build-tsan \
  -L 'test_parallel|test_fleet|test_crypto_batch|test_strategy' \
  --output-on-failure

echo "== all checks passed =="
