#!/usr/bin/env python3
"""Regenerates the checked-in fuzz seed corpus under fuzz/corpus/.

The wire-decode seeds mirror src/common/codec.h's little-endian format
(u8 tag, u32 sender, then per-kind fields; blobs are u16-length-prefixed)
so every packet kind is represented by a structurally valid encoding,
plus a few malformed shapes (truncated, unknown tag, oversized length
prefix) that exercise the rejection paths. The receiver-harness seeds
are op-streams for the ByteStream interpreters in fuzz_dap_receiver.cc /
fuzz_teslapp_receiver.cc: announce/forge/reveal interleavings with time
skips, reordered/duplicated deliveries, and pool-saturation floods.

Deterministic: running it twice produces identical files.
"""

import pathlib
import struct

ROOT = pathlib.Path(__file__).resolve().parent.parent
CORPUS = ROOT / "fuzz" / "corpus"


def u8(v):
    return struct.pack("<B", v)


def u16(v):
    return struct.pack("<H", v)


def u32(v):
    return struct.pack("<I", v)


def u64(v):
    return struct.pack("<Q", v)


def blob(data):
    return u16(len(data)) + data


def tesla_packet(sender=7, interval=42, message=b"hello sensors",
                 mac=b"\xab" * 10, disclosed_interval=40,
                 disclosed_key=b"\xcd" * 10):
    return (u8(1) + u32(sender) + u32(interval) + blob(message) + blob(mac) +
            u32(disclosed_interval) + blob(disclosed_key))


def mac_announce(sender=3, interval=9, mac=b"\x55" * 10):
    return u8(2) + u32(sender) + u32(interval) + blob(mac)


def message_reveal(sender=3, interval=9, message=b"reading=42",
                   key=b"\x66" * 10):
    return u8(3) + u32(sender) + u32(interval) + blob(message) + blob(key)


def key_disclosure(sender=1, interval=5, key=b"\x77" * 10):
    return u8(4) + u32(sender) + u32(interval) + blob(key)


def cdm_packet(sender=2, high_interval=6):
    return (u8(5) + u32(sender) + u32(high_interval) + blob(b"\x88" * 10) +
            blob(b"\x99" * 32) + blob(b"\xaa" * 10) + blob(b"\xbb" * 10))


def bootstrap_packet(sender=1, start_interval=1, duration_us=1_000_000):
    return (u8(6) + u32(sender) + u32(start_interval) + u64(duration_us) +
            blob(b"\x11" * 10) + blob(b"\x22" * 80) + blob(b"\x33" * 32))


def crc32(data):
    # Same CRC-32 (IEEE, reflected) as src/wire/crc32.cc.
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


def framed(payload):
    return payload + u32(crc32(payload))


def wots_signature(chains):
    out = u16(len(chains))
    for chain in chains:
        out += blob(chain)
    return out


WIRE_SEEDS = {
    "tesla_packet": tesla_packet(),
    "mac_announce": mac_announce(),
    "message_reveal": message_reveal(),
    "key_disclosure": key_disclosure(),
    "cdm_packet": cdm_packet(),
    "bootstrap_packet": bootstrap_packet(),
    "empty_fields": tesla_packet(message=b"", mac=b"", disclosed_key=b""),
    "framed_announce": framed(mac_announce()),
    "framed_tesla": framed(tesla_packet()),
    "wots_sig": wots_signature([b"\x01" * 32, b"\x02" * 32, b"\x03" * 32]),
    "truncated_tesla": tesla_packet()[:-3],
    "unknown_tag": u8(0xEE) + u32(1),
    "oversized_length_prefix": u8(2) + u32(1) + u32(9) + u16(0xFFFF) + b"xx",
    "empty": b"",
    "single_byte": u8(2),
}


def op(kind, interval, *payload):
    """One interpreter step: opcode byte, interval byte, payload bytes."""
    out = u8(kind) + u8(interval)
    for part in payload:
        out += part
    return out


def dap_seeds():
    # Stream prefix: d selector, m selector, policy selector, record-pool
    # selector (odd = tight cap), rng seed u32.
    prefix = u8(0) + u8(1) + u8(0) + u8(0) + u32(1234)
    pool_prefix = u8(1) + u8(3) + u8(0) + u8(1) + u32(1234)
    announce = op(0, 2, u8(5), b"hello")          # authentic announce, 5-byte msg
    reveal = op(2, 2, u8(0))                      # reveal slot 0
    forge_announce = op(1, 2, b"\xde\xad\xbe\xef\x00\x11\x22\x33\x44\x55")
    forge_reveal = op(3, 2, u8(4), b"fake", b"\x00" * 10)
    flip_replay = op(4, 2, u8(0), u8(3))
    skip_time = op(5, 1, u8(200))
    defer = op(6, 2, u8(5), b"later")             # hold an authentic announce
    deliver_deferred = op(7, 0)                   # release it late, twice
    return {
        "announce_reveal": prefix + announce + skip_time + reveal,
        "forge_flood": prefix + forge_announce * 8 + announce + skip_time +
                       reveal,
        "forged_reveal": prefix + announce + forge_reveal + reveal,
        "bitflip_replay": prefix + announce + skip_time + flip_replay,
        "mixed": prefix + announce + forge_announce * 3 + skip_time + reveal +
                 forge_reveal + flip_replay,
        # Reordering fault: a deferred announce arrives after newer traffic.
        "reordered": prefix + defer + announce + deliver_deferred +
                     skip_time + reveal,
        # Duplication fault: the deferred announce is delivered twice.
        "duplicated": prefix + defer + deliver_deferred + skip_time + reveal,
        # Pool saturation: d=2, m=4, tight cap -> shed + shrink path.
        "pool_shed": pool_prefix +
                     b"".join(op(0, i, u8(0)) * 4 for i in (2, 3)) + reveal,
        "empty": b"",
    }


def teslapp_seeds():
    # Prefix: record cap selector, pool selector (odd = tight cap), then ops.
    prefix = u8(2) + u8(0) + u32(99)
    pool_prefix = u8(2) + u8(1) + u32(99)
    announce = op(0, 3, u8(6), b"sensor")
    reveal = op(2, 3)
    forge_announce = op(1, 3, b"\x99" * 10)
    forge_reveal = op(3, 3, u8(4), b"fake", b"\x00" * 10)
    anchor_ok = op(4, 3, u8(1))
    anchor_mut = op(4, 3, u8(0), u8(2), u8(5))
    skip_time = op(5, 1, u8(180))
    defer = op(6, 3, u8(6), b"offset")
    deliver_deferred = op(7, 0)
    return {
        "announce_reveal": prefix + announce + skip_time + reveal,
        "record_cap_flood": prefix + forge_announce * 10 + announce + reveal,
        "anchors": prefix + anchor_ok + anchor_mut + announce + reveal,
        "forged_reveal": prefix + announce + forge_reveal + reveal,
        "reordered": prefix + defer + announce + deliver_deferred +
                     skip_time + reveal,
        "duplicated": prefix + defer + deliver_deferred + skip_time + reveal,
        "pool_shed": pool_prefix +
                     b"".join(op(0, i, u8(0)) * 2 for i in range(2, 8)) +
                     reveal,
        "empty": b"",
    }


def fleet_scenario_seeds():
    # Text seeds for the ScenarioSpec JSON dialect: valid specs across
    # every topology kind (including a full guard + fault plan and the
    # strategy block's adaptive/sybil/coop extensions), plus malformed
    # shapes that exercise each rejection path (unknown keys, non-pow2
    # guard capacity, out-of-range strategy knobs, resource-ceiling
    # overflow, truncation).
    chaos = (
        '{"name": "chaos", "seed": 7, '
        '"topology": {"kind": "tree", "depth": 2, "fanout": 1}, '
        '"members_per_cohort": 5, "buffers": 6, "intervals": 10, '
        '"interval_us": 200000, "forged_fraction": 0.25, '
        '"guard": {"capacity": 64, "budget_mbps": 0.05, "burst_bits": 512}, '
        '"faults": {'
        '"relay_crashes": [{"node": 1, "at_interval": 2, '
        '"downtime_intervals": 2, "reboot_skew_us": 150000}], '
        '"partitions": [{"from": 0, "to": 1, "from_interval": 2, '
        '"until_interval": 3}], '
        '"degraded": [{"node": 1, "budget_mbps": 0.005}]}}'
    )
    seeds = {
        "tree_chaos_full": chaos,
        "gossip_minimal":
            '{"topology": {"kind": "gossip", "relays": 4, "fanin": 2}}',
        "grid_hop":
            '{"topology": {"kind": "grid", "rows": 2, "cols": 3}, '
            '"hop": {"loss": 0.1, "duplicate_probability": 0.2, '
            '"latency_us": 1000, "jitter_us": 500}}',
        "flood_attackers":
            '{"topology": {"kind": "flood", "receivers": 4}, '
            '"forged_fraction": 0.5, "attackers": [0], '
            '"relay_dedup": false, "cohorts_at_leaves_only": true}',
        "guard_only":
            '{"topology": {"kind": "tree", "depth": 1, "fanout": 2}, '
            '"guard": {"capacity": 16}}',
        "strategy_full":
            '{"topology": {"kind": "tree", "depth": 2, "fanout": 1}, '
            '"members_per_cohort": 4, "buffers": 2, "intervals": 8, '
            '"forged_fraction": 0.75, '
            '"strategy": {'
            '"adaptive": {"enabled": true, "learning_rate": 0.4, '
            '"initial_share": 0.5, "reward": 200, "cost": 180}, '
            '"sybil": {"enabled": true, "cohort": 3, '
            '"reveal_stagger_us": 1000}, '
            '"coop": {"enabled": true, "audit_fraction": 0.5, '
            '"poisoned": true}}}',
        "strategy_sybil_only":
            '{"topology": {"kind": "gossip", "relays": 3, "fanin": 2}, '
            '"strategy": {"sybil": {"enabled": true, "cohort": 8}}}',
        "strategy_bad_rate":
            '{"topology": {"kind": "tree"}, "forged_fraction": 0.5, '
            '"strategy": {"adaptive": {"enabled": true, '
            '"learning_rate": 2.5}}}',
        "strategy_unknown_key":
            '{"topology": {"kind": "tree"}, '
            '"strategy": {"coop": {"enabled": true, "audit_fractino": 1}}}',
        "strategy_poison_without_coop":
            '{"topology": {"kind": "tree"}, '
            '"strategy": {"coop": {"poisoned": true}}}',
        "unknown_key": '{"topology": {"kind": "tree"}, "bogus": 1}',
        "bad_guard_capacity":
            '{"topology": {"kind": "tree"}, "guard": {"capacity": 48}}',
        "crash_on_root":
            '{"topology": {"kind": "tree", "depth": 1, "fanout": 2}, '
            '"faults": {"relay_crashes": [{"node": 0}]}}',
        "overflow_nodes":
            '{"topology": {"kind": "flood", "receivers": 100000000}}',
        "truncated": '{"topology": {"kind": "tree",',
        "not_json": "hello",
        "empty": "",
    }
    return {name: text.encode() for name, text in seeds.items()}


def sha256_batch_seeds():
    # Stream layout (see fuzz_sha256_batch.cc): u8 message count (mod 17),
    # then per message u8 length + bytes; u8 key length (mod 97) + key
    # bytes; u8 chain key-size selector; per-message u8 step counts.
    # Seeds pin the interesting block-boundary lengths (55/56/64 with the
    # 9-byte pad edge) and partial-tail batch sizes around the 4/8-lane
    # widths.
    def msg(length, fill):
        return u8(length) + bytes([fill]) * length

    boundary = (u8(6) + msg(0, 0) + msg(55, 1) + msg(56, 2) + msg(64, 3) +
                msg(119, 4) + msg(120, 5) +
                u8(64) + b"\x11" * 64 +      # key exactly one pad block
                u8(9) + u8(3) * 6)           # key_size 10, short walks
    lanes = (u8(9) + b"".join(msg(16 + i, 0x40 + i) for i in range(9)) +
             u8(0) +                          # empty key
             u8(31) + u8(1) * 9)              # key_size 32
    long_key = (u8(2) + msg(200, 0xAA) + msg(1, 0xBB) +
                u8(96) + b"\x77" * 96 +       # key > 64B (hash-then-pad)
                u8(0) + u8(8) + u8(8))
    walk_heavy = (u8(4) + msg(10, 1) + msg(10, 2) + msg(10, 3) + msg(10, 4) +
                  u8(16) + b"\x55" * 16 +
                  u8(9) + u8(8) + u8(0) + u8(5) + u8(1))
    return {
        "block_boundaries": boundary,
        "nine_lanes": lanes,
        "long_key": long_key,
        "walk_heavy": walk_heavy,
        "single_empty": u8(1) + u8(0) + u8(0) + u8(0) + u8(0),
        "empty": b"",
    }


def write_corpus(subdir, seeds):
    directory = CORPUS / subdir
    directory.mkdir(parents=True, exist_ok=True)
    for name, data in sorted(seeds.items()):
        (directory / name).write_bytes(data)
    print(f"{subdir}: {len(seeds)} seed(s)")


def main():
    write_corpus("fuzz_wire_decode", WIRE_SEEDS)
    write_corpus("fuzz_dap_receiver", dap_seeds())
    write_corpus("fuzz_teslapp_receiver", teslapp_seeds())
    write_corpus("fuzz_fleet_scenario", fleet_scenario_seeds())
    write_corpus("fuzz_sha256_batch", sha256_batch_seeds())


if __name__ == "__main__":
    main()
