// Crowdsensing campaign: the paper's motivating scenario end-to-end.
//
// A base station broadcasts sensing tasks to a fleet of mobile nodes
// over a lossy wireless broadcast medium. A DoS attacker floods forged
// MAC announcements at a configurable intensity. Every node runs the
// DAP receiver with m buffers; the run reports per-node authentication
// rates, memory use, and the attacker's actual success rate against the
// analytic p^m.
//
//   ./build/examples/crowdsensing_campaign [p=0.8] [m=6] [nodes=20]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dap/dap.h"
#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/medium.h"

int main(int argc, char** argv) {
  using namespace dap;

  const double p = argc > 1 ? std::atof(argv[1]) : 0.8;
  const std::size_t m = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;
  const std::size_t node_count =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 20;
  const std::uint32_t intervals = 50;

  std::cout << "crowdsensing campaign: p=" << p << " m=" << m << " nodes="
            << node_count << " intervals=" << intervals << "\n\n";

  sim::EventQueue queue;
  common::Rng rng(2026);
  sim::Medium medium(queue, rng);

  protocol::DapConfig config;
  config.chain_length = intervals + 4;
  config.buffers = m;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);
  protocol::DapSender base_station(config, common::bytes_of("campaign-42"));

  // --- Mobile nodes: skewed clocks, independent lossy links, private
  //     local keys, their own RNG streams.
  struct NodeState {
    protocol::DapReceiver receiver;
    std::size_t authenticated = 0;
  };
  std::vector<NodeState> nodes;
  nodes.reserve(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    common::Rng node_rng = rng.fork(n + 1);
    nodes.push_back(NodeState{
        protocol::DapReceiver(
            config, base_station.chain().commitment(), node_rng.bytes(16),
            sim::LooseClock::random(node_rng, 20 * sim::kMillisecond),
            node_rng.fork(1)),
        0});
  }
  for (std::size_t n = 0; n < node_count; ++n) {
    medium.attach(
        [&nodes, n](const wire::Packet& packet, sim::SimTime now) {
          auto& node = nodes[n];
          if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
            node.receiver.receive(*a, now);
          } else if (const auto* r =
                         std::get_if<wire::MessageReveal>(&packet)) {
            if (node.receiver.receive(*r, now)) ++node.authenticated;
          }
        },
        std::make_unique<sim::BernoulliChannel>(0.05),
        2 * sim::kMillisecond);
  }

  // --- Attacker floods to forged fraction p (per authentic copy).
  sim::FloodingForger attacker(config.sender_id, config.mac_size,
                               rng.fork(999));
  const std::size_t forged_per_interval =
      sim::FloodingForger::copies_for_fraction(1, p);

  for (std::uint32_t i = 1; i <= intervals; ++i) {
    queue.schedule_at(config.schedule.interval_start(i) + 1000, [&, i] {
      medium.broadcast(
          wire::Packet{base_station.announce(i, common::bytes_of(
              "sense: air-quality cell " + std::to_string(i)))});
      attacker.flood(medium, i, forged_per_interval);
    });
    queue.schedule_at(config.schedule.interval_start(i + 1) + 1000, [&, i] {
      medium.broadcast(wire::Packet{base_station.reveal(i)});
    });
  }
  queue.run();

  // --- Report.
  common::RunningStats auth_rate;
  common::RunningStats memory_bits;
  for (const auto& node : nodes) {
    auth_rate.add(static_cast<double>(node.authenticated) / intervals);
    memory_bits.add(static_cast<double>(node.receiver.stored_record_bits()));
  }
  const double analytic_defense = 1.0 - std::pow(p, static_cast<double>(m));
  const std::size_t announce_bits = wire::wire_bits(
      wire::Packet{attacker.forge(1)});
  const double attacker_share =
      static_cast<double>(attacker.packets_forged() * announce_bits) /
      static_cast<double>(medium.total_bits());
  std::cout << "per-node authentication rate: mean "
            << common::format_number(auth_rate.mean()) << " (min "
            << common::format_number(auth_rate.min()) << ", max "
            << common::format_number(auth_rate.max()) << ")\n"
            << "large-flood analytic defence success 1-p^m = "
            << common::format_number(analytic_defense)
            << "; with this small per-interval flood the reservoir does "
               "even better\n(hypergeometric, see EXPERIMENTS.md E7), so "
               "losses are dominated by the ~0.95^2\nlink delivery of "
               "announce+reveal.\n"
            << "attacker packets forged: " << attacker.packets_forged()
            << " (" << common::format_number(attacker_share * 100)
            << "% of medium bits)\n"
            << "residual buffered records per node (bits): mean "
            << common::format_number(memory_bits.mean()) << '\n';
  std::cout << "\nmedium counters:\n" << medium.metrics().report();
  return 0;
}
