// Quickstart: the smallest complete DAP exchange.
//
// One sender, one receiver, one flooding attacker. Shows the two-phase
// broadcast (MAC first, message+key one interval later), the reservoir
// buffers absorbing a forged flood, and weak+strong authentication.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "common/bytes.h"
#include "common/rng.h"
#include "dap/dap.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/adversary.h"
#include "sim/clock_model.h"

int main() {
  using namespace dap;

  // --- Capture a structured event trace of the exchange (exported as
  //     Chrome trace_event JSON at the end — open in chrome://tracing).
  obs::Tracer::global().enable(true);

  // --- Configure the protocol: 1-second intervals, m = 4 buffers.
  protocol::DapConfig config;
  config.chain_length = 16;       // enough intervals for this demo
  config.buffers = 4;             // m
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);

  // --- The sender derives its one-way key chain from a secret seed.
  protocol::DapSender sender(config, common::bytes_of("demo-seed"));

  // --- The receiver is bootstrapped with the authenticated commitment
  //     K_0 (in deployment: via the WOTS-signed bootstrap packet) and a
  //     private local key K_recv for its μMAC records.
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 common::bytes_of("receiver-private-key"),
                                 sim::LooseClock(0, 0), common::Rng(1));

  // --- Interval 1: the sender broadcasts (MAC_1, 1). An attacker floods
  //     nine forged MACs (forged fraction p = 0.9).
  const auto announce = sender.announce(1, common::bytes_of(
      "task#17: report temperature at 5th & Main"));
  receiver.receive(announce, sim::kSecond / 2);

  sim::FloodingForger attacker(config.sender_id, config.mac_size,
                               common::Rng(2));
  for (int i = 0; i < 9; ++i) {
    receiver.receive(attacker.forge(1), sim::kSecond / 2);
  }
  std::cout << "interval 1: buffered " << receiver.buffered_records(1)
            << " of 10 copies in " << config.buffers
            << " reservoir slots (56 bits each)\n";

  // --- Interval 2: the sender reveals (M_1, K_1, 1). The receiver
  //     weak-authenticates K_1 against the chain, recomputes the μMAC
  //     and searches its records.
  const auto result =
      receiver.receive(sender.reveal(1), sim::kSecond * 3 / 2);
  if (result) {
    std::cout << "interval 2: message AUTHENTICATED: \""
              << std::string(result->message.begin(), result->message.end())
              << "\"\n";
  } else {
    std::cout << "interval 2: attack succeeded this round (all "
              << config.buffers << " slots held forged records — "
              << "probability ~ 0.9^4 = 0.66; rerun with more buffers)\n";
  }

  // --- End-of-run telemetry straight from the obs registry: the DAP
  //     receive path updates these counters/histograms by handle, so no
  //     hand-rolled stat printing is needed here.
  std::cout << "\nend-of-run telemetry:\n"
            << obs::Registry::global().report();

  obs::write_chrome_trace(obs::Tracer::global(),
                          "bench_out/quickstart.trace.json");
  std::cout << "[event trace written to bench_out/quickstart.trace.json — "
               "open in chrome://tracing]\n";
  return 0;
}
