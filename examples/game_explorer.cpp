// Game explorer: a small CLI for the evolutionary-game layer.
//
//   game_explorer ess <p> <m>        classify the ESS and verify it
//   game_explorer optimize <p>       run all three optimiser modes
//   game_explorer trajectory <p> <m> print the Euler evolution (Fig. 6)
//   game_explorer field <p> <m>      ASCII phase portrait of the field
//
// Defaults to `ess 0.8 30` when run without arguments.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/ascii_chart.h"
#include "common/csv.h"
#include "common/table.h"
#include "game/ess.h"
#include "game/optimizer.h"

namespace {

using namespace dap;

void show_ess(double p, std::size_t m) {
  const auto g = game::GameParams::paper_defaults(p, m);
  const auto ess = game::solve_ess(g);
  const auto c = game::ess_candidates(g);
  std::cout << "p=" << p << " m=" << m
            << "  P=p^m=" << common::format_number(g.attack_success())
            << "\n\nESS: " << game::ess_kind_name(ess.kind) << " at ("
            << common::format_number(ess.point.x) << ", "
            << common::format_number(ess.point.y) << ")\n";
  std::cout << "candidates (unclamped): Y'(X=1)="
            << common::format_number(c.y_at_x1)
            << "  X'(Y=1)=" << common::format_number(c.x_at_y1)
            << "  X*=" << common::format_number(c.x_interior)
            << "  Y*=" << common::format_number(c.y_interior) << '\n';
  const auto j = game::jacobian_at(g, ess.point.x, ess.point.y);
  std::cout << "Jacobian at ESS: trace=" << common::format_number(j.trace())
            << " det=" << common::format_number(j.det())
            << (j.discriminant() < 0 ? " (spiral)" : " (node)")
            << (j.stable() ? ", locally stable" : "") << '\n';
  std::cout << "numerical verification (RK4 from (0.5,0.5) + perturbations): "
            << (game::verify_ess(g, ess) ? "CONFIRMED" : "NOT CONFIRMED")
            << '\n';
  std::cout << "defender cost at ESS: E = "
            << common::format_number(game::defense_cost(g)) << '\n';
}

void show_optimize(double p) {
  const auto g = game::GameParams::paper_defaults(p, 1);
  common::TextTable table({"mode", "m*", "ESS", "E", "vs naive N"});
  const double naive = game::naive_cost(g);
  const struct {
    const char* name;
    game::OptimizeMode mode;
  } modes[] = {
      {"paper (interior-seeking)", game::OptimizeMode::kPaperInterior},
      {"arg-min cost", game::OptimizeMode::kMinimizeCost},
      {"Algorithm 3 verbatim", game::OptimizeMode::kFaithfulAlg3},
  };
  for (const auto& mode : modes) {
    const auto result = game::optimize_m(g, mode.mode);
    table.add_row({mode.name, std::to_string(result.m),
                   game::ess_kind_name(result.ess.kind),
                   common::format_number(result.cost),
                   common::format_number(naive)});
  }
  std::cout << table.render();
}

void show_trajectory(double p, std::size_t m) {
  const auto g = game::GameParams::paper_defaults(p, m);
  game::IntegrationOptions options;
  options.max_steps = 500000;
  options.record_every = 10;
  const auto traj = game::integrate(g, {0.5, 0.5}, options);
  common::Series sx{"X", {}, {}}, sy{"Y", {}, {}};
  for (std::size_t i = 0; i < traj.points.size(); ++i) {
    sx.xs.push_back(static_cast<double>(i * 10));
    sx.ys.push_back(traj.points[i].x);
    sy.xs.push_back(static_cast<double>(i * 10));
    sy.ys.push_back(traj.points[i].y);
  }
  common::ChartOptions chart;
  chart.title = "evolution from (0.5, 0.5), Euler dt=0.01";
  chart.x_label = "step";
  std::cout << common::render_chart({sx, sy}, chart);
  std::cout << "final (" << common::format_number(traj.final.x) << ", "
            << common::format_number(traj.final.y) << ") after "
            << traj.steps << " steps\n";
}

void show_field(double p, std::size_t m) {
  const auto g = game::GameParams::paper_defaults(p, m);
  const auto ess = game::solve_ess(g);
  std::cout << "replicator field, p=" << p << " m=" << m << " (ESS "
            << game::ess_kind_name(ess.kind) << "; o marks the ESS)\n\n";
  const int rows = 17, cols = 33;
  for (int r = rows; r >= 0; --r) {
    const double y = static_cast<double>(r) / rows;
    std::string line;
    for (int c = 0; c <= cols; ++c) {
      const double x = static_cast<double>(c) / cols;
      if (std::abs(x - ess.point.x) < 0.5 / cols &&
          std::abs(y - ess.point.y) < 0.5 / rows) {
        line += 'o';
        continue;
      }
      const auto d = game::replicator_field(g, x, y);
      // Quadrant glyphs: which way does the flow point?
      const bool right = d.dx > 1e-9, left = d.dx < -1e-9;
      const bool up = d.dy > 1e-9, down = d.dy < -1e-9;
      char glyph = '.';
      if (right && up) glyph = '/';
      else if (right && down) glyph = '\\';
      else if (left && up) glyph = '`';
      else if (left && down) glyph = ',';
      else if (right) glyph = '>';
      else if (left) glyph = '<';
      else if (up) glyph = '^';
      else if (down) glyph = 'v';
      line += glyph;
    }
    std::printf("%4.2f |%s\n", y, line.c_str());
  }
  std::cout << "      " << std::string(cols + 1, '-') << "\n      X: 0 .. 1  "
            << "(/ up-right, \\ down-right, ` up-left, , down-left)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "ess";
  const double p = argc > 2 ? std::atof(argv[2]) : 0.8;
  const std::size_t m =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 30;
  try {
    if (cmd == "ess") {
      show_ess(p, m);
    } else if (cmd == "optimize") {
      show_optimize(p);
    } else if (cmd == "trajectory") {
      show_trajectory(p, m);
    } else if (cmd == "field") {
      show_field(p, m);
    } else {
      std::cerr << "usage: game_explorer [ess|optimize|trajectory|field] "
                   "[p] [m]\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
