// Lossy-channel recovery: multi-level μTESLA vs EFTP vs EDRP.
//
// Runs the two-level protocol over a bursty Gilbert-Elliott channel that
// wipes out whole stretches of packets (including every disclosure in
// one interval), and shows how each variant recovers:
//  - original link: lost low-level keys return two high intervals later,
//  - EFTP: one interval later,
//  - EDRP: CDMs authenticate instantly through the hash chain, keeping
//    the DoS filter alive throughout.
//
//   ./build/examples/lossy_recovery

#include <iostream>

#include "analysis/recovery.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "sim/channel.h"
#include "tesla/multilevel.h"

int main() {
  using namespace dap;

  std::cout << "Part 1 — controlled disclosure loss (all key disclosures\n"
               "of high interval 4 lost from low index 3 onward):\n\n";
  common::TextTable table({"variant", "tail data recovered at",
                           "CDM auth latency (intervals)"});
  struct Variant {
    const char* name;
    crypto::LevelLink link;
    bool edrp;
  };
  for (const auto& variant :
       {Variant{"original", crypto::LevelLink::kOriginal, false},
        Variant{"EFTP", crypto::LevelLink::kEftp, false},
        Variant{"EDRP", crypto::LevelLink::kOriginal, true},
        Variant{"EFTP+EDRP", crypto::LevelLink::kEftp, true}}) {
    analysis::RecoverySetup setup;
    setup.link = variant.link;
    setup.edrp = variant.edrp;
    const auto report = analysis::run_recovery_experiment(setup);
    table.add_row({std::string(variant.name),
                   "interval " +
                       std::to_string(report.data_recovered_at_interval) +
                       " (lost in 4)",
                   common::format_number(report.mean_cdm_auth_latency)});
  }
  std::cout << table.render();

  std::cout << "\nPart 2 — random burst loss (Gilbert-Elliott, ~20% loss in "
               "bursts):\n\n";
  tesla::MultiLevelConfig config;
  config.high_length = 10;
  config.low_length = 8;
  config.cdm_buffers = 4;
  config.high_schedule = sim::IntervalSchedule(0, 8 * sim::kSecond);

  common::TextTable burst_table({"variant", "data authenticated", "of sent",
                                 "low chains recovered via high key"});
  for (const auto& variant :
       {Variant{"original", crypto::LevelLink::kOriginal, false},
        Variant{"EFTP", crypto::LevelLink::kEftp, false},
        Variant{"EFTP+EDRP", crypto::LevelLink::kEftp, true}}) {
    tesla::MultiLevelConfig cfg = config;
    cfg.link = variant.link;
    cfg.edrp = variant.edrp;
    tesla::MultiLevelSender sender(cfg, common::bytes_of("seed"));
    common::Rng rng(11);
    tesla::MultiLevelReceiver receiver(cfg, sender.bootstrap(),
                                       sim::LooseClock(0, 0), rng.fork(1));
    sim::GilbertElliottChannel channel(0.08, 0.3, 0.02, 0.9);
    common::Rng channel_rng = rng.fork(2);

    std::size_t sent = 0, authenticated = 0;
    const auto low_duration = cfg.low_schedule().duration();
    for (std::uint32_t i = 1; i <= cfg.high_length; ++i) {
      const auto start = cfg.high_schedule.interval_start(i);
      // Three CDM copies per interval.
      for (int c = 0; c < 3; ++c) {
        if (channel.deliver(channel_rng)) {
          const auto events =
              receiver.receive(sender.cdm(i), start + low_duration / 2);
          authenticated += events.messages.size();
        }
      }
      for (std::uint32_t j = 1; j <= static_cast<std::uint32_t>(cfg.low_length);
           ++j) {
        ++sent;
        if (channel.deliver(channel_rng)) {
          const auto events = receiver.receive(
              sender.make_data_packet(i, j, common::bytes_of("reading")),
              start + (j - 1) * low_duration + low_duration / 2);
          authenticated += events.messages.size();
        }
      }
    }
    burst_table.add_row(
        {variant.name, std::to_string(authenticated), std::to_string(sent),
         std::to_string(receiver.stats().low_chains_recovered_via_high)});
  }
  std::cout << burst_table.render();
  std::cout << "\n(the receiver only authenticates packets it actually "
               "heard; ~20% are lost on\nthe channel itself — the point is "
               "that heard packets are never stranded by\nlost key "
               "disclosures, and EFTP strands them for one interval less.)\n";
  return 0;
}
