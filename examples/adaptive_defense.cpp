// Adaptive, game-driven defence: the paper's Sec. V put to work.
//
// The attack intensity changes over the run (calm -> moderate -> severe
// -> calm). The adaptive node estimates the forged fraction p̂ online and
// re-tunes its buffer count m with the evolutionary-game optimiser
// (Algorithm 3); a naive node keeps the maximum M = 50 buffers the whole
// time. The run prints the m trajectory and compares realized costs
// against the analytic E and N of Fig. 8.
//
//   ./build/examples/adaptive_defense

#include <cstdio>
#include <iostream>

#include "common/csv.h"
#include "common/rng.h"
#include "core/adaptive_defender.h"
#include "game/optimizer.h"
#include "obs/registry.h"
#include "sim/adversary.h"

int main() {
  using namespace dap;

  core::AdaptiveConfig config;
  config.dap.chain_length = 140;
  config.dap.buffers = 1;
  config.dap.schedule = sim::IntervalSchedule(0, sim::kSecond);
  config.retune_period = 5;
  config.estimator_smoothing = 0.5;

  protocol::DapSender sender(config.dap, common::bytes_of("seed"));
  core::AdaptiveDefender adaptive(config, sender.chain().commitment(),
                                  common::bytes_of("local-a"),
                                  sim::LooseClock(0, 0), common::Rng(1));

  // The naive baseline: fixed M = 50 buffers, always defending.
  protocol::DapConfig naive_config = config.dap;
  naive_config.buffers = game::kMaxBuffers;
  protocol::DapSender naive_sender(naive_config, common::bytes_of("seed"));
  protocol::DapReceiver naive(naive_config,
                              naive_sender.chain().commitment(),
                              common::bytes_of("local-n"),
                              sim::LooseClock(0, 0), common::Rng(2));
  double naive_cost = 0.0;
  std::uint64_t naive_losses = 0;

  sim::FloodingForger attacker(config.dap.sender_id, config.dap.mac_size,
                               common::Rng(3));

  // Attack phases: (intervals, forged copies per authentic one).
  struct Phase {
    std::uint32_t intervals;
    std::size_t forged;
    const char* label;
  };
  const Phase phases[] = {{30, 0, "calm (p=0)"},
                          {30, 4, "moderate (p=0.8)"},
                          {40, 19, "severe (p=0.95)"},
                          {30, 0, "calm again"}};

  const auto mid = [&](std::uint32_t i) {
    return (i - 1) * sim::kSecond + sim::kSecond / 2;
  };

  std::cout << "interval  phase              p-est   m(adaptive)  X(ess)\n"
            << "--------------------------------------------------------\n";
  std::uint32_t interval = 0;
  std::uint64_t naive_success_before = 0;
  for (const auto& phase : phases) {
    for (std::uint32_t k = 0; k < phase.intervals; ++k) {
      ++interval;
      const auto announce_a =
          sender.announce(interval, common::bytes_of("telemetry"));
      const auto announce_n =
          naive_sender.announce(interval, common::bytes_of("telemetry"));
      adaptive.receive(announce_a, mid(interval));
      naive.receive(announce_n, mid(interval));
      for (std::size_t f = 0; f < phase.forged; ++f) {
        adaptive.receive(attacker.forge(interval), mid(interval));
        naive.receive(attacker.forge(interval), mid(interval));
      }
      (void)adaptive.receive(sender.reveal(interval), mid(interval + 1));
      const bool naive_ok =
          naive.receive(naive_sender.reveal(interval), mid(interval + 1))
              .has_value();
      adaptive.close_interval(1 + phase.forged);
      naive_cost += 4.0 * static_cast<double>(game::kMaxBuffers);
      if (!naive_ok) {
        naive_cost += 200.0;
        ++naive_losses;
      }
      (void)naive_success_before;
      if (interval % 10 == 0) {
        std::printf("%8u  %-16s  %5.3f  %11zu  %5.3f\n", interval,
                    phase.label, adaptive.estimated_p(),
                    adaptive.current_buffers(),
                    adaptive.stats().defense_share_x);
      }
    }
  }

  const auto& stats = adaptive.stats();
  std::cout << "\nresults over " << interval << " intervals:\n";
  std::cout << "  adaptive: defeated " << stats.attacks_defeated
            << ", lost " << stats.attacks_succeeded
            << ", realized avg cost/interval "
            << common::format_number(adaptive.average_cost()) << '\n';
  std::cout << "  naive (m=50): lost " << naive_losses
            << ", realized avg cost/interval "
            << common::format_number(naive_cost /
                                     static_cast<double>(interval))
            << '\n';
  std::cout << "\nanalytic reference (Fig. 8) at p=0.95: E="
            << common::format_number(
                   game::optimize_m(game::GameParams::paper_defaults(0.95, 1),
                                    game::OptimizeMode::kPaperInterior)
                       .cost)
            << "  N="
            << common::format_number(game::naive_cost(
                   game::GameParams::paper_defaults(0.95, 1)))
            << '\n';
  std::cout << "\nNote: the realized ledger charges k2*m while the analytic "
               "E also weighs the\nESS shares (X, Y); shapes match — the "
               "adaptive node spends far less in calm\nphases and survives "
               "the severe phase with near-naive reliability.\n";

  // End-of-run telemetry (both receivers aggregated) from the registry —
  // DAP counters, solver latencies, crypto primitive histograms.
  std::cout << "\nend-of-run telemetry:\n"
            << obs::Registry::global().report();
  return 0;
}
