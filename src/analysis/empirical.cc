#include "analysis/empirical.h"

#include <algorithm>
#include <vector>

#include "analysis/montecarlo.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"

namespace dap::analysis {

namespace {

struct ArmOutcome {
  double mean_cost = 0.0;
  std::uint64_t defended = 0;
  std::uint64_t lost_defended = 0;
  std::uint64_t lost_undefended = 0;
};

/// One population arm: every node defends with probability `X` using `m`
/// buffers and faces an active attacker with probability `Y`.
/// Everything the serial RNG decides for one (interval, node) cell.
struct NodePlan {
  bool attacked = false;
  bool defends = false;
  bool simulate = false;          // defends && attacked
  common::Rng round_rng{0};       // only meaningful when simulate
};

ArmOutcome run_arm(const EmpiricalCostConfig& config,
                   const game::GameParams& g, std::size_t m, double X,
                   double Y, common::Rng& rng) {
  // Plan pass: replay the legacy per-node draw order (attacked, defends,
  // then a fork only for defended-and-attacked cells) on the caller's
  // RNG serially, so the stream matches the historical loop bit for bit.
  std::vector<NodePlan> plan;
  plan.reserve(config.intervals * config.nodes);
  for (std::size_t interval = 0; interval < config.intervals; ++interval) {
    for (std::size_t node = 0; node < config.nodes; ++node) {
      NodePlan cell;
      cell.attacked = rng.bernoulli(Y);
      cell.defends = rng.bernoulli(X);
      if (cell.defends && cell.attacked) {
        cell.round_rng = rng.fork(interval * config.nodes + node);
        cell.simulate = true;
      }
      plan.push_back(cell);
    }
  }

  // The expensive flooded-round simulations fan out; each cell owns its
  // pre-forked RNG and result slot.
  const std::vector<char> defeated =
      common::parallel_map<char>(plan.size(), [&config, &plan, m](std::size_t i) {
        if (!plan[i].simulate) return static_cast<char>(0);
        return static_cast<char>(simulate_dap_round(
            config.p, m, protocol::BufferPolicy::kReservoir,
            FloodTiming::kInterleaved, config.authentic_copies,
            plan[i].round_rng));
      });

  // In-order reduction: the Welford cost stream sees the same values in
  // the same sequence as the serial loop.
  ArmOutcome out;
  common::RunningStats costs;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const NodePlan& cell = plan[i];
    double cost = 0.0;
    if (cell.defends) {
      ++out.defended;
      // Table I: Cd = k2 * m * X — the defence cost scales with the
      // defending share of the population.
      cost += g.k2 * static_cast<double>(m) * X;
      if (cell.attacked && defeated[i] != 0) {
        cost += g.Ra;
        ++out.lost_defended;
      }
    } else if (cell.attacked) {
      // No buffers: a flooded round is lost with certainty.
      cost += g.Ra;
      ++out.lost_undefended;
    }
    costs.add(cost);
  }
  out.mean_cost = costs.mean();
  return out;
}

}  // namespace

EmpiricalCostResult empirical_defense_cost(const EmpiricalCostConfig& config) {
  const auto g = game::GameParams::paper_defaults(config.p, 1);
  const auto optimised = game::optimize_m(g, config.mode, config.max_m);

  EmpiricalCostResult result;
  result.m_opt = optimised.m;
  result.ess = optimised.ess;
  result.analytic_E = optimised.cost;
  result.analytic_N = game::naive_cost(g, config.max_m);

  common::Rng rng(config.seed);

  // Game-guided arm at the optimised (m*, X, Y).
  const auto game_arm =
      run_arm(config, g, optimised.m, optimised.ess.point.x,
              optimised.ess.point.y, rng);
  result.empirical_E = game_arm.mean_cost;
  result.rounds_defended = game_arm.defended;
  result.rounds_lost_defended = game_arm.lost_defended;
  result.rounds_lost_undefended = game_arm.lost_undefended;

  // Naive arm: everyone defends with M buffers; the attacker share
  // settles at Y'(M) (clamped), matching the naive cost model.
  auto g_naive = g;
  g_naive.m = config.max_m;
  const double y_naive = std::min(
      1.0, g_naive.attack_success() * g.Ra / (g.k1 * g.xa));
  const auto naive_arm =
      run_arm(config, g, config.max_m, 1.0, y_naive, rng);
  result.empirical_N = naive_arm.mean_cost;
  return result;
}

}  // namespace dap::analysis
