#pragma once
// Monte-Carlo experiments on the DAP receiver under flooding (E7, E9):
// simulator-measured attack success vs the analytic p^m that the game
// model assumes, and the buffer-policy ablation.

#include <cstdint>
#include <vector>

#include "dap/dap.h"

namespace dap::analysis {

/// Where the attacker's burst sits relative to the authentic copies.
enum class FloodTiming : std::uint8_t {
  kBeforeAuthentic,  // forged burst first (defeats naive-drop)
  kAfterAuthentic,   // forged burst last (defeats always-replace)
  kInterleaved,      // forged copies mixed uniformly at random
};

struct MonteCarloConfig {
  double p = 0.8;     // forged fraction of the announcement flood
  std::size_t m = 4;  // receiver buffers
  /// Sender redundancy per interval. Reservoir selection keeps a uniform
  /// size-m subset, so the exclusion probability is hypergeometric; it
  /// converges to the paper's p^m only when the flood is much larger
  /// than m. The default keeps total copies >> m for typical (p, m);
  /// lower it deliberately to measure the small-flood deviation (which
  /// favours the defender — see EXPERIMENTS.md).
  std::size_t authentic_copies = 32;
  std::size_t trials = 2000;
  protocol::BufferPolicy policy = protocol::BufferPolicy::kReservoir;
  FloodTiming timing = FloodTiming::kInterleaved;
  std::uint64_t seed = 42;
};

struct MonteCarloResult {
  double measured_attack_success = 0.0;  // fraction of trials defeated
  double wilson_lo = 0.0;
  double wilson_hi = 1.0;
  double analytic = 0.0;  // p^m
  std::size_t trials = 0;
};

/// One full DAP round under flooding: the sender announces its MAC
/// `authentic_copies` times, the attacker floods forged announcements to
/// forged fraction `p`, the reveal follows. Returns true iff the attack
/// succeeded (strong authentication failed). The building block of every
/// Monte-Carlo experiment here.
bool simulate_dap_round(double p, std::size_t m,
                        protocol::BufferPolicy policy, FloodTiming timing,
                        std::size_t authentic_copies, common::Rng& rng);

/// Runs `trials` independent rounds of simulate_dap_round and aggregates
/// the attack-success rate with its confidence interval.
MonteCarloResult measure_attack_success(const MonteCarloConfig& config);

/// Convenience sweep over (p, m) grids.
struct SweepPoint {
  double p = 0.0;
  std::size_t m = 0;
  MonteCarloResult result;
};
std::vector<SweepPoint> attack_success_sweep(
    const std::vector<double>& ps, const std::vector<std::size_t>& ms,
    std::size_t trials, std::uint64_t seed,
    protocol::BufferPolicy policy = protocol::BufferPolicy::kReservoir,
    FloodTiming timing = FloodTiming::kInterleaved);

}  // namespace dap::analysis
