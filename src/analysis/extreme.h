#pragma once
// E15 — the abstract's headline claim measured: "evaluate the
// performance of the proposed algorithm under low QoS channels and
// severe DoS attacks ... works even in the extreme case".
//
// A (channel loss) x (attack level) grid of full DAP rounds: every
// packet — authentic announcements, the flood, and the reveals — is
// subject to independent loss; the attacker floods to forged fraction p
// among *delivered* announcements. Each cell reports the end-to-end
// authentication success rate and the analytic reference
//   P_auth ~ (1 - loss^a) * (1 - p^m) * (1 - loss^r)
// (at least one announcement copy delivered and kept, at least one
// reveal copy delivered), which the measured grid should track.

#include <cstdint>
#include <vector>

#include "dap/dap.h"

namespace dap::analysis {

struct ExtremeGridConfig {
  std::vector<double> losses = {0.0, 0.1, 0.3, 0.5};
  std::vector<double> ps = {0.5, 0.8, 0.9, 0.95};
  std::size_t m = 18;               // DAP buffers at the 1024-bit budget
  std::size_t announce_copies = 3;  // sender redundancy per interval
  std::size_t reveal_copies = 2;
  std::size_t trials = 600;
  std::uint64_t seed = 1337;
};

struct ExtremeCell {
  double loss = 0.0;
  double p = 0.0;
  double measured_success = 0.0;  // authenticated / trials
  double analytic = 0.0;          // reference above
};

std::vector<ExtremeCell> extreme_conditions_grid(
    const ExtremeGridConfig& config);

/// One lossy, flooded DAP round; true iff the message authenticated.
bool simulate_lossy_dap_round(double loss, double p, std::size_t m,
                              std::size_t announce_copies,
                              std::size_t reveal_copies, common::Rng& rng);

}  // namespace dap::analysis
