#include "analysis/chaos.h"

#include <algorithm>
#include <memory>
#include <string_view>

#include "common/bytes.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/mac.h"
#include "crypto/prf.h"
#include "dap/dap.h"
#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/medium.h"
#include "strategy/runner.h"
#include "tesla/teslapp.h"
#include "tesla/timesync.h"

namespace dap::analysis {

namespace {

constexpr wire::NodeId kDapSenderId = 1;
constexpr wire::NodeId kTppSenderId = 2;
constexpr sim::SimTime kLinkLatency = sim::kMillisecond;
constexpr sim::SimTime kMaxOffset = 2 * sim::kMillisecond;
/// Fast oscillators (even receivers) drift hard enough to break the
/// safety check mid-window; slow ones (odd receivers) stay inside the
/// drift allowance, which must keep late forgeries out regardless.
constexpr double kFastDriftPpm = 50000.0;
constexpr double kSlowDriftPpm = 2000.0;
/// Every forged payload carries this tag so acceptance is detectable.
constexpr std::string_view kForgedTag = "FORGED";

/// Per-receiver, per-protocol acceptance tracking.
struct Track {
  std::uint64_t authenticated = 0;
  std::uint64_t forged_accepted = 0;
  std::uint32_t first_tail_auth = 0;  // first authentic interval > window
};

void note_authenticated(Track& track, const tesla::AuthenticatedMessage& msg,
                        std::uint32_t fault_until) {
  const std::string_view payload(
      reinterpret_cast<const char*>(msg.message.data()),
      std::min(msg.message.size(), kForgedTag.size()));
  if (payload == kForgedTag) {
    ++track.forged_accepted;
    return;
  }
  ++track.authenticated;
  if (msg.interval > fault_until && track.first_tail_auth == 0) {
    track.first_tail_auth = msg.interval;
  }
}

ChaosReceiverReport make_report(const Track& track,
                                const tesla::ResyncStats& resync,
                                std::uint64_t admissions_shed,
                                std::uint64_t crash_restarts,
                                std::uint32_t fault_until) {
  ChaosReceiverReport report;
  report.authenticated = track.authenticated;
  report.forged_accepted = track.forged_accepted;
  report.resync_episodes = resync.desync_episodes;
  report.resync_attempts = resync.attempts;
  report.resync_successes = resync.successes;
  report.budget_exhausted = resync.budget_exhausted;
  report.admissions_shed = admissions_shed;
  report.crash_restarts = crash_restarts;
  report.reconverged = track.first_tail_auth != 0;
  if (report.reconverged) {
    report.reconverge_intervals = track.first_tail_auth - fault_until;
  }
  return report;
}

}  // namespace

ChaosReport run_chaos_soak(const ChaosConfig& config) {
  const std::uint32_t total = config.fault_until + config.reconverge_within;
  sim::EventQueue queue;
  common::Rng rng(config.seed);
  sim::Medium medium(queue, rng);
  const sim::IntervalSchedule sched(0, config.interval);

  const auto window = std::make_shared<sim::FaultSchedule>();
  window->add_window(sched.interval_start(config.fault_from),
                     sched.interval_start(config.fault_until));

  tesla::ResyncConfig resync;
  resync.enabled = true;
  resync.desync_threshold = 4;
  resync.retry_budget = 6;
  resync.backoff_initial = config.interval / 4;
  resync.backoff_max = 2 * config.interval;
  resync.drift_allowance_ppm = config.mix.clock_drift ? kSlowDriftPpm : 0.0;

  protocol::DapConfig dap_config;
  dap_config.sender_id = kDapSenderId;
  dap_config.chain_length = config.chain_length;
  dap_config.buffers = 4;
  dap_config.schedule = sched;
  dap_config.record_pool_limit = 64;
  dap_config.resync = resync;

  tesla::TeslaPpConfig tpp_config;
  tpp_config.sender_id = kTppSenderId;
  tpp_config.chain_length = config.chain_length;
  tpp_config.schedule = sched;
  tpp_config.record_pool_limit = 256;
  tpp_config.resync = resync;

  protocol::DapSender dap_sender(dap_config, rng.bytes(16));
  tesla::TeslaPpSender tpp_sender(tpp_config, rng.bytes(16));

  // Adversaries: memory-DoS flooders, a key guesser, and (scheduled
  // inline below) the late-key forger that replays disclosed keys.
  sim::FloodingForger dap_forger(kDapSenderId, dap_config.mac_size,
                                 rng.fork(101));
  sim::FloodingForger tpp_forger(kTppSenderId, tpp_config.mac_size,
                                 rng.fork(102));
  sim::KeyGuessForger key_guesser(kDapSenderId, dap_config.key_size,
                                  rng.fork(103));

  // --- Receiver population: every node runs both protocol stacks behind
  // one faulty link and one (possibly faulty) oscillator.
  std::vector<sim::FaultyClock> clocks;
  std::vector<std::unique_ptr<protocol::DapReceiver>> dap_rx;
  std::vector<std::unique_ptr<tesla::TeslaPpReceiver>> tpp_rx;
  std::vector<Track> dap_track(config.receivers);
  std::vector<Track> tpp_track(config.receivers);
  // One timesync client per stack (a handshake has in-flight state).
  std::vector<tesla::TimeSyncClient> dap_sync;
  std::vector<tesla::TimeSyncClient> tpp_sync;
  std::vector<tesla::TimeSyncResponder> responders;

  const bool responder_down_in_window =
      config.mix.blackout || config.mix.resync_outage;

  for (std::size_t r = 0; r < config.receivers; ++r) {
    sim::FaultyClock clock(sim::LooseClock(0, kMaxOffset));
    if (config.mix.clock_drift) {
      clock.add(sim::ClockDriftFault{
          r % 2 == 0 ? kFastDriftPpm : -kSlowDriftPpm,
          sched.interval_start(config.fault_from),
          sched.interval_start(config.fault_until)});
    }
    if (config.mix.clock_step) {
      clock.add(sim::ClockStepFault{
          static_cast<std::int64_t>(config.interval),
          sched.interval_start(config.fault_from)});
    }
    clocks.push_back(clock);

    const auto secret = common::bytes_of("node-secret-" + std::to_string(r));
    dap_rx.push_back(std::make_unique<protocol::DapReceiver>(
        dap_config, dap_sender.chain().commitment(), secret,
        clock.believed(), rng.fork(200 + r)));
    tpp_rx.push_back(std::make_unique<tesla::TeslaPpReceiver>(
        tpp_config, tpp_sender.chain().commitment(), secret,
        clock.believed()));

    const auto pairwise = common::bytes_of("pairwise-" + std::to_string(r));
    dap_sync.emplace_back(pairwise, config.seed * 1000 + r);
    tpp_sync.emplace_back(pairwise, config.seed * 2000 + r);
    responders.emplace_back(pairwise);
  }

  // Resync transport: a real handshake over the same (faulty) path, so a
  // blackout or responder outage genuinely fails the attempt.
  const auto make_handler = [&](std::vector<tesla::TimeSyncClient>& clients,
                                std::size_t r) {
    return [&, r](sim::SimTime local_now)
               -> std::optional<tesla::SyncCalibration> {
      if (responder_down_in_window && window->active(queue.now())) {
        return std::nullopt;
      }
      const auto request = clients[r].begin(local_now);
      const auto response =
          responders[r].respond(request, queue.now() + kLinkLatency);
      const sim::SimTime arrival =
          clocks[r].local_time(queue.now() + 2 * kLinkLatency);
      return clients[r].complete(response, std::max(arrival, local_now));
    };
  };

  for (std::size_t r = 0; r < config.receivers; ++r) {
    dap_rx[r]->set_resync_handler(make_handler(dap_sync, r));
    tpp_rx[r]->set_resync_handler(make_handler(tpp_sync, r));

    // Link stack: blackout closest to the wire, duplication outermost.
    std::unique_ptr<sim::Channel> channel =
        std::make_unique<sim::PerfectChannel>();
    if (config.mix.blackout) {
      channel = std::make_unique<sim::BlackoutChannel>(std::move(channel),
                                                       window, queue);
    }
    if (config.mix.duplication) {
      channel = std::make_unique<sim::DuplicateChannel>(std::move(channel),
                                                        0.5, window, &queue);
    }
    std::unique_ptr<sim::LatencyModel> latency;
    if (config.mix.jitter) {
      latency = std::make_unique<sim::JitterLink>(
          kLinkLatency, 3 * config.interval, window, &queue);
    } else {
      latency = std::make_unique<sim::FixedLatency>(kLinkLatency);
    }

    medium.attach(
        [&, r](const wire::Packet& packet, sim::SimTime now) {
          const sim::SimTime local = clocks[r].local_time(now);
          if (const auto* a = std::get_if<wire::MacAnnounce>(&packet)) {
            if (a->sender == kDapSenderId) {
              dap_rx[r]->receive(*a, local);
            } else {
              tpp_rx[r]->receive(*a, local);
            }
          } else if (const auto* m =
                         std::get_if<wire::MessageReveal>(&packet)) {
            if (m->sender == kDapSenderId) {
              if (const auto msg = dap_rx[r]->receive(*m, local)) {
                note_authenticated(dap_track[r], *msg, config.fault_until);
              }
            } else {
              for (const auto& msg : tpp_rx[r]->receive(*m, local)) {
                note_authenticated(tpp_track[r], msg, config.fault_until);
              }
            }
          }
        },
        std::move(channel), std::move(latency));
  }

  // --- Traffic script.
  const common::Bytes forged_msg = common::bytes_of("FORGED-late-key");
  for (std::uint32_t i = 1; i <= total; ++i) {
    const sim::SimTime t0 = sched.interval_start(i);
    // Authentic announces mid-interval (so clock faults genuinely push
    // them across the disclosure boundary), plus the flooding load.
    queue.schedule_at(t0 + config.interval / 2, [&, i] {
      medium.broadcast(wire::Packet{
          dap_sender.announce(i, common::bytes_of("dap-" + std::to_string(i)))});
      medium.broadcast(wire::Packet{
          tpp_sender.announce(i, common::bytes_of("tpp-" + std::to_string(i)))});
      dap_forger.flood(medium, i, config.forged_per_interval);
      for (std::size_t f = 0; f < config.forged_per_interval; ++f) {
        medium.broadcast(wire::Packet{tpp_forger.forge(i)});
      }
      medium.broadcast(
          wire::Packet{key_guesser.forge_reveal(i, forged_msg)});
    });
    // Authentic reveals early in the next interval.
    queue.schedule_at(sched.interval_start(i + 1) + 5 * kLinkLatency, [&, i] {
      medium.broadcast(wire::Packet{dap_sender.reveal(i)});
      medium.broadcast(wire::Packet{tpp_sender.reveal(i)});
    });
    // Late-key forgery: once K_i is public the adversary computes the
    // real MAC key, so only the loose-time safety check can reject the
    // pair. Any acceptance is a harness failure.
    queue.schedule_at(sched.interval_start(i + 1) + 8 * kLinkLatency, [&, i] {
      for (const auto& [sender, chain] :
           {std::pair<wire::NodeId, const crypto::KeyChain*>{
                kDapSenderId, &dap_sender.chain()},
            {kTppSenderId, &tpp_sender.chain()}}) {
        const common::Bytes& key = chain->key(i);
        wire::MacAnnounce announce;
        announce.sender = sender;
        announce.interval = i;
        announce.mac = crypto::compute_mac(
            crypto::prf_bytes(crypto::PrfDomain::kMacKey, key), forged_msg,
            sender == kDapSenderId ? dap_config.mac_size
                                   : tpp_config.mac_size);
        medium.broadcast(wire::Packet{announce});
        wire::MessageReveal reveal;
        reveal.sender = sender;
        reveal.interval = i;
        reveal.message = forged_msg;
        reveal.key = key;
        medium.broadcast(wire::Packet{reveal});
      }
    });
  }

  // Idle ticks drive retry/backoff even when a blackout starves the
  // receive paths.
  const sim::SimTime horizon = sched.interval_start(total + 1);
  for (sim::SimTime t = config.interval / 4; t < horizon;
       t += config.interval / 4) {
    queue.schedule_at(t, [&] {
      for (std::size_t r = 0; r < config.receivers; ++r) {
        const sim::SimTime local = clocks[r].local_time(queue.now());
        dap_rx[r]->tick(local);
        tpp_rx[r]->tick(local);
      }
    });
  }

  if (config.mix.crash_restart) {
    for (const std::uint32_t at : {config.fault_from + 2u,
                                   config.fault_from + 8u}) {
      // After the interval's announce, before its reveal: the crash
      // provably drops in-flight rounds.
      queue.schedule_at(
          sched.interval_start(at) + 3 * config.interval / 4, [&] {
            for (std::size_t r = 0; r < config.receivers; ++r) {
              const sim::SimTime local = clocks[r].local_time(queue.now());
              dap_rx[r]->crash_restart(local);
              tpp_rx[r]->crash_restart(local);
            }
          });
    }
  }

  queue.run_until(horizon);

  ChaosReport report;
  report.total_intervals = total;
  report.duplicated_frames = medium.duplicated_frames();
  report.all_reconverged = true;
  for (std::size_t r = 0; r < config.receivers; ++r) {
    report.dap.push_back(make_report(
        dap_track[r], dap_rx[r]->resync_stats(),
        dap_rx[r]->stats().admissions_shed, dap_rx[r]->stats().crash_restarts,
        config.fault_until));
    report.teslapp.push_back(make_report(
        tpp_track[r], tpp_rx[r]->resync_stats(),
        tpp_rx[r]->stats().admissions_shed, tpp_rx[r]->stats().crash_restarts,
        config.fault_until));
    report.forged_accepted_total += report.dap.back().forged_accepted +
                                    report.teslapp.back().forged_accepted;
    report.all_reconverged = report.all_reconverged &&
                             report.dap.back().reconverged &&
                             report.teslapp.back().reconverged;
  }
  return report;
}

std::vector<ChaosReport> run_chaos_soaks(
    const std::vector<ChaosConfig>& configs) {
  // Each soak is deterministic from its config alone (it seeds its own
  // RNGs), so the fan-out needs no plan pass.
  return common::parallel_map<ChaosReport>(
      configs.size(),
      [&configs](std::size_t i) { return run_chaos_soak(configs[i]); });
}

FleetChaosResult run_fleet_chaos_case(const FleetChaosCase& chaos_case,
                                      obs::Snapshotter* snapshotter) {
  FleetChaosResult result;
  result.label = chaos_case.label;
  if (chaos_case.spec.strategy.engaged()) {
    // Strategy extensions need their coordinators wired around the sim;
    // the runner owns that and reports the same FleetReport.
    result.report = strategy::run_scenario(chaos_case.spec, snapshotter).report;
  } else {
    fleet::FleetSim sim(chaos_case.spec);
    sim.set_snapshotter(snapshotter);
    result.report = sim.run();
  }
  const fleet::FleetReport& report = result.report;
  result.zero_forged = report.zero_forged();
  result.memory_bounded = report.guard_peak_entries <= report.guard_capacity;
  // Liveness: every depth back to full sentinel authentication within
  // the documented bound. An empty vector means the spec scheduled no
  // faults — nothing to reconverge from.
  result.reconverged = true;
  for (std::size_t d = 1; d < report.reconverge_intervals.size(); ++d) {
    const std::uint32_t took = report.reconverge_intervals[d];
    if (took == fleet::kNeverReconverged ||
        took > chaos_case.reconverge_within) {
      result.reconverged = false;
    }
  }
  return result;
}

std::vector<FleetChaosResult> run_fleet_chaos_cases(
    const std::vector<FleetChaosCase>& cases) {
  // Deterministic like run_chaos_soaks: each case seeds its own RNGs,
  // and per-slot telemetry merges in slot order.
  return common::parallel_map<FleetChaosResult>(
      cases.size(),
      [&cases](std::size_t i) { return run_fleet_chaos_case(cases[i]); });
}

namespace {

/// Chain 0 -> 1 -> 2 for the single-relay fault cases; the scenario ids
/// stay distinct because each case uses a different forged fraction.
fleet::ScenarioSpec fleet_chaos_chain(bool smoke) {
  fleet::ScenarioSpec spec;
  spec.name = "chaos";
  spec.seed = 7;
  spec.kind = fleet::TopologyKind::kTree;
  spec.depth = 2;
  spec.fanout = 1;
  spec.members_per_cohort = smoke ? 5 : 40;
  spec.buffers = 6;
  spec.intervals = 10;
  spec.interval_us = 200 * sim::kMillisecond;
  spec.hop.latency_us = sim::kMillisecond;
  return spec;
}

}  // namespace

std::vector<FleetChaosCase> standard_fleet_chaos_cases(bool smoke) {
  std::vector<FleetChaosCase> cases;

  // Relay crash with a skewed reboot: downstream recovers on traffic
  // alone; the crashed relay's cohort needs the full desync-detect ->
  // handshake -> recalibrate cycle (4 intervals covers it).
  {
    FleetChaosCase c;
    c.label = "crash-reboot";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.faults.relay_crashes.push_back(
        {1, 2, 2, 150 * sim::kMillisecond});
    c.reconverge_within = 4;
    cases.push_back(c);
  }

  // Healing partition: nothing desyncs, so reconvergence is immediate
  // once the edge is back.
  {
    FleetChaosCase c;
    c.label = "partition-heal";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.forged_fraction = 0.25;
    c.spec.faults.partitions.push_back({0, 1, 2, 3});
    c.reconverge_within = 1;
    cases.push_back(c);
  }

  // Degraded relay under a hard flood: the tight budget sheds the
  // forged burst, but authentic announces lead each burst and reveals
  // ride the refilled bucket, so the control stream stays live. Buffers
  // cover the full offer load (1 authentic + 9 forged) so the sentinel
  // reservoir never evicts the authentic copy.
  {
    FleetChaosCase c;
    c.label = "degraded-flood";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.forged_fraction = 0.9;
    c.spec.buffers = 12;
    c.spec.guard.burst_bits = 512.0;
    c.spec.faults.degraded.push_back({1, 0.005});  // 5 kbit/s
    c.reconverge_within = 1;
    cases.push_back(c);
  }

  // Guard saturation: a 16-slot tag store under the same flood across a
  // branching tree, plus a healing partition. Peak relay memory must
  // hold at <= capacity while the overflow surfaces as evictions.
  {
    FleetChaosCase c;
    c.label = "guard-saturation";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.fanout = 2;
    c.spec.members_per_cohort = smoke ? 10 : 60;
    c.spec.forged_fraction = 0.9;
    c.spec.buffers = 12;
    c.spec.guard.capacity = 16;
    c.spec.faults.partitions.push_back({0, 1, 2, 3});
    c.reconverge_within = 1;
    cases.push_back(c);
  }

  // Everything at once: crash + reboot skew, healing partition on the
  // other branch, degraded budget below it, moderate flood.
  {
    FleetChaosCase c;
    c.label = "combined";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.fanout = 2;
    c.spec.members_per_cohort = smoke ? 25 : 50;
    c.spec.forged_fraction = 0.6;
    c.spec.guard.capacity = 64;
    c.spec.guard.burst_bits = 8192.0;
    c.spec.faults.relay_crashes.push_back(
        {1, 2, 1, 150 * sim::kMillisecond});
    c.spec.faults.partitions.push_back({0, 2, 3, 4});
    c.spec.faults.degraded.push_back({2, 0.05});
    c.reconverge_within = 4;
    cases.push_back(c);
  }

  return cases;
}

std::vector<FleetChaosCase> strategy_fleet_chaos_cases(bool smoke) {
  std::vector<FleetChaosCase> cases;

  // Adaptive replicator attacker on a small-reservoir cohort: m = 2 and
  // F = 3 forged copies put the reservoir success at P = 0.5, so the
  // oracle's rest point is interior (~0.74) and the learner genuinely
  // has to track it while the fleet rejects every forged copy.
  {
    FleetChaosCase c;
    c.label = "adaptive-replicator";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.name = "strategy";
    c.spec.buffers = 2;
    c.spec.intervals = smoke ? 24 : 48;
    c.spec.forged_fraction = 0.75;
    c.spec.strategy.adaptive.enabled = true;
    cases.push_back(c);
  }

  // Sybil cohort: coordinated identities reveal one self-consistent
  // forged chain with staggered timing and distinct payloads, stressing
  // dedup and the tag store at every hop. The chain's anchor is wrong,
  // so weak authentication must reject all of it.
  {
    FleetChaosCase c;
    c.label = "sybil-cohort";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.name = "strategy";
    c.spec.strategy.sybil.enabled = true;
    c.spec.strategy.sybil.cohort = smoke ? 3 : 8;
    cases.push_back(c);
  }

  // Cooperative verification under the Sybil flood: drained cohorts
  // gossip invalid verdicts root-ward to leaf-ward, so followers skip
  // the redundant walks the forged chain forces.
  {
    FleetChaosCase c;
    c.label = "sybil-coop";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.name = "strategy";
    c.spec.strategy.sybil.enabled = true;
    c.spec.strategy.sybil.cohort = smoke ? 3 : 8;
    c.spec.strategy.coop.enabled = true;
    cases.push_back(c);
  }

  // Poisoned gossip: the first-drained cohort lies about its *valid*
  // walks. Skips only ever downgrade weak verdicts to rejections and
  // the sentinel verifies everything itself, so this is at worst a
  // liveness attack — audits catch it, and forged stays zero.
  {
    FleetChaosCase c;
    c.label = "coop-poisoned";
    c.spec = fleet_chaos_chain(smoke);
    c.spec.name = "strategy";
    c.spec.forged_fraction = 0.5;
    c.spec.strategy.coop.enabled = true;
    c.spec.strategy.coop.audit_fraction = 0.5;
    c.spec.strategy.coop.poisoned = true;
    cases.push_back(c);
  }

  return cases;
}

std::vector<std::pair<std::string, ChaosFaultMix>> standard_fault_mixes() {
  std::vector<std::pair<std::string, ChaosFaultMix>> mixes;
  mixes.emplace_back("jitter", ChaosFaultMix{.jitter = true});
  mixes.emplace_back("duplication", ChaosFaultMix{.duplication = true});
  mixes.emplace_back("blackout", ChaosFaultMix{.blackout = true});
  mixes.emplace_back("drift", ChaosFaultMix{.clock_drift = true});
  mixes.emplace_back("step", ChaosFaultMix{.clock_step = true,
                                           .resync_outage = true});
  mixes.emplace_back("crash", ChaosFaultMix{.crash_restart = true});
  mixes.emplace_back("combined",
                     ChaosFaultMix{.jitter = true, .duplication = true,
                                   .clock_drift = true,
                                   .crash_restart = true});
  return mixes;
}

}  // namespace dap::analysis
