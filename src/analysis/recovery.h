#pragma once
// E12 — the §III claims measured: EFTP shortens low-chain recovery by one
// high-level interval; EDRP authenticates CDMs instantly via the hash
// chain (keeping DoS filtering continuous) instead of waiting one
// interval for key disclosure.

#include <cstdint>

#include "crypto/keychain.h"

namespace dap::analysis {

struct RecoverySetup {
  crypto::LevelLink link = crypto::LevelLink::kOriginal;
  bool edrp = false;
  std::size_t high_length = 12;
  std::size_t low_length = 8;
  std::uint32_t low_disclosure_delay = 2;
  std::size_t cdm_copies = 3;    // sender redundancy per interval
  std::size_t cdm_buffers = 4;   // receiver reservoir slots
  /// All data-packet key disclosures of this high interval are lost from
  /// low index `disclosure_loss_from` onward, forcing the F01 recovery
  /// path for the tail packets.
  std::uint32_t measured_interval = 4;
  std::uint32_t disclosure_loss_from = 3;
  /// Forged CDM copies injected per interval (0 = no flooding).
  std::size_t forged_cdms_per_interval = 0;
  std::uint64_t seed = 7;
};

struct RecoveryReport {
  /// High interval at which the tail data of `measured_interval` finally
  /// authenticated (via the high-level key link). Original: i+2;
  /// EFTP: i+1.
  std::uint32_t data_recovered_at_interval = 0;
  /// Whether the recovery came through the F01 high-key path.
  bool recovered_via_high_key = false;
  /// Mean CDM authentication latency in high intervals (arrival ->
  /// authentic). Original: ~1; EDRP: ~0 for every CDM after the first.
  double mean_cdm_auth_latency = 0.0;
  std::uint64_t cdms_authenticated = 0;
  std::uint64_t cdm_hash_path = 0;     // authenticated instantly (EDRP)
  std::uint64_t forged_cdms_dropped = 0;
  std::uint64_t data_authenticated = 0;
  std::uint64_t data_sent = 0;
};

RecoveryReport run_recovery_experiment(const RecoverySetup& setup);

}  // namespace dap::analysis
