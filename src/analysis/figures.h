#pragma once
// Analytic series behind each reproduced figure. Bench binaries print
// these; tests assert their shapes. Everything here is deterministic.

#include <cstddef>
#include <vector>

#include "game/ess.h"
#include "game/optimizer.h"
#include "game/params.h"
#include "game/replicator.h"

namespace dap::analysis {

// ---------------------------------------------------------------- Fig. 5
// Attacker bandwidth fraction x_m = P^(1/m)·(1-x_d) required per target
// attack success P, for the four (protocol, memory budget) combinations
// of §VI-A: TESLA++ records of 280 bits, DAP records of 56 bits, budgets
// 1024 and 512 (same unit as the records; see DESIGN.md).
struct Fig5Settings {
  double xd = 0.2;
  std::size_t mem_large = 1024;
  std::size_t mem_small = 512;
  std::size_t record_bits_teslapp = 280;
  std::size_t record_bits_dap = 56;
};

struct Fig5Row {
  double attack_success_target = 0.0;  // P
  double xm_teslapp_large = 0.0;
  double xm_teslapp_small = 0.0;
  double xm_dap_large = 0.0;
  double xm_dap_small = 0.0;
};

std::vector<Fig5Row> fig5_series(const Fig5Settings& settings,
                                 std::size_t points = 19);

/// Buffer counts implied by the Fig. 5 settings (M1/M2 in the paper).
struct Fig5Buffers {
  std::size_t teslapp_large = 0, teslapp_small = 0;
  std::size_t dap_large = 0, dap_small = 0;
};
Fig5Buffers fig5_buffers(const Fig5Settings& settings);

// ---------------------------------------------------------------- Fig. 6
// ESS regime of every m in [1, max_m] at fixed p, plus representative
// Euler trajectories from (0.5, 0.5) with the paper's dt = 0.01.
struct RegimeRow {
  std::size_t m = 0;
  game::Ess ess;             // closed-form classification
  game::State simulated{};   // Euler final state
  std::size_t steps = 0;     // steps to convergence
  bool agrees = false;       // |closed-form - simulated| < tol
};

std::vector<RegimeRow> fig6_regime_scan(double p, std::size_t max_m,
                                        double tol = 5e-3);

/// One trajectory (for the four panel plots); dt and start as the paper.
game::Trajectory fig6_trajectory(double p, std::size_t m,
                                 std::size_t record_every = 10);

// ---------------------------------------------------------------- Fig. 7
struct Fig7Row {
  double p = 0.0;
  std::size_t m_opt = 0;
  game::EssKind kind = game::EssKind::kInterior;
  double cost = 0.0;
};

std::vector<Fig7Row> fig7_series(
    const std::vector<double>& ps,
    game::OptimizeMode mode = game::OptimizeMode::kPaperInterior,
    std::size_t max_m = game::kMaxBuffers);

// ---------------------------------------------------------------- Fig. 8
struct Fig8Row {
  double p = 0.0;
  std::size_t m_opt = 0;
  double cost_game = 0.0;   // E at the optimised ESS
  double cost_naive = 0.0;  // N with fixed m = M
};

std::vector<Fig8Row> fig8_series(
    const std::vector<double>& ps,
    game::OptimizeMode mode = game::OptimizeMode::kPaperInterior,
    std::size_t max_m = game::kMaxBuffers);

// ------------------------------------------------------ §VI-A memory (E6)
struct MemoryRow {
  const char* scheme = "";
  std::size_t record_bits = 0;
  std::size_t buffers_at_1024 = 0;
  std::size_t buffers_at_512 = 0;
  double saving_vs_full = 0.0;  // fraction of memory saved vs 280-bit rows
};

std::vector<MemoryRow> memory_table();

/// The default p sweep used by Figs. 7/8 benches.
std::vector<double> default_p_sweep();

}  // namespace dap::analysis
