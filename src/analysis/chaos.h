#pragma once
// Chaos soak: seeded fault schedules driven through concurrent DAP and
// TESLA++ sessions over the broadcast medium.
//
// Each run wires `receivers` nodes, every one running both protocol
// stacks behind the same faulty link and the same (possibly faulty)
// oscillator, then scripts a fault window [fault_from, fault_until) in
// interval space while a flooding/forging adversary stays active the
// whole time. Two invariants are asserted by the harness on the report:
//
//   1. Safety: no forged message EVER authenticates, under any fault mix
//      (forged payloads are tagged so acceptance is detectable).
//   2. Liveness: every receiver authenticates fresh authentic traffic
//      within `reconverge_within` intervals after the faults clear.
//
// The adversary includes a *late-key* forger: once K_i is public it can
// compute the real MAC key, so only the receiver's loose-time safety
// check (plus the drift-allowance margin) stands between it and a clean
// forgery — exactly the failure mode clock faults try to open.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/scenario.h"
#include "sim/time.h"

namespace dap::analysis {

struct ChaosFaultMix {
  bool jitter = false;        // per-link delay jitter (reorders frames)
  bool duplication = false;   // frame duplication on every link
  bool blackout = false;      // total link outage over the fault window
  bool clock_drift = false;   // oscillator skew (fast and slow receivers)
  bool clock_step = false;    // forward clock step at the window start
  bool crash_restart = false; // receivers lose volatile state mid-window
  /// Timesync responder unreachable during the window: resync attempts
  /// fail, exercising backoff and the per-episode retry budget.
  bool resync_outage = false;
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::size_t receivers = 3;
  std::size_t chain_length = 48;
  sim::SimTime interval = 200 * sim::kMillisecond;
  /// Forged MAC announces injected per interval (memory-DoS pressure).
  std::size_t forged_per_interval = 2;
  ChaosFaultMix mix{};
  /// Fault window in interval indices: [fault_from, fault_until).
  std::uint32_t fault_from = 12;
  std::uint32_t fault_until = 28;
  /// Liveness bound: every receiver must authenticate authentic traffic
  /// within this many intervals after the window closes.
  std::uint32_t reconverge_within = 12;
};

struct ChaosReceiverReport {
  std::uint64_t authenticated = 0;     // authentic messages accepted
  std::uint64_t forged_accepted = 0;   // MUST stay zero
  std::uint64_t resync_episodes = 0;
  std::uint64_t resync_attempts = 0;
  std::uint64_t resync_successes = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t admissions_shed = 0;
  std::uint64_t crash_restarts = 0;
  bool reconverged = false;
  /// Intervals from window close to the first post-fault authentication
  /// (0 when the receiver never reconverged).
  std::uint32_t reconverge_intervals = 0;
};

struct ChaosReport {
  std::vector<ChaosReceiverReport> dap;
  std::vector<ChaosReceiverReport> teslapp;
  std::uint64_t forged_accepted_total = 0;
  std::uint64_t duplicated_frames = 0;
  std::uint64_t total_intervals = 0;
  bool all_reconverged = false;
};

ChaosReport run_chaos_soak(const ChaosConfig& config);

/// Runs several independent soaks (typically one per fault mix) across
/// the parallel engine; slot i is run_chaos_soak(configs[i]), and every
/// run's telemetry merges into the caller's registry in slot order.
std::vector<ChaosReport> run_chaos_soaks(
    const std::vector<ChaosConfig>& configs);

/// The named fault mixes the soak suite iterates: each single-fault
/// scenario plus a combined one.
std::vector<std::pair<std::string, ChaosFaultMix>> standard_fault_mixes();

// ---- Fleet-level chaos: relay faults over multi-hop topologies --------
//
// The single-link soak above stresses one receiver stack; the fleet
// variant drives a whole ScenarioSpec — relay crash/restart, healing
// link partitions, degraded-relay budgets — through FleetSim and holds
// it to three invariants:
//
//   1. Safety: forged_accepted == 0, under every fault mix.
//   2. Bounded relays: guard_peak_entries <= guard_capacity however
//      hard the flood pushes (the O(capacity) relay data plane).
//   3. Liveness: every topology depth reconverges (all of its cohorts
//      sentinel-authenticate in the same interval again) within the
//      case's documented bound after the last fault clears.

struct FleetChaosCase {
  std::string label;
  fleet::ScenarioSpec spec;
  /// Per-depth reconvergence bound, in intervals past the fault
  /// horizon (spec.faults.last_clear_interval()).
  std::uint32_t reconverge_within = 6;
};

struct FleetChaosResult {
  std::string label;
  fleet::FleetReport report;
  bool zero_forged = false;
  bool memory_bounded = false;
  bool reconverged = false;
  [[nodiscard]] bool ok() const noexcept {
    return zero_forged && memory_bounded && reconverged;
  }
};

/// Runs one fleet chaos case and evaluates the three invariants. An
/// optional snapshotter samples the ambient registry at drain cadence
/// (it must outlive the call). Specs with strategy extensions engaged
/// are routed through strategy::run_scenario, so the adaptive attacker,
/// Sybil cohort, and cooperative verification all run — and are held to
/// the same safety bar as the relay-fault mixes.
FleetChaosResult run_fleet_chaos_case(const FleetChaosCase& chaos_case,
                                      obs::Snapshotter* snapshotter = nullptr);

/// Fans the cases across the parallel engine (slot order preserved,
/// telemetry merges deterministically like run_chaos_soaks).
std::vector<FleetChaosResult> run_fleet_chaos_cases(
    const std::vector<FleetChaosCase>& cases);

/// The named relay-fault scenarios the fleet soak iterates: crash with
/// reboot skew, healing partition, degraded budget under flood, guard
/// saturation, and the combined mix. Smoke shrinks cohorts, not the
/// fault plans — every mix still runs.
std::vector<FleetChaosCase> standard_fleet_chaos_cases(bool smoke);

/// Strategy-adversary soak cases: the adaptive replicator attacker, a
/// Sybil cohort revealing a shared forged chain across relay hops,
/// cooperative verification under that Sybil flood, and the poisoned
/// gossip variant. None schedule relay faults (reconvergence is
/// trivially satisfied); the load-bearing invariants are zero forged
/// authentications and bounded relay memory under every adversary.
std::vector<FleetChaosCase> strategy_fleet_chaos_cases(bool smoke);

}  // namespace dap::analysis
