#include "analysis/figures.h"

#include <cmath>

#include "common/parallel.h"
#include "common/stats.h"
#include "crypto/mac.h"
#include "game/bandwidth.h"

namespace dap::analysis {

Fig5Buffers fig5_buffers(const Fig5Settings& s) {
  Fig5Buffers b;
  b.teslapp_large = game::buffers_for_memory(s.mem_large,
                                             s.record_bits_teslapp);
  b.teslapp_small = game::buffers_for_memory(s.mem_small,
                                             s.record_bits_teslapp);
  b.dap_large = game::buffers_for_memory(s.mem_large, s.record_bits_dap);
  b.dap_small = game::buffers_for_memory(s.mem_small, s.record_bits_dap);
  return b;
}

std::vector<Fig5Row> fig5_series(const Fig5Settings& settings,
                                 std::size_t points) {
  const Fig5Buffers b = fig5_buffers(settings);
  std::vector<Fig5Row> rows;
  for (double P : common::linspace(0.05, 0.95, points)) {
    Fig5Row row;
    row.attack_success_target = P;
    row.xm_teslapp_large =
        game::attacker_bandwidth_required(P, b.teslapp_large, settings.xd);
    row.xm_teslapp_small =
        game::attacker_bandwidth_required(P, b.teslapp_small, settings.xd);
    row.xm_dap_large =
        game::attacker_bandwidth_required(P, b.dap_large, settings.xd);
    row.xm_dap_small =
        game::attacker_bandwidth_required(P, b.dap_small, settings.xd);
    rows.push_back(row);
  }
  return rows;
}

std::vector<RegimeRow> fig6_regime_scan(double p, std::size_t max_m,
                                        double tol) {
  std::vector<RegimeRow> rows;
  rows.reserve(max_m);
  for (std::size_t m = 1; m <= max_m; ++m) {
    const auto g = game::GameParams::paper_defaults(p, m);
    RegimeRow row;
    row.m = m;
    row.ess = game::solve_ess(g);

    game::IntegrationOptions options;
    options.method = game::Integrator::kEuler;
    options.dt = 0.01;
    options.max_steps = 2000000;
    options.convergence_eps = 1e-12;
    options.record_every = 0;
    const auto traj = game::integrate(g, {0.5, 0.5}, options);
    row.simulated = traj.final;
    row.steps = traj.steps;
    row.agrees = std::abs(traj.final.x - row.ess.point.x) < tol &&
                 std::abs(traj.final.y - row.ess.point.y) < tol;
    rows.push_back(row);
  }
  return rows;
}

game::Trajectory fig6_trajectory(double p, std::size_t m,
                                 std::size_t record_every) {
  const auto g = game::GameParams::paper_defaults(p, m);
  game::IntegrationOptions options;
  options.method = game::Integrator::kEuler;
  options.dt = 0.01;
  options.max_steps = 500000;
  options.convergence_eps = 1e-10;
  options.record_every = record_every;
  return game::integrate(g, {0.5, 0.5}, options);
}

std::vector<Fig7Row> fig7_series(const std::vector<double>& ps,
                                 game::OptimizeMode mode, std::size_t max_m) {
  // Every p's optimize_m is an independent deterministic solve; the
  // inner cost_curve detects the parallel region and runs inline.
  return common::parallel_map<Fig7Row>(
      ps.size(), [&ps, mode, max_m](std::size_t i) {
        const double p = ps[i];
        const auto g = game::GameParams::paper_defaults(p, 1);
        const auto result = game::optimize_m(g, mode, max_m);
        return Fig7Row{p, result.m, result.ess.kind, result.cost};
      });
}

std::vector<Fig8Row> fig8_series(const std::vector<double>& ps,
                                 game::OptimizeMode mode, std::size_t max_m) {
  return common::parallel_map<Fig8Row>(
      ps.size(), [&ps, mode, max_m](std::size_t i) {
        const double p = ps[i];
        const auto g = game::GameParams::paper_defaults(p, 1);
        const auto result = game::optimize_m(g, mode, max_m);
        return Fig8Row{p, result.m, result.cost, game::naive_cost(g, max_m)};
      });
}

std::vector<MemoryRow> memory_table() {
  const auto full = static_cast<double>(crypto::full_record_bits());
  std::vector<MemoryRow> rows;
  const auto add = [&rows, full](const char* scheme, std::size_t bits) {
    MemoryRow row;
    row.scheme = scheme;
    row.record_bits = bits;
    row.buffers_at_1024 = game::buffers_for_memory(1024, bits);
    row.buffers_at_512 = game::buffers_for_memory(512, bits);
    row.saving_vs_full = 1.0 - static_cast<double>(bits) / full;
    rows.push_back(row);
  };
  add("TESLA (message+MAC buffered)", crypto::full_record_bits());
  add("TESLA++ (per-paper accounting)", 280);
  add("DAP (uMAC+index)", crypto::dap_record_bits());
  return rows;
}

std::vector<double> default_p_sweep() {
  std::vector<double> ps;
  for (double p = 0.50; p < 0.935; p += 0.02) ps.push_back(p);
  // Dense around the regime flip the paper reports at p ~ 0.94.
  for (double p = 0.935; p <= 0.991; p += 0.005) ps.push_back(p);
  return ps;
}

}  // namespace dap::analysis
