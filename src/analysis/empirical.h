#pragma once
// Empirical Fig. 8: the defence-cost comparison with attack outcomes
// *measured* on real DAP receivers instead of assumed to be p^m.
//
// For a given attack level p, the game optimiser picks (m*, ESS (X, Y)).
// A population of nodes then lives through `intervals` rounds: each node
// defends with probability X (the ESS mixed strategy) and faces an
// active attacker with probability Y. Defending nodes run a genuine DAP
// round (reservoir buffers, μMAC strong auth) against a real flood;
// non-defending nodes lose any attacked round. Costs follow the paper's
// model: a defending node pays k2·m·X (the population-scaled defence
// cost of Table I) and any node whose round was lost pays Ra.
//
// The naive arm defends every node with m = M buffers.

#include <cstdint>

#include "game/ess.h"
#include "game/optimizer.h"

namespace dap::analysis {

struct EmpiricalCostConfig {
  double p = 0.8;
  std::size_t nodes = 100;
  std::size_t intervals = 40;
  std::size_t max_m = game::kMaxBuffers;
  game::OptimizeMode mode = game::OptimizeMode::kPaperInterior;
  /// Flood size scaling: authentic copies per round (large enough that
  /// the reservoir's hypergeometric matches the model's p^m regime).
  std::size_t authentic_copies = 24;
  std::uint64_t seed = 11;
};

struct EmpiricalCostResult {
  std::size_t m_opt = 0;
  game::Ess ess;
  double analytic_E = 0.0;   // the paper's closed-form cost at the ESS
  double empirical_E = 0.0;  // measured mean cost per node per interval
  double analytic_N = 0.0;
  double empirical_N = 0.0;
  std::uint64_t rounds_defended = 0;
  std::uint64_t rounds_lost_defended = 0;    // attack beat the buffers
  std::uint64_t rounds_lost_undefended = 0;  // no buffers, attacked
};

EmpiricalCostResult empirical_defense_cost(const EmpiricalCostConfig& config);

}  // namespace dap::analysis
