#include "analysis/extreme.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "sim/adversary.h"

namespace dap::analysis {

bool simulate_lossy_dap_round(double loss, double p, std::size_t m,
                              std::size_t announce_copies,
                              std::size_t reveal_copies, common::Rng& rng) {
  protocol::DapConfig config;
  config.buffers = m;
  config.chain_length = 2;
  config.schedule = sim::IntervalSchedule(0, sim::kSecond);

  protocol::DapSender sender(config, rng.bytes(16));
  protocol::DapReceiver receiver(config, sender.chain().commitment(),
                                 rng.bytes(16), sim::LooseClock(0, 0),
                                 rng.fork(1));
  sim::FloodingForger forger(config.sender_id, config.mac_size, rng.fork(2));

  const wire::MacAnnounce authentic =
      sender.announce(1, common::bytes_of("report"));

  // Delivered authentic copies after channel loss.
  std::size_t delivered_authentic = 0;
  for (std::size_t c = 0; c < announce_copies; ++c) {
    if (!rng.bernoulli(loss)) ++delivered_authentic;
  }
  // The attacker floods relative to what actually reaches the receiver
  // (it pushes enough volume that its own losses do not matter).
  const std::size_t forged = sim::FloodingForger::copies_for_fraction(
      std::max<std::size_t>(delivered_authentic, 1), p);

  std::vector<wire::MacAnnounce> arriving;
  arriving.reserve(delivered_authentic + forged);
  for (std::size_t c = 0; c < delivered_authentic; ++c) {
    arriving.push_back(authentic);
  }
  for (std::size_t f = 0; f < forged; ++f) {
    arriving.push_back(forger.forge(1));
  }
  for (std::size_t i = arriving.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform(0, i - 1));
    std::swap(arriving[i - 1], arriving[j]);
  }
  const sim::SimTime mid = sim::kSecond / 2;
  for (const auto& packet : arriving) receiver.receive(packet, mid);

  // Reveal phase: each repeated reveal is independently lossy.
  const auto reveal = sender.reveal(1);
  for (std::size_t r = 0; r < reveal_copies; ++r) {
    if (rng.bernoulli(loss)) continue;
    if (receiver.receive(reveal, sim::kSecond + mid)) return true;
    // A delivered reveal consumes the round whether or not it matched.
    return false;
  }
  return false;  // every reveal copy lost
}

std::vector<ExtremeCell> extreme_conditions_grid(
    const ExtremeGridConfig& config) {
  // Flatten the (loss, p, trial) nest: the per-trial RNGs are forked
  // serially in the legacy (cell-major, trial-minor) order, then every
  // trial fans out into its own slot.
  struct Trial {
    std::size_t cell = 0;
    double loss = 0.0;
    double p = 0.0;
    common::Rng rng{0};
  };
  common::Rng master(config.seed);
  const std::size_t cell_count = config.losses.size() * config.ps.size();
  std::vector<Trial> trials;
  trials.reserve(cell_count * config.trials);
  std::size_t cell_index = 0;
  for (double loss : config.losses) {
    for (double p : config.ps) {
      for (std::size_t t = 0; t < config.trials; ++t) {
        Trial trial;
        trial.cell = cell_index;
        trial.loss = loss;
        trial.p = p;
        trial.rng = master.fork((cell_index << 32) ^
                                static_cast<std::uint64_t>(t));
        trials.push_back(trial);
      }
      ++cell_index;
    }
  }

  const std::vector<char> won = common::parallel_map<char>(
      trials.size(), [&config, &trials](std::size_t i) {
        return static_cast<char>(simulate_lossy_dap_round(
            trials[i].loss, trials[i].p, config.m, config.announce_copies,
            config.reveal_copies, trials[i].rng));
      });

  std::vector<std::size_t> successes(cell_count, 0);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (won[i] != 0) ++successes[trials[i].cell];
  }

  std::vector<ExtremeCell> grid;
  grid.reserve(cell_count);
  cell_index = 0;
  for (double loss : config.losses) {
    for (double p : config.ps) {
      ExtremeCell cell;
      cell.loss = loss;
      cell.p = p;
      cell.measured_success = static_cast<double>(successes[cell_index]) /
                              static_cast<double>(config.trials);
      const double m = static_cast<double>(config.m);
      cell.analytic =
          (1.0 - std::pow(loss, static_cast<double>(config.announce_copies))) *
          (1.0 - std::pow(p, m)) *
          (1.0 - std::pow(loss, static_cast<double>(config.reveal_copies)));
      grid.push_back(cell);
      ++cell_index;
    }
  }
  return grid;
}

}  // namespace dap::analysis
