#include "analysis/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/stats.h"
#include "sim/adversary.h"

namespace dap::analysis {

bool simulate_dap_round(double p, std::size_t m,
                        protocol::BufferPolicy policy, FloodTiming timing,
                        std::size_t authentic_copies, common::Rng& rng) {
  protocol::DapConfig dap_config;
  dap_config.buffers = m;
  dap_config.policy = policy;
  dap_config.chain_length = 2;
  dap_config.disclosure_delay = 1;
  dap_config.schedule = sim::IntervalSchedule(0, sim::kSecond);

  const std::size_t forged =
      sim::FloodingForger::copies_for_fraction(authentic_copies, p);

  protocol::DapSender sender(dap_config, rng.bytes(16));
  protocol::DapReceiver receiver(dap_config, sender.chain().commitment(),
                                 rng.bytes(16), sim::LooseClock(0, 0),
                                 rng.fork(1));
  sim::FloodingForger forger(dap_config.sender_id, dap_config.mac_size,
                             rng.fork(2));

  const wire::MacAnnounce authentic =
      sender.announce(1, common::bytes_of("crowdsensing-report"));
  std::vector<wire::MacAnnounce> flood;
  flood.reserve(authentic_copies + forged);
  switch (timing) {
    case FloodTiming::kBeforeAuthentic:
      for (std::size_t i = 0; i < forged; ++i) flood.push_back(forger.forge(1));
      for (std::size_t i = 0; i < authentic_copies; ++i) {
        flood.push_back(authentic);
      }
      break;
    case FloodTiming::kAfterAuthentic:
      for (std::size_t i = 0; i < authentic_copies; ++i) {
        flood.push_back(authentic);
      }
      for (std::size_t i = 0; i < forged; ++i) flood.push_back(forger.forge(1));
      break;
    case FloodTiming::kInterleaved: {
      for (std::size_t i = 0; i < authentic_copies; ++i) {
        flood.push_back(authentic);
      }
      for (std::size_t i = 0; i < forged; ++i) flood.push_back(forger.forge(1));
      // Fisher-Yates with the caller's RNG keeps runs reproducible.
      for (std::size_t i = flood.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(rng.uniform(0, i - 1));
        std::swap(flood[i - 1], flood[j]);
      }
      break;
    }
  }

  const sim::SimTime mid_interval = sim::kSecond / 2;
  for (const auto& packet : flood) {
    receiver.receive(packet, mid_interval);
  }
  const auto result =
      receiver.receive(sender.reveal(1), sim::kSecond + mid_interval);
  return !result.has_value();  // attack succeeded
}

MonteCarloResult measure_attack_success(const MonteCarloConfig& config) {
  // Plan-then-parallelize: Rng::fork mutates the parent, so the per-trial
  // generators are derived serially in the legacy fork order, then the
  // (independent) trials fan out with each outcome landing in its own
  // slot. The in-order reduction makes the estimator bitwise identical
  // to the historical serial loop at any thread count.
  common::Rng master(config.seed);
  std::vector<common::Rng> trial_rngs;
  trial_rngs.reserve(config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    trial_rngs.push_back(master.fork(trial));
  }
  const std::vector<char> defeated = common::parallel_map<char>(
      config.trials, [&config, &trial_rngs](std::size_t trial) {
        return static_cast<char>(simulate_dap_round(
            config.p, config.m, config.policy, config.timing,
            config.authentic_copies, trial_rngs[trial]));
      });
  common::RateEstimator estimator;
  for (const char outcome : defeated) {
    estimator.add(outcome != 0);
  }

  MonteCarloResult out;
  out.measured_attack_success = estimator.rate();
  const auto [lo, hi] = estimator.wilson95();
  out.wilson_lo = lo;
  out.wilson_hi = hi;
  out.analytic = std::pow(config.p, static_cast<double>(config.m));
  out.trials = estimator.trials();
  return out;
}

std::vector<SweepPoint> attack_success_sweep(
    const std::vector<double>& ps, const std::vector<std::size_t>& ms,
    std::size_t trials, std::uint64_t seed, protocol::BufferPolicy policy,
    FloodTiming timing) {
  // Grid configs (and their salted seeds) are laid out serially in the
  // legacy iteration order; the independent cells then fan out. Inner
  // measure_attack_success calls detect the parallel region and run
  // their trial loops inline.
  std::vector<MonteCarloConfig> configs;
  configs.reserve(ps.size() * ms.size());
  std::vector<std::pair<double, std::size_t>> cells;
  cells.reserve(ps.size() * ms.size());
  std::uint64_t salt = 0;
  for (double p : ps) {
    for (std::size_t m : ms) {
      MonteCarloConfig config;
      config.p = p;
      config.m = m;
      config.trials = trials;
      config.seed = seed + (++salt) * 0x9e3779b97f4a7c15ULL;
      config.policy = policy;
      config.timing = timing;
      configs.push_back(config);
      cells.emplace_back(p, m);
    }
  }
  return common::parallel_map<SweepPoint>(
      configs.size(), [&configs, &cells](std::size_t i) {
        return SweepPoint{cells[i].first, cells[i].second,
                          measure_attack_success(configs[i])};
      });
}

}  // namespace dap::analysis
