#include "analysis/recovery.h"

#include <map>
#include <set>

#include "common/rng.h"
#include "tesla/multilevel.h"

namespace dap::analysis {

RecoveryReport run_recovery_experiment(const RecoverySetup& setup) {
  tesla::MultiLevelConfig config;
  config.high_length = setup.high_length;
  config.low_length = setup.low_length;
  config.low_disclosure_delay = setup.low_disclosure_delay;
  config.cdm_buffers = setup.cdm_buffers;
  config.link = setup.link;
  config.edrp = setup.edrp;
  config.high_schedule = sim::IntervalSchedule(
      0, static_cast<sim::SimTime>(setup.low_length) * sim::kSecond);

  common::Rng rng(setup.seed);
  tesla::MultiLevelSender sender(config, rng.bytes(16));
  tesla::MultiLevelReceiver receiver(config, sender.bootstrap(),
                                     sim::LooseClock(0, 0), rng.fork(1));

  RecoveryReport report;

  // Tail data of the measured interval whose within-chain disclosures
  // never arrive; they must recover through the high-level key link.
  std::set<std::uint32_t> awaiting_tail;

  std::map<std::uint32_t, std::uint32_t> cdm_arrival_interval;
  double latency_sum = 0.0;

  const auto note_events =
      [&](const tesla::MultiLevelEvents& events, std::uint32_t now_interval) {
        for (const auto& cdm : events.cdms) {
          ++report.cdms_authenticated;
          if (cdm.path == tesla::CdmAuthPath::kHashChain) {
            ++report.cdm_hash_path;
          }
          const auto it = cdm_arrival_interval.find(cdm.high_interval);
          if (it != cdm_arrival_interval.end()) {
            latency_sum += static_cast<double>(now_interval - it->second);
          }
        }
        for (const auto& recovery : events.recoveries) {
          if (recovery.high_interval == setup.measured_interval) {
            report.recovered_via_high_key = true;
          }
        }
        for (const auto& message : events.messages) {
          ++report.data_authenticated;
          if (awaiting_tail.erase(message.interval) > 0 &&
              awaiting_tail.empty()) {
            report.data_recovered_at_interval = now_interval;
          }
        }
      };

  const sim::SimTime low_duration = config.low_schedule().duration();

  for (std::uint32_t i = 1; i <= setup.high_length; ++i) {
    const sim::SimTime interval_start = config.high_schedule.interval_start(i);

    // --- CDM phase: authentic copies interleaved with forged floods.
    const wire::CdmPacket& authentic = sender.cdm(i);
    cdm_arrival_interval.emplace(i, i);
    std::vector<wire::CdmPacket> cdm_flood;
    for (std::size_t c = 0; c < setup.cdm_copies; ++c) {
      cdm_flood.push_back(authentic);
    }
    for (std::size_t f = 0; f < setup.forged_cdms_per_interval; ++f) {
      wire::CdmPacket forged = authentic;  // replay the disclosed key
      forged.low_commitment = rng.bytes(config.key_size);
      forged.mac = rng.bytes(config.mac_size);
      if (config.edrp) forged.next_cdm_image = rng.bytes(32);
      cdm_flood.push_back(forged);
    }
    for (std::size_t k = cdm_flood.size(); k > 1; --k) {
      const auto j = static_cast<std::size_t>(rng.uniform(0, k - 1));
      std::swap(cdm_flood[k - 1], cdm_flood[j]);
    }
    const sim::SimTime cdm_time = interval_start + low_duration / 2;
    for (const auto& packet : cdm_flood) {
      note_events(receiver.receive(packet, cdm_time), i);
    }

    // --- Data phase.
    for (std::uint32_t j = 1; j <= setup.low_length; ++j) {
      wire::TeslaPacket data =
          sender.make_data_packet(i, j, common::bytes_of("reading"));
      ++report.data_sent;
      if (i == setup.measured_interval && j >= setup.disclosure_loss_from) {
        data.disclosed_interval = 0;
        data.disclosed_key.clear();
      }
      if (i == setup.measured_interval &&
          j + config.low_disclosure_delay >= setup.disclosure_loss_from) {
        // This packet's key would only have been disclosed by a packet at
        // or beyond the loss point: it will need the high-key path.
        awaiting_tail.insert(data.interval);
      }
      const sim::SimTime data_time =
          interval_start + (j - 1) * low_duration + low_duration / 2;
      note_events(receiver.receive(data, data_time), i);
    }
  }

  const auto& stats = receiver.stats();
  report.forged_cdms_dropped = stats.cdm_forged_dropped;
  if (report.cdms_authenticated > 0) {
    report.mean_cdm_auth_latency =
        latency_sum / static_cast<double>(report.cdms_authenticated);
  }
  return report;
}

}  // namespace dap::analysis
