#include "core/population.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dap::core {

PopulationSim::PopulationSim(const PopulationConfig& config,
                             const game::GameParams& game, common::Rng rng)
    : config_(config), game_(game), rng_(rng) {
  game::GameParams::validate(game_);
  if (config_.defenders == 0 || config_.attackers == 0) {
    throw std::invalid_argument("PopulationSim: empty population");
  }
  if (config_.initial_x < 0 || config_.initial_x > 1 ||
      config_.initial_y < 0 || config_.initial_y > 1) {
    throw std::invalid_argument("PopulationSim: initial shares in [0,1]");
  }
  if (config_.imitation_rate <= 0) {
    throw std::invalid_argument("PopulationSim: imitation_rate > 0");
  }
  if (config_.mutation_rate < 0 || config_.mutation_rate > 1) {
    throw std::invalid_argument("PopulationSim: mutation_rate in [0,1]");
  }
  defending_ = static_cast<std::size_t>(std::llround(
      config_.initial_x * static_cast<double>(config_.defenders)));
  attacking_ = static_cast<std::size_t>(std::llround(
      config_.initial_y * static_cast<double>(config_.attackers)));
}

double PopulationSim::defender_share() const noexcept {
  return static_cast<double>(defending_) /
         static_cast<double>(config_.defenders);
}

double PopulationSim::attacker_share() const noexcept {
  return static_cast<double>(attacking_) /
         static_cast<double>(config_.attackers);
}

void PopulationSim::step() {
  const double X = defender_share();
  const double Y = attacker_share();
  const auto payoff = game::payoff_matrix(game_, X, Y);

  // Expected payoff of each pure strategy against the opposing mix.
  const double u_defend =
      Y * payoff.defend_attack_d + (1 - Y) * payoff.defend_noattack_d;
  const double u_no_defend =
      Y * payoff.nodefend_attack_d + (1 - Y) * payoff.nodefend_noattack_d;
  const double u_attack =
      X * payoff.defend_attack_a + (1 - X) * payoff.nodefend_attack_a;
  const double u_no_attack =
      X * payoff.defend_noattack_a + (1 - X) * payoff.nodefend_noattack_a;

  // Pairwise proportional imitation, aggregated over the population:
  // the expected flow matches X(1-X)(u_d - u_nd) * rate (replicator),
  // realized with binomial noise by sampling switch events.
  const auto flow = [this](std::size_t with, std::size_t total,
                           double payoff_gap) -> std::ptrdiff_t {
    const double share = static_cast<double>(with) /
                         static_cast<double>(total);
    const double meet = share * (1.0 - share);
    const double prob =
        std::clamp(std::abs(payoff_gap) * config_.imitation_rate * meet,
                   0.0, 1.0);
    // Number of switchers ~ Binomial(total, prob); sample cheaply via
    // normal approximation for large totals, exact loop for small.
    std::size_t switchers = 0;
    if (total <= 256) {
      for (std::size_t i = 0; i < total; ++i) {
        if (rng_.bernoulli(prob)) ++switchers;
      }
    } else {
      const double mean = static_cast<double>(total) * prob;
      const double sd = std::sqrt(mean * (1.0 - prob));
      // Box-Muller.
      const double u1 = std::max(rng_.next_double(), 1e-12);
      const double u2 = rng_.next_double();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      const double draw = mean + sd * z;
      switchers = static_cast<std::size_t>(
          std::clamp(draw, 0.0, static_cast<double>(total)));
    }
    return payoff_gap >= 0 ? static_cast<std::ptrdiff_t>(switchers)
                           : -static_cast<std::ptrdiff_t>(switchers);
  };

  // Mutation: each agent independently flips strategy with a small
  // probability, keeping boundaries non-absorbing.
  const auto mutation_flow = [this](std::size_t with,
                                    std::size_t total) -> std::ptrdiff_t {
    if (config_.mutation_rate <= 0.0) return 0;
    const double mu = config_.mutation_rate;
    const auto sample = [this, mu](std::size_t n) {
      const double mean = static_cast<double>(n) * mu;
      // Poisson-ish approximation is fine at these rates; sample via the
      // normal when n is large, exactly otherwise.
      if (n <= 256) {
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (rng_.bernoulli(mu)) ++hits;
        }
        return hits;
      }
      const double sd = std::sqrt(mean * (1.0 - mu));
      const double u1 = std::max(rng_.next_double(), 1e-12);
      const double u2 = rng_.next_double();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      return static_cast<std::size_t>(
          std::clamp(mean + sd * z, 0.0, static_cast<double>(n)));
    };
    const std::size_t in = sample(total - with);
    const std::size_t out = sample(with);
    return static_cast<std::ptrdiff_t>(in) - static_cast<std::ptrdiff_t>(out);
  };

  const std::ptrdiff_t d_flow =
      flow(defending_, config_.defenders, u_defend - u_no_defend) +
      mutation_flow(defending_, config_.defenders);
  const std::ptrdiff_t a_flow =
      flow(attacking_, config_.attackers, u_attack - u_no_attack) +
      mutation_flow(attacking_, config_.attackers);

  const auto apply = [](std::size_t current, std::ptrdiff_t delta,
                        std::size_t total) {
    const auto next = static_cast<std::ptrdiff_t>(current) + delta;
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        next, 0, static_cast<std::ptrdiff_t>(total)));
  };
  defending_ = apply(defending_, d_flow, config_.defenders);
  attacking_ = apply(attacking_, a_flow, config_.attackers);
}

std::vector<game::State> PopulationSim::run(std::size_t rounds) {
  std::vector<game::State> trajectory;
  trajectory.reserve(rounds + 1);
  trajectory.push_back(state());
  for (std::size_t r = 0; r < rounds; ++r) {
    step();
    trajectory.push_back(state());
  }
  return trajectory;
}

}  // namespace dap::core
