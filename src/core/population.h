#pragma once
// Agent-based population dynamics (bounded rationality made concrete).
//
// The paper justifies the evolutionary model by nodes imitating
// successful peers rather than solving the game. This module implements
// that literally: finite populations of defender and attacker agents
// playing pure strategies, each round revising by *pairwise proportional
// imitation* — pick a random same-population peer, switch to its
// strategy with probability proportional to the payoff advantage. In the
// large-population limit this revision protocol converges to exactly the
// replicator ODE of src/game, which the tests verify empirically.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "game/params.h"
#include "game/replicator.h"

namespace dap::core {

struct PopulationConfig {
  std::size_t defenders = 1000;
  std::size_t attackers = 1000;
  double initial_x = 0.5;  // share of defenders starting with buffers on
  double initial_y = 0.5;  // share of attackers starting with DoS on
  /// Imitation step scale; plays the role of dt in the ODE.
  double imitation_rate = 0.005;
  /// Per-agent, per-round exploration probability (replicator-mutator
  /// dynamics). Finite populations have absorbing boundaries that the
  /// continuous replicator does not; a small mutation rate keeps rare
  /// strategies alive, matching the ODE's open-interval behaviour.
  double mutation_rate = 0.001;
};

class PopulationSim {
 public:
  PopulationSim(const PopulationConfig& config, const game::GameParams& game,
                common::Rng rng);

  /// One revision round for both populations.
  void step();

  /// Runs `rounds` steps, recording the share trajectory.
  std::vector<game::State> run(std::size_t rounds);

  [[nodiscard]] double defender_share() const noexcept;
  [[nodiscard]] double attacker_share() const noexcept;
  [[nodiscard]] game::State state() const noexcept {
    return {defender_share(), attacker_share()};
  }

 private:
  PopulationConfig config_;
  game::GameParams game_;
  common::Rng rng_;
  std::size_t defending_ = 0;  // count of defenders playing buffer-selection
  std::size_t attacking_ = 0;  // count of attackers playing DoS
};

}  // namespace dap::core
