#include "core/adaptive_defender.h"

namespace dap::core {

AdaptiveDefender::AdaptiveDefender(const AdaptiveConfig& config,
                                   common::Bytes commitment,
                                   common::Bytes local_secret,
                                   sim::LooseClock clock, common::Rng rng)
    : config_(config),
      receiver_(config.dap, std::move(commitment), std::move(local_secret),
                clock, rng),
      estimator_(config.expected_copies, config.estimator_smoothing) {}

void AdaptiveDefender::receive(const wire::MacAnnounce& packet,
                               sim::SimTime local_now) {
  receiver_.receive(packet, local_now);
}

std::optional<tesla::AuthenticatedMessage> AdaptiveDefender::receive(
    const wire::MessageReveal& packet, sim::SimTime local_now) {
  return receiver_.receive(packet, local_now);
}

void AdaptiveDefender::close_interval(std::size_t observed_copies) {
  estimator_.observe_interval(observed_copies);
  ++stats_.intervals_closed;

  // Cost ledger: defending costs k2·m this interval; each attack that
  // slipped through (strong auth failed => no authentic record survived)
  // costs the data's value Ra.
  const auto& ds = receiver_.stats();
  const std::uint64_t new_successes =
      ds.strong_auth_success - last_success_count_;
  const std::uint64_t new_failures =
      ds.strong_auth_failures - last_failure_count_;
  last_success_count_ = ds.strong_auth_success;
  last_failure_count_ = ds.strong_auth_failures;
  stats_.attacks_defeated += new_successes;
  stats_.attacks_succeeded += new_failures;
  stats_.realized_cost +=
      config_.game.k2 * static_cast<double>(receiver_.buffers()) +
      config_.game.Ra * static_cast<double>(new_failures);

  if (stats_.intervals_closed % config_.retune_period == 0) {
    maybe_retune();
  }
}

void AdaptiveDefender::maybe_retune() {
  const double p_hat = estimator_.estimate();
  if (p_hat <= 0.0) {
    // No attack observed: a single buffer suffices for loss robustness.
    receiver_.set_buffers(1);
    stats_.defense_share_x = 0.0;
    ++stats_.retunes;
    return;
  }
  game::GameParams g = config_.game;
  g.xa = p_hat;
  g.m = 1;  // overwritten by the optimiser
  const auto result =
      game::optimize_m(g, config_.mode, config_.max_buffers);
  receiver_.set_buffers(result.m);
  stats_.defense_share_x = result.ess.point.x;
  ++stats_.retunes;
}

double AdaptiveDefender::average_cost() const noexcept {
  if (stats_.intervals_closed == 0) return 0.0;
  return stats_.realized_cost /
         static_cast<double>(stats_.intervals_closed);
}

}  // namespace dap::core
