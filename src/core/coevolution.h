#pragma once
// Co-evolution with realized (sampled) payoffs.
//
// PopulationSim (population.h) applies the *expected* payoff matrix —
// it validates the replicator ODE. This module drops that last piece of
// omniscience: every agent only ever sees its own noisy, realized payoff
// for the round (a defended round survived the flood or it did not; an
// attack run paid off or it did not) and revises by imitating a single
// random peer, switching with probability proportional to the observed
// payoff difference. No agent knows p, m, Ra, or the opponent mix —
// exactly the bounded-rationality premise of the paper's §V-A. The
// experiments show the population mix still finds the game's ESS.
//
// Attack outcomes are Bernoulli(p^m) by default (the rate validated
// against real DAP receivers in E7); a hook lets tests substitute other
// outcome models.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "game/ess.h"
#include "game/params.h"

namespace dap::core {

struct CoevolutionConfig {
  std::size_t defenders = 2000;
  std::size_t attackers = 2000;
  double initial_x = 0.5;
  double initial_y = 0.5;
  /// Imitation scale: switch probability = rate * max(0, payoff gap).
  /// Payoffs are O(Ra), so rate * Ra should stay well below 1.
  double imitation_rate = 0.002;
  /// Exploration probability per agent per round (keeps boundaries
  /// non-absorbing, as in the replicator-mutator model).
  double mutation_rate = 0.0005;
  /// Rounds an agent observes (accumulating its realized payoff) before
  /// each revision. Averaging over several rounds shrinks the payoff
  /// noise that otherwise biases the quasi-stationary mix away from the
  /// ESS — "look before you imitate".
  std::size_t observation_rounds = 8;
};

class CoevolutionSim {
 public:
  /// Outcome model: returns true if an attack on a defender with m
  /// buffers succeeds. The default samples Bernoulli(p^m).
  using AttackOutcome = std::function<bool(common::Rng&)>;

  CoevolutionSim(const CoevolutionConfig& config,
                 const game::GameParams& game, common::Rng rng);

  /// Overrides the attack-vs-defended outcome model.
  void set_attack_outcome(AttackOutcome outcome);

  /// One round: every defender meets one attacker draw, payoffs are
  /// realized, then both populations revise by pairwise imitation.
  void step();

  std::vector<game::State> run(std::size_t rounds);

  [[nodiscard]] double defender_share() const noexcept;
  [[nodiscard]] double attacker_share() const noexcept;
  [[nodiscard]] game::State state() const noexcept {
    return {defender_share(), attacker_share()};
  }

  /// Mean shares over the last `window` observed rounds of run().
  struct WindowMean {
    game::State mean{};
    std::size_t rounds = 0;
  };
  WindowMean run_and_average(std::size_t warmup_rounds,
                             std::size_t window_rounds);

 private:
  CoevolutionConfig config_;
  game::GameParams game_;
  common::Rng rng_;
  AttackOutcome attack_outcome_;
  std::vector<std::uint8_t> defender_strategy_;  // 1 = buffer-selection
  std::vector<std::uint8_t> attacker_strategy_;  // 1 = DoS
  std::vector<double> defender_accumulated_;
  std::vector<double> attacker_accumulated_;
  std::size_t rounds_since_revision_ = 0;
};

}  // namespace dap::core
