#pragma once
// Online estimation of the attack level p (forged fraction).
//
// A DAP receiver cannot tell forged from authentic MAC announcements
// before key disclosure, but it *can* count them, and it knows the
// sender's redundancy (how many authentic copies the sender broadcasts
// per interval — a protocol constant). With k observed copies and c
// expected authentic ones, the per-interval estimate is
//   p̂ = max(0, (k - c) / k),
// smoothed across intervals with an exponentially weighted moving
// average so that the controller neither chases noise nor lags a real
// change in attack intensity by much.

#include <cstddef>
#include <cstdint>

namespace dap::core {

class AttackEstimator {
 public:
  /// `expected_copies` = sender's per-interval authentic redundancy c;
  /// `smoothing` = EWMA weight of the newest observation, in (0, 1].
  AttackEstimator(std::size_t expected_copies, double smoothing = 0.25);

  /// Records one finished interval with `observed_copies` announcements.
  void observe_interval(std::size_t observed_copies);

  /// Current smoothed estimate p̂ in [0, 1); 0 before any observation.
  [[nodiscard]] double estimate() const noexcept { return ewma_; }

  /// Raw (unsmoothed) estimate of the last interval.
  [[nodiscard]] double last_raw() const noexcept { return last_raw_; }

  [[nodiscard]] std::uint64_t intervals_observed() const noexcept {
    return intervals_;
  }

 private:
  std::size_t expected_copies_;
  double smoothing_;
  double ewma_ = 0.0;
  double last_raw_ = 0.0;
  std::uint64_t intervals_ = 0;
};

}  // namespace dap::core
