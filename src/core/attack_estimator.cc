#include "core/attack_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace dap::core {

AttackEstimator::AttackEstimator(std::size_t expected_copies,
                                 double smoothing)
    : expected_copies_(expected_copies), smoothing_(smoothing) {
  if (expected_copies_ == 0) {
    throw std::invalid_argument("AttackEstimator: expected_copies >= 1");
  }
  if (smoothing_ <= 0.0 || smoothing_ > 1.0) {
    throw std::invalid_argument("AttackEstimator: smoothing in (0, 1]");
  }
}

void AttackEstimator::observe_interval(std::size_t observed_copies) {
  double raw = 0.0;
  if (observed_copies > expected_copies_) {
    raw = static_cast<double>(observed_copies - expected_copies_) /
          static_cast<double>(observed_copies);
  }
  last_raw_ = raw;
  if (intervals_ == 0) {
    ewma_ = raw;
  } else {
    ewma_ = smoothing_ * raw + (1.0 - smoothing_) * ewma_;
  }
  ++intervals_;
  // Keep strictly below 1 so GameParams stays valid downstream.
  ewma_ = std::clamp(ewma_, 0.0, 0.999);
}

}  // namespace dap::core
