#include "core/coevolution.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dap::core {

CoevolutionSim::CoevolutionSim(const CoevolutionConfig& config,
                               const game::GameParams& game, common::Rng rng)
    : config_(config), game_(game), rng_(rng) {
  game::GameParams::validate(game_);
  if (config_.defenders == 0 || config_.attackers == 0) {
    throw std::invalid_argument("CoevolutionSim: empty population");
  }
  if (config_.imitation_rate <= 0) {
    throw std::invalid_argument("CoevolutionSim: imitation_rate > 0");
  }
  if (config_.mutation_rate < 0 || config_.mutation_rate > 1) {
    throw std::invalid_argument("CoevolutionSim: mutation_rate in [0,1]");
  }
  if (config_.initial_x < 0 || config_.initial_x > 1 ||
      config_.initial_y < 0 || config_.initial_y > 1) {
    throw std::invalid_argument("CoevolutionSim: initial shares in [0,1]");
  }
  if (config_.observation_rounds == 0) {
    throw std::invalid_argument("CoevolutionSim: observation_rounds >= 1");
  }
  defender_strategy_.resize(config_.defenders);
  attacker_strategy_.resize(config_.attackers);
  defender_accumulated_.assign(config_.defenders, 0.0);
  attacker_accumulated_.assign(config_.attackers, 0.0);
  for (std::size_t i = 0; i < config_.defenders; ++i) {
    defender_strategy_[i] = rng_.bernoulli(config_.initial_x) ? 1 : 0;
  }
  for (std::size_t i = 0; i < config_.attackers; ++i) {
    attacker_strategy_[i] = rng_.bernoulli(config_.initial_y) ? 1 : 0;
  }
  const double p_success = game_.attack_success();
  attack_outcome_ = [p_success](common::Rng& r) {
    return r.bernoulli(p_success);
  };
}

void CoevolutionSim::set_attack_outcome(AttackOutcome outcome) {
  if (!outcome) {
    throw std::invalid_argument("CoevolutionSim: null outcome model");
  }
  attack_outcome_ = std::move(outcome);
}

double CoevolutionSim::defender_share() const noexcept {
  std::size_t count = 0;
  for (auto s : defender_strategy_) count += s;
  return static_cast<double>(count) /
         static_cast<double>(defender_strategy_.size());
}

double CoevolutionSim::attacker_share() const noexcept {
  std::size_t count = 0;
  for (auto s : attacker_strategy_) count += s;
  return static_cast<double>(count) /
         static_cast<double>(attacker_strategy_.size());
}

void CoevolutionSim::step() {
  const double X = defender_share();
  const double Y = attacker_share();
  const double m = static_cast<double>(game_.m);
  const double Cd = game_.k2 * m * X;       // Table I: cost scales with X
  const double Ca = game_.k1 * game_.xa * Y;  // and with Y

  // --- Realize one round of payoffs per agent (accumulated until the
  //     next revision round).
  for (std::size_t i = 0; i < defender_strategy_.size(); ++i) {
    const bool attacked = rng_.bernoulli(Y);
    double payoff = 0.0;
    if (defender_strategy_[i]) {
      payoff -= Cd;
      if (attacked && attack_outcome_(rng_)) payoff -= game_.Ra;
    } else if (attacked) {
      payoff -= game_.Ra;
    }
    defender_accumulated_[i] += payoff;
  }
  for (std::size_t i = 0; i < attacker_strategy_.size(); ++i) {
    double payoff = 0.0;
    if (attacker_strategy_[i]) {
      // Attack a random network node; defended targets only fall with
      // the (sampled) flooding-success outcome.
      const bool target_defends = rng_.bernoulli(X);
      const bool success = target_defends ? attack_outcome_(rng_) : true;
      payoff = (success ? game_.Ra : 0.0) - Ca;
    }
    attacker_accumulated_[i] += payoff;
  }

  if (++rounds_since_revision_ < config_.observation_rounds) return;
  rounds_since_revision_ = 0;
  const double window = static_cast<double>(config_.observation_rounds);

  // --- Pairwise proportional imitation on window-averaged payoffs.
  const auto revise = [this, window](std::vector<std::uint8_t>& strategy,
                                     std::vector<double>& accumulated) {
    std::vector<std::uint8_t> next = strategy;
    const std::size_t n = strategy.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto peer = static_cast<std::size_t>(rng_.uniform(0, n - 1));
      const double own = accumulated[i] / window;
      const double theirs = accumulated[peer] / window;
      if (strategy[peer] != strategy[i] && theirs > own) {
        const double probability =
            std::min(1.0, config_.imitation_rate * (theirs - own));
        if (rng_.bernoulli(probability)) next[i] = strategy[peer];
      }
      if (rng_.bernoulli(config_.mutation_rate)) next[i] ^= 1;
    }
    strategy.swap(next);
    std::fill(accumulated.begin(), accumulated.end(), 0.0);
  };
  revise(defender_strategy_, defender_accumulated_);
  revise(attacker_strategy_, attacker_accumulated_);
}

std::vector<game::State> CoevolutionSim::run(std::size_t rounds) {
  std::vector<game::State> trajectory;
  trajectory.reserve(rounds + 1);
  trajectory.push_back(state());
  for (std::size_t r = 0; r < rounds; ++r) {
    step();
    trajectory.push_back(state());
  }
  return trajectory;
}

CoevolutionSim::WindowMean CoevolutionSim::run_and_average(
    std::size_t warmup_rounds, std::size_t window_rounds) {
  for (std::size_t r = 0; r < warmup_rounds; ++r) step();
  WindowMean out;
  out.rounds = window_rounds;
  for (std::size_t r = 0; r < window_rounds; ++r) {
    step();
    out.mean.x += defender_share();
    out.mean.y += attacker_share();
  }
  if (window_rounds > 0) {
    out.mean.x /= static_cast<double>(window_rounds);
    out.mean.y /= static_cast<double>(window_rounds);
  }
  return out;
}

}  // namespace dap::core
