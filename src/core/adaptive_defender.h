#pragma once
// The QoS-balanced DoS-resistant authentication protocol (paper §V put
// to work): a DAP receiver whose buffer count m is re-tuned online by
// the evolutionary-game optimiser as the estimated attack level changes.
//
// Per interval the defender:
//  1. runs plain DAP (Algorithm 2) with its current m,
//  2. feeds the observed announcement count to the attack estimator,
//  3. every `retune_period` intervals re-runs Algorithm 3 on p̂ and
//     adopts the resulting m (and the ESS defence share X, which the
//     population layer uses to decide *whether* this node buffers at all).
//
// It also keeps the game-model cost ledger (k2·m per defended round,
// Ra per successful attack) so experiments can compare realized cost
// against the analytic E of Fig. 8.

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "core/attack_estimator.h"
#include "dap/dap.h"
#include "game/optimizer.h"
#include "sim/clock_model.h"

namespace dap::core {

struct AdaptiveConfig {
  protocol::DapConfig dap;
  game::GameParams game;            // Ra/k1/k2; xa and m are overwritten
  std::size_t expected_copies = 1;  // sender's authentic redundancy
  std::uint32_t retune_period = 8;  // intervals between re-optimisations
  game::OptimizeMode mode = game::OptimizeMode::kPaperInterior;
  std::size_t max_buffers = game::kMaxBuffers;
  double estimator_smoothing = 0.25;
};

struct AdaptiveStats {
  std::uint64_t retunes = 0;
  std::uint64_t intervals_closed = 0;
  std::uint64_t attacks_succeeded = 0;   // reveal arrived, no record matched
  std::uint64_t attacks_defeated = 0;    // strong auth succeeded
  double realized_cost = 0.0;            // game-model ledger (see header)
  double defense_share_x = 1.0;          // ESS X of the latest retune
};

class AdaptiveDefender {
 public:
  AdaptiveDefender(const AdaptiveConfig& config, common::Bytes commitment,
                   common::Bytes local_secret, sim::LooseClock clock,
                   common::Rng rng);

  /// DAP data path.
  void receive(const wire::MacAnnounce& packet, sim::SimTime local_now);
  std::optional<tesla::AuthenticatedMessage> receive(
      const wire::MessageReveal& packet, sim::SimTime local_now);

  /// Call once at the end of each interval with the number of MAC
  /// announcements observed in it; drives estimation, retuning and the
  /// cost ledger.
  void close_interval(std::size_t observed_copies);

  [[nodiscard]] double estimated_p() const noexcept {
    return estimator_.estimate();
  }
  [[nodiscard]] std::size_t current_buffers() const noexcept {
    return receiver_.buffers();
  }
  [[nodiscard]] const AdaptiveStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const protocol::DapStats& dap_stats() const noexcept {
    return receiver_.stats();
  }
  /// Average realized cost per closed interval.
  [[nodiscard]] double average_cost() const noexcept;

 private:
  void maybe_retune();

  AdaptiveConfig config_;
  protocol::DapReceiver receiver_;
  AttackEstimator estimator_;
  AdaptiveStats stats_;
  std::uint64_t last_success_count_ = 0;
  std::uint64_t last_failure_count_ = 0;
};

}  // namespace dap::core
