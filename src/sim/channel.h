#pragma once
// Channel quality models.
//
// The paper evaluates "low QoS channels": independent (Bernoulli) loss
// and bursty loss. Bursty loss is modelled with the standard
// Gilbert–Elliott two-state Markov chain, which is what makes the EFTP /
// EDRP recovery experiments meaningful (consecutive CDM losses happen).
// A channel decides, per frame and per receiver, whether the frame
// arrives, and can additionally flip bits (caught by CRC framing).

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/rng.h"

namespace dap::sim {

/// Per-receiver channel state; stateful models (Gilbert–Elliott) keep
/// their Markov state inside the object, so use one instance per link.
class Channel {
 public:
  virtual ~Channel() = default;

  /// True if a frame survives the channel.
  virtual bool deliver(common::Rng& rng) = 0;

  /// Number of copies the receiver edge sees for one transmitted frame.
  /// Default folds through deliver(): 1 if it survives, 0 otherwise.
  /// Duplicating decorators (sim/faults.h) override this to return > 1;
  /// the medium delivers each copy independently.
  virtual std::size_t deliveries(common::Rng& rng);

  /// Applies in-place corruption to surviving frames (default: none).
  virtual void corrupt(common::Bytes& frame, common::Rng& rng);

  /// A fresh instance with the same parameters but reset state.
  [[nodiscard]] virtual std::unique_ptr<Channel> clone() const = 0;
};

/// Lossless channel.
class PerfectChannel final : public Channel {
 public:
  bool deliver(common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Channel> clone() const override;
};

/// Independent loss with probability `loss`.
class BernoulliChannel final : public Channel {
 public:
  explicit BernoulliChannel(double loss);
  bool deliver(common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Channel> clone() const override;
  [[nodiscard]] double loss() const noexcept { return loss_; }

 private:
  double loss_;
};

/// Gilbert–Elliott bursty loss: a GOOD/BAD Markov chain with per-state
/// loss rates. `p_gb` = P(good->bad) per frame, `p_bg` = P(bad->good).
class GilbertElliottChannel final : public Channel {
 public:
  GilbertElliottChannel(double p_gb, double p_bg, double loss_good,
                        double loss_bad);
  bool deliver(common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Channel> clone() const override;

  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }
  /// Stationary loss probability of the chain (for tests).
  [[nodiscard]] double stationary_loss() const noexcept;

 private:
  double p_gb_;
  double p_bg_;
  double loss_good_;
  double loss_bad_;
  bool bad_ = false;
};

/// Decorator adding uniform random bit flips (rate per bit) to surviving
/// frames; CRC framing turns corruption into loss at the receiver.
class BitErrorChannel final : public Channel {
 public:
  BitErrorChannel(std::unique_ptr<Channel> inner, double bit_error_rate);
  bool deliver(common::Rng& rng) override;
  void corrupt(common::Bytes& frame, common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Channel> clone() const override;

 private:
  std::unique_ptr<Channel> inner_;
  double ber_;
};

}  // namespace dap::sim
