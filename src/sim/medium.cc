#include "sim/medium.h"

#include <stdexcept>

namespace dap::sim {

Medium::Medium(EventQueue& queue, common::Rng& rng)
    : queue_(queue), rng_(rng.fork(0x6d656469756dULL /* "medium" */)) {
  // Handles resolved once here; broadcast() then updates without any
  // name lookup.
  auto& reg = metrics_.registry();
  ctr_rate_limited_ = reg.counter("medium.rate_limited");
  ctr_broadcasts_ = reg.counter("medium.broadcasts");
  ctr_frames_lost_ = reg.counter("medium.frames_lost");
  ctr_frames_corrupted_ = reg.counter("medium.frames_corrupted");
  ctr_frames_duplicated_ = reg.counter("medium.frames_duplicated");
}

std::size_t Medium::attach(ReceiveFn receive, std::unique_ptr<Channel> channel,
                           SimTime latency) {
  return attach(std::move(receive), std::move(channel),
                std::make_unique<FixedLatency>(latency));
}

std::size_t Medium::attach(ReceiveFn receive, std::unique_ptr<Channel> channel,
                           std::unique_ptr<LatencyModel> latency) {
  if (!receive) throw std::invalid_argument("Medium::attach: null receiver");
  if (!channel) throw std::invalid_argument("Medium::attach: null channel");
  if (!latency) throw std::invalid_argument("Medium::attach: null latency");
  Link link{std::move(receive), std::move(channel), std::move(latency),
            rng_.fork(links_.size() + 1)};
  links_.push_back(std::move(link));
  return links_.size() - 1;
}

void Medium::set_rate_limit(wire::NodeId sender, double bits_per_second,
                            double burst_bits) {
  rate_limits_.insert_or_assign(sender,
                                TokenBucket(bits_per_second, burst_bits));
}

std::uint64_t Medium::rate_limited_drops(wire::NodeId sender) const noexcept {
  const auto it = rate_limited_.find(sender);
  return it == rate_limited_.end() ? 0 : it->second;
}

bool Medium::broadcast(const wire::Packet& packet) {
  const wire::NodeId sender = wire::sender_of(packet);
  const common::Bytes framed = wire::frame(packet);
  const std::size_t bits = wire::wire_bits(packet);
  const auto bucket = rate_limits_.find(sender);
  if (bucket != rate_limits_.end() &&
      !bucket->second.try_consume(bits, queue_.now())) {
    ++rate_limited_[sender];
    metrics_.registry().add(ctr_rate_limited_);
    return false;
  }
  if (bits_by_sender_.size() <= sender) {
    bits_by_sender_.resize(static_cast<std::size_t>(sender) + 1, 0);
  }
  bits_by_sender_[sender] += bits;
  total_bits_ += bits;
  metrics_.registry().add(ctr_broadcasts_);

  for (std::size_t li = 0; li < links_.size(); ++li) {
    auto& link = links_[li];
    const std::size_t copies = link.channel->deliveries(link.rng);
    if (copies == 0) {
      metrics_.registry().add(ctr_frames_lost_);
      continue;
    }
    for (std::size_t c = 0; c < copies; ++c) {
      if (c > 0) {
        // A duplicate is one more transmission on the medium: count its
        // airtime against the original sender so bandwidth-fraction
        // experiments see the true load.
        ++duplicated_frames_;
        bits_by_sender_[sender] += bits;
        total_bits_ += bits;
        metrics_.registry().add(ctr_frames_duplicated_);
      }
      common::Bytes copy = framed;
      link.channel->corrupt(copy, link.rng);
      // Deframing happens at delivery time so CRC failures of corrupted
      // frames count as losses at the receiver edge. The link is addressed
      // by index: links_ may grow (never shrink) while events are pending.
      queue_.schedule_in(link.latency->sample(link.rng),
                         [this, li, copy = std::move(copy)]() {
        auto packet_opt = wire::deframe(copy);
        if (!packet_opt) {
          metrics_.registry().add(ctr_frames_corrupted_);
          return;
        }
        links_[li].receive(*packet_opt, queue_.now());
      });
    }
  }
  return true;
}

std::uint64_t Medium::bits_sent_by(wire::NodeId sender) const noexcept {
  if (sender >= bits_by_sender_.size()) return 0;
  return bits_by_sender_[sender];
}

}  // namespace dap::sim
