#pragma once
// Token-bucket bandwidth shaping.
//
// The game model's central parameter xa is "the fraction of bandwidth
// used by attackers". The shaper makes that physical: each source gets a
// token bucket (rate in bits/second, bounded burst); the Medium drops
// frames from sources whose bucket is empty, so a flooding attacker is
// genuinely limited to its share of the channel instead of being limited
// by convention in the workload generator.

#include <cstdint>

#include "sim/time.h"

namespace dap::sim {

class TokenBucket {
 public:
  /// `rate_bits_per_second` tokens accrue continuously; the bucket holds
  /// at most `burst_bits` (>= 1). Starts full. Throws on non-positive
  /// rate/burst.
  TokenBucket(double rate_bits_per_second, double burst_bits);

  /// Consumes `bits` at time `now` if available; returns false (and
  /// consumes nothing) otherwise. `now` must be monotonically
  /// non-decreasing across calls (throws std::invalid_argument if not).
  bool try_consume(std::size_t bits, SimTime now);

  /// Tokens currently available after refilling up to `now`.
  [[nodiscard]] double available(SimTime now) noexcept;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double burst() const noexcept { return burst_; }

 private:
  void refill(SimTime now) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_ = 0;
};

}  // namespace dap::sim
