#include "sim/clock_model.h"

#include <cstdlib>
#include <stdexcept>

namespace dap::sim {

LooseClock::LooseClock(std::int64_t offset, SimTime max_offset)
    : offset_(offset), max_offset_(max_offset) {
  const std::int64_t bound = static_cast<std::int64_t>(max_offset);
  if (offset > bound || offset < -bound) {
    throw std::invalid_argument("LooseClock: |offset| exceeds max_offset");
  }
}

LooseClock LooseClock::random(common::Rng& rng, SimTime max_offset) {
  if (max_offset == 0) return LooseClock(0, 0);
  const auto span = static_cast<std::uint64_t>(2 * max_offset);
  const auto draw = rng.uniform(0, span);
  return LooseClock(static_cast<std::int64_t>(draw) -
                        static_cast<std::int64_t>(max_offset),
                    max_offset);
}

SimTime LooseClock::local_time(SimTime true_time) const noexcept {
  const std::int64_t shifted =
      static_cast<std::int64_t>(true_time) + offset_;
  return shifted < 0 ? 0 : static_cast<SimTime>(shifted);
}

SimTime LooseClock::latest_sender_time(SimTime local_now) const noexcept {
  return local_now + 2 * max_offset_;
}

bool LooseClock::packet_safe(std::uint32_t i, std::uint32_t d,
                             SimTime local_now,
                             const IntervalSchedule& sched) const noexcept {
  // K_i is disclosed when the sender enters interval i + d; the packet is
  // safe iff even the fastest-possible sender clock has not reached that.
  const SimTime disclosure_time = sched.interval_start(i + d);
  return latest_sender_time(local_now) < disclosure_time;
}

}  // namespace dap::sim
