#include "sim/faults.h"

#include <cmath>
#include <stdexcept>

namespace dap::sim {

void FaultSchedule::add_window(SimTime start, SimTime end) {
  if (end <= start) {
    throw std::invalid_argument("FaultSchedule: window end must follow start");
  }
  windows_.push_back(Window{start, end});
}

bool FaultSchedule::active(SimTime now) const noexcept {
  for (const Window& w : windows_) {
    if (now >= w.start && now < w.end) return true;
  }
  return false;
}

SimTime FaultSchedule::last_clear() const noexcept {
  SimTime clear = 0;
  for (const Window& w : windows_) {
    if (w.end > clear) clear = w.end;
  }
  return clear;
}

JitterLink::JitterLink(SimTime base, SimTime max_extra,
                       std::shared_ptr<const FaultSchedule> schedule,
                       const EventQueue* clock)
    : base_(base),
      max_extra_(max_extra),
      schedule_(std::move(schedule)),
      clock_(clock) {
  if (schedule_ && clock_ == nullptr) {
    throw std::invalid_argument("JitterLink: schedule gating needs a clock");
  }
}

SimTime JitterLink::sample(common::Rng& rng) {
  if (schedule_ && !schedule_->active(clock_->now())) return base_;
  if (max_extra_ == 0) return base_;
  return base_ + rng.uniform(0, max_extra_);
}

std::unique_ptr<LatencyModel> JitterLink::clone() const {
  return std::make_unique<JitterLink>(base_, max_extra_, schedule_, clock_);
}

DuplicateChannel::DuplicateChannel(std::unique_ptr<Channel> inner,
                                   double dup_probability,
                                   std::shared_ptr<const FaultSchedule> schedule,
                                   const EventQueue* clock)
    : inner_(std::move(inner)),
      dup_probability_(dup_probability),
      schedule_(std::move(schedule)),
      clock_(clock) {
  if (!inner_) throw std::invalid_argument("DuplicateChannel: null inner");
  if (dup_probability_ < 0.0 || dup_probability_ > 1.0) {
    throw std::invalid_argument(
        "DuplicateChannel: probability must be in [0,1]");
  }
  if (schedule_ && clock_ == nullptr) {
    throw std::invalid_argument(
        "DuplicateChannel: schedule gating needs a clock");
  }
}

bool DuplicateChannel::engaged() const noexcept {
  return !schedule_ || schedule_->active(clock_->now());
}

bool DuplicateChannel::deliver(common::Rng& rng) {
  return inner_->deliver(rng);
}

std::size_t DuplicateChannel::deliveries(common::Rng& rng) {
  const std::size_t inner = inner_->deliveries(rng);
  if (inner == 0 || !engaged()) return inner;
  std::size_t extra = 0;
  for (std::size_t i = 0; i < inner; ++i) {
    if (rng.bernoulli(dup_probability_)) ++extra;
  }
  return inner + extra;
}

void DuplicateChannel::corrupt(common::Bytes& frame, common::Rng& rng) {
  inner_->corrupt(frame, rng);
}

std::unique_ptr<Channel> DuplicateChannel::clone() const {
  return std::make_unique<DuplicateChannel>(inner_->clone(), dup_probability_,
                                            schedule_, clock_);
}

BlackoutChannel::BlackoutChannel(std::unique_ptr<Channel> inner,
                                 std::shared_ptr<const FaultSchedule> schedule,
                                 const EventQueue& clock)
    : inner_(std::move(inner)), schedule_(std::move(schedule)),
      clock_(&clock) {
  if (!inner_) throw std::invalid_argument("BlackoutChannel: null inner");
  if (!schedule_) {
    throw std::invalid_argument("BlackoutChannel: null schedule");
  }
}

bool BlackoutChannel::deliver(common::Rng& rng) {
  if (schedule_->active(clock_->now())) return false;
  return inner_->deliver(rng);
}

std::size_t BlackoutChannel::deliveries(common::Rng& rng) {
  if (schedule_->active(clock_->now())) return 0;
  return inner_->deliveries(rng);
}

void BlackoutChannel::corrupt(common::Bytes& frame, common::Rng& rng) {
  inner_->corrupt(frame, rng);
}

std::unique_ptr<Channel> BlackoutChannel::clone() const {
  return std::make_unique<BlackoutChannel>(inner_->clone(), schedule_,
                                           *clock_);
}

void FaultyClock::add(const ClockDriftFault& fault) {
  if (fault.end <= fault.start) {
    throw std::invalid_argument("FaultyClock: drift window end before start");
  }
  drifts_.push_back(fault);
}

void FaultyClock::add(const ClockStepFault& fault) { steps_.push_back(fault); }

std::int64_t FaultyClock::offset_at(SimTime true_time) const noexcept {
  double offset = static_cast<double>(base_.offset());
  for (const ClockDriftFault& d : drifts_) {
    if (true_time <= d.start) continue;
    const SimTime until = true_time < d.end ? true_time : d.end;
    const double elapsed_us = static_cast<double>(until - d.start);
    offset += d.ppm * elapsed_us / 1e6;
  }
  for (const ClockStepFault& s : steps_) {
    if (true_time >= s.at) offset += static_cast<double>(s.delta);
  }
  return static_cast<std::int64_t>(std::llround(offset));
}

SimTime FaultyClock::local_time(SimTime true_time) const noexcept {
  const std::int64_t shifted =
      static_cast<std::int64_t>(true_time) + offset_at(true_time);
  return shifted < 0 ? 0 : static_cast<SimTime>(shifted);
}

}  // namespace dap::sim
