#pragma once
// Named counters + rate estimators collected during simulation runs.
//
// Since the obs layer landed this is a thin compatibility shim over a
// private obs::Registry: names resolve to integer handles through the
// registry's intern table (one hash lookup, no tree walk, no per-update
// allocation), and components on hot paths can grab handles once via
// `registry()` and skip the name lookup entirely. `report()` output is
// byte-compatible with the original string-keyed implementation.

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "obs/registry.h"

namespace dap::sim {

class Metrics {
 public:
  void incr(const std::string& name, std::uint64_t by = 1);
  [[nodiscard]] std::uint64_t count(const std::string& name) const noexcept;

  void observe(const std::string& name, double value);
  [[nodiscard]] const common::RunningStats* stats(
      const std::string& name) const noexcept;

  void mark(const std::string& name, bool success);
  [[nodiscard]] const common::RateEstimator* rate(
      const std::string& name) const noexcept;

  /// The backing registry, for callers that cache handles up front and
  /// update through them (see sim::Medium) or want histogram quantiles
  /// beyond the classic mean/sd view.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  /// Renders counters/rates/stats as an aligned text block.
  [[nodiscard]] std::string report() const;

 private:
  obs::Registry registry_;
};

}  // namespace dap::sim
