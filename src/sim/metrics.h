#pragma once
// Named counters + rate estimators collected during simulation runs.

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace dap::sim {

class Metrics {
 public:
  void incr(const std::string& name, std::uint64_t by = 1);
  [[nodiscard]] std::uint64_t count(const std::string& name) const noexcept;

  void observe(const std::string& name, double value);
  [[nodiscard]] const common::RunningStats* stats(
      const std::string& name) const noexcept;

  void mark(const std::string& name, bool success);
  [[nodiscard]] const common::RateEstimator* rate(
      const std::string& name) const noexcept;

  /// All counters, for report printing.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }

  /// Renders counters/rates/stats as an aligned text block.
  [[nodiscard]] std::string report() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, common::RunningStats> stats_;
  std::map<std::string, common::RateEstimator> rates_;
};

}  // namespace dap::sim
