#pragma once
// Simulation time base.
//
// Simulated time is a 64-bit microsecond counter. TESLA-family protocols
// divide time into numbered intervals; `IntervalSchedule` is the shared
// mapping between the two (interval index -> [start, end) in sim time).

#include <cstdint>

namespace dap::sim {

/// Microseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Maps interval indices to simulated time. Interval `i` (1-based, as in
/// the paper's I_1, I_2, ...) covers [start + (i-1)*duration, start + i*duration).
class IntervalSchedule {
 public:
  IntervalSchedule(SimTime start, SimTime duration);

  [[nodiscard]] SimTime start() const noexcept { return start_; }
  [[nodiscard]] SimTime duration() const noexcept { return duration_; }

  /// Interval index containing time `t`; 0 means "before the schedule".
  [[nodiscard]] std::uint32_t interval_at(SimTime t) const noexcept;

  /// Start time of interval `i` (i >= 1).
  [[nodiscard]] SimTime interval_start(std::uint32_t i) const noexcept;
  [[nodiscard]] SimTime interval_end(std::uint32_t i) const noexcept;

 private:
  SimTime start_;
  SimTime duration_;
};

inline IntervalSchedule::IntervalSchedule(SimTime start, SimTime duration)
    : start_(start), duration_(duration == 0 ? 1 : duration) {}

inline std::uint32_t IntervalSchedule::interval_at(SimTime t) const noexcept {
  if (t < start_) return 0;
  return static_cast<std::uint32_t>((t - start_) / duration_ + 1);
}

inline SimTime IntervalSchedule::interval_start(
    std::uint32_t i) const noexcept {
  return start_ + static_cast<SimTime>(i - 1) * duration_;
}

inline SimTime IntervalSchedule::interval_end(std::uint32_t i) const noexcept {
  return interval_start(i) + duration_;
}

}  // namespace dap::sim
