#pragma once
// Scripted fault injection for the simulation layer.
//
// The channel models in channel.h cover steady-state pathology (loss,
// burstiness, bit errors). This header covers *scheduled* pathology — the
// fault classes a deployment implies but a Bernoulli coin never produces:
// delay jitter (which reorders frames through the event queue), frame
// duplication, total link blackouts, and receiver clock drift/steps.
//
// Faults are driven by a FaultSchedule: a scripted set of activation
// windows in sim time. Decorators consult the schedule on every frame, so
// a harness activates/deactivates a fault mix deterministically for a
// fixed seed. A decorator constructed without a schedule is always on.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/channel.h"
#include "sim/clock_model.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace dap::sim {

/// A scripted set of half-open activation windows [start, end) in sim
/// time. Windows may be added while a run is in flight; queries are O(n)
/// over the window list (fault scripts are short).
class FaultSchedule {
 public:
  /// Adds [start, end); throws std::invalid_argument when end <= start.
  void add_window(SimTime start, SimTime end);

  [[nodiscard]] bool active(SimTime now) const noexcept;

  /// End of the last scheduled window (0 when empty). After this instant
  /// the fault never fires again — reconvergence clocks start here.
  [[nodiscard]] SimTime last_clear() const noexcept;

  [[nodiscard]] std::size_t windows() const noexcept {
    return windows_.size();
  }

 private:
  struct Window {
    SimTime start;
    SimTime end;
  };
  std::vector<Window> windows_;
};

// ---------------------------------------------------------------------------
// Per-link latency models (Medium::attach).

/// How long a frame takes to cross one link. Stateless models may still
/// draw from the link's RNG, so each sample call gets the link's stream.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime sample(common::Rng& rng) = 0;
  [[nodiscard]] virtual std::unique_ptr<LatencyModel> clone() const = 0;
};

/// The historical behaviour: every frame takes exactly `latency`.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime latency) : latency_(latency) {}
  SimTime sample(common::Rng&) override { return latency_; }
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override {
    return std::make_unique<FixedLatency>(latency_);
  }
  [[nodiscard]] SimTime base() const noexcept { return latency_; }

 private:
  SimTime latency_;
};

/// Base latency plus uniform extra delay in [0, max_extra], optionally
/// gated by a FaultSchedule (always jittering without one). Because the
/// event queue delivers strictly in timestamp order, jitter larger than
/// the inter-frame gap REORDERS frames at the receiver — this is the
/// reordering fault, not merely a latency fault.
class JitterLink final : public LatencyModel {
 public:
  /// `clock` is required when `schedule` is given (gating needs now()).
  JitterLink(SimTime base, SimTime max_extra,
             std::shared_ptr<const FaultSchedule> schedule = nullptr,
             const EventQueue* clock = nullptr);
  SimTime sample(common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override;

 private:
  SimTime base_;
  SimTime max_extra_;
  std::shared_ptr<const FaultSchedule> schedule_;
  const EventQueue* clock_;
};

// ---------------------------------------------------------------------------
// Channel decorators.

/// Duplicates surviving frames: each delivered copy spawns one extra copy
/// with probability `dup_probability` while engaged. Duplication flows
/// through Channel::deliveries(), which decorators overriding only
/// deliver() fold through — so place DuplicateChannel OUTERMOST when
/// stacking fault decorators.
class DuplicateChannel final : public Channel {
 public:
  DuplicateChannel(std::unique_ptr<Channel> inner, double dup_probability,
                   std::shared_ptr<const FaultSchedule> schedule = nullptr,
                   const EventQueue* clock = nullptr);
  bool deliver(common::Rng& rng) override;
  std::size_t deliveries(common::Rng& rng) override;
  void corrupt(common::Bytes& frame, common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Channel> clone() const override;

 private:
  [[nodiscard]] bool engaged() const noexcept;
  std::unique_ptr<Channel> inner_;
  double dup_probability_;
  std::shared_ptr<const FaultSchedule> schedule_;
  const EventQueue* clock_;
};

/// Total outage: drops every frame during the schedule's active windows,
/// transparent outside them. Models an RF jammer duty cycle or a gateway
/// reboot taking the whole link down.
class BlackoutChannel final : public Channel {
 public:
  BlackoutChannel(std::unique_ptr<Channel> inner,
                  std::shared_ptr<const FaultSchedule> schedule,
                  const EventQueue& clock);
  bool deliver(common::Rng& rng) override;
  std::size_t deliveries(common::Rng& rng) override;
  void corrupt(common::Bytes& frame, common::Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Channel> clone() const override;

 private:
  std::unique_ptr<Channel> inner_;
  std::shared_ptr<const FaultSchedule> schedule_;
  const EventQueue* clock_;
};

// ---------------------------------------------------------------------------
// Clock faults.

/// Oscillator skew: the clock gains `ppm` microseconds per second of true
/// time while inside [start, end); the accumulated offset FREEZES at the
/// window's end (a drifted clock does not snap back on its own — only a
/// resync repairs it). Negative ppm models a slow clock.
struct ClockDriftFault {
  double ppm = 0.0;
  SimTime start = 0;
  SimTime end = UINT64_MAX;
};

/// Discontinuous jump of `delta` microseconds at true time `at` (an NTP
/// step, a battery brown-out reset). TESLA's safety argument assumes
/// locally monotonic clocks, so harnesses that assert the no-forgery
/// invariant should inject forward (positive) steps; a backward step
/// voids the loose-synchronization bound by construction.
struct ClockStepFault {
  std::int64_t delta = 0;
  SimTime at = 0;
};

/// A receiver's *actual* oscillator: a LooseClock base plus scripted
/// drift and step faults. The receiver's software keeps believing the
/// base LooseClock's bound; the divergence between believed and actual is
/// exactly what the desync-detection / resync path must catch and repair.
class FaultyClock {
 public:
  explicit FaultyClock(LooseClock base) : base_(base) {}

  void add(const ClockDriftFault& fault);
  void add(const ClockStepFault& fault);

  /// Offset (actual clock minus true time) at true time `t`, including
  /// the base offset and every fault's contribution so far.
  [[nodiscard]] std::int64_t offset_at(SimTime true_time) const noexcept;

  /// The reading the node's software sees at true time `t` (clamped >= 0).
  [[nodiscard]] SimTime local_time(SimTime true_time) const noexcept;

  /// The bound the receiver still believes (pre-fault calibration).
  [[nodiscard]] const LooseClock& believed() const noexcept { return base_; }

 private:
  LooseClock base_;
  std::vector<ClockDriftFault> drifts_;
  std::vector<ClockStepFault> steps_;
};

}  // namespace dap::sim
