#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace dap::sim {

void EventQueue::schedule_at(SimTime at, Action action) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!action) {
    throw std::invalid_argument("EventQueue::schedule_at: empty action");
  }
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small fields and swap the action out after pop.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.at;
  entry.action();
  return true;
}

void EventQueue::run_until(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace dap::sim
