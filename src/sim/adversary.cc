#include "sim/adversary.h"

#include <cmath>
#include <stdexcept>

namespace dap::sim {

FloodingForger::FloodingForger(wire::NodeId victim_sender,
                               std::size_t mac_size, common::Rng rng)
    : victim_(victim_sender), mac_size_(mac_size), rng_(rng) {
  if (mac_size_ == 0) {
    throw std::invalid_argument("FloodingForger: mac_size must be > 0");
  }
}

wire::MacAnnounce FloodingForger::forge(wire::IntervalIndex interval) {
  wire::MacAnnounce p;
  p.sender = victim_;
  p.interval = interval;
  p.mac = rng_.bytes(mac_size_);
  ++forged_;
  return p;
}

void FloodingForger::flood(Medium& medium, wire::IntervalIndex interval,
                           std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    medium.broadcast(wire::Packet{forge(interval)});
  }
}

std::size_t FloodingForger::copies_for_fraction(std::size_t legit_copies,
                                                double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(
        "copies_for_fraction: p must be in [0,1) (p==1 needs infinite load)");
  }
  if (p == 0.0) return 0;
  const double forged =
      static_cast<double>(legit_copies) * p / (1.0 - p);
  return static_cast<std::size_t>(std::llround(forged));
}

void ReplayAttacker::observe(const wire::MacAnnounce& packet) {
  recorded_.push_back(packet);
}

void ReplayAttacker::replay_all(Medium& medium) const {
  for (const auto& p : recorded_) {
    medium.broadcast(wire::Packet{p});
  }
}

KeyGuessForger::KeyGuessForger(wire::NodeId victim_sender,
                               std::size_t key_size, common::Rng rng)
    : victim_(victim_sender), key_size_(key_size), rng_(rng) {
  if (key_size_ == 0) {
    throw std::invalid_argument("KeyGuessForger: key_size must be > 0");
  }
}

wire::MessageReveal KeyGuessForger::forge_reveal(wire::IntervalIndex interval,
                                                 common::ByteView message) {
  wire::MessageReveal p;
  p.sender = victim_;
  p.interval = interval;
  p.message = common::Bytes(message.begin(), message.end());
  p.key = rng_.bytes(key_size_);
  return p;
}

}  // namespace dap::sim
