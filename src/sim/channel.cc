#include "sim/channel.h"

#include <stdexcept>

namespace dap::sim {

std::size_t Channel::deliveries(common::Rng& rng) {
  return deliver(rng) ? 1 : 0;
}

void Channel::corrupt(common::Bytes&, common::Rng&) {}

bool PerfectChannel::deliver(common::Rng&) { return true; }

std::unique_ptr<Channel> PerfectChannel::clone() const {
  return std::make_unique<PerfectChannel>();
}

BernoulliChannel::BernoulliChannel(double loss) : loss_(loss) {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("BernoulliChannel: loss must be in [0,1]");
  }
}

bool BernoulliChannel::deliver(common::Rng& rng) {
  return !rng.bernoulli(loss_);
}

std::unique_ptr<Channel> BernoulliChannel::clone() const {
  return std::make_unique<BernoulliChannel>(loss_);
}

GilbertElliottChannel::GilbertElliottChannel(double p_gb, double p_bg,
                                             double loss_good,
                                             double loss_bad)
    : p_gb_(p_gb), p_bg_(p_bg), loss_good_(loss_good), loss_bad_(loss_bad) {
  for (double v : {p_gb, p_bg, loss_good, loss_bad}) {
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument(
          "GilbertElliottChannel: probabilities must be in [0,1]");
    }
  }
  if (p_gb + p_bg == 0.0) {
    throw std::invalid_argument(
        "GilbertElliottChannel: chain must be able to move");
  }
}

bool GilbertElliottChannel::deliver(common::Rng& rng) {
  // Transition first, then sample loss in the (new) state.
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return !rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
}

std::unique_ptr<Channel> GilbertElliottChannel::clone() const {
  return std::make_unique<GilbertElliottChannel>(p_gb_, p_bg_, loss_good_,
                                                 loss_bad_);
}

double GilbertElliottChannel::stationary_loss() const noexcept {
  const double pi_bad = p_gb_ / (p_gb_ + p_bg_);
  return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

BitErrorChannel::BitErrorChannel(std::unique_ptr<Channel> inner,
                                 double bit_error_rate)
    : inner_(std::move(inner)), ber_(bit_error_rate) {
  if (!inner_) throw std::invalid_argument("BitErrorChannel: null inner");
  if (ber_ < 0.0 || ber_ > 1.0) {
    throw std::invalid_argument("BitErrorChannel: BER must be in [0,1]");
  }
}

bool BitErrorChannel::deliver(common::Rng& rng) {
  return inner_->deliver(rng);
}

void BitErrorChannel::corrupt(common::Bytes& frame, common::Rng& rng) {
  inner_->corrupt(frame, rng);
  if (ber_ <= 0.0) return;
  for (auto& byte : frame) {
    for (int bit = 0; bit < 8; ++bit) {
      if (rng.bernoulli(ber_)) {
        byte = static_cast<std::uint8_t>(byte ^ (1u << bit));
      }
    }
  }
}

std::unique_ptr<Channel> BitErrorChannel::clone() const {
  return std::make_unique<BitErrorChannel>(inner_->clone(), ber_);
}

}  // namespace dap::sim
