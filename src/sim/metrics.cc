#include "sim/metrics.h"

namespace dap::sim {

void Metrics::incr(const std::string& name, std::uint64_t by) {
  registry_.add(registry_.counter(name), by);
}

std::uint64_t Metrics::count(const std::string& name) const noexcept {
  const std::uint64_t* c = registry_.find_counter(name);
  return c == nullptr ? 0 : *c;
}

void Metrics::observe(const std::string& name, double value) {
  registry_.observe(registry_.histogram(name), value);
}

const common::RunningStats* Metrics::stats(
    const std::string& name) const noexcept {
  const obs::LatencyHistogram* h = registry_.find_histogram(name);
  return h == nullptr ? nullptr : &h->moments();
}

void Metrics::mark(const std::string& name, bool success) {
  registry_.mark(registry_.rate(name), success);
}

const common::RateEstimator* Metrics::rate(
    const std::string& name) const noexcept {
  return registry_.find_rate(name);
}

std::string Metrics::report() const {
  // The legacy Metrics only materialized a counter on first incr(); the
  // Medium now pre-registers handles up front, so drop untouched counters
  // to keep the rendered report identical to what it always printed.
  return registry_.report(/*skip_zero_counters=*/true);
}

}  // namespace dap::sim
