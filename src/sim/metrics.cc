#include "sim/metrics.h"

#include <sstream>

#include "common/csv.h"

namespace dap::sim {

void Metrics::incr(const std::string& name, std::uint64_t by) {
  counters_[name] += by;
}

std::uint64_t Metrics::count(const std::string& name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::observe(const std::string& name, double value) {
  stats_[name].add(value);
}

const common::RunningStats* Metrics::stats(
    const std::string& name) const noexcept {
  const auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

void Metrics::mark(const std::string& name, bool success) {
  rates_[name].add(success);
}

const common::RateEstimator* Metrics::rate(
    const std::string& name) const noexcept {
  const auto it = rates_.find(name);
  return it == rates_.end() ? nullptr : &it->second;
}

std::string Metrics::report() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << "  " << name << " = " << value << '\n';
  }
  for (const auto& [name, est] : rates_) {
    const auto [lo, hi] = est.wilson95();
    out << "  " << name << " = " << common::format_number(est.rate()) << " ["
        << common::format_number(lo) << ", " << common::format_number(hi)
        << "] over " << est.trials() << " trials\n";
  }
  for (const auto& [name, st] : stats_) {
    out << "  " << name << " mean=" << common::format_number(st.mean())
        << " sd=" << common::format_number(st.stddev()) << " n=" << st.count()
        << '\n';
  }
  return out.str();
}

}  // namespace dap::sim
