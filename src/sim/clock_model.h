#pragma once
// Loose time synchronization (TESLA's only timing requirement).
//
// Each receiver's clock differs from the sender's by a bounded, fixed
// offset. The receiver never needs the exact offset — only the bound
// `max_offset`. The TESLA "safety check" is: a packet claiming interval
// `i` is safe to buffer iff, at receive time, the *latest possible* sender
// clock still lies before the disclosure time of K_i (interval i + d).

#include <cstdint>

#include "common/rng.h"
#include "sim/time.h"

namespace dap::sim {

class LooseClock {
 public:
  /// `offset` is this node's clock minus true time; |offset| must be
  /// <= max_offset (throws otherwise). Offsets may be negative.
  LooseClock(std::int64_t offset, SimTime max_offset);

  /// Samples a uniformly distributed offset in [-max_offset, max_offset].
  static LooseClock random(common::Rng& rng, SimTime max_offset);

  [[nodiscard]] std::int64_t offset() const noexcept { return offset_; }
  [[nodiscard]] SimTime max_offset() const noexcept { return max_offset_; }

  /// This node's local reading at true time `t` (clamped at 0).
  [[nodiscard]] SimTime local_time(SimTime true_time) const noexcept;

  /// Upper bound on the *sender's* local time given this node's local
  /// reading: local + 2*max_offset covers both clocks being maximally
  /// skewed in opposite directions.
  [[nodiscard]] SimTime latest_sender_time(SimTime local_now) const noexcept;

  /// TESLA safety check: with schedule `sched` and disclosure delay `d`
  /// intervals, may a packet for interval `i` still be trusted at local
  /// time `local_now`? True iff the sender cannot yet have disclosed K_i.
  [[nodiscard]] bool packet_safe(std::uint32_t i, std::uint32_t d,
                                 SimTime local_now,
                                 const IntervalSchedule& sched) const noexcept;

 private:
  std::int64_t offset_;
  SimTime max_offset_;
};

}  // namespace dap::sim
