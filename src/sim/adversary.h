#pragma once
// Adversary models for the memory-based DoS attack of the paper, plus the
// forgery/replay attackers used by the security tests.
//
// The paper's attacker floods the MAC announcement channel with forged
// MAC packets during interval I_i so that receiver buffers fill with
// garbage before the authentic MAC arrives; success means all m buffers
// hold forged copies (probability p^m under reservoir selection, where p
// is the forged fraction). `FloodingForger` produces exactly that load.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/medium.h"
#include "wire/packet.h"

namespace dap::sim {

class FloodingForger {
 public:
  /// Impersonates `victim_sender`; forged MACs are `mac_size` random bytes.
  FloodingForger(wire::NodeId victim_sender, std::size_t mac_size,
                 common::Rng rng);

  /// One forged MAC announcement for `interval`.
  [[nodiscard]] wire::MacAnnounce forge(wire::IntervalIndex interval);

  /// Injects `count` forged announcements for `interval` into `medium`.
  void flood(Medium& medium, wire::IntervalIndex interval, std::size_t count);

  /// Forged copies needed so the forged fraction among
  /// (legit_copies + forged) is as close as possible to `p` (p in [0,1)).
  /// Throws std::invalid_argument for p outside [0,1).
  [[nodiscard]] static std::size_t copies_for_fraction(
      std::size_t legit_copies, double p);

  [[nodiscard]] std::uint64_t packets_forged() const noexcept {
    return forged_;
  }

 private:
  wire::NodeId victim_;
  std::size_t mac_size_;
  common::Rng rng_;
  std::uint64_t forged_ = 0;
};

/// Records authentic MAC announcements and replays them verbatim in later
/// intervals. Replays must be discarded by the receiver's safety check
/// (i + d < x) once the interval's key is public.
class ReplayAttacker {
 public:
  void observe(const wire::MacAnnounce& packet);
  /// Replays everything observed into `medium` (unchanged contents).
  void replay_all(Medium& medium) const;
  [[nodiscard]] std::size_t recorded() const noexcept {
    return recorded_.size();
  }

 private:
  std::vector<wire::MacAnnounce> recorded_;
};

/// Crafts a full forged reveal (message + guessed key). Without breaking
/// the one-way chain this fails the receiver's weak authentication.
class KeyGuessForger {
 public:
  KeyGuessForger(wire::NodeId victim_sender, std::size_t key_size,
                 common::Rng rng);

  [[nodiscard]] wire::MessageReveal forge_reveal(
      wire::IntervalIndex interval, common::ByteView message);

 private:
  wire::NodeId victim_;
  std::size_t key_size_;
  common::Rng rng_;
};

}  // namespace dap::sim
