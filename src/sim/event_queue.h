#pragma once
// Deterministic discrete-event scheduler.
//
// Events at the same timestamp fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which keeps every run
// bit-reproducible for a fixed seed.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dap::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at`; `at` may equal now() but
  /// must not be in the past (throws std::invalid_argument).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` after now().
  void schedule_in(SimTime delay, Action action);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Runs the next event; returns false if none remain.
  bool step();

  /// Runs all events with time <= `until`. The horizon is inclusive and
  /// applies to events scheduled *during* the run too: an action firing
  /// at any t <= until may schedule new work at exactly `until` and that
  /// work runs in this same call (same-time events still fire in
  /// scheduling order). Events strictly beyond `until` stay queued.
  /// After the call now() == max(now(), until) even when the queue went
  /// quiet earlier, so back-to-back run_until calls see monotone time.
  void run_until(SimTime until);

  /// Drains the queue completely.
  void run();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dap::sim
