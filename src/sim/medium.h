#pragma once
// Shared broadcast medium.
//
// Models a single-hop broadcast domain (the setting of μTESLA-style
// protocols: one base-station/sender population, many receiver nodes,
// plus attackers injecting into the same medium). Every broadcast is
// framed (CRC), then independently pushed through each attached link's
// channel model and latency; receivers get only intact frames.
// Per-sender bandwidth accounting feeds the bandwidth-fraction
// experiments.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/shaper.h"
#include "wire/frame.h"
#include "wire/packet.h"

namespace dap::sim {

class Medium {
 public:
  using ReceiveFn = std::function<void(const wire::Packet&, SimTime)>;

  Medium(EventQueue& queue, common::Rng& rng);

  /// Attaches a receiver with its own channel instance and fixed one-way
  /// latency. Returns the link index.
  std::size_t attach(ReceiveFn receive, std::unique_ptr<Channel> channel,
                     SimTime latency = kMillisecond);

  /// Same, with a per-link latency model (fixed or jittered); each
  /// delivered copy samples its own latency, so jitter wider than the
  /// inter-frame gap reorders frames at this receiver.
  std::size_t attach(ReceiveFn receive, std::unique_ptr<Channel> channel,
                     std::unique_ptr<LatencyModel> latency);

  /// Broadcasts `packet` to every attached link (including any owned by
  /// the sender itself — receivers filter by sender id if they care).
  /// Returns false if the sender's rate limit dropped the frame.
  /// A channel that duplicates (Channel::deliveries > 1) makes the extra
  /// copies count as additional medium transmissions: their bits are
  /// added to total_bits and attributed to the original sender, since a
  /// network-level retransmission consumes airtime exactly like the
  /// first copy did.
  bool broadcast(const wire::Packet& packet);

  /// Caps `sender`'s transmit rate with a token bucket. Enforces the
  /// bandwidth fractions the game model reasons about: a flooding
  /// attacker limited to xa * capacity genuinely cannot exceed it.
  void set_rate_limit(wire::NodeId sender, double bits_per_second,
                      double burst_bits);

  /// Frames dropped by rate limiting for `sender`.
  [[nodiscard]] std::uint64_t rate_limited_drops(
      wire::NodeId sender) const noexcept;

  [[nodiscard]] std::uint64_t bits_sent_by(wire::NodeId sender) const noexcept;
  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return total_bits_;
  }
  [[nodiscard]] std::size_t links() const noexcept { return links_.size(); }

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Extra frame copies produced by duplicating channels so far.
  [[nodiscard]] std::uint64_t duplicated_frames() const noexcept {
    return duplicated_frames_;
  }

 private:
  struct Link {
    ReceiveFn receive;
    std::unique_ptr<Channel> channel;
    std::unique_ptr<LatencyModel> latency;
    common::Rng rng;
  };

  EventQueue& queue_;
  common::Rng rng_;
  std::vector<Link> links_;
  std::vector<std::uint64_t> bits_by_sender_;
  std::uint64_t total_bits_ = 0;
  std::uint64_t duplicated_frames_ = 0;
  std::map<wire::NodeId, TokenBucket> rate_limits_;
  std::map<wire::NodeId, std::uint64_t> rate_limited_;
  Metrics metrics_;
  // Registry handles cached at construction (per-frame path).
  obs::CounterHandle ctr_rate_limited_;
  obs::CounterHandle ctr_broadcasts_;
  obs::CounterHandle ctr_frames_lost_;
  obs::CounterHandle ctr_frames_corrupted_;
  obs::CounterHandle ctr_frames_duplicated_;
};

}  // namespace dap::sim
