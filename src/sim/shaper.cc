#include "sim/shaper.h"

#include <algorithm>
#include <stdexcept>

namespace dap::sim {

TokenBucket::TokenBucket(double rate_bits_per_second, double burst_bits)
    : rate_(rate_bits_per_second), burst_(burst_bits), tokens_(burst_bits) {
  if (rate_ <= 0.0) {
    throw std::invalid_argument("TokenBucket: rate must be > 0");
  }
  if (burst_ < 1.0) {
    throw std::invalid_argument("TokenBucket: burst must be >= 1 bit");
  }
}

void TokenBucket::refill(SimTime now) noexcept {
  const double elapsed_seconds =
      static_cast<double>(now - last_) / static_cast<double>(kSecond);
  tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_seconds);
  last_ = now;
}

double TokenBucket::available(SimTime now) noexcept {
  if (now < last_) return tokens_;
  refill(now);
  return tokens_;
}

bool TokenBucket::try_consume(std::size_t bits, SimTime now) {
  if (now < last_) {
    throw std::invalid_argument("TokenBucket: time went backwards");
  }
  refill(now);
  const double need = static_cast<double>(bits);
  if (tokens_ < need) return false;
  tokens_ -= need;
  return true;
}

}  // namespace dap::sim
