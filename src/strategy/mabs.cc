#include "strategy/mabs.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace dap::strategy {

namespace {

/// Builds the batch tree over `leaves` (padded to a power of two by
/// repeating the last leaf) and returns all levels, levels[0] = leaves.
std::vector<std::vector<common::Bytes>> batch_tree(
    std::vector<common::Bytes> leaves) {
  while ((leaves.size() & (leaves.size() - 1)) != 0) {
    leaves.push_back(leaves.back());
  }
  std::vector<std::vector<common::Bytes>> levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const std::vector<common::Bytes>& below = levels.back();
    std::vector<common::Bytes> above;
    above.reserve(below.size() / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      above.push_back(
          crypto::sha256_bytes(common::concat({below[i], below[i + 1]})));
    }
    levels.push_back(std::move(above));
  }
  return levels;
}

/// Sibling hashes for leaf `k`, leaf level upward.
std::vector<common::Bytes> batch_path(
    const std::vector<std::vector<common::Bytes>>& levels, std::size_t k) {
  std::vector<common::Bytes> path;
  for (std::size_t lvl = 0; lvl + 1 < levels.size(); ++lvl) {
    path.push_back(levels[lvl][k ^ 1]);
    k >>= 1;
  }
  return path;
}

/// Folds a leaf hash up its path to the claimed root.
common::Bytes fold_path(common::Bytes leaf,
                        const std::vector<common::Bytes>& path,
                        std::size_t index) {
  for (const common::Bytes& sibling : path) {
    leaf = (index & 1) != 0
               ? crypto::sha256_bytes(common::concat({sibling, leaf}))
               : crypto::sha256_bytes(common::concat({leaf, sibling}));
    index >>= 1;
  }
  return leaf;
}

std::size_t signature_bits(const crypto::MerkleSignature& sig) {
  std::size_t bits = 32;  // leaf index
  for (const common::Bytes& chain : sig.wots.chains) bits += chain.size() * 8;
  for (const common::Bytes& hash : sig.auth_path) bits += hash.size() * 8;
  return bits;
}

}  // namespace

MabsReport run_mabs(const MabsConfig& config) {
  if (config.packets_per_interval == 0) {
    throw std::invalid_argument("run_mabs: batch size must be >= 1");
  }
  if ((std::size_t{1} << config.signer_height) < config.intervals) {
    throw std::invalid_argument(
        "run_mabs: signer capacity 2^height below interval count");
  }
  common::Rng rng(common::subseed(config.seed, 0x3ab5));
  crypto::MerkleSigner signer(rng.bytes(16), config.signer_height);

  MabsReport report;
  for (std::uint32_t i = 1; i <= config.intervals; ++i) {
    // Sender: batch the interval's packets, sign the batch root once.
    std::vector<common::Bytes> messages;
    std::vector<common::Bytes> leaves;
    for (std::size_t k = 0; k < config.packets_per_interval; ++k) {
      messages.push_back(common::bytes_of(
          "mabs-i" + std::to_string(i) + "-k" + std::to_string(k)));
      leaves.push_back(crypto::sha256_bytes(messages.back()));
    }
    const auto levels = batch_tree(leaves);
    const common::Bytes& batch_root = levels.back()[0];
    const crypto::MerkleSignature root_sig = signer.sign(batch_root);

    // One root signature per batch, amortized exactly — plus each
    // packet's payload and authentication path.
    report.bits_sent += signature_bits(root_sig);
    const std::size_t path_hashes = levels.size() - 1;

    // Receiver: the root signature verifies once per batch (cached by
    // root thereafter), every packet verifies immediately via its path.
    bool root_ok = false;
    bool root_checked = false;
    for (std::size_t k = 0; k < config.packets_per_interval; ++k) {
      ++report.packets_sent;
      report.bits_sent += messages[k].size() * 8 + path_hashes * 256 + 32;
      const auto path = batch_path(levels, k);
      const common::Bytes folded =
          fold_path(crypto::sha256_bytes(messages[k]), path, k);
      ++report.path_verifications;
      if (folded != batch_root) continue;
      if (!root_checked) {
        root_ok = crypto::merkle_verify(signer.root(), batch_root, root_sig,
                                        config.signer_height);
        root_checked = true;
        ++report.signature_verifications;
      }
      if (root_ok) ++report.authenticated;
    }

    // Adversary: forged packets claiming membership in this batch. The
    // path folding lands on a different root, so rejection is immediate
    // and nothing is ever buffered — the no-DoS-surface property.
    for (std::size_t f = 0; f < config.forged_per_interval; ++f) {
      ++report.forged_sent;
      const common::Bytes forged_message = rng.bytes(16);
      std::vector<common::Bytes> forged_path;
      for (std::size_t h = 0; h < path_hashes; ++h) {
        forged_path.push_back(rng.bytes(crypto::kSha256DigestSize));
      }
      report.bits_sent +=
          forged_message.size() * 8 + path_hashes * 256 + 32;
      const common::Bytes folded = fold_path(
          crypto::sha256_bytes(forged_message), forged_path, f);
      ++report.path_verifications;
      if (folded != batch_root) {
        ++report.forged_rejected;
      } else if (crypto::merkle_verify(signer.root(), batch_root, root_sig,
                                       config.signer_height)) {
        // Unreachable short of a SHA-256 collision; counted for honesty.
        ++report.authenticated;
      }
    }
  }
  const double opportunities = static_cast<double>(report.packets_sent);
  report.auth_rate =
      opportunities > 0.0
          ? static_cast<double>(report.authenticated) / opportunities
          : 0.0;
  return report;
}

}  // namespace dap::strategy
