#include "strategy/sybil.h"

#include <stdexcept>
#include <string>

#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/mac.h"
#include "sim/time.h"
#include "wire/packet.h"

namespace dap::strategy {

SybilCoordinator::SybilCoordinator(const fleet::ScenarioSpec& spec,
                                   fleet::FleetSim& sim)
    : sim_(&sim),
      chain_(common::Rng(common::subseed(spec.seed, 0x5b11)).bytes(16),
             spec.intervals + 8, crypto::PrfDomain::kChainStep,
             crypto::kChainKeySize) {
  if (!spec.strategy.sybil.enabled) {
    throw std::invalid_argument(
        "SybilCoordinator: spec.strategy.sybil must be enabled");
  }
  std::vector<std::uint32_t> attacker_nodes = spec.attackers;
  if (attacker_nodes.empty()) attacker_nodes.push_back(0);

  const sim::IntervalSchedule sched(0, spec.interval_us);
  const std::uint32_t cohort = spec.strategy.sybil.cohort;
  for (std::uint32_t i = 1; i <= spec.intervals; ++i) {
    const sim::SimTime t_announce =
        sched.interval_start(i) + spec.interval_us / 2 + sim::kMillisecond;
    const sim::SimTime t_reveal = sched.interval_start(i + 1) +
                                  spec.interval_us / 8 + sim::kMillisecond;
    for (std::uint32_t s = 0; s < cohort; ++s) {
      // Every identity injects at its own relay hop (round-robin over
      // the attacker set) with distinct payload bytes, so dedup at any
      // single relay cannot collapse the cohort.
      const std::uint32_t node = attacker_nodes[s % attacker_nodes.size()];
      const std::string payload =
          "FORGED-s" + std::to_string(s) + "-i" + std::to_string(i);
      // Announce: MACed under the forged chain's real per-interval MAC
      // key, impersonating the victim sender — internally consistent
      // with the reveal below, so only weak auth stands in the way.
      sim.queue().schedule_at(t_announce + s, [this, node, i, payload] {
        wire::MacAnnounce announce;
        announce.sender = 1;
        announce.interval = i;
        announce.mac =
            crypto::compute_mac(crypto::HmacKey(chain_.mac_key(i)),
                                common::bytes_of(payload), crypto::kMacSize);
        sim_->inject(node, announce);
        ++announces_;
      });
      // Reveal: the shared forged chain key, staggered per identity.
      const sim::SimTime stagger =
          static_cast<sim::SimTime>(s) * spec.strategy.sybil.reveal_stagger_us;
      sim.queue().schedule_at(t_reveal + stagger, [this, node, i, payload] {
        wire::MessageReveal reveal;
        reveal.sender = 1;
        reveal.interval = i;
        reveal.message = common::bytes_of(payload);
        reveal.key = chain_.key(i);
        sim_->inject(node, reveal);
        ++reveals_;
      });
    }
  }
}

}  // namespace dap::strategy
