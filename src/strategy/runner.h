#pragma once
// Strategy-scenario driver: interprets ScenarioSpec::strategy.
//
// run_scenario wires the requested strategy components around a
// FleetSim — the adaptive flooding adversary (drain observer + injected
// floods), the Sybil cohort (scheduled injections), cooperative
// verification (drain participant) — runs the scenario, and rolls the
// strategy-level results into the ambient obs registry:
//
//   strategy.attacker.p            empirical attack share (gauge)
//   strategy.oracle.p              offline ESS prediction  (gauge)
//   strategy.ess_gap               |empirical - oracle|    (gauge)
//   strategy.attacks_launched      intervals flooded       (counter)
//   strategy.forged_accepted      forged auths, MUST be 0  (counter)
//   strategy.sybil.{announces,reveals}                     (counters)
//   strategy.coop.{verdicts_shared,walks_skipped,
//                  hint_audits,poisoned_rejected}          (counters)
//
// A spec with no strategy engaged runs as a plain FleetSim (the gauges
// are not registered). The ESS oracle is game::solve_ess over
// GameParams{Ra = reward, k1 = cost, xa = p_eff, m = buffers} with
// SuccessModel::kReservoir — the exact game the fleet's reservoir
// receivers are playing.

#include <cstdint>

#include "fleet/fleet.h"
#include "fleet/scenario.h"
#include "obs/snapshot.h"

namespace dap::strategy {

struct StrategyOutcome {
  fleet::FleetReport report;
  // ---- Adaptive adversary (zeros unless strategy.adaptive.enabled) ----
  /// Empirical attack share (tail mean of the learner's trajectory).
  double attacker_share = 0.0;
  /// Offline ESS prediction for the attacker share.
  double oracle_share = 0.0;
  /// |attacker_share - oracle_share| — the convergence gap gate 7 caps.
  double ess_gap = 0.0;
  std::uint64_t attacks_launched = 0;
  // ---- Sybil cohort ----
  std::uint64_t sybil_announces = 0;
  std::uint64_t sybil_reveals = 0;
  // ---- Cooperative verification (summed over cohorts) ----
  std::uint64_t coop_verdicts_shared = 0;
  std::uint64_t coop_walks_skipped = 0;
  std::uint64_t coop_hint_audits = 0;
  std::uint64_t coop_poisoned_rejected = 0;
};

/// Computes the offline oracle's predicted attacker share for an
/// adaptive spec (clamped Y'(X=1) candidate under the reservoir success
/// model). Exposed for tests and the bench's predicted-vs-measured
/// table. Throws std::invalid_argument unless strategy.adaptive is
/// enabled and forged_fraction > 0.
[[nodiscard]] double oracle_attack_share(const fleet::ScenarioSpec& spec);

/// Runs `spec` with its strategy components attached. The snapshotter,
/// when given, must outlive the call (same contract as FleetSim).
StrategyOutcome run_scenario(const fleet::ScenarioSpec& spec,
                             obs::Snapshotter* snapshotter = nullptr);

}  // namespace dap::strategy
