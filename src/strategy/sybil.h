#pragma once
// Sybil cohorts: coordinated forged identities sharing one key chain.
//
// A lone flooding forger sends random MAC bytes; a coordinated Sybil
// cohort is strictly stronger. All `cohort` identities share one
// *self-consistent* forged key chain (randomly seeded, so its anchor can
// never verify against the root's authenticated commitment), MAC their
// announces under the forged chain's real per-interval MAC keys, and
// reveal the forged chain keys staggered across relay hops — each
// identity with distinct payload bytes so relay dedup cannot collapse
// the cohort into one packet. Strong auth would accept these reveals if
// weak auth ever let the forged keys through; the chain walk back to
// the commitment is therefore the single trust anchor the scenario
// stresses (and the chaos soak asserts zero forged authentications).

#include <cstdint>

#include "crypto/keychain.h"
#include "fleet/fleet.h"
#include "fleet/scenario.h"

namespace dap::strategy {

class SybilCoordinator {
 public:
  /// Binds to `sim` (must outlive sim.run()): schedules the cohort's
  /// announce + staggered reveal injections on sim.queue(). Call before
  /// sim.run(). Requires spec.strategy.sybil.enabled.
  SybilCoordinator(const fleet::ScenarioSpec& spec, fleet::FleetSim& sim);

  [[nodiscard]] std::uint64_t announces_injected() const noexcept {
    return announces_;
  }
  [[nodiscard]] std::uint64_t reveals_injected() const noexcept {
    return reveals_;
  }

 private:
  fleet::FleetSim* sim_;
  /// The shared forged chain — self-consistent, wrong anchor.
  crypto::KeyChain chain_;
  std::uint64_t announces_ = 0;
  std::uint64_t reveals_ = 0;
};

}  // namespace dap::strategy
