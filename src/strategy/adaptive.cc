#include "strategy/adaptive.h"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/mac.h"
#include "sim/time.h"

namespace dap::strategy {

namespace {
/// y is kept strictly interior: the replicator field vanishes on the
/// edges, so a learner that ever hit 0 or 1 could never move again.
constexpr double kShareFloor = 0.02;
constexpr double kShareCeil = 0.98;
}  // namespace

AdaptiveFloodAttacker::AdaptiveFloodAttacker(const fleet::ScenarioSpec& spec,
                                             fleet::FleetSim& sim)
    : sim_(&sim),
      forger_(1, crypto::kMacSize,
              common::Rng(common::subseed(spec.seed, 0xada9))),
      flood_copies_(sim::FloodingForger::copies_for_fraction(
          1, spec.forged_fraction)),
      eta_(spec.strategy.adaptive.learning_rate),
      y_(spec.strategy.adaptive.initial_share) {
  if (!spec.strategy.adaptive.enabled) {
    throw std::invalid_argument(
        "AdaptiveFloodAttacker: spec.strategy.adaptive must be enabled");
  }
  if (spec.forged_fraction <= 0.0) {
    throw std::invalid_argument(
        "AdaptiveFloodAttacker: forged_fraction > 0 required (flood "
        "intensity of an attacked interval)");
  }
  p_eff_ = static_cast<double>(flood_copies_) /
           static_cast<double>(flood_copies_ + 1);
  cost_over_reward_ = spec.strategy.adaptive.cost * p_eff_ /
                      spec.strategy.adaptive.reward;
  attacker_nodes_ = spec.attackers;
  if (attacker_nodes_.empty()) attacker_nodes_.push_back(0);

  sim.set_drain_observer(
      [this](const fleet::DrainObservation& obs) { observe(obs); });

  // One decision event per interval, 1 ms behind the root's announce —
  // the same offset the static flood uses, so forged copies race the
  // authentic one into every reservoir.
  const sim::IntervalSchedule sched(0, spec.interval_us);
  for (std::uint32_t i = 1; i <= spec.intervals; ++i) {
    const sim::SimTime at =
        sched.interval_start(i) + spec.interval_us / 2 + sim::kMillisecond;
    sim.queue().schedule_at(at, [this, i] { decide(i); });
  }
}

void AdaptiveFloodAttacker::observe(const fleet::DrainObservation& obs) {
  if (obs.forged) return;  // only the authentic stream carries payoff
  if (attacked_.count(obs.interval) == 0) return;
  Feedback& fb = feedback_[obs.interval];
  fb.auth += obs.members_authenticated + (obs.sentinel_authenticated ? 1 : 0);
  fb.total += obs.members_total + 1;
}

void AdaptiveFloodAttacker::update(double success) {
  const double step =
      eta_ * y_ * (1.0 - y_) * (success - cost_over_reward_ * y_);
  y_ = std::clamp(y_ + step, kShareFloor, kShareCeil);
}

void AdaptiveFloodAttacker::absorb_feedback(std::uint32_t up_to) {
  // Interval j's reveal drains at start(j+1) + 3/4 interval, before the
  // decision for j+2 fires at start(j+2) + 1/2 interval + 1 ms.
  for (auto it = feedback_.begin(); it != feedback_.end();) {
    if (up_to != 0 && it->first + 2 > up_to) break;  // map is ordered
    if (it->second.total > 0) {
      const double auth = static_cast<double>(it->second.auth) /
                          static_cast<double>(it->second.total);
      update(1.0 - auth);
    }
    it = feedback_.erase(it);
  }
}

void AdaptiveFloodAttacker::decide(std::uint32_t interval) {
  absorb_feedback(interval);
  history_.push_back(y_);
  acc_ += y_;
  if (acc_ < 1.0) return;
  acc_ -= 1.0;
  attacked_.insert(interval);
  ++attacks_;
  for (const std::uint32_t node : attacker_nodes_) {
    for (std::size_t c = 0; c < flood_copies_; ++c) {
      sim_->inject(node, forger_.forge(interval));
    }
  }
}

void AdaptiveFloodAttacker::finalize() { absorb_feedback(0); }

double AdaptiveFloodAttacker::empirical_share() const noexcept {
  if (history_.empty()) return y_;
  const std::size_t from = history_.size() / 2;
  double sum = 0.0;
  for (std::size_t i = from; i < history_.size(); ++i) sum += history_[i];
  return sum / static_cast<double>(history_.size() - from);
}

}  // namespace dap::strategy
