#pragma once
// Online adaptive flooding adversary — the live half of the game loop.
//
// The offline solver (game/ess.h) predicts the attacker's share at the
// ESS; the paper's §V claim is that replicator dynamics *drive* a
// population there. This attacker closes that loop inside the fleet
// simulation: before each interval's announce it decides to flood or
// stay silent with its current mixed strategy y (error-diffusion over
// intervals, so the attacked fraction tracks y exactly), observes the
// authentic stream's authentication outcomes through FleetSim's drain
// observer, and re-tunes y along a discretized, payoff-normalized
// replicator update
//
//   y <- y + eta * y * (1 - y) * (S - (k1 * p / Ra) * y)
//
// where S is the observed attack success of an attacked interval
// (1 - authenticated fraction of the authentic reveal), Ra/k1 are the
// spec's reward/cost, and p = F/(F+1) the effective forged fraction
// when flooding with F copies. The update's fixed point
// y* = S * Ra / (k1 * p) is exactly the game's Y'(X = 1) = P*Ra/(k1*xa)
// ESS candidate under SuccessModel::kReservoir with xa = p — so the
// offline solver is the oracle the learner is gated against
// (strategy.ess_gap in the obs registry, gate 7 in bench_trend.py).
//
// Feedback is delayed: interval i's reveal drains during interval i+1,
// so the decision for interval i incorporates outcomes up to i-2. The
// whole loop is event-driven on FleetSim's queue and bitwise
// deterministic at any thread count.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/scenario.h"
#include "sim/adversary.h"

namespace dap::strategy {

class AdaptiveFloodAttacker {
 public:
  /// Binds to `sim` (this object must outlive sim.run()): installs the
  /// drain observer and schedules one attack-decision event per interval
  /// on sim.queue(). Call before sim.run(). Requires
  /// spec.strategy.adaptive.enabled and spec.forged_fraction > 0 (the
  /// flood intensity used when an interval is attacked).
  AdaptiveFloodAttacker(const fleet::ScenarioSpec& spec, fleet::FleetSim& sim);

  /// Applies feedback from the final intervals (whose drains happen
  /// after the last decision event). Call once, after sim.run().
  void finalize();

  /// The learner's current attack share y.
  [[nodiscard]] double share() const noexcept { return y_; }

  /// Mean share over the last half of the intervals — the empirical p
  /// the ESS gap is measured on (one noisy S sample per attacked
  /// interval makes the final point jitter; the tail mean does not).
  [[nodiscard]] double empirical_share() const noexcept;

  /// Effective forged fraction of an attacked interval, p = F/(F+1).
  [[nodiscard]] double effective_fraction() const noexcept { return p_eff_; }

  /// Intervals actually flooded.
  [[nodiscard]] std::uint64_t attacks_launched() const noexcept {
    return attacks_;
  }

  /// Pre-decision share per interval, in interval order.
  [[nodiscard]] const std::vector<double>& share_history() const noexcept {
    return history_;
  }

 private:
  void observe(const fleet::DrainObservation& obs);
  void decide(std::uint32_t interval);
  /// Applies the replicator update for every attacked interval whose
  /// feedback is complete (drained before the decision for `up_to`).
  void absorb_feedback(std::uint32_t up_to);
  void update(double success);

  fleet::FleetSim* sim_;
  std::vector<std::uint32_t> attacker_nodes_;
  sim::FloodingForger forger_;
  std::size_t flood_copies_;  // F: forged copies per attacked interval
  double p_eff_;              // F / (F + 1)
  double eta_;
  double cost_over_reward_;  // k1 * p / Ra, the normalized cost slope
  double y_;
  double acc_ = 0.0;  // error-diffusion accumulator
  std::uint64_t attacks_ = 0;
  std::set<std::uint32_t> attacked_;
  /// Authentic-reveal outcome sums per interval (auth, total).
  struct Feedback {
    std::uint64_t auth = 0;
    std::uint64_t total = 0;
  };
  std::map<std::uint32_t, Feedback> feedback_;
  std::vector<double> history_;
};

}  // namespace dap::strategy
