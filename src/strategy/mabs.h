#pragma once
// MABS-style batch-signature baseline (Multicast Authentication Based on
// Batch Signature, Zhou & Fang) — the third receiver family next to DAP
// and TESLA++ in the bandwidth/defense-cost curves.
//
// Instead of time-asymmetric MACs, the sender batches each interval's B
// packets into a Merkle tree and signs the root once with a many-time
// signature (crypto::MerkleSigner, the repo's hash-based stand-in for
// the paper's batch RSA/BLS). Each packet ships its authentication path
// plus the amortized root signature, so a receiver authenticates every
// packet *immediately* — no buffering window, hence no memory-DoS
// surface at all: a forged packet fails its path/signature check and is
// dropped on arrival, and stored state is zero. The price is bandwidth
// (path + signature share per packet) and per-packet hash work — the
// trade DAP's curves are compared against in bench/game_loop.
//
// This is a self-contained mini-sim (no event queue): batch signing has
// no timing dimension worth simulating, only per-packet costs.

#include <cstdint>

namespace dap::strategy {

struct MabsConfig {
  std::uint64_t seed = 1;
  std::uint32_t intervals = 8;
  /// Authentic packets batched per interval (the batch size B).
  std::size_t packets_per_interval = 8;
  /// Forged packets injected per interval (wrong path / wrong root).
  std::size_t forged_per_interval = 0;
  /// Merkle-signature tree height: 2^height root signatures available
  /// (one per interval; must cover `intervals`).
  unsigned signer_height = 6;
};

struct MabsReport {
  std::uint64_t packets_sent = 0;
  std::uint64_t forged_sent = 0;
  std::uint64_t authenticated = 0;
  /// Forged packets rejected on arrival. MUST equal forged_sent.
  std::uint64_t forged_rejected = 0;
  /// Total bits on the wire: payload + per-packet auth path + one root
  /// signature per batch (amortized exactly, not per-copy).
  std::uint64_t bits_sent = 0;
  /// Root-signature verifications (cached per root: once per batch).
  std::uint64_t signature_verifications = 0;
  /// Per-packet Merkle path foldings.
  std::uint64_t path_verifications = 0;
  /// Records buffered awaiting a later key: structurally zero for MABS.
  std::uint64_t stored_records = 0;
  double auth_rate = 0.0;
  [[nodiscard]] bool zero_forged() const noexcept {
    return forged_rejected == forged_sent;
  }
};

/// Runs the batch-signature loop; deterministic in `config.seed`.
/// Throws std::invalid_argument for a zero batch or an exhausted signer
/// (2^signer_height < intervals).
MabsReport run_mabs(const MabsConfig& config);

}  // namespace dap::strategy
