#pragma once
// Cooperative verification: gossiping reveal verdicts between cohorts.
//
// Within one drain sweep, FleetSim drains cohorts in node-id order —
// root-ward relays before the leaves behind them. This coordinator
// rides that order as a fleet::DrainParticipant: verdicts harvested
// from already-drained cohorts are installed as hints into each later
// cohort, so followers skip the redundant weak-auth chain walks the
// leaders already performed (ReceiverCohort::install_hints; the
// skipped walks would have run the same accept_many batch).
//
// The trust boundary: only *invalid* verdicts are ever acted on, and a
// deterministic audit fraction of skips is re-walked locally. A
// poisoned peer (poisoned mode: the first-drained cohort lies,
// claiming the authentic reveal failed) can therefore suppress
// liveness at un-audited followers but can never cause a forged key to
// authenticate — audits expose the contradiction and the lying source
// (CohortStats::poisoned_hints, strategy.coop.poisoned_rejected).

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "fleet/fleet.h"
#include "fleet/scenario.h"

namespace dap::strategy {

class CoopCoordinator final : public fleet::DrainParticipant {
 public:
  /// Requires spec.strategy.coop.enabled. Install on the sim with
  /// sim.set_drain_participant(&coordinator) before run().
  explicit CoopCoordinator(const fleet::ScenarioSpec& spec);

  void before_drain(std::uint32_t node,
                    fleet::ReceiverCohort& cohort) override;
  void after_drain(std::uint32_t node, fleet::ReceiverCohort& cohort,
                   const std::vector<fleet::RevealOutcome>& outcomes) override;

  /// Hints gossiped across the whole run (honest and poisoned both).
  [[nodiscard]] std::uint64_t verdicts_shared() const noexcept {
    return verdicts_shared_;
  }
  /// Deliberately-false hints the poisoned source emitted.
  [[nodiscard]] std::uint64_t lies_told() const noexcept { return lies_; }

 private:
  double audit_fraction_;
  bool poisoned_;
  std::uint64_t seed_;
  std::uint64_t install_counter_ = 0;
  std::uint64_t verdicts_shared_ = 0;
  std::uint64_t lies_ = 0;
  /// The poisoned identity: the first cohort drained (its lies reach
  /// every follower in the sweep).
  std::uint32_t poison_source_ = 0;
  bool poison_source_set_ = false;
  /// Sweep detection: node ids within a sweep are strictly increasing,
  /// so a non-increasing id starts a new sweep (stale hints dropped).
  std::uint32_t last_node_ = 0;
  bool in_sweep_ = false;
  std::vector<fleet::RevealHint> hints_;
  std::set<std::pair<std::uint32_t, common::Bytes>> seen_;
};

}  // namespace dap::strategy
