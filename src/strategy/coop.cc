#include "strategy/coop.h"

#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"

namespace dap::strategy {

CoopCoordinator::CoopCoordinator(const fleet::ScenarioSpec& spec)
    : audit_fraction_(spec.strategy.coop.audit_fraction),
      poisoned_(spec.strategy.coop.poisoned),
      seed_(common::subseed(spec.seed, 0xc00b)) {
  if (!spec.strategy.coop.enabled) {
    throw std::invalid_argument(
        "CoopCoordinator: spec.strategy.coop must be enabled");
  }
}

void CoopCoordinator::before_drain(std::uint32_t node,
                                   fleet::ReceiverCohort& cohort) {
  if (in_sweep_ && node <= last_node_) {
    // New sweep: the previous sweep's verdicts covered reveals that are
    // drained by now — stale, drop them.
    hints_.clear();
    seen_.clear();
  }
  in_sweep_ = true;
  last_node_ = node;
  if (!poison_source_set_) {
    poison_source_ = node;
    poison_source_set_ = true;
  }
  cohort.install_hints(hints_, audit_fraction_,
                       common::subseed(seed_, ++install_counter_));
}

void CoopCoordinator::after_drain(
    std::uint32_t node, fleet::ReceiverCohort& cohort,
    const std::vector<fleet::RevealOutcome>& outcomes) {
  (void)outcomes;
  const bool liar = poisoned_ && node == poison_source_;
  for (const fleet::WalkResult& walk : cohort.last_drain_walks()) {
    // Honest peers share only their invalid verdicts; the poisoned one
    // additionally claims its *valid* walks (the authentic reveals)
    // failed — the strongest lie the hint schema admits.
    if (walk.weak_valid && !liar) continue;
    if (!seen_.emplace(walk.interval, walk.key).second) continue;
    hints_.push_back(fleet::RevealHint{walk.interval, walk.key, node});
    ++verdicts_shared_;
    if (walk.weak_valid) ++lies_;
  }
}

}  // namespace dap::strategy
