#include "strategy/runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "game/ess.h"
#include "game/params.h"
#include "obs/registry.h"
#include "sim/adversary.h"
#include "strategy/adaptive.h"
#include "strategy/coop.h"
#include "strategy/sybil.h"

namespace dap::strategy {

double oracle_attack_share(const fleet::ScenarioSpec& spec) {
  if (!spec.strategy.adaptive.enabled || spec.forged_fraction <= 0.0) {
    throw std::invalid_argument(
        "oracle_attack_share: adaptive strategy with forged_fraction > 0 "
        "required");
  }
  // The learner floods with F copies, so its effective forged fraction
  // is the discretized F/(F+1), not the raw spec value.
  const std::size_t copies =
      sim::FloodingForger::copies_for_fraction(1, spec.forged_fraction);
  game::GameParams g;
  g.Ra = spec.strategy.adaptive.reward;
  g.k1 = spec.strategy.adaptive.cost;
  g.xa = static_cast<double>(copies) / static_cast<double>(copies + 1);
  g.m = spec.buffers;
  g.success_model = game::SuccessModel::kReservoir;
  game::GameParams::validate(g);
  // The fleet's defenders always buffer (X = 1), so the attacker's rest
  // point is the Y'(X=1) = P*Ra/(k1*xa) candidate, clamped to the
  // simplex. (solve_ess agrees whenever its classifier lands in the
  // X = 1 regimes; using the candidate directly keeps the oracle exact
  // for the fixed-defense fleet.)
  return std::min(1.0, game::ess_candidates(g).y_at_x1);
}

StrategyOutcome run_scenario(const fleet::ScenarioSpec& spec,
                             obs::Snapshotter* snapshotter) {
  spec.validate();
  fleet::FleetSim sim(spec);
  if (snapshotter != nullptr) sim.set_snapshotter(snapshotter);

  std::unique_ptr<AdaptiveFloodAttacker> attacker;
  std::unique_ptr<SybilCoordinator> sybil;
  std::unique_ptr<CoopCoordinator> coop;
  if (spec.strategy.adaptive.enabled) {
    attacker = std::make_unique<AdaptiveFloodAttacker>(spec, sim);
  }
  if (spec.strategy.sybil.enabled) {
    sybil = std::make_unique<SybilCoordinator>(spec, sim);
  }
  if (spec.strategy.coop.enabled) {
    coop = std::make_unique<CoopCoordinator>(spec);
    sim.set_drain_participant(coop.get());
  }

  StrategyOutcome out;
  out.report = sim.run();

  auto& reg = obs::Registry::global();
  if (attacker) {
    attacker->finalize();
    out.attacker_share = attacker->empirical_share();
    out.oracle_share = oracle_attack_share(spec);
    out.ess_gap = std::fabs(out.attacker_share - out.oracle_share);
    out.attacks_launched = attacker->attacks_launched();
    reg.set(reg.gauge("strategy.attacker.p"), out.attacker_share);
    reg.set(reg.gauge("strategy.oracle.p"), out.oracle_share);
    reg.set(reg.gauge("strategy.ess_gap"), out.ess_gap);
    reg.add(reg.counter("strategy.attacks_launched"), out.attacks_launched);
  }
  if (sybil) {
    out.sybil_announces = sybil->announces_injected();
    out.sybil_reveals = sybil->reveals_injected();
    reg.add(reg.counter("strategy.sybil.announces"), out.sybil_announces);
    reg.add(reg.counter("strategy.sybil.reveals"), out.sybil_reveals);
  }
  if (coop) {
    for (std::uint32_t v = 0; v < sim.topology().node_count; ++v) {
      const fleet::ReceiverCohort* cohort = sim.cohort_at(v);
      if (cohort == nullptr) continue;
      out.coop_walks_skipped += cohort->stats().walks_skipped;
      out.coop_hint_audits += cohort->stats().hint_audits;
      out.coop_poisoned_rejected += cohort->stats().poisoned_hints;
    }
    out.coop_verdicts_shared = coop->verdicts_shared();
    reg.add(reg.counter("strategy.coop.verdicts_shared"),
            out.coop_verdicts_shared);
    reg.add(reg.counter("strategy.coop.walks_skipped"),
            out.coop_walks_skipped);
    reg.add(reg.counter("strategy.coop.hint_audits"), out.coop_hint_audits);
    reg.add(reg.counter("strategy.coop.poisoned_rejected"),
            out.coop_poisoned_rejected);
  }
  if (spec.strategy.engaged()) {
    // Forged-auth accounting under the strategy adversaries, exported
    // under both the "forged_accepted" substring (trend gate 1) and the
    // strategy namespace (gate 7). Registered even when 0 — the gates
    // key off presence.
    reg.add(reg.counter("strategy.forged_accepted"),
            out.report.forged_accepted);
  }
  return out;
}

}  // namespace dap::strategy
