#include "fleet/cohort.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/contracts.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/mac.h"

namespace dap::fleet {

namespace {

/// Uniform double in [0, 1) from one stateless 64-bit draw.
double unit_double(std::uint64_t word) noexcept {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

common::Rng sentinel_rng(std::uint64_t cohort_seed) {
  return common::Rng(common::subseed(cohort_seed, 0));
}

}  // namespace

ReceiverCohort::ReceiverCohort(const CohortConfig& config,
                               common::Bytes commitment)
    : config_(config),
      stat_members_(config.members == 0 ? 0 : config.members - 1),
      auth_(crypto::PrfDomain::kChainStep, config.dap.key_size, commitment),
      sentinel_(config.dap, commitment,
                sentinel_rng(config.seed).bytes(16), config.clock,
                sentinel_rng(config.seed).fork(1)) {
  if (config_.members == 0) {
    throw std::invalid_argument("ReceiverCohort: members must be >= 1");
  }
  if (config_.dap.buffers == 0) {
    throw std::invalid_argument("ReceiverCohort: buffers must be >= 1");
  }
}

ReceiverCohort::Round& ReceiverCohort::round_for(std::uint32_t interval) {
  auto it = rounds_.find(interval);
  if (it == rounds_.end()) {
    Round round;
    round.slots.assign(stat_members_ * config_.dap.buffers, 0);
    round.counts.assign(stat_members_, 0);
    it = rounds_.emplace(interval, std::move(round)).first;
  }
  return it->second;
}

void ReceiverCohort::receive_announce(const wire::MacAnnounce& packet,
                                      sim::SimTime true_now) {
  DAP_REQUIRE(config_.dap.disclosure_delay > 0 && config_.dap.buffers > 0,
              "ReceiverCohort::receive_announce: cohort must be configured");
  const sim::SimTime local_now = local_time(true_now);
  ++stats_.announces_received;
  sentinel_.receive(packet, local_now);
  // Algorithm 2 line 3 for the statistical members: the loose-time
  // safety check, evaluated once for the whole cohort (shared clock).
  if (!cohort_packet_safe(packet.interval, local_now)) {
    ++stats_.announces_unsafe;
    return;
  }
  round_for(packet.interval).macs.push_back(packet.mac);
}

sim::SimTime ReceiverCohort::local_time(sim::SimTime true_now) const noexcept {
  return config_.clock.local_time(true_now) + skew_;
}

sim::SimTime ReceiverCohort::true_time_of(
    sim::SimTime local_now) const noexcept {
  const std::int64_t true_now = static_cast<std::int64_t>(local_now) -
                                static_cast<std::int64_t>(skew_) -
                                config_.clock.offset();
  return true_now > 0 ? static_cast<sim::SimTime>(true_now) : 0;
}

bool ReceiverCohort::cohort_packet_safe(std::uint32_t interval,
                                        sim::SimTime local_now) const {
  if (calibration_.has_value()) {
    return calibration_->packet_safe(interval, config_.dap.disclosure_delay,
                                     local_now, config_.dap.schedule);
  }
  return config_.clock.packet_safe(interval, config_.dap.disclosure_delay,
                                   local_now, config_.dap.schedule);
}

void ReceiverCohort::crash_restart(sim::SimTime true_now,
                                   sim::SimTime reboot_skew_us) {
  // Forward-only: the skew accumulates and is never snapped back — a
  // backward correction would void the loose-sync bound (faults.h).
  skew_ += reboot_skew_us;
  calibration_.reset();  // volatile, like the sentinel's
  rounds_.clear();
  pending_.clear();
  hints_.clear();
  last_walks_.clear();
  sentinel_.crash_restart(local_time(true_now));
  ++stats_.crash_restarts;
}

void ReceiverCohort::enable_resync(
    sim::SimTime handshake_latency_us,
    std::function<bool(sim::SimTime true_now)> transport_up) {
  common::Rng sync_rng(common::subseed(config_.seed, 0x7e55));
  const common::Bytes pairwise = sync_rng.bytes(16);
  sync_client_.emplace(pairwise, sync_rng.next_u64());
  sync_responder_.emplace(pairwise);
  sentinel_.set_resync_handler(
      [this, handshake_latency_us, up = std::move(transport_up)](
          sim::SimTime local_now) -> std::optional<tesla::SyncCalibration> {
        const sim::SimTime true_now = true_time_of(local_now);
        if (up && !up(true_now)) return std::nullopt;
        // A real handshake over a fixed-latency control path: the bound
        // it yields covers the accumulated reboot skew because the
        // responder answers with TRUE sender time while the client
        // anchors on its own (skewed) readings.
        const tesla::SyncRequest request = sync_client_->begin(local_now);
        const tesla::SyncResponse response = sync_responder_->respond(
            request, true_now + handshake_latency_us);
        const sim::SimTime arrival =
            local_time(true_now + 2 * handshake_latency_us);
        auto calibration = sync_client_->complete(
            response, std::max(arrival, local_now));
        if (calibration.has_value()) {
          // The statistical members adopt the sentinel's calibration —
          // without it their shared safety check would reject authentic
          // announces forever after a skewed reboot.
          calibration_ = *calibration;
        }
        return calibration;
      });
}

void ReceiverCohort::enqueue_reveal(const wire::MessageReveal& packet) {
  sentinel_.enqueue(packet);
  pending_.push_back(packet);
}

void ReceiverCohort::install_hints(std::vector<RevealHint> hints,
                                   double audit_fraction,
                                   std::uint64_t audit_seed) {
  if (audit_fraction < 0.0 || audit_fraction > 1.0) {
    throw std::invalid_argument(
        "ReceiverCohort::install_hints: audit_fraction must be in [0, 1]");
  }
  hints_ = std::move(hints);
  audit_fraction_ = audit_fraction;
  audit_seed_ = audit_seed;
}

void ReceiverCohort::replay_member(Round& round, std::uint32_t interval,
                                   std::size_t mi) const {
  const std::size_t m = config_.dap.buffers;
  std::uint32_t* slots = round.slots.data() + mi * m;
  std::uint16_t& count = round.counts[mi];
  // Stateless draw chain: (cohort seed, member, interval, offer) fully
  // determines every reservoir decision, independent of when — and on
  // which thread — the replay runs.
  const std::uint64_t member_seed =
      common::subseed(config_.seed, 1 + static_cast<std::uint64_t>(mi));
  const std::uint64_t round_seed = common::subseed(member_seed, interval);
  for (std::uint32_t k = round.replayed;
       k < static_cast<std::uint32_t>(round.macs.size()); ++k) {
    const std::uint32_t offer = k + 1;  // 1-based offer index ("the k-th copy")
    if (count < m) {
      for (std::size_t j = 0; j < m; ++j) {
        if (slots[j] == 0) {
          slots[j] = k + 1;
          break;
        }
      }
      ++count;
      continue;
    }
    const std::uint64_t keep_word =
        common::subseed(round_seed, 2ULL * offer);
    const std::uint64_t victim_word =
        common::subseed(round_seed, 2ULL * offer + 1);
    if (unit_double(keep_word) <
        static_cast<double>(m) / static_cast<double>(offer)) {
      slots[victim_word % m] = k + 1;
    }
  }
}

std::vector<RevealOutcome> ReceiverCohort::drain(sim::SimTime true_now) {
  const sim::SimTime local_now = local_time(true_now);
  const auto sentinel_outcomes = sentinel_.drain_pending_batch(local_now);
  DAP_INVARIANT(sentinel_outcomes.size() == pending_.size(),
                "sentinel queue diverged from cohort queue");

  // Cooperative verification: a pending reveal matching an installed
  // *invalid* hint skips its chain walk (treated as a weak-auth
  // failure) unless the deterministic audit draw selects it for a local
  // re-walk. Skipping a genuinely-invalid reveal leaves authenticator
  // state identical (failed weak auth installs nothing); a poisoned
  // hint can only suppress a genuine reveal — never admit a forged one.
  std::vector<std::uint8_t> skip_walk(pending_.size(), 0);
  std::vector<const RevealHint*> hint_of(pending_.size(), nullptr);
  if (!hints_.empty()) {
    for (std::size_t p = 0; p < pending_.size(); ++p) {
      for (const RevealHint& hint : hints_) {
        if (hint.interval == pending_[p].interval &&
            common::constant_time_equal(hint.key, pending_[p].key)) {
          hint_of[p] = &hint;
          break;
        }
      }
      if (hint_of[p] == nullptr) continue;
      if (unit_double(common::subseed(audit_seed_, p)) < audit_fraction_) {
        ++stats_.hint_audits;  // audit: walk it anyway, compare verdicts
      } else {
        skip_walk[p] = 1;
        ++stats_.walks_skipped;
      }
    }
  }

  // Weak auth for the walked subset runs upfront through accept_many
  // (multi-lane gap walks); verdicts and authenticator state are exactly
  // the sequential ones. Same-interval reveals still carry independent
  // key bytes — accept_many judges each candidate on its own.
  std::vector<tesla::KeyReveal> reveals;
  std::vector<std::size_t> walk_index;
  reveals.reserve(pending_.size());
  walk_index.reserve(pending_.size());
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    if (skip_walk[p] != 0) continue;
    reveals.push_back(tesla::KeyReveal{pending_[p].interval, pending_[p].key});
    walk_index.push_back(p);
  }
  const std::vector<bool> walk_verdicts = auth_.accept_many(reveals);
  std::vector<bool> weak_verdicts(pending_.size(), false);
  last_walks_.clear();
  for (std::size_t w = 0; w < walk_index.size(); ++w) {
    const std::size_t p = walk_index[w];
    weak_verdicts[p] = walk_verdicts[w];
    last_walks_.push_back(WalkResult{pending_[p].interval, pending_[p].key,
                                     walk_verdicts[w]});
    if (hint_of[p] != nullptr && walk_verdicts[w]) {
      // The hint claimed invalid; the audit walk says valid: poisoned.
      ++stats_.poisoned_hints;
      poisoned_sources_.push_back(hint_of[p]->source);
    }
  }
  hints_.clear();

  // Serial pre-pass: one MAC-key derivation per interval per drain (held
  // as precomputed HMAC state, so every per-reveal MAC costs two
  // compressions), and the per-reveal match table over the round's
  // announce arrivals.
  struct Plan {
    std::uint32_t interval = 0;
    bool valid = false;
    Round* round = nullptr;
    std::vector<std::uint8_t> is_match;
  };
  std::map<std::uint32_t, crypto::HmacKey> drain_mac_keys;
  std::vector<Plan> plans(pending_.size());
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    const wire::MessageReveal& packet = pending_[p];
    Plan& plan = plans[p];
    plan.interval = packet.interval;
    ++stats_.reveals_received;
    if (!weak_verdicts[p]) {
      ++stats_.weak_auth_failures;
      continue;
    }
    auto key_it = drain_mac_keys.find(packet.interval);
    if (key_it == drain_mac_keys.end()) {
      auto mac_key = auth_.mac_key(packet.interval);
      if (!mac_key) continue;  // pruned below the chain floor
      ++stats_.mac_key_derivations;
      key_it = drain_mac_keys
                   .try_emplace(packet.interval, crypto::HmacKey(*mac_key))
                   .first;
    }
    plan.valid = true;
    const common::Bytes expected_mac = crypto::compute_mac(
        key_it->second, packet.message, config_.dap.mac_size);
    const auto round_it = rounds_.find(packet.interval);
    if (round_it == rounds_.end()) continue;
    plan.round = &round_it->second;
    plan.is_match.resize(plan.round->macs.size(), 0);
    for (std::size_t a = 0; a < plan.round->macs.size(); ++a) {
      plan.is_match[a] =
          common::constant_time_equal(plan.round->macs[a], expected_mac) ? 1
                                                                         : 0;
    }
  }

  // Parallel phase over statistical members: lazy reservoir replay for
  // every live round, then matching each valid plan in queue order. All
  // writes are index-addressed per member (slots, counts, flags), and
  // every random decision comes from the stateless draw chain, so the
  // result is bitwise identical at any thread count.
  std::vector<std::pair<std::uint32_t, Round*>> live_rounds;
  live_rounds.reserve(rounds_.size());
  for (auto& [interval, round] : rounds_) {
    live_rounds.emplace_back(interval, &round);
  }
  std::vector<std::uint8_t> flags(plans.size() * stat_members_, 0);
  const std::size_t m = config_.dap.buffers;
  common::parallel_for(stat_members_, [&](std::size_t mi) {
    for (auto& [interval, round] : live_rounds) {
      replay_member(*round, interval, mi);
    }
    for (std::size_t p = 0; p < plans.size(); ++p) {
      const Plan& plan = plans[p];
      if (!plan.valid || plan.round == nullptr) continue;
      std::uint32_t* slots = plan.round->slots.data() + mi * m;
      for (std::size_t j = 0; j < m; ++j) {
        const std::uint32_t v = slots[j];
        if (v != 0 && plan.is_match[v - 1] != 0) {
          // Strong auth: consume only the matched record, like
          // RecordBuffer::take_matching.
          slots[j] = 0;
          --plan.round->counts[mi];
          flags[p * stat_members_ + mi] = 1;
          break;
        }
      }
    }
  });
  for (auto& [interval, round] : live_rounds) {
    (void)interval;
    round->replayed = static_cast<std::uint32_t>(round->macs.size());
  }

  // Serial aggregation in queue order.
  const auto& sentinel_verdicts = sentinel_.last_drain_verdicts();
  DAP_INVARIANT(sentinel_verdicts.size() == pending_.size(),
                "sentinel verdicts diverged from cohort queue");
  std::vector<RevealOutcome> outcomes(plans.size());
  for (std::size_t p = 0; p < plans.size(); ++p) {
    RevealOutcome& outcome = outcomes[p];
    outcome.interval = plans[p].interval;
    outcome.message = pending_[p].message;
    outcome.sentinel_authenticated = sentinel_outcomes[p].has_value();
    outcome.verdict = sentinel_verdicts[p];
    if (outcome.sentinel_authenticated) ++stats_.sentinel_auths;
    if (!plans[p].valid) continue;
    std::uint64_t matched = 0;
    for (std::size_t mi = 0; mi < stat_members_; ++mi) {
      matched += flags[p * stat_members_ + mi];
    }
    outcome.members_authenticated = matched;
    stats_.member_auths += matched;
    stats_.member_auth_misses += stat_members_ - matched;
  }
  pending_.clear();

  std::uint64_t stored = 0;
  for (const auto& [interval, round] : rounds_) {
    (void)interval;
    for (const std::uint16_t c : round.counts) stored += c;
  }
  stats_.stored_records = stored;
  stats_.stored_records_peak = std::max(stats_.stored_records_peak, stored);

  prune_rounds(config_.dap.schedule.interval_at(local_now));
  return outcomes;
}

void ReceiverCohort::prune_rounds(std::uint32_t current_interval) {
  while (!rounds_.empty() &&
         rounds_.begin()->first + config_.dap.disclosure_delay <
             current_interval) {
    rounds_.erase(rounds_.begin());
  }
}

std::uint64_t ReceiverCohort::stored_for_interval(std::uint32_t i) const {
  const auto it = rounds_.find(i);
  if (it == rounds_.end()) return 0;
  std::uint64_t stored = 0;
  for (const std::uint16_t c : it->second.counts) stored += c;
  return stored;
}

}  // namespace dap::fleet
