#include "fleet/topology.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "common/rng.h"

namespace dap::fleet {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
}  // namespace

const char* topology_kind_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kTree:
      return "tree";
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kGossip:
      return "gossip";
    case TopologyKind::kFlood:
      return "flood";
  }
  return "unknown";
}

TopologyKind topology_kind_from_name(const std::string& name) {
  if (name == "tree") return TopologyKind::kTree;
  if (name == "grid") return TopologyKind::kGrid;
  if (name == "gossip") return TopologyKind::kGossip;
  if (name == "flood") return TopologyKind::kFlood;
  throw std::invalid_argument("unknown topology kind: " + name);
}

void Topology::validate() const {
  if (node_count == 0) {
    throw std::invalid_argument("topology: node_count must be >= 1");
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const auto& [from, to] : edges) {
    if (from >= to) {
      throw std::invalid_argument(
          "topology: edge must satisfy from < to (index order is the "
          "topological order)");
    }
    if (to >= node_count) {
      throw std::invalid_argument("topology: edge endpoint out of range");
    }
    if (!seen.emplace(from, to).second) {
      throw std::invalid_argument("topology: duplicate edge");
    }
  }
  const auto dist = depths();
  for (std::uint32_t v = 1; v < node_count; ++v) {
    if (dist[v] == kUnreached) {
      throw std::invalid_argument("topology: node unreachable from root");
    }
  }
}

std::vector<std::vector<std::uint32_t>> Topology::adjacency() const {
  std::vector<std::vector<std::uint32_t>> out(node_count);
  for (const auto& [from, to] : edges) {
    out[from].push_back(to);
  }
  for (auto& neighbours : out) {
    std::sort(neighbours.begin(), neighbours.end());
  }
  return out;
}

std::vector<std::uint32_t> Topology::depths() const {
  std::vector<std::uint32_t> dist(node_count, kUnreached);
  dist[0] = 0;
  // Edges sorted by destination: since from < to always holds, every
  // in-edge of v is final by the time v is relaxed.
  auto sorted = edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [from, to] : sorted) {
    if (dist[from] == kUnreached) continue;
    dist[to] = std::min(dist[to], dist[from] + 1);
  }
  return dist;
}

std::uint32_t Topology::depth() const {
  std::uint32_t max_depth = 0;
  for (const std::uint32_t d : depths()) {
    if (d != kUnreached) max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

std::vector<std::uint32_t> Topology::leaves() const {
  std::vector<bool> relays(node_count, false);
  for (const auto& [from, to] : edges) {
    (void)to;
    relays[from] = true;
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < node_count; ++v) {
    if (!relays[v]) out.push_back(v);
  }
  return out;
}

Topology tree_topology(std::uint32_t depth, std::uint32_t fanout) {
  if (fanout == 0) {
    throw std::invalid_argument("tree_topology: fanout must be >= 1");
  }
  Topology topo;
  topo.kind = TopologyKind::kTree;
  // BFS indexing: level l starts right after all shallower levels.
  std::uint32_t level_start = 0;
  std::uint32_t level_size = 1;
  std::uint32_t next_index = 1;
  for (std::uint32_t level = 0; level < depth; ++level) {
    for (std::uint32_t p = 0; p < level_size; ++p) {
      const std::uint32_t parent = level_start + p;
      for (std::uint32_t c = 0; c < fanout; ++c) {
        topo.edges.emplace_back(parent, next_index);
        ++next_index;
      }
    }
    level_start += level_size;
    level_size *= fanout;
  }
  topo.node_count = next_index;
  topo.validate();
  return topo;
}

Topology grid_topology(std::uint32_t rows, std::uint32_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("grid_topology: rows and cols must be >= 1");
  }
  Topology topo;
  topo.kind = TopologyKind::kGrid;
  topo.node_count = rows * cols;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const std::uint32_t v = r * cols + c;
      if (c + 1 < cols) topo.edges.emplace_back(v, v + 1);
      if (r + 1 < rows) topo.edges.emplace_back(v, v + cols);
    }
  }
  topo.validate();
  return topo;
}

Topology gossip_topology(std::uint32_t relays, std::uint32_t fanin,
                         std::uint64_t seed) {
  if (relays == 0) {
    throw std::invalid_argument("gossip_topology: relays must be >= 1");
  }
  if (fanin == 0) {
    throw std::invalid_argument("gossip_topology: fanin must be >= 1");
  }
  Topology topo;
  topo.kind = TopologyKind::kGossip;
  topo.node_count = relays + 1;
  common::Rng rng(seed);
  for (std::uint32_t v = 1; v <= relays; ++v) {
    const std::uint32_t parents = std::min(fanin, v);
    std::set<std::uint32_t> chosen;
    while (chosen.size() < parents) {
      chosen.insert(static_cast<std::uint32_t>(rng.uniform(0, v - 1)));
    }
    for (const std::uint32_t parent : chosen) {
      topo.edges.emplace_back(parent, v);
    }
  }
  topo.validate();
  return topo;
}

Topology flood_topology(std::uint32_t receivers) {
  if (receivers == 0) {
    throw std::invalid_argument("flood_topology: receivers must be >= 1");
  }
  Topology topo;
  topo.kind = TopologyKind::kFlood;
  topo.node_count = receivers + 1;
  for (std::uint32_t v = 1; v <= receivers; ++v) {
    topo.edges.emplace_back(0, v);
  }
  topo.validate();
  return topo;
}

}  // namespace dap::fleet
