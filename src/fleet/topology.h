#pragma once
// Relay topologies for fleet-scale broadcast simulation.
//
// A Topology is a directed acyclic relay graph rooted at node 0 (the
// broadcast source). Every edge (u, v) satisfies u < v, so node index
// order IS a topological order: packets only ever flow "forward" and no
// relay loop can form by construction. The builders cover the shapes the
// fleet experiments sweep:
//
//   tree(depth, fanout)   — balanced k-ary distribution tree (BFS index)
//   grid(rows, cols)      — 2-D mesh, each node relays right and down
//   gossip(relays, fanin, seed) — each node picks `fanin` random earlier
//                           nodes as parents (seeded, reproducible)
//   flood(receivers)      — single-hop star: root fans out to everyone
//
// The graph is pure structure: link quality, latency and adversaries are
// attached per-edge by fleet::FleetSim.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dap::fleet {

enum class TopologyKind : std::uint8_t {
  kTree,
  kGrid,
  kGossip,
  kFlood,
};

/// Lowercase name used by scenario JSON and CSV output ("tree", ...).
[[nodiscard]] const char* topology_kind_name(TopologyKind kind) noexcept;

/// Parses a kind name; throws std::invalid_argument on unknown names.
[[nodiscard]] TopologyKind topology_kind_from_name(const std::string& name);

struct Topology {
  TopologyKind kind = TopologyKind::kFlood;
  std::uint32_t node_count = 1;
  /// Directed edges (from, to); every edge has from < to (validated).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

  /// Throws std::invalid_argument when an edge violates from < to, an
  /// endpoint is out of range, an edge repeats, or a non-root node is
  /// unreachable from node 0.
  void validate() const;

  /// Out-neighbour lists indexed by node.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> adjacency() const;

  /// Hop distance from the root for every node (root = 0). Because
  /// edges respect index order, one ascending relaxation pass is exact.
  [[nodiscard]] std::vector<std::uint32_t> depths() const;

  /// max(depths()): the longest shortest-path any packet travels.
  [[nodiscard]] std::uint32_t depth() const;

  /// Nodes with no out-edges (pure receivers, never relays).
  [[nodiscard]] std::vector<std::uint32_t> leaves() const;
};

/// Balanced `fanout`-ary tree with `depth` levels below the root
/// (depth 0 = just the root). Nodes are indexed breadth-first.
[[nodiscard]] Topology tree_topology(std::uint32_t depth,
                                     std::uint32_t fanout);

/// rows x cols mesh; node (r, c) has index r*cols + c, the root is
/// (0, 0), and each node relays to its right and down neighbours.
[[nodiscard]] Topology grid_topology(std::uint32_t rows, std::uint32_t cols);

/// `relays` + 1 nodes; node i >= 1 picks min(fanin, i) distinct parents
/// uniformly from [0, i) using a generator seeded with `seed`, so the
/// same (relays, fanin, seed) always yields the same graph.
[[nodiscard]] Topology gossip_topology(std::uint32_t relays,
                                       std::uint32_t fanin,
                                       std::uint64_t seed);

/// Single-hop star: the root relays directly to `receivers` nodes.
[[nodiscard]] Topology flood_topology(std::uint32_t receivers);

}  // namespace dap::fleet
