#pragma once
// Fleet-scale multi-hop broadcast simulation.
//
// FleetSim instantiates a ScenarioSpec: one DapSender at the topology
// root, a sim::Medium per relay node (one link per out-edge, each with
// its own channel + latency model built from the hop spec or a
// test-supplied factory), and a ReceiverCohort behind every non-root
// node (or every leaf). Relays re-frame and forward packets hop by hop
// through the shared EventQueue; an optional per-relay dedup drops
// packets a node has already forwarded so multi-parent topologies
// (gossip, grid) do not amplify traffic combinatorially — switch it off
// to observe exactly that amplification.
//
// Per interval the script mirrors the chaos harness: the root announces
// (MAC_i, i) mid-interval, per-hop flooding adversaries inject forged
// announce copies, the reveal (M_i, K_i, i) follows one interval later,
// a forged reveal with a tagged payload rides behind it (weak auth must
// reject it), and every cohort drains late in the interval. Telemetry
// rolls up per topology depth into the ambient obs registry in
// topology order, so runs fanned out by common::parallel merge
// deterministically.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fleet/cohort.h"
#include "fleet/guard.h"
#include "fleet/scenario.h"
#include "fleet/topology.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/medium.h"

namespace dap::fleet {

/// One cohort drain outcome, surfaced to an installed drain observer.
/// Generic feedback channel: the strategy layer's adaptive adversary
/// derives its per-interval authentication signal from these without
/// fleet depending back on strategy (layering stays acyclic).
struct DrainObservation {
  std::uint32_t node = 0;
  std::uint32_t interval = 0;
  /// Payload carried the forged tag (authentications count toward
  /// FleetReport::forged_accepted, which must stay 0).
  bool forged = false;
  std::uint64_t members_authenticated = 0;
  /// Statistical members of the cohort (denominator for auth share).
  std::uint64_t members_total = 0;
  bool sentinel_authenticated = false;
};

/// Hook around every cohort drain, invoked in node-id order inside
/// drain_all() — deterministic at any thread count. Cooperative
/// verification implements this to pass verdict hints root-ward ->
/// leaf-ward between cohorts of the same sweep.
class DrainParticipant {
 public:
  virtual ~DrainParticipant() = default;
  /// Called before cohort `node` drains (install hints here).
  virtual void before_drain(std::uint32_t node, ReceiverCohort& cohort) = 0;
  /// Called after, with the drain's outcomes (harvest verdicts here).
  virtual void after_drain(std::uint32_t node, ReceiverCohort& cohort,
                           const std::vector<RevealOutcome>& outcomes) = 0;
};

/// Per-node relay accounting (test introspection).
struct NodeTraffic {
  std::uint64_t packets_in = 0;   // deliveries reaching this node's ingress
  std::uint64_t deduped = 0;      // dropped as already-forwarded
  std::uint64_t shed = 0;         // dropped by the guard's bandwidth budget
  std::uint64_t dropped_down = 0; // arrived while the relay was crashed
  std::uint64_t forwarded = 0;    // broadcasts re-issued downstream
};

/// Sentinel value in FleetReport::reconverge_intervals: the depth never
/// returned to full sentinel authentication after the fault horizon.
inline constexpr std::uint32_t kNeverReconverged = UINT32_MAX;

struct FleetReport {
  std::uint64_t total_members = 0;
  std::uint64_t cohort_count = 0;
  std::uint32_t intervals = 0;
  std::uint32_t max_depth = 0;
  std::uint64_t announces_sent = 0;
  std::uint64_t forged_announces_sent = 0;
  std::uint64_t forged_reveals_sent = 0;
  /// Strong-auth successes: statistical members / sentinels, authentic
  /// payloads only.
  std::uint64_t member_auths = 0;
  std::uint64_t sentinel_auths = 0;
  /// Authentications whose payload carried the forged tag. MUST be 0.
  std::uint64_t forged_accepted = 0;
  std::uint64_t announces_unsafe = 0;
  std::uint64_t weak_auth_failures = 0;
  std::uint64_t dedup_dropped = 0;
  std::uint64_t duplicated_frames = 0;
  std::uint64_t total_bits = 0;
  // ---- Ingress-guard accounting (bounded relay data plane) ------------
  /// Packets evicted from a relay's fixed-capacity tag store (slot reuse).
  std::uint64_t guard_evicted = 0;
  /// Packets shed by a relay's bandwidth budget.
  std::uint64_t guard_shed = 0;
  /// Authentic packets among the shed ones (collateral of the budget).
  std::uint64_t guard_false_drops = 0;
  /// Max tag-store occupancy over all relays; <= guard_capacity always.
  std::uint64_t guard_peak_entries = 0;
  std::uint64_t guard_capacity = 0;
  // ---- Fault injection --------------------------------------------------
  /// Relay crash/restart cycles executed.
  std::uint64_t relay_restarts = 0;
  /// Packets that arrived at a crashed (deaf) relay.
  std::uint64_t dropped_while_down = 0;
  /// First interval with every scheduled fault cleared (0 = no faults).
  std::uint32_t fault_clear_interval = 0;
  /// Per depth (index 1..max_depth; index 0 unused): intervals past the
  /// fault horizon until every cohort at that depth authenticates its
  /// sentinel again in the same interval. 0 = immediate, kNeverReconverged
  /// = never within the run. Empty when the spec schedules no faults.
  std::vector<std::uint32_t> reconverge_intervals;
  /// Peak statistical-member records stored across all cohorts
  /// (x 56 bits = the defense-cost memory bound, Fig. 8's quantity).
  std::uint64_t stored_records_peak = 0;
  /// (member_auths + sentinel_auths) / (total_members * intervals).
  double auth_rate = 0.0;
  [[nodiscard]] bool zero_forged() const noexcept {
    return forged_accepted == 0;
  }
};

class FleetSim {
 public:
  using ChannelFactory = std::function<std::unique_ptr<sim::Channel>(
      std::uint32_t from, std::uint32_t to)>;
  using LatencyFactory = std::function<std::unique_ptr<sim::LatencyModel>(
      std::uint32_t from, std::uint32_t to)>;

  /// Validates the spec and builds the topology; media/cohorts are
  /// created by run() so factories installed after construction apply.
  explicit FleetSim(const ScenarioSpec& spec);

  /// Overrides the per-edge channel model (default: the hop spec's
  /// loss + duplication stack). Must be called before run().
  void set_channel_factory(ChannelFactory factory);
  /// Overrides the per-edge latency model (default: hop spec's fixed
  /// latency or jitter link). Must be called before run().
  void set_latency_factory(LatencyFactory factory);

  /// Attaches a snapshotter that samples the ambient registry at every
  /// drain sweep (sim-time cadence applies) plus once at rollup, turning
  /// the run's telemetry into a time series. Must precede run(); the
  /// snapshotter must outlive it. nullptr detaches.
  void set_snapshotter(obs::Snapshotter* snapshotter);

  /// Observer invoked once per RevealOutcome during every drain sweep
  /// (node-id order). Must be installed before run(); nullptr detaches.
  void set_drain_observer(std::function<void(const DrainObservation&)> fn);
  /// Participant hooked around every cohort drain. Must be installed
  /// before run(); the participant must outlive it. nullptr detaches.
  void set_drain_participant(DrainParticipant* participant);

  /// Broadcasts `packet` from node `v`'s medium. Only valid while run()
  /// is executing (call it from events scheduled on queue()): the media
  /// are built by run(). Forged-traffic counters are maintained from
  /// the packet's payload, so injected attack traffic shows up in the
  /// report exactly like the built-in adversaries'.
  void inject(std::uint32_t node, const wire::Packet& packet);

  /// Executes the full scenario. Single-shot by contract: a second call
  /// violates a DAP_REQUIRE precondition.
  FleetReport run();

  /// The simulation clock — exposed so tests can wire schedule-driven
  /// fault decorators (BlackoutChannel needs the queue as its clock).
  [[nodiscard]] sim::EventQueue& queue() noexcept { return queue_; }

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  /// Valid after run().
  [[nodiscard]] const NodeTraffic& node_traffic(std::uint32_t v) const;
  /// Cohort behind node v, nullptr when the node hosts none (root, or
  /// relays under cohorts_at_leaves_only). Valid after run().
  [[nodiscard]] const ReceiverCohort* cohort_at(std::uint32_t v) const;

 private:
  void build_network(const common::Bytes& commitment);
  void schedule_faults();
  void on_packet(std::uint32_t from, std::uint32_t node,
                 const wire::Packet& packet, sim::SimTime now);
  /// Authentic control stream? (root announce MAC or genuine reveal) —
  /// classifies budget sheds as false drops.
  [[nodiscard]] bool is_authentic_packet(const wire::Packet& packet) const;
  void drain_all();
  void rollup();
  /// Adds the counters/samples accrued since the previous flush to the
  /// ambient registry; called at every drain sweep and once at rollup so
  /// snapshots see live totals while end-of-run values stay exact.
  void flush_live_telemetry();

  ScenarioSpec spec_;
  Topology topo_;
  std::vector<std::uint32_t> depths_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  sim::EventQueue queue_;
  common::Rng rng_;
  ChannelFactory channel_factory_;
  LatencyFactory latency_factory_;
  bool ran_ = false;

  protocol::DapConfig dap_config_;
  std::vector<std::unique_ptr<sim::Medium>> media_;       // by node
  std::vector<std::unique_ptr<ReceiverCohort>> cohorts_;  // by node
  std::vector<NodeTraffic> traffic_;                      // by node
  /// Bounded ingress guard per node: fixed-capacity dedup tag store plus
  /// optional bandwidth budget. Replaces the historical unbounded
  /// per-relay `seen_` sets — relay memory is O(guard capacity) however
  /// hard the flood pushes.
  std::vector<IngressGuard> guards_;
  /// True while both dedup and every budget are disabled — skips the
  /// per-packet encode + guard probe entirely.
  bool guard_active_ = false;
  /// Crash state: node v drops all ingress while now < down_until_[v].
  std::vector<sim::SimTime> down_until_;
  /// Healing link partitions, keyed by directed edge; consulted by the
  /// BlackoutChannel wrapper around the channel factory. Ordered map:
  /// built once pre-run, but keep lookup deterministic on principle.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::shared_ptr<sim::FaultSchedule>>
      partition_windows_;
  /// Authentic announce MACs (hashed) -> root send time, for per-depth
  /// hop-latency accounting of the genuine control stream. Ordered map:
  /// output-adjacent state must be deterministic by construction.
  std::map<std::uint64_t, sim::SimTime> announce_sent_at_;
  std::vector<std::uint64_t> announces_in_by_depth_;
  std::vector<std::vector<double>> hop_latency_by_depth_;

  FleetReport report_;
  std::vector<std::uint64_t> member_auth_by_depth_;
  std::vector<std::uint64_t> sentinel_auth_by_depth_;
  /// [depth][announce interval] -> sentinel auths, for the per-depth
  /// reconvergence clock after the fault horizon.
  std::vector<std::vector<std::uint64_t>> sentinel_auth_by_depth_interval_;
  std::vector<std::uint64_t> cohorts_at_depth_;

  obs::Snapshotter* snapshotter_ = nullptr;
  std::function<void(const DrainObservation&)> drain_observer_;
  DrainParticipant* drain_participant_ = nullptr;

  /// Causal tracing: each authentic announce gets one trace id at the
  /// sender; spans chain send -> relay hops -> verify across the
  /// topology. Pure sim-side metadata — no protocol bytes change.
  struct TraceCtx {
    std::uint64_t trace_id = 0;
    std::uint64_t seq = 0;  // per-trace span uid sequence
    /// Last announce-path span uid per node (0 = announce never seen).
    std::vector<std::uint64_t> span_at;
    /// First announce arrival time per node (0 = not yet).
    std::vector<sim::SimTime> announce_arrived;
    /// First authentic-reveal arrival time per node (0 = not yet).
    std::vector<sim::SimTime> reveal_arrived;
  };
  /// Ordered for the same reason as announce_sent_at_: span emission
  /// consults this per packet, and exports must not be able to inherit
  /// hash-seeded ordering even accidentally.
  std::map<std::uint32_t, TraceCtx> trace_by_interval_;
  std::uint64_t trace_base_ = 0;

  /// Counters already flushed to the registry (delta bookkeeping).
  struct FlushState {
    std::uint64_t announces_sent = 0;
    std::uint64_t forged_announces_sent = 0;
    std::uint64_t forged_accepted = 0;
    std::uint64_t dedup_dropped = 0;
    std::uint64_t guard_evicted = 0;
    std::uint64_t guard_shed = 0;
    std::uint64_t guard_false_drops = 0;
    std::uint64_t relay_restarts = 0;
    std::uint64_t dropped_while_down = 0;
    std::vector<std::uint64_t> guard_evicted_by_depth;
    std::vector<std::uint64_t> guard_shed_by_depth;
    std::vector<std::uint64_t> announces_in_by_depth;
    std::vector<std::uint64_t> member_auth_by_depth;
    std::vector<std::uint64_t> sentinel_auth_by_depth;
    std::vector<std::size_t> hop_latency_flushed;  // samples consumed
  };
  FlushState flushed_;
};

}  // namespace dap::fleet
