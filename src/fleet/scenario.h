#pragma once
// Declarative fleet scenarios.
//
// A ScenarioSpec captures everything a fleet run needs — topology shape,
// cohort sizing, traffic length, hop fault model, adversary placement —
// as one value that round-trips through a small JSON dialect (objects,
// arrays, strings, numbers, booleans; no nulls, no comments). Benches
// and tests build specs in code; operators can also load them from a
// file, and unknown keys are rejected so a typo never silently runs the
// default scenario.

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/topology.h"
#include "sim/time.h"

namespace dap::fleet {

/// Per-edge link model applied to every relay hop (tests can override
/// individual hops through FleetSim's channel/latency factories).
struct HopSpec {
  /// Independent frame-loss probability.
  double loss = 0.0;
  /// Probability each delivered frame spawns one extra copy.
  double duplicate_probability = 0.0;
  /// Fixed one-way hop latency in microseconds.
  sim::SimTime latency_us = sim::kMillisecond;
  /// Uniform extra delay in [0, jitter_us] on top of latency_us.
  sim::SimTime jitter_us = 0;
};

struct ScenarioSpec {
  std::string name = "fleet";
  std::uint64_t seed = 1;

  TopologyKind kind = TopologyKind::kFlood;
  // Shape parameters; which ones apply depends on `kind`.
  std::uint32_t depth = 1;       // tree
  std::uint32_t fanout = 2;      // tree
  std::uint32_t rows = 1;        // grid
  std::uint32_t cols = 2;        // grid
  std::uint32_t relays = 1;      // gossip
  std::uint32_t fanin = 1;       // gossip
  std::uint32_t receivers = 1;   // flood

  /// Receivers represented per cohort (sentinel included).
  std::size_t members_per_cohort = 1;
  /// DAP reservoir size m at every member.
  std::size_t buffers = 4;
  /// Place cohorts only at leaf nodes (default: every non-root node).
  bool cohorts_at_leaves_only = false;

  std::uint32_t intervals = 8;
  sim::SimTime interval_us = 200 * sim::kMillisecond;

  /// Target forged fraction p among announce copies at a cohort fed by
  /// one authentic copy (0 disables the flooding adversary).
  double forged_fraction = 0.0;
  /// Nodes whose egress medium the adversary injects into; each must
  /// have out-edges. Empty + forged_fraction > 0 means the root.
  std::vector<std::uint32_t> attackers;

  /// Drop packets a relay has already forwarded (hash of the encoded
  /// packet). Keeps multi-parent topologies from amplifying traffic.
  bool relay_dedup = true;

  HopSpec hop{};

  /// Builds the relay graph this spec describes (validated).
  [[nodiscard]] Topology build_topology() const;

  /// Total receivers the scenario simulates (cohort count x members).
  [[nodiscard]] std::uint64_t total_members() const;

  /// Compact identifier for CSV rows and the bench metrics footer, e.g.
  /// "tree_d3f4_m1200_p0.5".
  [[nodiscard]] std::string id() const;

  /// Serializes to the JSON dialect parse() accepts (round-trips).
  [[nodiscard]] std::string to_json() const;

  /// Parses a spec; throws std::invalid_argument on malformed JSON,
  /// unknown keys, or values that fail validation (e.g. zero members).
  [[nodiscard]] static ScenarioSpec parse(const std::string& json);

  /// Throws std::invalid_argument when fields are out of range.
  void validate() const;
};

}  // namespace dap::fleet
