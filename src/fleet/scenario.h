#pragma once
// Declarative fleet scenarios.
//
// A ScenarioSpec captures everything a fleet run needs — topology shape,
// cohort sizing, traffic length, hop fault model, adversary placement —
// as one value that round-trips through a small JSON dialect (objects,
// arrays, strings, numbers, booleans; no nulls, no comments). Benches
// and tests build specs in code; operators can also load them from a
// file, and unknown keys are rejected so a typo never silently runs the
// default scenario.

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/guard.h"
#include "fleet/topology.h"
#include "sim/time.h"

namespace dap::fleet {

/// Per-edge link model applied to every relay hop (tests can override
/// individual hops through FleetSim's channel/latency factories).
struct HopSpec {
  /// Independent frame-loss probability.
  double loss = 0.0;
  /// Probability each delivered frame spawns one extra copy.
  double duplicate_probability = 0.0;
  /// Fixed one-way hop latency in microseconds.
  sim::SimTime latency_us = sim::kMillisecond;
  /// Uniform extra delay in [0, jitter_us] on top of latency_us.
  sim::SimTime jitter_us = 0;
};

/// Relay crash/restart: the node's guard state and in-flight forwards
/// are lost, the node is deaf for `downtime_intervals`, then it rejoins.
/// An optional positive reboot skew models the oscillator coming back
/// wrong (an RTC that lost time while powered down): the node's cohort
/// reads its clock `reboot_skew_us` AHEAD of its believed bound until a
/// resync handshake recalibrates it — forward-only, so TESLA's
/// no-forgery argument is preserved (see sim/faults.h ClockStepFault).
struct RelayCrashSpec {
  std::uint32_t node = 1;
  std::uint32_t at_interval = 1;
  std::uint32_t downtime_intervals = 1;
  sim::SimTime reboot_skew_us = 0;
};

/// Directed link outage over whole intervals: the (from -> to) edge
/// drops every frame in [start of from_interval, start of until_interval)
/// and heals at until_interval.
struct LinkPartitionSpec {
  std::uint32_t from = 0;
  std::uint32_t to = 1;
  std::uint32_t from_interval = 1;
  std::uint32_t until_interval = 2;
};

/// Per-node bandwidth-budget override (a degraded relay: same guard,
/// tighter token bucket).
struct DegradedRelaySpec {
  std::uint32_t node = 1;
  double budget_mbps = 1.0;
};

/// Schedule-driven relay fault plan; empty = no fault injection.
struct FaultSpec {
  std::vector<RelayCrashSpec> relay_crashes;
  std::vector<LinkPartitionSpec> partitions;
  std::vector<DegradedRelaySpec> degraded;

  [[nodiscard]] bool empty() const noexcept {
    return relay_crashes.empty() && partitions.empty() && degraded.empty();
  }
  /// First interval index at which every scheduled fault has cleared
  /// (crashes rejoined, partitions healed) — reconvergence clocks start
  /// here. 0 when no fault is scheduled. Degraded budgets never clear
  /// and do not extend the horizon.
  [[nodiscard]] std::uint32_t last_clear_interval() const noexcept;
};

/// Online adaptive flooding adversary (driven by src/strategy): re-tunes
/// its attack share along discretized replicator dynamics from observed
/// per-interval authentication outcomes. The offline game solver with
/// SuccessModel::kReservoir is the ESS oracle it should converge to.
struct AdaptiveAdversarySpec {
  bool enabled = false;
  /// Step size eta of the replicator update y += eta*y*(1-y)*(S*Ra-k1*p*y).
  double learning_rate = 0.25;
  /// Initial attack share y(0).
  double initial_share = 0.5;
  /// Attack reward Ra and cost coefficient k1 of the attacker's payoff
  /// (paper §V notation; must satisfy reward > cost > 0).
  double reward = 200.0;
  double cost = 180.0;
};

/// Sybil cohort: `cohort` coordinated identities share one forged key
/// chain and stagger their reveals across relay hops to stress the
/// ingress guards (distinct payload bytes defeat relay dedup).
struct SybilSpec {
  bool enabled = false;
  std::uint32_t cohort = 3;
  sim::SimTime reveal_stagger_us = sim::kMillisecond;
};

/// Cooperative verification: already-drained cohorts share *invalid*
/// reveal verdicts so followers skip redundant chain walks. Valid
/// verdicts are never trusted remotely, and a deterministic audit
/// fraction of skips is re-walked locally, so poisoning can never
/// admit a forged key — at worst it is a liveness attack the audits
/// catch (poisoned = true exercises exactly that).
struct CoopSpec {
  bool enabled = false;
  double audit_fraction = 0.25;
  bool poisoned = false;
};

/// Strategy-layer extensions; empty/disabled = plain FleetSim run.
struct StrategySpec {
  AdaptiveAdversarySpec adaptive;
  SybilSpec sybil;
  CoopSpec coop;

  [[nodiscard]] bool engaged() const noexcept {
    return adaptive.enabled || sybil.enabled || coop.enabled;
  }
};

struct ScenarioSpec {
  std::string name = "fleet";
  std::uint64_t seed = 1;

  TopologyKind kind = TopologyKind::kFlood;
  // Shape parameters; which ones apply depends on `kind`.
  std::uint32_t depth = 1;       // tree
  std::uint32_t fanout = 2;      // tree
  std::uint32_t rows = 1;        // grid
  std::uint32_t cols = 2;        // grid
  std::uint32_t relays = 1;      // gossip
  std::uint32_t fanin = 1;       // gossip
  std::uint32_t receivers = 1;   // flood

  /// Receivers represented per cohort (sentinel included).
  std::size_t members_per_cohort = 1;
  /// DAP reservoir size m at every member.
  std::size_t buffers = 4;
  /// Place cohorts only at leaf nodes (default: every non-root node).
  bool cohorts_at_leaves_only = false;

  std::uint32_t intervals = 8;
  sim::SimTime interval_us = 200 * sim::kMillisecond;

  /// Target forged fraction p among announce copies at a cohort fed by
  /// one authentic copy (0 disables the flooding adversary).
  double forged_fraction = 0.0;
  /// Nodes whose egress medium the adversary injects into; each must
  /// have out-edges. Empty + forged_fraction > 0 means the root.
  std::vector<std::uint32_t> attackers;

  /// Drop packets a relay has already forwarded (hash of the encoded
  /// packet). Keeps multi-parent topologies from amplifying traffic.
  /// Dedup state lives in the fixed-capacity IngressGuard tag store, so
  /// relay memory is O(guard.capacity) regardless of flood intensity.
  bool relay_dedup = true;

  /// Per-relay ingress guard: tag-store capacity plus the optional
  /// bandwidth budget (GuardConfig::dedup is driven by relay_dedup).
  GuardConfig guard{};

  /// Relay fault plan (crash/restart, healing partitions, degraded
  /// budgets). Non-empty plans also enable sentinel resync recovery.
  FaultSpec faults{};

  /// Adaptive-adversary / sybil / cooperative-verification extensions,
  /// interpreted by strategy::run_scenario (a plain FleetSim::run
  /// ignores them). Emitted to JSON only when engaged.
  StrategySpec strategy{};

  HopSpec hop{};

  /// Builds the relay graph this spec describes (validated).
  [[nodiscard]] Topology build_topology() const;

  /// Total receivers the scenario simulates (cohort count x members).
  [[nodiscard]] std::uint64_t total_members() const;

  /// Compact identifier for CSV rows and the bench metrics footer, e.g.
  /// "tree_d3f4_m1200_p0.5".
  [[nodiscard]] std::string id() const;

  /// Serializes to the JSON dialect parse() accepts (round-trips).
  [[nodiscard]] std::string to_json() const;

  /// Parses a spec; throws std::invalid_argument on malformed JSON,
  /// unknown keys, or values that fail validation (e.g. zero members).
  [[nodiscard]] static ScenarioSpec parse(const std::string& json);

  /// Throws std::invalid_argument when fields are out of range.
  void validate() const;
};

}  // namespace dap::fleet
