#pragma once
// Receiver cohorts: N statistically-identical DAP receivers behind one
// topology leaf, cheap enough that 10^5..10^6 of them fit in one run.
//
// Member 0 is a *sentinel*: a full protocol::DapReceiver that executes
// every byte of Algorithm 2 (μMAC re-MAC, reservoir buffers, batched
// reveal verification via drain_pending_batch). The remaining N-1
// members are modelled at reservoir *identity* level: each member keeps
// m slots holding the arrival index of the announce it stored, and the
// reservoir decisions (keep the k-th copy with probability m/k, evict a
// uniform slot) are replayed with stateless SplitMix64 draws keyed on
// (cohort seed, member, interval, offer). The per-member streams are
// therefore independent, reproducible, and — crucially — independent of
// both thread count and replay batching, so a fleet run is bitwise
// identical at any DAP_THREADS.
//
// The identity-level model treats two distinct announce MACs as distinct
// records, i.e. it neglects 24-bit μMAC collisions between a forged MAC
// and the authentic one (probability ~2^-24 per stored forged record;
// the sentinel member keeps full crypto fidelity as a cross-check).
// Strong authentication for a statistical member is then "some stored
// slot holds an announce whose MAC equals MAC_{K_i}(M_i)", evaluated
// with a constant-time compare against the recomputed MAC, and a match
// consumes the slot exactly like RecordBuffer::take_matching.
//
// Reservoir replay is *lazy*: announces only append to the round's
// arrival list; member slots are brought up to date at drain time with
// one parallel_for over members (index-addressed state only), which is
// where the 10^5-member cost is paid and sharded.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "dap/dap.h"
#include "sim/clock_model.h"
#include "sim/time.h"
#include "tesla/timesync.h"
#include "wire/packet.h"

namespace dap::fleet {

struct CohortConfig {
  /// Total receivers represented, sentinel included (>= 1).
  std::size_t members = 1;
  /// Protocol parameters shared by every member (buffers = m, disclosure
  /// delay, schedule, MAC sizes, sender id).
  protocol::DapConfig dap{};
  /// Root of the cohort's per-member randomness; distinct cohorts must
  /// use distinct seeds.
  std::uint64_t seed = 1;
  /// The leaf's oscillator; all members share it (they are co-located
  /// behind the same hop — per-member skew is below the model's
  /// resolution).
  sim::LooseClock clock{0, 5 * sim::kMillisecond};
};

struct CohortStats {
  std::uint64_t announces_received = 0;
  std::uint64_t announces_unsafe = 0;  // failed the loose-time safety check
  std::uint64_t reveals_received = 0;
  std::uint64_t weak_auth_failures = 0;
  /// Strong-auth successes across statistical members (sentinel excluded).
  std::uint64_t member_auths = 0;
  std::uint64_t sentinel_auths = 0;
  /// Reveals that weak-authenticated but matched no slot of a given
  /// member, summed over members (the memory-DoS loss signal).
  std::uint64_t member_auth_misses = 0;
  /// MAC keys F'(K_i) derived by the identity-level core (once per
  /// interval per drain — the batching KPI).
  std::uint64_t mac_key_derivations = 0;
  /// Statistical-member records stored after the latest drain, and the
  /// maximum over drains (occupancy is sampled at drains because replay
  /// is lazy).
  std::uint64_t stored_records = 0;
  std::uint64_t stored_records_peak = 0;
  /// Crash/restart cycles injected into this cohort.
  std::uint64_t crash_restarts = 0;
  // ---- Cooperative verification (install_hints) -------------------------
  /// Chain walks skipped because a neighbor's invalid-verdict hint
  /// covered the reveal (and the audit draw did not select it).
  std::uint64_t walks_skipped = 0;
  /// Hinted reveals the deterministic audit draw re-walked locally.
  std::uint64_t hint_audits = 0;
  /// Audited hints whose local walk contradicted them (the hint claimed
  /// invalid, the walk said valid) — poisoned gossip, source distrusted.
  std::uint64_t poisoned_hints = 0;
};

/// Verdict hint gossiped from an already-drained cohort: "a reveal for
/// `interval` carrying exactly `key` failed weak authentication at
/// `source`". Only *invalid* verdicts are ever shared — a remote "valid"
/// claim could smuggle a forged key past the chain walk, while trusting
/// a remote "invalid" claim can at worst suppress a genuine reveal (a
/// liveness loss the audit fraction bounds), never admit a forged one.
struct RevealHint {
  std::uint32_t interval = 0;
  common::Bytes key;
  /// Topology node id of the cohort whose walk produced the verdict.
  std::uint32_t source = 0;
};

/// One weak-auth chain walk the latest drain actually performed (i.e.
/// was not skipped under a hint); harvested by cooperative-verification
/// coordinators to gossip the invalid verdicts onward.
struct WalkResult {
  std::uint32_t interval = 0;
  common::Bytes key;
  bool weak_valid = false;
};

/// Outcome of one reveal processed by drain(), in queue order.
struct RevealOutcome {
  std::uint32_t interval = 0;
  common::Bytes message;
  /// Statistical members whose reservoir still held the matching
  /// announce (out of members() - 1).
  std::uint64_t members_authenticated = 0;
  bool sentinel_authenticated = false;
  /// The sentinel's verdict on this reveal (reject reason when it did
  /// not authenticate); feeds the verify-span tags in the fleet tracer.
  tesla::RevealVerdict verdict = tesla::RevealVerdict::kAccepted;
};

class ReceiverCohort {
 public:
  /// `commitment` is the authenticated K_0 shared by all members.
  /// Throws std::invalid_argument for zero members.
  ReceiverCohort(const CohortConfig& config, common::Bytes commitment);

  /// Ingress for a MAC announcement at true time `true_now`: applies the
  /// cohort clock, gates on the TESLA safety check, appends to the
  /// round's arrival list, and forwards to the sentinel.
  void receive_announce(const wire::MacAnnounce& packet,
                        sim::SimTime true_now);

  /// Queues a reveal for the next drain (sentinel's queue + cohort core).
  void enqueue_reveal(const wire::MessageReveal& packet);

  /// Replays pending reservoir offers for every member, then verifies
  /// every queued reveal in arrival order (weak auth once per reveal,
  /// MAC key derivation once per interval per drain). Returns one
  /// outcome per queued reveal. Rounds whose key is long public are
  /// pruned afterwards.
  std::vector<RevealOutcome> drain(sim::SimTime true_now);

  // ---- Fault injection & recovery ---------------------------------------

  /// Crash/restart at true time `true_now`: volatile state is lost on
  /// every member (sentinel record buffers + calibration via
  /// DapReceiver::crash_restart, statistical reservoirs and queued
  /// reveals here), while the newest authenticated chain key survives as
  /// the persistent anchor. `reboot_skew_us` models the oscillator
  /// coming back AHEAD by that much (an RTC that lost time while down) —
  /// a forward-only step, accumulated across crashes and never snapped
  /// back (a backward correction would void the loose-sync bound); only
  /// a fresh timesync calibration restores the safety check.
  void crash_restart(sim::SimTime true_now, sim::SimTime reboot_skew_us = 0);

  /// Wires desync recovery: the sentinel's ResyncController drives a
  /// real TimeSyncClient/Responder handshake (one deterministic
  /// transport per cohort, `handshake_latency_us` per leg). When
  /// `transport_up` is given, attempts fail while it returns false (the
  /// relay is down or partitioned). A successful handshake's
  /// calibration is also adopted by the statistical members' shared
  /// safety check — the cohort-level analogue of installing it in the
  /// sentinel.
  void enable_resync(
      sim::SimTime handshake_latency_us,
      std::function<bool(sim::SimTime true_now)> transport_up = nullptr);

  /// The cohort oscillator's reading at true time `true_now`, including
  /// accumulated reboot skew.
  [[nodiscard]] sim::SimTime local_time(sim::SimTime true_now) const noexcept;

  [[nodiscard]] std::size_t members() const noexcept {
    return config_.members;
  }
  [[nodiscard]] const CohortStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const protocol::DapReceiver& sentinel() const noexcept {
    return sentinel_;
  }
  /// Statistical-member records currently stored for interval i
  /// (post-replay counts; test introspection).
  [[nodiscard]] std::uint64_t stored_for_interval(std::uint32_t i) const;

  // ---- Cooperative verification -----------------------------------------

  /// Installs invalid-verdict hints for the NEXT drain (consumed by it).
  /// A pending reveal matching a hint (interval + exact key bytes) skips
  /// its weak-auth chain walk and is treated as a weak-auth failure —
  /// except that a deterministic `audit_fraction` of hinted reveals
  /// (drawn from `audit_seed`, reproducible at any thread count) is
  /// re-walked locally and the verdicts compared: a walk that
  /// contradicts its hint marks the hint's source as poisoned. The
  /// sentinel member still verifies everything, so cohort-level
  /// zero-forged accounting is unaffected by any hint.
  void install_hints(std::vector<RevealHint> hints, double audit_fraction,
                     std::uint64_t audit_seed);

  /// Chain walks the latest drain performed, in queue order (valid and
  /// invalid verdicts both — the coordinator shares only the invalid
  /// ones, or lies about the valid ones in poisoned mode).
  [[nodiscard]] const std::vector<WalkResult>& last_drain_walks()
      const noexcept {
    return last_walks_;
  }

  /// Source node ids of hints whose audit walk contradicted them
  /// (accumulated across drains).
  [[nodiscard]] const std::vector<std::uint32_t>& poisoned_sources()
      const noexcept {
    return poisoned_sources_;
  }

 private:
  /// Per-interval shared state: the announce arrival list plus every
  /// statistical member's reservoir over it.
  struct Round {
    /// Announce MACs in arrival order; slot values index this list + 1.
    std::vector<common::Bytes> macs;
    /// Flattened member slots: member mi owns [mi*m, mi*m + m); value 0
    /// is empty, value k+1 means "stored announce k".
    std::vector<std::uint32_t> slots;
    /// Records currently held per member.
    std::vector<std::uint16_t> counts;
    /// Offers already replayed into the slots (prefix of macs).
    std::uint32_t replayed = 0;
  };

  /// Replays offers [round.replayed, macs.size()) for member `mi` using
  /// the stateless per-(member, interval, offer) draws.
  void replay_member(Round& round, std::uint32_t interval,
                     std::size_t mi) const;

  [[nodiscard]] Round& round_for(std::uint32_t interval);
  void prune_rounds(std::uint32_t current_interval);

  /// True time recovered from a local reading (inverts local_time).
  [[nodiscard]] sim::SimTime true_time_of(
      sim::SimTime local_now) const noexcept;
  /// Members' loose-time safety check: the fresh calibration when one
  /// exists, the believed oscillator bound otherwise (mirrors
  /// DapReceiver::packet_safe).
  [[nodiscard]] bool cohort_packet_safe(std::uint32_t interval,
                                        sim::SimTime local_now) const;

  CohortConfig config_;
  std::size_t stat_members_;  // members - 1 (sentinel excluded)
  tesla::ChainAuthenticator auth_;
  protocol::DapReceiver sentinel_;
  std::map<std::uint32_t, Round> rounds_;
  std::vector<wire::MessageReveal> pending_;
  CohortStats stats_;

  /// Cooperative-verification state: hints armed for the next drain
  /// (cleared by it), the walks that drain performed, and every hint
  /// source an audit has caught lying.
  std::vector<RevealHint> hints_;
  double audit_fraction_ = 0.0;
  std::uint64_t audit_seed_ = 0;
  std::vector<WalkResult> last_walks_;
  std::vector<std::uint32_t> poisoned_sources_;

  /// Accumulated forward reboot skew (crash_restart); 0 in steady state.
  sim::SimTime skew_ = 0;
  /// Calibration adopted from the sentinel's last successful resync
  /// handshake; dropped on crash (volatile state).
  std::optional<tesla::SyncCalibration> calibration_;
  /// Resync transport (enable_resync); one handshake pair per cohort.
  std::optional<tesla::TimeSyncClient> sync_client_;
  std::optional<tesla::TimeSyncResponder> sync_responder_;
};

}  // namespace dap::fleet
