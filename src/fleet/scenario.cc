#include "fleet/scenario.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>
#include <variant>

#include "common/csv.h"

namespace dap::fleet {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON: objects, arrays, strings (\" and \\ escapes), numbers,
// booleans. Enough to round-trip ScenarioSpec; anything else is an error.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<bool, double, std::string, JsonArray, JsonObject> value;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("scenario json: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (c == 't' || c == 'f') return parse_bool();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(object)};
    }
    while (true) {
      const std::string key = parse_string_at();
      expect(':');
      if (!object.emplace(key, parse_value()).second) {
        fail("duplicate key \"" + key + "\"");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(object)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(array)};
    }
    while (true) {
      array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(array)};
    }
  }

  std::string parse_string_at() {
    if (peek() != '"') fail("expected string");
    return parse_string();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        if (e == '"' || e == '\\') {
          out.push_back(e);
        } else {
          fail("unsupported escape sequence");
        }
        continue;
      }
      out.push_back(c);
    }
    fail("unterminated string");
  }

  JsonValue parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    fail("expected 'true' or 'false'");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return JsonValue{parsed};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Typed accessors with strict error messages.

const JsonObject& as_object(const JsonValue& v, const std::string& where) {
  const auto* obj = std::get_if<JsonObject>(&v.value);
  if (obj == nullptr) {
    throw std::invalid_argument("scenario json: " + where +
                                " must be an object");
  }
  return *obj;
}

double as_number(const JsonValue& v, const std::string& where) {
  const auto* num = std::get_if<double>(&v.value);
  if (num == nullptr) {
    throw std::invalid_argument("scenario json: " + where +
                                " must be a number");
  }
  return *num;
}

std::uint64_t as_uint(const JsonValue& v, const std::string& where) {
  const double num = as_number(v, where);
  if (num < 0 || std::floor(num) != num) {
    throw std::invalid_argument("scenario json: " + where +
                                " must be a non-negative integer");
  }
  // Cap at 2^53 (the last exactly-representable range): anything larger
  // is a typo or an attack, and the cast below must stay defined.
  if (num > 9007199254740992.0) {
    throw std::invalid_argument("scenario json: " + where + " is too large");
  }
  return static_cast<std::uint64_t>(num);
}

bool as_bool(const JsonValue& v, const std::string& where) {
  const auto* b = std::get_if<bool>(&v.value);
  if (b == nullptr) {
    throw std::invalid_argument("scenario json: " + where +
                                " must be a boolean");
  }
  return *b;
}

const std::string& as_string(const JsonValue& v, const std::string& where) {
  const auto* s = std::get_if<std::string>(&v.value);
  if (s == nullptr) {
    throw std::invalid_argument("scenario json: " + where +
                                " must be a string");
  }
  return *s;
}

/// Rejects keys the schema does not know, naming the first offender.
void reject_unknown_keys(const JsonObject& object,
                         std::initializer_list<const char*> known,
                         const std::string& where) {
  for (const auto& [key, value] : object) {
    (void)value;
    bool ok = false;
    for (const char* k : known) {
      // lint: allow(secret-taint): JSON field name, not key material
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::invalid_argument("scenario json: unknown key \"" + key +
                                  "\" in " + where);
    }
  }
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const JsonArray& as_array(const JsonValue& v, const std::string& where) {
  const auto* array = std::get_if<JsonArray>(&v.value);
  if (array == nullptr) {
    throw std::invalid_argument("scenario json: " + where +
                                " must be an array");
  }
  return *array;
}

/// Untrusted-input ceilings: a spec is a scenario description, not a
/// resource grant — parsing one must never commit the process to huge
/// allocations before anyone decides to run it.
constexpr std::uint64_t kMaxNodes = 1ULL << 22;          // relay graph
constexpr std::uint64_t kMaxMembersPerCohort = 1ULL << 24;
constexpr std::uint64_t kMaxBuffers = 1ULL << 16;
constexpr std::uint64_t kMaxIntervals = 1ULL << 20;
constexpr std::size_t kMaxGuardCapacity = 1ULL << 22;

/// Overflow-safe estimate of the node count a topology spec implies.
double estimated_nodes(const ScenarioSpec& spec) {
  switch (spec.kind) {
    case TopologyKind::kTree: {
      if (spec.fanout <= 1) return static_cast<double>(spec.depth) + 1.0;
      const double f = static_cast<double>(spec.fanout);
      return (std::pow(f, static_cast<double>(spec.depth) + 1.0) - 1.0) /
             (f - 1.0);
    }
    case TopologyKind::kGrid:
      return static_cast<double>(spec.rows) *
                 static_cast<double>(spec.cols) + 1.0;
    case TopologyKind::kGossip:
      return static_cast<double>(spec.relays) + 1.0;
    case TopologyKind::kFlood:
      return static_cast<double>(spec.receivers) + 1.0;
  }
  return 0.0;
}

}  // namespace

std::uint32_t FaultSpec::last_clear_interval() const noexcept {
  std::uint32_t clear = 0;
  for (const RelayCrashSpec& crash : relay_crashes) {
    const std::uint64_t up = static_cast<std::uint64_t>(crash.at_interval) +
                             crash.downtime_intervals;
    if (up > clear) clear = static_cast<std::uint32_t>(up);
  }
  for (const LinkPartitionSpec& partition : partitions) {
    if (partition.until_interval > clear) clear = partition.until_interval;
  }
  return clear;
}

Topology ScenarioSpec::build_topology() const {
  switch (kind) {
    case TopologyKind::kTree:
      return tree_topology(depth, fanout);
    case TopologyKind::kGrid:
      return grid_topology(rows, cols);
    case TopologyKind::kGossip:
      return gossip_topology(relays, fanin, seed);
    case TopologyKind::kFlood:
      return flood_topology(receivers);
  }
  throw std::invalid_argument("ScenarioSpec: unknown topology kind");
}

std::uint64_t ScenarioSpec::total_members() const {
  const Topology topo = build_topology();
  const std::uint64_t cohorts =
      cohorts_at_leaves_only
          ? static_cast<std::uint64_t>(topo.leaves().size())
          : static_cast<std::uint64_t>(topo.node_count) - 1;
  return cohorts * members_per_cohort;
}

std::string ScenarioSpec::id() const {
  std::string shape;
  switch (kind) {
    case TopologyKind::kTree:
      shape = "d" + std::to_string(depth) + "f" + std::to_string(fanout);
      break;
    case TopologyKind::kGrid:
      shape = std::to_string(rows) + "x" + std::to_string(cols);
      break;
    case TopologyKind::kGossip:
      shape = "n" + std::to_string(relays) + "k" + std::to_string(fanin);
      break;
    case TopologyKind::kFlood:
      shape = "n" + std::to_string(receivers);
      break;
  }
  return std::string(topology_kind_name(kind)) + "_" + shape + "_m" +
         std::to_string(members_per_cohort) + "_p" +
         common::format_number(forged_fraction) +
         (faults.empty() ? "" : "_chaos") +
         (strategy.adaptive.enabled ? "_adapt" : "") +
         (strategy.sybil.enabled ? "_sybil" : "") +
         (strategy.coop.enabled
              ? (strategy.coop.poisoned ? "_coop_poison" : "_coop")
              : "");
}

std::string ScenarioSpec::to_json() const {
  std::string topo = "{\"kind\": " +
                     quote(topology_kind_name(kind));
  switch (kind) {
    case TopologyKind::kTree:
      topo += ", \"depth\": " + std::to_string(depth) +
              ", \"fanout\": " + std::to_string(fanout);
      break;
    case TopologyKind::kGrid:
      topo += ", \"rows\": " + std::to_string(rows) +
              ", \"cols\": " + std::to_string(cols);
      break;
    case TopologyKind::kGossip:
      topo += ", \"relays\": " + std::to_string(relays) +
              ", \"fanin\": " + std::to_string(fanin);
      break;
    case TopologyKind::kFlood:
      topo += ", \"receivers\": " + std::to_string(receivers);
      break;
  }
  topo += "}";

  std::string attacker_list = "[";
  for (std::size_t i = 0; i < attackers.size(); ++i) {
    attacker_list += (i == 0 ? "" : ", ") + std::to_string(attackers[i]);
  }
  attacker_list += "]";

  std::string guard_json =
      "{\"capacity\": " + std::to_string(guard.capacity) +
      ", \"budget_mbps\": " + common::format_number(guard.budget_mbps) +
      ", \"burst_bits\": " + common::format_number(guard.burst_bits) + "}";

  // Fault plan: sub-arrays appear only when non-empty, so a fault-free
  // spec's JSON is unchanged and the emitted form is canonical.
  std::string fault_json;
  if (!faults.empty()) {
    fault_json = ", \"faults\": {";
    std::string sep;
    if (!faults.relay_crashes.empty()) {
      fault_json += "\"relay_crashes\": [";
      for (std::size_t i = 0; i < faults.relay_crashes.size(); ++i) {
        const RelayCrashSpec& c = faults.relay_crashes[i];
        fault_json += (i == 0 ? "" : ", ");
        fault_json += "{\"node\": " + std::to_string(c.node) +
                      ", \"at_interval\": " + std::to_string(c.at_interval) +
                      ", \"downtime_intervals\": " +
                      std::to_string(c.downtime_intervals) +
                      ", \"reboot_skew_us\": " +
                      std::to_string(c.reboot_skew_us) + "}";
      }
      fault_json += "]";
      sep = ", ";
    }
    if (!faults.partitions.empty()) {
      fault_json += sep + "\"partitions\": [";
      for (std::size_t i = 0; i < faults.partitions.size(); ++i) {
        const LinkPartitionSpec& p = faults.partitions[i];
        fault_json += (i == 0 ? "" : ", ");
        fault_json += "{\"from\": " + std::to_string(p.from) +
                      ", \"to\": " + std::to_string(p.to) +
                      ", \"from_interval\": " +
                      std::to_string(p.from_interval) +
                      ", \"until_interval\": " +
                      std::to_string(p.until_interval) + "}";
      }
      fault_json += "]";
      sep = ", ";
    }
    if (!faults.degraded.empty()) {
      fault_json += sep + "\"degraded\": [";
      for (std::size_t i = 0; i < faults.degraded.size(); ++i) {
        const DegradedRelaySpec& d = faults.degraded[i];
        fault_json += (i == 0 ? "" : ", ");
        fault_json += "{\"node\": " + std::to_string(d.node) +
                      ", \"budget_mbps\": " +
                      common::format_number(d.budget_mbps) + "}";
      }
      fault_json += "]";
    }
    fault_json += "}";
  }

  // Strategy block: emitted only when engaged, and within it only the
  // enabled sub-blocks, so a plain spec's JSON is unchanged and the
  // emitted form stays canonical.
  std::string strategy_json;
  if (strategy.engaged()) {
    strategy_json = ", \"strategy\": {";
    std::string sep;
    if (strategy.adaptive.enabled) {
      strategy_json +=
          "\"adaptive\": {\"enabled\": true, \"learning_rate\": " +
          common::format_number(strategy.adaptive.learning_rate) +
          ", \"initial_share\": " +
          common::format_number(strategy.adaptive.initial_share) +
          ", \"reward\": " + common::format_number(strategy.adaptive.reward) +
          ", \"cost\": " + common::format_number(strategy.adaptive.cost) +
          "}";
      sep = ", ";
    }
    if (strategy.sybil.enabled) {
      strategy_json += sep + "\"sybil\": {\"enabled\": true, \"cohort\": " +
                       std::to_string(strategy.sybil.cohort) +
                       ", \"reveal_stagger_us\": " +
                       std::to_string(strategy.sybil.reveal_stagger_us) + "}";
      sep = ", ";
    }
    if (strategy.coop.enabled) {
      strategy_json +=
          sep + "\"coop\": {\"enabled\": true, \"audit_fraction\": " +
          common::format_number(strategy.coop.audit_fraction) +
          ", \"poisoned\": " + (strategy.coop.poisoned ? "true" : "false") +
          "}";
    }
    strategy_json += "}";
  }

  return "{\"name\": " + quote(name) +
         ", \"seed\": " + std::to_string(seed) +
         ", \"topology\": " + topo +
         ", \"members_per_cohort\": " + std::to_string(members_per_cohort) +
         ", \"buffers\": " + std::to_string(buffers) +
         ", \"cohorts_at_leaves_only\": " +
         (cohorts_at_leaves_only ? "true" : "false") +
         ", \"intervals\": " + std::to_string(intervals) +
         ", \"interval_us\": " + std::to_string(interval_us) +
         ", \"forged_fraction\": " + common::format_number(forged_fraction) +
         ", \"attackers\": " + attacker_list +
         ", \"relay_dedup\": " + (relay_dedup ? "true" : "false") +
         ", \"guard\": " + guard_json + fault_json + strategy_json +
         ", \"hop\": {\"loss\": " + common::format_number(hop.loss) +
         ", \"duplicate_probability\": " +
         common::format_number(hop.duplicate_probability) +
         ", \"latency_us\": " + std::to_string(hop.latency_us) +
         ", \"jitter_us\": " + std::to_string(hop.jitter_us) + "}}";
}

ScenarioSpec ScenarioSpec::parse(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  const JsonObject& object = as_object(root, "document");
  reject_unknown_keys(object,
                      {"name", "seed", "topology", "members_per_cohort",
                       "buffers", "cohorts_at_leaves_only", "intervals",
                       "interval_us", "forged_fraction", "attackers",
                       "relay_dedup", "guard", "faults", "strategy", "hop"},
                      "document");

  ScenarioSpec spec;
  if (const auto it = object.find("name"); it != object.end()) {
    spec.name = as_string(it->second, "name");
  }
  if (const auto it = object.find("seed"); it != object.end()) {
    spec.seed = as_uint(it->second, "seed");
  }

  const auto topo_it = object.find("topology");
  if (topo_it == object.end()) {
    throw std::invalid_argument("scenario json: missing \"topology\"");
  }
  const JsonObject& topo = as_object(topo_it->second, "topology");
  const auto kind_it = topo.find("kind");
  if (kind_it == topo.end()) {
    throw std::invalid_argument("scenario json: topology missing \"kind\"");
  }
  spec.kind =
      topology_kind_from_name(as_string(kind_it->second, "topology.kind"));
  const auto topo_uint = [&topo](const char* key, std::uint32_t fallback) {
    const auto it = topo.find(key);
    if (it == topo.end()) return fallback;
    return static_cast<std::uint32_t>(
        as_uint(it->second, std::string("topology.") + key));
  };
  switch (spec.kind) {
    case TopologyKind::kTree:
      reject_unknown_keys(topo, {"kind", "depth", "fanout"}, "topology");
      spec.depth = topo_uint("depth", spec.depth);
      spec.fanout = topo_uint("fanout", spec.fanout);
      break;
    case TopologyKind::kGrid:
      reject_unknown_keys(topo, {"kind", "rows", "cols"}, "topology");
      spec.rows = topo_uint("rows", spec.rows);
      spec.cols = topo_uint("cols", spec.cols);
      break;
    case TopologyKind::kGossip:
      reject_unknown_keys(topo, {"kind", "relays", "fanin"}, "topology");
      spec.relays = topo_uint("relays", spec.relays);
      spec.fanin = topo_uint("fanin", spec.fanin);
      break;
    case TopologyKind::kFlood:
      reject_unknown_keys(topo, {"kind", "receivers"}, "topology");
      spec.receivers = topo_uint("receivers", spec.receivers);
      break;
  }

  if (const auto it = object.find("members_per_cohort"); it != object.end()) {
    spec.members_per_cohort =
        static_cast<std::size_t>(as_uint(it->second, "members_per_cohort"));
  }
  if (const auto it = object.find("buffers"); it != object.end()) {
    spec.buffers = static_cast<std::size_t>(as_uint(it->second, "buffers"));
  }
  if (const auto it = object.find("cohorts_at_leaves_only");
      it != object.end()) {
    spec.cohorts_at_leaves_only =
        as_bool(it->second, "cohorts_at_leaves_only");
  }
  if (const auto it = object.find("intervals"); it != object.end()) {
    spec.intervals = static_cast<std::uint32_t>(as_uint(it->second, "intervals"));
  }
  if (const auto it = object.find("interval_us"); it != object.end()) {
    spec.interval_us = as_uint(it->second, "interval_us");
  }
  if (const auto it = object.find("forged_fraction"); it != object.end()) {
    spec.forged_fraction = as_number(it->second, "forged_fraction");
  }
  if (const auto it = object.find("attackers"); it != object.end()) {
    const auto* array = std::get_if<JsonArray>(&it->second.value);
    if (array == nullptr) {
      throw std::invalid_argument(
          "scenario json: attackers must be an array");
    }
    for (std::size_t i = 0; i < array->size(); ++i) {
      spec.attackers.push_back(static_cast<std::uint32_t>(as_uint(
          (*array)[i], "attackers[" + std::to_string(i) + "]")));
    }
  }
  if (const auto it = object.find("relay_dedup"); it != object.end()) {
    spec.relay_dedup = as_bool(it->second, "relay_dedup");
  }
  if (const auto it = object.find("guard"); it != object.end()) {
    const JsonObject& guard = as_object(it->second, "guard");
    reject_unknown_keys(guard, {"capacity", "budget_mbps", "burst_bits"},
                        "guard");
    if (const auto g = guard.find("capacity"); g != guard.end()) {
      spec.guard.capacity =
          static_cast<std::size_t>(as_uint(g->second, "guard.capacity"));
    }
    if (const auto g = guard.find("budget_mbps"); g != guard.end()) {
      spec.guard.budget_mbps = as_number(g->second, "guard.budget_mbps");
    }
    if (const auto g = guard.find("burst_bits"); g != guard.end()) {
      spec.guard.burst_bits = as_number(g->second, "guard.burst_bits");
    }
  }
  if (const auto it = object.find("faults"); it != object.end()) {
    const JsonObject& faults = as_object(it->second, "faults");
    reject_unknown_keys(faults, {"relay_crashes", "partitions", "degraded"},
                        "faults");
    if (const auto f = faults.find("relay_crashes"); f != faults.end()) {
      const JsonArray& crashes = as_array(f->second, "faults.relay_crashes");
      for (std::size_t i = 0; i < crashes.size(); ++i) {
        const std::string at =
            "faults.relay_crashes[" + std::to_string(i) + "]";
        const JsonObject& crash = as_object(crashes[i], at);
        reject_unknown_keys(crash,
                            {"node", "at_interval", "downtime_intervals",
                             "reboot_skew_us"},
                            at);
        RelayCrashSpec out;
        if (const auto c = crash.find("node"); c != crash.end()) {
          out.node =
              static_cast<std::uint32_t>(as_uint(c->second, at + ".node"));
        }
        if (const auto c = crash.find("at_interval"); c != crash.end()) {
          out.at_interval = static_cast<std::uint32_t>(
              as_uint(c->second, at + ".at_interval"));
        }
        if (const auto c = crash.find("downtime_intervals");
            c != crash.end()) {
          out.downtime_intervals = static_cast<std::uint32_t>(
              as_uint(c->second, at + ".downtime_intervals"));
        }
        if (const auto c = crash.find("reboot_skew_us"); c != crash.end()) {
          out.reboot_skew_us = as_uint(c->second, at + ".reboot_skew_us");
        }
        spec.faults.relay_crashes.push_back(out);
      }
    }
    if (const auto f = faults.find("partitions"); f != faults.end()) {
      const JsonArray& partitions = as_array(f->second, "faults.partitions");
      for (std::size_t i = 0; i < partitions.size(); ++i) {
        const std::string at = "faults.partitions[" + std::to_string(i) + "]";
        const JsonObject& partition = as_object(partitions[i], at);
        reject_unknown_keys(partition,
                            {"from", "to", "from_interval", "until_interval"},
                            at);
        LinkPartitionSpec out;
        if (const auto p = partition.find("from"); p != partition.end()) {
          out.from =
              static_cast<std::uint32_t>(as_uint(p->second, at + ".from"));
        }
        if (const auto p = partition.find("to"); p != partition.end()) {
          out.to = static_cast<std::uint32_t>(as_uint(p->second, at + ".to"));
        }
        if (const auto p = partition.find("from_interval");
            p != partition.end()) {
          out.from_interval = static_cast<std::uint32_t>(
              as_uint(p->second, at + ".from_interval"));
        }
        if (const auto p = partition.find("until_interval");
            p != partition.end()) {
          out.until_interval = static_cast<std::uint32_t>(
              as_uint(p->second, at + ".until_interval"));
        }
        spec.faults.partitions.push_back(out);
      }
    }
    if (const auto f = faults.find("degraded"); f != faults.end()) {
      const JsonArray& degraded_list = as_array(f->second, "faults.degraded");
      for (std::size_t i = 0; i < degraded_list.size(); ++i) {
        const std::string at = "faults.degraded[" + std::to_string(i) + "]";
        const JsonObject& degraded = as_object(degraded_list[i], at);
        reject_unknown_keys(degraded, {"node", "budget_mbps"}, at);
        DegradedRelaySpec out;
        if (const auto d = degraded.find("node"); d != degraded.end()) {
          out.node =
              static_cast<std::uint32_t>(as_uint(d->second, at + ".node"));
        }
        if (const auto d = degraded.find("budget_mbps");
            d != degraded.end()) {
          out.budget_mbps = as_number(d->second, at + ".budget_mbps");
        }
        spec.faults.degraded.push_back(out);
      }
    }
  }
  if (const auto it = object.find("hop"); it != object.end()) {
    const JsonObject& hop = as_object(it->second, "hop");
    reject_unknown_keys(
        hop, {"loss", "duplicate_probability", "latency_us", "jitter_us"},
        "hop");
    if (const auto h = hop.find("loss"); h != hop.end()) {
      spec.hop.loss = as_number(h->second, "hop.loss");
    }
    if (const auto h = hop.find("duplicate_probability"); h != hop.end()) {
      spec.hop.duplicate_probability =
          as_number(h->second, "hop.duplicate_probability");
    }
    if (const auto h = hop.find("latency_us"); h != hop.end()) {
      spec.hop.latency_us = as_uint(h->second, "hop.latency_us");
    }
    if (const auto h = hop.find("jitter_us"); h != hop.end()) {
      spec.hop.jitter_us = as_uint(h->second, "hop.jitter_us");
    }
  }
  if (const auto it = object.find("strategy"); it != object.end()) {
    const JsonObject& strategy = as_object(it->second, "strategy");
    reject_unknown_keys(strategy, {"adaptive", "sybil", "coop"}, "strategy");
    if (const auto s = strategy.find("adaptive"); s != strategy.end()) {
      const JsonObject& adaptive = as_object(s->second, "strategy.adaptive");
      reject_unknown_keys(adaptive,
                          {"enabled", "learning_rate", "initial_share",
                           "reward", "cost"},
                          "strategy.adaptive");
      AdaptiveAdversarySpec& out = spec.strategy.adaptive;
      if (const auto a = adaptive.find("enabled"); a != adaptive.end()) {
        out.enabled = as_bool(a->second, "strategy.adaptive.enabled");
      }
      if (const auto a = adaptive.find("learning_rate");
          a != adaptive.end()) {
        out.learning_rate =
            as_number(a->second, "strategy.adaptive.learning_rate");
      }
      if (const auto a = adaptive.find("initial_share");
          a != adaptive.end()) {
        out.initial_share =
            as_number(a->second, "strategy.adaptive.initial_share");
      }
      if (const auto a = adaptive.find("reward"); a != adaptive.end()) {
        out.reward = as_number(a->second, "strategy.adaptive.reward");
      }
      if (const auto a = adaptive.find("cost"); a != adaptive.end()) {
        out.cost = as_number(a->second, "strategy.adaptive.cost");
      }
    }
    if (const auto s = strategy.find("sybil"); s != strategy.end()) {
      const JsonObject& sybil = as_object(s->second, "strategy.sybil");
      reject_unknown_keys(sybil, {"enabled", "cohort", "reveal_stagger_us"},
                          "strategy.sybil");
      SybilSpec& out = spec.strategy.sybil;
      if (const auto y = sybil.find("enabled"); y != sybil.end()) {
        out.enabled = as_bool(y->second, "strategy.sybil.enabled");
      }
      if (const auto y = sybil.find("cohort"); y != sybil.end()) {
        out.cohort = static_cast<std::uint32_t>(
            as_uint(y->second, "strategy.sybil.cohort"));
      }
      if (const auto y = sybil.find("reveal_stagger_us"); y != sybil.end()) {
        out.reveal_stagger_us =
            as_uint(y->second, "strategy.sybil.reveal_stagger_us");
      }
    }
    if (const auto s = strategy.find("coop"); s != strategy.end()) {
      const JsonObject& coop = as_object(s->second, "strategy.coop");
      reject_unknown_keys(coop, {"enabled", "audit_fraction", "poisoned"},
                          "strategy.coop");
      CoopSpec& out = spec.strategy.coop;
      if (const auto c = coop.find("enabled"); c != coop.end()) {
        out.enabled = as_bool(c->second, "strategy.coop.enabled");
      }
      if (const auto c = coop.find("audit_fraction"); c != coop.end()) {
        out.audit_fraction =
            as_number(c->second, "strategy.coop.audit_fraction");
      }
      if (const auto c = coop.find("poisoned"); c != coop.end()) {
        out.poisoned = as_bool(c->second, "strategy.coop.poisoned");
      }
    }
  }

  spec.validate();
  return spec;
}

void ScenarioSpec::validate() const {
  if (members_per_cohort == 0 || members_per_cohort > kMaxMembersPerCohort) {
    throw std::invalid_argument(
        "ScenarioSpec: members_per_cohort must be in [1, 2^24]");
  }
  if (buffers == 0 || buffers > kMaxBuffers) {
    throw std::invalid_argument("ScenarioSpec: buffers must be in [1, 2^16]");
  }
  if (intervals == 0 || intervals > kMaxIntervals) {
    throw std::invalid_argument(
        "ScenarioSpec: intervals must be in [1, 2^20]");
  }
  if (interval_us == 0 ||
      static_cast<double>(interval_us) *
              (static_cast<double>(intervals) + 8.0) >
          9.0e18) {
    throw std::invalid_argument(
        "ScenarioSpec: interval_us out of range (run would overflow "
        "sim time)");
  }
  if (forged_fraction < 0.0 || forged_fraction >= 1.0) {
    throw std::invalid_argument(
        "ScenarioSpec: forged_fraction must be in [0, 1)");
  }
  if (hop.loss < 0.0 || hop.loss >= 1.0) {
    throw std::invalid_argument("ScenarioSpec: hop.loss must be in [0, 1)");
  }
  if (hop.duplicate_probability < 0.0 || hop.duplicate_probability > 1.0) {
    throw std::invalid_argument(
        "ScenarioSpec: hop.duplicate_probability must be in [0, 1]");
  }
  if (guard.capacity == 0 || guard.capacity > kMaxGuardCapacity ||
      (guard.capacity & (guard.capacity - 1)) != 0) {
    throw std::invalid_argument(
        "ScenarioSpec: guard.capacity must be a power of two in [1, 2^22]");
  }
  if (!std::isfinite(guard.budget_mbps) || guard.budget_mbps < 0.0) {
    throw std::invalid_argument(
        "ScenarioSpec: guard.budget_mbps must be finite and >= 0");
  }
  if (!std::isfinite(guard.burst_bits) || guard.burst_bits < 0.0) {
    throw std::invalid_argument(
        "ScenarioSpec: guard.burst_bits must be finite and >= 0");
  }
  // Resource ceiling BEFORE materializing the graph: a parsed spec is
  // untrusted input, and the topology builders allocate O(nodes).
  if (estimated_nodes(*this) > static_cast<double>(kMaxNodes)) {
    throw std::invalid_argument(
        "ScenarioSpec: topology implies more than 2^22 nodes");
  }
  const Topology topo = build_topology();  // validates the shape itself
  const auto adjacency = topo.adjacency();
  for (const std::uint32_t a : attackers) {
    if (a >= topo.node_count) {
      throw std::invalid_argument("ScenarioSpec: attacker node out of range");
    }
    if (adjacency[a].empty()) {
      throw std::invalid_argument(
          "ScenarioSpec: attacker node has no out-edges to inject into");
    }
  }
  for (const RelayCrashSpec& crash : faults.relay_crashes) {
    if (crash.node == 0 || crash.node >= topo.node_count) {
      throw std::invalid_argument(
          "ScenarioSpec: relay_crashes node must be a non-root node");
    }
    if (crash.at_interval == 0 || crash.at_interval > intervals) {
      throw std::invalid_argument(
          "ScenarioSpec: relay_crashes at_interval must be in [1, "
          "intervals]");
    }
    if (crash.downtime_intervals == 0 ||
        crash.downtime_intervals > kMaxIntervals) {
      throw std::invalid_argument(
          "ScenarioSpec: relay_crashes downtime_intervals must be in [1, "
          "2^20]");
    }
    if (crash.reboot_skew_us >
        static_cast<sim::SimTime>(kMaxIntervals) * interval_us) {
      throw std::invalid_argument(
          "ScenarioSpec: relay_crashes reboot_skew_us out of range");
    }
  }
  for (const LinkPartitionSpec& partition : faults.partitions) {
    if (partition.from >= topo.node_count ||
        partition.to >= topo.node_count) {
      throw std::invalid_argument(
          "ScenarioSpec: partition endpoint out of range");
    }
    bool edge = false;
    for (const std::uint32_t to : adjacency[partition.from]) {
      if (to == partition.to) {
        edge = true;
        break;
      }
    }
    if (!edge) {
      throw std::invalid_argument(
          "ScenarioSpec: partition does not match a topology edge");
    }
    if (partition.from_interval == 0 ||
        partition.until_interval <= partition.from_interval) {
      throw std::invalid_argument(
          "ScenarioSpec: partition window must satisfy 1 <= from < until");
    }
  }
  if (strategy.adaptive.enabled) {
    if (!std::isfinite(strategy.adaptive.learning_rate) ||
        strategy.adaptive.learning_rate <= 0.0 ||
        strategy.adaptive.learning_rate > 1.0) {
      throw std::invalid_argument(
          "ScenarioSpec: strategy.adaptive.learning_rate must be in (0, 1]");
    }
    if (strategy.adaptive.initial_share <= 0.0 ||
        strategy.adaptive.initial_share >= 1.0) {
      throw std::invalid_argument(
          "ScenarioSpec: strategy.adaptive.initial_share must be in (0, 1)");
    }
    if (!std::isfinite(strategy.adaptive.reward) ||
        !std::isfinite(strategy.adaptive.cost) ||
        strategy.adaptive.cost <= 0.0 ||
        strategy.adaptive.reward <= strategy.adaptive.cost) {
      // Mirrors game::GameParams::validate (Ra > k1 > 0): the replicator
      // payoff only has the paper's structure under these signs.
      throw std::invalid_argument(
          "ScenarioSpec: strategy.adaptive requires reward > cost > 0");
    }
    if (forged_fraction <= 0.0) {
      throw std::invalid_argument(
          "ScenarioSpec: strategy.adaptive needs forged_fraction > 0 (it "
          "bounds the per-interval flood intensity)");
    }
  }
  if (strategy.sybil.enabled) {
    if (strategy.sybil.cohort == 0 || strategy.sybil.cohort > 64) {
      throw std::invalid_argument(
          "ScenarioSpec: strategy.sybil.cohort must be in [1, 64]");
    }
    if (strategy.sybil.reveal_stagger_us >= interval_us) {
      throw std::invalid_argument(
          "ScenarioSpec: strategy.sybil.reveal_stagger_us must be smaller "
          "than interval_us");
    }
  }
  if (strategy.coop.enabled) {
    if (!std::isfinite(strategy.coop.audit_fraction) ||
        strategy.coop.audit_fraction < 0.0 ||
        strategy.coop.audit_fraction > 1.0) {
      throw std::invalid_argument(
          "ScenarioSpec: strategy.coop.audit_fraction must be in [0, 1]");
    }
  } else if (strategy.coop.poisoned) {
    throw std::invalid_argument(
        "ScenarioSpec: strategy.coop.poisoned requires strategy.coop.enabled");
  }
  for (const DegradedRelaySpec& degraded : faults.degraded) {
    if (degraded.node >= topo.node_count) {
      throw std::invalid_argument(
          "ScenarioSpec: degraded node out of range");
    }
    if (!std::isfinite(degraded.budget_mbps) || degraded.budget_mbps <= 0.0) {
      throw std::invalid_argument(
          "ScenarioSpec: degraded budget_mbps must be finite and > 0");
    }
  }
}

}  // namespace dap::fleet
